(** The LLVM dialect (the subset targeted by the lowering passes of Case
    Study 2): arithmetic, control flow, memory and function ops. *)

open Ir

let func_op = "llvm.func"
let return_op = "llvm.return"
let call_op = "llvm.call"
let br_op = "llvm.br"
let cond_br_op = "llvm.cond_br"
let switch_op = "llvm.switch"
let unreachable_op = "llvm.unreachable"
let constant_op = "llvm.mlir.constant"
let undef_op = "llvm.mlir.undef"
let alloca_op = "llvm.alloca"
let load_op = "llvm.load"
let store_op = "llvm.store"
let getelementptr_op = "llvm.getelementptr"
let ptrtoint_op = "llvm.ptrtoint"
let inttoptr_op = "llvm.inttoptr"
let bitcast_op = "llvm.bitcast"

let binary_ops =
  [
    "llvm.add"; "llvm.sub"; "llvm.mul"; "llvm.sdiv"; "llvm.udiv"; "llvm.srem";
    "llvm.urem"; "llvm.and"; "llvm.or"; "llvm.xor"; "llvm.shl"; "llvm.ashr";
    "llvm.lshr"; "llvm.fadd"; "llvm.fsub"; "llvm.fmul"; "llvm.fdiv";
    "llvm.fmax"; "llvm.fmin"; "llvm.smax"; "llvm.smin";
  ]

let register ctx =
  Context.register_op ctx func_op ~summary:"LLVM function"
    ~traits:[ Context.Isolated_from_above; Context.Symbol ]
    ~verify:(Verifier.all [ Verifier.expect_attr "sym_name"; Verifier.expect_regions 1 ]);
  Context.register_op ctx return_op ~summary:"LLVM return"
    ~traits:[ Context.Terminator; Context.Return_like ];
  Context.register_op ctx call_op ~summary:"LLVM call"
    ~verify:(Verifier.expect_attr "callee");
  let br_ifaces =
    Util.Univ.add Context.branch_like_key Cf.branch_like Util.Univ.empty
  in
  Context.register_op ctx br_op ~traits:[ Context.Terminator ]
    ~interfaces:br_ifaces;
  Context.register_op ctx cond_br_op ~traits:[ Context.Terminator ]
    ~interfaces:br_ifaces ~verify:(Verifier.expect_min_operands 1);
  Context.register_op ctx switch_op ~traits:[ Context.Terminator ];
  Context.register_op ctx unreachable_op ~traits:[ Context.Terminator ];
  Context.register_op ctx constant_op ~traits:[ Context.Pure; Context.Constant_like ]
    ~verify:
      (Verifier.all
         [
           Verifier.expect_operands 0;
           Verifier.expect_results 1;
           Verifier.expect_attr "value";
         ]);
  Context.register_op ctx undef_op ~traits:[ Context.Pure ]
    ~verify:(Verifier.expect_results 1);
  Context.register_op ctx alloca_op
    ~effects:(fun _ -> [ Context.Alloc ])
    ~verify:(Verifier.expect_results 1);
  Context.register_op ctx load_op
    ~effects:(fun _ -> [ Context.Read ])
    ~verify:
      (Verifier.all [ Verifier.expect_min_operands 1; Verifier.expect_results 1 ]);
  Context.register_op ctx store_op
    ~effects:(fun _ -> [ Context.Write ])
    ~verify:(Verifier.expect_min_operands 2);
  List.iter
    (fun name ->
      Context.register_op ctx name ~traits:[ Context.Pure ]
        ~verify:
          (Verifier.all [ Verifier.expect_min_operands 1; Verifier.expect_results 1 ]))
    ([ getelementptr_op; ptrtoint_op; inttoptr_op; bitcast_op ]);
  Context.register_op ctx "llvm.icmp" ~traits:[ Context.Pure ]
    ~verify:
      (Verifier.all
         [
           Verifier.expect_operands 2;
           Verifier.expect_results 1;
           Verifier.expect_attr "predicate";
         ]);
  Context.register_op ctx "llvm.fcmp" ~traits:[ Context.Pure ]
    ~verify:(Verifier.expect_operands 2);
  Context.register_op ctx "llvm.select" ~traits:[ Context.Pure ]
    ~verify:
      (Verifier.all [ Verifier.expect_operands 3; Verifier.expect_results 1 ]);
  List.iter
    (fun name ->
      Context.register_op ctx name ~traits:[ Context.Pure ]
        ~verify:
          (Verifier.all [ Verifier.expect_operands 1; Verifier.expect_results 1 ]))
    [ "llvm.sitofp"; "llvm.fptosi"; "llvm.fpext"; "llvm.fptrunc" ];
  List.iter
    (fun name ->
      Context.register_op ctx name ~traits:[ Context.Pure ]
        ~verify:
          (Verifier.all [ Verifier.expect_operands 2; Verifier.expect_results 1 ]))
    binary_ops
