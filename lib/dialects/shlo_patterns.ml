(** The Enzyme-style StableHLO peephole pattern set of Case Study 3:
    work-reducing and enabling rewrites registered individually so that
    [transform.apply_patterns] can enable any subset — the mechanism that
    makes the paper's binary search over patterns a 4-second edit of the
    Transform script instead of a 3-minute compiler rebuild.

    One pattern, [shlo.fold_reshape_transpose_into_reduce], strictly reduces
    work yet is globally counterproductive under the downstream fusion
    model — the culprit the case study hunts down. *)

open Ir

let def v = Ircore.defining_op v
let operand = Ircore.operand
let result = Ircore.result

let is_zero_const v =
  match def v with Some op -> Shlo.is_zero_constant op | None -> false

let is_one_const v =
  match def v with
  | Some op when op.Ircore.op_name = Shlo.constant_op -> (
    match Ircore.attr op "value" with
    | Some (Attr.Float (1.0, _)) | Some (Attr.Int (1, _)) -> true
    | Some (Attr.Dense_float (xs, _)) -> List.for_all (fun x -> x = 1.0) xs
    | _ -> false)
  | _ -> false

let replace_with rw op v = Rewriter.replace_op rw op ~with_:[ v ]

let same_typ a b = Typ.equal (Ircore.value_typ a) (Ircore.value_typ b)

(* identity permutation *)
let is_identity_perm p = List.for_all2 ( = ) p (List.init (List.length p) Fun.id)

let compose_perms p1 p2 =
  (* result of applying p1 then p2 *)
  List.map (fun i -> List.nth p1 i) p2

(** All pattern names in this set (stable order for binary search). *)
let all_names = ref []

let reg name ?root rewrite =
  all_names := !all_names @ [ "shlo." ^ name ];
  Pattern.register_make ~name:("shlo." ^ name) ?root rewrite

let () =
  (* 1. pad by zero with zero extents is the identity *)
  reg "fold_zero_pad" ~root:Shlo.pad_op (fun rw op ->
      let zero_extents =
        match
          (Ircore.attr op "edge_padding_low", Ircore.attr op "edge_padding_high")
        with
        | Some (Attr.Int_array lo), Some (Attr.Int_array hi) ->
          List.for_all (fun x -> x = 0) lo && List.for_all (fun x -> x = 0) hi
        | _ -> false
      in
      if zero_extents && is_zero_const (operand ~index:1 op) then begin
        replace_with rw op (operand ~index:0 op);
        true
      end
      else false);
  (* 2. add of a zero-padded value: fold the zero padding away *)
  reg "add_of_zero_pad" ~root:Shlo.add_op (fun rw op ->
      let try_side i =
        match def (operand ~index:i op) with
        | Some pad
          when pad.Ircore.op_name = Shlo.pad_op
               && is_zero_const (operand ~index:1 pad)
               && same_typ (result pad) (operand ~index:0 pad) ->
          Ircore.set_operand op i (operand ~index:0 pad);
          true
        | _ -> false
      in
      let changed = try_side 0 || try_side 1 in
      if changed then
        Rewriter.modify_in_place rw op (fun () -> ());
      changed);
  (* 3. matmul of transpose: fold into a transposed-operand matmul *)
  reg "matmul_of_transpose" ~root:Shlo.dot_general_op (fun rw op ->
      if Ircore.has_attr op "rhs_transposed" then false
      else
        match def (operand ~index:1 op) with
        | Some tr when tr.Ircore.op_name = Shlo.transpose_op ->
          Rewriter.modify_in_place rw op (fun () ->
              Ircore.set_operand op 1 (operand ~index:0 tr);
              Ircore.set_attr op "rhs_transposed" (Attr.Bool true));
          true
        | _ -> false);
  (* 4. negate of transpose -> transpose of negate (enabling) *)
  reg "negate_of_transpose" ~root:Shlo.negate_op (fun rw op ->
      match def (operand op) with
      | Some tr
        when tr.Ircore.op_name = Shlo.transpose_op
             && Ircore.has_one_use (result tr) ->
        Rewriter.set_ip rw (Builder.Before op);
        let x = operand ~index:0 tr in
        let neg =
          Rewriter.build1 rw ~operands:[ x ]
            ~result_types:[ Ircore.value_typ x ]
            Shlo.negate_op
        in
        let perm =
          match Shlo.permutation_of tr with Some p -> p | None -> []
        in
        let new_tr =
          Rewriter.build1 rw ~operands:[ neg ]
            ~result_types:[ Ircore.value_typ (result op) ]
            ~attrs:[ ("permutation", Attr.Int_array perm) ]
            Shlo.transpose_op
        in
        replace_with rw op new_tr;
        true
      | _ -> false);
  (* 5. transpose of transpose: compose permutations *)
  reg "transpose_of_transpose" ~root:Shlo.transpose_op (fun rw op ->
      match def (operand op) with
      | Some inner when inner.Ircore.op_name = Shlo.transpose_op -> (
        match (Shlo.permutation_of inner, Shlo.permutation_of op) with
        | Some p1, Some p2 ->
          let p = compose_perms p1 p2 in
          if is_identity_perm p then replace_with rw op (operand ~index:0 inner)
          else begin
            Rewriter.set_ip rw (Builder.Before op);
            let t =
              Rewriter.build1 rw
                ~operands:[ operand ~index:0 inner ]
                ~result_types:[ Ircore.value_typ (result op) ]
                ~attrs:[ ("permutation", Attr.Int_array p) ]
                Shlo.transpose_op
            in
            replace_with rw op t
          end;
          true
        | _ -> false)
      | _ -> false);
  (* 6. reshape of reshape *)
  reg "reshape_of_reshape" ~root:Shlo.reshape_op (fun rw op ->
      match def (operand op) with
      | Some inner when inner.Ircore.op_name = Shlo.reshape_op ->
        Rewriter.modify_in_place rw op (fun () ->
            Ircore.set_operand op 0 (operand ~index:0 inner));
        true
      | _ -> false);
  (* 7. THE CULPRIT: fold reshape/transpose into a full reduction. Strictly
     work-reducing (full additive reduction is layout-independent under
     fast-math), but defeats the fusion back-end's locality heuristic. *)
  reg "fold_reshape_transpose_into_reduce" ~root:Shlo.reduce_op (fun rw op ->
      let full_reduction =
        (* reduces all dimensions of its input *)
        match
          (Ircore.attr op "dimensions",
           Typ.rank (Ircore.value_typ (operand ~index:0 op)))
        with
        | Some (Attr.Int_array dims), Some r -> List.length dims = r
        | _ -> false
      in
      if not full_reduction then false
      else
        match def (operand ~index:0 op) with
        | Some shape_op
          when shape_op.Ircore.op_name = Shlo.transpose_op
               || shape_op.Ircore.op_name = Shlo.reshape_op ->
          let src = operand ~index:0 shape_op in
          Rewriter.modify_in_place rw op (fun () ->
              Ircore.set_operand op 0 src;
              (match Typ.rank (Ircore.value_typ src) with
              | Some r ->
                Ircore.set_attr op "dimensions"
                  (Attr.Int_array (List.init r Fun.id))
              | None -> ()));
          true
        | _ -> false);
  (* 8-12: algebraic simplifications *)
  reg "add_zero" ~root:Shlo.add_op (fun rw op ->
      if is_zero_const (operand ~index:1 op) then begin
        replace_with rw op (operand ~index:0 op);
        true
      end
      else if is_zero_const (operand ~index:0 op) then begin
        replace_with rw op (operand ~index:1 op);
        true
      end
      else false);
  reg "mul_one" ~root:Shlo.multiply_op (fun rw op ->
      if is_one_const (operand ~index:1 op) then begin
        replace_with rw op (operand ~index:0 op);
        true
      end
      else if is_one_const (operand ~index:0 op) then begin
        replace_with rw op (operand ~index:1 op);
        true
      end
      else false);
  reg "mul_zero" ~root:Shlo.multiply_op (fun rw op ->
      let zero_side =
        if is_zero_const (operand ~index:0 op) then Some (operand ~index:0 op)
        else if is_zero_const (operand ~index:1 op) then
          Some (operand ~index:1 op)
        else None
      in
      match zero_side with
      | Some z when same_typ z (result op) ->
        replace_with rw op z;
        true
      | _ -> false);
  reg "div_one" ~root:Shlo.divide_op (fun rw op ->
      if is_one_const (operand ~index:1 op) then begin
        replace_with rw op (operand ~index:0 op);
        true
      end
      else false);
  reg "sub_self" ~root:Shlo.subtract_op (fun rw op ->
      if operand ~index:0 op == operand ~index:1 op then begin
        Rewriter.set_ip rw (Builder.Before op);
        let z =
          Rewriter.build1 rw
            ~result_types:[ Ircore.value_typ (result op) ]
            ~attrs:[ ("value", Attr.Float (0.0, Typ.f32)) ]
            Shlo.constant_op
        in
        replace_with rw op z;
        true
      end
      else false);
  (* 13. negate of negate *)
  reg "negate_negate" ~root:Shlo.negate_op (fun rw op ->
      match def (operand op) with
      | Some inner when inner.Ircore.op_name = Shlo.negate_op ->
        replace_with rw op (operand ~index:0 inner);
        true
      | _ -> false);
  (* 14. broadcast of broadcast *)
  reg "broadcast_of_broadcast" ~root:Shlo.broadcast_op (fun rw op ->
      match def (operand op) with
      | Some inner when inner.Ircore.op_name = Shlo.broadcast_op ->
        Rewriter.modify_in_place rw op (fun () ->
            Ircore.set_operand op 0 (operand ~index:0 inner));
        true
      | _ -> false);
  (* 15. reshape to the same type *)
  reg "reshape_noop" ~root:Shlo.reshape_op (fun rw op ->
      if same_typ (operand op) (result op) then begin
        replace_with rw op (operand op);
        true
      end
      else false);
  (* 16. identity transpose *)
  reg "transpose_identity" ~root:Shlo.transpose_op (fun rw op ->
      match Shlo.permutation_of op with
      | Some p when is_identity_perm p ->
        replace_with rw op (operand op);
        true
      | _ -> false);
  (* 17. concat of a single operand *)
  reg "concat_single" ~root:Shlo.concatenate_op (fun rw op ->
      if Ircore.num_operands op = 1 && same_typ (operand op) (result op) then begin
        replace_with rw op (operand op);
        true
      end
      else false);
  (* 18. slice covering the whole tensor *)
  reg "slice_full" ~root:Shlo.slice_op (fun rw op ->
      if same_typ (operand op) (result op) then begin
        replace_with rw op (operand op);
        true
      end
      else false);
  (* 19. convert to the same type *)
  reg "convert_noop" ~root:Shlo.convert_op (fun rw op ->
      if same_typ (operand op) (result op) then begin
        replace_with rw op (operand op);
        true
      end
      else false);
  (* 20. select with identical branches *)
  reg "select_same" ~root:Shlo.select_op (fun rw op ->
      if operand ~index:1 op == operand ~index:2 op then begin
        replace_with rw op (operand ~index:1 op);
        true
      end
      else false)

(** All registered pattern names of this set, in stable order. *)
let names () = !all_names

let culprit = "shlo.fold_reshape_transpose_into_reduce"
