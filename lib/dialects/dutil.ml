(** Shared helpers for dialect definitions. *)

open Ir

let ( let* ) = Result.bind

(** A rewriter with no listeners, for plain IR construction. *)
let rw_at_end block = Rewriter.create ~ip:(Builder.At_end block) ()
let rw_detached () = Rewriter.create ()

(** Verify combinator: operands and results all share one type. *)
let same_type op =
  let tys =
    List.map Ircore.value_typ (Ircore.operands op)
    @ List.map Ircore.value_typ (Ircore.results op)
  in
  match tys with
  | [] -> Ok ()
  | t :: rest ->
    if List.for_all (Typ.equal t) rest then Ok ()
    else Error "operands and results must all have the same type"

(** Element type of [t] if shaped, [t] itself otherwise. *)
let scalar_of t = Option.value ~default:t (Typ.element_type t)

(** Register a pure binary elementwise op with a folder over integer or float
    constants. *)
let register_binary ctx ?(traits = []) ?fold_int ?fold_float name =
  let fold (_op : Ircore.op) (operand_attrs : Attr.t option list) =
    match operand_attrs with
    | [ Some (Attr.Int (a, t)); Some (Attr.Int (b, _)) ] ->
      Option.map (fun f -> [ Attr.Int (f a b, t) ]) fold_int
    | [ Some (Attr.Float (a, t)); Some (Attr.Float (b, _)) ] ->
      Option.map (fun f -> [ Attr.Float (f a b, t) ]) fold_float
    | _ -> None
  in
  (* guard fold against division by zero etc. *)
  let fold op attrs = try fold op attrs with Division_by_zero -> None in
  Context.register_op ctx name
    ~traits:([ Context.Pure; Context.Same_operands_and_result_type ] @ traits)
    ~verify:(Verifier.all [ Verifier.expect_operands 2; Verifier.expect_results 1 ])
    ~interfaces:(Util.Univ.add Context.folder_key { Context.fold } Util.Univ.empty)

(** Build an [arith.constant]. *)
let const_int rw ?(typ = Typ.index) v =
  Rewriter.build1 rw ~result_types:[ typ ]
    ~attrs:[ ("value", Attr.Int (v, typ)) ]
    "arith.constant"

let const_float rw ?(typ = Typ.f32) v =
  Rewriter.build1 rw ~result_types:[ typ ]
    ~attrs:[ ("value", Attr.Float (v, typ)) ]
    "arith.constant"

(** Materialize-constant hook for greedy folding: builds [arith.constant]. *)
let materialize_arith_constant rw (attr : Attr.t) (t : Typ.t) =
  match attr with
  | Attr.Int _ | Attr.Float _ | Attr.Bool _ ->
    Some
      (Rewriter.build1 rw ~result_types:[ t ] ~attrs:[ ("value", attr) ]
         "arith.constant")
  | _ -> None

(** Greedy config preloaded with the arith constant materializer. *)
let greedy_config =
  { Greedy.default_config with
    materialize_constant = Some materialize_arith_constant }

(** Freeze [patterns] and run the worklist greedy driver with
    {!greedy_config} — the common one-shot entry point for dialect code and
    tests. Callers that reuse a pattern set across payloads should freeze
    once with {!Frozen_patterns.freeze} and call {!Greedy.apply} directly. *)
let apply_greedy ?(config = greedy_config) ?stats ?rewriter ctx ~patterns root
    =
  Greedy.apply ~config ?stats ?rewriter ctx
    ~patterns:(Frozen_patterns.freeze patterns) root

let int_attr_of op name =
  match Ircore.attr op name with Some (Attr.Int (v, _)) -> Some v | _ -> None

let str_attr_of op name =
  match Ircore.attr op name with Some (Attr.String s) -> Some s | _ -> None
