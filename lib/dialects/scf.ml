(** The scf dialect: structured control flow — [scf.for] (with iteration
    arguments), [scf.if], [scf.while], [scf.forall] and their terminators. *)

open Ir

let for_op = "scf.for"
let forall_op = "scf.forall"
let if_op = "scf.if"
let while_op = "scf.while"
let yield_op = "scf.yield"
let condition_op = "scf.condition"

let verify_for op =
  let ( let* ) = Result.bind in
  let* () = Verifier.expect_min_operands 3 op in
  let* () = Verifier.expect_regions 1 op in
  let n_iter = Ircore.num_operands op - 3 in
  if Ircore.num_results op <> n_iter then
    Error
      (Fmt.str "expected %d results (one per iter arg), got %d" n_iter
         (Ircore.num_results op))
  else
    match op.Ircore.regions with
    | [ r ] -> (
      match Ircore.region_first_block r with
      | Some b when List.length (Ircore.block_args b) = n_iter + 1 -> Ok ()
      | Some b ->
        Error
          (Fmt.str "body must have %d block arguments, has %d" (n_iter + 1)
             (List.length (Ircore.block_args b)))
      | None -> Error "body region must have a block")
    | _ -> Error "expected a single region"

let loop_like : Context.loop_like =
  {
    Context.ll_lower_bound = (fun op -> Some (Ircore.operand ~index:0 op));
    ll_upper_bound = (fun op -> Some (Ircore.operand ~index:1 op));
    ll_step = (fun op -> Some (Ircore.operand ~index:2 op));
    ll_induction_var =
      (fun op ->
        match op.Ircore.regions with
        | [ r ] ->
          Option.map (fun b -> Ircore.block_arg b 0) (Ircore.region_first_block r)
        | _ -> None);
    ll_body =
      (fun op ->
        match op.Ircore.regions with
        | [ r ] -> Ircore.region_first_block r
        | _ -> None);
  }

let register ctx =
  Context.register_op ctx for_op ~summary:"counted loop with iter args"
    ~verify:verify_for
    ~canonicalizers:[ "scf.for_zero_trip"; "scf.for_single_trip" ]
    ~interfaces:(Util.Univ.add Context.loop_like_key loop_like Util.Univ.empty);
  Context.register_op ctx forall_op
    ~summary:"multi-dimensional parallel loop nest"
    ~traits:[ Context.No_terminator ]
    ~verify:
      (Verifier.all
         [ Verifier.expect_regions 1; Verifier.expect_attr "static_upper_bound" ]);
  Context.register_op ctx if_op ~summary:"conditional with results"
    ~canonicalizers:[ "scf.if_constant_cond" ]
    ~verify:
      (Verifier.all [ Verifier.expect_operands 1; Verifier.expect_regions 2 ]);
  Context.register_op ctx while_op ~summary:"general while loop"
    ~verify:(Verifier.expect_regions 2);
  Context.register_op ctx yield_op ~summary:"region terminator"
    ~traits:[ Context.Terminator; Context.Return_like ];
  Context.register_op ctx condition_op ~summary:"while condition terminator"
    ~traits:[ Context.Terminator ]
    ~verify:(Verifier.expect_min_operands 1)

(* ------------------------------------------------------------------ *)
(* Builders                                                            *)
(* ------------------------------------------------------------------ *)

(** Build [scf.for %iv = lb to ub step step iter_args(...)], populating the
    body via [body : rw -> iv -> iter_args -> yielded values]. *)
let build_for rw ~lb ~ub ~step ?(iter_args = []) body =
  let iter_types = List.map Ircore.value_typ iter_args in
  let block = Ircore.create_block ~args:(Typ.index :: iter_types) () in
  let region = Ircore.region_with_block block in
  let op =
    Rewriter.build rw
      ~operands:([ lb; ub; step ] @ iter_args)
      ~result_types:iter_types ~regions:[ region ] for_op
  in
  let body_rw = Dutil.rw_at_end block in
  let iv = Ircore.block_arg block 0 in
  let iters = List.tl (Ircore.block_args block) in
  let yielded = body body_rw iv iters in
  ignore (Rewriter.build body_rw ~operands:yielded yield_op);
  op

let yield rw ?(operands = []) () =
  ignore (Rewriter.build rw ~operands yield_op)

(** Build [scf.if] with optional else region. *)
let build_if rw ~cond ~result_types ~then_ ~else_ =
  let then_block = Ircore.create_block () in
  let else_block = Ircore.create_block () in
  let op =
    Rewriter.build rw ~operands:[ cond ] ~result_types
      ~regions:
        [ Ircore.region_with_block then_block; Ircore.region_with_block else_block ]
      if_op
  in
  let trw = Dutil.rw_at_end then_block in
  let tv = then_ trw in
  ignore (Rewriter.build trw ~operands:tv yield_op);
  let erw = Dutil.rw_at_end else_block in
  let ev = else_ erw in
  ignore (Rewriter.build erw ~operands:ev yield_op);
  op

(* ------------------------------------------------------------------ *)
(* Canonicalization patterns                                           *)
(* ------------------------------------------------------------------ *)

let bounds_const v = Arith.constant_int_of_value v

(* shared: splice a single-block region's body before [anchor], mapping the
   block args and returning the mapped yield operands *)
let splice_region_before rw ~anchor ~arg_values region =
  match Ircore.region_first_block region with
  | None -> None
  | Some body -> (
    match Ircore.block_last_op body with
    | Some y when y.Ircore.op_name = yield_op ->
      let mapping = Ircore.Mapping.create () in
      List.iter2
        (fun arg v -> Ircore.Mapping.map_value mapping ~from:arg ~to_:v)
        (Ircore.block_args body) arg_values;
      Rewriter.set_ip rw (Builder.Before anchor);
      List.iter
        (fun op ->
          if not (op == y) then
            Rewriter.insert rw (Ircore.clone_op ~mapping op))
        (Ircore.block_ops body);
      Some
        (List.map (Ircore.Mapping.lookup_value mapping) (Ircore.operands y))
    | _ -> None)

let () =
  (* a loop with zero iterations yields its init values *)
  Pattern.register_make ~name:"scf.for_zero_trip" ~root:for_op (fun rw op ->
      if Ircore.num_operands op < 3 then false
      else
      match
        ( bounds_const (Ircore.operand ~index:0 op),
          bounds_const (Ircore.operand ~index:1 op),
          bounds_const (Ircore.operand ~index:2 op) )
      with
      | Some lb, Some ub, Some st when st > 0 && ub <= lb ->
        Rewriter.replace_op rw op
          ~with_:(List.filteri (fun i _ -> i >= 3) (Ircore.operands op));
        true
      | _ -> false);
  (* a loop with exactly one iteration is its body at iv = lb *)
  Pattern.register_make ~name:"scf.for_single_trip" ~root:for_op (fun rw op ->
      if Ircore.num_operands op < 3 then false
      else
      match
        ( bounds_const (Ircore.operand ~index:0 op),
          bounds_const (Ircore.operand ~index:1 op),
          bounds_const (Ircore.operand ~index:2 op) )
      with
      | Some lb, Some ub, Some st
        when st > 0 && ub > lb && ub - lb <= st -> (
        let inits = List.filteri (fun i _ -> i >= 3) (Ircore.operands op) in
        match op.Ircore.regions with
        | [ r ] -> (
          match
            splice_region_before rw ~anchor:op
              ~arg_values:(Ircore.operand ~index:0 op :: inits)
              r
          with
          | Some yielded ->
            Rewriter.replace_op rw op ~with_:yielded;
            true
          | None -> false)
        | _ -> false)
      | _ -> false);
  (* scf.if with a constant condition inlines the taken region *)
  Pattern.register_make ~name:"scf.if_constant_cond" ~root:if_op (fun rw op ->
      let cond_const =
        match Ircore.defining_op (Ircore.operand ~index:0 op) with
        | Some d when d.Ircore.op_name = Arith.constant_op -> (
          match Ircore.attr d "value" with
          | Some (Attr.Bool b) -> Some b
          | Some (Attr.Int (1, _)) -> Some true
          | Some (Attr.Int (0, _)) -> Some false
          | _ -> None)
        | _ -> None
      in
      match (cond_const, op.Ircore.regions) with
      | Some b, [ t; e ] -> (
        let chosen = if b then t else e in
        match splice_region_before rw ~anchor:op ~arg_values:[] chosen with
        | Some yielded ->
          Rewriter.replace_op rw op ~with_:yielded;
          true
        | None -> false)
      | _ -> false)

let canonicalization_patterns () =
  [
    Pattern.lookup_exn "scf.for_zero_trip";
    Pattern.lookup_exn "scf.for_single_trip";
    Pattern.lookup_exn "scf.if_constant_cond";
  ]

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let is_for op = op.Ircore.op_name = for_op
let lower_bound op = Ircore.operand ~index:0 op
let upper_bound op = Ircore.operand ~index:1 op
let step op = Ircore.operand ~index:2 op
let iter_init_args op = List.filteri (fun i _ -> i >= 3) (Ircore.operands op)

let body_block op =
  match op.Ircore.regions with
  | [ r ] -> (
    match Ircore.region_first_block r with
    | Some b -> b
    | None -> invalid_arg "scf op without body block")
  | _ -> invalid_arg "scf op without single region"

let induction_var op = Ircore.block_arg (body_block op) 0
let iter_args op = List.tl (Ircore.block_args (body_block op))

let yield_of op =
  match Ircore.block_last_op (body_block op) with
  | Some t when t.Ircore.op_name = yield_op -> t
  | _ -> invalid_arg "scf op body lacks scf.yield"

(** Static trip-count info when bounds and step are constants. *)
let static_bounds op =
  match
    ( Arith.constant_int_of_value (lower_bound op),
      Arith.constant_int_of_value (upper_bound op),
      Arith.constant_int_of_value (step op) )
  with
  | Some lb, Some ub, Some st when st > 0 -> Some (lb, ub, st)
  | _ -> None

let static_trip_count op =
  match static_bounds op with
  | Some (lb, ub, st) -> Some (max 0 ((ub - lb + st - 1) / st))
  | None -> None
