(** Ablation benchmarks for the design choices called out in DESIGN.md:

    - transform-IR simplification (inline + fold no-ops) before
      interpretation: interpreter steps with and without;
    - dynamic pre-condition checking overhead (Section 3.3);
    - expensive payload verification after every transform step. *)


(** A script with macro indirection and no-op transforms, exercising the
    simplifier: a named sequence applied through include, tiling by zero
    and unrolling by one. *)
let redundant_script () =
  let md = Transform.Build.script (fun rw root ->
      let loop = Transform.Build.match_op rw ~select:"first" ~name:"scf.for" root in
      (* no-op transforms *)
      let _t, p = Transform.Build.loop_tile rw ~sizes:[ 0; 0 ] loop in
      Transform.Build.loop_unroll rw ~factor:1 p;
      (* a real transform at the end so the script does something *)
      ignore (Transform.Build.loop_tile rw ~sizes:[ 8; 8 ] p))
  in
  md

type row = { config : string; steps : int; seconds : float; ok : bool }

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let run_one ctx ~simplify ~config_name ~iconfig () =
  let script = redundant_script () in
  if simplify then (
    match Transform.Simplify.run script with
    | Ok _ -> ()
    | Error e -> failwith e);
  let md = Workloads.Matmul.build_module ~m:32 ~n:32 ~k:16 () in
  let result, seconds =
    time (fun () ->
        Transform.Schedule.run ~mode:`Interpret ~config:iconfig ctx ~script ~payload:md)
  in
  match result with
  | Ok steps -> { config = config_name; steps; seconds; ok = true }
  | Error _ -> { config = config_name; steps = 0; seconds; ok = false }

let run ctx =
  let base = Transform.State.default_config in
  [
    run_one ctx ~simplify:false ~config_name:"no simplification" ~iconfig:base ();
    run_one ctx ~simplify:true ~config_name:"simplified script" ~iconfig:base ();
    run_one ctx ~simplify:false
      ~config_name:"dynamic condition checks"
      ~iconfig:{ base with Transform.State.check_conditions = true }
      ();
    run_one ctx ~simplify:false
      ~config_name:"expensive payload verify"
      ~iconfig:{ base with Transform.State.expensive_checks = true }
      ();
  ]

(* ------------------------------------------------------------------ *)
(* dynamic-check overhead at Case-Study-1 scale                        *)
(* ------------------------------------------------------------------ *)

type check_row = { ck_model : string; ck_off : float; ck_on : float }

(** Cost of the Section-3.3 dynamic pre/post-condition checks on a real
    compilation flow (squeezenet through the TOSA pipeline). *)
let dynamic_check_overhead ctx =
  let spec =
    List.find
      (fun s -> s.Workloads.Models.sp_name = "squeezenet")
      Workloads.Models.paper_models
  in
  let passes =
    match Passes.Pass.parse_pipeline Workloads.Models.tosa_pipeline_str with
    | Ok ps -> ps
    | Error e -> failwith (Ir.Diag.to_string e)
  in
  let compile ~checks =
    let md = Workloads.Models.build spec in
    let script = Transform.From_pipeline.script_of_pipeline passes in
    let config =
      { Transform.State.default_config with
        Transform.State.check_conditions = checks }
    in
    Gc.major ();
    let (), t =
      time (fun () ->
          match Transform.Schedule.run ~mode:`Interpret ~config ctx ~script ~payload:md with
          | Ok _ -> ()
          | Error e -> failwith (Transform.Terror.to_string e))
    in
    t
  in
  ignore (compile ~checks:false);
  {
    ck_model = spec.Workloads.Models.sp_name;
    ck_off = compile ~checks:false;
    ck_on = compile ~checks:true;
  }

let pp_check_row fmt r =
  Fmt.pf fmt
    "dynamic condition checks on %s pipeline: off %.1f ms, on %.1f ms \
     (%.2fx)@."
    r.ck_model (r.ck_off *. 1000.) (r.ck_on *. 1000.) (r.ck_on /. r.ck_off)

let pp_rows fmt rows =
  Fmt.pf fmt "%-28s %8s %12s %s@." "Configuration" "steps" "time" "ok";
  List.iter
    (fun r ->
      Fmt.pf fmt "%-28s %8d %10.2f ms %s@." r.config r.steps
        (r.seconds *. 1000.)
        (if r.ok then "yes" else "NO"))
    rows

(* ------------------------------------------------------------------ *)
(* intrusive op lists: O(1) insert/erase regardless of block size       *)
(* ------------------------------------------------------------------ *)

type ilist_row = { block_size : int; ns_per_mutation : float }

(** Measure erase+reinsert of an op in the middle of blocks of growing
    size. With the intrusive doubly-linked design (DESIGN.md) the cost is
    flat; a list-copy representation would grow linearly. *)
let ilist_ablation ?(reps = 50_000) () =
  List.map
    (fun block_size ->
      let block = Ir.Ircore.create_block () in
      let ops =
        Array.init block_size (fun i ->
            let o = Ir.Ircore.create (Fmt.str "test.o%d" (i land 7)) in
            Ir.Ircore.insert_at_end block o;
            o)
      in
      let victim = ops.(block_size / 2) in
      let anchor = ops.((block_size / 2) + 1) in
      let t0 = Unix.gettimeofday () in
      for _ = 1 to reps do
        Ir.Ircore.detach victim;
        Ir.Ircore.insert_before ~anchor victim
      done;
      let dt = Unix.gettimeofday () -. t0 in
      { block_size; ns_per_mutation = dt /. float_of_int reps *. 1e9 })
    [ 1_000; 10_000; 100_000 ]

let pp_ilist_rows fmt rows =
  Fmt.pf fmt "intrusive op-list mutation cost (detach + insert_before):@.";
  List.iter
    (fun r ->
      Fmt.pf fmt "  block of %7d ops: %6.1f ns/mutation@." r.block_size
        r.ns_per_mutation)
    rows;
  match rows with
  | first :: _ ->
    let last = List.nth rows (List.length rows - 1) in
    Fmt.pf fmt "  100x larger block costs %.1fx more (O(1) = ~1x)@."
      (last.ns_per_mutation /. first.ns_per_mutation)
  | [] -> ()
