(** Experiment E6 (Case Study 5, Figures 9-11): autotuning the tile sizes
    (and vectorization) of a batch-matmul Transform script with a BaCO-like
    Bayesian optimizer.

    Search space (Figure 10): tile_i/tile_k/tile_j must divide their
    dimensions; vectorization is enabled only when the innermost trip count
    (tile_j) is divisible by the machine vector width. *)


let m = 128
let n = 128
let k = 128
let vector_width = 8

(** A configuration evaluated by the tuner. *)
type config = { ti : int; tk : int; tj : int; vectorize : bool }

let config_of_point pt =
  {
    ti = Autotune.Space.get pt "tile_i";
    tk = Autotune.Space.get pt "tile_k";
    tj = Autotune.Space.get pt "tile_j";
    vectorize = Autotune.Space.get pt "vectorize" = 1;
  }

(** Figure 10: the tuning parameters and constraints. *)
let space () =
  let divs d = List.filter (fun x -> x >= 2) (Autotune.Space.divisors d) in
  Autotune.Space.make
    ~constraints:
      [
        ( "vectorize_requires_divisible_tile_j",
          fun pt ->
            Autotune.Space.get pt "vectorize" = 0
            || Autotune.Space.get pt "tile_j" mod vector_width = 0 );
      ]
    [
      Autotune.Space.param "tile_i" (divs m);
      Autotune.Space.param "tile_k" (divs k);
      Autotune.Space.param "tile_j" (divs n);
      Autotune.Space.param "vectorize" [ 0; 1 ];
    ]

(** The parametric Transform script of Figure 9: tile the (i,k,j) nest with
    parameter-provided sizes, then optionally vectorize the innermost point
    loop. *)
let script_for cfg =
  Transform.Build.script (fun rw root ->
      let loop = Transform.Build.match_op rw ~select:"first" ~name:"scf.for" root in
      let p_ti = Transform.Build.param_constant rw cfg.ti in
      let p_tk = Transform.Build.param_constant rw cfg.tk in
      let p_tj = Transform.Build.param_constant rw cfg.tj in
      let _tiles, points =
        Transform.Build.loop_tile rw ~size_params:[ p_ti; p_tk; p_tj ]
          ~sizes:[] loop
      in
      if cfg.vectorize then begin
        (* innermost point loop: j *)
        let inner2 = Transform.Build.match_op rw ~select:"second" ~name:"scf.for" points in
        ignore (Transform.Build.loop_vectorize rw ~width:vector_width inner2)
      end)

(** Simulated runtime of the kernel under configuration [cfg]. *)
let evaluate ctx cfg =
  let md = Workloads.Matmul.build_module ~order:Workloads.Matmul.Ikj ~m ~n ~k () in
  match Transform.Schedule.run ctx ~script:(script_for cfg) ~payload:md with
  | Error e ->
    failwith (Fmt.str "cs5 transform failed (%d/%d/%d/%b): %s" cfg.ti cfg.tk
                cfg.tj cfg.vectorize
                (Transform.Terror.to_string e))
  | Ok _ -> (
    match Workloads.Matmul.run_matmul ~ir_ctx:ctx ~m ~n ~k md with
    | Error e -> failwith e
    | Ok (_, _, _, _, report) -> report.Interp.Machine.r_seconds)

type outcome = {
  default_seconds : float;  (** untransformed kernel *)
  result : Autotune.Search.result;
  random_result : Autotune.Search.result;
  speedup : float;
  bayes_evals_to_95 : int;  (** evaluations to reach 95% of the best found *)
  random_evals_to_95 : int;
}

(** Iteration at which best-so-far first comes within [tolerance] of
    [target] (a search-efficiency measure for Figure 11). *)
let evals_to_within ?(tolerance = 0.05) target (r : Autotune.Search.result) =
  let rec go = function
    | [] -> r.Autotune.Search.history |> List.length
    | e :: rest ->
      if e.Autotune.Search.e_best_so_far <= target *. (1.0 +. tolerance) then
        e.Autotune.Search.e_iteration
      else go rest
  in
  go r.Autotune.Search.history

let run ?(budget = 24) ctx =
  let default_seconds =
    let md = Workloads.Matmul.build_module ~order:Workloads.Matmul.Ikj ~m ~n ~k () in
    match Workloads.Matmul.run_matmul ~ir_ctx:ctx ~m ~n ~k md with
    | Ok (_, _, _, _, report) -> report.Interp.Machine.r_seconds
    | Error e -> failwith e
  in
  let space = space () in
  let objective pt = evaluate ctx (config_of_point pt) in
  let result = Autotune.Search.bayesian ~seed:3 ~budget space objective in
  let random_result = Autotune.Search.random_search ~seed:3 ~budget space objective in
  let best =
    Float.min result.Autotune.Search.best_objective
      random_result.Autotune.Search.best_objective
  in
  {
    default_seconds;
    result;
    random_result;
    speedup = default_seconds /. result.Autotune.Search.best_objective;
    bayes_evals_to_95 = evals_to_within best result;
    random_evals_to_95 = evals_to_within best random_result;
  }

let pp_outcome fmt o =
  Fmt.pf fmt "default (untiled) kernel:  %.5f s (simulated)@." o.default_seconds;
  Fmt.pf fmt "best found (bayesian):     %.5f s with %a@."
    o.result.Autotune.Search.best_objective Autotune.Space.pp_point
    o.result.Autotune.Search.best_point;
  Fmt.pf fmt "best found (random):       %.5f s@."
    o.random_result.Autotune.Search.best_objective;
  Fmt.pf fmt "evals to 95%% of best:      bayesian %d, random %d@."
    o.bayes_evals_to_95 o.random_evals_to_95;
  Fmt.pf fmt "speedup vs default:        %.2fx (paper reaches 1.68x)@." o.speedup;
  Fmt.pf fmt "performance evolution (best-so-far speedup per iteration):@.";
  List.iteri
    (fun i best ->
      if i mod 2 = 0 then
        Fmt.pf fmt "  iter %2d: %.2fx %s@." (i + 1)
          (o.default_seconds /. best)
          (String.make
             (int_of_float (Float.round (o.default_seconds /. best *. 20.)))
             '#'))
    (Autotune.Search.best_curve o.result)
