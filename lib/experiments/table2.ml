(** Experiment E3 (Table 2, Case Study 2): pre-/post-conditions of the
    lowering passes, the static detection of the leftover [affine.apply] in
    the naive pipeline, and the dynamic counterpart (the unrealized-cast
    legalization failure on the dynamic-offset input). *)

open Ir

type outcome = {
  naive_static : Transform.Conditions.report;
  robust_static : Transform.Conditions.report;
  naive_dynamic_static_offset : (unit, string) result;
  naive_dynamic_dynamic_offset : (unit, string) result;
  robust_dynamic_dynamic_offset : (unit, string) result;
}

(* The op kinds of the Case-Study-2 input program. The memref ops are listed
   exactly (rather than as the {memref.*} wildcard) so the checker can
   discharge them against the precise pre-conditions of the lowering
   passes — a wildcard could only be discharged by a pass claiming to
   consume *all* memref ops, which would hide exactly the
   subview-vs-subview.constr distinction the case study is about. *)
let initial_opset =
  [
    Opset.dialect "func"; Opset.dialect "scf"; Opset.dialect "arith";
    Opset.exact "memref.subview"; Opset.exact "memref.load";
    Opset.exact "memref.store";
  ]

let final_opset = [ Opset.dialect "llvm" ]

let passes_of names = List.map Passes.Pass.lookup_exn names

(** Run a pipeline dynamically on the given payload variant. *)
let run_dynamic ctx names variant =
  let md = Workloads.Subview_kernel.build variant in
  match Passes.Pass.run_pipeline ctx (passes_of names) md with
  | Ok (_ : Passes.Pass.run_result) -> Ok ()
  | Error d -> Error (Ir.Diag.to_string d)

let run ctx =
  let naive = passes_of Workloads.Subview_kernel.naive_pipeline in
  let robust = passes_of Workloads.Subview_kernel.robust_pipeline in
  {
    naive_static =
      Transform.Conditions.check_passes ~initial:initial_opset
        ~final:final_opset naive;
    robust_static =
      Transform.Conditions.check_passes ~initial:initial_opset
        ~final:final_opset robust;
    naive_dynamic_static_offset =
      run_dynamic ctx Workloads.Subview_kernel.naive_pipeline
        Workloads.Subview_kernel.Static_offset;
    naive_dynamic_dynamic_offset =
      run_dynamic ctx Workloads.Subview_kernel.naive_pipeline
        Workloads.Subview_kernel.Dynamic_offset;
    robust_dynamic_dynamic_offset =
      run_dynamic ctx Workloads.Subview_kernel.robust_pipeline
        Workloads.Subview_kernel.Dynamic_offset;
  }

(** Print the pre/post-condition table itself (Table 2). *)
let pp_conditions fmt () =
  Fmt.pf fmt "%-28s %-28s %s@." "Pass" "Pre-conditions" "Post-conditions";
  List.iter
    (fun name ->
      let p = Passes.Pass.lookup_exn name in
      Fmt.pf fmt "%-28s %-28s %s@." name
        (Opset.to_string p.Passes.Pass.pre)
        (Opset.to_string p.Passes.Pass.post))
    Workloads.Subview_kernel.naive_pipeline

let pp_outcome fmt o =
  Fmt.pf fmt "--- static check: naive pipeline (1-7) ---@.";
  Transform.Conditions.pp_report fmt o.naive_static;
  Fmt.pf fmt "--- static check: robust pipeline (with lower-affine) ---@.";
  Transform.Conditions.pp_report fmt o.robust_static;
  let pr name = function
    | Ok () -> Fmt.pf fmt "%-45s OK@." name
    | Error e -> Fmt.pf fmt "%-45s ERROR: %s@." name e
  in
  Fmt.pf fmt "--- dynamic runs ---@.";
  pr "naive pipeline, static offset" o.naive_dynamic_static_offset;
  pr "naive pipeline, dynamic offset" o.naive_dynamic_dynamic_offset;
  pr "robust pipeline, dynamic offset" o.robust_dynamic_dynamic_offset
