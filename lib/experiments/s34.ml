(** Experiment E8 (Section 3.4, Figure 5): transform-IR introspection.

    An AD transform must emit "add" ops matching the abstraction level at
    its position in the pipeline. We build three scripts placing
    [transform.enzyme_ad] before any lowering (StableHLO level), after the
    shlo→arith lowering, and after the arith→LLVM lowering, run
    {!Transform.Introspect.infer_add_kinds} on each, then execute them and
    check the gradient adds that actually appear in the payload. *)

open Ir

(* a small lowering pass: shlo elementwise ops -> arith (registered once) *)
let registered = ref false

let register_shlo_to_arith () =
  if not !registered then begin
    registered := true;
    Passes.Pass.register
      (Passes.Pass.make ~name:"convert-shlo-to-arith"
         ~summary:"lower StableHLO-like elementwise ops to arith"
         ~pre:[ Opset.dialect "shlo" ]
         ~post:
           [
             Opset.exact "arith.addf"; Opset.exact "arith.subf";
             Opset.exact "arith.mulf"; Opset.exact "arith.divf";
             Opset.exact "arith.constant";
           ]
         (fun _ctx top ->
           let rw = Rewriter.create () in
           let rename =
             [
               ("shlo.add", "arith.addf"); ("shlo.subtract", "arith.subf");
               ("shlo.multiply", "arith.mulf"); ("shlo.divide", "arith.divf");
             ]
           in
           List.iter
             (fun (from, to_) ->
               Passes.Pass.for_each_op ~op_name:from top (fun op ->
                   ignore
                     (Rewriter.replace_op_with rw op
                        ~operands:(Ircore.operands op) to_)))
             rename;
           Ok ()))
  end

(** Payload: a few shlo multiplies on scalars-as-tensors. *)
let payload () =
  let open Dialects in
  let md = Builtin.create_module () in
  let t = Typ.tensor (Typ.static_dims [ 4 ]) Typ.f32 in
  let fop, entry =
    Func.create ~name:"f" ~arg_types:[ t; t ] ~result_types:[ t ] ()
  in
  Ircore.insert_at_end (Builtin.body_block md) fop;
  let rw = Dutil.rw_at_end entry in
  let x = Ircore.block_arg entry 0 and y = Ircore.block_arg entry 1 in
  let a = Shlo.multiply rw x y in
  let b = Shlo.multiply rw a x in
  Func.return rw ~operands:[ b ] ();
  md

type level = Before_lowering | After_arith | After_llvm

let script_for level =
  Transform.Build.script (fun rw root ->
      let f = Transform.Build.match_op rw ~name:"func.func" root in
      let ad target =
        ignore
          (Rewriter.build rw ~operands:[ target ] Transform.Ops.enzyme_ad_op)
      in
      match level with
      | Before_lowering ->
        ad f;
        ignore
          (Transform.Build.apply_registered_pass rw
             ~pass_name:"convert-shlo-to-arith" f)
      | After_arith ->
        let f2 =
          Transform.Build.apply_registered_pass rw
            ~pass_name:"convert-shlo-to-arith" f
        in
        ad f2
      | After_llvm ->
        let f2 =
          Transform.Build.apply_registered_pass rw
            ~pass_name:"convert-shlo-to-arith" f
        in
        let f3 =
          Transform.Build.apply_registered_pass rw
            ~pass_name:"convert-arith-to-llvm" f2
        in
        ad f3)

type row = {
  level_name : string;
  inferred_add : string;
  gradient_adds : (string * int) list;  (** op name -> count in payload *)
}

let run_level ctx (name, level) =
  let script = script_for level in
  let inferred = Transform.Introspect.infer_add_kinds script in
  let md = payload () in
  (match Transform.Schedule.run ctx ~script ~payload:md with
  | Ok _ -> ()
  | Error e -> failwith (Fmt.str "%s: %s" name (Transform.Terror.to_string e)));
  {
    level_name = name;
    inferred_add = (match inferred with [ k ] -> k | _ -> "?");
    gradient_adds = Transform.Introspect.count_gradient_adds md;
  }

let run ctx =
  register_shlo_to_arith ();
  List.map (run_level ctx)
    [
      ("AD at StableHLO level", Before_lowering);
      ("AD at arith level", After_arith);
      ("AD at LLVM level", After_llvm);
    ]

let pp_rows fmt rows =
  Fmt.pf fmt "%-24s %-12s %s@." "Placement" "inferred add" "gradient adds in payload";
  List.iter
    (fun r ->
      Fmt.pf fmt "%-24s %-12s %a@." r.level_name r.inferred_add
        (Fmt.list ~sep:Fmt.comma (fun fmt (k, v) -> Fmt.pf fmt "%s x%d" k v))
        r.gradient_adds)
    rows
