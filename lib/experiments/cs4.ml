(** Experiment E5 (Case Study 4, Figures 7/8): fine-grained control of a
    ResNet-50-layer matmul loop nest.

    Variants compared on the machine model (sizes scaled from the paper's
    testbed to interpreter scale; the i-dimension keeps the paper's 196 so
    the 196 = 6*32 + 4 split story is preserved):

    - naive: the untransformed loop nest;
    - "OpenMP-style": tiling with min-guarded bounds, the best one can
      express with [#pragma omp tile sizes(32,32)];
    - transform: split into divisible + remainder, tile the main part,
      fully unroll the remainder (Figure 8 lines 2-5);
    - microkernel: additionally replace the inner tile with a libxsmm-style
      GEMM call wrapped in [transform.alternatives] (Figure 8 lines 6-8). *)


let m = 196
let n = 128
let k = 64
let tile = 32

type variant = {
  v_name : string;
  v_seconds : float;
  v_l1_hit : float;
  v_correct : bool;
}

type outcome = { variants : variant list; speedup_microkernel : float }

let run_variant ctx ~name transform_script =
  let md = Workloads.Matmul.build_module ~m ~n ~k () in
  (match transform_script with
  | None -> ()
  | Some script -> (
    match Transform.Schedule.run ctx ~script ~payload:md with
    | Ok _ -> ()
    | Error e ->
      failwith (Fmt.str "%s: %s" name (Transform.Terror.to_string e))));
  match Workloads.Matmul.run_matmul ~ir_ctx:ctx ~m ~n ~k md with
  | Error e -> failwith (Fmt.str "%s: %s" name e)
  | Ok (a, b, c_init, c_out, report) ->
    let expected = Workloads.Matmul.reference ~m ~n ~k a b c_init in
    {
      v_name = name;
      v_seconds = report.Interp.Machine.r_seconds;
      v_l1_hit = report.Interp.Machine.r_l1_hit_rate;
      v_correct = Workloads.Matmul.max_abs_diff expected c_out < 1e-3;
    }

(** OpenMP-style: tile (i, j) with min-guards; no split, no remainder
    control (196 is not divisible by 32, so the guard stays). *)
let openmp_script () =
  Transform.Build.script (fun rw root ->
      let loop = Transform.Build.match_op rw ~select:"first" ~name:"scf.for" root in
      ignore (Transform.Build.loop_tile rw ~sizes:[ tile; tile ] loop))

(** Figure 8 lines 1-5 + 9: split, tile the divisible part, unroll rest. *)
let transform_script () =
  Transform.Build.script (fun rw root ->
      let loop = Transform.Build.match_op rw ~select:"first" ~name:"scf.for" root in
      let main, rest = Transform.Build.loop_split rw ~div_by:tile loop in
      ignore (Transform.Build.loop_tile rw ~sizes:[ tile; tile ] main);
      Transform.Build.loop_unroll_full rw rest)

(** Figure 8 complete: plus alternatives-wrapped microkernel replacement. *)
let microkernel_script () =
  Transform.Build.script (fun rw root ->
      let loop = Transform.Build.match_op rw ~select:"first" ~name:"scf.for" root in
      let main, rest = Transform.Build.loop_split rw ~div_by:tile loop in
      let _tiles, points = Transform.Build.loop_tile rw ~sizes:[ tile; tile ] main in
      Transform.Build.alternatives rw
        [
          (fun brw -> Transform.Build.to_library brw ~library:"libxsmm" points);
          (fun _ -> ());
        ];
      Transform.Build.loop_unroll_full rw rest)

(** The same microkernel result reached from the Linalg level: tile the
    [linalg.matmul] structurally, replace the inner tile with the library
    call (28 divides 196, so no split is needed on this path). *)
let structured_variant ctx =
  let md = Workloads.Matmul.build_linalg_module ~m ~n ~k () in
  let script =
    Transform.Build.script (fun rw root ->
        let mm = Transform.Build.match_op rw ~name:"linalg.matmul" root in
        let _loops, inner =
          Transform.Build.structured_tile rw ~sizes:[ 28; 32; 0 ] mm
        in
        Transform.Build.alternatives rw
          [
            (fun brw ->
              Transform.Build.structured_to_library brw ~library:"libxsmm" inner);
            (fun brw -> Transform.Build.structured_to_loops brw inner);
          ])
  in
  (match Transform.Schedule.run ctx ~script ~payload:md with
  | Ok _ -> ()
  | Error e -> failwith (Transform.Terror.to_string e));
  match Workloads.Matmul.run_matmul ~ir_ctx:ctx ~m ~n ~k md with
  | Error e -> failwith e
  | Ok (a, b, c_init, c_out, report) ->
    let expected = Workloads.Matmul.reference ~m ~n ~k a b c_init in
    {
      v_name = "structured tile+libxsmm";
      v_seconds = report.Interp.Machine.r_seconds;
      v_l1_hit = report.Interp.Machine.r_l1_hit_rate;
      v_correct = Workloads.Matmul.max_abs_diff expected c_out < 1e-3;
    }

let run ctx =
  let variants =
    [
      run_variant ctx ~name:"naive loop nest" None;
      run_variant ctx ~name:"OpenMP-style tiling" (Some (openmp_script ()));
      run_variant ctx ~name:"Transform split+tile" (Some (transform_script ()));
      run_variant ctx ~name:"Transform + libxsmm" (Some (microkernel_script ()));
      structured_variant ctx;
    ]
  in
  let find name =
    List.find (fun v -> v.v_name = name) variants
  in
  let tiled = find "OpenMP-style tiling" in
  let micro = find "Transform + libxsmm" in
  { variants; speedup_microkernel = tiled.v_seconds /. micro.v_seconds }

let pp_outcome fmt o =
  Fmt.pf fmt "%-24s %12s %8s %s@." "Variant" "sim time" "L1 hit" "correct";
  List.iter
    (fun v ->
      Fmt.pf fmt "%-24s %10.4f s %6.1f%% %s@." v.v_name v.v_seconds
        (100. *. v.v_l1_hit)
        (if v.v_correct then "yes" else "NO"))
    o.variants;
  Fmt.pf fmt "microkernel speedup over tiled: %.1fx (paper: 0.48s / 0.017s = 28x)@."
    o.speedup_microkernel
