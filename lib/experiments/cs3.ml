(** Experiment E4 (Case Study 3): hunting the counterproductive peephole
    pattern via binary search over the pattern set, driven by editing a
    Transform script instead of rebuilding the compiler.

    The paper's numbers: a 5.4 GiB hermetic rebuild costs ~195 s per probe
    (31 s linking + 164 s packaging); a Transform-script probe costs ≤4 s.
    Here each probe is measured for real (build payload + apply patterns +
    fusion-model estimate) and the rebuild cost is reported alongside as
    the paper's constant. *)


let rebuild_link_s = 31.0
let rebuild_package_s = 164.0
let rebuild_total_s = rebuild_link_s +. rebuild_package_s

type probe = {
  pr_patterns : string list;
  pr_estimate : float;  (** fusion-model seconds for the optimized LLM *)
  pr_compile_s : float;  (** measured probe cost *)
}

type outcome = {
  baseline_estimate : float;  (** no patterns applied *)
  full_estimate : float;  (** all patterns: the regression *)
  fixed_estimate : float;  (** all patterns minus the culprit *)
  culprit : string;
  probes : probe list;  (** binary-search probes in order *)
  transform_total_s : float;
  rebuild_total_estimate_s : float;
}

(** One probe: fresh LLM, apply [patterns] through a Transform script,
    estimate with the fusion model. *)
let probe ctx patterns =
  let t0 = Unix.gettimeofday () in
  let md = Workloads.Llm.build () in
  let script =
    Transform.Build.script (fun rw root ->
        let f = Transform.Build.match_op rw ~name:"func.func" root in
        (* run the driver even for the empty set: every probe then includes
           the same folding/DCE/constant-uniquing base work, so estimate
           deltas isolate the pattern subset under test *)
        Transform.Build.apply_patterns rw f patterns)
  in
  (match Transform.Schedule.run ctx ~script ~payload:md with
  | Ok _ -> ()
  | Error e -> failwith (Transform.Terror.to_string e));
  let est = (Interp.Fusion_model.estimate (Workloads.Llm.func_of md)).Interp.Fusion_model.total_seconds in
  let dt = Unix.gettimeofday () -. t0 in
  ( {
      pr_patterns = patterns;
      pr_estimate = est;
      pr_compile_s = dt;
    },
    est )

let run ctx =
  let all = Dialects.Shlo_patterns.names () in
  let probes = ref [] in
  let do_probe patterns =
    let p, est = probe ctx patterns in
    probes := p :: !probes;
    est
  in
  let baseline = do_probe [] in
  let full = do_probe all in
  (* delta-debug: find the single pattern whose removal fixes the
     regression. [candidates] always contains the culprit. *)
  let without subset =
    List.filter (fun p -> not (List.mem p subset)) all
  in
  let fixed estimate = estimate <= baseline in
  let rec search candidates =
    match candidates with
    | [ c ] -> c
    | _ ->
      let n = List.length candidates in
      let half1 = List.filteri (fun i _ -> i < n / 2) candidates in
      let half2 = List.filteri (fun i _ -> i >= n / 2) candidates in
      let est = do_probe (without half1) in
      if fixed est then search half1 else search half2
  in
  let culprit = search all in
  let fixed_estimate = do_probe (without [ culprit ]) in
  let probes = List.rev !probes in
  let transform_total_s =
    List.fold_left (fun acc p -> acc +. p.pr_compile_s) 0.0 probes
  in
  {
    baseline_estimate = baseline;
    full_estimate = full;
    fixed_estimate;
    culprit;
    probes;
    transform_total_s;
    rebuild_total_estimate_s =
      float_of_int (List.length probes) *. rebuild_total_s;
  }

let pp_outcome fmt o =
  Fmt.pf fmt "pattern set size:            %d@."
    (List.length (Dialects.Shlo_patterns.names ()));
  Fmt.pf fmt "baseline (no patterns):      %.3f ms (fusion model)@."
    (o.baseline_estimate *. 1e3);
  Fmt.pf fmt "all patterns:                %.3f ms (%+.1f%% vs baseline)@."
    (o.full_estimate *. 1e3)
    ((o.full_estimate -. o.baseline_estimate) /. o.baseline_estimate *. 100.);
  Fmt.pf fmt "culprit found:               %s@." o.culprit;
  Fmt.pf fmt "all minus culprit:           %.3f ms (%+.1f%% vs baseline)@."
    (o.fixed_estimate *. 1e3)
    ((o.fixed_estimate -. o.baseline_estimate) /. o.baseline_estimate *. 100.);
  Fmt.pf fmt "binary-search probes:        %d@." (List.length o.probes);
  Fmt.pf fmt "transform-script probing:    %.2f s total (measured)@."
    o.transform_total_s;
  Fmt.pf fmt
    "C++ rebuild equivalent:      %.0f s total (paper: %.0f s link + %.0f s \
     packaging per probe)@."
    o.rebuild_total_estimate_s rebuild_link_s rebuild_package_s
