(** Experiment E1/E2 (Table 1, Figure 6): compile-time overhead of driving
    the TOSA→Linalg pipeline through the transform interpreter instead of
    the pass manager, on five synthetic ML models with the paper's op
    counts. *)


type row = {
  model : string;
  num_ops : int;
  pm_seconds : float;  (** pass-manager compile time *)
  tf_seconds : float;  (** transform-interpreter compile time *)
  overhead_pct : float;
  identical_ir : bool;
      (** both paths produced byte-identical final IR — the "identical
          compilation flows" premise of the comparison *)
}

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let median xs =
  let sorted = List.sort compare xs in
  List.nth sorted (List.length sorted / 2)

(** Compile [spec]'s model via the pass manager and via an equivalent
    transform script; interleaved repetitions with a major GC collection
    before each timed compile, medians reported. *)
let run_model ?(reps = 5) ctx spec =
  let passes =
    match Passes.Pass.parse_pipeline Workloads.Models.tosa_pipeline_str with
    | Ok ps -> ps
    | Error e -> failwith (Ir.Diag.to_string e)
  in
  let pm_times = ref [] and tf_times = ref [] in
  let num_ops = ref 0 in
  let compile_pm () =
    let md = Workloads.Models.build spec in
    num_ops := Workloads.Models.count_ops md;
    Gc.major ();
    let (_ : Passes.Pass.run_result), t =
      time (fun () ->
          match Passes.Pass.run_pipeline ctx passes md with
          | Ok r -> r
          | Error d -> failwith (Ir.Diag.to_string d))
    in
    (t, md)
  in
  let compile_tf () =
    let md = Workloads.Models.build spec in
    let script = Transform.From_pipeline.script_of_pipeline passes in
    Gc.major ();
    let (), t =
      time (fun () ->
          match Transform.Schedule.run ~mode:`Interpret ctx ~script ~payload:md with
          | Ok _ -> ()
          | Error e ->
            failwith
              (Fmt.str "transform compile of %s failed: %s"
                 spec.Workloads.Models.sp_name
                 (Transform.Terror.to_string e)))
    in
    (t, md)
  in
  (* warm-up both paths once; also check that the two compilation flows are
     genuinely identical by comparing the produced IR *)
  let warm_pm, pm_ir = compile_pm () in
  let _, tf_ir = compile_tf () in
  let identical_ir =
    String.equal (Ir.Printer.op_to_string pm_ir) (Ir.Printer.op_to_string tf_ir)
  in
  (* sub-millisecond compiles are noise-dominated: batch several compiles
     per timing sample so each sample spans a few milliseconds *)
  let batch = max 1 (int_of_float (ceil (3e-3 /. Float.max 1e-5 warm_pm))) in
  let sample compile =
    let t = ref 0.0 in
    for _ = 1 to batch do
      t := !t +. fst (compile ())
    done;
    !t /. float_of_int batch
  in
  (* paired design: the overhead is the median of per-pair ratios, so
     low-frequency machine drift (which hits both paths of a pair almost
     equally) cancels out of the comparison *)
  let ratios = ref [] in
  for _ = 1 to reps do
    let pm = sample compile_pm in
    let tf = sample compile_tf in
    pm_times := pm :: !pm_times;
    tf_times := tf :: !tf_times;
    ratios := (tf -. pm) /. pm :: !ratios
  done;
  let pm = median !pm_times and tf = median !tf_times in
  {
    model = spec.Workloads.Models.sp_name;
    num_ops = !num_ops;
    pm_seconds = pm;
    tf_seconds = tf;
    overhead_pct = median !ratios *. 100.0;
    identical_ir;
  }

let run ?reps ctx =
  List.map (run_model ?reps ctx) Workloads.Models.paper_models

let pp_row fmt r =
  Fmt.pf fmt "%-20s %6d %12.1f %12.1f %8.1f%% %s" r.model r.num_ops
    (r.pm_seconds *. 1000.) (r.tf_seconds *. 1000.) r.overhead_pct
    (if r.identical_ir then "yes" else "NO")

let pp_table fmt rows =
  Fmt.pf fmt "%-20s %6s %12s %12s %9s %s@." "Model" "#Ops" "MLIR (ms)"
    "Transf (ms)" "Overhead" "same IR";
  List.iter (fun r -> Fmt.pf fmt "%a@." pp_row r) rows

(** ASCII bar chart of the same data (Figure 6). *)
let pp_figure fmt rows =
  let max_t =
    List.fold_left
      (fun acc r -> Float.max acc (Float.max r.pm_seconds r.tf_seconds))
      0.0 rows
  in
  let bar t =
    let w = int_of_float (Float.round (t /. max_t *. 50.0)) in
    String.make (max 1 w) '#'
  in
  List.iter
    (fun r ->
      Fmt.pf fmt "%-20s pass-manager %7.1fms %s@." r.model
        (r.pm_seconds *. 1000.) (bar r.pm_seconds);
      Fmt.pf fmt "%-20s transform    %7.1fms %s@." "" (r.tf_seconds *. 1000.)
        (bar r.tf_seconds))
    rows
