(** Extension of Case Study 5: autotuning at the *structured-op* level.

    The search space tunes the tile sizes of a [transform.structured_tile]
    and whether to attempt the microkernel; because libxsmm only supports
    block shapes up to 64 (with n divisible by 4), the microkernel choice
    interacts with the tile-size choice through the
    [transform.alternatives] fallback — a search space the paper's loop-level
    study does not have, exercising exactly the composability the Transform
    dialect is about. *)

let m = 128
let n = 128
let k = 64

type config = { ti : int; tj : int; use_library : bool }

let config_of_point pt =
  {
    ti = Autotune.Space.get pt "tile_i";
    tj = Autotune.Space.get pt "tile_j";
    use_library = Autotune.Space.get pt "library" = 1;
  }

let space () =
  let divs d = List.filter (fun x -> x >= 4) (Autotune.Space.divisors d) in
  Autotune.Space.make
    [
      Autotune.Space.param "tile_i" (divs m);
      Autotune.Space.param "tile_j" (divs n);
      Autotune.Space.param "library" [ 0; 1 ];
    ]

let script_for cfg =
  Transform.Build.script (fun rw root ->
      let mm = Transform.Build.match_op rw ~name:"linalg.matmul" root in
      let _loops, inner =
        Transform.Build.structured_tile rw ~sizes:[ cfg.ti; cfg.tj; 0 ] mm
      in
      if cfg.use_library then
        Transform.Build.alternatives rw
          [
            (fun brw ->
              Transform.Build.structured_to_library brw ~library:"libxsmm" inner);
            (fun brw -> Transform.Build.structured_to_loops brw inner);
          ]
      else Transform.Build.structured_to_loops rw inner)

let evaluate ctx cfg =
  let md = Workloads.Matmul.build_linalg_module ~m ~n ~k () in
  match Transform.Schedule.run ctx ~script:(script_for cfg) ~payload:md with
  | Error e ->
    failwith
      (Fmt.str "structured autotune transform failed: %s"
         (Transform.Terror.to_string e))
  | Ok _ -> (
    match Workloads.Matmul.run_matmul ~ir_ctx:ctx ~m ~n ~k md with
    | Error e -> failwith e
    | Ok (_, _, _, _, report) -> report.Interp.Machine.r_seconds)

type outcome = {
  result : Autotune.Search.result;
  best_uses_library : bool;
  loops_only_best : float;  (** best objective among library=0 points *)
}

let run ?(budget = 20) ctx =
  let space = space () in
  let objective pt = evaluate ctx (config_of_point pt) in
  let result = Autotune.Search.bayesian ~seed:11 ~budget space objective in
  let best_cfg = config_of_point result.Autotune.Search.best_point in
  let loops_only_best =
    List.fold_left
      (fun acc e ->
        if Autotune.Space.get e.Autotune.Search.e_point "library" = 0 then
          Float.min acc e.Autotune.Search.e_objective
        else acc)
      Float.infinity result.Autotune.Search.history
  in
  {
    result;
    best_uses_library = best_cfg.use_library;
    loops_only_best;
  }

let pp_outcome fmt o =
  Fmt.pf fmt "best configuration:        %a -> %.5f s@." Autotune.Space.pp_point
    o.result.Autotune.Search.best_point
    o.result.Autotune.Search.best_objective;
  Fmt.pf fmt "best uses the microkernel: %b@." o.best_uses_library;
  if o.loops_only_best < Float.infinity then
    Fmt.pf fmt "best loops-only sampled:   %.5f s (%.1fx slower)@."
      o.loops_only_best
      (o.loops_only_best /. o.result.Autotune.Search.best_objective)
