(** Synthetic TOSA model graphs for Case Study 1 (Table 1).

    The paper imports five ML models from TensorFlow into the TOSA dialect;
    we generate graphs with the *same op counts* and a realistic op mix:
    convolutional backbones (Squeezenet) are built from conv/clamp/pool/
    concat "fire"-style blocks, transformer models (GPT-2, MobileBERT, BERT,
    Whisper) from attention + feed-forward blocks (matmuls, softmax chains,
    layer norms). Compile-time behaviour of the pass pipeline depends on the
    number and kind of ops, which these generators reproduce exactly. *)

open Ir
open Dialects

type style = Conv | Transformer

type spec = {
  sp_name : string;
  sp_ops : int;  (** op count inside the function body (excluding return) *)
  sp_style : style;
}

(** The five models of Table 1, with the paper's op counts. *)
let paper_models =
  [
    { sp_name = "squeezenet"; sp_ops = 126; sp_style = Conv };
    { sp_name = "gpt2"; sp_ops = 2861; sp_style = Transformer };
    { sp_name = "mobilebert"; sp_ops = 4134; sp_style = Transformer };
    { sp_name = "whisper-decoder"; sp_ops = 847; sp_style = Transformer };
    { sp_name = "bert-base-uncased"; sp_ops = 1182; sp_style = Transformer };
  ]

let t2 = Typ.tensor (Typ.static_dims [ 64; 64 ]) Typ.f32
let t4 = Typ.tensor (Typ.static_dims [ 1; 16; 16; 32 ]) Typ.f32

let weight rw typ =
  Tosa.const rw ~typ (Attr.Dense_float ([ 0.5 ], typ))

(* each builder returns (output value, ops emitted) *)

let conv_block rw x =
  let w = weight rw t4 in
  let c = Tosa.binary rw "tosa.conv2d" x w ~result_typ:t4 in
  let b = weight rw t4 in
  let a = Tosa.binary rw "tosa.add" c b ~result_typ:t4 in
  let r = Tosa.unary rw "tosa.clamp" a ~result_typ:t4 in
  (r, 5)

let fire_block rw x =
  (* squeeze conv + relu, two expand convs + relus, concat *)
  let s, n1 = conv_block rw x in
  let e1, n2 = conv_block rw s in
  let e2, n3 = conv_block rw s in
  let cat = Tosa.binary rw "tosa.concat" e1 e2 ~result_typ:t4 in
  let pool = Tosa.unary rw "tosa.max_pool2d" cat ~result_typ:t4 in
  (pool, n1 + n2 + n3 + 2)

let softmax rw x =
  let mx = Tosa.unary rw "tosa.reduce_max" x ~result_typ:t2 in
  let sh = Tosa.binary rw "tosa.sub" x mx ~result_typ:t2 in
  let ex = Tosa.unary rw "tosa.exp" sh ~result_typ:t2 in
  let sm = Tosa.unary rw "tosa.reduce_sum" ex ~result_typ:t2 in
  let rc = Tosa.unary rw "tosa.reciprocal" sm ~result_typ:t2 in
  let out = Tosa.binary rw "tosa.mul" ex rc ~result_typ:t2 in
  (out, 6)

let layer_norm rw x =
  let mean = Tosa.unary rw "tosa.reduce_sum" x ~result_typ:t2 in
  let cent = Tosa.binary rw "tosa.sub" x mean ~result_typ:t2 in
  let sq = Tosa.binary rw "tosa.mul" cent cent ~result_typ:t2 in
  let var = Tosa.unary rw "tosa.reduce_sum" sq ~result_typ:t2 in
  let rs = Tosa.unary rw "tosa.rsqrt" var ~result_typ:t2 in
  let out = Tosa.binary rw "tosa.mul" cent rs ~result_typ:t2 in
  (out, 6)

let attention_block rw x =
  let proj x =
    let w = weight rw t2 in
    (Tosa.binary rw "tosa.fully_connected" x w ~result_typ:t2, 2)
  in
  let q, n1 = proj x in
  let k, n2 = proj x in
  let v, n3 = proj x in
  let kt = Tosa.unary rw "tosa.transpose" k ~result_typ:t2 in
  let scores = Tosa.binary rw "tosa.matmul" q kt ~result_typ:t2 in
  let probs, n4 = softmax rw scores in
  let ctx_v = Tosa.binary rw "tosa.matmul" probs v ~result_typ:t2 in
  let out, n5 = proj ctx_v in
  let res = Tosa.binary rw "tosa.add" out x ~result_typ:t2 in
  let normed, n6 = layer_norm rw res in
  (normed, n1 + n2 + n3 + n4 + n5 + n6 + 4)

let ffn_block rw x =
  let w1 = weight rw t2 in
  let h1 = Tosa.binary rw "tosa.fully_connected" x w1 ~result_typ:t2 in
  let g = Tosa.unary rw "tosa.erf" h1 ~result_typ:t2 in
  let act = Tosa.binary rw "tosa.mul" h1 g ~result_typ:t2 in
  let w2 = weight rw t2 in
  let h2 = Tosa.binary rw "tosa.fully_connected" act w2 ~result_typ:t2 in
  let res = Tosa.binary rw "tosa.add" h2 x ~result_typ:t2 in
  let normed, n = layer_norm rw res in
  (normed, n + 7)

(* one function with exactly [budget] body ops (excluding the return) *)
let emit_func md ~style ~name ~budget =
  let arg_t = match style with Conv -> t4 | Transformer -> t2 in
  let fop, entry =
    Func.create ~name ~arg_types:[ arg_t ] ~result_types:[ arg_t ] ()
  in
  Ircore.insert_at_end (Builtin.body_block md) fop;
  let rw = Dutil.rw_at_end entry in
  let x = ref (Ircore.block_arg entry 0) in
  let emitted = ref 0 in
  let block_cost, block_fn =
    match style with
    | Conv -> (19, fun rw x -> fire_block rw x)
    | Transformer ->
      ( 44,
        fun rw x ->
          let a, n1 = attention_block rw x in
          let f, n2 = ffn_block rw a in
          (f, n1 + n2) )
  in
  while budget - !emitted > block_cost + 1 do
    let y, n = block_fn rw !x in
    x := y;
    emitted := !emitted + n
  done;
  (* pad to the exact count with a rescale/add chain *)
  while budget - !emitted >= 2 do
    let c = weight rw arg_t in
    let y = Tosa.binary rw "tosa.add" !x c ~result_typ:arg_t in
    x := y;
    emitted := !emitted + 2
  done;
  if budget - !emitted = 1 then begin
    let y = Tosa.unary rw "tosa.rescale" !x ~result_typ:arg_t in
    x := y;
    incr emitted
  end;
  Func.return rw ~operands:[ !x ] ()

(** Build a model with exactly [spec.sp_ops] ops split across [funcs]
    function bodies (default 1: one function named [sp_name], the Table-1
    shape). With [funcs > 1] — the multicore pass-manager benchmarks, which
    need several isolated-from-above roots to fan over — functions are
    named [sp_name_0 … sp_name_{n-1}] and the op budget is distributed as
    evenly as possible while keeping the total exact. Blocks are emitted
    while they fit; the remainder is padded with elementwise ops (the tail
    of real graphs: dequantize/rescale chains). *)
let build ?(funcs = 1) spec =
  if funcs < 1 then invalid_arg "Models.build: funcs must be >= 1";
  let md = Builtin.create_module () in
  let per = spec.sp_ops / funcs and rem = spec.sp_ops mod funcs in
  for i = 0 to funcs - 1 do
    let name =
      if funcs = 1 then spec.sp_name else Fmt.str "%s_%d" spec.sp_name i
    in
    emit_func md ~style:spec.sp_style ~name
      ~budget:(per + if i < rem then 1 else 0)
  done;
  md

(** Number of ops in the module's function bodies (excluding module, funcs
    and returns) — the quantity reported in Table 1. *)
let count_ops md =
  let n = ref 0 in
  Ircore.walk_op md ~pre:(fun op ->
      match op.Ircore.op_name with
      | "builtin.module" | "func.func" | "func.return" -> ()
      | _ -> incr n);
  !n

(** The Case-Study-1 lowering pipeline (Section 4.1). *)
let tosa_pipeline_str =
  "tosa-optional-decompositions,tosa-infer-shapes,tosa-to-linalg-named,tosa-to-linalg,tosa-to-arith,tosa-to-tensor,canonicalize,cse"
