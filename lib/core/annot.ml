(** Payload-property annotations for transform handles.

    A handle annotation is a set of declared properties of the payload ops
    a handle points to — "tiled", "tiled_by 32", "vectorized",
    "pass.canonicalize" — established by [ensures] clauses of registered
    transforms and demanded by their [requires] clauses. The same
    declarations drive two checkers:

    - dynamically, {!Interp} checks [requires] against the accumulated
      property set of each consumed operand before dispatch and records
      [ensures] after a successful application;
    - statically, {!Flowcheck} propagates abstract property sets along the
      handle SSA values of a script, without touching any payload.

    The static abstraction is a dual must/may interval per SSA value:
    [must] is the set of properties guaranteed present on every dynamic
    path reaching the program point, [may] is the set possibly present on
    some path. Positive atoms are checked against [must]; negated atoms
    need absence from [may]. The join used at [alternatives] merges and
    [foreach] fixpoints is (must-intersection, may-union), which keeps
    both directions sound. *)

type prop = {
  p_name : string;
  p_arg : int option;  (** e.g. the tile size in "tiled_by 32" *)
}

let flag name = { p_name = name; p_arg = None }
let keyed name arg = { p_name = name; p_arg = Some arg }

let pp_prop fmt p =
  match p.p_arg with
  | None -> Fmt.string fmt p.p_name
  | Some n -> Fmt.pf fmt "%s<%d>" p.p_name n

module Props = Set.Make (struct
  type t = prop

  let compare = compare
end)

let pp_props fmt ps =
  if Props.is_empty ps then Fmt.string fmt "{}"
  else
    Fmt.pf fmt "{%a}" Fmt.(list ~sep:comma pp_prop) (Props.elements ps)

(* ---------------- requirement atoms ---------------- *)

(** Atoms of a [requires] clause. [Has name] ignores the argument ("some
    tiling happened"); the keyed forms constrain it. *)
type atom =
  | Has of string
  | Has_exactly of string * int
  | Has_at_least of string * int

let pp_atom fmt = function
  | Has n -> Fmt.string fmt n
  | Has_exactly (n, k) -> Fmt.pf fmt "%s<%d>" n k
  | Has_at_least (n, k) -> Fmt.pf fmt "%s<>=%d>" n k

type req = atom Irdl.constr

let pp_req = Irdl.pp_constr pp_atom

let atom_holds props = function
  | Has n -> Props.exists (fun p -> p.p_name = n) props
  | Has_exactly (n, k) ->
    Props.exists (fun p -> p.p_name = n && p.p_arg = Some k) props
  | Has_at_least (n, k) ->
    Props.exists
      (fun p ->
        p.p_name = n && match p.p_arg with Some a -> a >= k | None -> false)
      props

(** Exact (dynamic) satisfaction: one concrete property set, so an atom is
    refuted iff it does not hold. *)
let satisfies_exact props req =
  Irdl.constr_holds
    ~atom:(atom_holds props)
    ~atom_refuted:(fun a -> not (atom_holds props a))
    req

(* ---------------- static abstraction ---------------- *)

type info = { must : Props.t; may : Props.t }

let empty_info = { must = Props.empty; may = Props.empty }

(** Abstraction of an exactly-known property set. *)
let exact props = { must = props; may = props }

let join a b =
  { must = Props.inter a.must b.must; may = Props.union a.may b.may }

let info_equal a b = Props.equal a.must b.must && Props.equal a.may b.may

let pp_info fmt i =
  if Props.equal i.must i.may then pp_props fmt i.must
  else Fmt.pf fmt "must=%a may=%a" pp_props i.must pp_props i.may

(** Stable text form, used to key include summaries by argument state. *)
let info_signature i =
  let part ps =
    String.concat ","
      (List.map (fun p -> Fmt.str "%a" pp_prop p) (Props.elements ps))
  in
  Fmt.str "[%s|%s]" (part i.must) (part i.may)

(** Three-valued satisfaction over an abstract interval: positive atoms
    must be guaranteed ([must]); a negated atom needs the property to be
    absent from every path ([may]). *)
let satisfies info req =
  Irdl.constr_holds
    ~atom:(atom_holds info.must)
    ~atom_refuted:(fun a -> not (atom_holds info.may a))
    req

(* ---------------- ensures targets ---------------- *)

(** Where an [ensures] clause lands. Results are fresh SSA values, so
    their property set is replaced; operand targets refine an existing
    handle in place (set union) — e.g. [transform.annotate] adds an
    [annot.<name>] property to its operand without producing a result. *)
type ensure_target = On_result of int | On_operand of int

(* ---------------- diagnostics ---------------- *)

(** Message prefix shared by the dynamic requires-checker and the static
    flow-checker, so the differential fuzz oracle can recognize
    annotation-requirement failures among other definite errors. *)
let requirement_tag = "annotation requirement"

let is_requirement_diag d =
  let msg = Ir.Diag.message d in
  let tag_len = String.length requirement_tag in
  String.length msg >= tag_len && String.sub msg 0 tag_len = requirement_tag
