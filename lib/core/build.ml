(** Programmatic construction of Transform scripts — the API used by the
    examples, the pipeline converter and the autotuner to assemble scripts
    without going through the textual format. *)

open Ir

let h = Typ.transform_any_op
let p = Typ.transform_param

(** A module containing a [transform.named_sequence @__transform_main] whose
    single block argument is the payload-root handle. [body] populates the
    sequence through a rewriter and the root handle. Returns the module. *)
let script ?(name = "__transform_main") body =
  let m = Dialects.Builtin.create_module () in
  let entry = Ircore.create_block ~args:[ h ] () in
  let seq =
    Ircore.create
      ~regions:[ Ircore.region_with_block entry ]
      ~attrs:[ ("sym_name", Attr.String name) ]
      Ops.named_sequence_op
  in
  Ircore.insert_at_end (Dialects.Builtin.body_block m) seq;
  let rw = Rewriter.create ~ip:(Builder.At_end entry) () in
  body rw (Ircore.block_arg entry 0);
  ignore (Rewriter.build rw Ops.yield_op);
  m

(** A bare [transform.sequence] op (with payload-root block arg). *)
let sequence ?(failure_propagation = "propagate") body =
  let entry = Ircore.create_block ~args:[ h ] () in
  let seq =
    Ircore.create
      ~regions:[ Ircore.region_with_block entry ]
      ~attrs:[ ("failure_propagation", Attr.String failure_propagation) ]
      Ops.sequence_op
  in
  let rw = Rewriter.create ~ip:(Builder.At_end entry) () in
  body rw (Ircore.block_arg entry 0);
  ignore (Rewriter.build rw Ops.yield_op);
  seq

(** A nested [transform.sequence] inserted at [rw]'s insertion point —
    used to scope a [failures(suppress)] transaction inside a larger
    script. The body receives the payload-root handle. *)
let nested_sequence rw ?failure_propagation body =
  let seq = sequence ?failure_propagation body in
  Rewriter.insert rw seq;
  seq

(* ------------------------------------------------------------------ *)
(* Individual transforms                                               *)
(* ------------------------------------------------------------------ *)

let match_op rw ?(select = "all") ?dialect ?interface ?has_attr ?name target =
  let opt k v = match v with Some s -> [ (k, Attr.String s) ] | None -> [] in
  Rewriter.build1 rw ~operands:[ target ] ~result_types:[ h ]
    ~attrs:
      (opt "op_name" name @ opt "dialect" dialect @ opt "interface" interface
      @ opt "has_attr" has_attr
      @ [ ("select", Attr.String select) ])
    Ops.match_op

let param_constant rw v =
  Rewriter.build1 rw ~result_types:[ p ]
    ~attrs:[ ("value", Attr.Int (v, Typ.index)) ]
    Ops.param_constant_op

let loop_split rw ?div_by_param ~div_by loop =
  let operands, attrs =
    match div_by_param with
    | Some param -> ([ loop; param ], [])
    | None -> ([ loop ], [ ("div_by", Attr.Int (div_by, Typ.i64)) ])
  in
  let op =
    Rewriter.build rw ~operands ~result_types:[ h; h ] ~attrs Ops.loop_split_op
  in
  (Ircore.result ~index:0 op, Ircore.result ~index:1 op)

let loop_tile rw ?size_params ~sizes loop =
  let operands, attrs =
    match size_params with
    | Some params -> (loop :: params, [])
    | None -> ([ loop ], [ ("tile_sizes", Attr.Int_array sizes) ])
  in
  let op =
    Rewriter.build rw ~operands ~result_types:[ h; h ] ~attrs Ops.loop_tile_op
  in
  (Ircore.result ~index:0 op, Ircore.result ~index:1 op)

let loop_unroll_full rw loop =
  ignore
    (Rewriter.build rw ~operands:[ loop ]
       ~attrs:[ ("full", Attr.Unit) ]
       Ops.loop_unroll_op)

let loop_unroll rw ~factor loop =
  ignore
    (Rewriter.build rw ~operands:[ loop ]
       ~attrs:[ ("factor", Attr.Int (factor, Typ.i64)) ]
       Ops.loop_unroll_op)

let loop_interchange rw loop =
  Rewriter.build1 rw ~operands:[ loop ] ~result_types:[ h ]
    Ops.loop_interchange_op

let loop_hoist rw loop =
  Rewriter.build1 rw ~operands:[ loop ] ~result_types:[ h ] Ops.loop_hoist_op

let loop_vectorize rw ?width_param ?(width = 8) loop =
  let operands, attrs =
    match width_param with
    | Some param -> ([ loop; param ], [])
    | None -> ([ loop ], [ ("width", Attr.Int (width, Typ.i64)) ])
  in
  Rewriter.build1 rw ~operands ~result_types:[ h ] ~attrs Ops.loop_vectorize_op

let loop_fuse rw a b =
  Rewriter.build1 rw ~operands:[ a; b ] ~result_types:[ h ] Ops.loop_fuse_op

let loop_peel rw ~iterations loop =
  let op =
    Rewriter.build rw ~operands:[ loop ] ~result_types:[ h; h ]
      ~attrs:[ ("iterations", Attr.Int (iterations, Typ.i64)) ]
      Ops.loop_peel_op
  in
  (Ircore.result ~index:0 op, Ircore.result ~index:1 op)

let to_library rw ~library loop =
  ignore
    (Rewriter.build rw ~operands:[ loop ]
       ~attrs:[ ("library", Attr.String library) ]
       Ops.to_library_op)

let structured_tile rw ~sizes target =
  let op =
    Rewriter.build rw ~operands:[ target ] ~result_types:[ h; h ]
      ~attrs:[ ("tile_sizes", Attr.Int_array sizes) ]
      Ops.structured_tile_op
  in
  (Ircore.result ~index:0 op, Ircore.result ~index:1 op)

let structured_to_library rw ~library target =
  ignore
    (Rewriter.build rw ~operands:[ target ]
       ~attrs:[ ("library", Attr.String library) ]
       Ops.structured_to_library_op)

let structured_to_loops rw target =
  ignore (Rewriter.build rw ~operands:[ target ] Ops.structured_to_loops_op)

let apply_registered_pass rw ~pass_name target =
  Rewriter.build1 rw ~operands:[ target ] ~result_types:[ h ]
    ~attrs:[ ("pass_name", Attr.String pass_name) ]
    Ops.apply_registered_pass_op

(** [apply_patterns rw target names] lists each pattern by name in the
    region, Case-Study-3 style. *)
let apply_patterns rw target pattern_names =
  let body = Ircore.create_block () in
  List.iter
    (fun name ->
      Ircore.insert_at_end body
        (Ircore.create ~attrs:[ ("name", Attr.String name) ] Ops.pattern_ref_op))
    pattern_names;
  ignore
    (Rewriter.build rw ~operands:[ target ]
       ~regions:[ Ircore.region_with_block body ]
       Ops.apply_patterns_op)

(** [alternatives rw bodies]: one region per body callback. *)
let alternatives rw bodies =
  let regions =
    List.map
      (fun body ->
        let block = Ircore.create_block () in
        let brw = Rewriter.create ~ip:(Builder.At_end block) () in
        body brw;
        Ircore.region_with_block block)
      bodies
  in
  ignore (Rewriter.build rw ~regions Ops.alternatives_op)

(** [foreach rw target body]: iterate the body over each payload op of
    [target], one at a time. The body receives a rewriter positioned in
    the region and the per-iteration handle (the single block argument). *)
let foreach rw target body =
  let block = Ircore.create_block ~args:[ h ] () in
  let brw = Rewriter.create ~ip:(Builder.At_end block) () in
  body brw (Ircore.block_arg block 0);
  ignore (Rewriter.build brw Ops.yield_op);
  ignore
    (Rewriter.build rw ~operands:[ target ]
       ~regions:[ Ircore.region_with_block block ]
       Ops.foreach_op)

let split_handle rw ~n target =
  let op =
    Rewriter.build rw ~operands:[ target ]
      ~result_types:(List.init n (fun _ -> h))
      Ops.split_handle_op
  in
  Ircore.results op

let annotate rw ?value ~name target =
  let attrs =
    ("name", Attr.String name)
    :: (match value with Some v -> [ ("value", v) ] | None -> [])
  in
  ignore (Rewriter.build rw ~operands:[ target ] ~attrs Ops.annotate_op)

let print rw ?(tag = "") target =
  ignore
    (Rewriter.build rw ~operands:[ target ]
       ~attrs:[ ("name", Attr.String tag) ]
       Ops.print_op)

let include_ rw ~target operands ~results =
  Rewriter.build rw ~operands
    ~result_types:(List.init results (fun _ -> h))
    ~attrs:[ ("target", Attr.Symbol_ref (target, [])) ]
    Ops.include_op

(** Define an auxiliary named sequence in the same module. *)
let named_sequence m ~name ~num_args body =
  let entry = Ircore.create_block ~args:(List.init num_args (fun _ -> h)) () in
  let seq =
    Ircore.create
      ~regions:[ Ircore.region_with_block entry ]
      ~attrs:[ ("sym_name", Attr.String name) ]
      Ops.named_sequence_op
  in
  Ircore.insert_at_end (Dialects.Builtin.body_block m) seq;
  let rw = Rewriter.create ~ip:(Builder.At_end entry) () in
  let yielded = body rw (Ircore.block_args entry) in
  ignore (Rewriter.build rw ~operands:yielded Ops.yield_op);
  seq
