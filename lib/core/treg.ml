(** Registry of transform operations — the extensibility mechanism of
    Section 3.2: new transform ops (wrapping existing compiler features or
    custom rewrites, e.g. the microkernel replacement of Case Study 4) are
    registered here, optionally from plugins, without modifying the
    interpreter. *)

open Ir

let no_indices (_ : Ircore.op) = []
let no_set (_ : Ircore.op) = Opset.empty

(** Compile-time metadata of a transform op, in one typed place: what the
    interpreter needs at dispatch time ([consumes], the Section 3.3
    conditions) and what the schedule compiler ({!Schedule}) needs to plan
    ahead of time (arity, purity). *)
type spec = {
  summary : string;
  arity : int option;
      (** fixed operand count, when the op is not variadic; purely
          informational metadata for introspection tools *)
  consumes : Ircore.op -> int list;
      (** operand indices whose handles are invalidated (Section 3.1) *)
  pure : bool;
      (** never mutates payload IR (only reads it or manipulates handles
          and parameters); lets the compiled path skip the
          [expensive_checks] re-verification after the op *)
  pre : Ircore.op -> Opset.t;  (** payload op kinds consumed (Section 3.3) *)
  post : Ircore.op -> Opset.t;  (** payload op kinds introduced *)
  requires : Ircore.op -> (int * Annot.req) list;
      (** per-operand-index property requirements on the handle's
          annotation set, checked before application (dynamically when
          [check_annotations] is set, statically by {!Flowcheck}) *)
  ensures : Ircore.op -> (Annot.ensure_target * Annot.Props.t) list;
      (** properties established on success: [On_result] replaces the
          fresh result handle's set, [On_operand] refines an existing
          handle in place (union) *)
}

let no_reqs (_ : Ircore.op) = []
let no_ensures (_ : Ircore.op) = []

let default_spec =
  {
    summary = "";
    arity = None;
    consumes = no_indices;
    pure = false;
    pre = no_set;
    post = no_set;
    requires = no_reqs;
    ensures = no_ensures;
  }

type def = {
  t_name : string;
  t_spec : spec;
  t_apply : State.t -> Ircore.op -> (unit, Terror.t) result;
}

(* spec accessors: consumers read metadata through these rather than
   projecting record fields, so the spec can keep growing *)
let summary def = def.t_spec.summary
let consumes def op = def.t_spec.consumes op
let is_pure def = def.t_spec.pure
let pre def op = def.t_spec.pre op
let post def op = def.t_spec.post op
let requires def op = def.t_spec.requires op
let ensures def op = def.t_spec.ensures op

let registry : (string, def) Hashtbl.t = Hashtbl.create 32

let register ?(spec = default_spec) ~name apply =
  if Hashtbl.mem registry name then
    invalid_arg (Fmt.str "transform op %s already registered" name);
  Hashtbl.replace registry name { t_name = name; t_spec = spec; t_apply = apply }

let lookup name = Hashtbl.find_opt registry name

(* ------------------------------------------------------------------ *)
(* Application interceptor                                             *)
(* ------------------------------------------------------------------ *)

(** Optional hook wrapping every registered-transform application. The
    fault-injection harness ({!Fuzz.Fault}) installs one to make transforms
    fail or raise after mutating the payload; tests can use it to observe
    applications. The interceptor receives the definition and is
    responsible for calling [def.t_apply] itself. *)
let interceptor :
    (def -> State.t -> Ircore.op -> (unit, Terror.t) result) option ref =
  ref None

(** Install [f] as the application interceptor for the duration of
    [thunk]. *)
let with_interceptor f thunk =
  let saved = !interceptor in
  interceptor := Some f;
  Fun.protect ~finally:(fun () -> interceptor := saved) thunk

(** Apply a registered transform through the interceptor, if any. This is
    the interpreter's entry point; it never calls [t_apply] directly. *)
let apply def st op =
  match !interceptor with
  | None -> def.t_apply st op
  | Some f -> f def st op

let all_registered () =
  Hashtbl.fold (fun _ d acc -> d :: acc) registry []
  |> List.sort (fun a b -> compare a.t_name b.t_name)

(** Fixed consumed-operand lists. *)
let consumes_operand idx (_ : Ircore.op) = [ idx ]
let consumes_first = consumes_operand 0
