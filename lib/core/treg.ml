(** Registry of transform operations — the extensibility mechanism of
    Section 3.2: new transform ops (wrapping existing compiler features or
    custom rewrites, e.g. the microkernel replacement of Case Study 4) are
    registered here, optionally from plugins, without modifying the
    interpreter. *)

open Ir

type def = {
  t_name : string;
  t_summary : string;
  t_consumes : Ircore.op -> int list;
      (** operand indices whose handles are invalidated (Section 3.1) *)
  t_pre : Ircore.op -> Opset.t;  (** payload op kinds consumed (Section 3.3) *)
  t_post : Ircore.op -> Opset.t;  (** payload op kinds introduced *)
  t_apply : State.t -> Ircore.op -> (unit, Terror.t) result;
}

let registry : (string, def) Hashtbl.t = Hashtbl.create 32

let no_indices (_ : Ircore.op) = []
let no_set (_ : Ircore.op) = Opset.empty

let register ?(summary = "") ?(consumes = no_indices) ?(pre = no_set)
    ?(post = no_set) ~name apply =
  if Hashtbl.mem registry name then
    invalid_arg (Fmt.str "transform op %s already registered" name);
  Hashtbl.replace registry name
    {
      t_name = name;
      t_summary = summary;
      t_consumes = consumes;
      t_pre = pre;
      t_post = post;
      t_apply = apply;
    }

let lookup name = Hashtbl.find_opt registry name

(* ------------------------------------------------------------------ *)
(* Application interceptor                                             *)
(* ------------------------------------------------------------------ *)

(** Optional hook wrapping every registered-transform application. The
    fault-injection harness ({!Fuzz.Fault}) installs one to make transforms
    fail or raise after mutating the payload; tests can use it to observe
    applications. The interceptor receives the definition and is
    responsible for calling [def.t_apply] itself. *)
let interceptor :
    (def -> State.t -> Ircore.op -> (unit, Terror.t) result) option ref =
  ref None

(** Install [f] as the application interceptor for the duration of
    [thunk]. *)
let with_interceptor f thunk =
  let saved = !interceptor in
  interceptor := Some f;
  Fun.protect ~finally:(fun () -> interceptor := saved) thunk

(** Apply a registered transform through the interceptor, if any. This is
    the interpreter's entry point; it never calls [t_apply] directly. *)
let apply def st op =
  match !interceptor with
  | None -> def.t_apply st op
  | Some f -> f def st op

let all_registered () =
  Hashtbl.fold (fun _ d acc -> d :: acc) registry []
  |> List.sort (fun a b -> compare a.t_name b.t_name)

(** Fixed consumed-operand lists. *)
let consumes_operand idx (_ : Ircore.op) = [ idx ]
let consumes_first = consumes_operand 0
