(** Transform-script introspection (Section 3.4, Figure 5): automatically
    configuring transformations from their position in the script.

    The running example is automatic differentiation: the AD transform must
    emit "add" ops of the dialect that is current at its point in the
    pipeline (StableHLO-level, arith-level or LLVM-level). Instead of asking
    the user for this detail, {!infer_add_kinds} walks the script, tracks the
    abstraction level through the post-conditions of the preceding lowering
    steps, and sets each [transform.enzyme_ad]'s [add_op] attribute. *)

open Ir

(** Map a dialect to its addition operation. *)
let add_op_of_dialect = function
  | "shlo" -> Some "shlo.add"
  | "arith" -> Some "arith.addf"
  | "llvm" -> Some "llvm.fadd"
  | "tosa" -> Some "tosa.add"
  | "linalg" -> Some "arith.addf"
  | _ -> None

(** The "current dialect" after a checkable step: the dialect most recently
    introduced by a post-condition that has an add op. *)
let level_after current (post : Opset.t) =
  let dialect_of = function
    | Opset.Dialect d -> d
    | Opset.Exact n | Opset.Constrained (n, _) -> Util.dialect_of_op_name n
    | Opset.Interface _ -> ""
  in
  List.fold_left
    (fun acc e ->
      let d = dialect_of e in
      if Option.is_some (add_op_of_dialect d) && d <> "tosa" then d else acc)
    current post

(** Walk the script's entry sequence; set the [add_op] attribute of every
    [transform.enzyme_ad] op that does not already have one. Returns the
    inferred kinds in order. *)
let infer_add_kinds ?(initial_dialect = "shlo") script =
  let inferred = ref [] in
  let current = ref initial_dialect in
  Ircore.walk_op script ~pre:(fun op ->
      if op.Ircore.op_name = Ops.enzyme_ad_op then begin
        let kind =
          match Ircore.attr op "add_op" with
          | Some (Attr.String s) -> s
          | _ -> (
            match add_op_of_dialect !current with
            | Some a -> a
            | None -> "arith.addf")
        in
        Ircore.set_attr op "add_op" (Attr.String kind);
        inferred := kind :: !inferred
      end
      else
        match Treg.lookup op.Ircore.op_name with
        | Some def -> current := level_after !current (Treg.post def op)
        | None -> ());
  List.rev !inferred

(* ------------------------------------------------------------------ *)
(* The demonstration AD transform                                      *)
(* ------------------------------------------------------------------ *)

(** A deliberately small forward-mode AD: for every differentiable float
    multiply in the target, accumulate a partial-derivative sum using the
    *configured* add kind. The point reproduced from the paper is not the
    math but the configuration: the add ops must come from the dialect
    current at this position of the pipeline, or later lowerings break. *)
let differentiable_mul = [ "shlo.multiply"; "arith.mulf"; "llvm.fmul" ]

let register_enzyme_ad () =
  Treg.register ~name:Ops.enzyme_ad_op
    ~spec:
      {
        Treg.default_spec with
        summary = "demonstration AD emitting adds of the configured dialect";
        arity = Some 1;
        post =
          (fun op ->
            match Ircore.attr op "add_op" with
            | Some (Attr.String s) -> [ Opset.exact s ]
            | _ -> []);
      }
    (fun st op ->
      let add_kind =
        match Ircore.attr op "add_op" with
        | Some (Attr.String s) -> s
        | _ -> "arith.addf"
      in
      match State.lookup_handle st (Ircore.operand ~index:0 op) with
      | Error e -> Error e
      | Ok targets ->
        let rw = State.rewriter st in
        List.iter
          (fun target ->
            let muls =
              Symbol.collect target ~f:(fun o ->
                  List.mem o.Ircore.op_name differentiable_mul)
            in
            List.iter
              (fun mul ->
                (* d(x*y) = x*dy + y*dx; emit the partial-derivative sum
                   using the configured add op *)
                Rewriter.set_ip rw (Builder.After mul);
                let r = Ircore.result mul in
                let x = Ircore.operand ~index:0 mul in
                let y = Ircore.operand ~index:1 mul in
                ignore r;
                let grad =
                  Rewriter.build1 rw ~operands:[ x; y ]
                    ~result_types:[ Ircore.value_typ x ]
                    add_kind
                in
                Ircore.set_attr
                  (Option.get (Ircore.defining_op grad))
                  "enzyme.gradient" Attr.Unit)
              muls)
          targets;
        Ok ())

(** Number of gradient add ops of each kind in a payload (for tests). *)
let count_gradient_adds payload =
  let counts = Hashtbl.create 4 in
  Ircore.walk_op payload ~pre:(fun op ->
      if Ircore.has_attr op "enzyme.gradient" then
        Hashtbl.replace counts op.Ircore.op_name
          (1 + Option.value ~default:0 (Hashtbl.find_opt counts op.Ircore.op_name)));
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) counts [] |> List.sort compare
