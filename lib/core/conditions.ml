(** Static pre-/post-condition checking of transform pipelines (Section 3.3
    and Case Study 2, Table 2).

    The checker abstractly interprets a pipeline over the domain of op-kind
    sets ({!Ir.Opset}): starting from the set of op kinds possibly present
    in the input, each step removes the kinds its pre-condition consumes and
    adds the kinds its post-condition introduces. Errors:

    - {e leftover}: after the pipeline, kinds remain that the final
      condition does not allow (the paper's [affine.apply] example);
    - {e vacuous}: a step whose (non-empty) pre-condition cannot match
      anything still present — a phase-ordering violation (e.g. a loop
      transform on [scf] scheduled after [convert-scf-to-cf]). *)

open Ir

type step = {
  s_name : string;
  s_pre : Opset.t;
  s_post : Opset.t;
}

type problem =
  | Vacuous of { step : string; pre : Opset.t; present : Opset.t }
  | Leftover of { remaining : Opset.t; allowed : Opset.t }

let pp_problem fmt = function
  | Vacuous { step; pre; present } ->
    Fmt.pf fmt
      "phase-ordering violation: step '%s' requires %a but only %a can be \
       present at that point"
      step Opset.pp pre Opset.pp present
  | Leftover { remaining; allowed } ->
    Fmt.pf fmt
      "incomplete lowering: %a may remain after the pipeline but the final \
       condition only allows %a"
      Opset.pp remaining Opset.pp allowed

type trace_entry = { t_step : string; t_before : Opset.t; t_after : Opset.t }

type report = {
  problems : problem list;
  trace : trace_entry list;
  final : Opset.t;
}

let step_of_pass (p : Passes.Pass.t) =
  { s_name = p.Passes.Pass.name; s_pre = p.pre; s_post = p.post }

(** Extract the checkable steps of a transform script, in execution order:
    registered transforms contribute their declared conditions;
    [apply_registered_pass] contributes the pass's conditions. *)
let steps_of_script (script : Ircore.op) =
  let out = ref [] in
  Ircore.walk_op script ~pre:(fun op ->
      match Treg.lookup op.Ircore.op_name with
      | Some def ->
        let pre = Treg.pre def op and post = Treg.post def op in
        if pre <> [] || post <> [] then
          out :=
            { s_name = op.Ircore.op_name; s_pre = pre; s_post = post } :: !out
      | None -> ());
  List.rev !out

(** One abstract step over the op-kind set: remove what the pre-condition
    consumes, add what the post-condition introduces. Shared with the
    per-handle present-set layer of {!Flowcheck}. *)
let transfer ~pre ~post before = Opset.union (Opset.remove ~removed:pre before) post

(** Is a step with [pre] vacuous (phase-ordering violation) against the
    kinds currently [present]? Empty pre-conditions are never vacuous. *)
let vacuous ~pre present = pre <> [] && not (Opset.overlaps pre present)

(** Abstractly run [steps] from the [initial] op-kind set; [final] is the
    allowed result set. *)
let check ~initial ~final steps : report =
  let problems = ref [] in
  let trace = ref [] in
  let current = ref initial in
  List.iter
    (fun s ->
      let before = !current in
      if vacuous ~pre:s.s_pre before then
        problems := Vacuous { step = s.s_name; pre = s.s_pre; present = before } :: !problems;
      let after = transfer ~pre:s.s_pre ~post:s.s_post before in
      trace := { t_step = s.s_name; t_before = before; t_after = after } :: !trace;
      current := after)
    steps;
  let remaining = Opset.leftover ~allowed:final !current in
  if remaining <> [] then
    problems := Leftover { remaining; allowed = final } :: !problems;
  { problems = List.rev !problems; trace = List.rev !trace; final = !current }

let check_passes ~initial ~final passes =
  check ~initial ~final (List.map step_of_pass passes)

let check_script ~initial ~final script =
  check ~initial ~final (steps_of_script script)

let ok report = report.problems = []

let pp_report fmt r =
  List.iter
    (fun t ->
      Fmt.pf fmt "  %-28s %a -> %a@." t.t_step Opset.pp t.t_before Opset.pp
        t.t_after)
    r.trace;
  if r.problems = [] then Fmt.pf fmt "  OK: pipeline satisfies its conditions@."
  else
    List.iter (fun p -> Fmt.pf fmt "  ERROR: %a@." pp_problem p) r.problems
