(** Transform-interpreter state: the association table between transform
    handles (SSA values of the transform IR) and payload operations, the
    parameter table, and the consumed/invalidated bookkeeping of Section 3.1.

    The state owns a {!Ir.Rewriter} whose listener keeps handles up to date
    when payload ops are replaced or erased by transformations ("operation
    replaced"/"erased" events). *)

open Ir

type config = {
  expensive_checks : bool;
      (** verify the payload after every transform step *)
  check_conditions : bool;
      (** dynamically check declared pre-/post-conditions (Section 3.3) *)
  check_annotations : bool;
      (** dynamically check declared annotation requires/ensures clauses
          ({!Annot}); a violated [requires] is a definite error *)
}

let default_config =
  {
    expensive_checks = false;
    check_conditions = false;
    check_annotations = false;
  }

(** Flat slot storage installed by compiled schedules ({!Schedule}): every
    SSA value of the transform script is numbered statically at compile
    time, so on the hot path the handle/param/consumed side tables become a
    single int→int probe (the slot index) plus array reads, instead of
    separate hashtable probes per table. Values outside the index (none, for
    a fully compiled script) fall back to the hashtables, so interpreter
    fallback thunks and compiled instructions share one coherent state. *)
type slots = {
  sl_index : (int, int) Hashtbl.t;
      (** transform value id -> slot; owned by the schedule, read-only here *)
  sl_handles : Ircore.op list option array;
  sl_params : Attr.t list option array;
  sl_values : Ircore.value list option array;
  sl_consumed : string option array;
}

type t = {
  ctx : Context.t;
  payload_root : Ircore.op;
  config : config;
  handles : (int, Ircore.op list) Hashtbl.t;  (** value id -> payload ops *)
  params : (int, Attr.t list) Hashtbl.t;  (** value id -> parameter attrs *)
  values : (int, Ircore.value list) Hashtbl.t;
      (** value id -> payload values (for value handles) *)
  consumed : (int, string) Hashtbl.t;  (** value id -> consuming transform *)
  invalidated_payload : (int, string) Hashtbl.t;
      (** payload op id -> transform that invalidated it *)
  annots : (int, Annot.Props.t) Hashtbl.t;
      (** value id -> accumulated payload-property annotations; no slot
          path — annotation checking is an opt-in debugging mode, not a
          hot path *)
  rewriter : Rewriter.t;
  mutable slots : slots option;  (** present only under a compiled schedule *)
  mutable steps : int;  (** executed transform ops, for stats *)
}

(** Install statically numbered slot storage ([count] slots addressed through
    [index]). Called once per application by the compiled-schedule executor;
    the arrays are fresh per state, the index is shared with the schedule. *)
let install_slots t ~index ~count =
  t.slots <-
    Some
      {
        sl_index = index;
        sl_handles = Array.make count None;
        sl_params = Array.make count None;
        sl_values = Array.make count None;
        sl_consumed = Array.make count None;
      }

let slot_of t vid =
  match t.slots with
  | None -> None
  | Some s -> (
    match Hashtbl.find_opt s.sl_index vid with
    | Some i -> Some (s, i)
    | None -> None)

let is_handle_typ = function
  | Typ.Opaque ("transform", body) ->
    body = "any_op" || body = "any_value"
    || (String.length body >= 3 && String.sub body 0 3 = "op<")
  | _ -> false

let is_param_typ = function
  | Typ.Opaque ("transform", "param") -> true
  | _ -> false

let create ?(config = default_config) ctx payload_root =
  let t =
    {
      ctx;
      payload_root;
      config;
      handles = Hashtbl.create 64;
      params = Hashtbl.create 16;
      values = Hashtbl.create 16;
      consumed = Hashtbl.create 16;
      invalidated_payload = Hashtbl.create 64;
      annots = Hashtbl.create 16;
      rewriter = Rewriter.create ();
      slots = None;
      steps = 0;
    }
  in
  (* rewrite every live handle entry — hashtable and slot storage alike —
     through [f]; [None] keeps the entry unchanged *)
  let remap_handles f =
    Hashtbl.iter
      (fun vid ops ->
        match f ops with
        | Some ops' -> Hashtbl.replace t.handles vid ops'
        | None -> ())
      (Hashtbl.copy t.handles);
    match t.slots with
    | None -> ()
    | Some s ->
      Array.iteri
        (fun i entry ->
          match entry with
          | Some ops -> (
            match f ops with
            | Some ops' -> s.sl_handles.(i) <- Some ops'
            | None -> ())
          | None -> ())
        s.sl_handles
  in
  (* track payload mutations: update handles on replace, drop on erase *)
  Rewriter.add_listener t.rewriter
    {
      Rewriter.on_inserted = ignore;
      (* in-place modification keeps the op, so handles stay valid *)
      on_modified = ignore;
      on_replaced =
        (fun op with_ ->
          let replacement_ops =
            List.filter_map Ircore.defining_op with_
            |> List.fold_left
                 (fun acc o -> if List.memq o acc then acc else acc @ [ o ])
                 []
          in
          remap_handles (fun ops ->
              if List.memq op ops then
                Some
                  (List.concat_map
                     (fun o -> if o == op then replacement_ops else [ o ])
                     ops)
              else None));
      on_erased =
        (fun op ->
          remap_handles (fun ops ->
              if List.memq op ops then
                Some (List.filter (fun o -> not (o == op)) ops)
              else None));
    };
  t

(* ------------------------------------------------------------------ *)
(* Handle access                                                       *)
(* ------------------------------------------------------------------ *)

(* global statistics (Ir.Stats): every handle association records how much
   payload it carries, so `--stats` shows the interpreter's payload volume *)
let stat_handles_set = Stats.counter ~component:"transform" "handles_set"

let stat_handle_payloads =
  Stats.counter ~component:"transform" "handle_payloads"

let set_handle t (v : Ircore.value) ops =
  Stats.incr stat_handles_set;
  Stats.add stat_handle_payloads (List.length ops);
  match slot_of t v.Ircore.v_id with
  | Some (s, i) -> s.sl_handles.(i) <- Some ops
  | None -> Hashtbl.replace t.handles v.Ircore.v_id ops

let set_params t (v : Ircore.value) attrs =
  match slot_of t v.Ircore.v_id with
  | Some (s, i) -> s.sl_params.(i) <- Some attrs
  | None -> Hashtbl.replace t.params v.Ircore.v_id attrs

(* slot-aware raw reads; the public lookups layer the consumption and
   invalidation checks on top *)
let find_handle t vid =
  match slot_of t vid with
  | Some (s, i) -> s.sl_handles.(i)
  | None -> Hashtbl.find_opt t.handles vid

let find_params t vid =
  match slot_of t vid with
  | Some (s, i) -> s.sl_params.(i)
  | None -> Hashtbl.find_opt t.params vid

let find_consumed t vid =
  match slot_of t vid with
  | Some (s, i) -> s.sl_consumed.(i)
  | None -> Hashtbl.find_opt t.consumed vid

let mark_consumed t vid by =
  match slot_of t vid with
  | Some (s, i) -> s.sl_consumed.(i) <- Some by
  | None -> Hashtbl.replace t.consumed vid by

(* annotation accessors: a missing entry means the empty property set *)
let get_annots t (v : Ircore.value) =
  match Hashtbl.find_opt t.annots v.Ircore.v_id with
  | Some ps -> ps
  | None -> Annot.Props.empty

let set_annots t (v : Ircore.value) ps =
  Hashtbl.replace t.annots v.Ircore.v_id ps

let add_annots t (v : Ircore.value) ps =
  Hashtbl.replace t.annots v.Ircore.v_id (Annot.Props.union (get_annots t v) ps)

(** Copy the accumulated annotations of [src] onto [dst] (include
    argument/yield binding, foreach iteration binding). *)
let copy_annots t ~src ~dst = set_annots t dst (get_annots t src)

(** Iterate every live (value id, payload ops) handle association across
    both stores. *)
let iter_handles t f =
  Hashtbl.iter f t.handles;
  match t.slots with
  | None -> ()
  | Some s ->
    Hashtbl.iter
      (fun vid i ->
        match s.sl_handles.(i) with Some ops -> f vid ops | None -> ())
      s.sl_index

(** Payload ops of a handle; checks consumption. *)
let lookup_handle t (v : Ircore.value) : (Ircore.op list, Terror.t) result =
  match find_consumed t v.Ircore.v_id with
  | Some by ->
    Terror.definite
      "use of a handle invalidated by transform '%s' (handle consumed)" by
  | None -> (
    match find_handle t v.Ircore.v_id with
    | None -> Terror.definite "use of an undefined handle"
    | Some ops -> (
      (* a handle is also dead if any of its payload ops were invalidated
         indirectly (nested in a consumed payload op) *)
      match
        List.find_map
          (fun op ->
            Option.map
              (fun by -> by)
              (Hashtbl.find_opt t.invalidated_payload op.Ircore.op_id))
          ops
      with
      | Some by ->
        Terror.definite
          "use of a handle whose payload was invalidated by transform '%s'" by
      | None -> Ok ops))

(** Non-failing peek at the payload size of a handle or parameter value,
    for tracing: does not check consumption and never errors. *)
let handle_size t (v : Ircore.value) =
  match find_handle t v.Ircore.v_id with
  | Some ops -> Some (List.length ops)
  | None -> (
    match find_params t v.Ircore.v_id with
    | Some attrs -> Some (List.length attrs)
    | None -> None)

let lookup_params t (v : Ircore.value) : (Attr.t list, Terror.t) result =
  match find_params t v.Ircore.v_id with
  | None -> Terror.definite "use of an undefined parameter"
  | Some attrs -> Ok attrs

(** A single integer parameter. *)
let lookup_int_param t v =
  match lookup_params t v with
  | Error e -> Error e
  | Ok [ Attr.Int (n, _) ] -> Ok n
  | Ok attrs ->
    Terror.definite "expected a single integer parameter, got %d attrs"
      (List.length attrs)

(** Pre-consumption snapshot: taken *before* a consuming transform runs, so
    that aliasing can be resolved even though the transform (via the tracking
    listener) rewrites handle contents while it executes. Records the ids of
    all payload ops nested under the consumed handles, plus a copy of the
    current handle table. *)
type consume_snapshot = {
  cs_subtree : (int, unit) Hashtbl.t;  (** payload op ids to be invalidated *)
  cs_handles : (int, Ircore.op list) Hashtbl.t;
  cs_operands : int list;  (** value ids of the consumed operands *)
}

let snapshot_consumption t (operands : Ircore.value list) =
  let cs_subtree = Hashtbl.create 32 in
  List.iter
    (fun v ->
      match find_handle t v.Ircore.v_id with
      | Some ops ->
        List.iter
          (fun op ->
            Ircore.walk_op op ~pre:(fun nested ->
                Hashtbl.replace cs_subtree nested.Ircore.op_id ()))
          ops
      | None -> ())
    operands;
  let cs_handles = Hashtbl.copy t.handles in
  (match t.slots with
  | None -> ()
  | Some s ->
    Hashtbl.iter
      (fun vid i ->
        match s.sl_handles.(i) with
        | Some ops -> Hashtbl.replace cs_handles vid ops
        | None -> ())
      s.sl_index);
  {
    cs_subtree;
    cs_handles;
    cs_operands = List.map (fun v -> v.Ircore.v_id) operands;
  }

(** Commit a consumption (invalidation, Section 3.1): the consumed handles
    and every *pre-existing* handle pointing into the same payload subtrees
    become invalid; handles produced by the consuming transform itself are
    fresh and stay valid. *)
let commit_consumption t ~by (snap : consume_snapshot) =
  List.iter (fun vid -> mark_consumed t vid by) snap.cs_operands;
  Hashtbl.iter (fun oid () -> Hashtbl.replace t.invalidated_payload oid by)
    snap.cs_subtree;
  Hashtbl.iter
    (fun vid ops ->
      if
        (not (List.mem vid snap.cs_operands))
        && List.exists (fun o -> Hashtbl.mem snap.cs_subtree o.Ircore.op_id) ops
      then mark_consumed t vid by)
    snap.cs_handles

(** Direct consumption of a single handle (no aliasing pass). *)
let consume t ~by (v : Ircore.value) =
  commit_consumption t ~by (snapshot_consumption t [ v ])

(** Remove payload ops from the invalidated set (used when a transform
    re-associates fresh payload with old locations, e.g. after cloning). *)
let bless_payload t op =
  Ircore.walk_op op ~pre:(fun nested ->
      Hashtbl.remove t.invalidated_payload nested.Ircore.op_id)

(** Is [op] still a live payload op: attached under the payload root and not
    invalidated by a consuming transform? Used by iteration constructs
    ([transform.foreach]) to detect payload that died mid-iteration. *)
let payload_alive t (op : Ircore.op) =
  (op == t.payload_root || Ircore.is_ancestor ~ancestor:t.payload_root op)
  && not (Hashtbl.mem t.invalidated_payload op.Ircore.op_id)

(* ------------------------------------------------------------------ *)
(* Transactional checkpoints                                           *)
(* ------------------------------------------------------------------ *)

let stat_rollbacks =
  Stats.counter ~component:"transform" "rollbacks"
    ~desc:"payload+state rollbacks after contained failures"

(** Full interpreter-state snapshot: the payload (via {!Ir.Checkpoint}) plus
    copies of every side table keyed by op/value identity. {!rollback}
    restores the payload and refills the tables, remapping payload
    references through the checkpoint's op/value correspondence. *)
type slot_checkpoint = {
  sck_handles : Ircore.op list option array;
  sck_params : Attr.t list option array;
  sck_values : Ircore.value list option array;
  sck_consumed : string option array;
}

type checkpoint = {
  ck_payload : Checkpoint.t;
  ck_handles : (int, Ircore.op list) Hashtbl.t;
  ck_params : (int, Attr.t list) Hashtbl.t;
  ck_values : (int, Ircore.value list) Hashtbl.t;
  ck_consumed : (int, string) Hashtbl.t;
  ck_invalidated : (int, string) Hashtbl.t;
  ck_annots : (int, Annot.Props.t) Hashtbl.t;
  ck_slots : slot_checkpoint option;
}

let checkpoint t =
  {
    ck_payload = Checkpoint.take t.payload_root;
    ck_handles = Hashtbl.copy t.handles;
    ck_params = Hashtbl.copy t.params;
    ck_values = Hashtbl.copy t.values;
    ck_consumed = Hashtbl.copy t.consumed;
    ck_invalidated = Hashtbl.copy t.invalidated_payload;
    ck_annots = Hashtbl.copy t.annots;
    ck_slots =
      (match t.slots with
      | None -> None
      | Some s ->
        Some
          {
            sck_handles = Array.copy s.sl_handles;
            sck_params = Array.copy s.sl_params;
            sck_values = Array.copy s.sl_values;
            sck_consumed = Array.copy s.sl_consumed;
          });
  }

(** Restore payload and handle tables to their state at {!checkpoint}.
    Handle entries are remapped to the restored copies of their payload
    ops/values; entries whose payload has no checkpoint-time image (ops
    created after the snapshot) are dropped. Single-shot, like the
    underlying {!Ir.Checkpoint}. *)
let rollback t (ck : checkpoint) =
  Checkpoint.restore ck.ck_payload;
  let refill dst src remap =
    Hashtbl.reset dst;
    Hashtbl.iter (fun k v -> Hashtbl.replace dst k (remap v)) src
  in
  let remap_ops = List.filter_map (Checkpoint.remap_op ck.ck_payload) in
  let remap_vals = List.filter_map (Checkpoint.remap_value ck.ck_payload) in
  refill t.handles ck.ck_handles remap_ops;
  refill t.params ck.ck_params Fun.id;
  refill t.values ck.ck_values remap_vals;
  refill t.consumed ck.ck_consumed Fun.id;
  refill t.annots ck.ck_annots Fun.id;
  (match (t.slots, ck.ck_slots) with
  | Some s, Some sck ->
    let restore dst src remap =
      Array.iteri (fun i entry -> dst.(i) <- Option.map remap entry) src
    in
    restore s.sl_handles sck.sck_handles remap_ops;
    restore s.sl_params sck.sck_params Fun.id;
    restore s.sl_values sck.sck_values remap_vals;
    restore s.sl_consumed sck.sck_consumed Fun.id
  | _ -> ());
  Hashtbl.reset t.invalidated_payload;
  Hashtbl.iter
    (fun oid by ->
      let oid' =
        match Checkpoint.remap_op_id ck.ck_payload oid with
        | Some op -> op.Ircore.op_id
        | None -> oid
      in
      Hashtbl.replace t.invalidated_payload oid' by)
    ck.ck_invalidated;
  Stats.incr stat_rollbacks

(** Release a checkpoint whose transaction committed. *)
let discard_checkpoint (ck : checkpoint) = Checkpoint.discard ck.ck_payload

let rewriter t = t.rewriter

(** Drop payload ops that are no longer attached under the payload root from
    every handle. Used after running black-box passes (which own their own
    rewriters, so replace/erase events are not observable). *)
let prune t =
  (* climb to the root: an op nested inside an erased subtree still has a
     parent block (the detached region), so [op_parent <> None] is not
     enough to prove it is live *)
  let alive op = Ircore.is_ancestor ~ancestor:t.payload_root op in
  Hashtbl.iter
    (fun vid ops ->
      let ops' = List.filter alive ops in
      if List.length ops' <> List.length ops then
        Hashtbl.replace t.handles vid ops')
    (Hashtbl.copy t.handles);
  match t.slots with
  | None -> ()
  | Some s ->
    Array.iteri
      (fun i entry ->
        match entry with
        | Some ops ->
          let ops' = List.filter alive ops in
          if List.length ops' <> List.length ops then
            s.sl_handles.(i) <- Some ops'
        | None -> ())
      s.sl_handles
