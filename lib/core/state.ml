(** Transform-interpreter state: the association table between transform
    handles (SSA values of the transform IR) and payload operations, the
    parameter table, and the consumed/invalidated bookkeeping of Section 3.1.

    The state owns a {!Ir.Rewriter} whose listener keeps handles up to date
    when payload ops are replaced or erased by transformations ("operation
    replaced"/"erased" events). *)

open Ir

type config = {
  expensive_checks : bool;
      (** verify the payload after every transform step *)
  check_conditions : bool;
      (** dynamically check declared pre-/post-conditions (Section 3.3) *)
}

let default_config = { expensive_checks = false; check_conditions = false }

type t = {
  ctx : Context.t;
  payload_root : Ircore.op;
  config : config;
  handles : (int, Ircore.op list) Hashtbl.t;  (** value id -> payload ops *)
  params : (int, Attr.t list) Hashtbl.t;  (** value id -> parameter attrs *)
  values : (int, Ircore.value list) Hashtbl.t;
      (** value id -> payload values (for value handles) *)
  consumed : (int, string) Hashtbl.t;  (** value id -> consuming transform *)
  invalidated_payload : (int, string) Hashtbl.t;
      (** payload op id -> transform that invalidated it *)
  rewriter : Rewriter.t;
  mutable steps : int;  (** executed transform ops, for stats *)
}

let is_handle_typ = function
  | Typ.Opaque ("transform", body) ->
    body = "any_op" || body = "any_value"
    || (String.length body >= 3 && String.sub body 0 3 = "op<")
  | _ -> false

let is_param_typ = function
  | Typ.Opaque ("transform", "param") -> true
  | _ -> false

let create ?(config = default_config) ctx payload_root =
  let t =
    {
      ctx;
      payload_root;
      config;
      handles = Hashtbl.create 64;
      params = Hashtbl.create 16;
      values = Hashtbl.create 16;
      consumed = Hashtbl.create 16;
      invalidated_payload = Hashtbl.create 64;
      rewriter = Rewriter.create ();
      steps = 0;
    }
  in
  (* track payload mutations: update handles on replace, drop on erase *)
  Rewriter.add_listener t.rewriter
    {
      Rewriter.on_inserted = ignore;
      (* in-place modification keeps the op, so handles stay valid *)
      on_modified = ignore;
      on_replaced =
        (fun op with_ ->
          let replacement_ops =
            List.filter_map Ircore.defining_op with_
            |> List.fold_left
                 (fun acc o -> if List.memq o acc then acc else acc @ [ o ])
                 []
          in
          Hashtbl.iter
            (fun vid ops ->
              if List.memq op ops then
                Hashtbl.replace t.handles vid
                  (List.concat_map
                     (fun o -> if o == op then replacement_ops else [ o ])
                     ops))
            (Hashtbl.copy t.handles))
      ;
      on_erased =
        (fun op ->
          Hashtbl.iter
            (fun vid ops ->
              if List.memq op ops then
                Hashtbl.replace t.handles vid
                  (List.filter (fun o -> not (o == op)) ops))
            (Hashtbl.copy t.handles));
    };
  t

(* ------------------------------------------------------------------ *)
(* Handle access                                                       *)
(* ------------------------------------------------------------------ *)

(* global statistics (Ir.Stats): every handle association records how much
   payload it carries, so `--stats` shows the interpreter's payload volume *)
let stat_handles_set = Stats.counter ~component:"transform" "handles_set"

let stat_handle_payloads =
  Stats.counter ~component:"transform" "handle_payloads"

let set_handle t (v : Ircore.value) ops =
  Stats.incr stat_handles_set;
  Stats.add stat_handle_payloads (List.length ops);
  Hashtbl.replace t.handles v.Ircore.v_id ops

let set_params t (v : Ircore.value) attrs =
  Hashtbl.replace t.params v.Ircore.v_id attrs

(** Payload ops of a handle; checks consumption. *)
let lookup_handle t (v : Ircore.value) : (Ircore.op list, Terror.t) result =
  match Hashtbl.find_opt t.consumed v.Ircore.v_id with
  | Some by ->
    Terror.definite
      "use of a handle invalidated by transform '%s' (handle consumed)" by
  | None -> (
    match Hashtbl.find_opt t.handles v.Ircore.v_id with
    | None -> Terror.definite "use of an undefined handle"
    | Some ops -> (
      (* a handle is also dead if any of its payload ops were invalidated
         indirectly (nested in a consumed payload op) *)
      match
        List.find_map
          (fun op ->
            Option.map
              (fun by -> by)
              (Hashtbl.find_opt t.invalidated_payload op.Ircore.op_id))
          ops
      with
      | Some by ->
        Terror.definite
          "use of a handle whose payload was invalidated by transform '%s'" by
      | None -> Ok ops))

(** Non-failing peek at the payload size of a handle or parameter value,
    for tracing: does not check consumption and never errors. *)
let handle_size t (v : Ircore.value) =
  match Hashtbl.find_opt t.handles v.Ircore.v_id with
  | Some ops -> Some (List.length ops)
  | None -> (
    match Hashtbl.find_opt t.params v.Ircore.v_id with
    | Some attrs -> Some (List.length attrs)
    | None -> None)

let lookup_params t (v : Ircore.value) : (Attr.t list, Terror.t) result =
  match Hashtbl.find_opt t.params v.Ircore.v_id with
  | None -> Terror.definite "use of an undefined parameter"
  | Some attrs -> Ok attrs

(** A single integer parameter. *)
let lookup_int_param t v =
  match lookup_params t v with
  | Error e -> Error e
  | Ok [ Attr.Int (n, _) ] -> Ok n
  | Ok attrs ->
    Terror.definite "expected a single integer parameter, got %d attrs"
      (List.length attrs)

(** Pre-consumption snapshot: taken *before* a consuming transform runs, so
    that aliasing can be resolved even though the transform (via the tracking
    listener) rewrites handle contents while it executes. Records the ids of
    all payload ops nested under the consumed handles, plus a copy of the
    current handle table. *)
type consume_snapshot = {
  cs_subtree : (int, unit) Hashtbl.t;  (** payload op ids to be invalidated *)
  cs_handles : (int, Ircore.op list) Hashtbl.t;
  cs_operands : int list;  (** value ids of the consumed operands *)
}

let snapshot_consumption t (operands : Ircore.value list) =
  let cs_subtree = Hashtbl.create 32 in
  List.iter
    (fun v ->
      match Hashtbl.find_opt t.handles v.Ircore.v_id with
      | Some ops ->
        List.iter
          (fun op ->
            Ircore.walk_op op ~pre:(fun nested ->
                Hashtbl.replace cs_subtree nested.Ircore.op_id ()))
          ops
      | None -> ())
    operands;
  {
    cs_subtree;
    cs_handles = Hashtbl.copy t.handles;
    cs_operands = List.map (fun v -> v.Ircore.v_id) operands;
  }

(** Commit a consumption (invalidation, Section 3.1): the consumed handles
    and every *pre-existing* handle pointing into the same payload subtrees
    become invalid; handles produced by the consuming transform itself are
    fresh and stay valid. *)
let commit_consumption t ~by (snap : consume_snapshot) =
  List.iter (fun vid -> Hashtbl.replace t.consumed vid by) snap.cs_operands;
  Hashtbl.iter (fun oid () -> Hashtbl.replace t.invalidated_payload oid by)
    snap.cs_subtree;
  Hashtbl.iter
    (fun vid ops ->
      if
        (not (List.mem vid snap.cs_operands))
        && List.exists (fun o -> Hashtbl.mem snap.cs_subtree o.Ircore.op_id) ops
      then Hashtbl.replace t.consumed vid by)
    snap.cs_handles

(** Direct consumption of a single handle (no aliasing pass). *)
let consume t ~by (v : Ircore.value) =
  commit_consumption t ~by (snapshot_consumption t [ v ])

(** Remove payload ops from the invalidated set (used when a transform
    re-associates fresh payload with old locations, e.g. after cloning). *)
let bless_payload t op =
  Ircore.walk_op op ~pre:(fun nested ->
      Hashtbl.remove t.invalidated_payload nested.Ircore.op_id)

(** Is [op] still a live payload op: attached under the payload root and not
    invalidated by a consuming transform? Used by iteration constructs
    ([transform.foreach]) to detect payload that died mid-iteration. *)
let payload_alive t (op : Ircore.op) =
  (op == t.payload_root || Ircore.is_ancestor ~ancestor:t.payload_root op)
  && not (Hashtbl.mem t.invalidated_payload op.Ircore.op_id)

(* ------------------------------------------------------------------ *)
(* Transactional checkpoints                                           *)
(* ------------------------------------------------------------------ *)

let stat_rollbacks =
  Stats.counter ~component:"transform" "rollbacks"
    ~desc:"payload+state rollbacks after contained failures"

(** Full interpreter-state snapshot: the payload (via {!Ir.Checkpoint}) plus
    copies of every side table keyed by op/value identity. {!rollback}
    restores the payload and refills the tables, remapping payload
    references through the checkpoint's op/value correspondence. *)
type checkpoint = {
  ck_payload : Checkpoint.t;
  ck_handles : (int, Ircore.op list) Hashtbl.t;
  ck_params : (int, Attr.t list) Hashtbl.t;
  ck_values : (int, Ircore.value list) Hashtbl.t;
  ck_consumed : (int, string) Hashtbl.t;
  ck_invalidated : (int, string) Hashtbl.t;
}

let checkpoint t =
  {
    ck_payload = Checkpoint.take t.payload_root;
    ck_handles = Hashtbl.copy t.handles;
    ck_params = Hashtbl.copy t.params;
    ck_values = Hashtbl.copy t.values;
    ck_consumed = Hashtbl.copy t.consumed;
    ck_invalidated = Hashtbl.copy t.invalidated_payload;
  }

(** Restore payload and handle tables to their state at {!checkpoint}.
    Handle entries are remapped to the restored copies of their payload
    ops/values; entries whose payload has no checkpoint-time image (ops
    created after the snapshot) are dropped. Single-shot, like the
    underlying {!Ir.Checkpoint}. *)
let rollback t (ck : checkpoint) =
  Checkpoint.restore ck.ck_payload;
  let refill dst src remap =
    Hashtbl.reset dst;
    Hashtbl.iter (fun k v -> Hashtbl.replace dst k (remap v)) src
  in
  refill t.handles ck.ck_handles
    (List.filter_map (Checkpoint.remap_op ck.ck_payload));
  refill t.params ck.ck_params Fun.id;
  refill t.values ck.ck_values
    (List.filter_map (Checkpoint.remap_value ck.ck_payload));
  refill t.consumed ck.ck_consumed Fun.id;
  Hashtbl.reset t.invalidated_payload;
  Hashtbl.iter
    (fun oid by ->
      let oid' =
        match Checkpoint.remap_op_id ck.ck_payload oid with
        | Some op -> op.Ircore.op_id
        | None -> oid
      in
      Hashtbl.replace t.invalidated_payload oid' by)
    ck.ck_invalidated;
  Stats.incr stat_rollbacks

(** Release a checkpoint whose transaction committed. *)
let discard_checkpoint (ck : checkpoint) = Checkpoint.discard ck.ck_payload

let rewriter t = t.rewriter

(** Drop payload ops that are no longer attached under the payload root from
    every handle. Used after running black-box passes (which own their own
    rewriters, so replace/erase events are not observable). *)
let prune t =
  let alive op =
    Ircore.op_parent op <> None || op == t.payload_root
  in
  Hashtbl.iter
    (fun vid ops ->
      let ops' = List.filter alive ops in
      if List.length ops' <> List.length ops then
        Hashtbl.replace t.handles vid ops')
    (Hashtbl.copy t.handles)
