(** The transform interpreter (Section 3): executes a Transform script
    against a payload program, maintaining the handle association table,
    dispatching to registered transform implementations, and providing the
    silenceable/definite error discipline.

    Structural ops are interpreted here:
    - [transform.sequence]: binds its block argument to the payload root and
      runs its body;
    - [transform.named_sequence]: a declaration; executed only via
      [transform.include] (or as the main entry point);
    - [transform.include]: inlined call — operands bound to the callee's
      block arguments, the callee's [transform.yield] operands bound to the
      include's results;
    - [transform.alternatives]: runs regions in order until one succeeds,
      suppressing silenceable errors of failed regions. Each region runs
      inside a transaction: a payload+state checkpoint ({!State.checkpoint})
      is taken before the region and rolled back on silenceable failure, so
      even a region that already mutated the payload leaves it byte-
      identical for the next alternative. A definite error aborts the whole
      op immediately, without rollback;
    - [transform.foreach]: runs its region once per payload op of the
      operand handle (a snapshot taken up front; payload erased by an
      earlier iteration fails silenceably instead of dangling).

    Robustness: every dispatch to a registered transform runs behind an
    exception barrier converting raised OCaml exceptions into definite
    errors carrying the backtrace as notes, and each interpreted op charges
    one step against the ambient {!Ir.Budget} so runaway scripts degrade
    into clean silenceable failures. *)

open Ir

let ( let* ) = Result.bind

type stats = { mutable transforms_executed : int }

(* global statistics (Ir.Stats) *)
let stat_ops_executed = Stats.counter ~component:"transform" "ops_executed"

let stat_suppressed =
  Stats.counter ~component:"transform" "silenceable_suppressed"

let stat_exceptions_contained =
  Stats.counter ~component:"transform" "exceptions_contained"
    ~desc:"OCaml exceptions converted to definite errors by the barrier"

(** Exceptions that must never be swallowed by a containment barrier. *)
let fatal_exn = function
  | Sys.Break | Out_of_memory -> true
  | _ -> false

let rec run_block st (block : Ircore.block) : (unit, Terror.t) result =
  let rec go = function
    | [] -> Ok ()
    | op :: rest ->
      if op.Ircore.op_name = Ops.yield_op then Ok ()
      else
        let* () = run_op st op in
        go rest
  in
  go (Ircore.block_ops block)

and run_region st (region : Ircore.region) =
  match Ircore.region_first_block region with
  | None -> Ok ()
  | Some b -> run_block st b

and run_op st (op : Ircore.op) : (unit, Terror.t) result =
  st.State.steps <- st.State.steps + 1;
  Stats.incr stat_ops_executed;
  (* cooperative budget: each interpreted transform op is one unit of work;
     exhaustion is sticky, so enclosing retries (alternatives) fail fast *)
  match Budget.step () with
  | Some reason ->
    Terror.silenceable ~loc:op.Ircore.op_loc
      "transform interpreter stopped: %s" reason
  | None -> (
  (* one profiler span per interpreted transform op: structural ops
     (sequence, foreach, alternatives) nest the spans of their bodies *)
  Profiler.span ~cat:"transform" op.Ircore.op_name @@ fun () ->
  match op.Ircore.op_name with
  | "transform.sequence" -> (
    match op.Ircore.regions with
    | [ r ] -> (
      match Ircore.region_first_block r with
      | None -> Ok ()
      | Some b ->
        (match Ircore.block_args b with
        | [ root ] -> State.set_handle st root [ st.State.payload_root ]
        | [] -> ()
        | _ ->
          ());
        let suppress =
          match Ircore.attr op "failure_propagation" with
          | Some (Attr.String "suppress") -> true
          | _ -> false
        in
        if not suppress then run_block st b
        else begin
          (* failures(suppress): the body runs inside a transaction — a
             silenceable failure rolls payload and handles back and is
             downgraded to an emitted (but suppressed) warning *)
          let acur = Action.cursor () in
          let ck = State.checkpoint st in
          match run_block st b with
          | Ok () ->
            State.discard_checkpoint ck;
            Ok ()
          | Error (Terror.Silenceable d) ->
            State.rollback st ck;
            (* the rolled-back actions stay journaled, re-marked reverted *)
            Action.revert_since acur;
            Stats.incr stat_suppressed;
            Trace.record
              (Trace.Suppressed
                 { su_construct = "transform.sequence"; su_diag = d });
            Context.emit_diag st.State.ctx
              (Diag.warning ~loc:(Diag.loc d)
                 ~notes:
                   (Diag.notes d
                   @ [
                       Diag.note
                         "suppressed by failures(suppress); payload rolled \
                          back";
                     ])
                 "%s" (Diag.message d));
            Ok ()
          | Error (Terror.Definite _) as e ->
            State.discard_checkpoint ck;
            e
        end)
    | _ -> Terror.definite "transform.sequence must have one region")
  | "transform.named_sequence" ->
    (* declaration: skipped during sequential execution *)
    Ok ()
  | "transform.include" -> run_include st op
  | "transform.alternatives" -> run_alternatives st op
  | "transform.foreach" -> run_foreach st op
  | name -> (
    match Treg.lookup name with
    | None ->
      Terror.definite "unknown transform operation %s (not registered)" name
    | Some def -> dispatch_registered st def op))

(** Dispatch one registered transform op: pre-condition check, consumption
    snapshot, exception barrier around the implementation, trace recording,
    consumption commit, post-condition check and (optional) payload
    re-verification. Shared between sequential interpretation ({!run_op})
    and the compiled-schedule executor ({!Schedule}), which resolves [def]
    and [consumed] ahead of time. *)
and dispatch_registered ?consumed st (def : Treg.def) (op : Ircore.op) :
    (unit, Terror.t) result =
  (* the single action site for registered transforms: both sequential
     interpretation and the compiled-schedule executor land here, so a
     [--debug-counter=transform:…] bisection sees the same stream either
     way. A skipped dispatch succeeds vacuously (its result handles stay
     empty), like a transform whose pre-condition matched nothing. *)
  match Action.active () with
  | None -> dispatch_registered_impl ?consumed st def op
  | Some a ->
    Action.run_on a ~tag:"transform" ~desc:def.Treg.t_name
      ~loc:op.Ircore.op_loc ~root:op ~skipped:(Ok ()) (fun () ->
        dispatch_registered_impl ?consumed st def op)

and dispatch_registered_impl ?consumed st (def : Treg.def) (op : Ircore.op) :
    (unit, Terror.t) result =
  let name = def.Treg.t_name in
  let consumed =
    match consumed with Some c -> c | None -> Treg.consumes def op
  in
  (* annotation requires-clauses come first: using a handle that lacks a
     declared property is a script bug (definite), reported before any
     payload inspection so the static checker can mirror it exactly *)
  let* () =
    if st.State.config.State.check_annotations then check_requires st def op
    else Ok ()
  in
  (* the dynamic pre-condition check applies to *consuming* transforms
     only: they demand their payload kind to be present, whereas a
     non-consuming transform (pass application, hoisting) with nothing
     matching its pre-condition is a legal no-op — the phase-ordering
     variant of that situation is what the static checker's Vacuous
     diagnostic reports. *)
  let* () =
    if st.State.config.State.check_conditions && consumed <> [] then
      check_preconditions st def op
    else Ok ()
  in
  (* snapshot before the transform mutates the payload, commit only on
     success: a silenceable failure leaves both payload and handles
     usable, while success invalidates every handle that pointed into
     the consumed payload (Section 3.1) *)
  let snapshot =
    if consumed = [] then None
    else
      Some
        (State.snapshot_consumption st
           (List.map (fun idx -> Ircore.operand ~index:idx op) consumed))
  in
  let post_check =
    if st.State.config.State.check_conditions then
      prepare_post_check st def op
    else None
  in
  (* attach the failing transform op (and its source location, when the
     script came from text) to the error *)
  let with_context d =
    Diag.add_note
      (Diag.with_loc_if_unknown d op.Ircore.op_loc)
      (Diag.note "while applying %s" name)
  in
  let handle_sizes values =
    List.filter_map (fun v -> State.handle_size st v) values
  in
  let in_sizes =
    if Trace.tracing () then handle_sizes (Ircore.operands op) else []
  in
  let* () =
    (* exception barrier: a raised OCaml exception becomes a definite
       error with the backtrace attached, instead of unwinding through
       the driver with the IR in an arbitrary state *)
    match Treg.apply def st op with
    | Ok () -> Ok ()
    | Error e -> Error (Terror.map_diag with_context e)
    | exception e when not (fatal_exn e) ->
      let bt = Printexc.get_raw_backtrace () in
      Stats.incr stat_exceptions_contained;
      Terror.definite_diag
        (with_context
           (Diag.of_exn ~loc:op.Ircore.op_loc
              ~context:(Fmt.str "transform %s" name) e bt))
  in
  if Trace.tracing () then
    Trace.record
      (Trace.Transform
         {
           tr_op = name;
           tr_loc = op.Ircore.op_loc;
           tr_in = in_sizes;
           tr_out = handle_sizes (Ircore.results op);
         });
  (match snapshot with
  | Some snap -> State.commit_consumption st ~by:name snap
  | None -> ());
  let* () =
    match post_check with
    | Some check -> check ()
    | None -> Ok ()
  in
  let* () =
    (* a pure transform never touches payload IR, so re-verifying after it
       cannot observe anything new — skip the O(payload) walk *)
    if st.State.config.State.expensive_checks && not (Treg.is_pure def) then
      match Verifier.verify st.State.ctx st.State.payload_root with
      | Ok () -> Ok ()
      | Error diags ->
        Terror.definite "payload verification failed after %s: %a" name
          (Fmt.list ~sep:Fmt.comma Diag.pp)
          diags
    else Ok ()
  in
  (* ensures-clauses are recorded only after full success, so a failed
     transform never claims its properties *)
  if st.State.config.State.check_annotations then record_ensures st def op;
  Ok ()

(** Check the declared {!Annot} requires-clauses of [def] against the
    accumulated property sets of the operand handles. Failures are definite
    and tagged with {!Annot.requirement_tag} so the differential fuzz
    oracle can tell them from other definite error classes. *)
and check_requires st def op =
  let rec go = function
    | [] -> Ok ()
    | (idx, req) :: rest ->
      if idx >= Ircore.num_operands op then go rest
      else
        let ps = State.get_annots st (Ircore.operand ~index:idx op) in
        if Annot.satisfies_exact ps req then go rest
        else
          Terror.definite ~loc:op.Ircore.op_loc
            "%s of %s not met on operand #%d: needs %a, handle carries %a"
            Annot.requirement_tag def.Treg.t_name idx Annot.pp_req req
            Annot.pp_props ps
  in
  go (Treg.requires def op)

(** Record the declared ensures-clauses after a successful application:
    result targets get a fresh property set, operand targets are refined in
    place (union). *)
and record_ensures st def op =
  List.iter
    (fun (target, ps) ->
      match target with
      | Annot.On_result i ->
        if i < Ircore.num_results op then
          State.set_annots st (Ircore.result ~index:i op) ps
      | Annot.On_operand i ->
        if i < Ircore.num_operands op then
          State.add_annots st (Ircore.operand ~index:i op) ps)
    (Treg.ensures def op)

(** Dynamic post-condition check (Section 3.3): after the transform runs,

    - op kinds the pre-condition claims to consume must afterwards be
      covered by the post-condition (with IRDL constraint verification for
      constrained elements such as [memref.subview.constr]);
    - freshly introduced op kinds must be declared by the post-condition.

    This validates that the declared conditions are accurate specifications
    of the (natively implemented) transformation — "an additional tool to
    detect bugs in transformations". *)
and prepare_post_check st def op =
  let pre = Treg.pre def op and post = Treg.post def op in
  if pre = [] && post = [] then None
  else begin
    let before = Hashtbl.create 32 in
    Ircore.walk_op st.State.payload_root ~pre:(fun o ->
        Hashtbl.replace before o.Ircore.op_name ());
    (* the "left behind" half of the check only makes sense when the
       transform's scope is the whole payload (e.g. apply_registered_pass on
       the root); a loop transform targeting one loop says nothing about its
       siblings *)
    let whole_payload =
      Ircore.num_operands op = 0
      ||
      match State.lookup_handle st (Ircore.operand ~index:0 op) with
      | Ok [ p ] -> p == st.State.payload_root
      | _ -> false
    in
    Some
      (fun () ->
        let violation = ref None in
        Ircore.walk_op st.State.payload_root ~pre:(fun o ->
            if !violation = None then begin
              let consumed_kind =
                whole_payload && Opset.matches_op_name pre o.Ircore.op_name
              in
              let fresh = not (Hashtbl.mem before o.Ircore.op_name) in
              if
                (consumed_kind || fresh)
                && not (Irdl.opset_covers_op ~ctx:st.State.ctx post o)
              then
                violation :=
                  Some
                    (Fmt.str
                       "op %s %s by transform %s is not covered by its \
                        declared post-condition %a"
                       o.Ircore.op_name
                       (if fresh then "introduced" else "left behind")
                       def.Treg.t_name Opset.pp post)
            end);
        match !violation with
        | None -> Ok ()
        | Some msg -> Terror.definite "dynamic post-condition check: %s" msg)
  end

(** Dynamic pre-condition check (Section 3.3): the op kinds required by the
    transform must be present in the targeted payload. *)
and check_preconditions st def op =
  let pre = Treg.pre def op in
  if pre = [] then Ok ()
  else if Ircore.num_operands op = 0 then Ok ()
  else
    match State.lookup_handle st (Ircore.operand ~index:0 op) with
    | Error _ -> Ok () (* reported by the transform itself *)
    | Ok payload ->
      let present =
        List.concat_map (fun p -> Opset.of_payload p) payload
        |> fun s ->
        List.fold_left
          (fun acc p -> Opset.union acc (Opset.of_payload p))
          s payload
      in
      let present =
        List.fold_left
          (fun acc p -> Opset.union acc [ Opset.exact p.Ircore.op_name ])
          present payload
      in
      if Opset.overlaps pre present then Ok ()
      else
        Terror.silenceable
          "dynamic pre-condition failed for %s: payload contains none of %a"
          def.Treg.t_name Opset.pp pre

and run_include st op =
  let* callee =
    match Ircore.attr op "target" with
    | Some (Attr.Symbol_ref (s, _)) -> Ok s
    | _ -> Terror.definite "transform.include requires a target symbol"
  in
  (* resolve in the enclosing module/sequence *)
  let rec find_root o =
    match Ircore.parent_op o with None -> o | Some p -> find_root p
  in
  let root = find_root op in
  let* target =
    match Symbol.lookup_in ~table:root callee with
    | Some t -> Ok t
    | None -> (
      (* also search the root's regions transitively for named sequences *)
      match
        Symbol.collect root ~f:(fun o ->
            o.Ircore.op_name = Ops.named_sequence_op
            && Symbol.symbol_name o = Some callee)
      with
      | t :: _ -> Ok t
      | [] -> Terror.definite "include: no named_sequence @%s" callee)
  in
  match target.Ircore.regions with
  | [ r ] -> (
    match Ircore.region_first_block r with
    | None -> Ok ()
    | Some body ->
      let args = Ircore.block_args body in
      if List.length args <> Ircore.num_operands op then
        Terror.definite "include @%s: expected %d arguments, got %d" callee
          (List.length args) (Ircore.num_operands op)
      else begin
        (* bind arguments: copy handle/param associations *)
        let rec bind i = function
          | [] -> Ok ()
          | arg :: rest ->
            let operand = Ircore.operand ~index:i op in
            let bound =
              if State.is_param_typ (Ircore.value_typ operand) then
                let* ps = State.lookup_params st operand in
                State.set_params st arg ps;
                Ok ()
              else
                let* ops = State.lookup_handle st operand in
                State.set_handle st arg ops;
                Ok ()
            in
            let* () = bound in
            if st.State.config.State.check_annotations then
              State.copy_annots st ~src:operand ~dst:arg;
            bind (i + 1) rest
        in
        let* () = bind 0 args in
        let* () = run_block st body in
        (* bind yielded values to include results *)
        (match Ircore.block_last_op body with
        | Some y when y.Ircore.op_name = Ops.yield_op ->
          List.iteri
            (fun i yielded ->
              if i < Ircore.num_results op then begin
                (if State.is_param_typ (Ircore.value_typ yielded) then
                   match State.lookup_params st yielded with
                   | Ok ps -> State.set_params st (Ircore.result ~index:i op) ps
                   | Error _ -> ()
                 else
                   match State.lookup_handle st yielded with
                   | Ok ops ->
                     State.set_handle st (Ircore.result ~index:i op) ops
                   | Error _ -> ());
                if st.State.config.State.check_annotations then
                  State.copy_annots st ~src:yielded
                    ~dst:(Ircore.result ~index:i op)
              end)
            (Ircore.operands y)
        | _ -> ());
        Ok ()
      end)
  | _ -> Terror.definite "named_sequence must have one region"

and run_alternatives st op =
  let rec try_regions last = function
    | [] ->
      let notes =
        match last with
        | None -> []
        | Some d ->
          [ Diag.note "last alternative failed: %s" (Diag.message d) ]
      in
      Terror.silenceable_diag
        (Diag.error ~loc:op.Ircore.op_loc ~notes "all alternatives failed")
    | r :: rest -> (
      (* transactional region: checkpoint payload + handle tables, roll
         back on silenceable failure so the next region sees the payload
         exactly as this one did — even if this region mutated it *)
      let acur = Action.cursor () in
      let ck = State.checkpoint st in
      match run_region st r with
      | Ok () ->
        State.discard_checkpoint ck;
        Ok ()
      | Error (Terror.Silenceable d) ->
        State.rollback st ck;
        (* journal honesty: the failed alternative's actions executed but
           their effects were undone — re-mark them reverted *)
        Action.revert_since acur;
        Stats.incr stat_suppressed;
        Trace.record
          (Trace.Suppressed
             { su_construct = "transform.alternatives"; su_diag = d });
        try_regions (Some d) rest
      | Error (Terror.Definite _) as e ->
        (* a definite error aborts the whole op immediately: no rollback,
           no further alternatives (Section 3) *)
        State.discard_checkpoint ck;
        e)
  in
  match op.Ircore.regions with
  | [] -> Ok ()
  | regions -> try_regions None regions

and run_foreach st op =
  (* iterate over a snapshot of the handle's payload list: the body may
     rewrite the handle (via the tracking listener) while we iterate *)
  let* payload = State.lookup_handle st (Ircore.operand ~index:0 op) in
  match op.Ircore.regions with
  | [ r ] -> (
    match Ircore.region_first_block r with
    | None -> Ok ()
    | Some body ->
      let rec go i = function
        | [] -> Ok ()
        | p :: rest ->
          (* a previous iteration may have erased or invalidated this
             payload op; fail cleanly instead of transforming a dangling
             op *)
          if not (State.payload_alive st p) then
            Terror.silenceable ~loc:op.Ircore.op_loc
              "transform.foreach: payload op #%d (%s) was erased or \
               invalidated by a previous iteration"
              i p.Ircore.op_name
          else begin
            (match Ircore.block_args body with
            | [ arg ] ->
              State.set_handle st arg [ p ];
              (* the iteration variable inherits the iterated handle's
                 properties afresh each round *)
              if st.State.config.State.check_annotations then
                State.copy_annots st ~src:(Ircore.operand ~index:0 op) ~dst:arg
            | _ -> ());
            let* () = run_block st body in
            go (i + 1) rest
          end
      in
      go 0 payload)
  | _ -> Terror.definite "transform.foreach must have one region"

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

(** Find the main entry of a transform script: either the op itself if it is
    a sequence/named_sequence, or a [@__transform_main] named sequence
    inside a module. *)
let find_entry script =
  match script.Ircore.op_name with
  | "transform.sequence" | "transform.named_sequence" -> Some script
  | _ -> (
    match
      Symbol.collect script ~f:(fun o ->
          o.Ircore.op_name = Ops.named_sequence_op
          && (Symbol.symbol_name o = Some "__transform_main"
             || Symbol.symbol_name o = Some "transform_main"))
    with
    | t :: _ -> Some t
    | [] -> (
      match
        Symbol.collect script ~f:(fun o ->
            o.Ircore.op_name = Ops.sequence_op)
      with
      | t :: _ -> Some t
      | [] -> None))

(** Interpret [script] against [payload], walking the script IR op by op.
    This is the sequential path; the compiled path ({!Schedule}) lowers the
    script once and re-dispatches without re-walking. *)
let apply_interpreted ?(config = State.default_config) ctx ~script ~payload =
  match find_entry script with
  | None ->
    Error
      (Terror.Definite
         (Diag.error
            "no transform entry point (sequence or @__transform_main) found"))
  | Some entry ->
    let st = State.create ~config ctx payload in
    let result =
      (* forced budget check at interpretation entry: scripts too short for
         the amortized deadline sampling still honor an expired deadline *)
      match Budget.checkpoint () with
      | Some reason ->
        Terror.silenceable ~loc:entry.Ircore.op_loc
          "transform interpreter stopped: %s" reason
      | None -> (
      match entry.Ircore.op_name with
      | "transform.sequence" -> run_op st entry
      | _ -> (
        (* named_sequence: bind its argument to the payload root *)
        match entry.Ircore.regions with
        | [ r ] -> (
          match Ircore.region_first_block r with
          | None -> Ok ()
          | Some b ->
            (match Ircore.block_args b with
            | root :: _ -> State.set_handle st root [ payload ]
            | [] -> ());
            run_block st b)
        | _ -> Terror.definite "named_sequence must have one region"))
    in
    (match result with
    | Ok () -> Ok st.State.steps
    | Error e -> Error e)

(* the deprecated [apply] alias of {!apply_interpreted} was removed: the
   unified entry point is {!Schedule.run} / {!Schedule.of_script} +
   {!Schedule.apply}, which compiles and caches by default and exposes an
   [`Interpret] mode equivalent to direct interpretation *)
