(** Compiled transform schedules: the unified entry point for applying a
    transform script to payload IR.

    The sequential interpreter ({!Interp}) re-walks the script IR on every
    application: every op re-matches its name against the structural
    constructs, re-resolves its implementation through {!Treg}, re-resolves
    [include] targets through symbol lookup and re-freezes the pattern sets
    of [apply_patterns]. A schedule performs all of that resolution {e once}
    at compile time and lowers the entry sequence into a flat instruction
    array:

    - registered transform ops become [Dispatch] instructions carrying the
      resolved {!Treg.def} and the precomputed consumed-operand list;
    - [transform.apply_patterns] is compiled to a dispatch of a specialized
      definition closing over the pattern set frozen once
      ({!Ir.Frozen_patterns});
    - [transform.include] is resolved and its callee body compiled inline
      ([Include]), so calls no longer pay symbol lookup;
    - dynamic constructs — [foreach], [alternatives], nested sequences,
      unresolvable includes — compile to [Fallback] thunks that re-enter the
      sequential interpreter op by op, on the same {!State};
    - every SSA value of the script is numbered statically, so the state's
      side tables become flat slot arrays ({!State.install_slots}).

    Execution semantics are identical to interpretation by construction:
    both paths share {!Interp.dispatch_registered} (pre/post-condition
    checks, consumption snapshot/commit, the exception barrier, tracing) and
    the per-op budget/statistics/profiler preamble. Scripts that the static
    use-after-consume analysis ({!Invalidation}) flags are not compiled at
    all — they degrade to whole-script interpretation so the dynamic
    checker reports the exact same errors.

    Schedules are cached content-addressed: {!of_script} keys the cache by
    the script's structural fingerprint ({!Ir.Fingerprint}), so re-applying
    a structurally identical script — even one re-parsed from text — reuses
    the compiled form. Cache traffic is visible as [schedule/cache_hits],
    [schedule/cache_misses] and [schedule/compile_ms] in {!Ir.Stats};
    compilation and application record [schedule.compile]/[schedule.apply]
    spans in {!Ir.Profiler}. *)

open Ir

let ( let* ) = Result.bind

(* global statistics (Ir.Stats), namespaced under component "schedule" *)
let stat_cache_hits = Stats.counter ~component:"schedule" "cache_hits"
let stat_cache_misses = Stats.counter ~component:"schedule" "cache_misses"

let stat_fallbacks =
  Stats.counter ~component:"schedule" "fallbacks"
    ~desc:"interpreter fallback thunks executed by compiled schedules"

let stat_compiles = Stats.counter ~component:"schedule" "compiles"

let stat_evictions =
  Stats.counter ~component:"schedule" "cache_evictions"
    ~desc:"full cache drops after exceeding the capacity bound"

let stat_compile_ms = Stats.histogram ~component:"schedule" "compile_ms"

(* ------------------------------------------------------------------ *)
(* Compiled form                                                       *)
(* ------------------------------------------------------------------ *)

type instr =
  | Dispatch of {
      i_op : Ircore.op;
      i_def : Treg.def;  (** resolved at compile time *)
      i_consumed : int list;  (** precomputed consumed-operand indices *)
    }
  | Include of {
      i_op : Ircore.op;  (** the [transform.include] op *)
      i_callee : string;
      i_args : Ircore.value list;  (** callee block arguments *)
      i_body : instr array;
      i_yield : Ircore.op option;  (** callee terminator, when present *)
    }
  | Fallback of Ircore.op
      (** re-enter the sequential interpreter for this op *)

type entry_kind =
  | Entry_named of Ircore.value option
      (** named_sequence entry; payload root bound to the argument *)
  | Entry_seq of { e_op : Ircore.op; e_root : Ircore.value option }
      (** plain [transform.sequence] entry with propagate semantics: the
          sequence op itself charges one step, like interpretation *)
  | Entry_top  (** body only (e.g. a single whole-entry fallback thunk) *)

type compiled = {
  c_kind : entry_kind;
  c_body : instr array;
  c_index : (int, int) Hashtbl.t;  (** script value id -> slot *)
  c_slot_count : int;
  c_instrs : int;  (** compiled instructions, includes nested *)
  c_static_fallbacks : int;  (** Fallback instructions, includes nested *)
}

type form =
  | Compiled of compiled
  | Interpreted of string  (** reason the script is not compiled *)

type t = {
  s_ctx : Context.t;
  s_script : Ircore.op;
  s_fingerprint : Fingerprint.t;
  s_entry : Ircore.op option;
  s_diags : Invalidation.diagnostic list;
      (** static use-after-consume diagnostics found at compile time *)
  s_form : form;
  s_flow : Flowcheck.report option;
      (** annotation-flow report, when [of_script ~flow:true] was asked
          for; a failing report gates {!apply} before any payload is
          touched. Never stored in the schedule cache — the cache key is
          the script fingerprint alone, which predates the flow option —
          so it is recomputed fresh per [of_script] call. *)
}

type mode = [ `Compile | `Interpret ]

let fingerprint s = s.s_fingerprint
let is_compiled s = match s.s_form with Compiled _ -> true | _ -> false
let static_diags s = s.s_diags
let flow_report s = s.s_flow

(** Why the schedule interprets instead of dispatching compiled code;
    [None] when compiled. *)
let interpreted_reason s =
  match s.s_form with Compiled _ -> None | Interpreted r -> Some r

let instr_count s =
  match s.s_form with Compiled c -> c.c_instrs | Interpreted _ -> 0

let fallback_count s =
  match s.s_form with Compiled c -> c.c_static_fallbacks | Interpreted _ -> 0

let slot_count s =
  match s.s_form with Compiled c -> c.c_slot_count | Interpreted _ -> 0

(* ------------------------------------------------------------------ *)
(* Compilation                                                         *)
(* ------------------------------------------------------------------ *)

(* statically number every SSA value of the script: block arguments and op
   results, in traversal order; the numbering is the slot index shared by
   every application of this schedule *)
let build_slot_index script =
  let index = Hashtbl.create 64 in
  let next = ref 0 in
  let number (v : Ircore.value) =
    if not (Hashtbl.mem index v.Ircore.v_id) then begin
      Hashtbl.replace index v.Ircore.v_id !next;
      incr next
    end
  in
  Ircore.walk_op script ~pre:(fun op ->
      Array.iter number op.Ircore.results;
      List.iter
        (fun r ->
          List.iter
            (fun b -> List.iter number (Ircore.block_args b))
            (Ircore.region_blocks r))
        op.Ircore.regions);
  (index, !next)

exception Not_compilable of string

let script_root op =
  let rec up o =
    match Ircore.parent_op o with None -> o | Some p -> up p
  in
  up op

(* resolve an include target exactly like Interp.run_include, but at
   compile time; None = let the interpreter produce the (identical) error
   or handle the dynamic case at apply time *)
let resolve_include root op =
  match Ircore.attr op "target" with
  | Some (Attr.Symbol_ref (callee, _)) -> (
    match Symbol.lookup_in ~table:root callee with
    | Some t -> Some (callee, t)
    | None -> (
      match
        Symbol.collect root ~f:(fun o ->
            o.Ircore.op_name = Ops.named_sequence_op
            && Symbol.symbol_name o = Some callee)
      with
      | t :: _ -> Some (callee, t)
      | [] -> None))
  | _ -> None

let rec compile_block ~root ~stack (ops : Ircore.op list) : instr list =
  match ops with
  | [] -> []
  | op :: rest ->
    if op.Ircore.op_name = Ops.yield_op then []
    else
      let instrs = compile_op ~root ~stack op in
      instrs @ compile_block ~root ~stack rest

and compile_op ~root ~stack (op : Ircore.op) : instr list =
  match op.Ircore.op_name with
  | "transform.named_sequence" ->
    (* declaration: skipped during sequential execution *)
    []
  | "transform.sequence" | "transform.alternatives" | "transform.foreach" ->
    (* dynamic control flow (iteration, transactional regions): executed by
       the interpreter on the shared state *)
    [ Fallback op ]
  | "transform.include" -> (
    match resolve_include root op with
    | None -> [ Fallback op ] (* unresolved: interpreter reports it *)
    | Some (callee, target) ->
      if List.memq target stack then
        (* recursive include: no finite unrolling; leave it dynamic *)
        [ Fallback op ]
      else (
        match target.Ircore.regions with
        | [ r ] -> (
          match Ircore.region_first_block r with
          | None -> [ Fallback op ]
          | Some body ->
            let args = Ircore.block_args body in
            if List.length args <> Ircore.num_operands op then
              [ Fallback op ] (* arity mismatch: interpreter reports it *)
            else
              let yield =
                match Ircore.block_last_op body with
                | Some y when y.Ircore.op_name = Ops.yield_op -> Some y
                | _ -> None
              in
              let body_instrs =
                compile_block ~root ~stack:(target :: stack)
                  (Ircore.block_ops body)
              in
              [
                Include
                  {
                    i_op = op;
                    i_callee = callee;
                    i_args = args;
                    i_body = Array.of_list body_instrs;
                    i_yield = yield;
                  };
              ])
        | _ -> [ Fallback op ]))
  | name -> (
    match Treg.lookup name with
    | None -> [ Fallback op ] (* unknown op: interpreter reports it *)
    | Some def ->
      if name = Ops.apply_patterns_op then
        let patterns, missing = Ops.collect_patterns op in
        if missing <> [] then [ Fallback op ]
        else
          (* pre-freeze the pattern set once; applications dispatch a
             specialized definition through the normal registered path, so
             interceptors, tracing and the exception barrier still apply *)
          let frozen = Frozen_patterns.freeze patterns in
          let fast_def =
            {
              def with
              Treg.t_apply =
                (fun st op -> Ops.apply_frozen_patterns st op frozen);
            }
          in
          [ Dispatch { i_op = op; i_def = fast_def; i_consumed = [] } ]
      else
        [ Dispatch { i_op = op; i_def = def; i_consumed = Treg.consumes def op } ]
  )

let count_instrs body =
  let rec go (total, fallbacks) = function
    | Dispatch _ -> (total + 1, fallbacks)
    | Fallback _ -> (total + 1, fallbacks + 1)
    | Include { i_body; _ } ->
      Array.fold_left go (total + 1, fallbacks) i_body
  in
  Array.fold_left go (0, 0) body

let compile ctx script =
  ignore ctx;
  let diags = Invalidation.analyze script in
  if diags <> [] then
    (* the static checker flagged a use-after-consume: interpret, so the
       dynamic checker produces exactly the errors callers already expect *)
    (diags, Interpreted "static use-after-consume diagnostics")
  else
    match Interp.find_entry script with
    | None -> (diags, Interpreted "no entry point")
    | Some entry -> (
      let root = script_root entry in
      let index, slot_count = build_slot_index script in
      let finish kind body =
        let instrs, fallbacks = count_instrs body in
        ( diags,
          Compiled
            {
              c_kind = kind;
              c_body = body;
              c_index = index;
              c_slot_count = slot_count;
              c_instrs = instrs;
              c_static_fallbacks = fallbacks;
            } )
      in
      match entry.Ircore.op_name with
      | "transform.sequence" -> (
        let suppress =
          match Ircore.attr entry "failure_propagation" with
          | Some (Attr.String "suppress") -> true
          | _ -> false
        in
        if suppress then
          (* transactional entry: keep the interpreter's checkpoint logic,
             but still run on slot storage *)
          finish Entry_top [| Fallback entry |]
        else
          match entry.Ircore.regions with
          | [ r ] -> (
            match Ircore.region_first_block r with
            | None -> finish Entry_top [||]
            | Some b ->
              let e_root =
                match Ircore.block_args b with [ v ] -> Some v | _ -> None
              in
              let body =
                compile_block ~root ~stack:[] (Ircore.block_ops b)
              in
              finish
                (Entry_seq { e_op = entry; e_root })
                (Array.of_list body))
          | _ -> (diags, Interpreted "malformed sequence entry"))
      | _ -> (
        match entry.Ircore.regions with
        | [ r ] -> (
          match Ircore.region_first_block r with
          | None -> finish (Entry_named None) [||]
          | Some b ->
            let arg =
              match Ircore.block_args b with v :: _ -> Some v | [] -> None
            in
            let body = compile_block ~root ~stack:[] (Ircore.block_ops b) in
            finish (Entry_named arg) (Array.of_list body))
        | _ -> (diags, Interpreted "malformed named_sequence entry")))

(* ------------------------------------------------------------------ *)
(* Content-addressed cache                                             *)
(* ------------------------------------------------------------------ *)

let cache : (Fingerprint.t, t) Hashtbl.t = Hashtbl.create 16

(* the cache is process-global and parallel fuzz campaigns compile from
   worker domains, so accesses are serialized (compilation itself runs
   outside the lock) *)
let cache_mu = Mutex.create ()

let with_cache f =
  Mutex.lock cache_mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock cache_mu) f

(** Bound on distinct cached schedules; exceeding it drops the whole cache
    (autotuning loops generate unbounded families of one-shot scripts). *)
let cache_capacity = ref 512

let cache_size () = with_cache (fun () -> Hashtbl.length cache)
let clear_cache () = with_cache (fun () -> Hashtbl.reset cache)

let schedule_of ?(mode : mode = `Compile) ctx (script : Ircore.op) : t =
  match mode with
  | `Interpret ->
    {
      s_ctx = ctx;
      s_script = script;
      s_fingerprint = Fingerprint.op script;
      s_entry = Interp.find_entry script;
      s_diags = [];
      s_form = Interpreted "interpretation requested";
      s_flow = None;
    }
  | `Compile -> (
    let fp = Fingerprint.op script in
    match with_cache (fun () -> Hashtbl.find_opt cache fp) with
    | Some cached ->
      Stats.incr stat_cache_hits;
      (* structurally identical script: the cached schedule (compiled
         against its own copy of the script IR) applies unchanged *)
      { cached with s_ctx = ctx }
    | None ->
      Stats.incr stat_cache_misses;
      Stats.incr stat_compiles;
      let t0 = Unix.gettimeofday () in
      (* schedule compilation is itself an action: a vetoed compile (debug
         counter) degrades to interpretation instead of running miscompiled
         code half-built — and is never cached, so later uncounted runs
         still compile *)
      let skipped_reason = "schedule compilation skipped by action handler" in
      let diags, form =
        Action.run ~tag:"schedule.compile"
          ~desc:(Fingerprint.to_hex fp) ~loc:script.Ircore.op_loc
          ~root:script
          ~skipped:([], Interpreted skipped_reason)
          (fun () ->
            Profiler.span ~cat:"schedule" "schedule.compile" @@ fun () ->
            compile ctx script)
      in
      Stats.observe stat_compile_ms ((Unix.gettimeofday () -. t0) *. 1e3);
      let action_skipped =
        match form with
        | Interpreted r -> String.equal r skipped_reason
        | Compiled _ -> false
      in
      let s =
        {
          s_ctx = ctx;
          s_script = script;
          s_fingerprint = fp;
          s_entry = Interp.find_entry script;
          s_diags = diags;
          s_form = form;
          s_flow = None;
        }
      in
      if not action_skipped then
        with_cache (fun () ->
            if Hashtbl.length cache >= !cache_capacity then begin
              Stats.incr stat_evictions;
              Hashtbl.reset cache
            end;
            Hashtbl.replace cache fp s);
      s)

(** Lower [script] to a schedule. [`Compile] (default) consults the
    content-addressed cache and compiles on miss; [`Interpret] returns an
    uncached schedule whose {!apply} is exactly sequential interpretation.
    [~flow:true] additionally runs the static annotation-flow checker
    ({!Flowcheck.check}) over the script; a failing report makes {!apply}
    return its structured diagnostics as a definite error before any
    payload is touched. The flow report is attached fresh to the returned
    schedule and never enters the schedule cache. *)
let of_script ?(flow = false) ?mode ctx (script : Ircore.op) : t =
  let s = schedule_of ?mode ctx script in
  if not flow then s else { s with s_flow = Some (Flowcheck.check script) }

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

(* per-instruction preamble, identical to Interp.run_op's: one step, one
   ops_executed tick, one budget unit, one profiler span *)
let with_preamble st (op : Ircore.op) f =
  st.State.steps <- st.State.steps + 1;
  Stats.incr Interp.stat_ops_executed;
  match Budget.step () with
  | Some reason ->
    Terror.silenceable ~loc:op.Ircore.op_loc
      "transform interpreter stopped: %s" reason
  | None -> Profiler.span ~cat:"transform" op.Ircore.op_name f

let rec exec_instr st = function
  | Fallback op ->
    Stats.incr stat_fallbacks;
    Interp.run_op st op
  | Dispatch { i_op; i_def; i_consumed } ->
    with_preamble st i_op @@ fun () ->
    Interp.dispatch_registered ~consumed:i_consumed st i_def i_op
  | Include { i_op; i_args; i_body; i_yield; i_callee = _ } ->
    with_preamble st i_op @@ fun () ->
    (* bind arguments: copy handle/param associations, like run_include *)
    let rec bind i = function
      | [] -> Ok ()
      | arg :: rest ->
        let operand = Ircore.operand ~index:i i_op in
        let* () =
          if State.is_param_typ (Ircore.value_typ operand) then
            let* ps = State.lookup_params st operand in
            State.set_params st arg ps;
            Ok ()
          else
            let* ops = State.lookup_handle st operand in
            State.set_handle st arg ops;
            Ok ()
        in
        if st.State.config.State.check_annotations then
          State.copy_annots st ~src:operand ~dst:arg;
        bind (i + 1) rest
    in
    let* () = bind 0 i_args in
    let* () = exec_body st i_body in
    (* bind yielded values to include results *)
    (match i_yield with
    | Some y ->
      List.iteri
        (fun i yielded ->
          if i < Ircore.num_results i_op then begin
            (if State.is_param_typ (Ircore.value_typ yielded) then
               match State.lookup_params st yielded with
               | Ok ps -> State.set_params st (Ircore.result ~index:i i_op) ps
               | Error _ -> ()
             else
               match State.lookup_handle st yielded with
               | Ok ops -> State.set_handle st (Ircore.result ~index:i i_op) ops
               | Error _ -> ());
            if st.State.config.State.check_annotations then
              State.copy_annots st ~src:yielded
                ~dst:(Ircore.result ~index:i i_op)
          end)
        (Ircore.operands y)
    | None -> ());
    Ok ()

and exec_body st (body : instr array) =
  let n = Array.length body in
  let rec go i =
    if i >= n then Ok ()
    else
      let* () = exec_instr st body.(i) in
      go (i + 1)
  in
  go 0

let apply_compiled ~config ctx c ~payload =
  let st = State.create ~config ctx payload in
  State.install_slots st ~index:c.c_index ~count:c.c_slot_count;
  let result =
    (* forced budget check at entry, mirroring Interp.apply_interpreted *)
    match Budget.checkpoint () with
    | Some reason ->
      Terror.silenceable "transform interpreter stopped: %s" reason
    | None -> (
      match c.c_kind with
      | Entry_top -> exec_body st c.c_body
      | Entry_named arg ->
        (match arg with
        | Some root -> State.set_handle st root [ payload ]
        | None -> ());
        exec_body st c.c_body
      | Entry_seq { e_op; e_root } ->
        (* the sequence op itself is one interpreted step *)
        with_preamble st e_op @@ fun () ->
        (match e_root with
        | Some root -> State.set_handle st root [ payload ]
        | None -> ());
        exec_body st c.c_body)
  in
  match result with
  | Ok () -> Ok st.State.steps
  | Error e -> Error e

(** Apply a schedule to [payload]. Same contract as the interpreter:
    returns the number of executed transform steps, or the first
    silenceable/definite error. *)
let apply ?(config = State.default_config) (s : t) ~payload :
    (int, Terror.t) result =
  Profiler.span ~cat:"schedule" "schedule.apply" @@ fun () ->
  match s.s_flow with
  | Some r when not (Flowcheck.ok r) ->
    (* flow gate: statically unsound schedules never touch the payload *)
    Terror.definite_diag (Flowcheck.to_diag r)
  | _ -> (
    match s.s_form with
    | Interpreted _ ->
      Interp.apply_interpreted ~config s.s_ctx ~script:s.s_script ~payload
    | Compiled c -> apply_compiled ~config s.s_ctx c ~payload)

(** One-shot facade: compile (against the cache) and apply. Drop-in
    replacement for the deprecated [Interp.apply];
    [run ~mode:`Interpret] is exactly sequential interpretation, and
    [run ~flow:true] rejects statically unsound annotation flow before
    touching the payload. *)
let run ?flow ?mode ?config ctx ~script ~payload =
  apply ?config (of_script ?flow ?mode ctx script) ~payload

(** Entry op of the script, as the interpreter would select it. *)
let entry s = s.s_entry
