(** Static handle-invalidation analysis (Sections 3.1/3.4): a forward
    dataflow over a transform region that treats handle consumption as a
    [free] effect and handle derivation (e.g. [match_op in %h]) as aliasing
    into the producer's payload. Reports use-after-consume before the script
    ever runs — this is what statically catches the duplicated
    [loop.unroll] in the paper's Figure 1a. *)

open Ir

type diagnostic = {
  d_op : Ircore.op;  (** the transform op performing the invalid use *)
  d_operand : int;
  d_consumed_by : string;  (** name of the transform that consumed it *)
}

let pp_diagnostic fmt d =
  Fmt.pf fmt
    "op '%s' uses operand #%d, but that handle was invalidated by a prior \
     '%s' (use after consume)"
    d.d_op.Ircore.op_name d.d_operand d.d_consumed_by

(* For each value: the set of values it aliases into (its ancestors via
   derivations). Consuming v invalidates v and every value whose payload is
   derived from v (descendants). *)

type env = {
  consumed : (int, string) Hashtbl.t;  (** value id -> consumer name *)
  mutable diags : diagnostic list;
}

(** Transforms whose results alias (point into) their operand's payload.
    Exported: {!Flowcheck} reuses this aliasing relation so its
    flow-sensitive consumption tracking agrees with this analysis on what
    a consume invalidates. *)
let aliasing_results op =
  match op.Ircore.op_name with
  | "transform.match_op" | "transform.get_parent" | "transform.merge_handles" ->
    true
  | _ -> false

let analyze_block env (block : Ircore.block) =
  (* reverse alias map: parent value id -> derived values *)
  let children : (int, Ircore.value list) Hashtbl.t = Hashtbl.create 16 in
  let add_child parent child =
    let cur =
      Option.value ~default:[] (Hashtbl.find_opt children parent.Ircore.v_id)
    in
    Hashtbl.replace children parent.Ircore.v_id (child :: cur)
  in
  let rec consume ~by (v : Ircore.value) =
    if not (Hashtbl.mem env.consumed v.Ircore.v_id) then begin
      Hashtbl.replace env.consumed v.Ircore.v_id by;
      List.iter
        (fun child -> consume ~by child)
        (Option.value ~default:[] (Hashtbl.find_opt children v.Ircore.v_id))
    end
  in
  let rec go (op : Ircore.op) =
    (* check uses *)
    List.iteri
      (fun i v ->
        match Hashtbl.find_opt env.consumed v.Ircore.v_id with
        | Some by ->
          env.diags <-
            { d_op = op; d_operand = i; d_consumed_by = by } :: env.diags
        | None -> ())
      (Ircore.operands op);
    (* record aliasing *)
    if aliasing_results op then
      List.iter
        (fun r ->
          List.iter
            (fun parent -> add_child parent r)
            (Ircore.operands op))
        (Ircore.results op);
    (* consume *)
    (match Treg.lookup op.Ircore.op_name with
    | Some def ->
      List.iter
        (fun idx ->
          if idx < Ircore.num_operands op then
            consume ~by:op.Ircore.op_name (Ircore.operand ~index:idx op))
        (Treg.consumes def op)
    | None -> ());
    (* nested regions execute in the same handle scope for foreach /
       alternatives; analyze them sequentially *)
    List.iter
      (fun r ->
        List.iter
          (fun b -> List.iter go (Ircore.block_ops b))
          (Ircore.region_blocks r))
      op.Ircore.regions
  in
  List.iter go (Ircore.block_ops block)

(** Analyze a transform script; returns use-after-consume diagnostics in
    program order. *)
let analyze (script : Ircore.op) =
  let env = { consumed = Hashtbl.create 16; diags = [] } in
  (* find all sequence-like bodies at the top level of the script *)
  let bodies =
    match script.Ircore.op_name with
    | "transform.sequence" | "transform.named_sequence" ->
      List.concat_map Ircore.region_blocks script.Ircore.regions
    | _ ->
      Symbol.collect script ~f:(fun o ->
          o.Ircore.op_name = "transform.sequence"
          || o.Ircore.op_name = "transform.named_sequence")
      |> List.concat_map (fun o ->
             List.concat_map Ircore.region_blocks o.Ircore.regions)
  in
  List.iter (analyze_block env) bodies;
  List.rev env.diags
