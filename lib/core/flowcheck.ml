(** Static annotation-flow checking of transform scripts.

    A forward dataflow pass over script IR that propagates the abstract
    per-handle property intervals of {!Annot} ([must]/[may] sets) along the
    handle SSA values, checking every registered transform's declared
    [requires] clauses and applying its [ensures] clauses — without
    touching any payload. Because the static pass reads the very same
    {!Treg} clauses the dynamic checker enforces, the two can only
    disagree on control-flow approximation:

    - [transform.alternatives]: exactly one region commits dynamically;
      statically the region exits are must-joined (properties guaranteed
      on every region survive, properties on some region become [may]);
    - [transform.foreach]: the body runs zero or more times; statically a
      fixpoint over the loop body, joining with the loop entry, with the
      iteration variable re-bound from the iterated handle each round;
    - [transform.include]: callee bodies are isolated-from-above, so each
      (callee, argument-state) pair has a context-independent summary —
      computed once and cached content-addressed by {!Ir.Fingerprint} plus
      the argument signature, and reused across call sites;
    - [sequence failures(suppress)]: the body may be rolled back, so its
      exit is joined with its entry.

    The approximation only ever rejects more, never less: a statically
    accepted script cannot fail a dynamic annotation-requirement check.
    That containment is exactly what the [flow_diff] differential fuzz
    oracle probes.

    The checker additionally threads the {!Conditions} op-kind set through
    the same control flow when an [~initial] set is given (the
    [otd_check --flow] mode), and tracks handle consumption along the way
    — flow-sensitively, unlike {!Invalidation.analyze}, which walks nested
    regions sequentially in one shared environment. *)

open Ir

module Imap = Map.Make (Int)

(* global statistics (Ir.Stats) *)
let stat_checks = Stats.counter ~component:"flowcheck" "checks"

let stat_problems =
  Stats.counter ~component:"flowcheck" "problems"
    ~desc:"static annotation-flow problems reported"

let stat_summary_hits =
  Stats.counter ~component:"flowcheck" "summary_hits"
    ~desc:"include summaries reused from the cache"

let stat_summary_misses =
  Stats.counter ~component:"flowcheck" "summary_misses"

let stat_foreach_rounds =
  Stats.counter ~component:"flowcheck" "foreach_rounds"
    ~desc:"foreach fixpoint iterations across all checks"

(* ---------------- problems & report ---------------- *)

type problem =
  | Unsatisfied_requires of {
      p_op : Ircore.op;
      p_operand : int;
      p_req : Annot.req;
      p_info : Annot.info;
    }
  | Use_after_consume of { u_op : Ircore.op; u_operand : int; u_by : string }
  | Cond_problem of Conditions.problem
      (** op-kind layer ({!Conditions}), only with [~initial] *)
  | Non_convergent of { n_op : Ircore.op }
  | Unsupported of { s_op : Ircore.op; s_reason : string }

let pp_problem fmt = function
  | Unsatisfied_requires { p_op; p_operand; p_req; p_info } ->
    Fmt.pf fmt "%s of %s not met on operand #%d: needs %a, handle carries %a"
      Annot.requirement_tag p_op.Ircore.op_name p_operand Annot.pp_req p_req
      Annot.pp_info p_info
  | Use_after_consume { u_op; u_operand; u_by } ->
    Fmt.pf fmt
      "op '%s' uses operand #%d, but that handle was invalidated by a prior \
       '%s' (use after consume)"
      u_op.Ircore.op_name u_operand u_by
  | Cond_problem p -> Conditions.pp_problem fmt p
  | Non_convergent { n_op } ->
    Fmt.pf fmt
      "%s: property propagation did not converge within the iteration \
       budget"
      n_op.Ircore.op_name
  | Unsupported { s_op; s_reason } ->
    Fmt.pf fmt "cannot statically check %s: %s" s_op.Ircore.op_name s_reason

type report = {
  fr_problems : problem list;
  fr_invalidation : Invalidation.diagnostic list;
      (** the companion use-after-consume analysis the schedule compiler
          degrades on; reported here so [otd_check --flow] and
          [--schedule] agree on degradation by construction *)
  fr_final : Opset.t option;
      (** op-kind set at script exit, when [~initial] was given *)
}

let ok r = r.fr_problems = []

let pp_report fmt r =
  if r.fr_problems = [] then
    Fmt.pf fmt "  OK: annotation flow is sound@."
  else
    List.iter (fun p -> Fmt.pf fmt "  ERROR: %a@." pp_problem p) r.fr_problems

(** Structured rejection for the {!Schedule} gate: one definite-error diag
    carrying every problem as a note. *)
let to_diag r =
  let n = List.length r.fr_problems in
  Diag.error
    ~notes:(List.map (fun p -> Diag.note "%a" pp_problem p) r.fr_problems)
    "annotation-flow check rejected the script (%d problem%s)" n
    (if n = 1 then "" else "s")

(* ---------------- abstract environment ---------------- *)

(** Per-program-point state, functional so control-flow joins and
    fixpoints are plain value operations. *)
type env = {
  vals : Annot.info Imap.t;  (** handle value id -> property interval *)
  consumed : string Imap.t;  (** handle value id -> consuming transform *)
  present : Opset.t option;  (** op-kind layer, [None] when not tracked *)
}

let info_of env (v : Ircore.value) =
  Option.value ~default:Annot.empty_info (Imap.find_opt v.Ircore.v_id env.vals)

let opset_equal (a : Opset.t) (b : Opset.t) =
  List.sort_uniq compare a = List.sort_uniq compare b

let join_env a b =
  {
    vals = Imap.union (fun _ x y -> Some (Annot.join x y)) a.vals b.vals;
    consumed = Imap.union (fun _ x _ -> Some x) a.consumed b.consumed;
    present =
      (match (a.present, b.present) with
      | Some p, Some q -> Some (Opset.union p q)
      | _ -> None);
  }

let env_equal a b =
  Imap.equal Annot.info_equal a.vals b.vals
  && Imap.equal String.equal a.consumed b.consumed
  &&
  match (a.present, b.present) with
  | None, None -> true
  | Some p, Some q -> opset_equal p q
  | _ -> false

(* ---------------- analysis context ---------------- *)

type actx = {
  children : (int, Ircore.value list) Hashtbl.t;
      (** reverse alias map: consuming a handle also consumes the handles
          derived from it ({!Invalidation.aliasing_results}) *)
  mutable problems : problem list;
  track : bool;  (** op-kind layer on ([~initial] given) *)
  include_stack : int list ref;
      (** fingerprints of callees being analyzed, for recursion detection;
          shared with summary sub-analyses *)
}

let add_problem actx p = actx.problems <- p :: actx.problems

let add_child actx (parent : Ircore.value) (child : Ircore.value) =
  let cur =
    Option.value ~default:[] (Hashtbl.find_opt actx.children parent.Ircore.v_id)
  in
  if not (List.memq child cur) then
    Hashtbl.replace actx.children parent.Ircore.v_id (child :: cur)

let rec consume_value actx ~by consumed (v : Ircore.value) =
  if Imap.mem v.Ircore.v_id consumed then consumed
  else
    let consumed = Imap.add v.Ircore.v_id by consumed in
    List.fold_left
      (consume_value actx ~by)
      consumed
      (Option.value ~default:[] (Hashtbl.find_opt actx.children v.Ircore.v_id))

let check_uses actx env op =
  List.iteri
    (fun i v ->
      match Imap.find_opt v.Ircore.v_id env.consumed with
      | Some by ->
        add_problem actx (Use_after_consume { u_op = op; u_operand = i; u_by = by })
      | None -> ())
    (Ircore.operands op)

(** Fresh results default to the empty property set (what the dynamic side
    records for a transform with no ensures-clause). *)
let results_empty env op =
  {
    env with
    vals =
      List.fold_left
        (fun vs (r : Ircore.value) -> Imap.add r.Ircore.v_id Annot.empty_info vs)
        env.vals (Ircore.results op);
  }

(* ---------------- include summaries ---------------- *)

(** Context-independent effect of one (callee, argument-state) pair:
    callee bodies are isolated-from-above, so they can only consume and
    annotate their own block arguments. *)
type summary = {
  sm_consumed : (int * string) list;
      (** argument indices the callee consumes, with the consumer name —
          mirrored onto the caller's operands, exactly like the dynamic
          payload-overlap propagation in [State.commit_consumption] *)
  sm_results : Annot.info list;  (** per yielded value *)
  sm_problems : problem list;  (** problems inside the callee body *)
}

let summaries : (int * string, summary) Hashtbl.t = Hashtbl.create 16

(* process-global and reachable from parallel fuzz workers: serialize *)
let summaries_mu = Mutex.create ()

let with_summaries f =
  Mutex.lock summaries_mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock summaries_mu) f

let summary_key ~fp arg_infos =
  (fp, String.concat ";" (List.map Annot.info_signature arg_infos))

(* ---------------- the dataflow pass ---------------- *)

let foreach_round_budget = 8

let rec flow_block actx env (b : Ircore.block) =
  let rec go env = function
    | [] -> env
    | (op : Ircore.op) :: rest ->
      if op.Ircore.op_name = Ops.yield_op then env
      else go (flow_op actx env op) rest
  in
  go env (Ircore.block_ops b)

and flow_op actx env (op : Ircore.op) =
  match op.Ircore.op_name with
  | "transform.sequence" -> flow_sequence actx env op
  | "transform.named_sequence" -> env (* declaration *)
  | "transform.include" -> flow_include actx env op
  | "transform.alternatives" -> flow_alternatives actx env op
  | "transform.foreach" -> flow_foreach actx env op
  | name -> (
    match Treg.lookup name with
    | Some def -> flow_registered actx env def op
    | None ->
      add_problem actx
        (Unsupported { s_op = op; s_reason = "not a registered transform" });
      results_empty env op)

and flow_sequence actx env op =
  match op.Ircore.regions with
  | [ r ] -> (
    match Ircore.region_first_block r with
    | None -> env
    | Some b ->
      let env_entry =
        match Ircore.block_args b with
        | [ root ] ->
          { env with vals = Imap.add root.Ircore.v_id Annot.empty_info env.vals }
        | _ -> env
      in
      let env_out = flow_block actx env_entry b in
      let suppress =
        match Ircore.attr op "failure_propagation" with
        | Some (Attr.String "suppress") -> true
        | _ -> false
      in
      (* failures(suppress) may roll the whole body back: its effects are
         only possible, not guaranteed *)
      if suppress then join_env env env_out else env_out)
  | _ ->
    add_problem actx
      (Unsupported { s_op = op; s_reason = "sequence must have one region" });
    env

and flow_alternatives actx env op =
  match op.Ircore.regions with
  | [] -> env
  | regions ->
    (* each region starts from the same entry state (dynamic rollback
       restores it); on normal continuation exactly one region has
       committed, so the exits are must-joined *)
    let outs =
      List.map
        (fun r ->
          match Ircore.region_first_block r with
          | None -> env
          | Some b -> flow_block actx env b)
        regions
    in
    (match outs with
    | [] -> env
    | e :: rest -> List.fold_left join_env e rest)

and flow_foreach actx env op =
  check_uses actx env op;
  match op.Ircore.regions with
  | [ r ] -> (
    match Ircore.region_first_block r with
    | None -> env
    | Some body ->
      let operand =
        if Ircore.num_operands op > 0 then Some (Ircore.operand ~index:0 op)
        else None
      in
      let arg =
        match Ircore.block_args body with [ a ] -> Some a | _ -> None
      in
      let rec iterate round env_in =
        Stats.incr stat_foreach_rounds;
        (* the body of a previous round may have consumed the iterated
           handle; re-binding from it is then a use after consume *)
        (match operand with
        | Some v -> (
          match Imap.find_opt v.Ircore.v_id env_in.consumed with
          | Some by ->
            add_problem actx
              (Use_after_consume { u_op = op; u_operand = 0; u_by = by })
          | None -> ())
        | None -> ());
        let env_bound =
          match arg with
          | None -> env_in
          | Some a ->
            let inherited =
              match operand with
              | Some v -> info_of env_in v
              | None -> Annot.empty_info
            in
            { env_in with vals = Imap.add a.Ircore.v_id inherited env_in.vals }
        in
        let env_out = flow_block actx env_bound body in
        let joined = join_env env_in env_out in
        if env_equal joined env_in then env_in
        else if round >= foreach_round_budget then begin
          add_problem actx (Non_convergent { n_op = op });
          joined
        end
        else iterate (round + 1) joined
      in
      iterate 1 env)
  | _ ->
    add_problem actx
      (Unsupported { s_op = op; s_reason = "foreach must have one region" });
    env

and flow_registered actx env (def : Treg.def) op =
  check_uses actx env op;
  (* requires-clauses against the abstract intervals (three-valued: a
     negated atom needs absence from [may], not mere absence from [must]) *)
  List.iter
    (fun (idx, req) ->
      if idx < Ircore.num_operands op then begin
        let info = info_of env (Ircore.operand ~index:idx op) in
        if not (Annot.satisfies info req) then
          add_problem actx
            (Unsatisfied_requires
               { p_op = op; p_operand = idx; p_req = req; p_info = info })
      end)
    (Treg.requires def op);
  (* op-kind layer: same transfer function as Conditions.check, but
     flow-sensitive through joins and fixpoints *)
  let present =
    match env.present with
    | None -> None
    | Some before ->
      let pre = Treg.pre def op and post = Treg.post def op in
      if pre = [] && post = [] then Some before
      else begin
        if Conditions.vacuous ~pre before then
          add_problem actx
            (Cond_problem
               (Conditions.Vacuous
                  { step = op.Ircore.op_name; pre; present = before }));
        Some (Conditions.transfer ~pre ~post before)
      end
  in
  if Invalidation.aliasing_results op then
    List.iter
      (fun r ->
        List.iter (fun parent -> add_child actx parent r) (Ircore.operands op))
      (Ircore.results op);
  let consumed =
    List.fold_left
      (fun c idx ->
        if idx < Ircore.num_operands op then
          consume_value actx ~by:op.Ircore.op_name c
            (Ircore.operand ~index:idx op)
        else c)
      env.consumed (Treg.consumes def op)
  in
  let vals =
    List.fold_left
      (fun vs (r : Ircore.value) -> Imap.add r.Ircore.v_id Annot.empty_info vs)
      env.vals (Ircore.results op)
  in
  let vals =
    List.fold_left
      (fun vs (target, ps) ->
        match target with
        | Annot.On_result i when i < Ircore.num_results op ->
          Imap.add (Ircore.result ~index:i op).Ircore.v_id (Annot.exact ps) vs
        | Annot.On_operand i when i < Ircore.num_operands op ->
          let v = Ircore.operand ~index:i op in
          let cur =
            Option.value ~default:Annot.empty_info
              (Imap.find_opt v.Ircore.v_id vs)
          in
          Imap.add v.Ircore.v_id
            {
              Annot.must = Annot.Props.union cur.Annot.must ps;
              may = Annot.Props.union cur.Annot.may ps;
            }
            vs
        | _ -> vs)
      vals (Treg.ensures def op)
  in
  { vals; consumed; present }

and flow_include actx env op =
  check_uses actx env op;
  let resolved =
    match Ircore.attr op "target" with
    | Some (Attr.Symbol_ref (s, _)) -> (
      let rec find_root (o : Ircore.op) =
        match Ircore.parent_op o with None -> o | Some p -> find_root p
      in
      let root = find_root op in
      match Symbol.lookup_in ~table:root s with
      | Some t -> Ok (s, t)
      | None -> (
        match
          Symbol.collect root ~f:(fun o ->
              o.Ircore.op_name = Ops.named_sequence_op
              && Symbol.symbol_name o = Some s)
        with
        | t :: _ -> Ok (s, t)
        | [] -> Error (Fmt.str "no named_sequence @%s" s)))
    | _ -> Error "include without a target symbol"
  in
  match resolved with
  | Error reason ->
    add_problem actx (Unsupported { s_op = op; s_reason = reason });
    results_empty env op
  | Ok (callee, target) -> (
    match target.Ircore.regions with
    | [ r ] -> (
      match Ircore.region_first_block r with
      | None -> results_empty env op
      | Some body ->
        let args = Ircore.block_args body in
        if List.length args <> Ircore.num_operands op then begin
          add_problem actx
            (Unsupported
               {
                 s_op = op;
                 s_reason =
                   Fmt.str "include @%s: expected %d arguments, got %d" callee
                     (List.length args) (Ircore.num_operands op);
               });
          results_empty env op
        end
        else
          let fp = Fingerprint.op target in
          if List.mem fp !(actx.include_stack) then begin
            add_problem actx
              (Unsupported
                 {
                   s_op = op;
                   s_reason = Fmt.str "recursive include of @%s" callee;
                 });
            results_empty env op
          end
          else
            let arg_infos = List.map (info_of env) (Ircore.operands op) in
            if actx.track then
              (* the op-kind set is one global, path-dependent state — not
                 compositional per callee — so analyze the body inline *)
              flow_include_inline actx env op ~body ~args ~arg_infos ~fp
            else
              flow_include_summary actx env op ~body ~args ~arg_infos ~fp)
    | _ ->
      add_problem actx
        (Unsupported
           { s_op = op; s_reason = "named_sequence must have one region" });
      results_empty env op)

and callee_yields body =
  match Ircore.block_last_op body with
  | Some y when y.Ircore.op_name = Ops.yield_op -> Ircore.operands y
  | _ -> []

and bind_results env op result_infos =
  let vals = ref env.vals in
  List.iteri
    (fun i (r : Ircore.value) ->
      let info =
        Option.value ~default:Annot.empty_info (List.nth_opt result_infos i)
      in
      vals := Imap.add r.Ircore.v_id info !vals)
    (Ircore.results op);
  { env with vals = !vals }

and flow_include_inline actx env op ~body ~args ~arg_infos ~fp =
  actx.include_stack := fp :: !(actx.include_stack);
  let vals =
    List.fold_left2
      (fun vs (a : Ircore.value) info -> Imap.add a.Ircore.v_id info vs)
      env.vals args arg_infos
  in
  let env_out = flow_block actx { env with vals } body in
  actx.include_stack := List.tl !(actx.include_stack);
  (* a consumed callee argument consumes the caller operand too: the two
     share payload, so the dynamic commit marks both *)
  let consumed =
    List.fold_left2
      (fun c (a : Ircore.value) (operand : Ircore.value) ->
        match Imap.find_opt a.Ircore.v_id env_out.consumed with
        | Some by when not (Imap.mem operand.Ircore.v_id c) ->
          consume_value actx ~by c operand
        | _ -> c)
      env_out.consumed args (Ircore.operands op)
  in
  let result_infos = List.map (info_of env_out) (callee_yields body) in
  bind_results { env_out with consumed } op result_infos

and flow_include_summary actx env op ~body ~args ~arg_infos ~fp =
  let key = summary_key ~fp arg_infos in
  let summary =
    match with_summaries (fun () -> Hashtbl.find_opt summaries key) with
    | Some s ->
      Stats.incr stat_summary_hits;
      s
    | None ->
      Stats.incr stat_summary_misses;
      actx.include_stack := fp :: !(actx.include_stack);
      (* fresh, context-free sub-analysis: the callee is isolated from
         above, so its only inputs are the argument intervals *)
      let sub =
        {
          children = Hashtbl.create 16;
          problems = [];
          track = false;
          include_stack = actx.include_stack;
        }
      in
      let vals0 =
        List.fold_left2
          (fun vs (a : Ircore.value) info -> Imap.add a.Ircore.v_id info vs)
          Imap.empty args arg_infos
      in
      let env_out =
        flow_block sub { vals = vals0; consumed = Imap.empty; present = None }
          body
      in
      actx.include_stack := List.tl !(actx.include_stack);
      let sm_consumed =
        List.mapi
          (fun i (a : Ircore.value) ->
            (i, Imap.find_opt a.Ircore.v_id env_out.consumed))
          args
        |> List.filter_map (fun (i, c) -> Option.map (fun by -> (i, by)) c)
      in
      let sm_results = List.map (info_of env_out) (callee_yields body) in
      let s = { sm_consumed; sm_results; sm_problems = sub.problems } in
      with_summaries (fun () ->
          if Hashtbl.length summaries > 512 then Hashtbl.reset summaries;
          Hashtbl.replace summaries key s);
      s
  in
  actx.problems <- summary.sm_problems @ actx.problems;
  let consumed =
    List.fold_left
      (fun c (i, by) ->
        if i < Ircore.num_operands op then
          consume_value actx ~by c (Ircore.operand ~index:i op)
        else c)
      env.consumed summary.sm_consumed
  in
  bind_results { env with consumed } op summary.sm_results

(* ---------------- entry point ---------------- *)

let problem_key = function
  | Unsatisfied_requires { p_op; p_operand; _ } ->
    Fmt.str "req:%d:%d" p_op.Ircore.op_id p_operand
  | Use_after_consume { u_op; u_operand; _ } ->
    Fmt.str "uac:%d:%d" u_op.Ircore.op_id u_operand
  | Cond_problem p -> Fmt.str "cond:%a" Conditions.pp_problem p
  | Non_convergent { n_op } -> Fmt.str "conv:%d" n_op.Ircore.op_id
  | Unsupported { s_op; s_reason } ->
    Fmt.str "unsup:%d:%s" s_op.Ircore.op_id s_reason

let dedup_problems ps =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun p ->
      let k = problem_key p in
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.replace seen k ();
        true
      end)
    ps

(** Check [script]. With [~initial] (and optionally [~final]) the op-kind
    layer of {!Conditions} is threaded through the same control flow;
    without it, only handle annotations and consumption are tracked and
    include summaries are cached across call sites and checks. *)
let check ?initial ?final (script : Ircore.op) : report =
  Profiler.span ~cat:"flowcheck" "flowcheck.check" @@ fun () ->
  Stats.incr stat_checks;
  let fr_invalidation = Invalidation.analyze script in
  let actx =
    {
      children = Hashtbl.create 16;
      problems = [];
      track = initial <> None;
      include_stack = ref [];
    }
  in
  let env0 = { vals = Imap.empty; consumed = Imap.empty; present = initial } in
  let env_final =
    match Interp.find_entry script with
    | None ->
      add_problem actx
        (Unsupported
           {
             s_op = script;
             s_reason =
               "no transform entry point (sequence or @__transform_main)";
           });
      env0
    | Some entry -> (
      match entry.Ircore.op_name with
      | "transform.sequence" -> flow_sequence actx env0 entry
      | _ -> (
        (* main named_sequence: its arguments are root handles with no
           established properties *)
        match entry.Ircore.regions with
        | [ r ] -> (
          match Ircore.region_first_block r with
          | None -> env0
          | Some b ->
            let vals =
              List.fold_left
                (fun vs (a : Ircore.value) ->
                  Imap.add a.Ircore.v_id Annot.empty_info vs)
                env0.vals (Ircore.block_args b)
            in
            flow_block actx { env0 with vals } b)
        | _ ->
          add_problem actx
            (Unsupported
               {
                 s_op = entry;
                 s_reason = "named_sequence must have one region";
               });
          env0))
  in
  (match (env_final.present, final) with
  | Some present, Some allowed ->
    let remaining = Opset.leftover ~allowed present in
    if remaining <> [] then
      add_problem actx (Cond_problem (Conditions.Leftover { remaining; allowed }))
  | _ -> ());
  let fr_problems = dedup_problems (List.rev actx.problems) in
  Stats.add stat_problems (List.length fr_problems);
  { fr_problems; fr_invalidation; fr_final = env_final.present }
