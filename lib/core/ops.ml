(** Transform-dialect operations: context registration (names, verifiers,
    traits) and interpreter implementations registered in {!Treg}.

    Structural ops ([sequence], [named_sequence], [include], [alternatives],
    [foreach], [yield]) are interpreted directly by {!Interp}; all other
    transforms dispatch through the {!Treg} registry — the extensibility
    point of Section 3.2. *)

open Ir
open Dialects

let ( let* ) = Result.bind

let h = Typ.transform_any_op
let p = Typ.transform_param

(* names *)
let sequence_op = "transform.sequence"
let named_sequence_op = "transform.named_sequence"
let yield_op = "transform.yield"
let include_op = "transform.include"
let alternatives_op = "transform.alternatives"
let foreach_op = "transform.foreach"
let match_op = "transform.match_op"
let param_constant_op = "transform.param_constant"
let loop_split_op = "transform.loop_split"
let loop_tile_op = "transform.loop_tile"
let loop_unroll_op = "transform.loop_unroll"
let loop_interchange_op = "transform.loop_interchange"
let loop_hoist_op = "transform.loop_hoist"
let loop_vectorize_op = "transform.loop_vectorize"
let loop_fuse_op = "transform.loop_fuse"
let loop_peel_op = "transform.loop_peel"
let to_library_op = "transform.to_library"
let structured_tile_op = "transform.structured_tile"
let structured_to_library_op = "transform.structured_to_library"
let structured_to_loops_op = "transform.structured_to_loops"
let apply_registered_pass_op = "transform.apply_registered_pass"
let apply_patterns_op = "transform.apply_patterns"
let pattern_ref_op = "transform.pattern"
let print_op = "transform.print"
let get_parent_op = "transform.get_parent"
let merge_handles_op = "transform.merge_handles"
let split_handle_op = "transform.split_handle"
let annotate_op = "transform.annotate"
let enzyme_ad_op = "transform.enzyme_ad"

(* ------------------------------------------------------------------ *)
(* Context registration                                                *)
(* ------------------------------------------------------------------ *)

let register_context ctx =
  let reg = Context.register_op ctx in
  (* failure-propagation mode of the paper's sequence op: [propagate]
     (default) forwards silenceable failures, [suppress] rolls the body
     back and downgrades them to warnings *)
  let verify_failure_propagation op =
    match Ircore.attr op "failure_propagation" with
    | None | Some (Attr.String ("propagate" | "suppress")) -> Ok ()
    | Some a ->
      Error
        (Fmt.str
           "invalid failure_propagation %a: expected \"propagate\" or \
            \"suppress\""
           Attr.pp a)
  in
  reg sequence_op ~summary:"top-level transform sequence"
    ~traits:[ Context.No_terminator ]
    ~verify:
      (Verifier.all [ Verifier.expect_regions 1; verify_failure_propagation ]);
  reg named_sequence_op ~summary:"reusable transform macro"
    ~traits:[ Context.Symbol; Context.Isolated_from_above; Context.No_terminator ]
    ~verify:
      (Verifier.all [ Verifier.expect_regions 1; Verifier.expect_attr "sym_name" ]);
  reg yield_op ~traits:[ Context.Terminator; Context.Return_like ];
  reg include_op ~verify:(Verifier.expect_attr "target");
  reg alternatives_op ~traits:[ Context.No_terminator ];
  reg foreach_op ~traits:[ Context.No_terminator ]
    ~verify:(Verifier.all [ Verifier.expect_operands 1; Verifier.expect_regions 1 ]);
  reg match_op
    ~verify:
      (Verifier.all [ Verifier.expect_operands 1; Verifier.expect_results 1 ]);
  reg param_constant_op
    ~verify:
      (Verifier.all
         [
           Verifier.expect_operands 0;
           Verifier.expect_results 1;
           Verifier.expect_attr "value";
         ]);
  reg loop_split_op
    ~verify:
      (Verifier.all [ Verifier.expect_min_operands 1; Verifier.expect_results 2 ]);
  reg loop_tile_op
    ~verify:
      (Verifier.all [ Verifier.expect_min_operands 1; Verifier.expect_results 2 ]);
  reg loop_unroll_op ~verify:(Verifier.expect_min_operands 1);
  reg loop_interchange_op
    ~verify:
      (Verifier.all [ Verifier.expect_operands 1; Verifier.expect_results 1 ]);
  reg loop_hoist_op
    ~verify:
      (Verifier.all [ Verifier.expect_min_operands 1; Verifier.expect_results 1 ]);
  reg loop_vectorize_op
    ~verify:
      (Verifier.all [ Verifier.expect_min_operands 1; Verifier.expect_results 1 ]);
  reg loop_fuse_op
    ~verify:
      (Verifier.all [ Verifier.expect_operands 2; Verifier.expect_results 1 ]);
  reg loop_peel_op
    ~verify:
      (Verifier.all
         [
           Verifier.expect_operands 1;
           Verifier.expect_results 2;
           Verifier.expect_attr "iterations";
         ]);
  reg to_library_op
    ~verify:
      (Verifier.all
         [
           Verifier.expect_operands 1;
           Verifier.expect_attr "library";
         ]);
  reg structured_tile_op
    ~verify:
      (Verifier.all
         [
           Verifier.expect_min_operands 1;
           Verifier.expect_results 2;
           Verifier.expect_attr "tile_sizes";
         ]);
  reg structured_to_library_op
    ~verify:
      (Verifier.all
         [ Verifier.expect_operands 1; Verifier.expect_attr "library" ]);
  reg structured_to_loops_op ~verify:(Verifier.expect_operands 1);
  reg apply_registered_pass_op
    ~verify:
      (Verifier.all
         [ Verifier.expect_operands 1; Verifier.expect_attr "pass_name" ]);
  reg apply_patterns_op
    ~traits:[ Context.No_terminator ]
    ~verify:
      (Verifier.all [ Verifier.expect_operands 1; Verifier.expect_regions 1 ]);
  reg pattern_ref_op ~verify:(Verifier.expect_attr "name");
  reg print_op;
  reg get_parent_op
    ~verify:
      (Verifier.all [ Verifier.expect_operands 1; Verifier.expect_results 1 ]);
  reg merge_handles_op ~verify:(Verifier.expect_results 1);
  reg split_handle_op
    ~verify:
      (Verifier.all [ Verifier.expect_operands 1; Verifier.expect_min_operands 1 ]);
  reg annotate_op
    ~verify:
      (Verifier.all [ Verifier.expect_operands 1; Verifier.expect_attr "name" ]);
  reg enzyme_ad_op ~verify:(Verifier.expect_operands 1)

(* ------------------------------------------------------------------ *)
(* Implementation helpers                                              *)
(* ------------------------------------------------------------------ *)

let operand_handle st op i = State.lookup_handle st (Ircore.operand ~index:i op)

(** Integer option from attribute or trailing param operand. *)
let int_config st op ~attr_name ~operand_index =
  match Ircore.attr op attr_name with
  | Some (Attr.Int (n, _)) -> Ok (Some n)
  | Some a -> Terror.definite "attribute %s: expected integer, got %a" attr_name Attr.pp a
  | None ->
    if Ircore.num_operands op > operand_index then
      let* n =
        State.lookup_int_param st (Ircore.operand ~index:operand_index op)
      in
      Ok (Some n)
    else Ok None

let set_result st op i ops = State.set_handle st (Ircore.result ~index:i op) ops

(** Run [f] on each payload op of the operand handle; collects outputs. *)
let over_payload st op ~index f =
  let* payload = operand_handle st op index in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | x :: rest ->
      let* y = f x in
      go (y :: acc) rest
  in
  go [] payload

let as_silenceable = function
  | Ok v -> Ok v
  | Error msg -> Terror.silenceable "%s" msg

(** Pattern references of a [transform.apply_patterns] region, in source
    order: resolved patterns plus the names that failed to resolve. Shared
    between the interpreted implementation below and the schedule compiler
    ({!Schedule}), which freezes the resolved set once at compile time. *)
let collect_patterns op =
  let patterns = ref [] in
  let missing = ref [] in
  (match op.Ircore.regions with
  | [ r ] ->
    List.iter
      (fun b ->
        List.iter
          (fun ref_op ->
            let pname =
              let n = ref_op.Ircore.op_name in
              if n = pattern_ref_op then
                match Ircore.attr ref_op "name" with
                | Some (Attr.String s) -> Some s
                | _ -> None
              else
                let prefix = "transform.pattern." in
                if
                  String.length n > String.length prefix
                  && String.sub n 0 (String.length prefix) = prefix
                then
                  Some
                    (String.sub n (String.length prefix)
                       (String.length n - String.length prefix))
                else None
            in
            match pname with
            | Some name -> (
              match Pattern.lookup name with
              | Some pat -> patterns := pat :: !patterns
              | None -> missing := name :: !missing)
            | None -> ())
          (Ircore.block_ops b))
      (Ircore.region_blocks r)
  | _ -> ());
  (List.rev !patterns, List.rev !missing)

(** Greedily apply a frozen pattern set to every payload op of the target
    handle — the execution half of [transform.apply_patterns], shared with
    the compiled path. *)
let apply_frozen_patterns st op frozen =
  let* targets = State.lookup_handle st (Ircore.operand ~index:0 op) in
  List.iter
    (fun target ->
      ignore
        (Greedy.apply ~config:Dutil.greedy_config
           ~rewriter:(State.rewriter st) st.State.ctx ~patterns:frozen target))
    targets;
  Ok ()

(* ------------------------------------------------------------------ *)
(* Treg registrations                                                  *)
(* ------------------------------------------------------------------ *)

let scf_for_set = [ Opset.exact "scf.for" ]

let loop_arith_set =
  [
    Opset.exact "scf.for"; Opset.exact "scf.yield"; Opset.exact "arith.addi";
    Opset.exact "arith.muli"; Opset.exact "arith.minsi";
    Opset.exact "arith.constant";
  ]

(* annotation-flow declarations ({!Annot}): the property sets established
   and demanded by the transforms below. The same clauses are read by the
   dynamic checker ([State.check_annotations]) and by the static
   {!Flowcheck} pass, so the two can only disagree on control-flow
   approximation, never on the specs themselves. *)
let props l = Annot.Props.of_list l

(** Properties established by a (non-identity) tiling: always "tiled",
    plus the statically known leading tile size when the sizes come from an
    attribute rather than parameter operands. *)
let tiled_props op =
  let base = props [ Annot.flag "tiled" ] in
  match Ircore.attr op "tile_sizes" with
  | Some (Attr.Int_array (s0 :: _)) when s0 > 0 ->
    Annot.Props.add (Annot.keyed "tiled_by" s0) base
  | _ -> base

let register_impls () =
  (* ------------ match_op ------------ *)
  Treg.register ~name:match_op
    ~spec:
      {
        Treg.default_spec with
        summary =
          "collect payload ops under the given roots, by name, dialect, \
           implemented interface and/or attribute presence";
        arity = Some 1;
        pure = true;
      }
    (fun st op ->
      let str_attr name =
        match Ircore.attr op name with
        | Some (Attr.String s) -> Some s
        | _ -> None
      in
      let name = str_attr "op_name" in
      let dialect = str_attr "dialect" in
      let iface = str_attr "interface" in
      let attr_present = str_attr "has_attr" in
      let select = Option.value ~default:"all" (str_attr "select") in
      let* () =
        if name = None && dialect = None && iface = None && attr_present = None
        then
          Terror.definite
            "match_op needs at least one of op_name/dialect/interface/has_attr"
        else Ok ()
      in
      let matches (o : Ircore.op) =
        (match name with Some n -> o.Ircore.op_name = n | None -> true)
        && (match dialect with
           | Some d -> Ircore.op_dialect o = d
           | None -> true)
        && (match iface with
           | Some i -> Context.implements st.State.ctx o.Ircore.op_name i
           | None -> true)
        &&
        match attr_present with
        | Some a -> Ircore.has_attr o a
        | None -> true
      in
      let* roots = operand_handle st op 0 in
      let all = List.concat_map (Symbol.collect ~f:matches) roots in
      let* selected =
        match select with
        | "all" -> Ok all
        | "first" | "second" | "third" | "last" -> (
          let idx =
            match select with
            | "first" -> 0
            | "second" -> 1
            | "third" -> 2
            | _ -> List.length all - 1
          in
          match List.nth_opt all idx with
          | Some x -> Ok [ x ]
          | None ->
            Terror.silenceable "no %s matching op found under the target"
              select)
        | s -> Terror.definite "unknown match selector %S" s
      in
      set_result st op 0 selected;
      Ok ());
  (* ------------ param_constant ------------ *)
  Treg.register ~name:param_constant_op
    ~spec:
      {
        Treg.default_spec with
        summary = "constant transform parameter";
        arity = Some 0;
        pure = true;
      }
    (fun st op ->
      match Ircore.attr op "value" with
      | Some v ->
        State.set_params st (Ircore.result op) [ v ];
        Ok ()
      | None -> Terror.definite "param_constant without value");
  (* ------------ loop_split ------------ *)
  Treg.register ~name:loop_split_op
    ~spec:
      {
        Treg.default_spec with
        summary = "split a loop into a divisible main part and a remainder";
        consumes = Treg.consumes_first;
        pre = (fun _ -> scf_for_set);
        post = (fun _ -> loop_arith_set);
        ensures =
          (fun _ ->
            let ps = props [ Annot.flag "split" ] in
            [ (Annot.On_result 0, ps); (Annot.On_result 1, ps) ]);
      }
    (fun st op ->
      let* divisor = int_config st op ~attr_name:"div_by" ~operand_index:1 in
      let* divisor =
        match divisor with
        | Some d -> Ok d
        | None -> Terror.definite "loop_split requires div_by"
      in
      let rw = State.rewriter st in
      let* pairs =
        over_payload st op ~index:0 (fun loop ->
            as_silenceable (Passes.Loop_utils.split rw loop ~divisor))
      in
      set_result st op 0 (List.map fst pairs);
      set_result st op 1 (List.map snd pairs);
      Ok ());
  (* ------------ loop_tile ------------ *)
  let tile_is_noop op =
    (* tiling by 0 in every dimension is the identity; the handle is then
       forwarded, not consumed (and the simplifier can drop the op) *)
    match Ircore.attr op "tile_sizes" with
    | Some (Attr.Int_array sizes) ->
      sizes <> [] && List.for_all (fun s -> s = 0) sizes
    | _ -> false
  in
  Treg.register ~name:loop_tile_op
    ~spec:
      {
        Treg.default_spec with
        summary = "tile a perfect loop nest";
        consumes = (fun op -> if tile_is_noop op then [] else [ 0 ]);
        pre = (fun _ -> scf_for_set);
        post = (fun _ -> loop_arith_set);
        ensures =
          (fun op ->
            if tile_is_noop op then []
            else
              [
                (Annot.On_result 0, tiled_props op);
                (Annot.On_result 1, props [ Annot.flag "tiled" ]);
              ]);
      }
    (fun st op ->
      let* sizes =
        match Ircore.attr op "tile_sizes" with
        | Some (Attr.Int_array sizes) -> Ok sizes
        | Some _ -> Terror.definite "tile_sizes must be an integer array"
        | None ->
          (* take sizes from parameter operands *)
          let rec go i acc =
            if i >= Ircore.num_operands op then Ok (List.rev acc)
            else
              let* n = State.lookup_int_param st (Ircore.operand ~index:i op) in
              go (i + 1) (n :: acc)
          in
          go 1 []
      in
      if sizes = [] then Terror.definite "loop_tile requires tile sizes"
      else if tile_is_noop op then begin
        let* payload = operand_handle st op 0 in
        set_result st op 0 payload;
        set_result st op 1 payload;
        Ok ()
      end
      else
        let rw = State.rewriter st in
        let* pairs =
          over_payload st op ~index:0 (fun loop ->
              as_silenceable (Passes.Loop_utils.tile rw loop ~sizes))
        in
        (* result 0: outermost tile loop; result 1: outermost point loop *)
        set_result st op 0
          (List.concat_map
             (fun (tiles, _) -> match tiles with t :: _ -> [ t ] | [] -> [])
             pairs);
        set_result st op 1
          (List.concat_map
             (fun (_, points) -> match points with q :: _ -> [ q ] | [] -> [])
             pairs);
        Ok ());
  (* ------------ loop_unroll ------------ *)
  let unroll_is_noop op =
    match Ircore.attr op "factor" with
    | Some (Attr.Int (1, _)) -> true
    | _ -> false
  in
  Treg.register ~name:loop_unroll_op
    ~spec:
      {
        Treg.default_spec with
        summary = "unroll a loop fully or by a factor";
        consumes = (fun op -> if unroll_is_noop op then [] else [ 0 ]);
        pre = (fun _ -> scf_for_set);
        post =
          (fun _ -> [ Opset.exact "arith.constant"; Opset.exact "arith.addi" ]);
        requires =
          (* the scalar unroller does not understand vector loop bodies *)
          (fun _ -> [ (0, Irdl.Not (Irdl.Atom (Annot.Has "vectorized"))) ]);
      }
    (fun st op ->
      let full = Ircore.has_attr op "full" in
      let rw = State.rewriter st in
      if unroll_is_noop op then Ok () (* unrolling by 1 is the identity *)
      else if full then
        let* _ =
          over_payload st op ~index:0 (fun loop ->
              as_silenceable (Passes.Loop_utils.unroll_full rw loop))
        in
        Ok ()
      else
        let* factor = int_config st op ~attr_name:"factor" ~operand_index:1 in
        match factor with
        | None -> Terror.definite "loop_unroll requires {full} or a factor"
        | Some f ->
          let* _ =
            over_payload st op ~index:0 (fun loop ->
                as_silenceable (Passes.Loop_utils.unroll_by rw loop ~factor:f))
          in
          Ok ());
  (* ------------ loop_interchange ------------ *)
  Treg.register ~name:loop_interchange_op
    ~spec:
      {
        Treg.default_spec with
        summary = "interchange a loop with its single nested loop";
        arity = Some 1;
        consumes = Treg.consumes_first;
        pre = (fun _ -> scf_for_set);
        post = (fun _ -> scf_for_set);
        ensures =
          (fun _ -> [ (Annot.On_result 0, props [ Annot.flag "interchanged" ]) ]);
      }
    (fun st op ->
      let rw = State.rewriter st in
      let* swapped =
        over_payload st op ~index:0 (fun loop ->
            as_silenceable (Passes.Loop_utils.interchange rw loop))
      in
      set_result st op 0 swapped;
      Ok ());
  (* ------------ loop_hoist ------------ *)
  Treg.register ~name:loop_hoist_op
    ~spec:
      {
        Treg.default_spec with
        summary = "hoist loop-invariant ops out of the loop";
        pre = (fun _ -> scf_for_set);
        post = (fun _ -> []);
        ensures =
          (fun _ -> [ (Annot.On_result 0, props [ Annot.flag "hoisted" ]) ]);
      }
    (fun st op ->
      let rw = State.rewriter st in
      let* moved =
        over_payload st op ~index:0 (fun loop ->
            as_silenceable (Passes.Loop_utils.hoist_invariants st.State.ctx rw loop))
      in
      set_result st op 0 (List.concat moved);
      Ok ());
  (* ------------ loop_vectorize ------------ *)
  Treg.register ~name:loop_vectorize_op
    ~spec:
      {
        Treg.default_spec with
        summary = "vectorize an innermost loop";
        consumes = Treg.consumes_first;
        pre = (fun _ -> scf_for_set);
        post =
          (fun _ ->
            [
              Opset.exact "scf.for"; Opset.exact "vector.load";
              Opset.exact "vector.store"; Opset.exact "vector.splat";
            ]);
        requires =
          (* the strip-mined vectorizer expects a tiled point loop and
             refuses to vectorize twice *)
          (fun _ ->
            [
              ( 0,
                Irdl.All
                  [
                    Irdl.Atom (Annot.Has "tiled");
                    Irdl.Not (Irdl.Atom (Annot.Has "vectorized"));
                  ] );
            ]);
        ensures =
          (fun _ -> [ (Annot.On_result 0, props [ Annot.flag "vectorized" ]) ]);
      }
    (fun st op ->
      let* width = int_config st op ~attr_name:"width" ~operand_index:1 in
      let width = Option.value ~default:8 width in
      let rw = State.rewriter st in
      let* vectorized =
        over_payload st op ~index:0 (fun loop ->
            as_silenceable (Passes.Loop_utils.vectorize rw loop ~width))
      in
      set_result st op 0 vectorized;
      Ok ());
  (* ------------ loop_fuse ------------ *)
  Treg.register ~name:loop_fuse_op
    ~spec:
      {
        Treg.default_spec with
        summary = "fuse a sibling loop into the target (user-asserted legality)";
        arity = Some 2;
        consumes = (fun _ -> [ 0; 1 ]);
        pre = (fun _ -> scf_for_set);
        post = (fun _ -> scf_for_set);
      }
    (fun st op ->
      let* a_ops = operand_handle st op 0 in
      let* b_ops = operand_handle st op 1 in
      match (a_ops, b_ops) with
      | [ a ], [ b ] ->
        let rw = State.rewriter st in
        let* fused = as_silenceable (Passes.Loop_utils.fuse_siblings rw a b) in
        set_result st op 0 [ fused ];
        Ok ()
      | _ ->
        Terror.silenceable
          "loop_fuse requires singleton handles (got %d and %d payload ops)"
          (List.length a_ops) (List.length b_ops));
  (* ------------ loop_peel ------------ *)
  Treg.register ~name:loop_peel_op
    ~spec:
      {
        Treg.default_spec with
        summary = "peel leading iterations into a separate loop";
        arity = Some 1;
        consumes = Treg.consumes_first;
        pre = (fun _ -> scf_for_set);
        post = (fun _ -> loop_arith_set);
        ensures =
          (fun _ ->
            let ps = props [ Annot.flag "peeled" ] in
            [ (Annot.On_result 0, ps); (Annot.On_result 1, ps) ]);
      }
    (fun st op ->
      let* iterations = int_config st op ~attr_name:"iterations" ~operand_index:1 in
      let* iterations =
        match iterations with
        | Some n -> Ok n
        | None -> Terror.definite "loop_peel requires an iteration count"
      in
      let rw = State.rewriter st in
      let* pairs =
        over_payload st op ~index:0 (fun loop ->
            as_silenceable (Passes.Loop_utils.peel_front rw loop ~iterations))
      in
      set_result st op 0 (List.map fst pairs);
      set_result st op 1 (List.map snd pairs);
      Ok ());
  (* ------------ to_library ------------ *)
  Treg.register ~name:to_library_op
    ~spec:
      {
        Treg.default_spec with
        summary = "replace a matmul loop nest with a microkernel library call";
        arity = Some 1;
        consumes = Treg.consumes_first;
        pre = (fun _ -> scf_for_set);
        post =
          (fun _ -> [ Opset.exact "func.call"; Opset.exact "memref.subview" ]);
      }
    (fun st op ->
      let library =
        match Ircore.attr op "library" with
        | Some (Attr.String s) -> s
        | _ -> "libxsmm"
      in
      let rw = State.rewriter st in
      let* calls =
        over_payload st op ~index:0 (fun loop ->
            as_silenceable
              (Passes.Loop_utils.replace_with_library_call rw st.State.ctx loop
                 ~library))
      in
      if Ircore.num_results op > 0 then set_result st op 0 calls;
      Ok ());
  (* ------------ structured transforms on linalg ops ------------ *)
  let linalg_matmul_set = [ Opset.exact "linalg.matmul" ] in
  Treg.register ~name:structured_tile_op
    ~spec:
      {
        Treg.default_spec with
        summary = "tile a linalg.matmul into loops over subviews";
        consumes = Treg.consumes_first;
        pre = (fun _ -> linalg_matmul_set);
        post =
          (fun _ ->
            [
              Opset.exact "scf.for"; Opset.exact "scf.yield";
              Opset.exact "memref.subview"; Opset.exact "linalg.matmul";
              Opset.exact "arith.constant";
            ]);
        ensures =
          (fun op ->
            [
              (Annot.On_result 0, props [ Annot.flag "tiled" ]);
              (Annot.On_result 1, tiled_props op);
            ]);
      }
    (fun st op ->
      let* sizes =
        match Ircore.attr op "tile_sizes" with
        | Some (Attr.Int_array sizes) -> Ok sizes
        | _ -> Terror.definite "structured_tile requires tile_sizes"
      in
      let rw = State.rewriter st in
      let* pairs =
        over_payload st op ~index:0 (fun target ->
            as_silenceable (Passes.Structured.tile_matmul rw target ~sizes))
      in
      set_result st op 0 (List.concat_map fst pairs);
      set_result st op 1 (List.map snd pairs);
      Ok ());
  Treg.register ~name:structured_to_library_op
    ~spec:
      {
        Treg.default_spec with
        summary = "replace a linalg.matmul with a microkernel library call";
        arity = Some 1;
        consumes = Treg.consumes_first;
        pre = (fun _ -> linalg_matmul_set);
        post = (fun _ -> [ Opset.exact "func.call" ]);
      }
    (fun st op ->
      let library =
        match Ircore.attr op "library" with
        | Some (Attr.String s) -> s
        | _ -> "libxsmm"
      in
      let rw = State.rewriter st in
      let* calls =
        over_payload st op ~index:0 (fun target ->
            as_silenceable
              (Passes.Structured.matmul_to_library rw target ~library))
      in
      if Ircore.num_results op > 0 then set_result st op 0 calls;
      Ok ());
  Treg.register ~name:structured_to_loops_op
    ~spec:
      {
        Treg.default_spec with
        summary = "lower a linalg.matmul to an scf loop nest";
        arity = Some 1;
        consumes = Treg.consumes_first;
        pre = (fun _ -> linalg_matmul_set);
        post =
          (fun _ ->
            [
              Opset.exact "scf.for"; Opset.exact "scf.yield";
              Opset.exact "memref.load"; Opset.exact "memref.store";
              Opset.exact "arith.mulf"; Opset.exact "arith.addf";
              Opset.exact "arith.constant";
            ]);
      }
    (fun st op ->
      let rw = State.rewriter st in
      let* _ =
        over_payload st op ~index:0 (fun target ->
            as_silenceable (Passes.Structured.matmul_to_loops rw target))
      in
      Ok ());
  (* ------------ apply_registered_pass ------------ *)
  Treg.register ~name:apply_registered_pass_op
    ~spec:
      {
        Treg.default_spec with
        summary = "run a pass from the pass registry on the target payload";
        arity = Some 1;
        pre =
          (fun op ->
            match Ircore.attr op "pass_name" with
            | Some (Attr.String name) -> (
              match Passes.Pass.lookup name with
              | Some p -> p.Passes.Pass.pre
              | None -> [])
            | _ -> []);
        post =
          (fun op ->
            match Ircore.attr op "pass_name" with
            | Some (Attr.String name) -> (
              match Passes.Pass.lookup name with
              | Some p -> p.Passes.Pass.post
              | None -> [])
            | _ -> []);
        ensures =
          (fun op ->
            match Ircore.attr op "pass_name" with
            | Some (Attr.String name) when Ircore.num_results op > 0 ->
              [ (Annot.On_result 0, props [ Annot.flag ("pass." ^ name) ]) ]
            | _ -> []);
      }
    (fun st op ->
      let* pass_name =
        match Ircore.attr op "pass_name" with
        | Some (Attr.String s) -> Ok s
        | _ -> Terror.definite "apply_registered_pass requires pass_name"
      in
      match Passes.Pass.lookup pass_name with
      | None -> Terror.definite "no registered pass named %S" pass_name
      | Some pass ->
        let* targets = operand_handle st op 0 in
        (* an earlier target's pass run may erase a later target (e.g. a
           loop nested in one the pass just simplified away); such corpses
           are detached from the payload root and must not anchor a pass *)
        let live target =
          Ircore.is_ancestor ~ancestor:st.State.payload_root target
        in
        let rec go = function
          | [] -> Ok ()
          | target :: rest when not (live target) -> go rest
          | target :: rest -> (
            match pass.Passes.Pass.run st.State.ctx target with
            | Ok () -> go rest
            | Error d ->
              Terror.silenceable_diag
                (Diag.add_note d
                   (Diag.note "in registered pass '%s'" pass_name)))
        in
        let* () = go targets in
        State.prune st;
        if Ircore.num_results op > 0 then set_result st op 0 targets;
        Ok ());
  (* ------------ apply_patterns ------------ *)
  Treg.register ~name:apply_patterns_op
    ~spec:
      {
        Treg.default_spec with
        summary = "greedily apply the listed rewrite patterns to the target";
        arity = Some 1;
      }
    (fun st op ->
      let patterns, missing = collect_patterns op in
      if missing <> [] then
        Terror.definite "unknown patterns: %s" (String.concat ", " missing)
      else
        (* freeze once; the root index is shared across every target *)
        apply_frozen_patterns st op (Frozen_patterns.freeze patterns));
  (* ------------ print ------------ *)
  Treg.register ~name:print_op
    ~spec:
      {
        Treg.default_spec with
        summary = "print the payload ops of a handle";
        pure = true;
      }
    (fun st op ->
      let tag =
        match Ircore.attr op "name" with Some (Attr.String s) -> s | _ -> ""
      in
      if Ircore.num_operands op = 0 then begin
        Fmt.epr "[transform.print %s]@.%a@." tag Printer.pp_op st.State.payload_root;
        Ok ()
      end
      else
        let* payload = operand_handle st op 0 in
        List.iter
          (fun p -> Fmt.epr "[transform.print %s]@.%a@." tag Printer.pp_op p)
          payload;
        Ok ());
  (* ------------ get_parent ------------ *)
  Treg.register ~name:get_parent_op
    ~spec:
      {
        Treg.default_spec with
        summary = "navigate to the closest enclosing op (optionally by name)";
        arity = Some 1;
        pure = true;
      }
    (fun st op ->
      let wanted =
        match Ircore.attr op "op_name" with
        | Some (Attr.String s) -> Some s
        | _ -> None
      in
      let* payload = operand_handle st op 0 in
      let parents =
        List.filter_map
          (fun child ->
            let rec up o =
              match Ircore.parent_op o with
              | None -> None
              | Some par -> (
                match wanted with
                | None -> Some par
                | Some w -> if par.Ircore.op_name = w then Some par else up par)
            in
            up child)
          payload
      in
      (* dedup by identity *)
      let parents =
        List.fold_left
          (fun acc x -> if List.memq x acc then acc else acc @ [ x ])
          [] parents
      in
      set_result st op 0 parents;
      Ok ());
  (* ------------ merge_handles ------------ *)
  Treg.register ~name:merge_handles_op
    ~spec:
      { Treg.default_spec with summary = "concatenate handles"; pure = true }
    (fun st op ->
      let rec go i acc =
        if i >= Ircore.num_operands op then Ok (List.rev acc)
        else
          let* ops = operand_handle st op i in
          go (i + 1) (List.rev_append ops acc)
      in
      let* all = go 0 [] in
      set_result st op 0 all;
      Ok ());
  (* ------------ split_handle ------------ *)
  Treg.register ~name:split_handle_op
    ~spec:
      {
        Treg.default_spec with
        summary = "split an N-op handle into N single-op handles";
        arity = Some 1;
        pure = true;
      }
    (fun st op ->
      let* payload = operand_handle st op 0 in
      let n = Ircore.num_results op in
      if List.length payload <> n then
        Terror.silenceable
          "split_handle: handle has %d payload ops but %d results"
          (List.length payload) n
      else begin
        List.iteri (fun i p -> set_result st op i [ p ]) payload;
        Ok ()
      end);
  (* ------------ annotate ------------ *)
  Treg.register ~name:annotate_op
    ~spec:
      {
        Treg.default_spec with
        summary = "attach a unit or given attribute to the payload ops";
        arity = Some 1;
        ensures =
          (fun op ->
            match Ircore.attr op "name" with
            | Some (Attr.String name) ->
              (* refines the operand handle in place: annotate has no
                 results, so this is what makes joins and fixpoints
                 observable to the static checker *)
              [ (Annot.On_operand 0, props [ Annot.flag ("annot." ^ name) ]) ]
            | _ -> []);
      }
    (fun st op ->
      let* name =
        match Ircore.attr op "name" with
        | Some (Attr.String s) -> Ok s
        | _ -> Terror.definite "annotate requires a name"
      in
      let value = Option.value ~default:Attr.Unit (Ircore.attr op "value") in
      let* payload = operand_handle st op 0 in
      List.iter (fun p -> Ircore.set_attr p name value) payload;
      Ok ())

let registered = ref false

(** Register everything (context-independent parts are process-global). *)
let register ctx =
  register_context ctx;
  if not !registered then begin
    registered := true;
    register_impls ()
  end
