(** Transform-interpreter errors, mirroring the paper's two severities:

    - a {e silenceable} error signals a failed pre-condition; the payload has
      not been modified irreversibly and an enclosing construct (e.g.
      [transform.alternatives]) may suppress it;
    - a {e definite} error aborts interpretation immediately.

    Both carry a structured {!Ir.Diag.t} payload (severity, source location,
    attached notes) rather than a bare string, so interpreter failures flow
    through the same observability channel as pass and verifier failures. *)

open Ir

type t =
  | Silenceable of Diag.t
  | Definite of Diag.t

let silenceable ?loc fmt =
  Fmt.kstr (fun m -> Stdlib.Error (Silenceable (Diag.error ?loc "%s" m))) fmt

let definite ?loc fmt =
  Fmt.kstr (fun m -> Stdlib.Error (Definite (Diag.error ?loc "%s" m))) fmt

let silenceable_diag d = Stdlib.Error (Silenceable d)
let definite_diag d = Stdlib.Error (Definite d)

let diag = function Silenceable d | Definite d -> d
let message e = Diag.message (diag e)
let is_silenceable = function Silenceable _ -> true | Definite _ -> false

(** Rebuild the error with its diagnostic payload transformed, preserving
    the silenceable/definite distinction. *)
let map_diag f = function
  | Silenceable d -> Silenceable (f d)
  | Definite d -> Definite (f d)

let pp fmt = function
  | Silenceable d -> Fmt.pf fmt "silenceable error: %a" Diag.pp d
  | Definite d -> Fmt.pf fmt "definite error: %a" Diag.pp d

let to_string e = Fmt.str "%a" pp e
