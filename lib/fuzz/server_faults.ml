(** Server fault-injection campaign: {!Fault}'s sabotage discipline turned
    against a live [otd-server] daemon.

    The campaign boots a real engine behind a real Unix-domain socket in
    this process, installs a transform-application interceptor that
    sabotages and then raises inside any job whose payload root carries the
    [fuzz.server_crash] marker, and drives the daemon from several client
    domains with a deterministic mix of:

    - valid compile jobs over a generated corpus (repeats exercise the
      result cache and single-flight deduplication);
    - a fixed {e canary} job, repeated throughout — every canary response
      must be byte-identical regardless of interleaving (the
      zero-cross-request-contamination invariant, checked on the wire);
    - budget busters: a constant-fold chain under [max_rewrites = 1], once
      with a retry allowance (must eventually succeed at an escalated
      tier) and once without (must fail with [class = budget]);
    - crash-poisoned jobs: marker payloads whose transform application
      raises after mutating the payload — each must come back as a
      contained [class = crash] error with an on-disk reproducer;
    - malformed frames: truncated prefixes and bodies, oversized and
      negative length prefixes, invalid UTF-8, broken JSON and schema
      violations — each must yield a structured [invalid] response or a
      clean close, and the UTF-8/JSON/schema cases must leave the
      connection serving (proved with a follow-up ping on the same
      connection).

    Throughout: the daemon must never die, never shed (the queue is sized
    for the drive), and the engine's contamination counter must not move.
    Run via [otd-server --self-test] or [otd-fuzz --server-faults]. *)

open Ir

type stats = {
  sf_jobs : int;  (** frames sent, well-formed and malformed *)
  sf_poisoned : int;  (** busters + crash jobs + malformed frames *)
  sf_ok : int;
  sf_contained : int;  (** structured error responses *)
  sf_invalid : int;  (** structured protocol-error responses *)
  sf_closed : int;  (** clean closes after desynchronizing frames *)
  sf_canaries : int;
  sf_cache_hits : int;
  sf_reproducers : int;
  sf_violations : string list;
  sf_seconds : float;
}

(* ------------------------------------------------------------------ *)
(* Fixed corpus                                                        *)
(* ------------------------------------------------------------------ *)

let canary_payload =
  {|"builtin.module"() ({
  "func.func"() ({
  ^bb0(%a: i64):
    %c1 = "arith.constant"() {value = 1 : i64} : () -> i64
    %s = "arith.addi"(%a, %c1) : (i64, i64) -> i64
    "func.return"(%s) : (i64) -> ()
  }) {sym_name = "canary", function_type = (i64) -> i64} : () -> ()
}) : () -> ()|}

(* a fold chain: canonicalizing it needs well over [max_rewrites = 1]
   budget charges (folds plus DCE of the dead chain), so the first retry
   tiers exhaust and an escalated one succeeds. Greedy exhaustion surfaces
   at the next pass boundary's [Budget.checkpoint], so the buster pipeline
   must have a pass after canonicalize. *)
let buster_pipeline = "canonicalize,cse"

let buster_payload =
  let b = Buffer.create 512 in
  Buffer.add_string b
    "\"builtin.module\"() ({\n  \"func.func\"() ({\n  ^bb0:\n";
  Buffer.add_string b
    "    %v0 = \"arith.constant\"() {value = 1 : i64} : () -> i64\n";
  for i = 1 to 4 do
    Buffer.add_string b
      (Fmt.str
         "    %%v%d = \"arith.addi\"(%%v%d, %%v%d) : (i64, i64) -> i64\n" i
         (i - 1) (i - 1))
  done;
  Buffer.add_string b "    \"func.return\"(%v4) : (i64) -> ()\n";
  Buffer.add_string b
    "  }) {sym_name = \"buster\", function_type = () -> i64} : () -> ()\n\
     }) : () -> ()";
  Buffer.contents b

(* distinct per index so every crash is a fresh contained failure with its
   own reproducer, not a cache hit on the first one *)
let crash_payload i =
  Fmt.str
    {|"builtin.module"() ({
  "func.func"() ({
  ^bb0(%%a: i64):
    %%c = "arith.constant"() {value = %d : i64} : () -> i64
    %%s = "arith.addi"(%%a, %%c) : (i64, i64) -> i64
    "func.return"(%%s) : (i64) -> ()
  }) {sym_name = "poison_%d", function_type = (i64) -> i64} : () -> ()
}) {fuzz.server_crash = 1 : i64} : () -> ()|}
    i i

let crash_script =
  {|"builtin.module"() ({
  "transform.named_sequence"() ({
  ^bb0(%root: !transform.any_op):
    "transform.annotate"(%root) {name = "poisoned"} : (!transform.any_op) -> ()
    "transform.yield"() : () -> ()
  }) {sym_name = "__transform_main"} : () -> ()
}) : () -> ()|}

let marker = "fuzz.server_crash"

(* sabotage-then-raise, exactly the failure mode [Fault] injects into
   transforms — but only for marked payloads, so the valid share of the
   drive is untouched and the campaign stays deterministic *)
let interceptor def st op =
  let root = st.Transform.State.payload_root in
  if Ircore.has_attr root marker then begin
    Ircore.set_attr root "fuzz.sabotaged" (Attr.int 1);
    failwith "injected server fault (post-mutation raise)"
  end
  else def.Transform.Treg.t_apply st op

(* ------------------------------------------------------------------ *)
(* Request builders                                                    *)
(* ------------------------------------------------------------------ *)

let compile_req ?id ?script ?pipeline ?max_rewrites ?attempts payload =
  Json.Obj
    (List.concat
       [
         (match id with Some id -> [ ("id", Json.String id) ] | None -> []);
         [ ("kind", Json.String "compile"); ("payload", Json.String payload) ];
         (match script with
         | Some s -> [ ("script", Json.String s) ]
         | None -> []);
         (match pipeline with
         | Some p -> [ ("pipeline", Json.String p) ]
         | None -> []);
         (match max_rewrites with
         | Some n ->
           [ ("budget", Json.Obj [ ("max_rewrites", Json.Int n) ]) ]
         | None -> []);
         (match attempts with
         | Some n -> [ ("retry", Json.Obj [ ("attempts", Json.Int n) ]) ]
         | None -> []);
       ])

let ping_req = Json.Obj [ ("kind", Json.String "ping") ]

(* ------------------------------------------------------------------ *)
(* Raw client plumbing (the campaign asserts on response bytes)        *)
(* ------------------------------------------------------------------ *)

type reply = Body of string | Closed of string

let send_json fd j = Server.Protocol.write_frame fd (Json.to_line j)

let recv_raw fd : reply =
  match Server.Protocol.read_frame fd with
  | Ok body -> Body body
  | Error fe -> Closed (Server.Protocol.frame_error_message fe)
  | exception Unix.Unix_error (e, _, _) -> Closed (Unix.error_message e)

let rpc_raw fd j : reply =
  match send_json fd j with
  | () -> recv_raw fd
  | exception Unix.Unix_error (e, _, _) -> Closed (Unix.error_message e)

let with_conn path f =
  let fd = Server.Transport.connect_retry path in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () -> f fd)

(* ------------------------------------------------------------------ *)
(* Case mix                                                            *)
(* ------------------------------------------------------------------ *)

type observation = {
  ob_case : int;
  ob_kind : string;
  ob_reply : reply;
  ob_extra : reply option;  (** recovery probe after in-band faults *)
}

let corpus_size = 12

let malformed_variants = 7

(* the deterministic mix: indices mod 10 — half valid, a canary slot, two
   buster slots, a crash slot, a malformed-frame slot (40% poisoned) *)
let kind_of i =
  match i mod 10 with
  | 0 | 1 | 2 | 3 | 4 -> `Valid
  | 5 -> `Canary
  | 6 -> `Buster_retry
  | 7 -> `Buster_oneshot
  | 8 -> `Crash
  | _ -> `Malformed ((i / 10) mod malformed_variants)

let is_poisoned i =
  match kind_of i with
  | `Valid | `Canary -> false
  | `Buster_retry | `Buster_oneshot | `Crash | `Malformed _ -> true

let run_case ~path ~corpus i : observation =
  let obs kind reply extra =
    { ob_case = i; ob_kind = kind; ob_reply = reply; ob_extra = extra }
  in
  match kind_of i with
  | `Valid ->
    let payload = corpus.((i / 10) mod Array.length corpus) in
    with_conn path (fun fd ->
        obs "valid"
          (rpc_raw fd
             (compile_req ~id:(Fmt.str "job-%d" i) ~pipeline:"canonicalize,cse"
                payload))
          None)
  | `Canary ->
    (* no id: canary responses must be byte-identical on the wire *)
    with_conn path (fun fd ->
        obs "canary"
          (rpc_raw fd (compile_req ~pipeline:"canonicalize" canary_payload))
          None)
  | `Buster_retry ->
    with_conn path (fun fd ->
        obs "buster-retry"
          (rpc_raw fd
             (compile_req ~pipeline:buster_pipeline ~max_rewrites:1
                ~attempts:4 buster_payload))
          None)
  | `Buster_oneshot ->
    with_conn path (fun fd ->
        obs "buster-oneshot"
          (rpc_raw fd
             (compile_req ~pipeline:buster_pipeline ~max_rewrites:1
                ~attempts:1 buster_payload))
          None)
  | `Crash ->
    with_conn path (fun fd ->
        obs "crash"
          (rpc_raw fd
             (compile_req ~id:(Fmt.str "poison-%d" i) ~script:crash_script
                (crash_payload i)))
          None)
  | `Malformed v -> (
    match v with
    | 0 ->
      (* truncated length prefix, then hang up *)
      with_conn path (fun fd ->
          Server.Transport.send_raw fd "\x00\x00";
          Unix.shutdown fd Unix.SHUTDOWN_SEND;
          obs "malformed-truncated-prefix" (recv_raw fd) None)
    | 1 ->
      (* prefix promises 64 bytes, body delivers 5 *)
      with_conn path (fun fd ->
          Server.Transport.send_raw fd "\x00\x00\x00\x40hello";
          Unix.shutdown fd Unix.SHUTDOWN_SEND;
          obs "malformed-truncated-body" (recv_raw fd) None)
    | 2 ->
      (* oversized declared length *)
      with_conn path (fun fd ->
          Server.Transport.send_raw fd "\x7f\xff\xff\xff";
          obs "malformed-oversized" (recv_raw fd) None)
    | 3 ->
      (* negative length prefix *)
      with_conn path (fun fd ->
          Server.Transport.send_raw fd "\xff\xff\xff\xff";
          obs "malformed-negative" (recv_raw fd) None)
    | 4 ->
      (* well-framed garbage bytes: invalid UTF-8; the connection must
         keep serving afterwards *)
      with_conn path (fun fd ->
          let body = "\xc0\x80\xfe{}" in
          Server.Transport.send_raw fd
            (Fmt.str "\x00\x00\x00%c%s"
               (Char.chr (String.length body))
               body);
          let first = recv_raw fd in
          obs "malformed-utf8" first (Some (rpc_raw fd ping_req)))
    | 5 ->
      (* valid UTF-8, broken JSON; connection must keep serving *)
      with_conn path (fun fd ->
          let body = "{\"kind\": " in
          Server.Transport.send_raw fd
            (Fmt.str "\x00\x00\x00%c%s"
               (Char.chr (String.length body))
               body);
          let first = recv_raw fd in
          obs "malformed-json" first (Some (rpc_raw fd ping_req)))
    | _ ->
      (* schema violation; connection must keep serving *)
      with_conn path (fun fd ->
          let first =
            rpc_raw fd (Json.Obj [ ("kind", Json.String "frobnicate") ])
          in
          obs "malformed-schema" first (Some (rpc_raw fd ping_req))))

(* ------------------------------------------------------------------ *)
(* Assertions                                                          *)
(* ------------------------------------------------------------------ *)

let member_str key j = Option.bind (Json.member key j) Json.to_string_opt

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let status_of body =
  match Json.parse body with
  | Error e -> Error (Fmt.str "unparseable response: %s" e)
  | Ok j -> (
    match member_str "status" j with
    | Some s -> Ok (s, j)
    | None -> Error "response without status")

let error_class j =
  Option.bind (Json.member "error" j) (member_str "class")

let reproducer_of j =
  Option.bind (Json.member "error" j) (member_str "reproducer")

let check_observation violations (ob : observation) =
  let fail fmt =
    Fmt.kstr (fun m -> violations := Fmt.str "case %d [%s]: %s" ob.ob_case ob.ob_kind m :: !violations) fmt
  in
  let with_status f =
    match ob.ob_reply with
    | Closed why -> fail "connection closed instead of a response (%s)" why
    | Body body -> (
      match status_of body with
      | Error e -> fail "%s" e
      | Ok (status, j) -> f status j)
  in
  (match ob.ob_kind with
  | "valid" | "canary" ->
    with_status (fun status j ->
        if status <> "ok" then
          fail "expected ok, got %s (%s)" status
            (Option.value (Option.bind (Json.member "error" j) (member_str "message")) ~default:"?"))
  | "buster-retry" ->
    with_status (fun status j ->
        if status <> "ok" then fail "escalated retries should succeed, got %s" status
        else
          match Option.bind (Json.member "attempts" j) Json.to_int_opt with
          | Some a when a >= 2 -> ()
          | Some a -> fail "succeeded without escalation (attempts = %d)" a
          | None -> fail "ok response without attempts")
  | "buster-oneshot" ->
    with_status (fun status j ->
        if status <> "error" then fail "expected budget error, got %s" status
        else if error_class j <> Some "budget" then
          fail "expected class budget, got %s"
            (Option.value (error_class j) ~default:"<none>"))
  | "crash" ->
    (* the raise is contained by whichever barrier is innermost: the
       transform interpreter's (class transform) or the cell's (class
       crash) — either way it must be structured, carry the injected
       message, and leave a replayable reproducer on disk *)
    with_status (fun status j ->
        if status <> "error" then fail "expected contained crash, got %s" status
        else if
          not
            (List.mem (error_class j) [ Some "crash"; Some "transform" ])
        then
          fail "expected class crash or transform, got %s"
            (Option.value (error_class j) ~default:"<none>")
        else begin
          (match
             Option.bind (Json.member "error" j) (member_str "message")
           with
          | Some m when contains ~sub:"injected server fault" m -> ()
          | Some m -> fail "containment lost the fault message (%s)" m
          | None -> fail "error without message");
          match reproducer_of j with
          | None -> fail "contained crash without a reproducer"
          | Some p when not (Sys.file_exists p) ->
            fail "reproducer %s does not exist" p
          | Some _ -> ()
        end)
  | "malformed-truncated-prefix" | "malformed-truncated-body" -> (
    (* a desynchronized stream may yield a best-effort invalid response or
       a clean close — both are acceptable; a daemon death is not, which
       the post-campaign liveness probe catches *)
    match ob.ob_reply with
    | Closed _ -> ()
    | Body body -> (
      match status_of body with
      | Ok ("invalid", _) -> ()
      | Ok (s, _) -> fail "expected invalid or close, got %s" s
      | Error e -> fail "%s" e))
  | "malformed-oversized" | "malformed-negative" ->
    with_status (fun status _ ->
        if status <> "invalid" then fail "expected invalid, got %s" status)
  | "malformed-utf8" | "malformed-json" | "malformed-schema" -> (
    with_status (fun status _ ->
        if status <> "invalid" then fail "expected invalid, got %s" status);
    match ob.ob_extra with
    | Some (Body body) -> (
      match status_of body with
      | Ok ("ok", _) -> ()
      | Ok (s, _) -> fail "recovery ping answered %s" s
      | Error e -> fail "recovery ping: %s" e)
    | Some (Closed why) -> fail "connection dead after in-band fault (%s)" why
    | None -> fail "missing recovery probe")
  | k -> fail "unknown observation kind %s" k);
  ()

(* ------------------------------------------------------------------ *)
(* The campaign                                                        *)
(* ------------------------------------------------------------------ *)

let counter name =
  match Stats.find_counter ~component:"server" name with
  | Some c -> Stats.value c
  | None -> 0

let temp_dir prefix =
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Fmt.str "%s-%d" prefix (Unix.getpid ()))
  in
  (try Sys.mkdir d 0o700 with Sys_error _ -> ());
  d

(** Run the campaign: boot a daemon in-process, drive it with [cases]
    frames from [clients] client domains, tear it down, return the
    tally. [journal] (JSONL) receives every response object the server
    sends — CI validates it with [otd-json --jsonl --schema=server]. *)
let run ?(cases = 300) ?(clients = 4) ?journal ?socket ?reproducer_dir () :
    stats =
  let t0 = Unix.gettimeofday () in
  let reproducer_dir =
    match reproducer_dir with
    | Some d ->
      Server.Cell.mkdir_p d;
      d
    | None -> temp_dir "otd-server-faults"
  in
  let path =
    match socket with
    | Some p -> p
    | None ->
      Filename.concat (temp_dir "otd-server-faults") "self-test.sock"
  in
  let hits0 = counter "cache_hits"
  and sheds0 = counter "sheds"
  and contamination0 = counter "contamination"
  and reproducers0 = counter "reproducers" in
  let policy =
    {
      Server.Engine.default_policy with
      Server.Engine.p_jobs = 3;
      p_queue_depth = cases + clients;  (* the drive must never shed *)
      p_reproducer_dir = Some reproducer_dir;
      p_backoff_ms = 0;
    }
  in
  let engine = Server.Engine.create ~policy () in
  let journal_oc = Option.map open_out journal in
  let jmu = Mutex.create () in
  let on_response j =
    match journal_oc with
    | None -> ()
    | Some oc ->
      Mutex.lock jmu;
      output_string oc (Json.to_line j);
      output_char oc '\n';
      Mutex.unlock jmu
  in
  let listener =
    Server.Transport.serve_unix ~on_response engine ~path ~conns:clients
  in
  let corpus =
    Array.init corpus_size (fun k ->
        Printer.op_to_string (Driver.module_for ~seed:97 ~case:k ()))
  in
  let violations = ref [] in
  let observations =
    Transform.Treg.with_interceptor interceptor (fun () ->
        let worker c () =
          let acc = ref [] in
          let i = ref c in
          while !i < cases do
            (match run_case ~path ~corpus !i with
            | ob -> acc := ob :: !acc
            | exception ex ->
              acc :=
                {
                  ob_case = !i;
                  ob_kind = "client-error";
                  ob_reply = Closed (Printexc.to_string ex);
                  ob_extra = None;
                }
                :: !acc);
            i := !i + clients
          done;
          List.rev !acc
        in
        let domains =
          List.init clients (fun c -> Domain.spawn (worker c))
        in
        List.concat_map Domain.join domains)
  in
  (* liveness probe: the daemon must still answer after the whole drive *)
  (match with_conn path (fun fd -> rpc_raw fd ping_req) with
  | Body body -> (
    match status_of body with
    | Ok ("ok", _) -> ()
    | Ok (s, _) ->
      violations := Fmt.str "liveness probe answered %s" s :: !violations
    | Error e -> violations := Fmt.str "liveness probe: %s" e :: !violations)
  | Closed why ->
    violations := Fmt.str "daemon dead after campaign (%s)" why :: !violations
  | exception ex ->
    violations :=
      Fmt.str "daemon unreachable after campaign (%s)" (Printexc.to_string ex)
      :: !violations);
  List.iter
    (fun ob ->
      if ob.ob_kind = "client-error" then
        violations :=
          Fmt.str "case %d: client error %s" ob.ob_case
            (match ob.ob_reply with Closed w -> w | Body b -> b)
          :: !violations
      else check_observation violations ob)
    observations;
  (* the contamination invariant, on the wire: every canary response is
     byte-identical no matter which worker/connection served it *)
  let canaries =
    List.filter_map
      (fun ob ->
        match (ob.ob_kind, ob.ob_reply) with
        | "canary", Body b -> Some b
        | _ -> None)
      observations
  in
  (match canaries with
  | [] -> violations := "no canary responses observed" :: !violations
  | first :: rest ->
    List.iteri
      (fun k b ->
        if not (String.equal b first) then
          violations :=
            Fmt.str "canary response %d differs from the first (%S vs %S)"
              (k + 1) b first
            :: !violations)
      rest);
  let sheds = counter "sheds" - sheds0 in
  if sheds > 0 then
    violations :=
      Fmt.str "%d jobs shed despite a drive-sized queue" sheds :: !violations;
  let contamination = counter "contamination" - contamination0 in
  if contamination > 0 then
    violations :=
      Fmt.str "sentinel drifted on %d jobs" contamination :: !violations;
  (* tear down: stop acceptors (joins them — a dead acceptor domain
     re-raises here), drain the engine, stop the workers *)
  (try
     Server.Transport.stop_listener listener;
     Server.Engine.close engine
   with ex ->
     violations :=
       Fmt.str "daemon teardown raised: %s" (Printexc.to_string ex)
       :: !violations);
  Option.iter close_out journal_oc;
  let tally pred =
    List.length (List.filter pred observations)
  in
  let has_status s ob =
    match ob.ob_reply with
    | Body b -> (
      match status_of b with Ok (st, _) -> st = s | Error _ -> false)
    | Closed _ -> false
  in
  {
    sf_jobs = List.length observations;
    sf_poisoned = tally (fun ob -> is_poisoned ob.ob_case);
    sf_ok = tally (has_status "ok");
    sf_contained = tally (has_status "error");
    sf_invalid = tally (has_status "invalid");
    sf_closed =
      tally (fun ob ->
          match ob.ob_reply with Closed _ -> true | Body _ -> false);
    sf_canaries = List.length canaries;
    sf_cache_hits = counter "cache_hits" - hits0;
    sf_reproducers = counter "reproducers" - reproducers0;
    sf_violations = List.rev !violations;
    sf_seconds = Unix.gettimeofday () -. t0;
  }
