(** Action-counter bisection of differential failures.

    A differential fuzz failure says "this pipeline miscompiles this
    module" — useful, but the pipeline ran hundreds of transformation
    units. Debug counters ({!Ir.Action.counters_handler}) make the unit
    stream addressable: [TAG:0,k] executes only the first [k] actions of a
    tag and vetoes the rest, so whether the failure still reproduces is a
    monotone-ish predicate over [k] that binary search can exploit, exactly
    like [llvm]'s [-debug-counter] bisection idiom.

    For each tag, finest first, we ask: does the failure survive with the
    tag fully disabled? If yes the tag is not culpable (the bug lives
    elsewhere) and we move on. If no, some prefix of its occurrences is
    needed, and the smallest failing prefix [k] names the culprit: the
    action at per-tag index [k - 1]. Because vetoing an early action can
    change which later actions even occur, the index is the canonical
    "first occurrence whose inclusion flips the outcome" — the standard
    debug-counter reading, and a stable replay target since the veto
    schedule forces sequential execution. *)

open Ir

type culprit = {
  c_tag : string;  (** action tag the failure bisects to *)
  c_index : int;  (** per-tag index of the culprit occurrence *)
  c_total : int;  (** occurrences of that tag in the unrestricted run *)
}

let pp_culprit fmt c =
  Fmt.pf fmt "%s index %d of %d" c.c_tag c.c_index c.c_total

(** Tags worth bisecting over, finest first: a pattern application names a
    single rewrite, a pass only a whole phase. *)
let default_tags = [ "pattern"; "fold"; "transform"; "pass" ]

(** [localize ~fails ~total] drives the bisection. [fails counters] must
    re-run the failing check under an action context with [counters]
    installed and report whether the failure still reproduces; [total tag]
    counts the tag's occurrences in an unrestricted run. Returns the first
    culpable tag's culprit, or [None] when the failure survives with every
    tag disabled (it is not caused by any counted transformation unit). *)
let localize ?(tags = default_tags) ~fails ~total () =
  let disabled tag = { Action.cs_tag = tag; cs_skip = 0; cs_count = 0 } in
  let prefix tag k = { Action.cs_tag = tag; cs_skip = 0; cs_count = k } in
  let rec try_tags = function
    | [] -> None
    | tag :: rest ->
      let n = total tag in
      if n = 0 || fails [ disabled tag ] then try_tags rest
      else begin
        (* invariant: prefix n fails (it is the unrestricted run), prefix 0
           does not (just checked); find the smallest failing prefix *)
        let lo = ref 1 and hi = ref n in
        while !lo < !hi do
          let mid = !lo + ((!hi - !lo) / 2) in
          if fails [ prefix tag mid ] then hi := mid else lo := mid + 1
        done;
        Some { c_tag = tag; c_index = !lo - 1; c_total = n }
      end
  in
  try_tags tags

(** Bisect a concrete oracle failure: [recheck] is
    {!Oracle.recheck}-shaped — it must rebuild the failing configuration
    from scratch (fresh clone of the minimized module) on every call, since
    each probe reruns the whole pipeline. *)
let of_failure ?tags ~(recheck : unit -> bool) () =
  let fails counters =
    Action.with_context (Action.create ~counters ()) recheck
  in
  let total tag =
    let t = Action.create () in
    ignore (Action.with_context t recheck : bool);
    Action.tag_total t tag
  in
  localize ?tags ~fails ~total ()
