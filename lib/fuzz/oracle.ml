(** Property oracles run over each generated module.

    Each oracle checks one invariant the compiler must preserve on every
    well-typed module:

    - {b roundtrip}: print → parse → print reaches a fixpoint (the textual
      form is stable and the parser accepts everything the printer emits);
    - {b verify}: the verifier accepts generator output (which is
      well-typed by construction);
    - {b clone}: [Ircore.clone_op] produces a structurally identical,
      independently verifiable module;
    - {b differential}: executing [main] before and after a registered pass
      pipeline yields the same observable results — any miscompiling pass
      is caught by construction (the paper's soundness claim, Section 3,
      applied to our own passes). *)

open Ir

type failure = {
  f_oracle : string;  (** which invariant broke *)
  f_pipeline : string option;  (** pipeline under test, for differential *)
  f_detail : string;
  f_module : string;  (** printed module that witnesses the failure *)
}

let fail ?pipeline ~oracle ~module_text fmt =
  Fmt.kstr
    (fun detail ->
      Error
        { f_oracle = oracle; f_pipeline = pipeline; f_detail = detail;
          f_module = module_text })
    fmt

let pp_failure fmt f =
  Fmt.pf fmt "oracle %s%a: %s" f.f_oracle
    (fun fmt -> function
      | None -> ()
      | Some p -> Fmt.pf fmt " [pipeline %s]" p)
    f.f_pipeline f.f_detail

(* ------------------------------------------------------------------ *)
(* Structural oracles                                                  *)
(* ------------------------------------------------------------------ *)

let roundtrip _ctx m =
  let s1 = Printer.op_to_string m in
  match Parser.parse_module s1 with
  | Error e -> fail ~oracle:"roundtrip" ~module_text:s1 "reparse failed: %s" e
  | Ok m2 ->
    let s2 = Printer.op_to_string m2 in
    if String.equal s1 s2 then Ok ()
    else
      fail ~oracle:"roundtrip" ~module_text:s1
        "print->parse->print is not a fixpoint; reprinted:\n%s" s2

let verifies ctx m =
  match Verifier.verify ctx m with
  | Ok () -> Ok ()
  | Error diags ->
    fail ~oracle:"verify" ~module_text:(Printer.op_to_string m)
      "verifier rejected generated module: %a"
      Fmt.(list ~sep:(any "; ") Diag.pp_headline)
      diags

let clone_equiv ctx m =
  let c = Ircore.clone_op m in
  let s = Printer.op_to_string m and sc = Printer.op_to_string c in
  if not (String.equal s sc) then
    fail ~oracle:"clone" ~module_text:s "clone prints differently:\n%s" sc
  else
    match Verifier.verify ctx c with
    | Ok () -> Ok ()
    | Error diags ->
      fail ~oracle:"clone" ~module_text:s "clone fails verification: %a"
        Fmt.(list ~sep:(any "; ") Diag.pp_headline)
        diags

(* ------------------------------------------------------------------ *)
(* Differential execution                                              *)
(* ------------------------------------------------------------------ *)

(** NaNs compare equal (both sides computed the same way or not at all) and
    floats get a small relative tolerance: pipelines may legitimately
    reassociate nothing today, but the machine model's float path is shared,
    so observable drift beyond noise is a miscompile. *)
let rvalue_eq a b =
  let feq x y =
    (Float.is_nan x && Float.is_nan y)
    || x = y
    || Float.abs (x -. y) <= 1e-9 *. Float.max 1.0 (Float.max (Float.abs x) (Float.abs y))
  in
  match (a, b) with
  | Interp.Rvalue.Int x, Interp.Rvalue.Int y -> x = y
  | Interp.Rvalue.Bool x, Interp.Rvalue.Bool y -> x = y
  | Interp.Rvalue.Float x, Interp.Rvalue.Float y -> feq x y
  | Interp.Rvalue.Bool x, Interp.Rvalue.Int y
  | Interp.Rvalue.Int y, Interp.Rvalue.Bool x ->
    (* i1 results may legally come back as 0/1 after lowering *)
    (if x then 1 else 0) = y
  | _ -> false

let run_main ctx m =
  Interp.Compile.run_function ~ir_ctx:ctx ~module_:m ~name:Gen.entry_name []

(** Pipelines the differential oracle exercises by default. The last entry
    is the full Case-Study-2 lowering (passes ①–⑦ of the paper). *)
let default_pipelines =
  [
    "canonicalize";
    "cse";
    "licm";
    "canonicalize,cse,licm";
    "inline";
    "convert-scf-to-cf";
    "lower-affine";
    String.concat "," Workloads.Subview_kernel.naive_pipeline;
  ]

(** The LLVM lowering pipelines only claim to cover arith/scf/cf/func/
    memref payloads; tensor ops have no lowering in this repository, so
    running ①–⑦ over a module that contains them fails by design (casts
    feeding never-converted ops survive to reconcile). That is a
    precondition violation, not a compiler bug — skip, don't flag. *)
let applicable ~pipeline m =
  let contains ~needle hay =
    let n = String.length needle and l = String.length hay in
    let rec go i =
      i + n <= l && (String.equal (String.sub hay i n) needle || go (i + 1))
    in
    go 0
  in
  if not (contains ~needle:"to-llvm" pipeline) then true
  else begin
    let has_tensor = ref false in
    Ircore.walk_op m ~pre:(fun op ->
        if Ircore.op_dialect op = "tensor" then has_tensor := true);
    not !has_tensor
  end

let differential ctx ~pipeline m =
  let module_text = Printer.op_to_string m in
  match Passes.Pass.parse_pipeline pipeline with
  | Error d ->
    fail ~pipeline ~oracle:"differential" ~module_text "bad pipeline: %s"
      (Diag.to_string d)
  | Ok passes -> (
    match run_main ctx m with
    | Error e ->
      fail ~pipeline ~oracle:"differential" ~module_text
        "reference execution failed: %s" e
    | Ok (ref_results, _) -> (
      let m2 = Ircore.clone_op m in
      match Passes.Pass.run_pipeline ctx passes m2 with
      | Error d ->
        fail ~pipeline ~oracle:"differential" ~module_text
          "pipeline failed on valid IR: %s" (Diag.to_string d)
      | Ok (_ : Passes.Pass.run_result) -> (
        match Verifier.verify ctx m2 with
        | Error diags ->
          fail ~pipeline ~oracle:"differential" ~module_text
            "IR invalid after pipeline: %a"
            Fmt.(list ~sep:(any "; ") Diag.pp_headline)
            diags
        | Ok () -> (
          match run_main ctx m2 with
          | Error e ->
            fail ~pipeline ~oracle:"differential" ~module_text
              "execution failed after pipeline: %s\ntransformed:\n%s" e
              (Printer.op_to_string m2)
          | Ok (new_results, _) ->
            if
              List.length ref_results = List.length new_results
              && List.for_all2 rvalue_eq ref_results new_results
            then Ok ()
            else
              fail ~pipeline ~oracle:"differential" ~module_text
                "results differ: before %a, after %a\ntransformed:\n%s"
                Fmt.(list ~sep:comma Interp.Rvalue.pp)
                ref_results
                Fmt.(list ~sep:comma Interp.Rvalue.pp)
                new_results (Printer.op_to_string m2)))))

(* ------------------------------------------------------------------ *)
(* Orchestration                                                       *)
(* ------------------------------------------------------------------ *)

(** Run every oracle; returns the first failure. Structural oracles run
    first so a parse/verify bug is reported as itself rather than as a
    downstream differential mismatch. *)
let run_all ctx ?(pipelines = default_pipelines) m =
  let ( let* ) = Result.bind in
  let* () = verifies ctx m in
  let* () = roundtrip ctx m in
  let* () = clone_equiv ctx m in
  List.fold_left
    (fun acc pipeline ->
      let* () = acc in
      if applicable ~pipeline m then differential ctx ~pipeline m else Ok ())
    (Ok ()) pipelines

(** Re-runnable check for the shrinker: does [m] still exhibit a failure of
    the same oracle (and pipeline, if any)? *)
let recheck ctx ?(pipelines = default_pipelines) ~(witness : failure) m =
  let outcome =
    match witness.f_pipeline with
    | Some pipeline ->
      if applicable ~pipeline m then differential ctx ~pipeline m else Ok ()
    | None -> (
      match witness.f_oracle with
      | "roundtrip" -> roundtrip ctx m
      | "verify" -> verifies ctx m
      | "clone" -> clone_equiv ctx m
      | _ -> run_all ctx ~pipelines m)
  in
  match outcome with
  | Error f when f.f_oracle = witness.f_oracle -> Some f
  | _ -> None
