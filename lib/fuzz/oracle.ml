(** Property oracles run over each generated module.

    Each oracle checks one invariant the compiler must preserve on every
    well-typed module:

    - {b roundtrip}: print → parse → print reaches a fixpoint (the textual
      form is stable and the parser accepts everything the printer emits);
    - {b verify}: the verifier accepts generator output (which is
      well-typed by construction);
    - {b clone}: [Ircore.clone_op] produces a structurally identical,
      independently verifiable module;
    - {b differential}: executing [main] before and after a registered pass
      pipeline yields the same observable results — any miscompiling pass
      is caught by construction (the paper's soundness claim, Section 3,
      applied to our own passes). *)

open Ir

type failure = {
  f_oracle : string;  (** which invariant broke *)
  f_pipeline : string option;  (** pipeline under test, for differential *)
  f_detail : string;
  f_module : string;  (** printed module that witnesses the failure *)
}

let fail ?pipeline ~oracle ~module_text fmt =
  Fmt.kstr
    (fun detail ->
      Error
        { f_oracle = oracle; f_pipeline = pipeline; f_detail = detail;
          f_module = module_text })
    fmt

let pp_failure fmt f =
  Fmt.pf fmt "oracle %s%a: %s" f.f_oracle
    (fun fmt -> function
      | None -> ()
      | Some p -> Fmt.pf fmt " [pipeline %s]" p)
    f.f_pipeline f.f_detail

(* ------------------------------------------------------------------ *)
(* Structural oracles                                                  *)
(* ------------------------------------------------------------------ *)

let roundtrip _ctx m =
  let s1 = Printer.op_to_string m in
  match Parser.parse_module s1 with
  | Error e -> fail ~oracle:"roundtrip" ~module_text:s1 "reparse failed: %s" e
  | Ok m2 ->
    let s2 = Printer.op_to_string m2 in
    if String.equal s1 s2 then Ok ()
    else
      fail ~oracle:"roundtrip" ~module_text:s1
        "print->parse->print is not a fixpoint; reprinted:\n%s" s2

let verifies ctx m =
  match Verifier.verify ctx m with
  | Ok () -> Ok ()
  | Error diags ->
    fail ~oracle:"verify" ~module_text:(Printer.op_to_string m)
      "verifier rejected generated module: %a"
      Fmt.(list ~sep:(any "; ") Diag.pp_headline)
      diags

let clone_equiv ctx m =
  let c = Ircore.clone_op m in
  let s = Printer.op_to_string m and sc = Printer.op_to_string c in
  if not (String.equal s sc) then
    fail ~oracle:"clone" ~module_text:s "clone prints differently:\n%s" sc
  else
    match Verifier.verify ctx c with
    | Ok () -> Ok ()
    | Error diags ->
      fail ~oracle:"clone" ~module_text:s "clone fails verification: %a"
        Fmt.(list ~sep:(any "; ") Diag.pp_headline)
        diags

(* ------------------------------------------------------------------ *)
(* Differential execution                                              *)
(* ------------------------------------------------------------------ *)

(** NaNs compare equal (both sides computed the same way or not at all) and
    floats get a small relative tolerance: pipelines may legitimately
    reassociate nothing today, but the machine model's float path is shared,
    so observable drift beyond noise is a miscompile. *)
let rvalue_eq a b =
  let feq x y =
    (Float.is_nan x && Float.is_nan y)
    || x = y
    || Float.abs (x -. y) <= 1e-9 *. Float.max 1.0 (Float.max (Float.abs x) (Float.abs y))
  in
  match (a, b) with
  | Interp.Rvalue.Int x, Interp.Rvalue.Int y -> x = y
  | Interp.Rvalue.Bool x, Interp.Rvalue.Bool y -> x = y
  | Interp.Rvalue.Float x, Interp.Rvalue.Float y -> feq x y
  | Interp.Rvalue.Bool x, Interp.Rvalue.Int y
  | Interp.Rvalue.Int y, Interp.Rvalue.Bool x ->
    (* i1 results may legally come back as 0/1 after lowering *)
    (if x then 1 else 0) = y
  | _ -> false

let run_main ctx m =
  Interp.Compile.run_function ~ir_ctx:ctx ~module_:m ~name:Gen.entry_name []

(** Pipelines the differential oracle exercises by default. The last entry
    is the full Case-Study-2 lowering (passes ①–⑦ of the paper). *)
let default_pipelines =
  [
    "canonicalize";
    "cse";
    "licm";
    "canonicalize,cse,licm";
    "inline";
    "convert-scf-to-cf";
    "lower-affine";
    String.concat "," Workloads.Subview_kernel.naive_pipeline;
  ]

(** The LLVM lowering pipelines only claim to cover arith/scf/cf/func/
    memref payloads; tensor ops have no lowering in this repository, so
    running ①–⑦ over a module that contains them fails by design (casts
    feeding never-converted ops survive to reconcile). That is a
    precondition violation, not a compiler bug — skip, don't flag. *)
let applicable ~pipeline m =
  let contains ~needle hay =
    let n = String.length needle and l = String.length hay in
    let rec go i =
      i + n <= l && (String.equal (String.sub hay i n) needle || go (i + 1))
    in
    go 0
  in
  if not (contains ~needle:"to-llvm" pipeline) then true
  else begin
    let has_tensor = ref false in
    Ircore.walk_op m ~pre:(fun op ->
        if Ircore.op_dialect op = "tensor" then has_tensor := true);
    not !has_tensor
  end

let differential ctx ~pipeline m =
  let module_text = Printer.op_to_string m in
  match Passes.Pass.parse_pipeline pipeline with
  | Error d ->
    fail ~pipeline ~oracle:"differential" ~module_text "bad pipeline: %s"
      (Diag.to_string d)
  | Ok passes -> (
    match run_main ctx m with
    | Error e ->
      fail ~pipeline ~oracle:"differential" ~module_text
        "reference execution failed: %s" e
    | Ok (ref_results, _) -> (
      let m2 = Ircore.clone_op m in
      match Passes.Pass.run_pipeline ctx passes m2 with
      | Error d ->
        fail ~pipeline ~oracle:"differential" ~module_text
          "pipeline failed on valid IR: %s" (Diag.to_string d)
      | Ok (_ : Passes.Pass.run_result) -> (
        match Verifier.verify ctx m2 with
        | Error diags ->
          fail ~pipeline ~oracle:"differential" ~module_text
            "IR invalid after pipeline: %a"
            Fmt.(list ~sep:(any "; ") Diag.pp_headline)
            diags
        | Ok () -> (
          match run_main ctx m2 with
          | Error e ->
            fail ~pipeline ~oracle:"differential" ~module_text
              "execution failed after pipeline: %s\ntransformed:\n%s" e
              (Printer.op_to_string m2)
          | Ok (new_results, _) ->
            if
              List.length ref_results = List.length new_results
              && List.for_all2 rvalue_eq ref_results new_results
            then Ok ()
            else
              fail ~pipeline ~oracle:"differential" ~module_text
                "results differ: before %a, after %a\ntransformed:\n%s"
                Fmt.(list ~sep:comma Interp.Rvalue.pp)
                ref_results
                Fmt.(list ~sep:comma Interp.Rvalue.pp)
                new_results (Printer.op_to_string m2)))))

(* ------------------------------------------------------------------ *)
(* Orchestration                                                       *)
(* ------------------------------------------------------------------ *)

(** Run every oracle; returns the first failure. Structural oracles run
    first so a parse/verify bug is reported as itself rather than as a
    downstream differential mismatch. *)
let run_all ctx ?(pipelines = default_pipelines) m =
  let ( let* ) = Result.bind in
  let* () = verifies ctx m in
  let* () = roundtrip ctx m in
  let* () = clone_equiv ctx m in
  List.fold_left
    (fun acc pipeline ->
      let* () = acc in
      if applicable ~pipeline m then differential ctx ~pipeline m else Ok ())
    (Ok ()) pipelines

(* ------------------------------------------------------------------ *)
(* Schedule differential: compiled vs interpreted transform execution   *)
(* ------------------------------------------------------------------ *)

(** Transform scripts the schedule differential cycles through. Each
    variant targets a distinct slice of the schedule compiler: pure
    compiled dispatch, handle fan-out, consuming pass application,
    interpreter-fallback constructs ([alternatives], nested suppress
    sequences), compile-time [include] inlining, pre-frozen pattern sets
    and loop transforms that fail silenceably on loop-free payloads —
    failure parity is part of the contract. *)
let schedule_script_variants = 8

let schedule_script ~variant =
  let module B = Transform.Build in
  match variant mod schedule_script_variants with
  | 0 ->
    (* straight-line dispatch: match, annotate, params *)
    B.script (fun rw root ->
        let funcs = B.match_op rw ~name:"func.func" root in
        B.annotate rw ~name:"fuzz.visited" funcs;
        ignore (B.param_constant rw 42);
        let all = B.match_op rw ~dialect:"arith" root in
        B.annotate rw ~name:"fuzz.arith" all)
  | 1 ->
    (* handle fan-out: split a two-op match; fails silenceably when the
       payload has a different arith.addi count — parity either way *)
    B.script (fun rw root ->
        let adds = B.match_op rw ~name:"arith.addi" root in
        match B.split_handle rw ~n:2 adds with
        | [ a; _ ] -> B.annotate rw ~name:"fuzz.first" a
        | _ -> ())
  | 2 ->
    (* consuming dispatch: registered pass application *)
    B.script (fun rw root ->
        let next = B.apply_registered_pass rw ~pass_name:"canonicalize" root in
        ignore (B.apply_registered_pass rw ~pass_name:"cse" next))
  | 3 ->
    (* interpreter fallback: transactional alternatives *)
    B.script (fun rw root ->
        B.alternatives rw
          [
            (fun brw ->
              ignore (B.apply_registered_pass brw ~pass_name:"licm" root));
            (fun brw -> ignore (B.match_op brw ~name:"func.func" root));
          ])
  | 4 ->
    (* interpreter fallback: nested suppress sequence *)
    B.script (fun rw _root ->
        ignore
          (B.nested_sequence rw ~failure_propagation:"suppress"
             (fun brw seq_root ->
               ignore
                 (B.apply_registered_pass brw ~pass_name:"canonicalize"
                    seq_root))))
  | 5 ->
    (* compile-time include inlining with a yielded handle *)
    let m =
      B.script (fun rw root ->
          let inc = B.include_ rw ~target:"helper" [ root ] ~results:1 in
          B.annotate rw ~name:"fuzz.included" (Ircore.result ~index:0 inc))
    in
    ignore
      (B.named_sequence m ~name:"helper" ~num_args:1 (fun rw args ->
           let funcs = B.match_op rw ~name:"func.func" (List.hd args) in
           B.annotate rw ~name:"fuzz.helper" funcs;
           [ funcs ]));
    m
  | 6 ->
    (* pre-frozen pattern sets (names resolved at compile time) *)
    B.script (fun rw root ->
        B.apply_patterns rw root
          (match Dialects.Shlo_patterns.names () with
          | a :: b :: _ -> [ a; b ]
          | names -> names))
  | _ ->
    (* loop transform: silenceable failure on loop-free payloads *)
    B.script (fun rw root ->
        let loops = B.match_op rw ~name:"scf.for" root in
        B.loop_unroll rw ~factor:2 loops)

let schedule_outcome_to_string = function
  | Ok steps -> Fmt.str "ok after %d steps" steps
  | Error e ->
    Fmt.str "%s error: %s"
      (if Transform.Terror.is_silenceable e then "silenceable" else "definite")
      (Transform.Terror.to_string e)

(** Apply [script] to two clones of [m], once interpreted and once through
    a freshly compiled (uncached) schedule, and require identical outcomes
    — same success/error and step count — and byte-identical payload IR. *)
let schedule_differential ctx ~script m =
  let module_text = Printer.op_to_string m in
  let m_interp = Ircore.clone_op m and m_compiled = Ircore.clone_op m in
  let r_interp =
    Transform.Schedule.run ~mode:`Interpret ctx ~script ~payload:m_interp
  in
  let schedule = Transform.Schedule.of_script ctx script in
  let r_compiled = Transform.Schedule.apply schedule ~payload:m_compiled in
  let outcomes_agree =
    match (r_interp, r_compiled) with
    | Ok a, Ok b -> a = b
    | Error a, Error b ->
      Transform.Terror.is_silenceable a = Transform.Terror.is_silenceable b
      && String.equal (Transform.Terror.to_string a)
           (Transform.Terror.to_string b)
    | _ -> false
  in
  if not outcomes_agree then
    fail ~oracle:"schedule-differential" ~module_text
      "outcomes diverge: interpreted %s, compiled %s"
      (schedule_outcome_to_string r_interp)
      (schedule_outcome_to_string r_compiled)
  else
    let s_interp = Printer.op_to_string m_interp in
    let s_compiled = Printer.op_to_string m_compiled in
    if String.equal s_interp s_compiled then Ok ()
    else
      fail ~oracle:"schedule-differential" ~module_text
        "payload IR diverges after %s\ninterpreted:\n%s\ncompiled:\n%s"
        (schedule_outcome_to_string r_interp)
        s_interp s_compiled

(* ------------------------------------------------------------------ *)
(* Flow differential: static annotation-flow checker vs the dynamic one *)
(* ------------------------------------------------------------------ *)

type flow_outcome =
  | Flow_rejected  (** statically rejected: nothing to compare *)
  | Flow_agreed
      (** statically accepted, and neither execution mode raised a
          definite annotation-requirement error *)

let annot_config =
  {
    Transform.State.default_config with
    Transform.State.check_annotations = true;
  }

(* the dynamic outcome classes the static checker makes a promise about:
   only a *definite* error carrying the annotation-requirement tag counts
   — silenceable failures (missing payload, pattern mismatch) and other
   definite classes (use-after-consume reported by the dynamic state) are
   outside the static-accept contract *)
let dynamic_requirement_error = function
  | Ok _ -> None
  | Error e ->
    if Transform.Terror.is_silenceable e then None
    else
      let d = Transform.Terror.diag e in
      if Transform.Annot.is_requirement_diag d then Some (Diag.message d)
      else None

(** The differential property of the annotation-flow checker: a script the
    static checker accepts must never fail a {e dynamic} annotation
    requirement, in either execution mode. One case = one (script,
    payload) pair; the reproducer text is the script, not the payload. *)
let flow_diff ctx ~script m : (flow_outcome, failure) result =
  let script_text = Printer.op_to_string script in
  let r = Transform.Flowcheck.check script in
  if not (Transform.Flowcheck.ok r) then Ok Flow_rejected
  else
    let check_mode label outcome =
      match dynamic_requirement_error outcome with
      | None -> Ok ()
      | Some detail ->
        fail ~oracle:"flow-diff" ~module_text:script_text
          "statically accepted script failed a dynamic annotation \
           requirement (%s execution): %s"
          label detail
    in
    let ( let* ) = Result.bind in
    let* () =
      check_mode "interpreted"
        (Transform.Schedule.run ~mode:`Interpret ~config:annot_config ctx
           ~script ~payload:(Ircore.clone_op m))
    in
    let* () =
      check_mode "compiled"
        (Transform.Schedule.run ~mode:`Compile ~config:annot_config ctx
           ~script ~payload:(Ircore.clone_op m))
    in
    Ok Flow_agreed

(** Re-runnable check for the shrinker: does [m] still exhibit a failure of
    the same oracle (and pipeline, if any)? *)
let recheck ctx ?(pipelines = default_pipelines) ~(witness : failure) m =
  let outcome =
    match witness.f_pipeline with
    | Some pipeline ->
      if applicable ~pipeline m then differential ctx ~pipeline m else Ok ()
    | None -> (
      match witness.f_oracle with
      | "roundtrip" -> roundtrip ctx m
      | "verify" -> verifies ctx m
      | "clone" -> clone_equiv ctx m
      | _ -> run_all ctx ~pipelines m)
  in
  match outcome with
  | Error f when f.f_oracle = witness.f_oracle -> Some f
  | _ -> None
