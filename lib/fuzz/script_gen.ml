(** Random transform-script generator for the flow-diff differential
    oracle ({!Oracle.flow_diff}).

    Each generated script is a [__transform_main] named sequence assembled
    through {!Transform.Build}. The generator keeps a pool of live handles
    with the properties it believes each one carries — mirroring the
    [ensures] clauses the registry declares — and emits a weighted random
    mix of steps:

    - property producers and consumers: [loop_tile], [loop_vectorize],
      [loop_unroll], [loop_hoist], [loop_peel], [loop_split], matches,
      [annotate], [apply_registered_pass], [split_handle];
    - control flow the static checker must approximate: [alternatives]
      (must-join), [foreach] (fixpoint), nested [failures(suppress)]
      sequences (rollback join) and [include]s of a shared
      [@flow_helper] named sequence (summary reuse across call sites);
    - {e deliberate violations} (~12% of steps): vectorizing a handle
      that was never tiled, or unrolling one that was already vectorized.

    Violating scripts exercise the static reject path; accepted scripts
    feed the differential comparison against the dynamic checker. *)

open Ir

let helper_name = "flow_helper"

type entry = {
  h : Ircore.value;
  mutable tiled : bool;
  mutable vectorized : bool;
  mutable live : bool;
}

let generate rng : Ircore.op =
  let module B = Transform.Build in
  let want_helper = ref false in
  let m =
    B.script (fun rw root ->
        let pool = ref [] in
        let note ?(tiled = false) ?(vectorized = false) h =
          pool := { h; tiled; vectorized; live = true } :: !pool
        in
        let pick_live () =
          match List.filter (fun e -> e.live) !pool with
          | [] -> None
          | es -> Some (List.nth es (Random.State.int rng (List.length es)))
        in
        let do_match rw =
          let name =
            match Random.State.int rng 3 with
            | 0 -> "scf.for"
            | 1 -> "func.func"
            | _ -> "arith.addi"
          in
          note (B.match_op rw ~name root)
        in
        do_match rw;
        let steps = 4 + Random.State.int rng 8 in
        for _ = 1 to steps do
          match pick_live () with
          | None -> do_match rw
          | Some e ->
            let roll = Random.State.int rng 100 in
            if roll < 12 then begin
              (* deliberate requires-violation *)
              if e.vectorized || not e.tiled then begin
                (* vectorize needs (tiled & !vectorized) *)
                ignore (B.loop_vectorize rw ~width:4 e.h);
                e.live <- false
              end
              else begin
                (* unroll needs !vectorized: vectorize, then unroll the
                   vectorized handle *)
                let v = B.loop_vectorize rw ~width:4 e.h in
                e.live <- false;
                ignore (B.loop_unroll rw ~factor:2 v)
              end
            end
            else if roll < 24 then do_match rw
            else if roll < 38 then begin
              (* tile: consumes, both results carry {tiled} *)
              let l, rest = B.loop_tile rw ~sizes:[ 4 ] e.h in
              e.live <- false;
              note ~tiled:true l;
              note ~tiled:true rest
            end
            else if roll < 46 then begin
              (* legal vectorize; the result carries only {vectorized} *)
              if e.tiled && not e.vectorized then begin
                let v = B.loop_vectorize rw ~width:4 e.h in
                e.live <- false;
                note ~vectorized:true v
              end
              else B.annotate rw ~name:"fuzz.skip" e.h
            end
            else if roll < 54 then begin
              (* legal unroll (consumes, no result) *)
              if not e.vectorized then begin
                B.loop_unroll rw ~factor:2 e.h;
                e.live <- false
              end
              else B.annotate rw ~name:"fuzz.skip" e.h
            end
            else if roll < 60 then
              (* hoist: non-consuming, fresh {hoisted} result *)
              note (B.loop_hoist rw e.h)
            else if roll < 66 then begin
              (* peel: consumes, two {peeled} results *)
              let main, rest = B.loop_peel rw ~iterations:1 e.h in
              e.live <- false;
              note main;
              note rest
            end
            else if roll < 72 then begin
              (* split: consumes the loop operand *)
              let a, b = B.loop_split rw ~div_by:4 e.h in
              e.live <- false;
              note a;
              note b
            end
            else if roll < 78 then
              B.annotate rw ~name:"fuzz.mark" e.h
            else if roll < 83 then
              note (B.apply_registered_pass rw ~pass_name:"canonicalize" e.h)
            else if roll < 87 then
              List.iter note (B.split_handle rw ~n:2 e.h)
            else if roll < 91 then
              (* must-join: each branch unions a different annotation *)
              B.alternatives rw
                [
                  (fun brw -> B.annotate brw ~name:"alt.a" e.h);
                  (fun brw -> B.annotate brw ~name:"alt.b" e.h);
                ]
            else if roll < 95 then
              (* fixpoint: the body annotates the iteration handle *)
              B.foreach rw e.h (fun brw it ->
                  B.annotate brw ~name:"each.visited" it;
                  if Random.State.bool rng then ignore (B.loop_hoist brw it))
            else if roll < 98 then begin
              (* two include call sites with the same argument state
                 exercise summary reuse *)
              want_helper := true;
              let inc1 = B.include_ rw ~target:helper_name [ e.h ] ~results:1 in
              note (Ircore.result ~index:0 inc1);
              if Random.State.bool rng then begin
                let inc2 =
                  B.include_ rw ~target:helper_name [ e.h ] ~results:1
                in
                note (Ircore.result ~index:0 inc2)
              end
            end
            else
              (* rollback join: the nested body only touches its own root *)
              ignore
                (B.nested_sequence rw ~failure_propagation:"suppress"
                   (fun brw seq_root ->
                     ignore
                       (B.apply_registered_pass brw ~pass_name:"canonicalize"
                          seq_root)))
        done)
  in
  if !want_helper then
    ignore
      (Transform.Build.named_sequence m ~name:helper_name ~num_args:1
         (fun rw args ->
           let arg = List.hd args in
           Transform.Build.annotate rw ~name:"helper.seen" arg;
           let funcs = Transform.Build.match_op rw ~name:"func.func" arg in
           [ funcs ]));
  m
