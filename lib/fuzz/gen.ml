(** Seeded, deterministic generation of well-typed payload IR.

    Every random choice is drawn from an explicit [Random.State.t] (never the
    global [Random]), so a (seed, case) pair always reproduces the same
    module. Generation is correct by construction: values are only drawn
    from pools of dominating definitions, region-carrying ops yield values
    of the declared types, and every generated op is executable by
    {!Interp.Compile} — which is what lets the differential oracle run the
    module before and after each pass pipeline.

    Dialect coverage: [arith] (constants, int/float binops, comparisons,
    select, casts), [scf] ([for] with iter_args, [if] with results,
    [while]), [cf] (diamond control flow in helper functions reached via
    [func.call]), [func], [memref] (alloc/store/load with in-bounds static
    indices) and [tensor] (a non-executed shape-manipulation function). *)

open Ir
open Dialects

type config = {
  max_ops : int;  (** op budget for the main function body *)
  max_depth : int;  (** maximum region-nesting depth below the function *)
  gen_memref : bool;
  gen_cf : bool;  (** emit cf-diamond helper functions + calls *)
  gen_tensor : bool;  (** emit a non-executed tensor function *)
}

let default_config =
  { max_ops = 40; max_depth = 3; gen_memref = true; gen_cf = true;
    gen_tensor = true }

(** The function executed by the differential oracle. *)
let entry_name = "main"

(* ------------------------------------------------------------------ *)
(* Random helpers                                                      *)
(* ------------------------------------------------------------------ *)

let pick rng xs = List.nth xs (Random.State.int rng (List.length xs))

let pick_opt rng = function [] -> None | xs -> Some (pick rng xs)

let small_int rng = Random.State.int rng 33 - 16

(* arbitrary doubles round-trip through the printer's hex notation *)
let small_float rng = Random.State.float rng 16.0 -. 8.0

(* ------------------------------------------------------------------ *)
(* Value pools                                                         *)
(* ------------------------------------------------------------------ *)

(** Values available at the current insertion point, bucketed by type.
    Pools are immutable: entering a region copies the enclosing pool, so
    region-local values never leak out. *)
type pool = {
  ints : Ircore.value list;  (** i64 *)
  floats : Ircore.value list;  (** f64 *)
  bools : Ircore.value list;  (** i1 *)
  indices : Ircore.value list;
  memrefs : (Ircore.value * int) list;  (** 1-D memref + static size *)
}

let empty_pool = { ints = []; floats = []; bools = []; indices = []; memrefs = [] }

let add_value pool (v : Ircore.value) =
  match Ircore.value_typ v with
  | t when Typ.equal t Typ.i64 -> { pool with ints = v :: pool.ints }
  | t when Typ.equal t Typ.f64 -> { pool with floats = v :: pool.floats }
  | t when Typ.equal t Typ.i1 -> { pool with bools = v :: pool.bools }
  | Typ.Index -> { pool with indices = v :: pool.indices }
  | _ -> pool

let scalar_choices pool =
  (if pool.ints = [] then [] else [ `Int ])
  @ (if pool.floats = [] then [] else [ `Float ])
  @ if pool.bools = [] then [] else [ `Bool ]

let pool_of_kind pool = function
  | `Int -> pool.ints
  | `Float -> pool.floats
  | `Bool -> pool.bools

let typ_of_kind = function
  | `Int -> Typ.i64
  | `Float -> Typ.f64
  | `Bool -> Typ.i1

(* ------------------------------------------------------------------ *)
(* Leaf ops                                                            *)
(* ------------------------------------------------------------------ *)

let gen_const rng rw pool =
  match Random.State.int rng 4 with
  | 0 -> add_value pool (Dutil.const_int rw ~typ:Typ.i64 (small_int rng))
  | 1 -> add_value pool (Dutil.const_float rw ~typ:Typ.f64 (small_float rng))
  | 2 ->
    add_value pool
      (Arith.constant rw (Attr.Bool (Random.State.bool rng)) Typ.i1)
  | _ -> add_value pool (Arith.const_index rw (Random.State.int rng 9))

let int_binops = [ "addi"; "subi"; "muli"; "andi"; "ori"; "xori"; "maxsi"; "minsi" ]
let float_binops = [ "addf"; "subf"; "mulf"; "maximumf"; "minimumf" ]
let ipreds = Arith.[ Eq; Ne; Slt; Sle; Sgt; Sge; Ult; Ule; Ugt; Uge ]
let fpreds = [ "oeq"; "one"; "olt"; "ole"; "ogt"; "oge" ]

let gen_int_binop rng rw pool =
  match pool.ints with
  | [] -> gen_const rng rw pool
  | ints -> (
    let a = pick rng ints and b = pick rng ints in
    match Random.State.int rng 10 with
    | 0 | 1 ->
      (* division and remainder: fresh strictly-positive constant divisor,
         so neither the interpreter nor a constant folder can trap *)
      let d = Dutil.const_int rw ~typ:Typ.i64 (1 + Random.State.int rng 7) in
      add_value pool
        (Arith.binop rw (if Random.State.bool rng then "divsi" else "remsi") a d)
    | 2 ->
      (* shifts: fresh small constant amount keeps the semantics defined *)
      let s = Dutil.const_int rw ~typ:Typ.i64 (Random.State.int rng 8) in
      add_value pool
        (Arith.binop rw (if Random.State.bool rng then "shli" else "shrsi") a s)
    | _ -> add_value pool (Arith.binop rw (pick rng int_binops) a b))

let gen_float_binop rng rw pool =
  match pool.floats with
  | [] -> gen_const rng rw pool
  | floats ->
    let a = pick rng floats and b = pick rng floats in
    add_value pool (Arith.binop rw (pick rng float_binops) a b)

let gen_cmp rng rw pool =
  let int_like = (if pool.ints = [] then [] else [ pool.ints ])
    @ if pool.indices = [] then [] else [ pool.indices ] in
  match (Random.State.bool rng, int_like, pool.floats) with
  | _, [], [] -> gen_const rng rw pool
  | true, (_ :: _ as ils), _ | false, (_ :: _ as ils), [] ->
    let vs = pick rng ils in
    add_value pool (Arith.cmpi rw (pick rng ipreds) (pick rng vs) (pick rng vs))
  | _, _, (_ :: _ as fs) ->
    let a = pick rng fs and b = pick rng fs in
    add_value pool
      (Rewriter.build1 rw ~operands:[ a; b ] ~result_types:[ Typ.i1 ]
         ~attrs:[ ("predicate", Attr.String (pick rng fpreds)) ]
         "arith.cmpf")

let gen_select rng rw pool =
  match (pool.bools, scalar_choices pool) with
  | [], _ | _, [] -> gen_const rng rw pool
  | bools, kinds -> (
    let vs = pool_of_kind pool (pick rng kinds) in
    match vs with
    | [] -> gen_const rng rw pool
    | _ -> add_value pool (Arith.select rw (pick rng bools) (pick rng vs) (pick rng vs)))

let gen_cast rng rw pool =
  match Random.State.int rng 3 with
  | 0 when pool.ints <> [] ->
    add_value pool (Arith.index_cast rw (pick rng pool.ints) Typ.index)
  | 1 when pool.indices <> [] ->
    add_value pool (Arith.index_cast rw (pick rng pool.indices) Typ.i64)
  | _ when pool.ints <> [] ->
    add_value pool
      (Rewriter.build1 rw ~operands:[ pick rng pool.ints ]
         ~result_types:[ Typ.f64 ] "arith.sitofp")
  | _ -> gen_const rng rw pool

(* ------------------------------------------------------------------ *)
(* memref ops                                                          *)
(* ------------------------------------------------------------------ *)

let gen_memref rng rw pool =
  if pool.memrefs = [] || Random.State.int rng 4 = 0 then begin
    let size = 2 + Random.State.int rng 7 in
    let m = Memref.alloc rw (Typ.memref (Typ.static_dims [ size ]) Typ.f64) in
    { pool with memrefs = (m, size) :: pool.memrefs }
  end
  else begin
    let m, size = pick rng pool.memrefs in
    let i = Arith.const_index rw (Random.State.int rng size) in
    if pool.floats <> [] && Random.State.bool rng then begin
      Memref.store rw (pick rng pool.floats) m [ i ];
      pool
    end
    else add_value pool (Memref.load rw m [ i ])
  end

(* ------------------------------------------------------------------ *)
(* Region-carrying scf ops                                             *)
(* ------------------------------------------------------------------ *)

(** Yield operands of the given kinds drawn from [pool]; materializes a
    constant when the pool has no value of a kind. *)
let yield_values rng rw pool kinds =
  List.map
    (fun kind ->
      match pick_opt rng (pool_of_kind pool kind) with
      | Some v -> v
      | None -> (
        match kind with
        | `Int -> Dutil.const_int rw ~typ:Typ.i64 (small_int rng)
        | `Float -> Dutil.const_float rw ~typ:Typ.f64 (small_float rng)
        | `Bool -> Arith.constant rw (Attr.Bool (Random.State.bool rng)) Typ.i1))
    kinds

let rec gen_ops rng cfg rw pool ~depth ~budget =
  if !budget <= 0 then pool
  else begin
    decr budget;
    let pool =
      match Random.State.int rng 16 with
      | 0 | 1 | 2 -> gen_const rng rw pool
      | 3 | 4 -> gen_int_binop rng rw pool
      | 5 | 6 -> gen_float_binop rng rw pool
      | 7 -> gen_cmp rng rw pool
      | 8 -> gen_select rng rw pool
      | 9 -> gen_cast rng rw pool
      | 10 | 11 when cfg.gen_memref -> gen_memref rng rw pool
      | 12 | 13 when depth < cfg.max_depth -> gen_if rng cfg rw pool ~depth ~budget
      | 14 when depth < cfg.max_depth -> gen_for rng cfg rw pool ~depth ~budget
      | 15 when depth < cfg.max_depth -> gen_while rng rw pool
      | _ -> gen_int_binop rng rw pool
    in
    gen_ops rng cfg rw pool ~depth ~budget
  end

and gen_if rng cfg rw pool ~depth ~budget =
  let n_results = Random.State.int rng 3 in
  let kinds = List.init n_results (fun _ -> pick rng [ `Int; `Float; `Bool ]) in
  let cond =
    match pick_opt rng pool.bools with
    | Some c -> c
    | None -> Arith.constant rw (Attr.Bool (Random.State.bool rng)) Typ.i1
  in
  let branch brw =
    let allowance = min !budget 6 in
    let inner = ref allowance in
    let bpool = gen_ops rng cfg brw pool ~depth:(depth + 1) ~budget:inner in
    budget := !budget - (allowance - !inner);
    yield_values rng brw bpool kinds
  in
  let op =
    Scf.build_if rw ~cond ~result_types:(List.map typ_of_kind kinds)
      ~then_:branch ~else_:branch
  in
  List.fold_left add_value pool (Ircore.results op)

and gen_for rng cfg rw pool ~depth ~budget =
  let n_iter = Random.State.int rng 3 in
  let kinds = List.init n_iter (fun _ -> pick rng [ `Int; `Float ]) in
  let init = yield_values rng rw pool kinds in
  let lb = Arith.const_index rw 0 in
  let ub = Arith.const_index rw (Random.State.int rng 5) in
  let step = Arith.const_index rw (1 + Random.State.int rng 2) in
  let op =
    Scf.build_for rw ~lb ~ub ~step ~iter_args:init (fun brw iv iters ->
        let bpool = List.fold_left add_value (add_value pool iv) iters in
        let allowance = min !budget 6 in
        let inner = ref allowance in
        let bpool = gen_ops rng cfg brw bpool ~depth:(depth + 1) ~budget:inner in
        budget := !budget - (allowance - !inner);
        yield_values rng brw bpool kinds)
  in
  List.fold_left add_value pool (Ircore.results op)

and gen_while rng rw pool =
  (* while (x < bound) x = f(x): a closed loop template whose carried value
     strictly increases, so termination is by construction *)
  let x0 =
    match pick_opt rng pool.ints with
    | Some v -> v
    | None -> Dutil.const_int rw ~typ:Typ.i64 (Random.State.int rng 8)
  in
  let bound = 8 + Random.State.int rng 56 in
  let before = Ircore.create_block ~args:[ Typ.i64 ] () in
  let after = Ircore.create_block ~args:[ Typ.i64 ] () in
  let w =
    Rewriter.build rw ~operands:[ x0 ] ~result_types:[ Typ.i64 ]
      ~regions:
        [ Ircore.region_with_block before; Ircore.region_with_block after ]
      Scf.while_op
  in
  let brw = Dutil.rw_at_end before in
  let b = Dutil.const_int brw ~typ:Typ.i64 bound in
  let c = Arith.cmpi brw Arith.Slt (Ircore.block_arg before 0) b in
  ignore
    (Rewriter.build brw
       ~operands:[ c; Ircore.block_arg before 0 ]
       Scf.condition_op);
  let arw = Dutil.rw_at_end after in
  let x = Ircore.block_arg after 0 in
  let next =
    match Random.State.int rng 3 with
    | 0 ->
      (* 2x+1 has a fixpoint at -1 and diverges below it; clamping to 0
         first makes the step strictly increasing for every start value *)
      let zero = Dutil.const_int arw ~typ:Typ.i64 0 in
      let two = Dutil.const_int arw ~typ:Typ.i64 2 in
      let one = Dutil.const_int arw ~typ:Typ.i64 1 in
      Arith.addi arw (Arith.muli arw (Arith.binop arw "maxsi" x zero) two) one
    | 1 ->
      let k = Dutil.const_int arw ~typ:Typ.i64 (1 + Random.State.int rng 5) in
      Arith.addi arw x k
    | _ ->
      let three = Dutil.const_int arw ~typ:Typ.i64 3 in
      let one = Dutil.const_int arw ~typ:Typ.i64 1 in
      Arith.addi arw (Arith.binop arw "maxsi" x one)
        (Arith.binop arw "addi" three (Dutil.const_int arw ~typ:Typ.i64 0))
  in
  Scf.yield arw ~operands:[ next ] ();
  add_value pool (Ircore.result w)

(* ------------------------------------------------------------------ *)
(* cf-diamond helper functions                                         *)
(* ------------------------------------------------------------------ *)

(** A function with unstructured control flow:
    entry: cond_br %c, ^then(%x'), ^else(%x'') ; both br ^join(%v) ; join
    returns — covers [cf.br]/[cf.cond_br], block arguments and the
    interpreter's block-dispatch execution path. *)
let gen_cf_function rng name =
  let f, entry =
    Func.create ~name ~arg_types:[ Typ.i64; Typ.i1 ] ~result_types:[ Typ.i64 ]
      ()
  in
  let region = List.hd f.Ircore.regions in
  let x = Ircore.block_arg entry 0 and c = Ircore.block_arg entry 1 in
  let then_b = Ircore.create_block ~args:[ Typ.i64 ] () in
  let else_b = Ircore.create_block ~args:[ Typ.i64 ] () in
  let join_b = Ircore.create_block ~args:[ Typ.i64 ] () in
  Ircore.append_block region then_b;
  Ircore.append_block region else_b;
  Ircore.append_block region join_b;
  let rw = Dutil.rw_at_end entry in
  let k = Dutil.const_int rw ~typ:Typ.i64 (small_int rng) in
  let a = Arith.addi rw x k in
  Cf.cond_br rw ~cond:c ~true_dest:then_b ~true_args:[ a ] ~false_dest:else_b
    ~false_args:[ x ] ();
  let trw = Dutil.rw_at_end then_b in
  let t2 = Dutil.const_int trw ~typ:Typ.i64 2 in
  Cf.br trw ~dest:join_b
    ~args:[ Arith.muli trw (Ircore.block_arg then_b 0) t2 ]
    ();
  let erw = Dutil.rw_at_end else_b in
  let e1 = Dutil.const_int erw ~typ:Typ.i64 (1 + Random.State.int rng 4) in
  Cf.br erw ~dest:join_b
    ~args:[ Arith.subi erw (Ircore.block_arg else_b 0) e1 ]
    ();
  let jrw = Dutil.rw_at_end join_b in
  Func.return jrw ~operands:[ Ircore.block_arg join_b 0 ] ();
  f

(* ------------------------------------------------------------------ *)
(* tensor function (not executed; exercises parser/printer/verifier)   *)
(* ------------------------------------------------------------------ *)

let gen_tensor_function rng name =
  let n = 2 + Random.State.int rng 6 in
  let tt = Typ.tensor (Typ.static_dims [ n ]) Typ.f64 in
  let f, entry = Func.create ~name ~arg_types:[ tt ] ~result_types:[ Typ.f64 ] () in
  let rw = Dutil.rw_at_end entry in
  let e = Rewriter.build1 rw ~result_types:[ tt ] "tensor.empty" in
  let x = Dutil.const_float rw ~typ:Typ.f64 (small_float rng) in
  let i = Arith.const_index rw (Random.State.int rng n) in
  let ins =
    Rewriter.build1 rw ~operands:[ x; e; i ] ~result_types:[ tt ]
      "tensor.insert"
  in
  let src = if Random.State.bool rng then ins else Ircore.block_arg entry 0 in
  let v =
    Rewriter.build1 rw
      ~operands:[ src; i ]
      ~result_types:[ Typ.f64 ] "tensor.extract"
  in
  Func.return rw ~operands:[ v ] ();
  f

(* ------------------------------------------------------------------ *)
(* Module generation                                                   *)
(* ------------------------------------------------------------------ *)

(** Generate one well-typed module. [main] takes no arguments and returns
    up to three scalars; helper functions (cf diamonds, tensor) are reached
    from [main] or stand alone. *)
let generate ?(config = default_config) rng =
  let md = Builtin.create_module () in
  let body = Builtin.body_block md in
  (* helper functions first so main's calls resolve in symbol order *)
  let n_cf = if config.gen_cf then Random.State.int rng 3 else 0 in
  let cf_names = List.init n_cf (fun i -> Fmt.str "cf%d" i) in
  List.iter
    (fun name -> Ircore.insert_at_end body (gen_cf_function rng name))
    cf_names;
  if config.gen_tensor && Random.State.bool rng then
    Ircore.insert_at_end body (gen_tensor_function rng "tensorfn");
  (* main *)
  let f, entry = Func.create ~name:entry_name ~arg_types:[] ~result_types:[] () in
  Ircore.insert_at_end body f;
  let rw = Dutil.rw_at_end entry in
  let budget = ref config.max_ops in
  let pool = gen_ops rng config rw empty_pool ~depth:0 ~budget in
  (* call each cf helper with values from the pool (or fresh constants) *)
  let pool =
    List.fold_left
      (fun pool callee ->
        let x =
          match pick_opt rng pool.ints with
          | Some v -> v
          | None -> Dutil.const_int rw ~typ:Typ.i64 (small_int rng)
        in
        let c =
          match pick_opt rng pool.bools with
          | Some v -> v
          | None -> Arith.constant rw (Attr.Bool (Random.State.bool rng)) Typ.i1
        in
        let call =
          Func.call rw ~callee ~operands:[ x; c ] ~result_types:[ Typ.i64 ]
        in
        add_value pool (Ircore.result call))
      pool cf_names
  in
  (* return up to three scalars; rewrite main's declared type to match *)
  let n_rets = Random.State.int rng 4 in
  let kinds = List.init n_rets (fun _ -> pick rng [ `Int; `Float; `Bool ]) in
  let rets = yield_values rng rw pool kinds in
  Ircore.set_attr f "function_type"
    (Attr.Type (Typ.Func ([], List.map typ_of_kind kinds)));
  Func.return rw ~operands:rets ();
  md
