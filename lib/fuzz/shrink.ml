(** Greedy structural test-case minimization.

    Given a failing module and the oracle that rejected it, repeatedly try
    mutations that make the module smaller — dropping unused ops, replacing
    an op's results with fresh constants (which detaches whole regions in
    one step when the op is an [scf.for]/[scf.if]), and deleting uncalled
    helper functions — keeping a mutation only if the same oracle still
    fails on the mutated clone. Terminates when a full sweep makes no
    progress. *)

open Ir

(* ops that must not be dropped: structure and terminators *)
let is_protected op =
  match op.Ircore.op_name with
  | "builtin.module" | "func.func" | "func.return" | "scf.yield"
  | "scf.condition" | "cf.br" | "cf.cond_br" | "llvm.br" | "llvm.cond_br"
  | "llvm.return" ->
    true
  | _ -> false

(** All ops of the module in a stable pre-order; mutation candidates are
    addressed by their index in this enumeration so the same candidate can
    be located again in a fresh clone. *)
let enumerate m =
  let acc = ref [] in
  Ircore.walk_op m ~pre:(fun op -> acc := op :: !acc);
  Array.of_list (List.rev !acc)

let op_count m = Array.length (enumerate m)

let zero_constant_for rw t =
  match t with
  | t when Typ.is_integer t ->
    if Typ.equal t Typ.i1 then Some (Dialects.Arith.constant rw (Attr.Bool false) t)
    else Some (Dialects.Dutil.const_int rw ~typ:t 0)
  | Typ.Float _ -> Some (Dialects.Dutil.const_float rw ~typ:t 0.0)
  | Typ.Index -> Some (Dialects.Arith.const_index rw 0)
  | _ -> None

(** Try to remove the op at pre-order index [idx] of a clone of [m]:
    results without uses are simply dropped; used scalar results are
    replaced by zero constants. Returns the mutated clone, or [None] when
    the candidate is protected or has non-scalar live results. *)
let try_remove m idx =
  let c = Ircore.clone_op m in
  let ops = enumerate c in
  if idx >= Array.length ops then None
  else begin
    let op = ops.(idx) in
    if is_protected op || Ircore.op_parent op = None then None
    else begin
      let live =
        List.filter (fun r -> Ircore.has_uses r) (Ircore.results op)
      in
      let scalar t =
        Typ.is_integer t || Typ.is_index t
        || match t with Typ.Float _ -> true | _ -> false
      in
      let replaceable =
        List.for_all (fun r -> scalar (Ircore.value_typ r)) live
      in
      if not replaceable then None
      else begin
        let rw = Rewriter.create ~ip:(Builder.Before op) () in
        List.iter
          (fun r ->
            match zero_constant_for rw (Ircore.value_typ r) with
            | Some z -> Ircore.replace_all_uses_with r ~with_:z
            | None -> ())
          live;
        match Ircore.erase op with
        | () -> Some c
        | exception Ircore.Has_live_uses _ -> None
      end
    end
  end

(** Delete the function at index [idx] when nothing references its symbol. *)
let try_drop_function m idx =
  let c = Ircore.clone_op m in
  let ops = enumerate c in
  if idx >= Array.length ops then None
  else begin
    let op = ops.(idx) in
    if op.Ircore.op_name <> "func.func" then None
    else
      match Symbol.symbol_name op with
      | Some name when name <> Gen.entry_name ->
        let called = ref false in
        Ircore.walk_op c ~pre:(fun o ->
            match Ircore.attr o "callee" with
            | Some (Attr.Symbol_ref (s, _)) when s = name -> called := true
            | _ -> ());
        if !called then None
        else begin
          match Ircore.erase op with
          | () -> Some c
          | exception Ircore.Has_live_uses _ -> None
        end
      | _ -> None
  end

(** Minimize [m] with respect to [still_fails]. [max_steps] bounds the
    total number of candidate evaluations (each evaluation re-runs the
    failing oracle, which may execute the module). *)
let shrink ?(max_steps = 2000) ~still_fails m =
  let steps = ref 0 in
  let current = ref (Ircore.clone_op m) in
  let budget_left () = !steps < max_steps in
  let try_accept candidate =
    incr steps;
    match candidate with
    | Some c when op_count c < op_count !current && still_fails c ->
      current := c;
      true
    | _ -> false
  in
  let progress = ref true in
  while !progress && budget_left () do
    progress := false;
    (* sweep from the back so data-flow consumers go before producers *)
    let n = op_count !current in
    let idx = ref (n - 1) in
    while !idx >= 0 && budget_left () do
      if try_accept (try_drop_function !current !idx) then progress := true
      else if try_accept (try_remove !current !idx) then progress := true;
      decr idx
    done
  done;
  !current
