(** Fault-injection harness: prove the interpreter's recovery paths under
    induced failure.

    A seeded {!injector} installs a {!Transform.Treg} application
    interceptor that lets each registered transform run normally and then,
    with configurable probability, sabotages the payload (a visible
    attribute stamp that a correct rollback must erase) and either fails
    silenceably or raises an OCaml exception — i.e. precisely the
    "partially-applied rewrite" and "mid-transform crash" failure modes the
    transactional layer exists to contain.

    The campaign ({!run_campaign}) then asserts the recovery invariants on
    every generated module:

    - a silenceable fault inside [transform.alternatives] or a
      [failures(suppress)] sequence is rolled back: the payload prints
      byte-identical to its pre-run snapshot and carries no sabotage stamp;
    - a raised exception never escapes the interpreter: it surfaces as a
      definite error (via the exception barrier), and the payload still
      verifies;
    - the handle table stays usable after rollback (the scripts' second
      alternative consumes the root handle after the first was rolled
      back).

    Any violation is reported with a replayable reproducer file. *)

open Ir

exception Injected_fault of string

type mode = Fail_silenceable | Raise_exception

let mode_to_string = function
  | Fail_silenceable -> "silenceable"
  | Raise_exception -> "raise"

type injector = {
  fi_rng : Random.State.t;
  fi_prob : float;  (** per-application injection probability *)
  fi_mode : mode;
  mutable fi_injected : int;  (** faults injected so far *)
}

let create_injector ?(mode = Fail_silenceable) ~prob rng =
  { fi_rng = rng; fi_prob = prob; fi_mode = mode; fi_injected = 0 }

(* global statistics (Ir.Stats) *)
let stat_injected = Stats.counter ~component:"fault" "injected"

let stat_violations =
  Stats.counter ~component:"fault" "violations"
    ~desc:"recovery-invariant violations found by the campaign"

let sabotage_attr = "fuzz.injected_fault"

let contains hay needle =
  let n = String.length needle and l = String.length hay in
  let rec go i =
    i + n <= l && (String.equal (String.sub hay i n) needle || go (i + 1))
  in
  n = 0 || go 0

(** Visibly mutate the payload: stamp an attribute on the first op nested
    under the root (or the root itself). A correct rollback restores the
    pre-fault print, erasing the stamp. *)
let sabotage root =
  let first = ref None in
  Ircore.walk_op root ~pre:(fun o ->
      match !first with
      | None -> if not (o == root) then first := Some o
      | Some _ -> ());
  let target = match !first with Some o -> o | None -> root in
  Ircore.set_attr target sabotage_attr Attr.Unit

let payload_sabotaged root =
  let found = ref false in
  Ircore.walk_op root ~pre:(fun o ->
      if Option.is_some (Ircore.attr o sabotage_attr) then found := true);
  !found

(** The interceptor body: run the real transform, then maybe inject. The
    fault fires strictly *after* a successful application, so the payload
    has already been mutated by the transform itself (and is mutated again
    by the sabotage stamp) when the failure surfaces — the worst case for
    rollback. *)
let intercept inj (def : Transform.Treg.def) st op =
  match def.Transform.Treg.t_apply st op with
  | Error _ as e -> e
  | Ok () ->
    if Random.State.float inj.fi_rng 1.0 < inj.fi_prob then begin
      inj.fi_injected <- inj.fi_injected + 1;
      Stats.incr stat_injected;
      sabotage st.Transform.State.payload_root;
      match inj.fi_mode with
      | Fail_silenceable ->
        Transform.Terror.silenceable ~loc:op.Ircore.op_loc
          "injected fault: %s failed after mutating the payload"
          def.Transform.Treg.t_name
      | Raise_exception ->
        raise
          (Injected_fault
             (Fmt.str "injected crash after %s mutated the payload"
                def.Transform.Treg.t_name))
    end
    else Ok ()

(** Run [f] with the injector installed as the registry interceptor. *)
let with_injector inj f = Transform.Treg.with_interceptor (intercept inj) f

(* ------------------------------------------------------------------ *)
(* Campaign                                                            *)
(* ------------------------------------------------------------------ *)

type scenario = Alternatives | Suppress

let scenario_to_string = function
  | Alternatives -> "alternatives"
  | Suppress -> "failures(suppress)"

(** Payload-mutating passes the faulted region applies. *)
let campaign_passes = [| "canonicalize"; "cse"; "licm" |]

(** The transform script under test. Region 1 mutates the payload via a
    registered pass (the injector then fails it with probability P per
    application); the recovery construct must roll it back. The
    [alternatives] script's region 2 re-reads the root handle, exercising
    the handle table after rollback. *)
let build_script ~scenario ~pass_name =
  match scenario with
  | Alternatives ->
    Transform.Build.script (fun rw root ->
        Transform.Build.alternatives rw
          [
            (fun brw ->
              ignore
                (Transform.Build.apply_registered_pass brw ~pass_name root));
            (fun brw ->
              ignore (Transform.Build.match_op brw ~name:"func.func" root));
          ])
  | Suppress ->
    Transform.Build.script (fun rw _root ->
        ignore
          (Transform.Build.nested_sequence rw
             ~failure_propagation:"suppress" (fun brw seq_root ->
               ignore
                 (Transform.Build.apply_registered_pass brw ~pass_name
                    seq_root))))

type violation = {
  v_seed : int;
  v_case : int;
  v_scenario : string;
  v_mode : string;
  v_pass : string;
  v_detail : string;
  v_module : string;  (** pre-run payload print *)
  v_path : string option;  (** reproducer file, when written *)
}

type stats = {
  fs_cases : int;
  fs_injected : int;  (** total faults injected *)
  fs_faulted_cases : int;  (** cases with at least one injected fault *)
  fs_raised : int;  (** cases using the raising mode with a fault *)
  fs_rollbacks_verified : int;
      (** cases where the byte-identical-restore invariant was checked *)
  fs_violations : violation list;
  fs_seconds : float;
}

let write_reproducer ~dir ~seed ~case (v : violation) =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let oneline s = String.map (function '\n' | '\r' -> ' ' | c -> c) s in
  let path =
    Filename.concat dir (Fmt.str "fault-seed%d-case%d.mlir" seed case)
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc
        "// otd-fuzz fault-injection reproducer\n\
         // scenario: %s  mode: %s\n\
         // seed: %d case: %d\n\
         // detail: %s\n\
         // configuration: --pass-pipeline=%s\n\
         %s\n"
        v.v_scenario v.v_mode seed case (oneline v.v_detail) v.v_pass
        v.v_module);
  path

(** Run [cases] fault-injection cases from [seed] at probability [prob].
    Returns the campaign stats; violations (if any) are also emitted as
    diagnostics on [ctx]'s engine and written under [out_dir]. *)
let run_campaign ?config ?(prob = 0.2) ?out_dir
    ?(on_case = fun _ ~failed:_ -> ()) ctx ~seed ~cases () =
  let t0 = Unix.gettimeofday () in
  let injected = ref 0 in
  let faulted_cases = ref 0 in
  let raised = ref 0 in
  let rollbacks_verified = ref 0 in
  let violations = ref [] in
  for case = 0 to cases - 1 do
    let rng = Driver.case_rng ~seed ~case in
    let m = Gen.generate ?config rng in
    let scenario =
      if Random.State.bool rng then Alternatives else Suppress
    in
    let mode =
      if Random.State.float rng 1.0 < 0.25 then Raise_exception
      else Fail_silenceable
    in
    let pass_name =
      campaign_passes.(Random.State.int rng (Array.length campaign_passes))
    in
    let script = build_script ~scenario ~pass_name in
    let pre = Printer.op_to_string m in
    let inj = create_injector ~mode ~prob rng in
    let outcome =
      (* swallow the run's own diagnostics (downgraded suppress warnings,
         contained-exception reports): the campaign only reports invariant
         violations *)
      Context.with_diag_handler ctx ignore (fun () ->
          with_injector inj (fun () ->
              match Transform.Schedule.run ctx ~script ~payload:m with
              | Ok _ -> `Ok
              | Error (Transform.Terror.Silenceable d) -> `Silenceable d
              | Error (Transform.Terror.Definite d) -> `Definite d
              | exception e -> `Escaped e))
    in
    injected := !injected + inj.fi_injected;
    if inj.fi_injected > 0 then begin
      incr faulted_cases;
      if mode = Raise_exception then incr raised
    end;
    let post = Printer.op_to_string m in
    let fault_free = not (payload_sabotaged m) in
    let verifier_clean =
      match Verifier.verify ctx m with Ok () -> true | Error _ -> false
    in
    let violation fmt =
      Fmt.kstr
        (fun detail ->
          Stats.incr stat_violations;
          let v =
            {
              v_seed = seed;
              v_case = case;
              v_scenario = scenario_to_string scenario;
              v_mode = mode_to_string mode;
              v_pass = pass_name;
              v_detail = detail;
              v_module = pre;
              v_path = None;
            }
          in
          let v =
            match out_dir with
            | Some dir ->
              { v with v_path = Some (write_reproducer ~dir ~seed ~case v) }
            | None -> v
          in
          Diag.emit (Context.diag_engine ctx)
            (Diag.error
               ~notes:
                 ([
                    Diag.note "seed %d, case %d (%s, %s, pass %s)" seed case
                      v.v_scenario v.v_mode pass_name;
                  ]
                 @
                 match v.v_path with
                 | Some p -> [ Diag.note "reproducer written to %s" p ]
                 | None -> [])
               "fault-injection invariant violated: %s" detail);
          violations := v :: !violations)
        fmt
    in
    (* ---- recovery invariants ---- *)
    (match outcome with
    | `Escaped e ->
      violation "exception escaped the interpreter: %s" (Printexc.to_string e)
    | (`Ok | `Silenceable _ | `Definite _) when not verifier_clean ->
      violation "payload fails verification after contained failure"
    | (`Ok | `Silenceable _) when inj.fi_injected > 0 ->
      (* every faulted region was rolled back (alternatives: region 1
         and/or 2; suppress: the nested sequence), and the surviving
         alternative only reads — the payload must be untouched *)
      if mode = Fail_silenceable then begin
        incr rollbacks_verified;
        if not (String.equal pre post) then
          violation
            "payload not restored byte-identically after rollback \
             (pre/post prints differ)"
        else if not fault_free then
          violation "sabotage stamp survived the rollback"
      end
    | `Ok | `Silenceable _ ->
      (* no fault injected: the run must not have produced a stamp *)
      if not fault_free then
        violation "sabotage stamp present without an injected fault"
    | `Definite d ->
      if mode = Raise_exception && inj.fi_injected > 0 then begin
        (* the barrier must have converted our raise into this error *)
        if
          not
            (contains (Diag.message d) "raised an exception"
            || contains (Diag.message d) "Injected_fault")
        then
          violation
            "definite error does not stem from the exception barrier: %s"
            (Diag.message d)
      end
      else
        violation "unexpected definite error: %s" (Diag.message d));
    on_case case ~failed:(inj.fi_injected > 0)
  done;
  {
    fs_cases = cases;
    fs_injected = !injected;
    fs_faulted_cases = !faulted_cases;
    fs_raised = !raised;
    fs_rollbacks_verified = !rollbacks_verified;
    fs_violations = List.rev !violations;
    fs_seconds = Unix.gettimeofday () -. t0;
  }
