(** Fuzzing campaign driver: generate → check oracles → shrink → report.

    Each case derives its own [Random.State] from (seed, case index), so
    campaigns are reproducible case-by-case: a failure at case 3127 of seed
    9 can be re-run alone. Failures are minimized and emitted both as
    structured {!Ir.Diag} diagnostics (through the context's engine, so
    [--diagnostics=json] consumers see them) and as crash-reproducer
    [.mlir] files in the same header format the pass manager's reproducer
    uses — a differential reproducer replays under
    [otd_opt --pass-pipeline=...]. *)

open Ir

type failure_report = {
  r_seed : int;
  r_case : int;
  r_failure : Oracle.failure;
  r_minimized : string;  (** printed minimized module *)
  r_path : string option;  (** reproducer file, when written *)
  r_culprit : Bisect.culprit option;
      (** action-counter bisection result, for differential failures *)
}

type stats = {
  s_cases : int;
  s_failures : failure_report list;  (** in case order *)
  s_seconds : float;
}

let case_rng ~seed ~case = Random.State.make [| 0x07d; seed; case |]

(** Generate the module for one (seed, case) pair — the exact module the
    campaign would test. *)
let module_for ?config ~seed ~case () =
  Gen.generate ?config (case_rng ~seed ~case)

let reproducer_text ?culprit ~seed ~case (f : Oracle.failure) minimized =
  let oneline s = String.map (function '\n' | '\r' -> ' ' | c -> c) s in
  let config_line =
    match f.Oracle.f_pipeline with
    | Some p -> Fmt.str "// configuration: --pass-pipeline=%s\n" p
    | None -> ""
  in
  let bisect_line =
    match culprit with
    | Some c ->
      (* replay just up to the culprit with
         --debug-counter TAG:0,INDEX+1 under otd-opt *)
      Fmt.str "// action-bisect: %a\n" Bisect.pp_culprit c
    | None -> ""
  in
  Fmt.str
    "// otd-fuzz crash reproducer\n\
     // oracle: %s\n\
     // seed: %d case: %d\n\
     // detail: %s\n\
     %s%s%s\n"
    f.Oracle.f_oracle seed case
    (oneline f.Oracle.f_detail)
    config_line bisect_line minimized

let write_reproducer ?culprit ~dir ~seed ~case f minimized =
  let path =
    Filename.concat dir
      (Fmt.str "fuzz-seed%d-case%d-%s.mlir" seed case f.Oracle.f_oracle)
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (reproducer_text ?culprit ~seed ~case f minimized));
  path

(** Run [cases] cases from [seed]. [on_case] is a progress hook (case
    index, failed?). Failures are emitted as diagnostics on [ctx]'s engine
    and, when [out_dir] is given, written as reproducer files.

    With [Ir.Pool.jobs () > 1] the cases — each deterministic in (seed,
    case) alone — fan across the domain pool; only the oracle runs on
    workers, while shrinking, reproducer writing, diagnostics and the
    [on_case] hook all replay on the calling domain in case order, so
    campaign output is byte-identical run-to-run at any job count. The
    sequential mode stops generating after [max_failures] failed cases;
    the parallel mode runs every case but reports the same first
    [max_failures] failures in case order. *)
let run ?config ?(pipelines = Oracle.default_pipelines) ?(shrink = true)
    ?(bisect = true) ?out_dir ?(max_failures = 10)
    ?(on_case = fun _ ~failed:_ -> ()) ctx ~seed ~cases () =
  let t0 = Unix.gettimeofday () in
  let failures = ref [] in
  let report i m f =
    let minimized_module =
      if shrink then
        Shrink.shrink m ~still_fails:(fun c ->
            Option.is_some (Oracle.recheck ctx ~pipelines ~witness:f c))
      else m
    in
    let minimized = Printer.op_to_string minimized_module in
    (* differential failures bisect to the culprit transformation unit:
       each probe replays the oracle on a fresh clone under debug
       counters, so the reproducer can name the exact action *)
    let culprit =
      if bisect && f.Oracle.f_pipeline <> None then
        Bisect.of_failure
          ~recheck:(fun () ->
            Option.is_some
              (Oracle.recheck ctx ~pipelines ~witness:f
                 (Ircore.clone_op minimized_module)))
          ()
      else None
    in
    let path =
      Option.map
        (fun dir -> write_reproducer ?culprit ~dir ~seed ~case:i f minimized)
        out_dir
    in
    Diag.emit (Context.diag_engine ctx)
      (Diag.error
         ~notes:
           ([ Diag.note "seed %d, case %d" seed i ]
           @ (match f.Oracle.f_pipeline with
             | Some p -> [ Diag.note "pipeline: %s" p ]
             | None -> [])
           @ (match culprit with
             | Some c ->
               [ Diag.note "bisected to action %a" Bisect.pp_culprit c ]
             | None -> [])
           @
           match path with
           | Some p -> [ Diag.note "reproducer written to %s" p ]
           | None -> [])
         "fuzz oracle '%s' failed: %s" f.Oracle.f_oracle f.Oracle.f_detail);
    failures :=
      { r_seed = seed; r_case = i; r_failure = f; r_minimized = minimized;
        r_path = path; r_culprit = culprit }
      :: !failures
  in
  let ran =
    if Pool.jobs () <= 1 || cases <= 1 then begin
      let case = ref 0 in
      while !case < cases && List.length !failures < max_failures do
        let i = !case in
        let m = module_for ?config ~seed ~case:i () in
        (match Oracle.run_all ctx ~pipelines m with
        | Ok () -> on_case i ~failed:false
        | Error f ->
          report i m f;
          on_case i ~failed:true);
        incr case
      done;
      !case
    end
    else begin
      let outcomes = Array.make cases None in
      Pool.run cases (fun i ->
          let m = module_for ?config ~seed ~case:i () in
          outcomes.(i) <- Some (m, Oracle.run_all ctx ~pipelines m));
      Array.iteri
        (fun i o ->
          match o with
          | None -> ()
          | Some (_, Ok ()) -> on_case i ~failed:false
          | Some (m, Error f) ->
            if List.length !failures < max_failures then begin
              report i m f;
              on_case i ~failed:true
            end)
        outcomes;
      cases
    end
  in
  {
    s_cases = ran;
    s_failures = List.rev !failures;
    s_seconds = Unix.gettimeofday () -. t0;
  }

(** Schedule-differential campaign: each case generates a fresh payload
    module and applies one of the script variants
    ({!Oracle.schedule_script}) both interpreted and compiled, requiring
    identical outcomes and payload IR. Divergences are emitted as
    diagnostics on [ctx]'s engine; no shrinking (the script, not the
    module, is usually the culprit). *)
(* flow-diff campaign tallies, visible under --stats and to tests *)
let stat_flow_accepted =
  Ir.Stats.counter ~component:"fuzz" "flow_accepted"
    ~desc:"flow-diff cases the static checker accepted"

let stat_flow_rejected =
  Ir.Stats.counter ~component:"fuzz" "flow_rejected"
    ~desc:"flow-diff cases the static checker rejected"

(** Flow-differential campaign: each case derives a payload module
    ({!Gen.generate}) and a random transform script
    ({!Script_gen.generate}) from the same per-case RNG, then checks the
    static-accept contract ({!Oracle.flow_diff}). Divergences are emitted
    as diagnostics and, when [out_dir] is given, written as reproducer
    files whose body is the {e script} (replayable under
    [otd_opt --transform ... --flow-check]). No shrinking: the script is
    the witness and is already small. *)
let run_flow_diff ?config ?out_dir ?(max_failures = 10)
    ?(on_case = fun _ ~failed:_ -> ()) ctx ~seed ~cases () =
  let t0 = Unix.gettimeofday () in
  let failures = ref [] in
  let case = ref 0 in
  while !case < cases && List.length !failures < max_failures do
    let i = !case in
    let rng = case_rng ~seed ~case:i in
    let m = Gen.generate ?config rng in
    let script = Script_gen.generate rng in
    (match Oracle.flow_diff ctx ~script m with
    | Ok Oracle.Flow_rejected ->
      Stats.incr stat_flow_rejected;
      on_case i ~failed:false
    | Ok Oracle.Flow_agreed ->
      Stats.incr stat_flow_accepted;
      on_case i ~failed:false
    | Error f ->
      let path =
        Option.map
          (fun dir -> write_reproducer ~dir ~seed ~case:i f f.Oracle.f_module)
          out_dir
      in
      Diag.emit (Context.diag_engine ctx)
        (Diag.error
           ~notes:
             ([ Diag.note "seed %d, case %d" seed i ]
             @
             match path with
             | Some p -> [ Diag.note "reproducer written to %s" p ]
             | None -> [])
           "fuzz oracle '%s' failed: %s" f.Oracle.f_oracle f.Oracle.f_detail);
      failures :=
        { r_seed = seed; r_case = i; r_failure = f;
          r_minimized = f.Oracle.f_module; r_path = path; r_culprit = None }
        :: !failures;
      on_case i ~failed:true);
    incr case
  done;
  {
    s_cases = !case;
    s_failures = List.rev !failures;
    s_seconds = Unix.gettimeofday () -. t0;
  }

let run_schedule_diff ?config ?(max_failures = 10)
    ?(on_case = fun _ ~failed:_ -> ()) ctx ~seed ~cases () =
  let t0 = Unix.gettimeofday () in
  let failures = ref [] in
  let case = ref 0 in
  while !case < cases && List.length !failures < max_failures do
    let i = !case in
    let m = module_for ?config ~seed ~case:i () in
    let script = Oracle.schedule_script ~variant:i in
    (match Oracle.schedule_differential ctx ~script m with
    | Ok () -> on_case i ~failed:false
    | Error f ->
      Diag.emit (Context.diag_engine ctx)
        (Diag.error
           ~notes:
             [
               Diag.note "seed %d, case %d, script variant %d" seed i
                 (i mod Oracle.schedule_script_variants);
             ]
           "fuzz oracle '%s' failed: %s" f.Oracle.f_oracle f.Oracle.f_detail);
      failures :=
        { r_seed = seed; r_case = i; r_failure = f;
          r_minimized = f.Oracle.f_module; r_path = None; r_culprit = None }
        :: !failures;
      on_case i ~failed:true);
    incr case
  done;
  {
    s_cases = !case;
    s_failures = List.rev !failures;
    s_seconds = Unix.gettimeofday () -. t0;
  }
