(** Containment cell: one compilation job, fully isolated.

    Every job the server admits runs through {!run}: a fresh context, a
    job-local diagnostic capture, a per-job {!Ir.Budget} (the request's
    limits clamped by server policy), and the existing exception barriers
    ({!Passes.Pass.run_pipeline} and the transform interpreter already
    convert raises into structured errors; anything that still escapes is
    caught here). A failing job produces a structured {!outcome} plus an
    on-disk crash reproducer replayable with [otd-opt]; the daemon keeps
    serving.

    The cell never touches shared mutable state except the deliberately
    shared caches (compiled schedules, results), both content-addressed.
    Cross-job contamination is policed by the engine's sentinel
    fingerprint (see [Engine]). *)

open Ir

type job = {
  jb_payload : string;  (** module text *)
  jb_script : string option;  (** transform script text *)
  jb_pipeline : string option;  (** comma-separated pass pipeline *)
  jb_max_steps : int option;  (** already clamped by policy *)
  jb_max_rewrites : int option;
  jb_deadline_ms : int option;
}

type outcome = {
  oc_result : (string, Protocol.error_class * string) result;
      (** printed output module, or (class, message) *)
  oc_fps : Protocol.fingerprints option;
      (** available once the payload parsed *)
  oc_reproducer : string option;
}

(* global statistics (Ir.Stats) *)
let stat_jobs = Stats.counter ~component:"server" "jobs_run"

let stat_contained =
  Stats.counter ~component:"server" "contained_failures"
    ~desc:"jobs that failed inside a containment cell"

let stat_crashes =
  Stats.counter ~component:"server" "exceptions_contained"
    ~desc:"OCaml exceptions converted to error responses by the cell"

let stat_reproducers = Stats.counter ~component:"server" "reproducers"
let stat_run_ms = Stats.histogram ~component:"server" "job_ms"

(** Key of the whole job: payload/script structure, pipeline text and the
    effective limits. Everything that can change the response must be in
    here — the result cache and the reproducer filenames are addressed by
    it. *)
let job_fingerprint (j : job) (fps : Protocol.fingerprints) : Fingerprint.t =
  let opt = function Some n -> n + 1 | None -> 0 in
  Fingerprint.combine fps.Protocol.fp_payload
    (Fingerprint.combine
       (Option.value fps.Protocol.fp_script ~default:17)
       (Fingerprint.combine
          (Option.value fps.Protocol.fp_pipeline ~default:19)
          (Fingerprint.combine (opt j.jb_max_steps)
             (Fingerprint.combine (opt j.jb_max_rewrites)
                (opt j.jb_deadline_ms)))))

(* ------------------------------------------------------------------ *)
(* Crash reproducers                                                   *)
(* ------------------------------------------------------------------ *)

let oneline s = String.map (function '\n' | '\r' -> ' ' | c -> c) s

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

(** Content-addressed reproducer: the filename is derived from the job
    fingerprint, so retries and identical jobs write the same file once
    and the response stays deterministic. The main file replays under
    [otd-opt] (the [// configuration:] header carries the pipeline); a
    script job gets a [-script.mlir] sibling for [--transform]. *)
let write_reproducer ~dir ~job_fp (j : job) ~cls ~detail =
  mkdir_p dir;
  let base = Fmt.str "job-%s" (Fingerprint.to_hex job_fp) in
  let path = Filename.concat dir (base ^ ".mlir") in
  let script_path = Filename.concat dir (base ^ "-script.mlir") in
  let write p content =
    let oc = open_out p in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc content)
  in
  (try
     if not (Sys.file_exists path) then begin
       write path
         (Fmt.str
            "// otd-server crash reproducer\n\
             // job: %s  class: %s\n\
             // detail: %s\n\
             %s%s%s\n"
            (Fingerprint.to_hex job_fp)
            (Protocol.class_to_string cls)
            (oneline detail)
            (match j.jb_pipeline with
            | Some p -> Fmt.str "// configuration: --pass-pipeline=%s\n" p
            | None -> "")
            (match j.jb_script with
            | Some _ ->
              Fmt.str "// transform script: %s (pass via --transform)\n"
                (Filename.basename script_path)
            | None -> "")
            j.jb_payload);
       (match j.jb_script with
       | Some s ->
         write script_path
           (Fmt.str "// otd-server reproducer script for %s\n%s\n" base s)
       | None -> ());
       Stats.incr stat_reproducers
     end;
     Some path
   with Sys_error _ -> None)

(* ------------------------------------------------------------------ *)
(* The cell                                                            *)
(* ------------------------------------------------------------------ *)

let diag_messages diags =
  String.concat "; " (List.map Diag.message diags)

(** Exceptions the barrier must never swallow (mirrors [Passes.Pass]). *)
let fatal_exn = function Sys.Break | Out_of_memory -> true | _ -> false

(** Run one job to completion inside the cell. Total: every exception
    short of [Sys.Break]/[Out_of_memory] is converted into a structured
    outcome. *)
let run ?reproducer_dir (j : job) : outcome =
  Stats.incr stat_jobs;
  let t0 = Unix.gettimeofday () in
  let fps = ref None in
  let finish result reproducer =
    Stats.observe stat_run_ms ((Unix.gettimeofday () -. t0) *. 1000.);
    (match result with Error _ -> Stats.incr stat_contained | Ok _ -> ());
    { oc_result = result; oc_fps = !fps; oc_reproducer = reproducer }
  in
  let fail ?reproducer cls fmt =
    Fmt.kstr (fun m -> finish (Error (cls, m)) reproducer) fmt
  in
  match Parser.parse_module j.jb_payload with
  | Error e -> fail Protocol.Parse "payload parse error: %s" e
  | exception ex when not (fatal_exn ex) ->
    fail Protocol.Parse "payload parse raised: %s" (Printexc.to_string ex)
  | Ok payload -> (
    let script_r =
      match j.jb_script with
      | None -> Ok None
      | Some s -> (
        match Parser.parse_module s with
        | Ok op -> Ok (Some op)
        | Error e -> Error e
        | exception ex when not (fatal_exn ex) ->
          Error (Printexc.to_string ex))
    in
    match script_r with
    | Error e -> fail Protocol.Parse "script parse error: %s" e
    | Ok script ->
      fps :=
        Some
          {
            Protocol.fp_payload = Fingerprint.op payload;
            fp_script = Option.map Fingerprint.op script;
            fp_pipeline = Option.map Fingerprint.string j.jb_pipeline;
          };
      let job_fp = job_fingerprint j (Option.get !fps) in
      let reproduce cls detail =
        match reproducer_dir with
        | None -> None
        | Some dir -> write_reproducer ~dir ~job_fp j ~cls ~detail
      in
      let contained cls fmt =
        Fmt.kstr
          (fun m -> finish (Error (cls, m)) (reproduce cls m))
          fmt
      in
      let ctx = Transform.Register.full_context () in
      let diags = ref [] in
      let collect d = diags := d :: !diags in
      let budget =
        Budget.create ?max_steps:j.jb_max_steps
          ?max_rewrites:j.jb_max_rewrites ?deadline_ms:j.jb_deadline_ms ()
      in
      (* reclassify any failure as transient once the budget tripped: the
         retry ladder keys on this *)
      let classify cls =
        match Budget.exhausted budget with
        | Some _ -> Protocol.Budget
        | None -> cls
      in
      let body () =
        match Verifier.verify ctx payload with
        | Error ds -> Error (Protocol.Verify, diag_messages ds)
        | Ok () -> (
          let pipeline_r =
            match j.jb_pipeline with
            | None -> Ok ()
            | Some str -> (
              match Passes.Pass.parse_pipeline str with
              | Error d ->
                Error (Protocol.Pipeline, Diag.message d)
              | Ok passes -> (
                match Passes.Pass.run_pipeline ctx passes payload with
                | Ok (_ : Passes.Pass.run_result) -> Ok ()
                | Error d ->
                  Error (classify Protocol.Pipeline, Diag.message d)))
          in
          match pipeline_r with
          | Error _ as e -> e
          | Ok () -> (
            let script_r =
              match script with
              | None -> Ok ()
              | Some script -> (
                match
                  Transform.Schedule.run ctx ~script ~payload
                with
                | Ok (_ : int) -> Ok ()
                | Error e ->
                  Error
                    ( classify Protocol.Transform,
                      Transform.Terror.message e ))
            in
            match script_r with
            | Error _ as e -> e
            | Ok () -> (
              match Verifier.verify ctx payload with
              | Error ds ->
                Error
                  ( Protocol.Verify,
                    Fmt.str "output verification failed: %s"
                      (diag_messages ds) )
              | Ok () -> Ok (Printer.op_to_string payload))))
      in
      let result =
        Context.with_diag_handler ctx collect (fun () ->
            Budget.with_budget budget (fun () ->
                try body ()
                with ex when not (fatal_exn ex) ->
                  Stats.incr stat_crashes;
                  Error
                    ( classify Protocol.Crash,
                      Fmt.str "contained exception: %s"
                        (Printexc.to_string ex) )))
      in
      (match result with
      | Ok output -> finish (Ok output) None
      | Error (cls, msg) -> contained cls "%s" msg))
