(** Load generator: [clients] domains each firing [requests_per_client]
    requests over their own connection, measuring per-request latency and
    classifying responses. Works against a live socket daemon (via
    {!Transport.connect}) or an in-process engine (via
    {!Engine.handle_json}) — the caller supplies a connection factory.

    Used by [bench --section server] (publishes [BENCH_server.json]) and
    the CI [server-smoke] job. *)

open Ir

type report = {
  r_requests : int;
  r_ok : int;
  r_error : int;
  r_shed : int;
  r_invalid : int;
  r_transport_errors : int;
  r_elapsed_s : float;
  r_rps : float;
  r_p50_ms : float;
  r_p99_ms : float;
  r_max_ms : float;
}

(** A connection: an rpc function plus a close hook. *)
type conn = {
  cn_rpc : Json.t -> (Json.t, string) result;
  cn_close : unit -> unit;
}

let in_process_conn engine =
  { cn_rpc = (fun j -> Ok (Engine.handle_json engine j)); cn_close = ignore }

let socket_conn path =
  let fd = Transport.connect_retry path in
  {
    cn_rpc = (fun j -> Transport.rpc fd j);
    cn_close =
      (fun () -> try Unix.close fd with Unix.Unix_error _ -> ());
  }

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else sorted.(min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1))

let status_of (j : Json.t) =
  match Option.bind (Json.member "status" j) Json.to_string_opt with
  | Some "ok" -> `Ok
  | Some "error" -> `Error
  | Some "shed" -> `Shed
  | Some "invalid" -> `Invalid
  | _ -> `Invalid

(** Run the generator. [request ~client ~i] builds the [i]-th request of
    client [client]; each client runs on its own domain with its own
    connection. *)
let run ~clients ~requests_per_client ~(connect : int -> conn)
    ~(request : client:int -> i:int -> Json.t) : report =
  let clients = max 1 clients and per = max 1 requests_per_client in
  let t0 = Unix.gettimeofday () in
  let worker c () =
    let conn = connect c in
    let lat = Array.make per 0. in
    let ok = ref 0
    and err = ref 0
    and shed = ref 0
    and invalid = ref 0
    and transport = ref 0 in
    Fun.protect
      ~finally:(fun () -> conn.cn_close ())
      (fun () ->
        for i = 0 to per - 1 do
          let s = Unix.gettimeofday () in
          (match conn.cn_rpc (request ~client:c ~i) with
          | Ok r -> (
            match status_of r with
            | `Ok -> incr ok
            | `Error -> incr err
            | `Shed -> incr shed
            | `Invalid -> incr invalid)
          | Error _ -> incr transport);
          lat.(i) <- (Unix.gettimeofday () -. s) *. 1000.
        done);
    (lat, !ok, !err, !shed, !invalid, !transport)
  in
  let domains = List.init clients (fun c -> Domain.spawn (worker c)) in
  let results = List.map Domain.join domains in
  let elapsed = Unix.gettimeofday () -. t0 in
  let all =
    Array.concat (List.map (fun (lat, _, _, _, _, _) -> lat) results)
  in
  Array.sort compare all;
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 results in
  let total = clients * per in
  {
    r_requests = total;
    r_ok = sum (fun (_, ok, _, _, _, _) -> ok);
    r_error = sum (fun (_, _, e, _, _, _) -> e);
    r_shed = sum (fun (_, _, _, s, _, _) -> s);
    r_invalid = sum (fun (_, _, _, _, iv, _) -> iv);
    r_transport_errors = sum (fun (_, _, _, _, _, t) -> t);
    r_elapsed_s = elapsed;
    r_rps = (if elapsed > 0. then float_of_int total /. elapsed else 0.);
    r_p50_ms = percentile all 0.50;
    r_p99_ms = percentile all 0.99;
    r_max_ms = (if Array.length all = 0 then 0. else all.(Array.length all - 1));
  }

let report_json r =
  Json.Obj
    [
      ("requests", Json.Int r.r_requests);
      ("ok", Json.Int r.r_ok);
      ("error", Json.Int r.r_error);
      ("shed", Json.Int r.r_shed);
      ("invalid", Json.Int r.r_invalid);
      ("transport_errors", Json.Int r.r_transport_errors);
      ("elapsed_s", Json.Float r.r_elapsed_s);
      ("rps", Json.Float r.r_rps);
      ("p50_ms", Json.Float r.r_p50_ms);
      ("p99_ms", Json.Float r.r_p99_ms);
      ("max_ms", Json.Float r.r_max_ms);
    ]

let pp_report ppf r =
  Fmt.pf ppf
    "%d requests in %.2fs (%.0f req/s): %d ok, %d error, %d shed, %d \
     invalid, %d transport; p50 %.2fms p99 %.2fms max %.2fms"
    r.r_requests r.r_elapsed_s r.r_rps r.r_ok r.r_error r.r_shed r.r_invalid
    r.r_transport_errors r.r_p50_ms r.r_p99_ms r.r_max_ms
