(** Content-addressed result cache with single-flight deduplication.

    Keys are job fingerprints (payload structure × script structure ×
    pipeline text × effective limits, see {!Cell.job_fingerprint});
    values are the deterministic, id-less response cores the engine
    builds. Concurrent identical requests cost one compile: the first
    requester takes a {e lease} and runs the job, everyone else blocks on
    the in-flight entry and receives the leader's response core when it
    lands. A leader that cannot complete (job shed at admission, or an
    escaped error) {e abandons} the lease, waking the waiters so one of
    them can lead instead — an abandoned lease never wedges the key.

    Capacity is bounded: landing a value into a full cache evicts the
    completed entries wholesale (in-flight leases survive), mirroring the
    compiled-schedule cache's pressure valve. *)

open Ir

type entry = Done of Json.t | Inflight

type t = {
  mu : Mutex.t;
  cond : Condition.t;
  tbl : (Fingerprint.t, entry) Hashtbl.t;
  capacity : int;
}

(* global statistics (Ir.Stats) *)
let stat_hits = Stats.counter ~component:"server" "cache_hits"
let stat_misses = Stats.counter ~component:"server" "cache_misses"

let stat_joins =
  Stats.counter ~component:"server" "singleflight_joins"
    ~desc:"requests that waited on an identical in-flight job"

let stat_evictions = Stats.counter ~component:"server" "cache_evictions"

let create ?(capacity = 1024) () =
  {
    mu = Mutex.create ();
    cond = Condition.create ();
    tbl = Hashtbl.create 64;
    capacity = max 1 capacity;
  }

let size t =
  Mutex.lock t.mu;
  let n = Hashtbl.length t.tbl in
  Mutex.unlock t.mu;
  n

(** Look [key] up; [`Hit core] on a completed entry, [`Lease] when the
    caller is now the leader and must eventually {!fulfill} or
    {!abandon}. Blocks while another leader is in flight. *)
let find_or_lease t key =
  Mutex.lock t.mu;
  let rec go ~joined =
    match Hashtbl.find_opt t.tbl key with
    | Some (Done v) ->
      Stats.incr stat_hits;
      Mutex.unlock t.mu;
      `Hit v
    | Some Inflight ->
      if not joined then Stats.incr stat_joins;
      Condition.wait t.cond t.mu;
      go ~joined:true
    | None ->
      Stats.incr stat_misses;
      Hashtbl.replace t.tbl key Inflight;
      Mutex.unlock t.mu;
      `Lease
  in
  go ~joined:false

let fulfill t key core =
  Mutex.lock t.mu;
  (* pressure valve: evict completed entries, keep other leaders' leases *)
  if Hashtbl.length t.tbl >= t.capacity then begin
    let doomed =
      Hashtbl.fold
        (fun k e acc -> match e with Done _ -> k :: acc | Inflight -> acc)
        t.tbl []
    in
    List.iter (Hashtbl.remove t.tbl) doomed;
    Stats.add stat_evictions (List.length doomed)
  end;
  Hashtbl.replace t.tbl key (Done core);
  Condition.broadcast t.cond;
  Mutex.unlock t.mu

let abandon t key =
  Mutex.lock t.mu;
  (match Hashtbl.find_opt t.tbl key with
  | Some Inflight -> Hashtbl.remove t.tbl key
  | _ -> ());
  Condition.broadcast t.cond;
  Mutex.unlock t.mu
