(** Wire protocol of [otd-server]: length-prefixed JSON frames.

    A frame is a 4-byte big-endian unsigned length [N] followed by [N]
    bytes of UTF-8 JSON. The framing layer is deliberately paranoid —
    it is the outermost trust boundary of the daemon, and every malformed
    input (oversized or negative prefix, truncated body, mid-frame
    disconnect, invalid UTF-8, unparseable JSON, schema violation) must
    degrade into a structured error response or a clean connection close,
    never into a daemon death (see [test_server.ml] and the
    [--server-faults] campaign).

    Request objects ({!parse_request}) and response objects
    ({!validate_response_json}) share one schema, also exposed through
    [otd-json --schema=server] so CI can validate response journals with
    the repository's own tools.

    Request schema (all requests are JSON objects):
    {v
    { "kind": "compile",          -- | "ping" | "stats" | "shutdown"
      "id": "job-1",              -- optional, echoed verbatim
      "payload": "<mlir text>",   -- required for compile
      "pipeline": "canonicalize", -- optional comma-separated pass pipeline
      "script": "<mlir text>",    -- optional transform script
      "budget": { "max_steps": N, "max_rewrites": N, "deadline_ms": N },
      "retry":  { "attempts": N },-- total attempts allowed on budget
                                  -- exhaustion (escalating tiers)
      "cache": true }             -- opt out of the result cache with false
    v}

    Response schema:
    {v
    { "id": "job-1",              -- echoed request id (when given)
      "status": "ok",             -- | "error" | "shed" | "invalid"
      "attempts": 1,              -- compile attempts consumed
      "output": "<mlir text>",    -- status=ok only
      "fingerprints": { "payload": hex, "script": hex, "pipeline": hex },
      "error": { "class": "budget", "message": "...",
                 "reproducer": "path" },      -- status=error|invalid
      "retry_after_ms": 50 }      -- status=shed only
    v}

    Responses carry no timings and no cache marker: a response is a pure
    function of the request plus server policy, which is what makes the
    campaign's byte-identity invariant (identical requests yield identical
    response bytes under any interleaving) checkable at all. *)

open Ir

(* ------------------------------------------------------------------ *)
(* Framing                                                             *)
(* ------------------------------------------------------------------ *)

let default_max_frame = 8 * 1024 * 1024

type frame_error =
  | Closed  (** clean EOF on a frame boundary *)
  | Truncated of int * int  (** got, wanted: EOF mid-prefix or mid-body *)
  | Oversized of int  (** declared length exceeds the policy limit *)
  | Negative of int  (** length prefix with the sign bit set *)

let frame_error_message = function
  | Closed -> "connection closed"
  | Truncated (got, want) ->
    Fmt.str "truncated frame: got %d of %d bytes before EOF" got want
  | Oversized n -> Fmt.str "oversized frame: %d bytes exceeds the limit" n
  | Negative n -> Fmt.str "invalid frame length prefix (%d)" n

(* read exactly [len] bytes unless EOF strikes first; returns bytes read *)
let read_exactly fd buf len =
  let rec go off =
    if off >= len then off
    else
      match Unix.read fd buf off (len - off) with
      | 0 -> off
      | n -> go (off + n)
  in
  go 0

(** Read one frame. [Error Closed] is the clean end of the stream;
    [Error (Truncated _)] is a peer that died mid-frame. Raises only on
    I/O errors ([Unix.Unix_error]), which transports treat as a close. *)
let read_frame ?(max_frame = default_max_frame) fd :
    (string, frame_error) result =
  let prefix = Bytes.create 4 in
  match read_exactly fd prefix 4 with
  | 0 -> Error Closed
  | n when n < 4 -> Error (Truncated (n, 4))
  | _ -> (
    let len = Int32.to_int (Bytes.get_int32_be prefix 0) in
    if len < 0 then Error (Negative len)
    else if len > max_frame then Error (Oversized len)
    else
      let body = Bytes.create len in
      match read_exactly fd body len with
      | n when n < len -> Error (Truncated (n, len))
      | _ -> Ok (Bytes.unsafe_to_string body))

let write_frame fd (s : string) =
  let len = String.length s in
  let buf = Bytes.create (4 + len) in
  Bytes.set_int32_be buf 0 (Int32.of_int len);
  Bytes.blit_string s 0 buf 4 len;
  let rec go off =
    if off < 4 + len then
      go (off + Unix.write fd buf off (4 + len - off))
  in
  go 0

(** Strict UTF-8 validation of a frame body. The JSON parser operates on
    bytes and would happily pass ill-formed sequences through into
    responses and journals; the protocol rejects them at the boundary. *)
let utf8_valid (s : string) =
  let n = String.length s in
  let byte i = Char.code (String.unsafe_get s i) in
  let cont i = i < n && byte i land 0xC0 = 0x80 in
  let rec go i =
    if i >= n then true
    else
      let b = byte i in
      if b < 0x80 then go (i + 1)
      else if b < 0xC2 then false (* continuation byte or overlong C0/C1 *)
      else if b < 0xE0 then cont (i + 1) && go (i + 2)
      else if b < 0xF0 then
        cont (i + 1)
        && cont (i + 2)
        (* reject overlong E0 80.. and surrogates ED A0.. *)
        && (b <> 0xE0 || byte (i + 1) >= 0xA0)
        && (b <> 0xED || byte (i + 1) < 0xA0)
        && go (i + 3)
      else if b < 0xF5 then
        cont (i + 1)
        && cont (i + 2)
        && cont (i + 3)
        && (b <> 0xF0 || byte (i + 1) >= 0x90)
        && (b <> 0xF4 || byte (i + 1) < 0x90)
        && go (i + 4)
      else false
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Requests                                                            *)
(* ------------------------------------------------------------------ *)

type budget_req = {
  br_max_steps : int option;
  br_max_rewrites : int option;
  br_deadline_ms : int option;
}

let no_budget =
  { br_max_steps = None; br_max_rewrites = None; br_deadline_ms = None }

type compile = {
  c_id : string option;
  c_payload : string;
  c_script : string option;
  c_pipeline : string option;
  c_budget : budget_req;
  c_attempts : int;  (** total attempts the client allows (>= 1) *)
  c_cache : bool;
}

type request = Compile of compile | Ping of string option | Stats | Shutdown

let ( let* ) = Result.bind

let field_opt conv name j =
  match Json.member name j with
  | None | Some Json.Null -> Ok None
  | Some v -> (
    match conv v with
    | Some x -> Ok (Some x)
    | None -> Error (Fmt.str "field %S has the wrong type" name))

let string_opt = field_opt Json.to_string_opt
let int_opt = field_opt Json.to_int_opt
let bool_opt = field_opt Json.to_bool_opt

let nonneg name = function
  | Some n when n < 0 -> Error (Fmt.str "field %S must be >= 0" name)
  | v -> Ok v

let parse_budget j =
  match Json.member "budget" j with
  | None | Some Json.Null -> Ok no_budget
  | Some (Json.Obj _ as b) ->
    let* max_steps = int_opt "max_steps" b in
    let* max_steps = nonneg "max_steps" max_steps in
    let* max_rewrites = int_opt "max_rewrites" b in
    let* max_rewrites = nonneg "max_rewrites" max_rewrites in
    let* deadline_ms = int_opt "deadline_ms" b in
    let* deadline_ms = nonneg "deadline_ms" deadline_ms in
    Ok
      {
        br_max_steps = max_steps;
        br_max_rewrites = max_rewrites;
        br_deadline_ms = deadline_ms;
      }
  | Some _ -> Error "field \"budget\" must be an object"

let parse_retry j =
  match Json.member "retry" j with
  | None | Some Json.Null -> Ok 1
  | Some (Json.Obj _ as r) -> (
    let* attempts = int_opt "attempts" r in
    match attempts with
    | None -> Ok 1
    | Some n when n >= 1 -> Ok n
    | Some n -> Error (Fmt.str "field \"attempts\" must be >= 1 (got %d)" n))
  | Some _ -> Error "field \"retry\" must be an object"

(** Parse and schema-check one request object. *)
let parse_request (j : Json.t) : (request, string) result =
  match j with
  | Json.Obj _ -> (
    let* id = string_opt "id" j in
    let* kind = string_opt "kind" j in
    match kind with
    | None -> Error "missing request field \"kind\""
    | Some "ping" -> Ok (Ping id)
    | Some "stats" -> Ok Stats
    | Some "shutdown" -> Ok Shutdown
    | Some "compile" -> (
      let* payload = string_opt "payload" j in
      match payload with
      | None -> Error "compile request missing field \"payload\""
      | Some payload ->
        let* script = string_opt "script" j in
        let* pipeline = string_opt "pipeline" j in
        let* budget = parse_budget j in
        let* attempts = parse_retry j in
        let* cache = bool_opt "cache" j in
        Ok
          (Compile
             {
               c_id = id;
               c_payload = payload;
               c_script = script;
               c_pipeline = pipeline;
               c_budget = budget;
               c_attempts = attempts;
               c_cache = Option.value cache ~default:true;
             }))
    | Some k -> Error (Fmt.str "unknown request kind %S" k))
  | _ -> Error "request must be a JSON object"

(* ------------------------------------------------------------------ *)
(* Responses                                                           *)
(* ------------------------------------------------------------------ *)

(** Failure classes carried in [error.class]. [`Budget] is the transient
    class — the only one the retry ladder re-attempts. *)
type error_class =
  | Protocol  (** malformed frame / JSON / schema violation *)
  | Parse  (** payload or script text does not parse *)
  | Verify  (** payload fails IR verification *)
  | Pipeline  (** unknown pass, or a pass failed *)
  | Transform  (** transform script failed (definite or silenceable) *)
  | Budget  (** step/rewrite/deadline budget exhausted — retryable *)
  | Crash  (** contained OCaml exception *)
  | Internal  (** server-side invariant violation (e.g. contamination) *)
  | Draining  (** server is shutting down; job rejected *)

let class_to_string = function
  | Protocol -> "protocol"
  | Parse -> "parse"
  | Verify -> "verify"
  | Pipeline -> "pipeline"
  | Transform -> "transform"
  | Budget -> "budget"
  | Crash -> "crash"
  | Internal -> "internal"
  | Draining -> "draining"

let class_of_string = function
  | "protocol" -> Some Protocol
  | "parse" -> Some Parse
  | "verify" -> Some Verify
  | "pipeline" -> Some Pipeline
  | "transform" -> Some Transform
  | "budget" -> Some Budget
  | "crash" -> Some Crash
  | "internal" -> Some Internal
  | "draining" -> Some Draining
  | _ -> None

type fingerprints = {
  fp_payload : Fingerprint.t;
  fp_script : Fingerprint.t option;
  fp_pipeline : Fingerprint.t option;
}

let fingerprints_json fps =
  Json.Obj
    ([ ("payload", Json.String (Fingerprint.to_hex fps.fp_payload)) ]
    @ (match fps.fp_script with
      | Some fp -> [ ("script", Json.String (Fingerprint.to_hex fp)) ]
      | None -> [])
    @
    match fps.fp_pipeline with
    | Some fp -> [ ("pipeline", Json.String (Fingerprint.to_hex fp)) ]
    | None -> [])

(* the id member leads so identical jobs render byte-identically with the
   id in a predictable position; cores are cached id-less and re-wrapped *)
let with_id id core =
  match (id, core) with
  | None, _ -> core
  | Some id, Json.Obj kvs -> Json.Obj (("id", Json.String id) :: kvs)
  | Some _, j -> j

(** Response cores (id-less): the cacheable, deterministic part. *)

let ok_core ?(attempts = 1) ~fps ~output () =
  Json.Obj
    [
      ("status", Json.String "ok");
      ("attempts", Json.Int attempts);
      ("fingerprints", fingerprints_json fps);
      ("output", Json.String output);
    ]

let error_core ?(attempts = 1) ?fps ?reproducer ~cls message =
  Json.Obj
    ([
       ("status", Json.String "error");
       ("attempts", Json.Int attempts);
     ]
    @ (match fps with
      | Some fps -> [ ("fingerprints", fingerprints_json fps) ]
      | None -> [])
    @ [
        ( "error",
          Json.Obj
            ([
               ("class", Json.String (class_to_string cls));
               ("message", Json.String message);
             ]
            @
            match reproducer with
            | Some path -> [ ("reproducer", Json.String path) ]
            | None -> []) );
      ])

let shed_core ~retry_after_ms =
  Json.Obj
    [
      ("status", Json.String "shed");
      ("retry_after_ms", Json.Int retry_after_ms);
    ]

let invalid_response ?id message =
  with_id id
    (Json.Obj
       [
         ("status", Json.String "invalid");
         ( "error",
           Json.Obj
             [
               ("class", Json.String (class_to_string Protocol));
               ("message", Json.String message);
             ] );
       ])

let pong_response ?id () =
  with_id id
    (Json.Obj [ ("status", Json.String "ok"); ("kind", Json.String "pong") ])

(* ------------------------------------------------------------------ *)
(* Schema validation (otd-json --schema=server)                        *)
(* ------------------------------------------------------------------ *)

let validate_request_json j =
  match parse_request j with
  | Ok _ -> Ok ()
  | Error e -> Error e

let validate_response_json j =
  match j with
  | Json.Obj _ -> (
    let str name = Option.bind (Json.member name j) Json.to_string_opt in
    match str "status" with
    | None -> Error "missing response field \"status\""
    | Some "ok" ->
      if
        Json.member "output" j <> None
        || str "kind" = Some "pong"
        || str "kind" = Some "shutdown"
        || Json.member "stats" j <> None
      then Ok ()
      else Error "ok response carries neither output, pong nor stats"
    | Some ("error" | "invalid") -> (
      match Json.member "error" j with
      | None -> Error "error response missing \"error\" object"
      | Some err -> (
        let cls = Option.bind (Json.member "class" err) Json.to_string_opt in
        match cls with
        | None -> Error "error object missing \"class\""
        | Some c -> (
          match class_of_string c with
          | Some _ ->
            if Json.member "message" err = None then
              Error "error object missing \"message\""
            else Ok ()
          | None -> Error (Fmt.str "unknown error class %S" c))))
    | Some "shed" -> (
      match
        Option.bind (Json.member "retry_after_ms" j) Json.to_int_opt
      with
      | Some _ -> Ok ()
      | None -> Error "shed response missing integer \"retry_after_ms\"")
    | Some s -> Error (Fmt.str "unknown response status %S" s))
  | _ -> Error "response must be a JSON object"

(** Validate either side of the protocol: objects with a [kind] member are
    requests, objects with a [status] member are responses. *)
let validate_json j =
  match j with
  | Json.Obj _ ->
    if Json.member "kind" j <> None && Json.member "status" j = None then
      validate_request_json j
    else if Json.member "status" j <> None then validate_response_json j
    else Error "object is neither a request (kind) nor a response (status)"
  | _ -> Error "server protocol values are JSON objects"
