(** Transports for the serving engine: a per-connection frame loop usable
    over stdio or any fd pair, a Unix-domain-socket listener with a small
    set of acceptor domains, and the client helpers the tests, the fault
    campaign and the load generator share.

    The frame loop is where protocol-level faults die. The rules, exercised
    byte-by-byte in [test_server.ml]:

    - clean EOF on a frame boundary → quiet close;
    - truncated prefix or body (peer died mid-frame) → best-effort
      [invalid] response, then close;
    - oversized or negative length prefix → [invalid] response, then close
      (the stream cannot be resynchronised);
    - invalid UTF-8, unparseable JSON or a schema violation → [invalid]
      response and the connection {e keeps serving} (framing is intact);
    - anything the engine throws short of [Sys.Break]/[Out_of_memory] →
      [internal] error response, connection keeps serving.

    Nothing a client sends terminates the daemon. *)

open Ir

(* global statistics (Ir.Stats) *)
let stat_conns = Stats.counter ~component:"server" "connections"

let stat_frame_faults =
  Stats.counter ~component:"server" "frame_faults"
    ~desc:"malformed frames answered with an invalid response"

let send fd (j : Json.t) = Protocol.write_frame fd (Json.to_line j)

(* a response write can hit EPIPE / reset when the peer is gone; that is
   the peer's problem, not the daemon's *)
let send_best_effort fd j =
  match send fd j with
  | () -> true
  | exception Unix.Unix_error (_, _, _) -> false

(** Serve one established connection until it closes, desyncs, or a
    shutdown request lands. Total: never raises on client behaviour. *)
let serve_fd ?(on_response = fun (_ : Json.t) -> ()) engine ~in_fd ~out_fd =
  Stats.incr stat_conns;
  let max_frame = (Engine.policy engine).Engine.p_max_frame in
  let respond j =
    on_response j;
    send_best_effort out_fd j
  in
  let rec loop () =
    match Protocol.read_frame ~max_frame in_fd with
    | exception Unix.Unix_error (_, _, _) -> ()
    | Error Protocol.Closed -> ()
    | Error ((Protocol.Truncated _ | Protocol.Oversized _ | Protocol.Negative _) as fe) ->
      (* the stream is no longer frame-aligned: answer and hang up *)
      Stats.incr stat_frame_faults;
      ignore
        (respond
           (Protocol.invalid_response (Protocol.frame_error_message fe)))
    | Ok body ->
      let response =
        if not (Protocol.utf8_valid body) then
          Protocol.invalid_response "frame body is not valid UTF-8"
        else
          match Json.parse body with
          | Error e ->
            Protocol.invalid_response (Fmt.str "JSON parse error: %s" e)
          | Ok j -> (
            match Protocol.parse_request j with
            | Error e ->
              let id =
                Option.bind (Json.member "id" j) Json.to_string_opt
              in
              Protocol.invalid_response ?id e
            | Ok req -> (
              try Engine.handle_request engine req
              with ex when not (Cell.fatal_exn ex) ->
                Protocol.error_core ~cls:Protocol.Internal
                  (Fmt.str "engine error: %s" (Printexc.to_string ex))))
      in
      (match response with
      | Json.Obj (("status", Json.String "invalid") :: _)
      | Json.Obj (_ :: ("status", Json.String "invalid") :: _) ->
        Stats.incr stat_frame_faults
      | _ -> ());
      if respond response && not (Engine.shutdown_requested engine) then
        loop ()
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Unix-domain-socket listener                                         *)
(* ------------------------------------------------------------------ *)

type listener = {
  l_fd : Unix.file_descr;
  l_path : string;
  l_stop : bool Atomic.t;
  l_domains : unit Domain.t list;
}

(* acceptors poll with a short select timeout so a stop flag (drain,
   SIGTERM, client shutdown request) is noticed without a wakeup pipe *)
let acceptor ?on_response engine listener () =
  while not (Atomic.get listener.l_stop) do
    match Unix.select [ listener.l_fd ] [] [] 0.25 with
    | [], _, _ -> ()
    | _ -> (
      match Unix.accept listener.l_fd with
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        () (* another acceptor won the race *)
      | exception Unix.Unix_error (_, _, _) -> ()
      | conn, _ ->
        Fun.protect
          ~finally:(fun () -> try Unix.close conn with Unix.Unix_error _ -> ())
          (fun () -> serve_fd ?on_response engine ~in_fd:conn ~out_fd:conn);
        if Engine.shutdown_requested engine then
          Atomic.set listener.l_stop true)
  done

(** Bind [path] and serve with [conns] concurrent acceptor domains.
    Returns once the listener is accepting; call {!stop_listener} (or let
    a client [shutdown] request trip the stop flag) to wind it down.
    [on_response] observes every response object sent (response
    journalling); it must be domain-safe. *)
let serve_unix ?on_response engine ~path ~conns =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.set_nonblock fd;
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 64;
  let listener =
    { l_fd = fd; l_path = path; l_stop = Atomic.make false; l_domains = [] }
  in
  let domains =
    List.init (max 1 conns) (fun _ ->
        Domain.spawn (acceptor ?on_response engine listener))
  in
  { listener with l_domains = domains }

(** Signal the acceptors to stop, wait for in-flight connections to finish
    their frame loops, close and unlink the socket. *)
let stop_listener l =
  Atomic.set l.l_stop true;
  List.iter Domain.join l.l_domains;
  (try Unix.close l.l_fd with Unix.Unix_error _ -> ());
  try Unix.unlink l.l_path with Unix.Unix_error _ -> ()

let wait_listener l = List.iter Domain.join l.l_domains

(* ------------------------------------------------------------------ *)
(* Client side                                                         *)
(* ------------------------------------------------------------------ *)

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  fd

(** Connect, retrying briefly while the daemon is still binding. *)
let connect_retry ?(tries = 50) path =
  let rec go n =
    match connect path with
    | fd -> fd
    | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _)
      when n > 0 ->
      Unix.sleepf 0.05;
      go (n - 1)
  in
  go tries

let send_request fd (j : Json.t) = send fd j

let recv_response ?max_frame fd : (Json.t, string) result =
  match Protocol.read_frame ?max_frame fd with
  | Error fe -> Error (Protocol.frame_error_message fe)
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  | Ok body -> Json.parse body

(** One request/response round trip on an established connection. *)
let rpc ?max_frame fd (j : Json.t) : (Json.t, string) result =
  match send_request fd j with
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  | () -> recv_response ?max_frame fd

(** Connect, run one rpc, close. *)
let rpc_once ?max_frame path (j : Json.t) : (Json.t, string) result =
  let fd = connect_retry path in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () -> rpc ?max_frame fd j)

(** Write raw bytes (no framing) — the fault campaign's tool for
    malformed-frame injection. *)
let send_raw fd (s : string) =
  let b = Bytes.of_string s in
  let rec go off =
    if off < Bytes.length b then
      go (off + Unix.write fd b off (Bytes.length b - off))
  in
  go 0
