(** The serving engine: admission control, worker dispatch, the retry
    ladder and graceful degradation. Transport-agnostic — connection
    loops (see {!Transport}) call {!handle_request} and block for the
    response, so one engine serves stdio, Unix-socket and in-process
    clients identically.

    Life of a compile request:

    + the request's budgets are clamped by server policy and the job key
      (payload/script structure × pipeline × limits × attempts) is
      computed;
    + the result cache is consulted ({!Rcache}): a hit answers without
      admission; otherwise the request takes the single-flight lease;
    + admission: a draining engine rejects, a full queue sheds with a
      [retry_after_ms] hint — both without burning a worker;
    + admitted jobs are submitted to the engine's private {!Ir.Pool}
      worker set and run inside a {!Cell} containment cell, re-attempted
      on the transient (budget-exhaustion) class at escalating budget
      tiers while the client's [retry.attempts] allows;
    + the deterministic response core lands in the cache (leases are
      abandoned on shed/reject so waiters can take over) and is returned
      with the request's id re-attached.

    Cross-job isolation is watched by a sentinel: a module shared by all
    workers is fingerprinted before and after every job; any drift is
    counted ([server/contamination]) and surfaced as an internal error —
    the self-test campaign asserts the counter stays at zero. *)

open Ir

type policy = {
  p_jobs : int;  (** worker domains executing containment cells *)
  p_queue_depth : int;  (** max admitted (queued + running) jobs *)
  p_max_frame : int;  (** protocol frame size limit, bytes *)
  p_default_max_steps : int option;  (** applied when the request is silent *)
  p_default_max_rewrites : int option;
  p_default_deadline_ms : int option;
  p_clamp_max_steps : int option;  (** hard per-job ceilings *)
  p_clamp_max_rewrites : int option;
  p_clamp_deadline_ms : int option;
  p_max_attempts : int;  (** retry-ladder ceiling *)
  p_retry_scale : int;  (** budget multiplier per retry tier *)
  p_backoff_ms : int;  (** base backoff between attempts *)
  p_retry_after_ms : int;  (** shed hint *)
  p_cache_capacity : int;
  p_reproducer_dir : string option;
}

let default_policy =
  {
    p_jobs = 2;
    p_queue_depth = 64;
    p_max_frame = Protocol.default_max_frame;
    p_default_max_steps = None;
    p_default_max_rewrites = None;
    p_default_deadline_ms = None;
    p_clamp_max_steps = Some 1_000_000;
    p_clamp_max_rewrites = Some 1_000_000;
    p_clamp_deadline_ms = Some 60_000;
    p_max_attempts = 4;
    p_retry_scale = 4;
    p_backoff_ms = 1;
    p_retry_after_ms = 50;
    p_cache_capacity = 1024;
    p_reproducer_dir = Some (Filename.concat "_artifacts" "server-reproducers");
  }

type t = {
  e_policy : policy;
  e_pool : Pool.t;
  e_cache : Rcache.t;
  e_mu : Mutex.t;
  e_cond : Condition.t;
  mutable e_admitted : int;
  mutable e_draining : bool;
  e_shutdown : bool Atomic.t;  (** a client asked for shutdown *)
  e_sentinel : Ircore.op;  (** shared tripwire for cross-job contamination *)
  e_sentinel_fp : Fingerprint.t;
}

(* global statistics (Ir.Stats) *)
let stat_requests = Stats.counter ~component:"server" "requests"
let stat_sheds = Stats.counter ~component:"server" "sheds"

let stat_rejected_draining =
  Stats.counter ~component:"server" "rejected_draining"

let stat_retries =
  Stats.counter ~component:"server" "retries"
    ~desc:"budget-exhausted attempts re-run at a higher tier"

let stat_contamination =
  Stats.counter ~component:"server" "contamination"
    ~desc:"jobs after which the shared sentinel fingerprint drifted"

let sentinel_text =
  {|"builtin.module"() ({
  "func.func"() ({
  ^bb0(%a: i64, %b: i64):
    %0 = "arith.addi"(%a, %b) : (i64, i64) -> i64
    "func.return"(%0) : (i64) -> ()
  }) {sym_name = "server_sentinel", function_type = (i64, i64) -> i64} : () -> ()
}) : () -> ()|}

let create ?(policy = default_policy) () =
  let sentinel =
    match Parser.parse_module sentinel_text with
    | Ok m -> m
    | Error e -> failwith ("server sentinel does not parse: " ^ e)
  in
  {
    e_policy = policy;
    (* [jobs + 1]: the engine itself never participates in fan-outs, so a
       pool sized one above the worker count yields exactly [p_jobs]
       dedicated worker domains behind [Pool.async] *)
    e_pool = Pool.create ~jobs:(max 1 policy.p_jobs + 1);
    e_cache = Rcache.create ~capacity:policy.p_cache_capacity ();
    e_mu = Mutex.create ();
    e_cond = Condition.create ();
    e_admitted = 0;
    e_draining = false;
    e_shutdown = Atomic.make false;
    e_sentinel = sentinel;
    e_sentinel_fp = Fingerprint.op sentinel;
  }

let policy t = t.e_policy
let shutdown_requested t = Atomic.get t.e_shutdown
let draining t =
  Mutex.lock t.e_mu;
  let d = t.e_draining in
  Mutex.unlock t.e_mu;
  d

(* ------------------------------------------------------------------ *)
(* Budget clamping                                                     *)
(* ------------------------------------------------------------------ *)

(* request value, else policy default, capped by the policy ceiling; an
   unlimited request under a ceiling gets the ceiling itself *)
let clamp ~default ~ceiling requested =
  let v = match requested with Some _ as r -> r | None -> default in
  match (v, ceiling) with
  | Some v, Some c -> Some (min v c)
  | None, Some c -> Some c
  | v, None -> v

let effective_job (p : policy) (c : Protocol.compile) : Cell.job =
  {
    Cell.jb_payload = c.Protocol.c_payload;
    jb_script = c.Protocol.c_script;
    jb_pipeline = c.Protocol.c_pipeline;
    jb_max_steps =
      clamp ~default:p.p_default_max_steps ~ceiling:p.p_clamp_max_steps
        c.Protocol.c_budget.Protocol.br_max_steps;
    jb_max_rewrites =
      clamp ~default:p.p_default_max_rewrites
        ~ceiling:p.p_clamp_max_rewrites
        c.Protocol.c_budget.Protocol.br_max_rewrites;
    jb_deadline_ms =
      clamp ~default:p.p_default_deadline_ms ~ceiling:p.p_clamp_deadline_ms
        c.Protocol.c_budget.Protocol.br_deadline_ms;
  }

let scale_budgets (p : policy) (j : Cell.job) : Cell.job =
  let scale ceiling = function
    | None -> None
    | Some v -> (
      let v = v * p.p_retry_scale in
      match ceiling with Some c -> Some (min v c) | None -> Some v)
  in
  {
    j with
    Cell.jb_max_steps = scale p.p_clamp_max_steps j.Cell.jb_max_steps;
    jb_max_rewrites = scale p.p_clamp_max_rewrites j.Cell.jb_max_rewrites;
    jb_deadline_ms = scale p.p_clamp_deadline_ms j.Cell.jb_deadline_ms;
  }

(* ------------------------------------------------------------------ *)
(* Admission                                                           *)
(* ------------------------------------------------------------------ *)

let admit t =
  Mutex.lock t.e_mu;
  let verdict =
    if t.e_draining then `Draining
    else if t.e_admitted >= t.e_policy.p_queue_depth then `Shed
    else begin
      t.e_admitted <- t.e_admitted + 1;
      `Admitted
    end
  in
  Mutex.unlock t.e_mu;
  verdict

let release t =
  Mutex.lock t.e_mu;
  t.e_admitted <- t.e_admitted - 1;
  if t.e_admitted = 0 then Condition.broadcast t.e_cond;
  Mutex.unlock t.e_mu

(** Stop admitting new jobs and wait for every in-flight job to finish.
    Idempotent; [serve] loops keep answering with [Draining] rejections
    while the drain completes. *)
let drain t =
  Mutex.lock t.e_mu;
  t.e_draining <- true;
  while t.e_admitted > 0 do
    Condition.wait t.e_cond t.e_mu
  done;
  Mutex.unlock t.e_mu

(** Drain, then stop the worker domains. The engine is unusable after. *)
let close t =
  drain t;
  Pool.shutdown t.e_pool

(* ------------------------------------------------------------------ *)
(* Promises (worker -> requester completion signalling)                *)
(* ------------------------------------------------------------------ *)

type 'a promise = {
  pr_mu : Mutex.t;
  pr_cond : Condition.t;
  mutable pr_value : 'a option;
}

let promise () =
  { pr_mu = Mutex.create (); pr_cond = Condition.create (); pr_value = None }

let resolve pr v =
  Mutex.lock pr.pr_mu;
  pr.pr_value <- Some v;
  Condition.broadcast pr.pr_cond;
  Mutex.unlock pr.pr_mu

let await pr =
  Mutex.lock pr.pr_mu;
  while pr.pr_value = None do
    Condition.wait pr.pr_cond pr.pr_mu
  done;
  let v = Option.get pr.pr_value in
  Mutex.unlock pr.pr_mu;
  v

(* ------------------------------------------------------------------ *)
(* Job execution (on a worker domain)                                  *)
(* ------------------------------------------------------------------ *)

(** Run the retry ladder for one admitted job. Executes inside a worker;
    returns the deterministic response core. *)
let run_attempts t ~attempts_allowed (base : Cell.job) : Json.t =
  let p = t.e_policy in
  let rec attempt k (job : Cell.job) =
    let outcome = Cell.run ?reproducer_dir:p.p_reproducer_dir job in
    (* sentinel tripwire: shared state must be exactly as before the job *)
    let outcome =
      if Fingerprint.equal (Fingerprint.op t.e_sentinel) t.e_sentinel_fp
      then outcome
      else begin
        Stats.incr stat_contamination;
        {
          outcome with
          Cell.oc_result =
            Error
              ( Protocol.Internal,
                "cross-job contamination detected: shared sentinel \
                 fingerprint drifted" );
        }
      end
    in
    match outcome.Cell.oc_result with
    | Error (Protocol.Budget, _) when k < attempts_allowed ->
      Stats.incr stat_retries;
      (* linear-ish backoff: tiny in-process, real daemons configure it *)
      if p.p_backoff_ms > 0 then
        Unix.sleepf (float_of_int (p.p_backoff_ms * k) /. 1000.);
      attempt (k + 1) (scale_budgets p job)
    | Error (cls, msg) ->
      Protocol.error_core ~attempts:k ?fps:outcome.Cell.oc_fps
        ?reproducer:outcome.Cell.oc_reproducer ~cls msg
    | Ok output ->
      Protocol.ok_core ~attempts:k
        ~fps:
          (match outcome.Cell.oc_fps with
          | Some fps -> fps
          | None ->
            (* unreachable: success implies the payload parsed *)
            {
              Protocol.fp_payload = 0;
              fp_script = None;
              fp_pipeline = None;
            })
        ~output ()
  in
  attempt 1 base

let run_on_pool t ~attempts_allowed base =
  let pr = promise () in
  Pool.async t.e_pool (fun () ->
      resolve pr (run_attempts t ~attempts_allowed base));
  await pr

(* ------------------------------------------------------------------ *)
(* Request handling                                                    *)
(* ------------------------------------------------------------------ *)

let retry_after_ms t =
  let p = t.e_policy in
  Mutex.lock t.e_mu;
  let backlog = t.e_admitted in
  Mutex.unlock t.e_mu;
  p.p_retry_after_ms * max 1 (backlog / max 1 p.p_jobs)

(** Key of the request in the result cache: the cell's job fingerprint
    extended with the attempts allowance (a retried job can succeed where
    a single-shot one fails, so they must not share an entry). *)
let request_key job fps ~attempts_allowed =
  Fingerprint.combine (Cell.job_fingerprint job fps) attempts_allowed

let compile_core t (c : Protocol.compile) : Json.t =
  let p = t.e_policy in
  let job = effective_job p c in
  let attempts_allowed = max 1 (min c.Protocol.c_attempts p.p_max_attempts) in
  (* key the job by structure: requires a parse, which also answers
     parse-errors cheaply on the connection domain without admission *)
  match Parser.parse_module job.Cell.jb_payload with
  | Error e ->
    Protocol.error_core ~cls:Protocol.Parse
      (Fmt.str "payload parse error: %s" e)
  | exception ex when not (Cell.fatal_exn ex) ->
    Protocol.error_core ~cls:Protocol.Parse
      (Fmt.str "payload parse raised: %s" (Printexc.to_string ex))
  | Ok payload -> (
    let script_r =
      match job.Cell.jb_script with
      | None -> Ok None
      | Some s -> (
        match Parser.parse_module s with
        | Ok op -> Ok (Some op)
        | Error e -> Error e
        | exception ex when not (Cell.fatal_exn ex) ->
          Error (Printexc.to_string ex))
    in
    match script_r with
    | Error e ->
      Protocol.error_core ~cls:Protocol.Parse
        (Fmt.str "script parse error: %s" e)
    | Ok script ->
      let fps =
        {
          Protocol.fp_payload = Fingerprint.op payload;
          fp_script = Option.map Fingerprint.op script;
          fp_pipeline = Option.map Fingerprint.string job.Cell.jb_pipeline;
        }
      in
      let key = request_key job fps ~attempts_allowed in
      let admit_and_run () =
        match admit t with
        | `Draining ->
          Stats.incr stat_rejected_draining;
          `Uncacheable
            (Protocol.error_core ~cls:Protocol.Draining
               "server is draining; job rejected")
        | `Shed ->
          Stats.incr stat_sheds;
          `Uncacheable (Protocol.shed_core ~retry_after_ms:(retry_after_ms t))
        | `Admitted ->
          let core =
            Fun.protect
              ~finally:(fun () -> release t)
              (fun () -> run_on_pool t ~attempts_allowed job)
          in
          `Cacheable core
      in
      if not c.Protocol.c_cache then begin
        match admit_and_run () with
        | `Uncacheable core | `Cacheable core -> core
      end
      else
        match Rcache.find_or_lease t.e_cache key with
        | `Hit core -> core
        | `Lease -> (
          match admit_and_run () with
          | `Cacheable core ->
            Rcache.fulfill t.e_cache key core;
            core
          | `Uncacheable core ->
            Rcache.abandon t.e_cache key;
            core
          | exception ex ->
            Rcache.abandon t.e_cache key;
            raise ex))

let stats_json t =
  let count name =
    match Stats.find_counter ~component:"server" name with
    | Some c -> Stats.value c
    | None -> 0
  in
  Mutex.lock t.e_mu;
  let admitted = t.e_admitted and draining = t.e_draining in
  Mutex.unlock t.e_mu;
  Json.Obj
    [
      ("requests", Json.Int (count "requests"));
      ("jobs_run", Json.Int (count "jobs_run"));
      ("cache_hits", Json.Int (count "cache_hits"));
      ("cache_misses", Json.Int (count "cache_misses"));
      ("singleflight_joins", Json.Int (count "singleflight_joins"));
      ("cache_entries", Json.Int (Rcache.size t.e_cache));
      ("sheds", Json.Int (count "sheds"));
      ("rejected_draining", Json.Int (count "rejected_draining"));
      ("retries", Json.Int (count "retries"));
      ("contained_failures", Json.Int (count "contained_failures"));
      ("exceptions_contained", Json.Int (count "exceptions_contained"));
      ("reproducers", Json.Int (count "reproducers"));
      ("contamination", Json.Int (count "contamination"));
      ("admitted", Json.Int admitted);
      ("draining", Json.Bool draining);
      ("workers", Json.Int t.e_policy.p_jobs);
    ]

(** Handle one parsed request, blocking until the response is ready. *)
let handle_request t (req : Protocol.request) : Json.t =
  Stats.incr stat_requests;
  match req with
  | Protocol.Ping id -> Protocol.pong_response ?id ()
  | Protocol.Stats ->
    Json.Obj
      [
        ("status", Json.String "ok");
        ("kind", Json.String "stats");
        ("stats", stats_json t);
      ]
  | Protocol.Shutdown ->
    Atomic.set t.e_shutdown true;
    Json.Obj
      [ ("status", Json.String "ok"); ("kind", Json.String "shutdown") ]
  | Protocol.Compile c ->
    Protocol.with_id c.Protocol.c_id (compile_core t c)

(** Convenience for in-process clients and tests: parse, validate and
    handle one request value. *)
let handle_json t (j : Json.t) : Json.t =
  match Protocol.parse_request j with
  | Ok req -> handle_request t req
  | Error e ->
    let id = Option.bind (Json.member "id" j) Json.to_string_opt in
    Protocol.invalid_response ?id e
