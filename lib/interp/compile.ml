(** Compilation of payload IR to OCaml closures for execution on the
    {!Machine} model. Each SSA value gets an environment slot; each op
    becomes a closure that reads operand slots, charges machine cost and
    writes result slots. Structured control flow (scf) compiles to native
    OCaml loops; unstructured control flow (cf/llvm branches) compiles to a
    block-dispatch loop — so IR before and after lowering passes can be
    executed and compared. *)

open Ir
open Dialects
module R = Rvalue

exception Unsupported of string

let unsupported fmt = Fmt.kstr (fun m -> raise (Unsupported m)) fmt

type extern_fn = Machine.t -> R.t list -> R.t list

type env = R.t array

type compiled_fn = { cf_num_slots : int; cf_run : Machine.t -> R.t list -> R.t list }

type cctx = {
  ir_ctx : Context.t;
  module_ : Ircore.op option;
  externs : (string, extern_fn) Hashtbl.t;
  compiled : (int, compiled_fn) Hashtbl.t;  (** func op id -> compiled *)
}

let create_cctx ?(externs = Hashtbl.create 8) ?module_ ir_ctx =
  { ir_ctx; module_; externs; compiled = Hashtbl.create 8 }

let register_extern cctx name fn = Hashtbl.replace cctx.externs name fn

(* ------------------------------------------------------------------ *)
(* Slot assignment (per function)                                      *)
(* ------------------------------------------------------------------ *)

type slots = { table : (int, int) Hashtbl.t; mutable count : int }

let slot_of slots (v : Ircore.value) =
  match Hashtbl.find_opt slots.table v.Ircore.v_id with
  | Some s -> s
  | None ->
    let s = slots.count in
    slots.count <- slots.count + 1;
    Hashtbl.replace slots.table v.Ircore.v_id s;
    s

(* control-flow outcome of executing a region's block *)
type flow =
  | Done of R.t list  (** region exited (yield/return/condition false) *)
  | Jump of Ircore.block * R.t list

(* ------------------------------------------------------------------ *)
(* Helpers                                                             *)
(* ------------------------------------------------------------------ *)

let elt_bytes = function
  | Typ.Float Typ.F64 -> 8
  | Typ.Float _ -> 4
  | Typ.Integer n -> max 1 (n / 8)
  | Typ.Index -> 8
  | _ -> 4

let is_float_typ t =
  match t with
  | Typ.Float _ -> true
  | Typ.Vector (_, Typ.Float _) -> true
  | _ -> false

let geti (env : env) s = R.as_int env.(s)
let getf (env : env) s = R.as_float env.(s)

let int_binop os rs f =
  let a = os.(0) and b = os.(1) in
  fun machine (env : env) ->
    Machine.int_op machine;
    env.(rs.(0)) <- R.Int (f (geti env a) (geti env b))

let result_is_vec op =
  match Ircore.value_typ (Ircore.result op) with
  | Typ.Vector _ -> true
  | _ -> false

let float_binop op os rs f =
  let a = os.(0) and b = os.(1) in
  if result_is_vec op then fun machine (env : env) ->
    let va = R.as_vec env.(a) and vb = R.as_vec env.(b) in
    Machine.vector_op machine;
    env.(rs.(0)) <- R.Vec (Array.init (Array.length va) (fun i -> f va.(i) vb.(i)))
  else fun machine (env : env) ->
    Machine.float_op machine;
    env.(rs.(0)) <- R.Float (f (getf env a) (getf env b))

let float_unop op os rs f =
  let a = os.(0) in
  if result_is_vec op then fun machine (env : env) ->
    let va = R.as_vec env.(a) in
    Machine.vector_op machine;
    env.(rs.(0)) <- R.Vec (Array.map f va)
  else fun machine (env : env) ->
    Machine.float_op machine;
    env.(rs.(0)) <- R.Float (f (getf env a))

(* ------------------------------------------------------------------ *)
(* The compiler                                                        *)
(* ------------------------------------------------------------------ *)

let rec compile_func cctx (func_op : Ircore.op) : compiled_fn =
  match Hashtbl.find_opt cctx.compiled func_op.Ircore.op_id with
  | Some cf -> cf
  | None ->
    let slots = { table = Hashtbl.create 64; count = 0 } in
    let entry =
      match Func.entry_block func_op with
      | Some b -> b
      | None -> unsupported "function %s has no body" (Func.name func_op)
    in
    let region =
      match func_op.Ircore.regions with [ r ] -> r | _ -> assert false
    in
    let arg_slots = List.map (slot_of slots) (Ircore.block_args entry) in
    let run_region = compile_region cctx slots region in
    (* placeholder registered first to support recursion *)
    let cf_ref = ref None in
    let cf =
      {
        cf_num_slots = 0;
        cf_run =
          (fun machine args ->
            match !cf_ref with
            | Some f -> f machine args
            | None -> assert false);
      }
    in
    Hashtbl.replace cctx.compiled func_op.Ircore.op_id cf;
    let num_slots = slots.count in
    let run machine args =
      let env = Array.make (max 1 num_slots) R.Unit in
      (try
         List.iter2 (fun s v -> env.(s) <- v) arg_slots args
       with Invalid_argument _ ->
         unsupported "call to %s: argument arity mismatch" (Func.name func_op));
      run_region machine env
    in
    cf_ref := Some run;
    let cf = { cf_num_slots = num_slots; cf_run = run } in
    Hashtbl.replace cctx.compiled func_op.Ircore.op_id cf;
    cf

(** Compile a region into [machine -> env -> results]. *)
and compile_region cctx slots (region : Ircore.region) :
    Machine.t -> env -> R.t list =
  let blocks = Ircore.region_blocks region in
  match blocks with
  | [] -> fun _ _ -> []
  | [ block ] ->
    let body = compile_straightline cctx slots block in
    let term = compile_terminator cctx slots block in
    fun machine env ->
      body machine env;
      (match term machine env with
      | Done vs -> vs
      | Jump _ -> unsupported "branch out of a single-block region")
  | blocks ->
    (* CFG: block-dispatch loop *)
    let compiled =
      List.map
        (fun b ->
          let arg_slots = List.map (slot_of slots) (Ircore.block_args b) in
          ( b.Ircore.b_id,
            (arg_slots, compile_straightline cctx slots b,
             compile_terminator cctx slots b) ))
        blocks
    in
    let table = Hashtbl.create 8 in
    List.iter (fun (id, c) -> Hashtbl.replace table id c) compiled;
    let entry = List.hd blocks in
    fun machine env ->
      let rec go (b : Ircore.block) (args : R.t list option) =
        let arg_slots, body, term = Hashtbl.find table b.Ircore.b_id in
        (* entry-block args are pre-set by the caller (function arguments) *)
        (match args with
        | Some args -> List.iter2 (fun s v -> env.(s) <- v) arg_slots args
        | None -> ());
        body machine env;
        match term machine env with
        | Done vs -> vs
        | Jump (dest, args) -> go dest (Some args)
      in
      go entry None

(** Compile all non-terminator ops of a block into one closure. *)
and compile_straightline cctx slots (block : Ircore.block) :
    Machine.t -> env -> unit =
  let ops = Ircore.block_ops block in
  let ops =
    (* last op is the terminator when the block has one *)
    match List.rev ops with
    | last :: _ when is_terminator cctx last ->
      List.filter (fun o -> not (o == last)) ops
    | _ -> ops
  in
  let closures = List.map (compile_op cctx slots) ops in
  let arr = Array.of_list closures in
  fun machine env ->
    for i = 0 to Array.length arr - 1 do
      arr.(i) machine env
    done

and is_terminator cctx (op : Ircore.op) =
  Context.op_has_trait cctx.ir_ctx op Context.Terminator

and compile_terminator cctx slots (block : Ircore.block) :
    Machine.t -> env -> flow =
  match Ircore.block_last_op block with
  | Some op when is_terminator cctx op -> (
    let operand_slots = List.map (slot_of slots) (Ircore.operands op) in
    match op.Ircore.op_name with
    | "scf.yield" | "func.return" | "llvm.return" ->
      fun _ env -> Done (List.map (fun s -> env.(s)) operand_slots)
    | "scf.condition" ->
      (* first operand: continue?; rest: forwarded values *)
      fun _ env ->
        Done (List.map (fun s -> env.(s)) operand_slots)
    | "cf.br" | "llvm.br" ->
      let dest = op.Ircore.successors.(0) in
      fun machine env ->
        Machine.int_op machine;
        Jump (dest, List.map (fun s -> env.(s)) operand_slots)
    | "cf.cond_br" | "llvm.cond_br" ->
      let t_dest = op.Ircore.successors.(0) in
      let f_dest = op.Ircore.successors.(1) in
      let _, nt, nf = Cf.cond_segments op in
      let all = Array.of_list operand_slots in
      let cond_slot = all.(0) in
      let t_slots = Array.to_list (Array.sub all 1 nt) in
      let f_slots = Array.to_list (Array.sub all (1 + nt) nf) in
      fun machine env ->
        Machine.int_op machine;
        if R.as_bool env.(cond_slot) then
          Jump (t_dest, List.map (fun s -> env.(s)) t_slots)
        else Jump (f_dest, List.map (fun s -> env.(s)) f_slots)
    | name -> unsupported "terminator %s" name)
  | _ -> fun _ _ -> Done []

(* ------------------------------------------------------------------ *)
(* Individual operations                                               *)
(* ------------------------------------------------------------------ *)

and compile_op cctx slots (op : Ircore.op) : Machine.t -> env -> unit =
  let name = op.Ircore.op_name in
  let os = Array.of_list (List.map (slot_of slots) (Ircore.operands op)) in
  let rs = Array.of_list (List.map (slot_of slots) (Ircore.results op)) in
  let result_typ i = Ircore.value_typ (Ircore.result ~index:i op) in
  match name with
  (* ---------------- constants ---------------- *)
  | "arith.constant" | "index.constant" | "llvm.mlir.constant" -> (
    let rv =
      match Ircore.attr op "value" with
      | Some (Attr.Int (n, _)) -> R.Int n
      | Some (Attr.Float (f, _)) -> R.Float f
      | Some (Attr.Bool b) -> R.Bool b
      | Some a -> unsupported "constant attribute %a" Attr.pp a
      | None -> unsupported "constant without value"
    in
    fun machine env ->
      Machine.int_op machine;
      env.(rs.(0)) <- rv)
  (* ---------------- integer/float binary ---------------- *)
  | "arith.addi" | "index.add" | "llvm.add" -> int_binop os rs ( + )
  | "arith.subi" | "index.sub" | "llvm.sub" -> int_binop os rs ( - )
  | "arith.muli" | "index.mul" | "llvm.mul" -> int_binop os rs ( * )
  | "arith.divsi" | "arith.divui" | "llvm.sdiv" | "llvm.udiv" ->
    int_binop os rs ( / )
  | "arith.remsi" | "arith.remui" | "llvm.srem" | "llvm.urem" ->
    int_binop os rs Int.rem
  | "arith.andi" | "llvm.and" -> int_binop os rs ( land )
  | "arith.ori" | "llvm.or" -> int_binop os rs ( lor )
  | "arith.xori" | "llvm.xor" -> int_binop os rs ( lxor )
  | "arith.maxsi" | "llvm.smax" -> int_binop os rs max
  | "arith.minsi" | "llvm.smin" -> int_binop os rs min
  | "arith.shli" | "llvm.shl" -> int_binop os rs (fun a b -> a lsl b)
  | "arith.shrsi" | "llvm.ashr" -> int_binop os rs (fun a b -> a asr b)
  | "llvm.lshr" -> int_binop os rs (fun a b -> a lsr b)
  | "arith.addf" | "llvm.fadd" -> float_binop op os rs ( +. )
  | "arith.subf" | "llvm.fsub" -> float_binop op os rs ( -. )
  | "arith.mulf" | "llvm.fmul" -> float_binop op os rs ( *. )
  | "arith.divf" | "llvm.fdiv" -> float_binop op os rs ( /. )
  | "arith.maximumf" | "llvm.fmax" -> float_binop op os rs Float.max
  | "arith.minimumf" | "llvm.fmin" -> float_binop op os rs Float.min
  | "arith.cmpi" | "index.cmp" | "llvm.icmp" -> (
    let pred =
      match Dutil.str_attr_of op "predicate" with
      | Some p -> (
        match Arith.ipred_of_string p with
        | Some p -> p
        | None -> unsupported "cmpi predicate %s" p)
      | None -> unsupported "cmpi without predicate"
    in
    let a = os.(0) and b = os.(1) in
    fun machine env ->
      Machine.int_op machine;
      env.(rs.(0)) <- R.Bool (Arith.eval_ipred pred (geti env a) (geti env b)))
  | "arith.cmpf" | "llvm.fcmp" -> (
    let pred =
      Option.value ~default:"oeq" (Dutil.str_attr_of op "predicate")
    in
    let f =
      match pred with
      | "oeq" | "ueq" -> ( = )
      | "one" | "une" -> ( <> )
      | "olt" | "ult" -> ( < )
      | "ole" | "ule" -> ( <= )
      | "ogt" | "ugt" -> ( > )
      | "oge" | "uge" -> ( >= )
      | p -> unsupported "cmpf predicate %s" p
    in
    let a = os.(0) and b = os.(1) in
    fun machine env ->
      Machine.float_op machine;
      env.(rs.(0)) <- R.Bool (f (getf env a) (getf env b)))
  | "arith.select" | "llvm.select" -> (
    let c = os.(0) and a = os.(1) and b = os.(2) in
    fun machine env ->
      Machine.int_op machine;
      env.(rs.(0)) <- (if R.as_bool env.(c) then env.(a) else env.(b)))
  | "arith.index_cast" | "arith.extsi" | "arith.extui" | "arith.trunci"
  | "index.casts" -> (
    let a = os.(0) in
    fun machine env ->
      Machine.int_op machine;
      env.(rs.(0)) <- R.Int (geti env a))
  | "arith.sitofp" | "llvm.sitofp" -> (
    let a = os.(0) in
    fun machine env ->
      Machine.float_op machine;
      env.(rs.(0)) <- R.Float (float_of_int (geti env a)))
  | "arith.fptosi" | "llvm.fptosi" -> (
    let a = os.(0) in
    fun machine env ->
      Machine.float_op machine;
      env.(rs.(0)) <- R.Int (int_of_float (getf env a)))
  | "arith.extf" | "arith.truncf" | "arith.bitcast" | "llvm.bitcast"
  | "llvm.fpext" | "llvm.fptrunc" -> (
    let a = os.(0) in
    fun machine env ->
      Machine.int_op machine;
      env.(rs.(0)) <- env.(a))
  (* ---------------- unary float math ---------------- *)
  | "math.exp" -> float_unop op os rs Float.exp
  | "math.tanh" -> float_unop op os rs Float.tanh
  | "math.sqrt" -> float_unop op os rs Float.sqrt
  | "math.rsqrt" -> float_unop op os rs (fun x -> 1.0 /. Float.sqrt x)
  | "math.log" -> float_unop op os rs Float.log
  | "math.absf" -> float_unop op os rs Float.abs
  (* ---------------- memref ---------------- *)
  | "memref.alloc" | "memref.alloca" -> (
    let typ = result_typ 0 in
    let dims, elt =
      match typ with
      | Typ.Memref (dims, elt, _) -> (dims, elt)
      | t -> unsupported "alloc of %a" Typ.pp t
    in
    let bytes_per = elt_bytes elt in
    fun machine env ->
      let sizes = Array.make (List.length dims) 0 in
      let dyn = ref 0 in
      List.iteri
        (fun i d ->
          match d with
          | Typ.Static n -> sizes.(i) <- n
          | Typ.Dynamic ->
            sizes.(i) <- geti env os.(!dyn);
            incr dyn)
        dims;
      let n = Array.fold_left ( * ) 1 sizes in
      let base = Machine.alloc_address machine (n * bytes_per) in
      let buf = { R.data = Array.make n 0.0; base; elt_bytes = bytes_per } in
      Machine.add_cycles machine 20.0;
      env.(rs.(0)) <-
        R.Memref
          {
            R.buf;
            offset = 0;
            sizes;
            strides = R.row_major_strides sizes;
          })
  | "memref.dealloc" -> fun machine _ -> Machine.add_cycles machine 10.0
  | "memref.load" -> (
    let m = os.(0) in
    let idx_slots = Array.sub os 1 (Array.length os - 1) in
    fun machine env ->
      let view = R.as_view env.(m) in
      let li = ref view.R.offset in
      Array.iteri
        (fun i s -> li := !li + (geti env s * view.R.strides.(i)))
        idx_slots;
      Machine.memory_access machine ~is_store:false
        (R.byte_address view !li)
        view.R.buf.elt_bytes;
      env.(rs.(0)) <- R.Float view.R.buf.data.(!li))
  | "memref.store" -> (
    let v = os.(0) and m = os.(1) in
    let idx_slots = Array.sub os 2 (Array.length os - 2) in
    fun machine env ->
      let view = R.as_view env.(m) in
      let li = ref view.R.offset in
      Array.iteri
        (fun i s -> li := !li + (geti env s * view.R.strides.(i)))
        idx_slots;
      Machine.memory_access machine ~is_store:true
        (R.byte_address view !li)
        view.R.buf.elt_bytes;
      view.R.buf.data.(!li) <- R.as_float env.(v))
  (* ---------------- llvm memory (post finalize-memref-to-llvm) ------ *)
  | "llvm.alloca" -> (
    let bytes_per =
      match Ircore.attr op "elem_bytes" with
      | Some (Attr.Int (n, _)) -> n
      | _ -> 8
    in
    fun machine env ->
      let n = if Array.length os > 0 then max 1 (geti env os.(0)) else 1 in
      let base = Machine.alloc_address machine (n * bytes_per) in
      let buf = { R.data = Array.make n 0.0; base; elt_bytes = bytes_per } in
      Machine.add_cycles machine 20.0;
      env.(rs.(0)) <-
        R.Memref { R.buf; offset = 0; sizes = [| n |]; strides = [| 1 |] })
  | "llvm.getelementptr" -> (
    let idx_slots = Array.sub os 1 (Array.length os - 1) in
    fun _machine env ->
      let view = R.as_view env.(os.(0)) in
      let li = ref view.R.offset in
      Array.iteri
        (fun i s ->
          let stride =
            if i < Array.length view.R.strides then view.R.strides.(i) else 1
          in
          li := !li + (geti env s * stride))
        idx_slots;
      env.(rs.(0)) <- R.Memref { view with R.offset = !li })
  | "llvm.load" -> (
    let is_f = is_float_typ (result_typ 0) in
    fun machine env ->
      let view = R.as_view env.(os.(0)) in
      let li = view.R.offset in
      Machine.memory_access machine ~is_store:false
        (R.byte_address view li)
        view.R.buf.elt_bytes;
      let x = view.R.buf.data.(li) in
      env.(rs.(0)) <- (if is_f then R.Float x else R.Int (int_of_float x)))
  | "llvm.store" -> (
    fun machine env ->
      let view = R.as_view env.(os.(1)) in
      let li = view.R.offset in
      Machine.memory_access machine ~is_store:true
        (R.byte_address view li)
        view.R.buf.elt_bytes;
      let x =
        match env.(os.(0)) with
        | R.Bool b -> if b then 1.0 else 0.0
        | v -> R.as_float v
      in
      view.R.buf.data.(li) <- x)
  | "llvm.ptrtoint" -> (
    fun _machine env ->
      let view = R.as_view env.(os.(0)) in
      env.(rs.(0)) <- R.Int (R.byte_address view view.R.offset))
  | "memref.subview" -> (
    let static_offsets = Array.of_list (Memref.static_offsets op) in
    let static_sizes = Array.of_list (Memref.static_sizes op) in
    let static_strides = Array.of_list (Memref.static_strides op) in
    fun machine env ->
      let view = R.as_view env.(os.(0)) in
      let dyn = ref 1 in
      let resolve arr =
        Array.map
          (fun s ->
            if s = Memref.dynamic_sentinel then begin
              let v = geti env os.(!dyn) in
              incr dyn;
              v
            end
            else s)
          arr
      in
      let offsets = resolve static_offsets in
      let sizes = resolve static_sizes in
      let strides = resolve static_strides in
      Machine.int_op machine;
      env.(rs.(0)) <- R.Memref (R.subview view ~offsets ~sizes ~strides))
  | "memref.dim" -> (
    fun machine env ->
      let view = R.as_view env.(os.(0)) in
      Machine.int_op machine;
      env.(rs.(0)) <- R.Int view.R.sizes.(geti env os.(1)))
  | "memref.cast" | "builtin.unrealized_conversion_cast" -> (
    fun _ env -> env.(rs.(0)) <- env.(os.(0)))
  | "memref.copy" -> (
    fun machine env ->
      let src = R.as_view env.(os.(0)) in
      let dst = R.as_view env.(os.(1)) in
      let n = R.num_elements src in
      (* flat copy through both views *)
      let rec iter idx dims k =
        if dims = Array.length src.R.sizes then k (Array.copy idx)
        else
          for i = 0 to src.R.sizes.(dims) - 1 do
            idx.(dims) <- i;
            iter idx (dims + 1) k
          done
      in
      if n > 0 then
        iter (Array.make (Array.length src.R.sizes) 0) 0 (fun idx ->
            let li_s = R.linear_index src idx in
            let li_d = R.linear_index dst idx in
            Machine.memory_access machine ~is_store:false
              (R.byte_address src li_s) src.R.buf.elt_bytes;
            Machine.memory_access machine ~is_store:true
              (R.byte_address dst li_d) dst.R.buf.elt_bytes;
            dst.R.buf.data.(li_d) <- src.R.buf.data.(li_s)))
  | "memref.extract_strided_metadata" -> (
    fun machine env ->
      let view = R.as_view env.(os.(0)) in
      Machine.int_op machine;
      let base =
        R.Memref { view with R.offset = 0; sizes = [||]; strides = [||] }
      in
      let rank = Array.length view.R.sizes in
      env.(rs.(0)) <- base;
      env.(rs.(1)) <- R.Int view.R.offset;
      for i = 0 to rank - 1 do
        env.(rs.(2 + i)) <- R.Int view.R.sizes.(i);
        env.(rs.(2 + rank + i)) <- R.Int view.R.strides.(i)
      done)
  | "memref.reinterpret_cast" -> (
    let static_offsets = Array.of_list (Memref.static_offsets op) in
    let static_sizes = Array.of_list (Memref.static_sizes op) in
    let static_strides = Array.of_list (Memref.static_strides op) in
    fun machine env ->
      let view = R.as_view env.(os.(0)) in
      let dyn = ref 1 in
      let resolve arr =
        Array.map
          (fun s ->
            if s = Memref.dynamic_sentinel then begin
              let v = geti env os.(!dyn) in
              incr dyn;
              v
            end
            else s)
          arr
      in
      let offsets = resolve static_offsets in
      let sizes = resolve static_sizes in
      let strides = resolve static_strides in
      Machine.int_op machine;
      env.(rs.(0)) <-
        R.Memref
          {
            R.buf = view.R.buf;
            offset = (if Array.length offsets > 0 then offsets.(0) else 0);
            sizes;
            strides;
          })
  | "memref.extract_aligned_pointer_as_index" -> (
    fun machine env ->
      let view = R.as_view env.(os.(0)) in
      Machine.int_op machine;
      env.(rs.(0)) <- R.Int view.R.buf.base)
  (* ---------------- vector ---------------- *)
  | "vector.load" -> (
    let width =
      match result_typ 0 with
      | Typ.Vector ([ w ], _) -> w
      | t -> unsupported "vector.load result %a" Typ.pp t
    in
    let m = os.(0) in
    let idx_slots = Array.sub os 1 (Array.length os - 1) in
    fun machine env ->
      let view = R.as_view env.(m) in
      let li = ref view.R.offset in
      Array.iteri
        (fun i s -> li := !li + (geti env s * view.R.strides.(i)))
        idx_slots;
      Machine.memory_access machine ~is_store:false
        (R.byte_address view !li)
        (width * view.R.buf.elt_bytes);
      env.(rs.(0)) <- R.Vec (Array.sub view.R.buf.data !li width))
  | "vector.store" -> (
    let v = os.(0) and m = os.(1) in
    let idx_slots = Array.sub os 2 (Array.length os - 2) in
    fun machine env ->
      let view = R.as_view env.(m) in
      let vec = R.as_vec env.(v) in
      let li = ref view.R.offset in
      Array.iteri
        (fun i s -> li := !li + (geti env s * view.R.strides.(i)))
        idx_slots;
      Machine.memory_access machine ~is_store:true
        (R.byte_address view !li)
        (Array.length vec * view.R.buf.elt_bytes);
      Array.blit vec 0 view.R.buf.data !li (Array.length vec))
  | "vector.splat" | "vector.broadcast" -> (
    let width =
      match result_typ 0 with
      | Typ.Vector ([ w ], _) -> w
      | t -> unsupported "vector splat result %a" Typ.pp t
    in
    fun machine env ->
      Machine.vector_op machine;
      env.(rs.(0)) <- R.Vec (Array.make width (getf env os.(0))))
  | "vector.reduction" -> (
    let kind = Option.value ~default:"add" (Dutil.str_attr_of op "kind") in
    let f =
      match kind with
      | "add" -> ( +. )
      | "mul" -> ( *. )
      | "maximumf" -> Float.max
      | "minimumf" -> Float.min
      | k -> unsupported "vector.reduction kind %s" k
    in
    fun machine env ->
      let v = R.as_vec env.(os.(0)) in
      Machine.vector_op machine;
      Machine.add_cycles machine 2.0;
      env.(rs.(0)) <- R.Float (Array.fold_left f (if kind = "mul" then 1.0 else 0.0) v))
  | "vector.fma" -> (
    fun machine env ->
      let a = R.as_vec env.(os.(0)) in
      let b = R.as_vec env.(os.(1)) in
      let c = R.as_vec env.(os.(2)) in
      Machine.vector_op machine;
      env.(rs.(0)) <- R.Vec (Array.init (Array.length a) (fun i -> (a.(i) *. b.(i)) +. c.(i))))
  (* ---------------- affine ---------------- *)
  | "affine.apply" | "affine.min" | "affine.max" -> (
    let map =
      match Affine_ops.map_of op with
      | Some m -> m
      | None -> unsupported "affine op without map"
    in
    let combine =
      match name with
      | "affine.apply" -> fun xs -> List.hd xs
      | "affine.min" -> fun xs -> List.fold_left min max_int xs
      | _ -> fun xs -> List.fold_left max min_int xs
    in
    fun machine env ->
      let args = Array.map (fun s -> geti env s) os in
      let dims = Array.sub args 0 map.Affine.num_dims in
      let syms = Array.sub args map.Affine.num_dims map.Affine.num_syms in
      Machine.int_op machine;
      Machine.int_op machine;
      env.(rs.(0)) <- R.Int (combine (Affine.eval_map map ~dims ~syms)))
  (* ---------------- scf ---------------- *)
  | "scf.for" -> (
    let body_block = Scf.body_block op in
    let region = match op.Ircore.regions with [ r ] -> r | _ -> assert false in
    let run_body = compile_region cctx slots region in
    let iv_slot = slot_of slots (Scf.induction_var op) in
    let iter_slots = List.map (slot_of slots) (Scf.iter_args op) in
    ignore body_block;
    let lb = os.(0) and ub = os.(1) and step = os.(2) in
    let init_slots =
      Array.to_list (Array.sub os 3 (Array.length os - 3))
    in
    fun machine env ->
      let lo = geti env lb and hi = geti env ub and st = geti env step in
      List.iteri
        (fun i s -> env.(List.nth iter_slots i) <- env.(s))
        init_slots;
      let i = ref lo in
      let carried = ref (List.map (fun s -> env.(s)) iter_slots) in
      while !i < hi do
        Machine.loop_iter machine;
        env.(iv_slot) <- R.Int !i;
        List.iteri (fun k v -> env.(List.nth iter_slots k) <- v) !carried;
        carried := run_body machine env;
        i := !i + st
      done;
      List.iteri (fun k v -> env.(rs.(k)) <- v) !carried)
  | "scf.forall" -> (
    let region = match op.Ircore.regions with [ r ] -> r | _ -> assert false in
    let bounds =
      match Ircore.attr op "static_upper_bound" with
      | Some (Attr.Int_array ub) -> Array.of_list ub
      | _ -> unsupported "scf.forall without static_upper_bound"
    in
    let body_block =
      match Ircore.region_first_block region with
      | Some b -> b
      | None -> unsupported "scf.forall without body"
    in
    let iv_slots =
      List.map (slot_of slots) (Ircore.block_args body_block)
    in
    let run_body = compile_region cctx slots region in
    fun machine env ->
      let rank = Array.length bounds in
      let idx = Array.make rank 0 in
      let before = machine.Machine.cycles in
      let rec go d =
        if d = rank then begin
          Machine.loop_iter machine;
          List.iteri (fun i s -> env.(s) <- R.Int idx.(i)) iv_slots;
          ignore (run_body machine env)
        end
        else
          for i = 0 to bounds.(d) - 1 do
            idx.(d) <- i;
            go (d + 1)
          done
      in
      go 0;
      (* idealized parallel scaling: the cycles spent inside the parallel
         region are divided across the modeled cores, plus fork/join cost *)
      let threads = machine.Machine.config.Machine.num_threads in
      if machine.Machine.cost_enabled && threads > 1 then begin
        let total_iters = Array.fold_left ( * ) 1 bounds in
        let ways = min threads (max 1 total_iters) in
        let spent = machine.Machine.cycles -. before in
        machine.Machine.cycles <-
          before
          +. (spent /. float_of_int ways)
          +. machine.Machine.config.Machine.parallel_fork_cycles
      end)
  | "scf.if" -> (
    let then_r, else_r =
      match op.Ircore.regions with
      | [ t; e ] -> (t, e)
      | _ -> unsupported "scf.if must have two regions"
    in
    let run_then = compile_region cctx slots then_r in
    let run_else = compile_region cctx slots else_r in
    let c = os.(0) in
    fun machine env ->
      Machine.int_op machine;
      let vs =
        if R.as_bool env.(c) then run_then machine env else run_else machine env
      in
      List.iteri (fun i v -> env.(rs.(i)) <- v) vs)
  | "scf.while" -> (
    let before_r, after_r =
      match op.Ircore.regions with
      | [ b; a ] -> (b, a)
      | _ -> unsupported "scf.while must have two regions"
    in
    let before_block =
      Option.get (Ircore.region_first_block before_r)
    in
    let after_block = Option.get (Ircore.region_first_block after_r) in
    let before_args = List.map (slot_of slots) (Ircore.block_args before_block) in
    let after_args = List.map (slot_of slots) (Ircore.block_args after_block) in
    let run_before = compile_region cctx slots before_r in
    let run_after = compile_region cctx slots after_r in
    (* the condition terminator returns cond :: forwarded *)
    let init_slots = Array.to_list os in
    fun machine env ->
      let args = ref (List.map (fun s -> env.(s)) init_slots) in
      let finished = ref false in
      let results = ref [] in
      while not !finished do
        Machine.loop_iter machine;
        List.iteri (fun i v -> env.(List.nth before_args i) <- v) !args;
        match run_before machine env with
        | cond :: forwarded ->
          if R.as_bool cond then begin
            List.iteri (fun i v -> env.(List.nth after_args i) <- v) forwarded;
            args := run_after machine env
          end
          else begin
            finished := true;
            results := forwarded
          end
        | [] -> unsupported "scf.while before-region yielded nothing"
      done;
      List.iteri (fun i v -> env.(rs.(i)) <- v) !results)
  (* ---------------- calls ---------------- *)
  | "func.call" | "llvm.call" -> (
    let callee =
      match Ircore.attr op "callee" with
      | Some (Attr.Symbol_ref (s, _)) -> s
      | _ -> unsupported "call without callee"
    in
    match Hashtbl.find_opt cctx.externs callee with
    | Some ext ->
      fun machine env ->
        Machine.call machine;
        let args = Array.to_list (Array.map (fun s -> env.(s)) os) in
        let vs = ext machine args in
        List.iteri (fun i v -> env.(rs.(i)) <- v) vs
    | None -> (
      match cctx.module_ with
      | None -> unsupported "call to %s outside a module" callee
      | Some m -> (
        match Symbol.lookup_in ~table:m callee with
        | None -> unsupported "call to unknown function %s" callee
        | Some f ->
          (* defer compilation to execution time to allow any definition
             order and recursion *)
          let compiled = lazy (compile_func cctx f) in
          fun machine env ->
            Machine.call machine;
            let args = Array.to_list (Array.map (fun s -> env.(s)) os) in
            let vs = (Lazy.force compiled).cf_run machine args in
            List.iteri (fun i v -> env.(rs.(i)) <- v) vs)))
  | name -> unsupported "cannot execute op %s" name

(* ------------------------------------------------------------------ *)
(* Public API                                                          *)
(* ------------------------------------------------------------------ *)

(** Execute function [name] in [module_] with [args]; returns results and
    the machine report. *)
let run_function ?(machine = Machine.create ()) ?(externs = Hashtbl.create 8)
    ~ir_ctx ~module_ ~name args =
  match Symbol.lookup_in ~table:module_ name with
  | None -> Error (Fmt.str "no function @%s in module" name)
  | Some f -> (
    let cctx = create_cctx ~externs ~module_ ir_ctx in
    try
      let compiled = compile_func cctx f in
      let results = compiled.cf_run machine args in
      Ok (results, Machine.report machine)
    with
    | Unsupported msg -> Error ("interpreter: " ^ msg)
    | R.Type_error msg -> Error ("interpreter: " ^ msg))
