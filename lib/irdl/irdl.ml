(** IRDL-lite: declarative operation definitions with constraints (paper
    Section 3.3, Figures 3 and 4).

    IRDL specifies operations — their attributes, operand/result cardinality
    and type constraints — declaratively, and *generates verifiers* from the
    specification. The Transform dialect leverages two IRDL capabilities:

    - {e constrained pseudo-ops}: a copy of an existing op's definition with
      tightened constraints (Figure 3's highlighted parts: a
      [memref.subview] whose offset/size/stride operand segments have
      cardinality zero), registered under a constraint name such as
      ["memref.subview.constr"] and referenced from pre-/post-conditions
      ({!Ir.Opset.Constrained}) — no new op is actually introduced;
    - {e generated dynamic verifiers}: used to check declared pre/post
      conditions while transforming a concrete program. *)

open Ir

(* ------------------------------------------------------------------ *)
(* Constraint language                                                 *)
(* ------------------------------------------------------------------ *)

type type_constraint =
  | Any_type
  | Exactly of Typ.t
  | Integer_type
  | Float_type
  | Index_type
  | Memref_type
  | Tensor_type
  | Vector_type
  | Any_of of type_constraint list

let rec satisfies_type (t : Typ.t) = function
  | Any_type -> true
  | Exactly t' -> Typ.equal t t'
  | Integer_type -> Typ.is_integer t
  | Float_type -> Typ.is_float t
  | Index_type -> Typ.is_index t
  | Memref_type -> (
    match t with Typ.Memref _ | Typ.Unranked_memref _ -> true | _ -> false)
  | Tensor_type -> (
    match t with
    | Typ.Ranked_tensor _ | Typ.Unranked_tensor _ -> true
    | _ -> false)
  | Vector_type -> ( match t with Typ.Vector _ -> true | _ -> false)
  | Any_of cs -> List.exists (satisfies_type t) cs

let rec pp_type_constraint fmt = function
  | Any_type -> Fmt.string fmt "!any"
  | Exactly t -> Typ.pp fmt t
  | Integer_type -> Fmt.string fmt "!integer"
  | Float_type -> Fmt.string fmt "!float"
  | Index_type -> Fmt.string fmt "!index"
  | Memref_type -> Fmt.string fmt "!memrefType"
  | Tensor_type -> Fmt.string fmt "!tensorType"
  | Vector_type -> Fmt.string fmt "!vectorType"
  | Any_of cs ->
    Fmt.pf fmt "!anyOf<%a>" (Util.pp_list pp_type_constraint) cs

(** Cardinality of a variadic segment (Figure 3: [Variadic<!index, 0>] marks
    a segment constrained to cardinality zero). *)
type cardinality =
  | Single
  | Optional
  | Variadic  (** any count *)
  | Variadic_exactly of int

let satisfies_cardinality n = function
  | Single -> n = 1
  | Optional -> n <= 1
  | Variadic -> true
  | Variadic_exactly k -> n = k

let pp_cardinality pp_elt fmt (c, elt) =
  match c with
  | Single -> pp_elt fmt elt
  | Optional -> Fmt.pf fmt "Optional<%a>" pp_elt elt
  | Variadic -> Fmt.pf fmt "Variadic<%a>" pp_elt elt
  | Variadic_exactly k -> Fmt.pf fmt "Variadic<%a, %d>" pp_elt elt k

type attr_constraint =
  | Any_attr
  | Int_attr
  | Bool_attr
  | String_attr
  | Int_array_attr
  | Symbol_attr
  | Type_attr_c
  | Affine_map_attr

let satisfies_attr (a : Attr.t) = function
  | Any_attr -> true
  | Int_attr -> ( match a with Attr.Int _ -> true | _ -> false)
  | Bool_attr -> ( match a with Attr.Bool _ -> true | _ -> false)
  | String_attr -> ( match a with Attr.String _ -> true | _ -> false)
  | Int_array_attr -> ( match a with Attr.Int_array _ -> true | _ -> false)
  | Symbol_attr -> ( match a with Attr.Symbol_ref _ -> true | _ -> false)
  | Type_attr_c -> ( match a with Attr.Type _ -> true | _ -> false)
  | Affine_map_attr -> ( match a with Attr.Affine_map _ -> true | _ -> false)

let pp_attr_constraint fmt = function
  | Any_attr -> Fmt.string fmt "!anyAttr"
  | Int_attr -> Fmt.string fmt "!indexAttr"
  | Bool_attr -> Fmt.string fmt "!boolAttr"
  | String_attr -> Fmt.string fmt "!stringAttr"
  | Int_array_attr -> Fmt.string fmt "Variadic<!indexAttr>"
  | Symbol_attr -> Fmt.string fmt "!symbolAttr"
  | Type_attr_c -> Fmt.string fmt "!typeAttr"
  | Affine_map_attr -> Fmt.string fmt "!affineMapAttr"

(* ------------------------------------------------------------------ *)
(* Operation definitions                                               *)
(* ------------------------------------------------------------------ *)

type operand_def = {
  od_name : string;
  od_type : type_constraint;
  od_card : cardinality;
}

type result_def = {
  rd_name : string;
  rd_type : type_constraint;
  rd_card : cardinality;
}

type attr_def = {
  ad_name : string;
  ad_constraint : attr_constraint;
  ad_required : bool;
}

type op_def = {
  d_op : string;  (** fully-qualified payload op name, e.g. [memref.subview] *)
  d_constraint_name : string option;
      (** when [Some c], this is a *constrained copy* registered as
          [<op>.<c>] — the pseudo-op of Figure 3; the base op keeps its own
          definition *)
  d_attributes : attr_def list;
  d_operands : operand_def list;
  d_results : result_def list;
  d_cpp_constraint : string option;
      (** modeled native check, as in Figure 3's [CPPConstraint] *)
}

(* ------------------------------------------------------------------ *)
(* Native checks                                                       *)
(* ------------------------------------------------------------------ *)

(** Figure 3's [CPPConstraint "..."] escape hatch: named checks implemented
    natively and referenced from declarative definitions. *)
let native_checks : (string, Ircore.op -> bool) Hashtbl.t = Hashtbl.create 8

let register_native name check = Hashtbl.replace native_checks name check

let run_native name op =
  match Hashtbl.find_opt native_checks name with
  | Some check -> check op
  | None -> true (* unknown native checks are assumed to hold *)

let () =
  register_native "checkMemrefConstraints()" (fun _ -> true);
  (* the trivial-subview refinement: the *static* offset/size/stride arrays
     must also be empty, not just the dynamic operand segments *)
  register_native "checkTrivialSubview()" (fun op ->
      let empty name =
        match Ircore.attr op name with
        | Some (Attr.Int_array []) | None -> true
        | _ -> false
      in
      empty "static_offsets" && empty "static_sizes" && empty "static_strides")

(* segment sizes: ops with multiple variadic segments carry the MLIR-style
   operand_segment_sizes attribute; IRDL verification uses it to slice *)
let operand_segments (op : Ircore.op) (defs : operand_def list) =
  match Ircore.attr op "operand_segment_sizes" with
  | Some (Attr.Int_array sizes) when List.length sizes = List.length defs ->
    Some sizes
  | _ ->
    (* without segments: only valid if at most one segment is variadic *)
    let variadics =
      List.filter
        (fun d -> match d.od_card with Single | Optional -> false | _ -> true)
        defs
    in
    let fixed = List.length defs - List.length variadics in
    let n = Ircore.num_operands op in
    if variadics = [] then
      if n = List.length defs then Some (List.map (fun _ -> 1) defs) else None
    else if List.length variadics = 1 && n >= fixed then
      Some
        (List.map
           (fun d ->
             match d.od_card with
             | Single -> 1
             | Optional -> if n > fixed then 1 else 0
             | _ -> n - fixed)
           defs)
    else None

(** Generated verifier for [def] (paper: "IRDL's capability to automatically
    generate constraint verifiers"). *)
let verify (def : op_def) (op : Ircore.op) : (unit, string) result =
  let ( let* ) = Result.bind in
  let* () =
    if op.Ircore.op_name = def.d_op then Ok ()
    else Error (Fmt.str "expected op %s, got %s" def.d_op op.Ircore.op_name)
  in
  (* attributes *)
  let* () =
    List.fold_left
      (fun acc ad ->
        let* () = acc in
        match Ircore.attr op ad.ad_name with
        | None ->
          if ad.ad_required then
            Error (Fmt.str "missing required attribute %s" ad.ad_name)
          else Ok ()
        | Some a ->
          if satisfies_attr a ad.ad_constraint then Ok ()
          else
            Error
              (Fmt.str "attribute %s violates its constraint %a" ad.ad_name
                 pp_attr_constraint ad.ad_constraint))
      (Ok ()) def.d_attributes
  in
  (* operands: slice into segments, check cardinality + types *)
  let* segments =
    match operand_segments op def.d_operands with
    | Some s -> Ok s
    | None ->
      Error
        (Fmt.str "cannot match %d operands against the declared segments"
           (Ircore.num_operands op))
  in
  let operands = Array.of_list (Ircore.operands op) in
  let* _ =
    List.fold_left2
      (fun acc d n ->
        let* start = acc in
        let* () =
          if satisfies_cardinality n d.od_card then Ok ()
          else
            Error
              (Fmt.str "operand segment %s has cardinality %d, violating %s"
                 d.od_name n
                 (Fmt.str "%a" (pp_cardinality pp_type_constraint)
                    (d.od_card, d.od_type)))
        in
        let* () =
          let ok = ref (Ok ()) in
          for i = start to start + n - 1 do
            if
              Result.is_ok !ok
              && not (satisfies_type (Ircore.value_typ operands.(i)) d.od_type)
            then
              ok :=
                Error
                  (Fmt.str "operand %s#%d violates type constraint %a"
                     d.od_name (i - start) pp_type_constraint d.od_type)
          done;
          !ok
        in
        Ok (start + n))
      (Ok 0) def.d_operands segments
  in
  (* results *)
  let results = Ircore.results op in
  let* () =
    let single_defs = List.for_all (fun r -> r.rd_card = Single) def.d_results in
    if single_defs && List.length results <> List.length def.d_results then
      Error
        (Fmt.str "expected %d results, got %d"
           (List.length def.d_results)
           (List.length results))
    else Ok ()
  in
  let* () =
    if List.for_all (fun r -> r.rd_card = Single) def.d_results then
      List.fold_left2
        (fun acc rd r ->
          let* () = acc in
          if satisfies_type (Ircore.value_typ r) rd.rd_type then Ok ()
          else
            Error
              (Fmt.str "result %s violates type constraint %a" rd.rd_name
                 pp_type_constraint rd.rd_type))
        (Ok ()) def.d_results results
    else Ok ()
  in
  match def.d_cpp_constraint with
  | Some name when not (run_native name op) ->
    Error (Fmt.str "native constraint %s failed" name)
  | _ -> Ok ()

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

(** Definitions are keyed by the Opset spelling: the plain op name for base
    definitions, ["<op>.<constraint>"] for constrained copies. *)
let registry : (string, op_def) Hashtbl.t = Hashtbl.create 32

let key_of def =
  match def.d_constraint_name with
  | None -> def.d_op
  | Some c -> def.d_op ^ "." ^ c

let register def = Hashtbl.replace registry (key_of def) def
let lookup key = Hashtbl.find_opt registry key

(** Does [op] satisfy the op-set element [elem]? Plain and dialect elements
    are name checks; constrained elements run the generated verifier;
    interface elements resolve through the context's op registry. *)
let op_satisfies ?ctx (elem : Opset.elem) (op : Ircore.op) =
  match elem with
  | Opset.Dialect d -> Ircore.op_dialect op = d
  | Opset.Exact n -> op.Ircore.op_name = n
  | Opset.Constrained (n, c) -> (
    op.Ircore.op_name = n
    &&
    match lookup (n ^ "." ^ c) with
    | Some def -> Result.is_ok (verify def op)
    | None -> false)
  | Opset.Interface iface -> (
    match ctx with
    | Some ctx -> Context.implements ctx op.Ircore.op_name iface
    | None -> false)

(** Is [op] covered by the op set, with constrained elements checked
    dynamically? (The refinement of {!Ir.Opset.covers} used by the dynamic
    condition checker.) *)
let opset_covers_op ?ctx (s : Opset.t) (op : Ircore.op) =
  List.exists (fun elem -> op_satisfies ?ctx elem op) s

(* ------------------------------------------------------------------ *)
(* Figure 3 printing                                                   *)
(* ------------------------------------------------------------------ *)

let pp_op_def fmt def =
  let name =
    match def.d_constraint_name with
    | None -> snd (Util.split_op_name def.d_op)
    | Some c -> snd (Util.split_op_name def.d_op) ^ "." ^ c
  in
  Fmt.pf fmt "Operation %s {@." name;
  if def.d_attributes <> [] then begin
    Fmt.pf fmt "  Attributes(@.";
    List.iter
      (fun a ->
        Fmt.pf fmt "    %s: %a,@." a.ad_name pp_attr_constraint a.ad_constraint)
      def.d_attributes;
    Fmt.pf fmt "  )@."
  end;
  if def.d_operands <> [] then begin
    Fmt.pf fmt "  Operands(@.";
    List.iter
      (fun o ->
        Fmt.pf fmt "    %s: %a,@." o.od_name
          (pp_cardinality pp_type_constraint)
          (o.od_card, o.od_type))
      def.d_operands;
    Fmt.pf fmt "  )@."
  end;
  if def.d_results <> [] then begin
    Fmt.pf fmt "  Results(";
    List.iteri
      (fun i r ->
        if i > 0 then Fmt.string fmt ", ";
        Fmt.pf fmt "%s: %a" r.rd_name
          (pp_cardinality pp_type_constraint)
          (r.rd_card, r.rd_type))
      def.d_results;
    Fmt.pf fmt ")@."
  end;
  (match def.d_cpp_constraint with
  | Some c -> Fmt.pf fmt "  CPPConstraint %S@." c
  | None -> ());
  Fmt.pf fmt "}"

let pp_dialect fmt (name, defs) =
  Fmt.pf fmt "Dialect %s {@." name;
  List.iter (fun d -> Fmt.pf fmt "%a@." pp_op_def d) defs;
  Fmt.pf fmt "}"

(* ------------------------------------------------------------------ *)
(* Built-in definitions: the memref ops of Figure 3 / Table 2          *)
(* ------------------------------------------------------------------ *)

(** The base [memref.subview] definition of Figure 3. *)
let subview_def =
  {
    d_op = "memref.subview";
    d_constraint_name = None;
    d_attributes =
      [
        { ad_name = "static_offsets"; ad_constraint = Int_array_attr; ad_required = true };
        { ad_name = "static_sizes"; ad_constraint = Int_array_attr; ad_required = true };
        { ad_name = "static_strides"; ad_constraint = Int_array_attr; ad_required = true };
      ];
    d_operands =
      [
        { od_name = "input"; od_type = Memref_type; od_card = Single };
        { od_name = "offsets"; od_type = Index_type; od_card = Variadic };
        { od_name = "sizes"; od_type = Index_type; od_card = Variadic };
        { od_name = "strides"; od_type = Index_type; od_card = Variadic };
      ];
    d_results = [ { rd_name = "view"; rd_type = Memref_type; rd_card = Single } ];
    d_cpp_constraint = Some "checkMemrefConstraints()";
  }

(** The constrained pseudo-op of Figure 3 (highlighted parts): the
    offset/size/stride segments are guaranteed to have cardinality zero —
    trivially indexed accesses, the post-condition of
    [expand-strided-metadata] (Figure 4). Additionally the static arrays
    must be empty, which we model through the cpp-style native check. *)
let subview_constr_def =
  {
    subview_def with
    d_constraint_name = Some "constr";
    d_operands =
      [
        { od_name = "input"; od_type = Memref_type; od_card = Single };
        { od_name = "offsets"; od_type = Index_type; od_card = Variadic_exactly 0 };
        { od_name = "sizes"; od_type = Index_type; od_card = Variadic_exactly 0 };
        { od_name = "strides"; od_type = Index_type; od_card = Variadic_exactly 0 };
      ];
    d_cpp_constraint = Some "checkTrivialSubview()";
  }

let reinterpret_cast_def =
  {
    d_op = "memref.reinterpret_cast";
    d_constraint_name = None;
    d_attributes =
      [
        { ad_name = "static_offsets"; ad_constraint = Int_array_attr; ad_required = true };
        { ad_name = "static_sizes"; ad_constraint = Int_array_attr; ad_required = true };
        { ad_name = "static_strides"; ad_constraint = Int_array_attr; ad_required = true };
      ];
    d_operands =
      [
        { od_name = "source"; od_type = Memref_type; od_card = Single };
        { od_name = "dynamic"; od_type = Index_type; od_card = Variadic };
      ];
    d_results =
      [ { rd_name = "result"; rd_type = Memref_type; rd_card = Single } ];
    d_cpp_constraint = None;
  }

let load_def =
  {
    d_op = "memref.load";
    d_constraint_name = None;
    d_attributes = [];
    d_operands =
      [
        { od_name = "memref"; od_type = Memref_type; od_card = Single };
        { od_name = "indices"; od_type = Index_type; od_card = Variadic };
      ];
    d_results = [ { rd_name = "value"; rd_type = Any_type; rd_card = Single } ];
    d_cpp_constraint = None;
  }

let builtin_defs =
  [ subview_def; subview_constr_def; reinterpret_cast_def; load_def ]

(* ---------------- generic constraint combinators ---------------- *)

(** A small propositional-constraint language over an abstract atom type,
    shared by the attribute/type constraints above and by the
    annotation-flow requires clauses in [Transform.Annot]. Evaluation is
    three-valued: an atom can be known to hold, known to be refuted, or
    unknown — so [Not c] holds only when [c] is positively refuted, never
    merely because [c] is not provable. *)
type 'a constr =
  | Ctrue
  | Atom of 'a
  | All of 'a constr list
  | Any of 'a constr list
  | Not of 'a constr

let rec constr_holds ~atom ~atom_refuted = function
  | Ctrue -> true
  | Atom a -> atom a
  | All cs -> List.for_all (constr_holds ~atom ~atom_refuted) cs
  | Any cs -> List.exists (constr_holds ~atom ~atom_refuted) cs
  | Not c -> constr_refuted ~atom ~atom_refuted c

and constr_refuted ~atom ~atom_refuted = function
  | Ctrue -> false
  | Atom a -> atom_refuted a
  | All cs -> List.exists (constr_refuted ~atom ~atom_refuted) cs
  | Any cs -> List.for_all (constr_refuted ~atom ~atom_refuted) cs
  | Not c -> constr_holds ~atom ~atom_refuted c

let rec pp_constr pp_atom fmt = function
  | Ctrue -> Fmt.string fmt "true"
  | Atom a -> pp_atom fmt a
  | All [] -> Fmt.string fmt "true"
  | All cs ->
    Fmt.pf fmt "(%a)" Fmt.(list ~sep:(any " & ") (pp_constr pp_atom)) cs
  | Any [] -> Fmt.string fmt "false"
  | Any cs ->
    Fmt.pf fmt "(%a)" Fmt.(list ~sep:(any " | ") (pp_constr pp_atom)) cs
  | Not c -> Fmt.pf fmt "!%a" (pp_constr pp_atom) c

let registered = ref false

let register_builtin () =
  if not !registered then begin
    registered := true;
    List.iter register builtin_defs
  end

let () = register_builtin ()
