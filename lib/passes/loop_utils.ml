(** Loop transformation utilities on [scf.for]: the "hidden compiler
    features" the Transform dialect exposes (split, tile, unroll,
    interchange, hoisting, vectorization, microkernel replacement). All
    functions return [Result]: an [Error] is a failed pre-condition and the
    payload is left unmodified — the silenceable-error discipline of the
    paper's Section 3. *)

open Ir
open Dialects

let ( let* ) = Result.bind

let err fmt = Fmt.kstr (fun m -> Error m) fmt

(** Report a loop transform's outcome as an optimization remark attributed
    to [loc] (capture the payload loc *before* transforming — success may
    erase the op): [Passed] with [args] on [Ok], [Missed] with the decline
    reason on [Error]. No-op (and no formatting) without a remark handler. *)
let remarked ~pass ~loc ?(args = []) ~applied result =
  (if Remark.enabled () then
     match result with
     | Ok _ -> Remark.emit (Remark.passed ~pass ~loc ~args "%s" applied)
     | Error reason -> Remark.emit (Remark.missed ~pass ~loc "%s" reason));
  result

let int_list_arg sizes =
  Remark.String (Fmt.str "[%a]" (Fmt.list ~sep:(Fmt.any ",") Fmt.int) sizes)

(* ------------------------------------------------------------------ *)
(* Structural helpers                                                  *)
(* ------------------------------------------------------------------ *)

let ensure_for op =
  if Scf.is_for op then Ok () else err "expected scf.for, got %s" op.Ircore.op_name

let ensure_no_iter_args op =
  if Ircore.num_results op = 0 then Ok ()
  else err "loop with iter_args is not supported by this transform"

(** Non-terminator ops of the loop body. *)
let body_ops loop =
  match Ircore.block_ops (Scf.body_block loop) with
  | [] -> []
  | ops -> List.filter (fun o -> o.Ircore.op_name <> Scf.yield_op) ops

(** A perfect nest starting at [loop]: follow single-loop bodies downward. *)
let rec perfect_nest loop =
  match body_ops loop with
  | [ inner ] when Scf.is_for inner -> loop :: perfect_nest inner
  | _ -> [ loop ]

(* pure scalar index computations that may sit between nest levels without
   breaking a "morally perfect" nest (e.g. the bound computations emitted by
   tiling) *)
let is_index_aux op =
  List.mem op.Ircore.op_name
    [
      "arith.constant"; "arith.addi"; "arith.muli"; "arith.subi";
      "arith.minsi"; "arith.maxsi"; "affine.apply"; "affine.min";
    ]

(** Like {!perfect_nest} but tolerates index-computation ops alongside the
    single nested loop — the shape produced by tiling. *)
let rec relaxed_nest loop =
  let ops = body_ops loop in
  match List.filter Scf.is_for ops with
  | [ inner ] when List.for_all (fun o -> o == inner || is_index_aux o) ops ->
    loop :: relaxed_nest inner
  | _ -> [ loop ]

let innermost loop = List.nth (perfect_nest loop) (List.length (perfect_nest loop) - 1)

(** Trip count of a loop with a constant positive step, derived from
    constant bounds or structurally from the [ub = lb + c] shape produced by
    tiling. Returns [(trip, step)]. *)
let trip_and_step loop =
  match Scf.static_bounds loop with
  | Some (lb, ub, st) -> Some (max 0 ((ub - lb + st - 1) / st), st)
  | None -> (
    match Arith.constant_int_of_value (Scf.step loop) with
    | Some st when st > 0 -> (
      let lb = Scf.lower_bound loop and ub = Scf.upper_bound loop in
      match Ircore.defining_op ub with
      | Some add when add.Ircore.op_name = "arith.addi" ->
        let o0 = Ircore.operand ~index:0 add
        and o1 = Ircore.operand ~index:1 add in
        let span =
          if o0 == lb then Arith.constant_int_of_value o1
          else if o1 == lb then Arith.constant_int_of_value o0
          else None
        in
        Option.map (fun c -> (max 0 ((c + st - 1) / st), st)) span
      | _ -> None)
    | _ -> None)

let structural_trip_count loop = Option.map fst (trip_and_step loop)
let has_unit_step loop = Arith.constant_int_of_value (Scf.step loop) = Some 1

(* ------------------------------------------------------------------ *)
(* Split                                                               *)
(* ------------------------------------------------------------------ *)

(** Split [loop] into a main loop whose trip count is the largest multiple
    of [divisor] and a remainder loop covering the rest. Both bounds and the
    step must be constants. Returns [(main, rest)]. *)
let split rw loop ~divisor =
  let* () = ensure_for loop in
  let* () = ensure_no_iter_args loop in
  if divisor <= 0 then err "split divisor must be positive"
  else
    match Scf.static_bounds loop with
    | None -> err "loop.split requires constant bounds and step"
    | Some (lb, ub, st) ->
      let trip = max 0 ((ub - lb + st - 1) / st) in
      let main_trip = trip / divisor * divisor in
      let mid = lb + (main_trip * st) in
      Rewriter.set_ip rw (Builder.Before loop);
      let mid_v = Dutil.const_int rw mid in
      let main = Ircore.clone_op loop in
      Ircore.set_operand main 1 mid_v;
      Rewriter.insert rw main;
      let rest = Ircore.clone_op loop in
      Ircore.set_operand rest 0 mid_v;
      Rewriter.insert rw rest;
      Rewriter.erase_op rw loop;
      Ok (main, rest)

let split rw loop ~divisor =
  let loc = loop.Ircore.op_loc in
  remarked ~pass:"loop-split" ~loc
    ~args:[ ("divisor", Remark.Int divisor) ]
    ~applied:"split loop into a divisor-multiple main loop and a remainder"
    (split rw loop ~divisor)

(** Peel the first [iterations] iterations off [loop] into a separate loop
    preceding it. Returns [(peeled, rest)]. *)
let peel_front rw loop ~iterations =
  let* () = ensure_for loop in
  let* () = ensure_no_iter_args loop in
  if iterations <= 0 then err "peel count must be positive"
  else
    match Scf.static_bounds loop with
    | None -> err "loop.peel requires constant bounds and step"
    | Some (lb, ub, st) ->
      let trip = max 0 ((ub - lb + st - 1) / st) in
      let n = min iterations trip in
      let mid = lb + (n * st) in
      Rewriter.set_ip rw (Builder.Before loop);
      let mid_v = Dutil.const_int rw mid in
      let peeled = Ircore.clone_op loop in
      Ircore.set_operand peeled 1 mid_v;
      Rewriter.insert rw peeled;
      let rest = Ircore.clone_op loop in
      Ircore.set_operand rest 0 mid_v;
      Rewriter.insert rw rest;
      Rewriter.erase_op rw loop;
      Ok (peeled, rest)

(** Fuse sibling loop [b] into [a]: both must live in the same block with
    identical bounds/step (same SSA values or equal constants) and no
    iter_args; [b]'s body is appended to [a]'s and [b] is erased. As in
    MLIR's [transform.loop.fuse_sibling], legality (no fusion-preventing
    dependence between the loops) is asserted by the user. *)
let fuse_siblings rw a b =
  let* () = ensure_for a in
  let* () = ensure_for b in
  let* () = ensure_no_iter_args a in
  let* () = ensure_no_iter_args b in
  if a == b then err "cannot fuse a loop with itself"
  else
    let same_block =
      match (Ircore.op_parent a, Ircore.op_parent b) with
      | Some ba, Some bb -> ba == bb
      | _ -> false
    in
    if not same_block then err "fusion requires loops in the same block"
    else
      let same_bound get =
        get a == get b
        ||
        match
          (Arith.constant_int_of_value (get a), Arith.constant_int_of_value (get b))
        with
        | Some x, Some y -> x = y
        | _ -> false
      in
      if
        not
          (same_bound Scf.lower_bound && same_bound Scf.upper_bound
         && same_bound Scf.step)
      then err "fusion requires identical bounds and step"
      else begin
        (* values flowing into b's body must already dominate a, otherwise
           moving the body before them would break SSA *)
        let dominance_safe = ref true in
        Ircore.walk_op b ~pre:(fun op ->
            List.iter
              (fun v ->
                if not (Ircore.value_defined_within ~ancestor:b v) then
                  match Ircore.defining_op v with
                  | Some d
                    when (match (Ircore.op_parent d, Ircore.op_parent a) with
                         | Some bd, Some ba -> bd == ba
                         | _ -> false)
                         && Ircore.is_before_in_block a d ->
                    dominance_safe := false
                  | _ -> ())
              (Ircore.operands op));
        if not !dominance_safe then
          err "fusion would move uses before their definitions"
        else begin
        let a_yield = Scf.yield_of a in
        let iv_a = Scf.induction_var a and iv_b = Scf.induction_var b in
        Ircore.replace_all_uses_with iv_b ~with_:iv_a;
        let brw = Rewriter.create ~ip:(Builder.Before a_yield) () in
        List.iter
          (fun op ->
            Ircore.detach op;
            Rewriter.insert brw op)
          (body_ops b);
        Rewriter.erase_op rw b;
        Ok a
        end
      end

let fuse_siblings rw a b =
  let loc = a.Ircore.op_loc in
  remarked ~pass:"loop-fuse" ~loc
    ~applied:"fused sibling loop into its twin"
    (fuse_siblings rw a b)

(* ------------------------------------------------------------------ *)
(* Tiling                                                              *)
(* ------------------------------------------------------------------ *)

(** Tile the perfect nest rooted at [loop] with [sizes] (one per nest
    level; 0 means "do not tile this level" only at the tail). Produces
    outer tile loops and inner point loops; a [min] is emitted for the point
    loop upper bound unless the trip count is statically divisible.
    Returns [(tile_loops, point_loops)]. *)
let tile rw loop ~sizes =
  let* () = ensure_for loop in
  let nest = perfect_nest loop in
  let depth = List.length sizes in
  if depth = 0 then err "tile_sizes must not be empty"
  else if depth > List.length nest then
    err "tile_sizes has %d entries but the perfect nest has depth %d" depth
      (List.length nest)
  else if List.exists (fun s -> s <= 0) sizes then
    err "tile sizes must be positive"
  else begin
    let loops = List.filteri (fun i _ -> i < depth) nest in
    let* () =
      if List.for_all (fun l -> Ircore.num_results l = 0) loops then Ok ()
      else err "cannot tile loops with iter_args"
    in
    let inner = List.nth loops (depth - 1) in
    let moved_ops = body_ops inner in
    let orig_ivs = List.map Scf.induction_var loops in
    let bounds = List.map (fun l -> (Scf.lower_bound l, Scf.upper_bound l, Scf.step l)) loops in
    let static = List.map Scf.static_bounds loops in
    Rewriter.set_ip rw (Builder.Before loop);
    let tile_loops = ref [] in
    let point_loops = ref [] in
    let point_ivs = Array.make depth None in
    (* innermost point-loop body: move the original ops here *)
    let rec build_points i brw =
      if i = depth then begin
        List.iter
          (fun op ->
            Ircore.detach op;
            Rewriter.insert brw op)
          moved_ops;
        []
      end
      else begin
        let lb_i, ub_i, st_i = List.nth bounds i in
        let tile_iv =
          match point_ivs.(i) with Some v -> v | None -> assert false
        in
        let size = List.nth sizes i in
        let st_const = Arith.constant_int_of_value st_i in
        let step_v =
          match st_const with
          | Some 1 -> st_i
          | _ -> st_i
        in
        ignore lb_i;
        let span =
          (* tile_iv + step*size *)
          match st_const with
          | Some st ->
            let c = Dutil.const_int brw (st * size) in
            Arith.addi brw tile_iv c
          | None ->
            let c = Dutil.const_int brw size in
            Arith.addi brw tile_iv (Arith.muli brw st_i c)
        in
        let divisible =
          match List.nth static i with
          | Some (lb, ub, st) -> (ub - lb + st - 1) / st mod size = 0
          | None -> false
        in
        let point_ub =
          if divisible then span
          else
            Rewriter.build1 brw ~operands:[ span; ub_i ]
              ~result_types:[ Typ.index ] "arith.minsi"
        in
        let l =
          Scf.build_for brw ~lb:tile_iv ~ub:point_ub ~step:step_v
            (fun brw' iv _ ->
              Ircore.replace_all_uses_with (List.nth orig_ivs i) ~with_:iv;
              build_points (i + 1) brw')
        in
        point_loops := !point_loops @ [ l ];
        []
      end
    in
    let rec build_tiles i brw =
      if i = depth then begin
        ignore (build_points 0 brw);
        []
      end
      else begin
        let lb_i, ub_i, st_i = List.nth bounds i in
        let size = List.nth sizes i in
        let big_step =
          match Arith.constant_int_of_value st_i with
          | Some st -> Dutil.const_int brw (st * size)
          | None ->
            let c = Dutil.const_int brw size in
            Arith.muli brw st_i c
        in
        let l =
          Scf.build_for brw ~lb:lb_i ~ub:ub_i ~step:big_step (fun brw' iv _ ->
              point_ivs.(i) <- Some iv;
              build_tiles (i + 1) brw')
        in
        tile_loops := !tile_loops @ [ l ];
        []
      end
    in
    ignore (build_tiles 0 rw);
    (* loops were recorded innermost-first (callbacks return inside-out) *)
    let points = List.rev !point_loops in
    let tiles = List.rev !tile_loops in
    Rewriter.erase_op rw loop;
    Ok (tiles, points)
  end

let tile rw loop ~sizes =
  let loc = loop.Ircore.op_loc in
  remarked ~pass:"loop-tile" ~loc
    ~args:[ ("tile_sizes", int_list_arg sizes) ]
    ~applied:"tiled perfect loop nest into tile and point loops"
    (tile rw loop ~sizes)

(* ------------------------------------------------------------------ *)
(* Unrolling                                                           *)
(* ------------------------------------------------------------------ *)

(** Fully unroll [loop]; requires a statically known trip count (constant
    bounds, or the [ub = lb + c] shape produced by tiling). Supports
    iter_args. *)
let unroll_full rw loop =
  let* () = ensure_for loop in
  match trip_and_step loop with
  | None -> err "loop.unroll full requires a statically known trip count"
  | Some (trip, st) ->
    if trip > 4096 then err "refusing to fully unroll %d iterations" trip
    else begin
      Rewriter.set_ip rw (Builder.Before loop);
      let iv = Scf.induction_var loop in
      let lb_v = Scf.lower_bound loop in
      let lb_const = Arith.constant_int_of_value lb_v in
      let iters = Scf.iter_args loop in
      let yield = Scf.yield_of loop in
      let carried = ref (Scf.iter_init_args loop) in
      for k = 0 to trip - 1 do
        let mapping = Ircore.Mapping.create () in
        let iv_const =
          match lb_const with
          | Some lb -> Dutil.const_int rw (lb + (k * st))
          | None ->
            if k = 0 then lb_v
            else Arith.addi rw lb_v (Dutil.const_int rw (k * st))
        in
        Ircore.Mapping.map_value mapping ~from:iv ~to_:iv_const;
        List.iter2
          (fun arg v -> Ircore.Mapping.map_value mapping ~from:arg ~to_:v)
          iters !carried;
        List.iter
          (fun op ->
            let cloned = Ircore.clone_op ~mapping op in
            Rewriter.insert rw cloned)
          (body_ops loop);
        carried :=
          List.map (Ircore.Mapping.lookup_value mapping) (Ircore.operands yield)
      done;
      Rewriter.replace_op rw loop ~with_:!carried;
      Ok ()
    end

(** Unroll [loop] by [factor]; requires a constant trip count divisible by
    [factor]. Supports iter_args. *)
let unroll_by rw loop ~factor =
  let* () = ensure_for loop in
  if factor <= 1 then err "unroll factor must be > 1"
  else
    match trip_and_step loop with
    | None -> err "loop.unroll requires a statically known trip count"
    | Some (trip, st) ->
      if trip mod factor <> 0 then
        err "trip count %d is not divisible by unroll factor %d" trip factor
      else begin
        let iv = Scf.induction_var loop in
        let iters = Scf.iter_args loop in
        let yield = Scf.yield_of loop in
        let orig_ops = body_ops loop in
        let orig_yield_operands = Ircore.operands yield in
        (* bump the step *)
        Rewriter.set_ip rw (Builder.Before loop);
        let new_step = Dutil.const_int rw (st * factor) in
        Ircore.set_operand loop 2 new_step;
        (* append factor-1 copies of the body before the yield *)
        let brw = Rewriter.create ~ip:(Builder.Before yield) () in
        let carried = ref orig_yield_operands in
        for k = 1 to factor - 1 do
          let mapping = Ircore.Mapping.create () in
          let off = Dutil.const_int brw (k * st) in
          let iv_k = Arith.addi brw iv off in
          Ircore.Mapping.map_value mapping ~from:iv ~to_:iv_k;
          List.iter2
            (fun arg v -> Ircore.Mapping.map_value mapping ~from:arg ~to_:v)
            iters !carried;
          List.iter
            (fun op -> Rewriter.insert brw (Ircore.clone_op ~mapping op))
            orig_ops;
          carried :=
            List.map (Ircore.Mapping.lookup_value mapping) orig_yield_operands
        done;
        Ircore.set_operands yield !carried;
        Ok ()
      end

(* ------------------------------------------------------------------ *)
(* Interchange                                                         *)
(* ------------------------------------------------------------------ *)

(** Interchange [outer] with its immediately nested single inner loop. *)
let interchange rw outer =
  let* () = ensure_for outer in
  let* () = ensure_no_iter_args outer in
  match body_ops outer with
  | [ inner ] when Scf.is_for inner ->
    let* () = ensure_no_iter_args inner in
    let o_iv = Scf.induction_var outer and i_iv = Scf.induction_var inner in
    let o_b = (Scf.lower_bound outer, Scf.upper_bound outer, Scf.step outer) in
    let i_b = (Scf.lower_bound inner, Scf.upper_bound inner, Scf.step inner) in
    let moved = body_ops inner in
    Rewriter.set_ip rw (Builder.Before outer);
    let lb_i, ub_i, st_i = i_b in
    let lb_o, ub_o, st_o = o_b in
    let new_outer =
      Scf.build_for rw ~lb:lb_i ~ub:ub_i ~step:st_i (fun brw iv _ ->
          Ircore.replace_all_uses_with i_iv ~with_:iv;
          ignore
            (Scf.build_for brw ~lb:lb_o ~ub:ub_o ~step:st_o (fun brw' iv' _ ->
                 Ircore.replace_all_uses_with o_iv ~with_:iv';
                 List.iter
                   (fun op ->
                     Ircore.detach op;
                     Rewriter.insert brw' op)
                   moved;
                 []));
          [])
    in
    Rewriter.erase_op rw outer;
    Ok new_outer
  | _ -> err "interchange requires a perfectly nested inner loop"

(* ------------------------------------------------------------------ *)
(* Hoisting (LICM)                                                     *)
(* ------------------------------------------------------------------ *)

(** Hoist loop-invariant pure ops out of [loop], inserting them just before
    it. Returns the moved ops (in their new order). *)
let hoist_invariants ctx rw loop =
  let* () = ensure_for loop in
  let moved = ref [] in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun op ->
        let invariant =
          Context.is_pure ctx op
          && op.Ircore.regions = []
          && List.for_all
               (fun v -> not (Ircore.value_defined_within ~ancestor:loop v))
               (Ircore.operands op)
        in
        if invariant then begin
          Ircore.detach op;
          Ircore.insert_before ~anchor:loop op;
          moved := op :: !moved;
          changed := true
        end)
      (body_ops loop)
  done;
  ignore rw;
  Ok (List.rev !moved)

(* ------------------------------------------------------------------ *)
(* Vectorization                                                       *)
(* ------------------------------------------------------------------ *)

let is_float_scalar t = match t with Typ.Float _ -> true | _ -> false

(** Vectorize the innermost [loop] with vector width [width]: loads/stores
    whose last index is the induction variable become vector ops, float
    arithmetic becomes vector arithmetic, uniform values are splat. The loop
    must have a unit step and a constant trip count divisible by [width],
    and the vectorized memrefs must be contiguous in their last dimension. *)
let vectorize rw loop ~width =
  let* () = ensure_for loop in
  let* () = ensure_no_iter_args loop in
  if not (has_unit_step loop) then err "vectorize requires unit step"
  else
  match structural_trip_count loop with
  | None -> err "vectorize requires a statically known trip count"
  | Some trip ->
    if trip mod width <> 0 then
      err "trip count %d not divisible by vector width %d" trip width
    else begin
      let iv = Scf.induction_var loop in
      let ops = body_ops loop in
      (* analyze: which values become vectors *)
      let varying : (int, unit) Hashtbl.t = Hashtbl.create 16 in
      Hashtbl.replace varying iv.Ircore.v_id ();
      let is_varying v = Hashtbl.mem varying v.Ircore.v_id in
      let last_dim_contiguous v =
        match Ircore.value_typ v with
        | Typ.Memref (_, _, Typ.Identity) -> true
        | Typ.Memref (_, _, Typ.Strided { strides; _ }) -> (
          match List.rev strides with
          | Typ.Static 1 :: _ -> true
          | _ -> false)
        | _ -> false
      in
      let check_op op =
        match op.Ircore.op_name with
        | "memref.load" -> (
          let m = Ircore.operand ~index:0 op in
          let idx = List.tl (Ircore.operands op) in
          match List.rev idx with
          | last :: rest when last == iv ->
            if List.exists is_varying rest then
              err "non-innermost varying index in load"
            else if not (last_dim_contiguous m) then
              err "memref is not contiguous in its last dimension"
            else begin
              Hashtbl.replace varying (Ircore.result op).Ircore.v_id ();
              Ok ()
            end
          | idx_rev ->
            if List.exists is_varying idx_rev then
              err "induction variable used in a non-contiguous position"
            else Ok ())
        | "memref.store" -> (
          let v = Ircore.operand ~index:0 op in
          let m = Ircore.operand ~index:1 op in
          let idx = List.filteri (fun i _ -> i >= 2) (Ircore.operands op) in
          match List.rev idx with
          | last :: rest when last == iv ->
            if List.exists is_varying rest then
              err "non-innermost varying index in store"
            else if not (last_dim_contiguous m) then
              err "memref is not contiguous in its last dimension"
            else Ok ()
          | idx_rev ->
            if List.exists is_varying idx_rev || is_varying v then
              err "varying store with non-vectorizable indexing"
            else Ok ())
        | "arith.addf" | "arith.subf" | "arith.mulf" | "arith.divf"
        | "arith.maximumf" | "arith.minimumf" ->
          if
            List.exists is_varying (Ircore.operands op)
            && is_float_scalar (Ircore.value_typ (Ircore.result op))
          then begin
            Hashtbl.replace varying (Ircore.result op).Ircore.v_id ();
            Ok ()
          end
          else Ok ()
        | "arith.constant" | "arith.addi" | "arith.muli" | "arith.subi" ->
          if List.exists is_varying (Ircore.operands op) then
            err "induction variable used in scalar address arithmetic"
          else Ok ()
        | name ->
          if List.exists is_varying (Ircore.operands op) then
            err "cannot vectorize op %s" name
          else Ok ()
      in
      let rec check_all = function
        | [] -> Ok ()
        | op :: rest ->
          let* () = check_op op in
          check_all rest
      in
      let* () = check_all ops in
      (* rewrite *)
      let elem_typ_of v =
        match Ircore.value_typ v with Typ.Float k -> Typ.Float k | t -> t
      in
      Rewriter.set_ip rw (Builder.Before loop);
      let new_loop =
        Scf.build_for rw ~lb:(Scf.lower_bound loop) ~ub:(Scf.upper_bound loop)
          ~step:(Dutil.const_int rw width) (fun brw new_iv _ ->
            let mapping : (int, Ircore.value) Hashtbl.t = Hashtbl.create 16 in
            Hashtbl.replace mapping iv.Ircore.v_id new_iv;
            let resolve v =
              Option.value ~default:v (Hashtbl.find_opt mapping v.Ircore.v_id)
            in
            let as_vector v =
              let v' = resolve v in
              match Ircore.value_typ v' with
              | Typ.Vector _ -> v'
              | t when is_float_scalar t ->
                Vector.splat brw v' ~vector_typ:(Typ.Vector ([ width ], t))
              | _ -> v'
            in
            List.iter
              (fun op ->
                match op.Ircore.op_name with
                | "memref.load"
                  when is_varying (Ircore.result op) ->
                  let m = resolve (Ircore.operand ~index:0 op) in
                  let idx =
                    List.map resolve (List.tl (Ircore.operands op))
                  in
                  let elt = elem_typ_of (Ircore.result op) in
                  let v =
                    Vector.load brw
                      ~vector_typ:(Typ.Vector ([ width ], elt))
                      m idx
                  in
                  Hashtbl.replace mapping (Ircore.result op).Ircore.v_id v
                | "memref.store"
                  when is_varying (Ircore.operand ~index:0 op)
                       || List.exists
                            (fun x -> x == iv)
                            (Ircore.operands op) ->
                  let v = as_vector (Ircore.operand ~index:0 op) in
                  let m = resolve (Ircore.operand ~index:1 op) in
                  let idx =
                    List.map resolve
                      (List.filteri (fun i _ -> i >= 2) (Ircore.operands op))
                  in
                  Vector.store brw v m idx
                | ("arith.addf" | "arith.subf" | "arith.mulf" | "arith.divf"
                  | "arith.maximumf" | "arith.minimumf")
                  when is_varying (Ircore.result op) ->
                  let a = as_vector (Ircore.operand ~index:0 op) in
                  let b = as_vector (Ircore.operand ~index:1 op) in
                  let v =
                    Rewriter.build1 brw ~operands:[ a; b ]
                      ~result_types:[ Ircore.value_typ a ]
                      op.Ircore.op_name
                  in
                  Hashtbl.replace mapping (Ircore.result op).Ircore.v_id v
                | _ ->
                  (* uniform op: clone with resolved operands *)
                  let cloned = Ircore.clone_op op in
                  Array.iteri
                    (fun i v -> Ircore.set_operand cloned i (resolve v))
                    cloned.Ircore.operands;
                  Rewriter.insert brw cloned;
                  List.iteri
                    (fun i r ->
                      Hashtbl.replace mapping
                        (Ircore.result ~index:i op).Ircore.v_id r)
                    (Ircore.results cloned))
              ops;
            [])
      in
      Rewriter.erase_op rw loop;
      Ok new_loop
    end

let vectorize rw loop ~width =
  let loc = loop.Ircore.op_loc in
  remarked ~pass:"loop-vectorize" ~loc
    ~args:[ ("width", Remark.Int width) ]
    ~applied:"vectorized innermost loop"
    (vectorize rw loop ~width)

(* ------------------------------------------------------------------ *)
(* Matmul-nest matching and microkernel replacement                    *)
(* ------------------------------------------------------------------ *)

type matmul_nest = {
  mm_i : Ircore.op;  (** loop over rows of C *)
  mm_j : Ircore.op;  (** loop over cols of C *)
  mm_k : Ircore.op;  (** reduction loop *)
  mm_a : Ircore.value;
  mm_b : Ircore.value;
  mm_c : Ircore.value;
  mm_m : int;
  mm_n : int;
  mm_k_size : int;
}

(** Match a 3-deep perfect nest computing [C[i,j] += A[i,k] * B[k,j]] with
    unit steps and memory-carried accumulation. *)
let match_matmul (loop : Ircore.op) =
  let* () = ensure_for loop in
  match relaxed_nest loop with
  | [ li; lj; lk ] -> (
    let ivi = Scf.induction_var li
    and ivj = Scf.induction_var lj
    and ivk = Scf.induction_var lk in
    let tripcounts =
      if has_unit_step li && has_unit_step lj && has_unit_step lk then
        ( structural_trip_count li,
          structural_trip_count lj,
          structural_trip_count lk )
      else (None, None, None)
    in
    match tripcounts with
    | Some trip_i, Some trip_j, Some trip_k -> (
      let ops = body_ops lk in
      (* expected: loadC, loadA, loadB (any order), mulf, addf, storeC *)
      let loads =
        List.filter (fun o -> o.Ircore.op_name = "memref.load") ops
      in
      let stores =
        List.filter (fun o -> o.Ircore.op_name = "memref.store") ops
      in
      let muls = List.filter (fun o -> o.Ircore.op_name = "arith.mulf") ops in
      let adds = List.filter (fun o -> o.Ircore.op_name = "arith.addf") ops in
      match (loads, stores, muls, adds) with
      | [ _; _; _ ], [ store ], [ mul ], [ add ]
        when List.length ops = 6 -> (
        let index_pattern o =
          match List.tl (Ircore.operands o) with
          | [ x; y ] ->
            let tag v =
              if v == ivi then `I else if v == ivj then `J
              else if v == ivk then `K
              else `Other
            in
            Some (tag x, tag y)
          | _ -> None
        in
        let find_load pat =
          List.find_opt (fun o -> index_pattern o = Some pat) loads
        in
        match (find_load (`I, `K), find_load (`K, `J), find_load (`I, `J)) with
        | Some la, Some lb, Some lc -> (
          (* check dataflow: add(mul(a,b), c) stored to C[i,j] *)
          let a_v = Ircore.result la
          and b_v = Ircore.result lb
          and c_v = Ircore.result lc in
          let mul_ok =
            let o0 = Ircore.operand ~index:0 mul
            and o1 = Ircore.operand ~index:1 mul in
            (o0 == a_v && o1 == b_v) || (o0 == b_v && o1 == a_v)
          in
          let add_ok =
            let o0 = Ircore.operand ~index:0 add
            and o1 = Ircore.operand ~index:1 add in
            let m_v = Ircore.result mul in
            (o0 == m_v && o1 == c_v) || (o0 == c_v && o1 == m_v)
          in
          let store_ok =
            Ircore.operand ~index:0 store == Ircore.result add
            && (match List.filteri (fun i _ -> i >= 2) (Ircore.operands store) with
               | [ x; y ] -> x == ivi && y == ivj
               | _ -> false)
            && Ircore.operand ~index:1 store == Ircore.operand ~index:0 lc
          in
          if mul_ok && add_ok && store_ok then
            Ok
              {
                mm_i = li;
                mm_j = lj;
                mm_k = lk;
                mm_a = Ircore.operand ~index:0 la;
                mm_b = Ircore.operand ~index:0 lb;
                mm_c = Ircore.operand ~index:0 lc;
                mm_m = trip_i;
                mm_n = trip_j;
                mm_k_size = trip_k;
              }
          else err "loop body is not a matmul accumulation")
        | _ -> err "loads do not form the A[i,k]/B[k,j]/C[i,j] pattern")
      | _ -> err "innermost body is not a 6-op matmul kernel")
    | _ -> err "matmul nest requires constant unit-step bounds")
  | nest -> err "expected a 3-deep perfect nest, found depth %d" (List.length nest)

(** Replace a matched matmul nest by a call to the [libxsmm_gemm] microkernel
    on subviews of A, B, C. Fails (payload unchanged) when the library does
    not support the block sizes — the [alternatives]-compatible behaviour of
    Case Study 4. *)
let replace_with_library_call rw ctx loop ~library =
  ignore ctx;
  if library <> "libxsmm" then err "unknown microkernel library %S" library
  else
    let* mm = match_matmul loop in
    (* interp's model supports limited block shapes, mirrored here *)
    if not (mm.mm_m <= 64 && mm.mm_n <= 64 && mm.mm_n mod 4 = 0 && mm.mm_k_size <= 256)
    then
      err "libxsmm has no kernel for %dx%dx%d" mm.mm_m mm.mm_n mm.mm_k_size
    else begin
      Rewriter.set_ip rw (Builder.Before loop);
      let lb_i = Scf.lower_bound mm.mm_i in
      let lb_j = Scf.lower_bound mm.mm_j in
      let lb_k = Scf.lower_bound mm.mm_k in
      let sub m ~row_off ~col_off ~rows ~cols =
        Memref.subview rw m
          ~offsets:[ Memref.Dynamic row_off; Memref.Dynamic col_off ]
          ~sizes:[ Memref.Static rows; Memref.Static cols ]
          ~strides:[ Memref.Static 1; Memref.Static 1 ]
      in
      let sub_a = sub mm.mm_a ~row_off:lb_i ~col_off:lb_k ~rows:mm.mm_m ~cols:mm.mm_k_size in
      let sub_b = sub mm.mm_b ~row_off:lb_k ~col_off:lb_j ~rows:mm.mm_k_size ~cols:mm.mm_n in
      let sub_c = sub mm.mm_c ~row_off:lb_i ~col_off:lb_j ~rows:mm.mm_m ~cols:mm.mm_n in
      let call =
        Func.call rw ~callee:"libxsmm_gemm"
          ~operands:[ sub_a; sub_b; sub_c ]
          ~result_types:[]
      in
      Rewriter.erase_op rw loop;
      Ok call
    end

let replace_with_library_call rw ctx loop ~library =
  let loc = loop.Ircore.op_loc in
  remarked ~pass:"loop-to-library" ~loc
    ~args:[ ("library", Remark.String library) ]
    ~applied:"replaced matmul nest with a microkernel library call"
    (replace_with_library_call rw ctx loop ~library)
