(** Passes and the pass manager.

    A pass is a named IR transformation with declared pre-/post-conditions
    (the op kinds it consumes and introduces — Section 3.3 of the paper).
    The registry makes passes available both to classic pass-manager
    pipelines and to [transform.apply_registered_pass].

    The pass manager is instrumented: an {!instrumentation} record exposes
    [before_pass]/[after_pass]/[on_failure] hooks, with built-in
    instrumentations for IR printing after each pass, per-pass op-count
    deltas, and a crash reproducer. Failures are structured {!Ir.Diag.t}
    diagnostics rather than strings or exceptions, and timing is reported as
    a hierarchical tree. *)

open Ir

type t = {
  name : string;
  summary : string;
  pre : Opset.t;  (** op kinds consumed/removed by this pass *)
  post : Opset.t;  (** op kinds (potentially) introduced by this pass *)
  function_parallel : bool;
      (** the pass only reads and mutates the subtree it is given, so the
          scheduler may fan it across the isolated-from-above functions of
          a module on the domain pool *)
  run : Context.t -> Ircore.op -> (unit, Diag.t) result;
      (** runs on any op (module or function); must be idempotent on IR that
          contains none of [pre] *)
}

let make ?(summary = "") ?(pre = []) ?(post = []) ?(function_parallel = false)
    ~name run =
  { name; summary; pre; post; function_parallel; run }

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

let registry : (string, t) Hashtbl.t = Hashtbl.create 32

let register p =
  if Hashtbl.mem registry p.name then
    invalid_arg (Fmt.str "pass %s already registered" p.name);
  Hashtbl.replace registry p.name p

let lookup name = Hashtbl.find_opt registry name

let lookup_exn name =
  match lookup name with
  | Some p -> p
  | None -> invalid_arg (Fmt.str "unknown pass %s" name)

let all_registered () =
  Hashtbl.fold (fun _ p acc -> p :: acc) registry []
  |> List.sort (fun a b -> compare a.name b.name)

let pipeline_str passes = String.concat "," (List.map (fun p -> p.name) passes)

(* ------------------------------------------------------------------ *)
(* Hierarchical timing                                                 *)
(* ------------------------------------------------------------------ *)

type timing = {
  t_name : string;
  t_seconds : float;
  t_children : timing list;
}

let rec pp_timing_at ~total ~depth fmt t =
  Fmt.pf fmt "%s%8.3f ms (%5.1f%%)  %s@,"
    (String.make (2 * depth) ' ')
    (t.t_seconds *. 1000.)
    (if total > 0. then 100. *. t.t_seconds /. total else 100.)
    t.t_name;
  List.iter (pp_timing_at ~total ~depth:(depth + 1) fmt) t.t_children

let pp_timing fmt t =
  Fmt.pf fmt "@[<v>%a@]" (fun fmt -> pp_timing_at ~total:t.t_seconds ~depth:0 fmt) t

let rec timing_to_json t =
  Json.Obj
    ([
       ("name", Json.String t.t_name);
       ("seconds", Json.Float t.t_seconds);
     ]
    @
    match t.t_children with
    | [] -> []
    | cs -> [ ("children", Json.List (List.map timing_to_json cs)) ])

(* ------------------------------------------------------------------ *)
(* Instrumentation                                                     *)
(* ------------------------------------------------------------------ *)

type instrumentation = {
  i_name : string;
  i_before_pass : t -> Ircore.op -> unit;
  i_after_pass : t -> Ircore.op -> unit;
  i_on_failure : t -> Ircore.op -> remaining:t list -> Diag.t -> unit;
      (** [remaining] is the failing pass followed by the passes that did
          not run — exactly the pipeline suffix a reproducer must re-run *)
}

let nop2 _ _ = ()
let nop_failure _ _ ~remaining:_ _ = ()

let instrumentation ?(before_pass = nop2) ?(after_pass = nop2)
    ?(on_failure = nop_failure) name =
  {
    i_name = name;
    i_before_pass = before_pass;
    i_after_pass = after_pass;
    i_on_failure = on_failure;
  }

(** Print the IR after each pass (mlir-opt's [-print-ir-after-all]). With
    [only_changed], dumps are gated on {!Ir.Fingerprint} inequality: a pass
    that left the module structurally identical prints nothing
    ([--print-ir-after-all=always] restores the old behavior). *)
let print_ir_after_all ?(ppf = Fmt.stderr) ?(only_changed = false) () =
  let before = ref None in
  instrumentation "print-ir-after-all"
    ~before_pass:(fun _ op ->
      if only_changed then before := Some (Fingerprint.op op))
    ~after_pass:(fun p op ->
      let changed =
        (not only_changed)
        ||
        match !before with
        | Some fp -> not (Fingerprint.equal fp (Fingerprint.op op))
        | None -> true
      in
      if changed then
        Fmt.pf ppf "// -----// IR dump after pass '%s' //----- //@.%a@." p.name
          Printer.pp_op op)

let count_ops_by_name op =
  let counts = Hashtbl.create 64 in
  Ircore.walk_op op ~pre:(fun o ->
      Hashtbl.replace counts o.Ircore.op_name
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts o.Ircore.op_name)));
  counts

(** Per-pass op-count deltas: returns the instrumentation plus a getter
    yielding, per executed pass in order, the op kinds whose population
    changed (op name, signed delta). *)
let op_count_deltas () =
  let before = ref (Hashtbl.create 0) in
  let deltas = ref [] in
  let record p op =
    let after = count_ops_by_name op in
    let delta = ref [] in
    Hashtbl.iter
      (fun name n ->
        let was = Option.value ~default:0 (Hashtbl.find_opt !before name) in
        if n <> was then delta := (name, n - was) :: !delta)
      after;
    Hashtbl.iter
      (fun name was ->
        if not (Hashtbl.mem after name) then delta := (name, -was) :: !delta)
      !before;
    deltas := (p.name, List.sort compare !delta) :: !deltas
  in
  let instr =
    instrumentation "op-count-deltas"
      ~before_pass:(fun _ op -> before := count_ops_by_name op)
      ~after_pass:record
      ~on_failure:(fun p op ~remaining:_ _ -> record p op)
  in
  (instr, fun () -> List.rev !deltas)

let pp_op_deltas fmt deltas =
  List.iter
    (fun (pass, delta) ->
      match delta with
      | [] -> ()
      | _ ->
        Fmt.pf fmt "// pass %s:%a@," pass
          (fun fmt ->
            List.iter (fun (name, d) -> Fmt.pf fmt " %s%+d" name d))
          delta)
    deltas

let pp_op_deltas fmt deltas = Fmt.pf fmt "@[<v>%a@]" pp_op_deltas deltas

let op_deltas_to_json deltas =
  Json.List
    (List.map
       (fun (pass, delta) ->
         Json.Obj
           [
             ("pass", Json.String pass);
             ( "deltas",
               Json.Obj (List.map (fun (n, d) -> (n, Json.Int d)) delta) );
           ])
       deltas)

(** Crash reproducer: snapshots the IR before each pass; when a pass fails,
    dumps the pre-pass IR and the remaining pipeline to [path] so that
    [otd-opt <path>] replays the failure. *)
let reproducer ~path =
  let last_ir = ref None in
  instrumentation "crash-reproducer"
    ~before_pass:(fun _ op -> last_ir := Some (Fmt.str "%a" Printer.pp_op op))
    ~on_failure:(fun p _op ~remaining d ->
      match !last_ir with
      | None -> ()
      | Some ir ->
        let oneline s =
          String.map (function '\n' | '\r' -> ' ' | c -> c) s
        in
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () ->
            Printf.fprintf oc
              "// otd-opt crash reproducer\n\
               // failing pass: %s\n\
               // diagnostic: %s\n\
               // configuration: --pass-pipeline=%s\n\
               %s\n"
              p.name
              (oneline (Diag.to_string d))
              (pipeline_str remaining) ir))

(* ------------------------------------------------------------------ *)
(* Pass manager                                                        *)
(* ------------------------------------------------------------------ *)

type run_result = {
  timing : timing;  (** root node spans the whole pipeline *)
  total_seconds : float;
}

(* global statistics (Ir.Stats) *)
let stat_pipelines = Stats.counter ~component:"pass" "pipelines_run"
let stat_passes = Stats.counter ~component:"pass" "passes_run"
let stat_failures = Stats.counter ~component:"pass" "failures"

let stat_exceptions_contained =
  Stats.counter ~component:"pass" "exceptions_contained"
    ~desc:"OCaml exceptions converted to pass failures by the barrier"

(** Exceptions that must never be swallowed by a containment barrier. *)
let fatal_exn = function
  | Sys.Break | Out_of_memory -> true
  | _ -> false

(** Run a single pass behind an exception barrier: a raised OCaml exception
    becomes a structured pass-failure diagnostic carrying the backtrace as
    notes, so the failure drives the crash-reproducer instrumentation
    instead of unwinding with the IR in an arbitrary state. *)
let run_contained p ctx op =
  match p.run ctx op with
  | (Ok () | Error _) as r -> r
  | exception e when not (fatal_exn e) ->
    let bt = Printexc.get_raw_backtrace () in
    Stats.incr stat_exceptions_contained;
    Stdlib.Error
      (Diag.of_exn ~context:(Fmt.str "pass '%s'" p.name) e bt)

(* ------------------------------------------------------------------ *)
(* Function-at-a-time parallel scheduling                              *)
(* ------------------------------------------------------------------ *)

let stat_parallel_fanouts =
  Stats.counter ~component:"pass" "parallel_fanouts"
    ~desc:"passes fanned across module functions on the domain pool"

let stat_full_verifies =
  Stats.counter ~component:"pass" "full_verifies"
    ~desc:"post-pass verifications that re-walked the whole module"

let stat_incremental_verifies =
  Stats.counter ~component:"pass" "incremental_verifies"
    ~desc:"post-pass verifications restricted to pass-touched functions"

(** The isolated-from-above ops a per-function pass may be fanned over:
    the direct children of a [builtin.module] whose single block consists
    solely of [func.func] ops (two or more — one function has nothing to
    overlap with). Any other child shape falls back to the sequential
    whole-module run. *)
let isolated_funcs op =
  if op.Ircore.op_name <> Dialects.Builtin.module_op then None
  else
    match op.Ircore.regions with
    | [ r ] -> (
      match Ircore.region_blocks r with
      | [ b ] ->
        let ops = Ircore.block_ops b in
        if
          List.compare_length_with ops 1 > 0
          && List.for_all (fun o -> o.Ircore.op_name = Dialects.Func.func_op) ops
        then Some ops
        else None
      | _ -> None)
    | _ -> None

(** What the post-pass verifier must re-check. *)
type dirty = All | Funcs of Ircore.op list

(** Run [p] sequentially on [op]. When [track], an ambient rewriter
    listener records which top-level children the pass touched, so
    [verify_each] can re-verify only those; any event on the root, on a
    direct child itself (function added/erased/renamed), or in a detached
    tree degrades to a full re-verify. *)
let run_sequential ~track p ctx op =
  if not track then (run_contained p ctx op, All)
  else begin
    let dirty : (int, Ircore.op) Hashtbl.t = Hashtbl.create 16 in
    let structural = ref false in
    let note o =
      if o == op then structural := true
      else begin
        (* the direct child of [op] enclosing [o], if [o] is attached *)
        let rec climb o =
          match Ircore.parent_op o with
          | None -> None
          | Some parent -> if parent == op then Some o else climb parent
        in
        match climb o with
        | Some c when c != o -> Hashtbl.replace dirty c.Ircore.op_id c
        | _ -> structural := true
      end
    in
    let listener =
      Rewriter.
        {
          on_inserted = note;
          on_replaced = (fun o _ -> note o);
          on_erased = note;
          on_modified = note;
        }
    in
    let r =
      Rewriter.with_listener listener (fun () -> run_contained p ctx op)
    in
    let d =
      if !structural || Result.is_error r then All
      else Funcs (Hashtbl.fold (fun _ o acc -> o :: acc) dirty [])
    in
    (r, d)
  end

(** Fan [p] across [funcs] on the domain pool, one task per function.

    Determinism: each task runs with its own ambient capture — a per-task
    diagnostic buffer ({!Diag.with_domain_capture}), trace sink and remark
    buffer — while sharing the parent's budget (atomic counters, so limits
    bind globally and exhaustion on one domain stops the others at their
    next check) and the parent's profiler (domain-sharded, so spans land
    in per-domain Perfetto lanes). After the barrier, the captured
    diagnostics, trace events and remarks are replayed in source order on
    the calling domain, and the reported failure is the first failing
    function in source order — byte-identical output to the sequential
    schedule regardless of interleaving. *)
let run_parallel ~track p ctx funcs =
  Stats.incr stat_parallel_fanouts;
  let arr = Array.of_list funcs in
  let n = Array.length arr in
  let results = Array.make n (Ok ()) in
  let diags = Array.make n [] in
  let remarks = Array.make n [] in
  let sinks = Array.make n None in
  let changed = Array.make n false in
  let captures = Array.make n None in
  let parent_budget = Budget.active () in
  let parent_profiler = Profiler.active () in
  let parent_tracing = Trace.tracing () in
  let parent_remarking = Remark.enabled () in
  let parent_action = Action.active () in
  Pool.run n (fun i ->
      let func = arr.(i) in
      let dbuf = ref [] and rbuf = ref [] in
      let sink = if parent_tracing then Some (Trace.create ()) else None in
      let with_budget f =
        match parent_budget with
        | None -> f ()
        | Some b -> Budget.with_budget b f
      in
      let with_prof f =
        match parent_profiler with
        | None -> f ()
        | Some pr -> Profiler.with_profiler pr f
      in
      let with_trace f =
        match sink with None -> f () | Some s -> Trace.with_sink s f
      in
      let with_remark f =
        if parent_remarking then
          Remark.with_handler (fun r -> rbuf := r :: !rbuf) f
        else f ()
      in
      let with_action f =
        (* like diagnostics: record actions and provenance into a per-task
           capture, replayed in source order after the barrier *)
        match parent_action with
        | None -> f ()
        | Some a ->
          let c = Action.capture a in
          captures.(i) <- Some c;
          Action.with_capture c f
      in
      let with_track f =
        if not track then f ()
        else
          let mark _ = changed.(i) <- true in
          Rewriter.with_listener
            Rewriter.
              {
                on_inserted = mark;
                on_replaced = (fun _ _ -> changed.(i) <- true);
                on_erased = mark;
                on_modified = mark;
              }
            f
      in
      let r =
        Diag.with_domain_capture (fun d -> dbuf := d :: !dbuf) @@ fun () ->
        with_budget @@ fun () ->
        with_prof @@ fun () ->
        with_trace @@ fun () ->
        with_remark @@ fun () ->
        with_action @@ fun () ->
        with_track @@ fun () -> run_contained p ctx func
      in
      results.(i) <- r;
      diags.(i) <- List.rev !dbuf;
      remarks.(i) <- List.rev !rbuf;
      sinks.(i) <- sink);
  (* ordered merge: replay what each function captured, in source order *)
  let eng = Context.diag_engine ctx in
  let first_error = ref None in
  for i = 0 to n - 1 do
    List.iter (Diag.emit eng) diags.(i);
    (match sinks.(i) with
    | Some s -> List.iter Trace.record (Trace.events s)
    | None -> ());
    List.iter Remark.emit remarks.(i);
    (match (parent_action, captures.(i)) with
    | Some a, Some c -> Action.replay a c
    | _ -> ());
    match (results.(i), !first_error) with
    | Stdlib.Error d, None -> first_error := Some d
    | _ -> ()
  done;
  match !first_error with
  | Some d -> (Stdlib.Error d, All)
  | None ->
    let dirty = ref [] in
    for i = n - 1 downto 0 do
      if changed.(i) then dirty := arr.(i) :: !dirty
    done;
    (Ok (), if track then Funcs !dirty else All)

(** Run one pass over [op], parallelizing across module functions when the
    pass allows it and more than one domain is configured. Returns the
    result plus what the incremental verifier must re-check ([track]). *)
let run_scheduled ~track p ctx op =
  match
    (* action handlers (debug counters, snapshots) steer a globally ordered
       action stream; with one installed the fan-out must not happen *)
    if
      p.function_parallel && Pool.jobs () > 1
      && not (Action.sequential_only ())
    then isolated_funcs op
    else None
  with
  | Some funcs -> run_parallel ~track p ctx funcs
  | None -> run_sequential ~track p ctx op

(** Run a pipeline of passes over [op], timing each pass, driving the given
    instrumentations, and reporting to the ambient observability channels:
    a nested {!Ir.Profiler} span per pipeline/pass/verify and the [pass]
    statistics of {!Ir.Stats}. Passes declared [function_parallel] are
    fanned across a module's functions on the {!Ir.Pool} domain pool (when
    [Pool.jobs () > 1]) with deterministic, source-ordered merging of
    diagnostics, trace events and remarks. With [verify_each], the
    post-pass verifier is incremental: rewriter listener events record
    which functions a pass touched and only those are re-walked. Returns
    the first failure as a structured diagnostic (with a note naming the
    failing pass). *)
let run_pipeline ?(verify_each = false) ?(instrumentations = []) ctx passes op
    =
  Stats.incr stat_pipelines;
  Profiler.span ~cat:"pass"
    ~args:[ ("passes", Profiler.Aint (List.length passes)) ]
    "pipeline"
  @@ fun () ->
  let t_start = Unix.gettimeofday () in
  let fail p remaining d =
    Stats.incr stat_failures;
    let d = Diag.add_note d (Diag.note "while running pass '%s'" p.name) in
    List.iter (fun i -> i.i_on_failure p op ~remaining d) instrumentations;
    Stdlib.Error d
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | p :: rest -> (
      (* cooperative budget: a pass boundary is a safe point to give up,
         and routing exhaustion through [fail] produces a reproducer with
         exactly the unfinished pipeline suffix *)
      match Budget.checkpoint () with
      | Some reason ->
        fail p (p :: rest)
          (Diag.error "pass pipeline stopped before '%s': %s" p.name reason)
      | None -> (
      List.iter (fun i -> i.i_before_pass p op) instrumentations;
      let t0 = Unix.gettimeofday () in
      match
        Profiler.span ~cat:"pass" p.name (fun () ->
            (* the pass-level action: a vetoed pass reports success with
               nothing dirty, exactly like a pass that matched nothing *)
            Action.run ~tag:"pass" ~desc:p.name ~loc:op.Ircore.op_loc
              ~root:op
              ~skipped:(Ok (), Funcs [])
              (fun () -> run_scheduled ~track:verify_each p ctx op))
      with
      | Error d, _ -> fail p (p :: rest) d
      | Ok (), dirty -> (
        Stats.incr stat_passes;
        let t_run = Unix.gettimeofday () -. t0 in
        let verify_result =
          if not verify_each then Ok []
          else
            let verified =
              Profiler.span ~cat:"pass" "verify" (fun () ->
                  match dirty with
                  | All ->
                    Stats.incr stat_full_verifies;
                    Verifier.verify ctx op
                  | Funcs fns ->
                    (* re-verify only what the pass touched; clean passes
                       verify nothing *)
                    Stats.incr stat_incremental_verifies;
                    let rec check = function
                      | [] -> Ok ()
                      | f :: rest -> (
                        match Verifier.verify ctx f with
                        | Ok () -> check rest
                        | Error _ as e -> e)
                    in
                    check fns)
            in
            match verified with
            | Ok () ->
              Ok
                [
                  {
                    t_name = "verify";
                    t_seconds = Unix.gettimeofday () -. t0 -. t_run;
                    t_children = [];
                  };
                ]
            | Error diags ->
              Stdlib.Error
                (Diag.error
                   ~notes:(List.map (fun d -> Diag.{ d with severity = Note }) diags)
                   "verification failed after pass '%s'" p.name)
        in
        match verify_result with
        | Error d -> fail p (p :: rest) d
        | Ok verify_children ->
          List.iter (fun i -> i.i_after_pass p op) instrumentations;
          let t_total = Unix.gettimeofday () -. t0 in
          let children =
            if verify_each then
              { t_name = "run"; t_seconds = t_run; t_children = [] }
              :: verify_children
            else []
          in
          go
            ({ t_name = p.name; t_seconds = t_total; t_children = children }
            :: acc)
            rest)))
  in
  match go [] passes with
  | Error d -> Stdlib.Error d
  | Ok children ->
    let total = Unix.gettimeofday () -. t_start in
    Ok
      {
        timing =
          { t_name = "pipeline"; t_seconds = total; t_children = children };
        total_seconds = total;
      }

(** Parse a comma-separated pipeline string, e.g.
    ["convert-scf-to-cf,convert-arith-to-llvm"]. Unknown pass names are all
    accumulated into a single diagnostic carrying one note per bad segment
    with its position in the string. *)
let parse_pipeline str =
  (* split on ',' keeping the offset of each trimmed segment *)
  let segments =
    let out = ref [] in
    let seg_start = ref 0 in
    let flush stop =
      let raw = String.sub str !seg_start (stop - !seg_start) in
      let trimmed = String.trim raw in
      if trimmed <> "" then begin
        (* offset of the trimmed name within [str] *)
        let lead = ref 0 in
        while
          !lead < String.length raw
          && (raw.[!lead] = ' ' || raw.[!lead] = '\t')
        do
          incr lead
        done;
        out := (trimmed, !seg_start + !lead) :: !out
      end;
      seg_start := stop + 1
    in
    String.iteri (fun i c -> if c = ',' then flush i) str;
    flush (String.length str);
    List.rev !out
  in
  let resolved =
    List.map
      (fun (name, off) ->
        match lookup name with
        | Some p -> Ok p
        | None -> Stdlib.Error (name, off))
      segments
  in
  let unknown =
    List.filter_map
      (function Stdlib.Error bad -> Some bad | Ok _ -> None)
      resolved
  in
  match unknown with
  | [] ->
    Ok (List.filter_map (function Ok p -> Some p | Error _ -> None) resolved)
  | bad ->
    Stdlib.Error
      (Diag.error
         ~notes:
           (List.map
              (fun (name, off) ->
                Diag.note "unknown pass '%s' at position %d" name off)
              bad)
         "pipeline contains %d unknown pass%s: %s" (List.length bad)
         (if List.length bad = 1 then "" else "es")
         (String.concat ", " (List.map fst bad)))

(* ------------------------------------------------------------------ *)
(* Helpers for writing conversion passes                               *)
(* ------------------------------------------------------------------ *)

(** Apply [rewrite] to every op named [op_name] in the subtree (snapshot
    first, so rewrites may erase the ops). *)
let for_each_op ~op_name root f =
  List.iter f (Symbol.collect_ops ~op_name root)

(** Apply [f] to every op satisfying [p]. *)
let for_each ~p root f = List.iter f (Symbol.collect ~f:p root)

let ops_of_dialect root dialect =
  Symbol.collect root ~f:(fun op -> Ircore.op_dialect op = dialect)
