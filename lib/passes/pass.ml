(** Passes and the pass manager.

    A pass is a named IR transformation with declared pre-/post-conditions
    (the op kinds it consumes and introduces — Section 3.3 of the paper).
    The registry makes passes available both to classic pass-manager
    pipelines and to [transform.apply_registered_pass].

    The pass manager is instrumented: an {!instrumentation} record exposes
    [before_pass]/[after_pass]/[on_failure] hooks, with built-in
    instrumentations for IR printing after each pass, per-pass op-count
    deltas, and a crash reproducer. Failures are structured {!Ir.Diag.t}
    diagnostics rather than strings or exceptions, and timing is reported as
    a hierarchical tree. *)

open Ir

type t = {
  name : string;
  summary : string;
  pre : Opset.t;  (** op kinds consumed/removed by this pass *)
  post : Opset.t;  (** op kinds (potentially) introduced by this pass *)
  run : Context.t -> Ircore.op -> (unit, Diag.t) result;
      (** runs on any op (module or function); must be idempotent on IR that
          contains none of [pre] *)
}

let make ?(summary = "") ?(pre = []) ?(post = []) ~name run =
  { name; summary; pre; post; run }

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

let registry : (string, t) Hashtbl.t = Hashtbl.create 32

let register p =
  if Hashtbl.mem registry p.name then
    invalid_arg (Fmt.str "pass %s already registered" p.name);
  Hashtbl.replace registry p.name p

let lookup name = Hashtbl.find_opt registry name

let lookup_exn name =
  match lookup name with
  | Some p -> p
  | None -> invalid_arg (Fmt.str "unknown pass %s" name)

let all_registered () =
  Hashtbl.fold (fun _ p acc -> p :: acc) registry []
  |> List.sort (fun a b -> compare a.name b.name)

let pipeline_str passes = String.concat "," (List.map (fun p -> p.name) passes)

(* ------------------------------------------------------------------ *)
(* Hierarchical timing                                                 *)
(* ------------------------------------------------------------------ *)

type timing = {
  t_name : string;
  t_seconds : float;
  t_children : timing list;
}

let rec pp_timing_at ~total ~depth fmt t =
  Fmt.pf fmt "%s%8.3f ms (%5.1f%%)  %s@,"
    (String.make (2 * depth) ' ')
    (t.t_seconds *. 1000.)
    (if total > 0. then 100. *. t.t_seconds /. total else 100.)
    t.t_name;
  List.iter (pp_timing_at ~total ~depth:(depth + 1) fmt) t.t_children

let pp_timing fmt t =
  Fmt.pf fmt "@[<v>%a@]" (fun fmt -> pp_timing_at ~total:t.t_seconds ~depth:0 fmt) t

let rec timing_to_json t =
  Json.Obj
    ([
       ("name", Json.String t.t_name);
       ("seconds", Json.Float t.t_seconds);
     ]
    @
    match t.t_children with
    | [] -> []
    | cs -> [ ("children", Json.List (List.map timing_to_json cs)) ])

(* ------------------------------------------------------------------ *)
(* Instrumentation                                                     *)
(* ------------------------------------------------------------------ *)

type instrumentation = {
  i_name : string;
  i_before_pass : t -> Ircore.op -> unit;
  i_after_pass : t -> Ircore.op -> unit;
  i_on_failure : t -> Ircore.op -> remaining:t list -> Diag.t -> unit;
      (** [remaining] is the failing pass followed by the passes that did
          not run — exactly the pipeline suffix a reproducer must re-run *)
}

let nop2 _ _ = ()
let nop_failure _ _ ~remaining:_ _ = ()

let instrumentation ?(before_pass = nop2) ?(after_pass = nop2)
    ?(on_failure = nop_failure) name =
  {
    i_name = name;
    i_before_pass = before_pass;
    i_after_pass = after_pass;
    i_on_failure = on_failure;
  }

(** Print the IR after each pass (mlir-opt's [-print-ir-after-all]). *)
let print_ir_after_all ?(ppf = Fmt.stderr) () =
  instrumentation "print-ir-after-all"
    ~after_pass:(fun p op ->
      Fmt.pf ppf "// -----// IR dump after pass '%s' //----- //@.%a@." p.name
        Printer.pp_op op)

let count_ops_by_name op =
  let counts = Hashtbl.create 64 in
  Ircore.walk_op op ~pre:(fun o ->
      Hashtbl.replace counts o.Ircore.op_name
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts o.Ircore.op_name)));
  counts

(** Per-pass op-count deltas: returns the instrumentation plus a getter
    yielding, per executed pass in order, the op kinds whose population
    changed (op name, signed delta). *)
let op_count_deltas () =
  let before = ref (Hashtbl.create 0) in
  let deltas = ref [] in
  let record p op =
    let after = count_ops_by_name op in
    let delta = ref [] in
    Hashtbl.iter
      (fun name n ->
        let was = Option.value ~default:0 (Hashtbl.find_opt !before name) in
        if n <> was then delta := (name, n - was) :: !delta)
      after;
    Hashtbl.iter
      (fun name was ->
        if not (Hashtbl.mem after name) then delta := (name, -was) :: !delta)
      !before;
    deltas := (p.name, List.sort compare !delta) :: !deltas
  in
  let instr =
    instrumentation "op-count-deltas"
      ~before_pass:(fun _ op -> before := count_ops_by_name op)
      ~after_pass:record
      ~on_failure:(fun p op ~remaining:_ _ -> record p op)
  in
  (instr, fun () -> List.rev !deltas)

let pp_op_deltas fmt deltas =
  List.iter
    (fun (pass, delta) ->
      match delta with
      | [] -> ()
      | _ ->
        Fmt.pf fmt "// pass %s:%a@," pass
          (fun fmt ->
            List.iter (fun (name, d) -> Fmt.pf fmt " %s%+d" name d))
          delta)
    deltas

let pp_op_deltas fmt deltas = Fmt.pf fmt "@[<v>%a@]" pp_op_deltas deltas

let op_deltas_to_json deltas =
  Json.List
    (List.map
       (fun (pass, delta) ->
         Json.Obj
           [
             ("pass", Json.String pass);
             ( "deltas",
               Json.Obj (List.map (fun (n, d) -> (n, Json.Int d)) delta) );
           ])
       deltas)

(** Crash reproducer: snapshots the IR before each pass; when a pass fails,
    dumps the pre-pass IR and the remaining pipeline to [path] so that
    [otd-opt <path>] replays the failure. *)
let reproducer ~path =
  let last_ir = ref None in
  instrumentation "crash-reproducer"
    ~before_pass:(fun _ op -> last_ir := Some (Fmt.str "%a" Printer.pp_op op))
    ~on_failure:(fun p _op ~remaining d ->
      match !last_ir with
      | None -> ()
      | Some ir ->
        let oneline s =
          String.map (function '\n' | '\r' -> ' ' | c -> c) s
        in
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () ->
            Printf.fprintf oc
              "// otd-opt crash reproducer\n\
               // failing pass: %s\n\
               // diagnostic: %s\n\
               // configuration: --pass-pipeline=%s\n\
               %s\n"
              p.name
              (oneline (Diag.to_string d))
              (pipeline_str remaining) ir))

(* ------------------------------------------------------------------ *)
(* Pass manager                                                        *)
(* ------------------------------------------------------------------ *)

type run_result = {
  timing : timing;  (** root node spans the whole pipeline *)
  total_seconds : float;
}

(* global statistics (Ir.Stats) *)
let stat_pipelines = Stats.counter ~component:"pass" "pipelines_run"
let stat_passes = Stats.counter ~component:"pass" "passes_run"
let stat_failures = Stats.counter ~component:"pass" "failures"

let stat_exceptions_contained =
  Stats.counter ~component:"pass" "exceptions_contained"
    ~desc:"OCaml exceptions converted to pass failures by the barrier"

(** Exceptions that must never be swallowed by a containment barrier. *)
let fatal_exn = function
  | Sys.Break | Out_of_memory -> true
  | _ -> false

(** Run a single pass behind an exception barrier: a raised OCaml exception
    becomes a structured pass-failure diagnostic carrying the backtrace as
    notes, so the failure drives the crash-reproducer instrumentation
    instead of unwinding with the IR in an arbitrary state. *)
let run_contained p ctx op =
  match p.run ctx op with
  | (Ok () | Error _) as r -> r
  | exception e when not (fatal_exn e) ->
    let bt = Printexc.get_raw_backtrace () in
    Stats.incr stat_exceptions_contained;
    Stdlib.Error
      (Diag.of_exn ~context:(Fmt.str "pass '%s'" p.name) e bt)

(** Run a pipeline of passes over [op], timing each pass, driving the given
    instrumentations, and reporting to the ambient observability channels:
    a nested {!Ir.Profiler} span per pipeline/pass/verify, the per-pass
    {!Ir.Trace} compatibility event, and the [pass] statistics of
    {!Ir.Stats}. Returns the first failure as a structured diagnostic
    (with a note naming the failing pass). *)
let run_pipeline ?(verify_each = false) ?(instrumentations = []) ctx passes op
    =
  Stats.incr stat_pipelines;
  Profiler.span ~cat:"pass"
    ~args:[ ("passes", Profiler.Aint (List.length passes)) ]
    "pipeline"
  @@ fun () ->
  let t_start = Unix.gettimeofday () in
  let fail p remaining d =
    Stats.incr stat_failures;
    let d = Diag.add_note d (Diag.note "while running pass '%s'" p.name) in
    List.iter (fun i -> i.i_on_failure p op ~remaining d) instrumentations;
    Stdlib.Error d
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | p :: rest -> (
      (* cooperative budget: a pass boundary is a safe point to give up,
         and routing exhaustion through [fail] produces a reproducer with
         exactly the unfinished pipeline suffix *)
      match Budget.checkpoint () with
      | Some reason ->
        fail p (p :: rest)
          (Diag.error "pass pipeline stopped before '%s': %s" p.name reason)
      | None -> (
      List.iter (fun i -> i.i_before_pass p op) instrumentations;
      let t0 = Unix.gettimeofday () in
      match Profiler.span ~cat:"pass" p.name (fun () -> run_contained p ctx op) with
      | Error d -> fail p (p :: rest) d
      | Ok () -> (
        Stats.incr stat_passes;
        let t_run = Unix.gettimeofday () -. t0 in
        let verify_result =
          if not verify_each then Ok []
          else
            match
              Profiler.span ~cat:"pass" "verify" (fun () ->
                  Verifier.verify ctx op)
            with
            | Ok () ->
              Ok
                [
                  {
                    t_name = "verify";
                    t_seconds = Unix.gettimeofday () -. t0 -. t_run;
                    t_children = [];
                  };
                ]
            | Error diags ->
              Stdlib.Error
                (Diag.error
                   ~notes:(List.map (fun d -> Diag.{ d with severity = Note }) diags)
                   "verification failed after pass '%s'" p.name)
        in
        match verify_result with
        | Error d -> fail p (p :: rest) d
        | Ok verify_children ->
          List.iter (fun i -> i.i_after_pass p op) instrumentations;
          let t_total = Unix.gettimeofday () -. t0 in
          Trace.record_pass ~name:p.name ~seconds:t_total;
          let children =
            if verify_each then
              { t_name = "run"; t_seconds = t_run; t_children = [] }
              :: verify_children
            else []
          in
          go
            ({ t_name = p.name; t_seconds = t_total; t_children = children }
            :: acc)
            rest)))
  in
  match go [] passes with
  | Error d -> Stdlib.Error d
  | Ok children ->
    let total = Unix.gettimeofday () -. t_start in
    Ok
      {
        timing =
          { t_name = "pipeline"; t_seconds = total; t_children = children };
        total_seconds = total;
      }

(** Parse a comma-separated pipeline string, e.g.
    ["convert-scf-to-cf,convert-arith-to-llvm"]. Unknown pass names are all
    accumulated into a single diagnostic carrying one note per bad segment
    with its position in the string. *)
let parse_pipeline str =
  (* split on ',' keeping the offset of each trimmed segment *)
  let segments =
    let out = ref [] in
    let seg_start = ref 0 in
    let flush stop =
      let raw = String.sub str !seg_start (stop - !seg_start) in
      let trimmed = String.trim raw in
      if trimmed <> "" then begin
        (* offset of the trimmed name within [str] *)
        let lead = ref 0 in
        while
          !lead < String.length raw
          && (raw.[!lead] = ' ' || raw.[!lead] = '\t')
        do
          incr lead
        done;
        out := (trimmed, !seg_start + !lead) :: !out
      end;
      seg_start := stop + 1
    in
    String.iteri (fun i c -> if c = ',' then flush i) str;
    flush (String.length str);
    List.rev !out
  in
  let resolved =
    List.map
      (fun (name, off) ->
        match lookup name with
        | Some p -> Ok p
        | None -> Stdlib.Error (name, off))
      segments
  in
  let unknown =
    List.filter_map
      (function Stdlib.Error bad -> Some bad | Ok _ -> None)
      resolved
  in
  match unknown with
  | [] ->
    Ok (List.filter_map (function Ok p -> Some p | Error _ -> None) resolved)
  | bad ->
    Stdlib.Error
      (Diag.error
         ~notes:
           (List.map
              (fun (name, off) ->
                Diag.note "unknown pass '%s' at position %d" name off)
              bad)
         "pipeline contains %d unknown pass%s: %s" (List.length bad)
         (if List.length bad = 1 then "" else "es")
         (String.concat ", " (List.map fst bad)))

(* ------------------------------------------------------------------ *)
(* Helpers for writing conversion passes                               *)
(* ------------------------------------------------------------------ *)

(** Apply [rewrite] to every op named [op_name] in the subtree (snapshot
    first, so rewrites may erase the ops). *)
let for_each_op ~op_name root f =
  List.iter f (Symbol.collect_ops ~op_name root)

(** Apply [f] to every op satisfying [p]. *)
let for_each ~p root f = List.iter f (Symbol.collect ~f:p root)

let ops_of_dialect root dialect =
  Symbol.collect root ~f:(fun op -> Ircore.op_dialect op = dialect)
