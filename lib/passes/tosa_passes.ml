(** The TOSA → Linalg lowering pipeline of Case Study 1 (Table 1):
    the pass sequence used by the MLIR TensorFlow ecosystem to bring
    imported models down to structured linalg operations. *)

open Ir
open Dialects

let tensor_or t = t

(* ------------------------------------------------------------------ *)
(* tosa-optional-decompositions                                        *)
(* ------------------------------------------------------------------ *)

(** Decompose composite TOSA ops: fully_connected -> matmul + add;
    depthwise_conv2d stays (handled by named lowering). *)
let run_decompositions _ctx top =
  let rw = Rewriter.create () in
  Pass.for_each_op ~op_name:"tosa.fully_connected" top (fun op ->
      Rewriter.set_ip rw (Builder.Before op);
      match Ircore.operands op with
      | [ input; weights; bias ] ->
        let out_t = Ircore.value_typ (Ircore.result op) in
        let mm =
          Tosa.binary rw "tosa.matmul" input weights ~result_typ:out_t
        in
        let add = Tosa.binary rw "tosa.add" mm bias ~result_typ:out_t in
        Rewriter.replace_op rw op ~with_:[ add ]
      | [ input; weights ] ->
        let out_t = Ircore.value_typ (Ircore.result op) in
        let mm =
          Tosa.binary rw "tosa.matmul" input weights ~result_typ:out_t
        in
        Rewriter.replace_op rw op ~with_:[ mm ]
      | _ -> ());
  Ok ()

(* ------------------------------------------------------------------ *)
(* tosa-infer-shapes                                                   *)
(* ------------------------------------------------------------------ *)

(** Propagate static shapes: unranked results of elementwise ops take their
    operand's type. *)
let run_infer_shapes _ctx top =
  Ircore.walk_op top ~pre:(fun op ->
      if Ircore.op_dialect op = "tosa" && Ircore.num_results op = 1 then
        let r = Ircore.result op in
        match Ircore.value_typ r with
        | Typ.Unranked_tensor _ -> (
          match Ircore.operands op with
          | v :: _ -> (
            match Ircore.value_typ v with
            | Typ.Ranked_tensor _ as t -> r.Ircore.v_typ <- tensor_or t
            | _ -> ())
          | [] -> ())
        | _ -> ());
  Ok ()

(* ------------------------------------------------------------------ *)
(* tosa-to-linalg-named                                                *)
(* ------------------------------------------------------------------ *)

let named_lowering =
  [
    ("tosa.matmul", Linalg.batch_matmul_op);
    ("tosa.conv2d", Linalg.conv_2d_op);
    ("tosa.depthwise_conv2d", Linalg.conv_2d_op);
    ("tosa.max_pool2d", Linalg.pooling_op);
    ("tosa.avg_pool2d", Linalg.pooling_op);
    ("tosa.transpose", Linalg.transpose_op);
  ]

let run_to_linalg_named _ctx top =
  let rw = Rewriter.create () in
  List.iter
    (fun (tosa_name, linalg_name) ->
      Pass.for_each_op ~op_name:tosa_name top (fun op ->
          Rewriter.set_ip rw (Builder.Before op);
          let out_t = Ircore.value_typ (Ircore.result op) in
          (* out tensor initialized with fill 0 *)
          let zero = Dutil.const_float rw 0.0 in
          let empty =
            Rewriter.build1 rw ~result_types:[ out_t ] "tensor.empty"
          in
          let filled =
            Ircore.result (Linalg.fill rw ~value:zero ~dest:empty)
          in
          let new_op =
            Linalg.structured rw linalg_name ~ins:(Ircore.operands op)
              ~outs:[ filled ] ~result_types:[ out_t ]
          in
          Rewriter.replace_op rw op ~with_:(Ircore.results new_op)))
    named_lowering;
  Ok ()

(* ------------------------------------------------------------------ *)
(* tosa-to-linalg (elementwise and reductions -> linalg.generic)       *)
(* ------------------------------------------------------------------ *)

let arith_payload_of_tosa = function
  | "tosa.add" -> Some ("arith.addf", 2)
  | "tosa.sub" -> Some ("arith.subf", 2)
  | "tosa.mul" -> Some ("arith.mulf", 2)
  | "tosa.maximum" -> Some ("arith.maximumf", 2)
  | "tosa.minimum" -> Some ("arith.minimumf", 2)
  | "tosa.pow" -> Some ("math.pow", 2)
  | "tosa.abs" -> Some ("math.absf", 1)
  | "tosa.exp" -> Some ("math.exp", 1)
  | "tosa.log" -> Some ("math.log", 1)
  | "tosa.tanh" -> Some ("math.tanh", 1)
  | "tosa.sigmoid" -> Some ("math.sigmoid", 1)
  | "tosa.rsqrt" -> Some ("math.rsqrt", 1)
  | "tosa.erf" -> Some ("math.erf", 1)
  | "tosa.floor" -> Some ("math.floor", 1)
  | "tosa.ceil" -> Some ("math.ceil", 1)
  | "tosa.negate" -> Some ("arith.negf", 1)
  (* reciprocal and clamp pair the value with a payload-local constant:
     1.0 / x, and max(x, 0.0) (the relu-shaped clamp of these graphs) *)
  | "tosa.reciprocal" -> Some ("arith.divf", 1)
  | "tosa.clamp" -> Some ("arith.maximumf", 1)
  | "tosa.cast" | "tosa.rescale" -> Some ("arith.truncf", 1)
  | _ -> None

let run_to_linalg _ctx top =
  let rw = Rewriter.create () in
  Pass.for_each top
    ~p:(fun op ->
      Ircore.op_dialect op = "tosa"
      && Option.is_some (arith_payload_of_tosa op.Ircore.op_name))
    (fun op ->
      let payload_name, _arity =
        Option.get (arith_payload_of_tosa op.Ircore.op_name)
      in
      Rewriter.set_ip rw (Builder.Before op);
      let out_t = Ircore.value_typ (Ircore.result op) in
      let empty = Rewriter.build1 rw ~result_types:[ out_t ] "tensor.empty" in
      let ins = Ircore.operands op in
      let generic =
        Linalg.generic rw ~ins ~outs:[ empty ] ~result_types:[ out_t ]
          (fun brw args ->
            let scalar_args = List.filteri (fun i _ -> i < List.length ins) args in
            let binary a b =
              Rewriter.build1 brw ~operands:[ a; b ]
                ~result_types:[ Ircore.value_typ a ]
                payload_name
            in
            let payload =
              match (op.Ircore.op_name, scalar_args) with
              | "tosa.reciprocal", [ a ] ->
                let one =
                  Dutil.const_float brw ~typ:(Ircore.value_typ a) 1.0
                in
                binary one a
              | "tosa.clamp", [ a ] ->
                let zero =
                  Dutil.const_float brw ~typ:(Ircore.value_typ a) 0.0
                in
                binary a zero
              | _, [ a ] ->
                Rewriter.build1 brw ~operands:[ a ]
                  ~result_types:[ Ircore.value_typ a ]
                  payload_name
              | _, [ a; b ] -> binary a b
              | _ -> failwith "unexpected payload arity"
            in
            [ payload ])
      in
      Rewriter.replace_op rw op ~with_:(Ircore.results generic));
  (* reductions *)
  Pass.for_each top
    ~p:(fun op ->
      List.mem op.Ircore.op_name Tosa.reductions
      && Ircore.op_parent op <> None)
    (fun op ->
      Rewriter.set_ip rw (Builder.Before op);
      let out_t = Ircore.value_typ (Ircore.result op) in
      let empty = Rewriter.build1 rw ~result_types:[ out_t ] "tensor.empty" in
      let red =
        Rewriter.build rw
          ~operands:(Ircore.operands op @ [ empty ])
          ~result_types:[ out_t ]
          ~regions:[ Ircore.single_block_region () ]
          Linalg.reduce_op
      in
      (* payload: combiner *)
      (match red.Ircore.regions with
      | [ r ] -> (
        match Ircore.region_first_block r with
        | Some b ->
          let a1 = Ircore.add_block_arg b Typ.f32 in
          let a2 = Ircore.add_block_arg b Typ.f32 in
          let brw = Dutil.rw_at_end b in
          let combined = Arith.addf brw a1 a2 in
          ignore (Rewriter.build brw ~operands:[ combined ] "linalg.yield")
        | None -> ())
      | _ -> ());
      Rewriter.replace_op rw op ~with_:(Ircore.results red));
  Ok ()

(* ------------------------------------------------------------------ *)
(* tosa-to-arith / tosa-to-tensor                                      *)
(* ------------------------------------------------------------------ *)

let run_to_arith _ctx top =
  let rw = Rewriter.create () in
  Pass.for_each_op ~op_name:Tosa.const_op top (fun op ->
      Rewriter.set_ip rw (Builder.Before op);
      let v =
        match Ircore.attr op "value" with
        | Some a -> a
        | None -> Attr.Float (0.0, Typ.f32)
      in
      let c =
        Arith.constant rw v (Ircore.value_typ (Ircore.result op))
      in
      Rewriter.replace_op rw op ~with_:[ c ]);
  Ok ()

let run_to_tensor _ctx top =
  let rw = Rewriter.create () in
  List.iter
    (fun name ->
      Pass.for_each_op ~op_name:name top (fun op ->
          Rewriter.set_ip rw (Builder.Before op);
          let new_op =
            Rewriter.build rw ~operands:(Ircore.operands op)
              ~result_types:
                (List.map Ircore.value_typ (Ircore.results op))
              ~attrs:op.Ircore.attrs
              ("tensor."
              ^ snd (Util.split_op_name name))
          in
          Rewriter.replace_op rw op ~with_:(Ircore.results new_op)))
    [ "tosa.reshape"; "tosa.concat"; "tosa.pad"; "tosa.slice"; "tosa.gather"; "tosa.tile" ];
  Ok ()

(* ------------------------------------------------------------------ *)
(* Registration                                                        *)
(* ------------------------------------------------------------------ *)

let o = Opset.exact
let d = Opset.dialect

let register () =
  Pass.register
    (Pass.make ~name:"tosa-optional-decompositions" ~function_parallel:true
       ~summary:"decompose composite TOSA ops"
       ~pre:[ o "tosa.fully_connected" ]
       ~post:[ o "tosa.matmul"; o "tosa.add" ]
       run_decompositions);
  Pass.register
    (Pass.make ~name:"tosa-infer-shapes" ~function_parallel:true ~summary:"propagate static shapes"
       ~pre:[] ~post:[] run_infer_shapes);
  Pass.register
    (Pass.make ~name:"tosa-to-linalg-named" ~function_parallel:true
       ~summary:"lower structured TOSA ops to named linalg ops"
       ~pre:
         [
           o "tosa.matmul"; o "tosa.conv2d"; o "tosa.depthwise_conv2d";
           o "tosa.max_pool2d"; o "tosa.avg_pool2d"; o "tosa.transpose";
         ]
       ~post:
         [
           o Linalg.batch_matmul_op; o Linalg.conv_2d_op; o Linalg.pooling_op;
           o Linalg.transpose_op; o Linalg.fill_op; o "tensor.empty";
           o "arith.constant";
         ]
       run_to_linalg_named);
  Pass.register
    (Pass.make ~name:"tosa-to-linalg" ~function_parallel:true
       ~summary:"lower elementwise TOSA ops to linalg.generic"
       (* precise consumed set (not the {tosa.*} wildcard): the pass handles
          only the elementwise and reduction ops, so declaring more would
          make the dynamic condition checker reject the accurate
          implementation *)
       ~pre:
         (List.map o
            (Tosa.elementwise_binary @ Tosa.elementwise_unary @ Tosa.reductions))
       ~post:
         [
           o Linalg.generic_op; o Linalg.reduce_op; o "tensor.empty";
           d "math"; o "arith.addf"; o "arith.subf"; o "arith.mulf";
           o "arith.divf"; o "arith.maximumf"; o "arith.minimumf";
           o "arith.negf"; o "arith.truncf"; o "linalg.yield";
         ]
       run_to_linalg);
  Pass.register
    (Pass.make ~name:"tosa-to-arith" ~function_parallel:true ~summary:"lower tosa.const to arith"
       ~pre:[ o "tosa.const" ]
       ~post:[ o "arith.constant" ]
       run_to_arith);
  Pass.register
    (Pass.make ~name:"tosa-to-tensor" ~function_parallel:true
       ~summary:"lower TOSA shape ops to the tensor dialect"
       ~pre:
         [
           o "tosa.reshape"; o "tosa.concat"; o "tosa.pad"; o "tosa.slice";
           o "tosa.gather"; o "tosa.tile";
         ]
       ~post:[ d "tensor" ]
       run_to_tensor)
