(** General transformation passes: canonicalize, CSE, LICM, DCE, inline. *)

open Ir
open Dialects

(* ------------------------------------------------------------------ *)
(* canonicalize                                                        *)
(* ------------------------------------------------------------------ *)

(** All canonicalization patterns registered by op definitions in [ctx]. *)
let canonicalization_patterns ctx =
  let names = Hashtbl.create 16 in
  List.iter
    (fun dialect ->
      List.iter
        (fun op_name ->
          match Context.lookup ctx op_name with
          | Some def ->
            List.iter
              (fun pname -> Hashtbl.replace names pname ())
              def.Context.d_canonicalizers
          | None -> ())
        (Context.dialect_ops ctx dialect))
    (Context.registered_dialects ctx);
  Hashtbl.fold
    (fun name () acc ->
      match Pattern.lookup name with Some p -> p :: acc | None -> acc)
    names []

(** The canonicalization pattern set, frozen: root-indexed and deduped by
    name ({!Frozen_patterns.freeze} drops duplicate registrations). *)
let frozen_canonicalization_patterns ctx =
  Frozen_patterns.freeze
    (canonicalization_patterns ctx
    (* always include the arith simplifications *)
    @ Arith.canonicalization_patterns ())

let run_canonicalize ctx top =
  let patterns = frozen_canonicalization_patterns ctx in
  ignore (Greedy.apply ~config:Dutil.greedy_config ctx ~patterns top);
  Ok ()

(* ------------------------------------------------------------------ *)
(* CSE                                                                 *)
(* ------------------------------------------------------------------ *)

(** Key identifying structurally equal pure ops within one block scope. *)
let cse_key op =
  let operand_ids =
    List.map (fun v -> v.Ircore.v_id) (Ircore.operands op)
  in
  let attrs = List.map (fun (k, v) -> (k, Attr.to_string v)) op.Ircore.attrs in
  (op.Ircore.op_name, operand_ids, attrs)

(** Dominance-aware CSE: within each region, blocks are processed in reverse
    postorder and an op may reuse an equivalent op from any *dominating*
    block (looked up along the immediate-dominator chain). *)
let run_cse ctx top =
  let rw = Rewriter.create () in
  let rec do_region r =
    let doms = Dominance.compute r in
    let tables : (int, (string * int list * (string * string) list, Ircore.op) Hashtbl.t) Hashtbl.t =
      Hashtbl.create 8
    in
    let table_of b =
      match Hashtbl.find_opt tables b.Ircore.b_id with
      | Some t -> t
      | None ->
        let t = Hashtbl.create 16 in
        Hashtbl.replace tables b.Ircore.b_id t;
        t
    in
    let rec lookup b key =
      match Hashtbl.find_opt (table_of b) key with
      | Some op -> Some op
      | None -> (
        match Dominance.idom_of doms b with
        | Some d -> lookup d key
        | None -> None)
    in
    List.iter
      (fun b ->
        List.iter
          (fun op ->
            List.iter
              (fun nested -> do_region nested)
              op.Ircore.regions;
            if
              Context.is_pure ctx op
              && op.Ircore.regions = []
              && Ircore.num_results op > 0
            then begin
              let key = cse_key op in
              match lookup b key with
              | Some prior ->
                Rewriter.replace_op rw op ~with_:(Ircore.results prior)
              | None -> Hashtbl.replace (table_of b) key op
            end)
          (Ircore.block_ops b))
      (Dominance.reverse_postorder r)
  in
  List.iter do_region top.Ircore.regions;
  Ok ()

(* ------------------------------------------------------------------ *)
(* LICM                                                                *)
(* ------------------------------------------------------------------ *)

let run_licm ctx top =
  let rw = Rewriter.create () in
  let loops = Symbol.collect_ops ~op_name:Scf.for_op top in
  List.iter
    (fun loop ->
      if Ircore.op_parent loop <> None then
        ignore (Loop_utils.hoist_invariants ctx rw loop))
    loops;
  Ok ()

(* ------------------------------------------------------------------ *)
(* DCE (standalone)                                                    *)
(* ------------------------------------------------------------------ *)

let run_dce ctx top =
  let rw = Rewriter.create () in
  let changed = ref true in
  while !changed do
    changed := false;
    let dead = ref [] in
    Ircore.walk_op top ~post:(fun op ->
        if
          (not (op == top))
          && Context.is_pure ctx op
          && (not (Context.op_has_trait ctx op Context.Terminator))
          && List.for_all
               (fun r -> not (Ircore.has_uses r))
               (Ircore.results op)
        then dead := op :: !dead);
    List.iter
      (fun op ->
        if Ircore.op_parent op <> None then begin
          Rewriter.erase_op rw op;
          changed := true
        end)
      !dead
  done;
  Ok ()

(* ------------------------------------------------------------------ *)
(* Symbol DCE: drop unreferenced private functions                     *)
(* ------------------------------------------------------------------ *)

let run_symbol_dce _ctx top =
  let rw = Rewriter.create () in
  let referenced = Hashtbl.create 16 in
  Ircore.walk_op top ~pre:(fun op ->
      List.iter
        (fun (_, a) ->
          match a with
          | Attr.Symbol_ref (s, _) -> Hashtbl.replace referenced s ()
          | _ -> ())
        op.Ircore.attrs);
  Pass.for_each_op ~op_name:Func.func_op top (fun f ->
      let name = Func.name f in
      let private_ =
        match Ircore.attr f "sym_visibility" with
        | Some (Attr.String "private") -> true
        | _ -> false
      in
      if private_ && not (Hashtbl.mem referenced name) then
        Rewriter.erase_op rw f);
  Ok ()

let register () =
  Pass.register
    (Pass.make ~name:"canonicalize"
       ~summary:"greedy canonicalization and folding" ~function_parallel:true
       run_canonicalize);
  Pass.register
    (Pass.make ~name:"cse" ~summary:"common subexpression elimination"
       ~function_parallel:true run_cse);
  Pass.register
    (Pass.make ~name:"licm" ~summary:"loop-invariant code motion"
       ~pre:[ Opset.exact "scf.for" ]
       ~post:[] ~function_parallel:true run_licm);
  Pass.register
    (Pass.make ~name:"dce" ~summary:"dead code elimination"
       ~function_parallel:true run_dce);
  Pass.register
    (Pass.make ~name:"symbol-dce" ~summary:"drop dead private symbols"
       run_symbol_dce)
