(** Structured transformations on linalg named ops — the Linalg-level
    counterpart of {!Loop_utils} (the paper's Section 2.1: tiling and fusion
    of *structured operations* were the original drivers of the Transform
    dialect).

    Tiling a [linalg.matmul] produces an scf loop nest over tiles whose body
    applies the same [linalg.matmul] to [memref.subview]s of the operands —
    so further structured transforms (e.g. microkernel replacement) compose
    on the inner op, exactly like MLIR's [transform.structured.tile]. *)

open Ir
open Dialects

let ( let* ) = Result.bind

let err fmt = Fmt.kstr (fun m -> Error m) fmt

(** Report the outcome of a structured transform as an optimization remark
    attributed to the payload op's location: [Passed] with [args] on [Ok],
    [Missed] carrying the decline reason on [Error]. The remark is built
    only when a handler is installed. [loc] must be captured before the
    transform runs — a successful rewrite erases the payload op. *)
let remarked ~pass ~loc ?(args = []) ~applied result =
  (if Remark.enabled () then
     match result with
     | Ok _ -> Remark.emit (Remark.passed ~pass ~loc ~args "%s" applied)
     | Error reason -> Remark.emit (Remark.missed ~pass ~loc "%s" reason));
  result

let int_list_arg sizes =
  Remark.String
    (Fmt.str "[%a]" (Fmt.list ~sep:(Fmt.any ",") Fmt.int) sizes)

let is_matmul op = op.Ircore.op_name = Linalg.matmul_op

(** Static (m, n, k) of a memref-semantics [linalg.matmul]. *)
let matmul_dims op =
  if not (is_matmul op) then err "expected linalg.matmul, got %s" op.Ircore.op_name
  else
    match (Linalg.inputs op, Linalg.outputs op) with
    | [ a; b ], [ c ] -> (
      let dims v =
        match Ircore.value_typ v with
        | Typ.Memref (dims, _, _) ->
          let rec go acc = function
            | [] -> Some (List.rev acc)
            | Typ.Static n :: rest -> go (n :: acc) rest
            | Typ.Dynamic :: _ -> None
          in
          go [] dims
        | _ -> None
      in
      match (dims a, dims b, dims c) with
      | Some [ m; k ], Some [ k'; n ], Some [ m'; n' ]
        when k = k' && m = m' && n = n' ->
        Ok (a, b, c, m, n, k)
      | _ -> err "linalg.matmul operands must be static 2-D memrefs")
    | _ -> err "linalg.matmul must have two inputs and one output"

(** Tile a memref [linalg.matmul] with sizes [(ti, tj, tk)] (0 = do not tile
    that dimension). Tile sizes must divide their dimensions. Returns
    [(loops outermost-first, inner matmul)]. *)
let tile_matmul_impl rw op ~sizes =
  let* a, b, c, m, n, k = matmul_dims op in
  let ti, tj, tk =
    match sizes with
    | [ ti; tj; tk ] -> (ti, tj, tk)
    | _ -> (0, 0, 0)
  in
  let* () =
    if List.length sizes <> 3 then err "structured tile of matmul needs 3 sizes"
    else Ok ()
  in
  let* () =
    if List.exists (fun s -> s < 0) sizes then err "tile sizes must be >= 0"
    else Ok ()
  in
  let check_div name size dim =
    if size > 0 && dim mod size <> 0 then
      err "tile size %d does not divide %s=%d" size name dim
    else Ok ()
  in
  let* () = check_div "m" ti m in
  let* () = check_div "n" tj n in
  let* () = check_div "k" tk k in
  if ti = 0 && tj = 0 && tk = 0 then
    (* no tiling requested: the "inner" op is the op itself *)
    Ok ([], op)
  else begin
    Rewriter.set_ip rw (Builder.Before op);
    let zero = Dutil.const_int rw 0 in
    let loops = ref [] in
    let inner = ref None in
    (* dims to tile, outermost-first: i, j, k *)
    let plan =
      List.filter_map
        (fun (size, extent, tag) ->
          if size > 0 then Some (size, extent, tag) else None)
        [ (ti, m, `I); (tj, n, `J); (tk, k, `K) ]
    in
    let rec build offs rw_cur = function
      | [] ->
        (* offsets for each dim: tiled dims use their iv, untiled use 0 *)
        let off tag = Option.value ~default:zero (List.assoc_opt tag offs) in
        let size _tag full tile = if tile > 0 then tile else full in
        let sub m' ~ro ~co ~rows ~cols =
          Memref.subview rw_cur m'
            ~offsets:[ Memref.Dynamic ro; Memref.Dynamic co ]
            ~sizes:[ Memref.Static rows; Memref.Static cols ]
            ~strides:[ Memref.Static 1; Memref.Static 1 ]
        in
        let sub_a =
          sub a ~ro:(off `I) ~co:(off `K) ~rows:(size `I m ti)
            ~cols:(size `K k tk)
        in
        let sub_b =
          sub b ~ro:(off `K) ~co:(off `J) ~rows:(size `K k tk)
            ~cols:(size `J n tj)
        in
        let sub_c =
          sub c ~ro:(off `I) ~co:(off `J) ~rows:(size `I m ti)
            ~cols:(size `J n tj)
        in
        inner := Some (Linalg.matmul rw_cur ~a:sub_a ~b:sub_b ~c:sub_c);
        []
      | (size, extent, tag) :: rest ->
        let ub = Dutil.const_int rw_cur extent in
        let step = Dutil.const_int rw_cur size in
        let l =
          Scf.build_for rw_cur ~lb:zero ~ub ~step (fun brw iv _ ->
              build ((tag, iv) :: offs) brw rest)
        in
        loops := l :: !loops;
        []
    in
    ignore (build [] rw plan);
    Rewriter.erase_op rw op;
    match !inner with
    | Some inner -> Ok (List.rev !loops, inner)
    | None -> err "internal: tiling produced no inner op"
  end

let tile_matmul rw op ~sizes =
  let loc = op.Ircore.op_loc in
  remarked ~pass:"structured-tile" ~loc
    ~args:[ ("tile_sizes", int_list_arg sizes) ]
    ~applied:"tiled linalg.matmul into an scf loop nest over subviews"
    (tile_matmul_impl rw op ~sizes)

let matmul_to_library_impl rw op ~library =
  if library <> "libxsmm" then err "unknown microkernel library %S" library
  else
    let* a, b, c, m, n, k = matmul_dims op in
    if not (m <= 64 && n <= 64 && n mod 4 = 0 && k <= 256) then
      err "libxsmm has no kernel for %dx%dx%d" m n k
    else begin
      Rewriter.set_ip rw (Builder.Before op);
      let call =
        Func.call rw ~callee:"libxsmm_gemm" ~operands:[ a; b; c ]
          ~result_types:[]
      in
      Rewriter.replace_op rw op ~with_:[];
      Ok call
    end

(** Replace a [linalg.matmul] (on static memrefs within the microkernel's
    supported sizes) by a [libxsmm_gemm] call — the structured-op variant of
    {!Loop_utils.replace_with_library_call}. *)
let matmul_to_library rw op ~library =
  let loc = op.Ircore.op_loc in
  remarked ~pass:"structured-to-library" ~loc
    ~args:[ ("library", Remark.String library) ]
    ~applied:"replaced linalg.matmul with a microkernel library call"
    (matmul_to_library_impl rw op ~library)

(** Lower one [linalg.matmul] to loops (a scoped variant of the
    convert-linalg-to-loops pass). *)
let matmul_to_loops rw op =
  let loc = op.Ircore.op_loc in
  remarked ~pass:"structured-to-loops" ~loc
    ~applied:"lowered linalg.matmul to an scf loop nest"
    (let* _ = matmul_dims op in
     Result.map_error Fun.id (Linalg_to_loops.lower_matmul rw op))
