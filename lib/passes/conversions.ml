(** The progressive-lowering conversion passes of Case Study 2:

    ① convert-scf-to-cf      ② convert-arith-to-llvm  ③ convert-cf-to-llvm
    ④ convert-func-to-llvm   ⑤ expand-strided-metadata
    ⑥ finalize-memref-to-llvm ⑦ reconcile-unrealized-casts
    plus lower-affine.

    Conversions follow MLIR's partial-conversion discipline: when an op is
    rewritten into a lower dialect, [builtin.unrealized_conversion_cast]s
    bridge the type mismatch with not-yet-converted neighbours; ⑦ cancels
    matching cast pairs and *fails* on leftovers — reproducing the exact
    failure mode discussed in the paper. *)

open Ir
open Dialects

let ( let* ) = Result.bind

(* ------------------------------------------------------------------ *)
(* Cast plumbing                                                       *)
(* ------------------------------------------------------------------ *)

(** Adapt [v] to type [t] by inserting an unrealized cast (no-op if the type
    already matches). *)
let adapt rw v t =
  if Typ.equal (Ircore.value_typ v) t then v else Builtin.cast rw v t

(* global statistics (Ir.Stats): every conversion rewrite counts the op it
   replaced, so `--stats` reports the conversion volume of a lowering *)
let stat_ops_converted = Stats.counter ~component:"conversions" "ops_converted"

let stat_casts_reconciled =
  Stats.counter ~component:"conversions" "casts_reconciled"

(** Optimization remark for one applied conversion rewrite ([op] became
    [to_]); also bumps the conversion statistics. *)
let remark_converted ?(pass = "conversion") (op : Ircore.op) ~to_ =
  Stats.incr stat_ops_converted;
  if Remark.enabled () then
    Remark.emit
      (Remark.passed ~pass ~loc:op.Ircore.op_loc
         ~args:[ ("to", Remark.String to_) ]
         "converted %s" op.Ircore.op_name)

(** Replace [op] with a new op [name]: operands adapted to [operand_types],
    results of [result_types] cast back to the old result types. *)
let convert_op rw op ~name ~operand_types ~result_types ?(attrs = None)
    ?(successors = None) () =
  remark_converted op ~to_:name;
  Rewriter.set_ip rw (Builder.Before op);
  let operands =
    List.map2 (fun v t -> adapt rw v t) (Ircore.operands op) operand_types
  in
  let attrs = Option.value ~default:op.Ircore.attrs attrs in
  let successors =
    Option.value ~default:(Array.to_list op.Ircore.successors) successors
  in
  let new_op =
    Rewriter.build rw ~operands ~result_types ~attrs ~successors name
  in
  let replacements =
    List.map2
      (fun new_r old_r -> adapt rw new_r (Ircore.value_typ old_r))
      (Ircore.results new_op) (Ircore.results op)
  in
  Rewriter.replace_op rw op ~with_:replacements;
  new_op

(* ------------------------------------------------------------------ *)
(* ① convert-scf-to-cf                                                 *)
(* ------------------------------------------------------------------ *)

(** Lower an [scf.forall] into a nest of [scf.for]. *)
let forall_to_fors rw op =
  let bounds =
    match Ircore.attr op "static_upper_bound" with
    | Some (Attr.Int_array ub) -> ub
    | _ -> []
  in
  let region = List.hd op.Ircore.regions in
  let body = Option.get (Ircore.region_first_block region) in
  let ivs = Ircore.block_args body in
  Rewriter.set_ip rw (Builder.Before op);
  let zero = Dutil.const_int rw 0 in
  let one = Dutil.const_int rw 1 in
  let rec build i brw =
    if i = List.length bounds then begin
      List.iter
        (fun o ->
          if o.Ircore.op_name <> Scf.yield_op && o.Ircore.op_name <> "scf.forall.in_parallel"
          then begin
            Ircore.detach o;
            Rewriter.insert brw o
          end)
        (Ircore.block_ops body);
      []
    end
    else begin
      let ub = Dutil.const_int brw (List.nth bounds i) in
      ignore
        (Scf.build_for brw ~lb:zero ~ub ~step:one (fun brw' iv _ ->
             Ircore.replace_all_uses_with (List.nth ivs i) ~with_:iv;
             build (i + 1) brw'));
      []
    end
  in
  ignore (build 0 rw);
  Rewriter.erase_op rw op

(** Lower one [scf.for] into CFG blocks. The loop's parent block is split. *)
let for_to_cf ctx rw (loop : Ircore.op) =
  ignore ctx;
  let parent = Option.get (Ircore.op_parent loop) in
  let iter_types = List.map Ircore.value_typ (Ircore.results loop) in
  (* rest of the parent block, starting at the loop *)
  let rest = Rewriter.split_block_before rw parent loop in
  Ircore.detach loop;
  (* rest gets one arg per loop result *)
  let rest_args = List.map (fun t -> Ircore.add_block_arg rest t) iter_types in
  List.iter2
    (fun r a -> Ircore.replace_all_uses_with r ~with_:a)
    (Ircore.results loop) rest_args;
  let region = Option.get (Ircore.block_parent parent) in
  (* condition block *)
  let cond = Ircore.create_block ~args:(Typ.index :: iter_types) () in
  Ircore.insert_block_after region ~anchor:parent cond;
  (* body block: reuse the loop's own block *)
  let body = Scf.body_block loop in
  let loop_region = List.hd loop.Ircore.regions in
  Ircore.detach_block body;
  Ircore.insert_block_after region ~anchor:cond body;
  ignore loop_region;
  (* parent: branch to cond with (lb, inits) *)
  let lb = Scf.lower_bound loop
  and ub = Scf.upper_bound loop
  and step = Scf.step loop in
  let inits = Scf.iter_init_args loop in
  let prw = Rewriter.create ~ip:(Builder.At_end parent) () in
  Cf.br prw ~dest:cond ~args:(lb :: inits) ();
  (* cond: iv < ub ? body(iv, iters) : rest(iters) *)
  let crw = Rewriter.create ~ip:(Builder.At_end cond) () in
  let civ = Ircore.block_arg cond 0 in
  let citers = List.tl (Ircore.block_args cond) in
  let cmp = Arith.cmpi crw Arith.Slt civ ub in
  Cf.cond_br crw ~cond:cmp ~true_dest:body ~true_args:(civ :: citers)
    ~false_dest:rest ~false_args:citers ();
  (* body: replace yield by iv+step branch back to cond *)
  let yield =
    match Ircore.block_last_op body with
    | Some y when y.Ircore.op_name = Scf.yield_op -> y
    | _ -> failwith "scf.for body lacks yield"
  in
  let yrw = Rewriter.create ~ip:(Builder.Before yield) () in
  let biv = Ircore.block_arg body 0 in
  let next = Arith.addi yrw biv step in
  Cf.br yrw ~dest:cond ~args:(next :: Ircore.operands yield) ();
  Rewriter.erase_op yrw yield;
  (* the loop op itself is now empty *)
  Rewriter.erase_op rw loop

(** Lower one [scf.if]. *)
let if_to_cf rw (ifop : Ircore.op) =
  let parent = Option.get (Ircore.op_parent ifop) in
  let result_types = List.map Ircore.value_typ (Ircore.results ifop) in
  let rest = Rewriter.split_block_before rw parent ifop in
  Ircore.detach ifop;
  let rest_args = List.map (fun t -> Ircore.add_block_arg rest t) result_types in
  List.iter2
    (fun r a -> Ircore.replace_all_uses_with r ~with_:a)
    (Ircore.results ifop) rest_args;
  let region = Option.get (Ircore.block_parent parent) in
  let then_block, else_block =
    match ifop.Ircore.regions with
    | [ t; e ] ->
      (Option.get (Ircore.region_first_block t),
       Option.get (Ircore.region_first_block e))
    | _ -> failwith "scf.if must have two regions"
  in
  Ircore.detach_block then_block;
  Ircore.insert_block_after region ~anchor:parent then_block;
  Ircore.detach_block else_block;
  Ircore.insert_block_after region ~anchor:then_block else_block;
  let retarget_yield block =
    match Ircore.block_last_op block with
    | Some y when y.Ircore.op_name = Scf.yield_op ->
      let yrw = Rewriter.create ~ip:(Builder.Before y) () in
      Cf.br yrw ~dest:rest ~args:(Ircore.operands y) ();
      Rewriter.erase_op yrw y
    | _ -> failwith "scf.if region lacks yield"
  in
  retarget_yield then_block;
  retarget_yield else_block;
  let prw = Rewriter.create ~ip:(Builder.At_end parent) () in
  Cf.cond_br prw
    ~cond:(Ircore.operand ~index:0 ifop)
    ~true_dest:then_block ~false_dest:else_block ();
  Rewriter.erase_op rw ifop

(** Lower one [scf.while]: the before-region becomes the loop header (its
    [scf.condition] turning into a conditional branch), the after-region the
    loop body branching back to the header. *)
let while_to_cf rw (w : Ircore.op) =
  let parent = Option.get (Ircore.op_parent w) in
  let result_types = List.map Ircore.value_typ (Ircore.results w) in
  let rest = Rewriter.split_block_before rw parent w in
  Ircore.detach w;
  let rest_args = List.map (fun t -> Ircore.add_block_arg rest t) result_types in
  List.iter2
    (fun r a -> Ircore.replace_all_uses_with r ~with_:a)
    (Ircore.results w) rest_args;
  let region = Option.get (Ircore.block_parent parent) in
  let before_block, after_block =
    match w.Ircore.regions with
    | [ b; a ] ->
      (Option.get (Ircore.region_first_block b),
       Option.get (Ircore.region_first_block a))
    | _ -> failwith "scf.while must have two regions"
  in
  Ircore.detach_block before_block;
  Ircore.insert_block_after region ~anchor:parent before_block;
  Ircore.detach_block after_block;
  Ircore.insert_block_after region ~anchor:before_block after_block;
  (* entry: jump to the header with the init operands *)
  let prw = Rewriter.create ~ip:(Builder.At_end parent) () in
  Cf.br prw ~dest:before_block ~args:(Ircore.operands w) ();
  (* header: scf.condition(c, fwd...) -> cond_br c, after(fwd), rest(fwd) *)
  (match Ircore.block_last_op before_block with
  | Some cond when cond.Ircore.op_name = Scf.condition_op ->
    let crw = Rewriter.create ~ip:(Builder.Before cond) () in
    let c = Ircore.operand ~index:0 cond in
    let fwd = List.tl (Ircore.operands cond) in
    Cf.cond_br crw ~cond:c ~true_dest:after_block ~true_args:fwd
      ~false_dest:rest ~false_args:fwd ();
    Rewriter.erase_op crw cond
  | _ -> failwith "scf.while before-region lacks scf.condition");
  (* body: scf.yield(next...) -> br header(next...) *)
  (match Ircore.block_last_op after_block with
  | Some y when y.Ircore.op_name = Scf.yield_op ->
    let yrw = Rewriter.create ~ip:(Builder.Before y) () in
    Cf.br yrw ~dest:before_block ~args:(Ircore.operands y) ();
    Rewriter.erase_op yrw y
  | _ -> failwith "scf.while after-region lacks scf.yield");
  Rewriter.erase_op rw w

let run_scf_to_cf ctx top =
  let rw = Rewriter.create () in
  (* expand foralls first *)
  let rec fixpoint () =
    let foralls = Symbol.collect_ops ~op_name:Scf.forall_op top in
    if foralls <> [] then begin
      List.iter (forall_to_fors rw) foralls;
      fixpoint ()
    end
  in
  fixpoint ();
  (* outermost-first conversion (an scf op must live in a CFG-legal region
     before its own body is expanded into blocks) *)
  let is_scf o =
    o.Ircore.op_name = Scf.for_op
    || o.Ircore.op_name = Scf.if_op
    || o.Ircore.op_name = Scf.while_op
  in
  let rec nested_in_scf o =
    match Ircore.parent_op o with
    | None -> false
    | Some p -> is_scf p || nested_in_scf p
  in
  let rec convert_all () =
    let targets =
      Symbol.collect top ~f:(fun o -> is_scf o && not (nested_in_scf o))
    in
    if targets <> [] then begin
      List.iter
        (fun o ->
          remark_converted ~pass:"convert-scf-to-cf" o ~to_:"cf";
          if o.Ircore.op_name = Scf.for_op then for_to_cf ctx rw o
          else if o.Ircore.op_name = Scf.while_op then while_to_cf rw o
          else if_to_cf rw o)
        targets;
      convert_all ()
    end
  in
  convert_all ();
  Ok ()

(* ------------------------------------------------------------------ *)
(* ② convert-arith-to-llvm                                             *)
(* ------------------------------------------------------------------ *)

let llvm_int_typ = function
  | Typ.Index -> Typ.i64
  | Typ.Integer n -> Typ.Integer n
  | t -> t

let arith_to_llvm_name = function
  | "arith.constant" -> Some "llvm.mlir.constant"
  | "arith.addi" -> Some "llvm.add"
  | "arith.subi" -> Some "llvm.sub"
  | "arith.muli" -> Some "llvm.mul"
  | "arith.divsi" -> Some "llvm.sdiv"
  | "arith.divui" -> Some "llvm.udiv"
  | "arith.remsi" -> Some "llvm.srem"
  | "arith.remui" -> Some "llvm.urem"
  | "arith.andi" -> Some "llvm.and"
  | "arith.ori" -> Some "llvm.or"
  | "arith.xori" -> Some "llvm.xor"
  | "arith.shli" -> Some "llvm.shl"
  | "arith.shrsi" -> Some "llvm.ashr"
  | "arith.addf" -> Some "llvm.fadd"
  | "arith.subf" -> Some "llvm.fsub"
  | "arith.mulf" -> Some "llvm.fmul"
  | "arith.divf" -> Some "llvm.fdiv"
  | "arith.maximumf" -> Some "llvm.fmax"
  | "arith.minimumf" -> Some "llvm.fmin"
  | "arith.maxsi" -> Some "llvm.smax"
  | "arith.minsi" -> Some "llvm.smin"
  | "arith.cmpi" -> Some "llvm.icmp"
  | "arith.cmpf" -> Some "llvm.fcmp"
  | "arith.select" -> Some "llvm.select"
  | "arith.sitofp" -> Some "llvm.sitofp"
  | "arith.fptosi" -> Some "llvm.fptosi"
  | "arith.extf" -> Some "llvm.fpext"
  | "arith.truncf" -> Some "llvm.fptrunc"
  | "arith.index_cast" | "arith.extsi" | "arith.extui" | "arith.trunci"
  | "arith.bitcast" ->
    Some "llvm.bitcast"
  | _ -> None

let run_arith_to_llvm _ctx top =
  let rw = Rewriter.create () in
  Pass.for_each top
    ~p:(fun op -> Ircore.op_dialect op = "arith")
    (fun op ->
      match arith_to_llvm_name op.Ircore.op_name with
      | None -> ()
      | Some name ->
        let operand_types =
          List.map
            (fun v -> llvm_int_typ (Ircore.value_typ v))
            (Ircore.operands op)
        in
        let result_types =
          List.map
            (fun r -> llvm_int_typ (Ircore.value_typ r))
            (Ircore.results op)
        in
        ignore
          (convert_op rw op ~name ~operand_types ~result_types ()));
  Ok ()

(* ------------------------------------------------------------------ *)
(* ③ convert-cf-to-llvm                                                *)
(* ------------------------------------------------------------------ *)

let run_cf_to_llvm _ctx top =
  let rw = Rewriter.create () in
  Pass.for_each top
    ~p:(fun op -> Ircore.op_dialect op = "cf")
    (fun op ->
      let name =
        match op.Ircore.op_name with
        | "cf.br" -> "llvm.br"
        | "cf.cond_br" -> "llvm.cond_br"
        | "cf.switch" -> "llvm.switch"
        | _ -> "llvm.br"
      in
      let tys = List.map Ircore.value_typ (Ircore.operands op) in
      ignore (convert_op rw op ~name ~operand_types:tys ~result_types:[] ()));
  Ok ()

(* ------------------------------------------------------------------ *)
(* ④ convert-func-to-llvm                                              *)
(* ------------------------------------------------------------------ *)

let llvm_typ = function
  | Typ.Index -> Typ.i64
  | Typ.Memref _ | Typ.Unranked_memref _ -> Typ.llvm_ptr
  | t -> t

(** Retype the arguments of [block] with [llvm_typ], inserting cast-backs at
    the block start and adapting the matching operands of all predecessor
    branches in [func] — the signature-conversion step of MLIR's dialect
    conversion framework. *)
let convert_block_signature func block =
  let brw =
    match Ircore.block_first_op block with
    | Some first -> Rewriter.create ~ip:(Builder.Before first) ()
    | None -> Rewriter.create ~ip:(Builder.At_end block) ()
  in
  let changed = ref [] in
  List.iteri
    (fun i arg ->
      let old_t = Ircore.value_typ arg in
      let new_t = llvm_typ old_t in
      if not (Typ.equal old_t new_t) then begin
        arg.Ircore.v_typ <- new_t;
        let cast = Builtin.cast brw arg old_t in
        List.iter
          (fun { Ircore.u_op; u_index } ->
            if not (u_op == Option.get (Ircore.defining_op cast)) then
              Ircore.set_operand u_op u_index cast)
          (Ircore.value_uses arg);
        changed := (i, new_t) :: !changed
      end)
    (Ircore.block_args block);
  if !changed <> [] then
    (* adapt predecessor branch operands feeding the retyped args *)
    Ircore.walk_op func ~pre:(fun term ->
        Array.iteri
          (fun succ_idx succ ->
            if succ == block then begin
              let base =
                match term.Ircore.op_name with
                | "cf.br" | "llvm.br" -> 0
                | "cf.cond_br" | "llvm.cond_br" ->
                  let _, nt, _ = Cf.cond_segments term in
                  if succ_idx = 0 then 1 else 1 + nt
                | _ -> 0
              in
              let trw = Rewriter.create ~ip:(Builder.Before term) () in
              List.iter
                (fun (arg_idx, new_t) ->
                  let op_idx = base + arg_idx in
                  if op_idx < Ircore.num_operands term then begin
                    let v = Ircore.operand ~index:op_idx term in
                    if not (Typ.equal (Ircore.value_typ v) new_t) then
                      Ircore.set_operand term op_idx (adapt trw v new_t)
                  end)
                !changed
            end)
          term.Ircore.successors)

let run_func_to_llvm _ctx top =
  let rw = Rewriter.create () in
  Pass.for_each_op ~op_name:Func.func_op top (fun fop ->
      (* convert every block signature in the function body *)
      List.iter
        (fun r ->
          List.iter (convert_block_signature fop) (Ircore.region_blocks r))
        fop.Ircore.regions;
      (* rename the op *)
      let ins, outs =
        match Func.function_type fop with
        | Some (i, o) -> (i, o)
        | None -> ([], [])
      in
      let new_type = Typ.Func (List.map llvm_typ ins, List.map llvm_typ outs) in
      Rewriter.set_ip rw (Builder.Before fop);
      let regions = fop.Ircore.regions in
      fop.Ircore.regions <- [];
      let new_fop =
        Rewriter.build rw ~regions
          ~attrs:
            (Attr.set "function_type" (Attr.Type new_type) fop.Ircore.attrs)
          Llvm.func_op
      in
      List.iter (fun r -> r.Ircore.r_parent <- Some new_fop) regions;
      Rewriter.erase_op rw fop);
  Pass.for_each_op ~op_name:Func.return_op top (fun op ->
      let tys = List.map Ircore.value_typ (Ircore.operands op) in
      ignore
        (convert_op rw op ~name:Llvm.return_op ~operand_types:tys
           ~result_types:[] ()));
  Pass.for_each_op ~op_name:Func.call_op top (fun op ->
      let operand_types =
        List.map (fun v -> llvm_typ (Ircore.value_typ v)) (Ircore.operands op)
      in
      let result_types =
        List.map (fun r -> llvm_typ (Ircore.value_typ r)) (Ircore.results op)
      in
      ignore
        (convert_op rw op ~name:Llvm.call_op ~operand_types ~result_types ()));
  Ok ()

(* ------------------------------------------------------------------ *)
(* ⑤ expand-strided-metadata                                           *)
(* ------------------------------------------------------------------ *)

(** Rewrite non-trivial [memref.subview]s into [extract_strided_metadata] +
    (affine) offset arithmetic + [reinterpret_cast], leaving only *trivial*
    accesses behind — the paper's Figure 3/4 post-condition
    [memref.subview.constr]. Offsets that are fully static fold to
    constants; otherwise an [affine.apply] is introduced (the op that later
    breaks the naive pipeline). *)
let run_expand_strided_metadata _ctx top =
  let rw = Rewriter.create () in
  Pass.for_each_op ~op_name:Memref.subview_op top (fun op ->
      let has_dynamic_sizes =
        List.exists
          (fun s -> s = Memref.dynamic_sentinel)
          (Memref.static_sizes op)
      in
      if (not (Memref.subview_is_trivial op)) && not has_dynamic_sizes then begin
        Rewriter.set_ip rw (Builder.Before op);
        let src = Ircore.operand ~index:0 op in
        let rank = List.length (Memref.static_sizes op) in
        (* source metadata *)
        let src_typ = Ircore.value_typ src in
        let base_typ =
          match src_typ with
          | Typ.Memref (_, elt, _) -> Typ.Memref ([], elt, Typ.Identity)
          | t -> t
        in
        let meta =
          Rewriter.build rw ~operands:[ src ]
            ~result_types:
              (base_typ :: Typ.index
               :: (List.init rank (fun _ -> Typ.index)
                  @ List.init rank (fun _ -> Typ.index)))
            Memref.extract_strided_metadata_op
        in
        let src_offset = Ircore.result ~index:1 meta in
        let src_stride i = Ircore.result ~index:(2 + rank + i) meta in
        (* gather mixed offsets *)
        let statics = Memref.static_offsets op in
        let dynamic_operands =
          (* operands after the source, first segment = offsets *)
          match Ircore.attr op "operand_segment_sizes" with
          | Some (Attr.Int_array [ _; n_off; _; _ ]) ->
            List.filteri
              (fun i _ -> i >= 1 && i < 1 + n_off)
              (Ircore.operands op)
          | _ -> []
        in
        (* offset = src_offset + sum_i off_i * stride_i *)
        let dyn = ref dynamic_operands in
        let take_dyn () =
          match !dyn with
          | v :: rest ->
            dyn := rest;
            v
          | [] -> failwith "subview: missing dynamic offset operand"
        in
        let all_static =
          List.for_all (fun s -> s <> Memref.dynamic_sentinel) statics
        in
        (* [`Static off] keeps the offset in the attribute (no operand, no
           affine op) — this is why the static-offset variant of the Case
           Study 2 program lowers cleanly through the naive pipeline. *)
        let new_offset =
          if all_static then begin
            match src_typ with
            | Typ.Memref (dims, _, Typ.Identity)
              when List.for_all
                     (function Typ.Static _ -> true | _ -> false)
                     dims ->
              let sizes =
                Array.of_list
                  (List.map (function Typ.Static n -> n | _ -> 0) dims)
              in
              let strides_arr = Array.make (Array.length sizes) 1 in
              for i = Array.length sizes - 2 downto 0 do
                strides_arr.(i) <- strides_arr.(i + 1) * sizes.(i + 1)
              done;
              let strides = Array.to_list strides_arr in
              let off =
                List.fold_left2 (fun acc o s -> acc + (o * s)) 0 statics strides
              in
              `Static off
            | Typ.Memref (_, _, Typ.Identity)
              when List.for_all (fun s -> s = 0) statics ->
              (* zero offsets into an identity-layout source: offset 0
                 regardless of (possibly dynamic) strides *)
              `Static 0
            | _ ->
              (* static relative offsets but dynamic base: affine.apply *)
              let exprs =
                List.mapi
                  (fun i o ->
                    Affine.Mul (Affine.Sym (i + 1), Affine.Const o))
                  statics
              in
              let sum =
                List.fold_left
                  (fun acc e -> Affine.Add (acc, e))
                  (Affine.Sym 0) exprs
              in
              let map =
                Affine.make_map ~num_dims:0
                  ~num_syms:(1 + List.length statics)
                  [ sum ]
              in
              `Dynamic
                (Affine_ops.apply rw map
                   (src_offset :: List.mapi (fun i _ -> src_stride i) statics))
          end
          else begin
            (* dynamic offsets: offset = src_offset + Σ o_i * stride_i *)
            let syms = ref [ src_offset ] in
            let exprs =
              List.mapi
                (fun i s ->
                  let o_sym =
                    if s = Memref.dynamic_sentinel then begin
                      let v = take_dyn () in
                      syms := !syms @ [ v ];
                      Affine.Sym (List.length !syms - 1)
                    end
                    else Affine.Const s
                  in
                  syms := !syms @ [ src_stride i ];
                  Affine.Mul (o_sym, Affine.Sym (List.length !syms - 1)))
                statics
            in
            let sum =
              List.fold_left (fun acc e -> Affine.Add (acc, e)) (Affine.Sym 0) exprs
            in
            let map =
              Affine.make_map ~num_dims:0 ~num_syms:(List.length !syms) [ sum ]
            in
            `Dynamic (Affine_ops.apply rw map !syms)
          end
        in
        (* build the reinterpret_cast with the computed offset and the
           subview's sizes and *final* strides (relative stride times source
           stride, which may require metadata values for dynamic sources) *)
        let sizes = Memref.static_sizes op in
        let rel_strides = Memref.static_strides op in
        let base = Ircore.result ~index:0 meta in
        (* statically-known source strides, when the source is a fully
           static identity memref *)
        let src_static_strides =
          match src_typ with
          | Typ.Memref (dims, _, Typ.Identity)
            when List.for_all (function Typ.Static _ -> true | _ -> false) dims
            ->
            let ds = List.map (function Typ.Static n -> n | _ -> 0) dims in
            let arr = Array.make (List.length ds) 1 in
            let szs = Array.of_list ds in
            for i = Array.length arr - 2 downto 0 do
              arr.(i) <- arr.(i + 1) * szs.(i + 1)
            done;
            Array.to_list (Array.map Option.some arr)
          | _ -> List.map (fun _ -> None) rel_strides
        in
        let final_strides =
          List.mapi
            (fun i rel ->
              let src = List.nth src_static_strides i in
              match (rel, src) with
              | rel, Some s when rel <> Memref.dynamic_sentinel ->
                `Static (rel * s)
              | 1, None -> `Dynamic (src_stride i)
              | rel, None when rel <> Memref.dynamic_sentinel ->
                let map =
                  Affine.make_map ~num_dims:0 ~num_syms:1
                    [ Affine.Mul (Affine.Sym 0, Affine.Const rel) ]
                in
                `Dynamic (Affine_ops.apply rw map [ src_stride i ])
              | _, _ ->
                let map =
                  Affine.make_map ~num_dims:0 ~num_syms:2
                    [ Affine.Mul (Affine.Sym 0, Affine.Sym 1) ]
                in
                `Dynamic
                  (Affine_ops.apply rw map [ src_stride i; take_dyn () ]))
            rel_strides
        in
        let offset_operands, offset_attr =
          match new_offset with
          | `Static off -> ([], [ off ])
          | `Dynamic v -> ([ v ], [ Memref.dynamic_sentinel ])
        in
        let stride_operands =
          List.filter_map
            (function `Dynamic v -> Some v | `Static _ -> None)
            final_strides
        in
        let stride_attr =
          List.map
            (function `Static s -> s | `Dynamic _ -> Memref.dynamic_sentinel)
            final_strides
        in
        let new_op =
          Rewriter.build rw
            ~operands:((base :: offset_operands) @ stride_operands)
            ~result_types:[ Ircore.value_typ (Ircore.result op) ]
            ~attrs:
              [
                ("static_offsets", Attr.Int_array offset_attr);
                ("static_sizes", Attr.Int_array sizes);
                ("static_strides", Attr.Int_array stride_attr);
              ]
            Memref.reinterpret_cast_op
        in
        Rewriter.replace_op rw op ~with_:[ Ircore.result new_op ]
      end);
  Ok ()

(* ------------------------------------------------------------------ *)
(* ⑥ finalize-memref-to-llvm                                           *)
(* ------------------------------------------------------------------ *)

let run_finalize_memref_to_llvm _ctx top =
  let rw = Rewriter.create () in
  let ptr = Typ.llvm_ptr in
  Pass.for_each top
    ~p:(fun op -> Ircore.op_dialect op = "memref")
    (fun op ->
      match op.Ircore.op_name with
      | "memref.alloc" | "memref.alloca" ->
        (* llvm.alloca takes an explicit element count: the product of the
           static extents times any dynamic-extent operands. The element
           width rides along as an attribute so downstream consumers (the
           interpreter, the cache model) know the allocation size. *)
        Rewriter.set_ip rw (Builder.Before op);
        let res = Ircore.result op in
        let static_count, elt =
          match Ircore.value_typ res with
          | Typ.Memref (dims, elt, _) ->
            ( List.fold_left
                (fun acc d ->
                  match d with Typ.Static n -> acc * n | Typ.Dynamic -> acc)
                1 dims,
              elt )
          | _ -> (1, Typ.i64)
        in
        let size =
          Rewriter.build1 rw ~result_types:[ Typ.i64 ]
            ~attrs:[ ("value", Attr.Int (static_count, Typ.i64)) ]
            Llvm.constant_op
        in
        let size =
          List.fold_left
            (fun acc v ->
              Rewriter.build1 rw
                ~operands:[ acc; adapt rw v Typ.i64 ]
                ~result_types:[ Typ.i64 ] "llvm.mul")
            size (Ircore.operands op)
        in
        let elem_bytes =
          match elt with
          | Typ.Float Typ.F64 | Typ.Index -> 8
          | Typ.Float _ -> 4
          | Typ.Integer n -> max 1 (n / 8)
          | _ -> 8
        in
        let a =
          Rewriter.build1 rw ~operands:[ size ]
            ~attrs:[ ("elem_bytes", Attr.Int (elem_bytes, Typ.i64)) ]
            ~result_types:[ ptr ] Llvm.alloca_op
        in
        let back = adapt rw a (Ircore.value_typ res) in
        Rewriter.replace_op rw op ~with_:[ back ]
      | "memref.dealloc" ->
        Rewriter.set_ip rw (Builder.Before op);
        let m = adapt rw (Ircore.operand ~index:0 op) ptr in
        ignore
          (Rewriter.build rw ~operands:[ m ]
             ~attrs:[ ("callee", Attr.Symbol_ref ("free", [])) ]
             Llvm.call_op);
        Rewriter.erase_op rw op
      | "memref.load" ->
        let tys =
          ptr :: List.map (fun _ -> Typ.i64) (List.tl (Ircore.operands op))
        in
        Rewriter.set_ip rw (Builder.Before op);
        let operands =
          List.map2 (fun v t -> adapt rw v t) (Ircore.operands op) tys
        in
        let gep =
          Rewriter.build1 rw ~operands ~result_types:[ ptr ]
            Llvm.getelementptr_op
        in
        let loaded =
          Rewriter.build1 rw ~operands:[ gep ]
            ~result_types:[ llvm_typ (Ircore.value_typ (Ircore.result op)) ]
            Llvm.load_op
        in
        let back = adapt rw loaded (Ircore.value_typ (Ircore.result op)) in
        Rewriter.replace_op rw op ~with_:[ back ]
      | "memref.store" ->
        Rewriter.set_ip rw (Builder.Before op);
        let v = Ircore.operand ~index:0 op in
        let m = adapt rw (Ircore.operand ~index:1 op) ptr in
        let idx =
          List.map
            (fun x -> adapt rw x Typ.i64)
            (List.filteri (fun i _ -> i >= 2) (Ircore.operands op))
        in
        let gep =
          Rewriter.build1 rw ~operands:(m :: idx) ~result_types:[ ptr ]
            Llvm.getelementptr_op
        in
        let v' = adapt rw v (llvm_typ (Ircore.value_typ v)) in
        ignore (Rewriter.build rw ~operands:[ v'; gep ] Llvm.store_op);
        Rewriter.erase_op rw op
      | "memref.reinterpret_cast" | "memref.cast" ->
        Rewriter.set_ip rw (Builder.Before op);
        let m = adapt rw (Ircore.operand ~index:0 op) ptr in
        (* address computation: dynamic offsets come from the operands,
           static non-zero offsets materialize as constants *)
        let extra =
          List.map
            (fun v -> adapt rw v Typ.i64)
            (List.tl (Ircore.operands op))
        in
        let extra =
          match Ircore.attr op "static_offsets" with
          | Some (Attr.Int_array [ off ])
            when off <> 0 && off <> Memref.dynamic_sentinel ->
            Rewriter.build1 rw ~result_types:[ Typ.i64 ]
              ~attrs:[ ("value", Attr.Int (off, Typ.i64)) ]
              Llvm.constant_op
            :: extra
          | _ -> extra
        in
        let g =
          if extra = [] then m
          else
            Rewriter.build1 rw ~operands:(m :: extra) ~result_types:[ ptr ]
              Llvm.getelementptr_op
        in
        let back = adapt rw g (Ircore.value_typ (Ircore.result op)) in
        Rewriter.replace_op rw op ~with_:[ back ]
      | "memref.extract_strided_metadata" ->
        (* only lowerable when consumers are gone; turn results into
           ptrtoint/constants *)
        Rewriter.set_ip rw (Builder.Before op);
        let m = adapt rw (Ircore.operand ~index:0 op) ptr in
        let replacements =
          List.mapi
            (fun i r ->
              if i = 0 then adapt rw m (Ircore.value_typ r)
              else begin
                let v =
                  Rewriter.build1 rw ~operands:[ m ] ~result_types:[ Typ.i64 ]
                    Llvm.ptrtoint_op
                in
                adapt rw v (Ircore.value_typ r)
              end)
            (Ircore.results op)
        in
        Rewriter.replace_op rw op ~with_:replacements
      | "memref.extract_aligned_pointer_as_index" ->
        Rewriter.set_ip rw (Builder.Before op);
        let m = adapt rw (Ircore.operand ~index:0 op) ptr in
        let v =
          Rewriter.build1 rw ~operands:[ m ] ~result_types:[ Typ.i64 ]
            Llvm.ptrtoint_op
        in
        let back = adapt rw v (Ircore.value_typ (Ircore.result op)) in
        Rewriter.replace_op rw op ~with_:[ back ]
      | "memref.dim" ->
        Rewriter.set_ip rw (Builder.Before op);
        let m = adapt rw (Ircore.operand ~index:0 op) ptr in
        let v =
          Rewriter.build1 rw ~operands:[ m ] ~result_types:[ Typ.i64 ]
            Llvm.ptrtoint_op
        in
        let back = adapt rw v (Ircore.value_typ (Ircore.result op)) in
        Rewriter.replace_op rw op ~with_:[ back ]
      | "memref.subview" when Memref.subview_is_trivial op ->
        Rewriter.set_ip rw (Builder.Before op);
        let m = adapt rw (Ircore.operand ~index:0 op) ptr in
        let back = adapt rw m (Ircore.value_typ (Ircore.result op)) in
        Rewriter.replace_op rw op ~with_:[ back ]
      | _ -> ());
  Ok ()

(* ------------------------------------------------------------------ *)
(* ⑦ reconcile-unrealized-casts                                        *)
(* ------------------------------------------------------------------ *)

let run_reconcile_unrealized_casts _ctx top =
  let rw = Rewriter.create () in
  let changed = ref true in
  while !changed do
    changed := false;
    Pass.for_each_op ~op_name:Builtin.cast_op top (fun op ->
        if Ircore.op_parent op <> None then begin
          let operand = Ircore.operand ~index:0 op in
          let result = Ircore.result op in
          if Typ.equal (Ircore.value_typ operand) (Ircore.value_typ result)
          then begin
            Stats.incr stat_casts_reconciled;
            Rewriter.replace_op rw op ~with_:[ operand ];
            changed := true
          end
          else if not (Ircore.has_uses result) then begin
            Stats.incr stat_casts_reconciled;
            Rewriter.erase_op rw op;
            changed := true
          end
          else
            match Ircore.defining_op operand with
            | Some def
              when def.Ircore.op_name = Builtin.cast_op
                   && Typ.equal
                        (Ircore.value_typ (Ircore.operand ~index:0 def))
                        (Ircore.value_typ result) ->
              (* cast(cast(x : A -> B) : B -> A) => x *)
              Stats.incr stat_casts_reconciled;
              Rewriter.replace_op rw op
                ~with_:[ Ircore.operand ~index:0 def ];
              changed := true
            | _ -> ()
        end)
  done;
  let remaining = Symbol.collect_ops ~op_name:Builtin.cast_op top in
  match remaining with
  | [] -> Ok ()
  | first :: _ ->
    if Remark.enabled () then
      Remark.emit
        (Remark.missed ~pass:"reconcile-unrealized-casts"
           ~loc:first.Ircore.op_loc
           ~args:[ ("remaining", Remark.Int (List.length remaining)) ]
           "declined to erase %d live unrealized casts bridging unconverted \
            types"
           (List.length remaining));
    Diag.fail ~loc:first.Ircore.op_loc
      ~notes:
        (List.map
           (fun (op : Ircore.op) ->
             Diag.note ~loc:op.Ircore.op_loc "unresolved cast here")
           remaining)
      "failed to legalize operation 'builtin.unrealized_conversion_cast' \
       that was explicitly marked illegal (%d remaining)"
      (List.length remaining)

(* ------------------------------------------------------------------ *)
(* lower-affine                                                        *)
(* ------------------------------------------------------------------ *)

let rec emit_affine_expr rw ~dims ~syms (e : Affine.expr) =
  match e with
  | Affine.Const c -> Dutil.const_int rw c
  | Affine.Dim i -> List.nth dims i
  | Affine.Sym i -> List.nth syms i
  | Affine.Add (a, b) ->
    Arith.addi rw (emit_affine_expr rw ~dims ~syms a)
      (emit_affine_expr rw ~dims ~syms b)
  | Affine.Mul (a, b) ->
    Arith.muli rw (emit_affine_expr rw ~dims ~syms a)
      (emit_affine_expr rw ~dims ~syms b)
  | Affine.Mod (a, b) ->
    Arith.remsi rw (emit_affine_expr rw ~dims ~syms a)
      (emit_affine_expr rw ~dims ~syms b)
  | Affine.Floordiv (a, b) ->
    Arith.divsi rw (emit_affine_expr rw ~dims ~syms a)
      (emit_affine_expr rw ~dims ~syms b)
  | Affine.Ceildiv (a, b) ->
    (* (a + b - 1) / b for non-negative a *)
    let bv = emit_affine_expr rw ~dims ~syms b in
    let av = emit_affine_expr rw ~dims ~syms a in
    let one = Dutil.const_int rw 1 in
    Arith.divsi rw (Arith.subi rw (Arith.addi rw av bv) one) bv

let run_lower_affine _ctx top =
  let rw = Rewriter.create () in
  Pass.for_each top
    ~p:(fun op -> Ircore.op_dialect op = "affine")
    (fun op ->
      match Affine_ops.map_of op with
      | None -> ()
      | Some map ->
        Rewriter.set_ip rw (Builder.Before op);
        let operands = Ircore.operands op in
        let dims = List.filteri (fun i _ -> i < map.Affine.num_dims) operands in
        let syms = List.filteri (fun i _ -> i >= map.Affine.num_dims) operands in
        let values =
          List.map (emit_affine_expr rw ~dims ~syms) map.Affine.exprs
        in
        let combined =
          match (op.Ircore.op_name, values) with
          | _, [ v ] -> v
          | "affine.min", v :: rest ->
            List.fold_left
              (fun acc x ->
                Rewriter.build1 rw ~operands:[ acc; x ]
                  ~result_types:[ Typ.index ] "arith.minsi")
              v rest
          | "affine.max", v :: rest ->
            List.fold_left
              (fun acc x ->
                Rewriter.build1 rw ~operands:[ acc; x ]
                  ~result_types:[ Typ.index ] "arith.maxsi")
              v rest
          | _, v :: _ -> v
          | _, [] -> failwith "affine op with empty map"
        in
        Rewriter.replace_op rw op ~with_:[ combined ]);
  Ok ()

(* ------------------------------------------------------------------ *)
(* Registration with pre-/post-conditions (Table 2)                    *)
(* ------------------------------------------------------------------ *)

let o = Opset.exact
let d = Opset.dialect
let cast_elem = o Builtin.cast_op

let register () =
  Pass.register
    (Pass.make ~name:"convert-scf-to-cf"
       ~summary:"lower structured control flow to basic blocks and branches"
       ~pre:[ d "scf" ]
       ~post:
         [
           o "cf.br"; o "cf.cond_br"; o "arith.addi"; o "arith.cmpi";
           o "arith.constant"; cast_elem;
         ]
       run_scf_to_cf);
  Pass.register
    (Pass.make ~name:"convert-arith-to-llvm"
       ~summary:"lower arith ops to the LLVM dialect" ~pre:[ d "arith" ]
       ~post:
         [
           o "llvm.add"; o "llvm.sub"; o "llvm.mul"; o "llvm.sdiv";
           o "llvm.udiv"; o "llvm.srem"; o "llvm.urem"; o "llvm.and";
           o "llvm.or"; o "llvm.xor"; o "llvm.shl"; o "llvm.ashr";
           o "llvm.fadd"; o "llvm.fsub"; o "llvm.fmul"; o "llvm.fdiv";
           o "llvm.fmax"; o "llvm.fmin"; o "llvm.smax"; o "llvm.smin";
           o "llvm.icmp"; o "llvm.fcmp"; o "llvm.select"; o "llvm.sitofp";
           o "llvm.fptosi"; o "llvm.fpext"; o "llvm.fptrunc";
           o "llvm.bitcast"; o "llvm.mlir.constant"; cast_elem;
         ]
       run_arith_to_llvm);
  Pass.register
    (Pass.make ~name:"convert-cf-to-llvm"
       ~summary:"lower cf branches to LLVM branches" ~pre:[ d "cf" ]
       ~post:
         [ o "llvm.br"; o "llvm.cond_br"; o "llvm.switch"; cast_elem ]
       run_cf_to_llvm);
  Pass.register
    (Pass.make ~name:"convert-func-to-llvm"
       ~summary:"lower functions to LLVM functions" ~pre:[ d "func" ]
       ~post:
         [
           o "llvm.func"; o "llvm.return"; o "llvm.call"; cast_elem;
         ]
       run_func_to_llvm);
  Pass.register
    (Pass.make ~name:"expand-strided-metadata"
       ~summary:"externalize non-trivial addressing from memrefs"
       (* the paper's Figure 4 declares the coarse {memref.*}; we declare the
          precise consumed set so the *dynamic* condition checker (Section
          3.3) accepts the accurate implementation *)
       ~pre:[ o "memref.subview" ]
       ~post:
         [
           Opset.constrained "memref.subview" "constr";
           o "memref.extract_strided_metadata";
           o "memref.extract_aligned_pointer_as_index";
           o "memref.reinterpret_cast"; o "affine.apply"; o "affine.min";
           o "arith.constant";
         ]
       run_expand_strided_metadata);
  Pass.register
    (Pass.make ~name:"finalize-memref-to-llvm"
       ~summary:"lower trivially-indexed memrefs to LLVM pointers"
       ~pre:
         [
           Opset.constrained "memref.subview" "constr";
           o "memref.extract_strided_metadata";
           o "memref.extract_aligned_pointer_as_index";
           o "memref.reinterpret_cast"; o "memref.alloc"; o "memref.alloca";
           o "memref.dealloc"; o "memref.load"; o "memref.store";
           o "memref.cast"; o "memref.dim";
         ]
       ~post:
         [
           o "llvm.alloca"; o "llvm.call"; o "llvm.load"; o "llvm.store";
           o "llvm.getelementptr"; o "llvm.ptrtoint"; o "llvm.mlir.constant";
           o "llvm.mul"; cast_elem;
         ]
       run_finalize_memref_to_llvm);
  Pass.register
    (Pass.make ~name:"reconcile-unrealized-casts"
       ~summary:"cancel temporary conversion casts" ~pre:[ cast_elem ]
       ~post:[]
       run_reconcile_unrealized_casts);
  Pass.register
    (Pass.make ~name:"lower-affine"
       ~summary:"lower affine ops to arith"
       ~pre:[ d "affine" ]
       ~post:
         [
           o "arith.addi"; o "arith.muli"; o "arith.remsi"; o "arith.divsi";
           o "arith.minsi"; o "arith.maxsi"; o "arith.subi"; o "arith.constant";
         ]
       run_lower_affine)
