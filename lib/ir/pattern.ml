(** Rewrite patterns and a process-wide registry of named patterns.

    A pattern matches a root op and, if applicable, rewrites it through the
    given {!Rewriter} and returns [true]. Patterns carry a benefit used by
    the greedy driver to order attempts, and may be restricted to a root op
    name for cheap filtering — mirroring MLIR's [RewritePattern]. *)

type t = {
  name : string;  (** unique pattern name, e.g. ["arith.addi_zero"] *)
  benefit : int;
  root : string option;  (** op name filter; [None] matches any op *)
  rewrite : Rewriter.t -> Ircore.op -> bool;
}

let make ?(benefit = 1) ?root ~name rewrite = { name; benefit; root; rewrite }

let applicable p (op : Ircore.op) =
  match p.root with None -> true | Some r -> String.equal r op.Ircore.op_name

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

(** Named pattern registry: lets the Transform dialect reference individual
    patterns by name inside [transform.apply_patterns] regions (Case Study 3)
    and lets passes assemble pattern sets declaratively. *)

let registry : (string, t) Hashtbl.t = Hashtbl.create 64

let register p =
  if Hashtbl.mem registry p.name then
    invalid_arg (Fmt.str "pattern %s already registered" p.name);
  Hashtbl.replace registry p.name p

let register_make ?benefit ?root ~name rewrite =
  register (make ?benefit ?root ~name rewrite)

let lookup name = Hashtbl.find_opt registry name

let lookup_exn name =
  match lookup name with
  | Some p -> p
  | None -> invalid_arg (Fmt.str "unknown pattern %s" name)

let all_registered () =
  Hashtbl.fold (fun _ p acc -> p :: acc) registry []
  |> List.sort (fun a b -> compare a.name b.name)

(** Patterns whose name starts with [prefix ^ "."]. The ['.'] separator is
    required, so prefix ["arith"] matches ["arith.addi_zero"] but not a
    pattern of a dialect whose name merely extends it (["arithmetic.x"]). *)
let registered_with_prefix prefix =
  let plen = String.length prefix in
  all_registered ()
  |> List.filter (fun p ->
         String.length p.name > plen
         && p.name.[plen] = '.'
         && String.sub p.name 0 plen = prefix)
