(** Small shared utilities for the IR library. *)

(** Monotonically increasing unique identifiers used by values, ops, blocks
    and regions. Never reused; atomic so ids stay unique when worker domains
    build IR concurrently (printed names never depend on raw id values —
    the printer renumbers per print). *)
let fresh_id : unit -> int =
  let counter = Atomic.make 0 in
  fun () -> Atomic.fetch_and_add counter 1 + 1

let pp_list ?(sep = ", ") pp_elt fmt xs =
  Fmt.(list ~sep:(fun fmt () -> Fmt.string fmt sep) pp_elt) fmt xs

(** [split_op_name "arith.addi"] is [("arith", "addi")]. Names without a dot
    belong to the builtin dialect, mirroring MLIR. *)
let split_op_name name =
  match String.index_opt name '.' with
  | None -> ("builtin", name)
  | Some i ->
    (String.sub name 0 i, String.sub name (i + 1) (String.length name - i - 1))

let dialect_of_op_name name = fst (split_op_name name)

(** Typed universal maps, used for extensible op interfaces. Keys carry an
    injection/projection pair built from a locally generated exception
    constructor, so lookups are type-safe without [Obj.magic]. *)
module Univ = struct
  type 'a key = {
    id : int;
    name : string;
    inj : 'a -> exn;
    proj : exn -> 'a option;
  }

  let create_key (type a) name : a key =
    let module M = struct
      exception E of a
    end in
    {
      id = fresh_id ();
      name;
      inj = (fun x -> M.E x);
      proj = (function M.E x -> Some x | _ -> None);
    }

  let key_name k = k.name

  type binding = B : int * string * exn -> binding
  type t = binding list

  let empty : t = []
  let add key value m = B (key.id, key.name, key.inj value) :: m

  let find key m =
    let rec go = function
      | [] -> None
      | B (id, _, e) :: rest ->
        if id = key.id then key.proj e else go rest
    in
    go m

  let mem key m = Option.is_some (find key m)

  (** Names of all bound keys (used to answer "does this op implement an
      interface with this name" without the typed key). *)
  let binding_names m = List.map (fun (B (_, name, _)) -> name) m
end
