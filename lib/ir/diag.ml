(** Structured compiler diagnostics, mirroring MLIR's diagnostics engine.

    A diagnostic carries a severity, a source {!Loc.t}, a primary message and
    a list of attached notes (themselves diagnostics). Diagnostics flow to a
    per-context {!engine} holding a stack of handlers; the innermost handler
    receives each emitted diagnostic, so a scoped handler (see {!capture})
    can observe everything the compiler reports during a region of code —
    the mechanism behind [--diagnostics=json] and the expect-diagnostic
    style of testing. *)

type severity = Error | Warning | Remark | Note

type t = {
  severity : severity;
  loc : Loc.t;
  message : string;
  notes : t list;
}

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Remark -> "remark"
  | Note -> "note"

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let make ?(loc = Loc.Unknown) ?(notes = []) severity message =
  { severity; loc; message; notes }

let error ?loc ?notes fmt =
  Fmt.kstr (fun m -> make ?loc ?notes Error m) fmt

let warning ?loc ?notes fmt =
  Fmt.kstr (fun m -> make ?loc ?notes Warning m) fmt

let remark ?loc ?notes fmt =
  Fmt.kstr (fun m -> make ?loc ?notes Remark m) fmt

let note ?loc fmt = Fmt.kstr (fun m -> make ?loc Note m) fmt

(** Build an [Error _] result directly — the common shape for pass and
    verifier failures. *)
let fail ?loc ?notes fmt =
  Fmt.kstr (fun m -> Stdlib.Error (make ?loc ?notes Error m)) fmt

(** Convert a caught exception (plus its raw backtrace) into an error
    diagnostic: the exception text becomes the message, the first few
    backtrace frames become notes. Used by the exception barriers in the
    interpreter, the pass manager and the greedy driver to contain raised
    exceptions as structured failures. *)
let of_exn ?loc ~context exn bt =
  let frames =
    match Printexc.backtrace_slots bt with
    | None -> []
    | Some slots ->
      Array.to_list slots
      |> List.filter_map (fun slot ->
             Printexc.Slot.format 0 slot
             |> Option.map (fun line -> make Note line))
  in
  let max_frames = 8 in
  let frames =
    if List.length frames <= max_frames then frames
    else List.filteri (fun i _ -> i < max_frames) frames
  in
  let notes =
    match frames with
    | [] -> [ make Note "backtrace unavailable (OCAMLRUNPARAM=b to record)" ]
    | fs -> fs
  in
  make ?loc ~notes Error
    (Fmt.str "%s raised an exception: %s" context (Printexc.to_string exn))

let add_note d n = { d with notes = d.notes @ [ n ] }
let add_notes d ns = { d with notes = d.notes @ ns }
let with_loc d loc = { d with loc }

(** Attach [loc] only when the diagnostic does not already carry one. *)
let with_loc_if_unknown d loc =
  match d.loc with Loc.Unknown -> { d with loc } | _ -> d

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let severity d = d.severity
let loc d = d.loc
let message d = d.message
let notes d = d.notes
let is_error d = d.severity = Error

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let pp_headline fmt d =
  (match d.loc with
  | Loc.Unknown -> ()
  | l -> Fmt.pf fmt "%a: " Loc.pp l);
  Fmt.pf fmt "%s: %s" (severity_to_string d.severity) d.message

(** Multi-line rendering: headline plus indented notes. *)
let rec pp fmt d =
  pp_headline fmt d;
  List.iter (fun n -> Fmt.pf fmt "@,  %a" pp n) d.notes

let pp fmt d = Fmt.pf fmt "@[<v>%a@]" pp d
let to_string d = Fmt.str "%a" pp d

let rec to_json d =
  let fields =
    [ ("severity", Json.String (severity_to_string d.severity)) ]
    @ (match d.loc with
      | Loc.Unknown -> []
      | l -> [ ("loc", Json.String (Loc.to_string l)) ])
    @ [ ("message", Json.String d.message) ]
    @
    match d.notes with
    | [] -> []
    | ns -> [ ("notes", Json.List (List.map to_json ns)) ]
  in
  Json.Obj fields

(* ------------------------------------------------------------------ *)
(* Handler engine                                                      *)
(* ------------------------------------------------------------------ *)

type handler = t -> unit

type engine = { mutable handlers : handler list }

let engine () = { handlers = [] }

(** Fallback when no handler is installed: print to stderr. *)
let default_handler d = Fmt.epr "%a@." pp d

(* Domain-local capture, consulted before the engine's handler stack. The
   engine's stack is shared mutable state, so parallel workers must not
   push/pop on it; instead the pass manager wraps each worker task in
   [with_domain_capture], which routes everything the task emits — on any
   engine — into a per-task buffer replayed in source order. *)
let domain_capture : handler option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

(** Route every diagnostic this domain emits (to any engine) to [h] while
    [f] runs, bypassing the engine's shared handler stack. *)
let with_domain_capture h f =
  let saved = Domain.DLS.get domain_capture in
  Domain.DLS.set domain_capture (Some h);
  Fun.protect ~finally:(fun () -> Domain.DLS.set domain_capture saved) f

(* serialize emissions that do reach the shared stack (or stderr), so
   untracked emissions from concurrent domains don't interleave *)
let emit_mu = Mutex.create ()

let emit eng d =
  match Domain.DLS.get domain_capture with
  | Some h -> h d
  | None ->
    Mutex.lock emit_mu;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock emit_mu)
      (fun () ->
        match eng.handlers with h :: _ -> h d | [] -> default_handler d)

let push_handler eng h = eng.handlers <- h :: eng.handlers

let pop_handler eng =
  match eng.handlers with [] -> () | _ :: rest -> eng.handlers <- rest

(** Run [f] with [h] installed as the innermost handler. *)
let with_handler eng h f =
  push_handler eng h;
  Fun.protect ~finally:(fun () -> pop_handler eng) f

(** Scoped capture: run [f] collecting every diagnostic emitted to [eng]
    while it executes; returns [f]'s result and the diagnostics in emission
    order. *)
let capture eng f =
  let acc = ref [] in
  let result = with_handler eng (fun d -> acc := d :: !acc) f in
  (result, List.rev !acc)
