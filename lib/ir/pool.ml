(** Domain work pool: a small Domainslib-style task pool backing the
    multicore pass manager and the parallel fuzzing campaigns.

    The pool owns [jobs - 1] long-lived worker domains pulling closures off
    a shared queue; the submitting domain always participates in its own
    fan-out, so a pool sized 1 never spawns anything and a fan-out of [n]
    tasks runs on [min jobs n] domains. Tasks are claimed by an atomic
    next-index counter (one task at a time — IR workloads are coarse
    enough that chunking would only hurt balance).

    Sizing is process-global: [set_jobs]/[jobs] configure the degree used
    by {!run}, initialized from the [OTD_JOBS] environment variable (the
    binaries' [--jobs] flag overrides it; their auto default is
    {!default_jobs}). With [jobs () <= 1], {!run} degenerates to a plain
    sequential loop without touching the pool at all — single-domain
    behavior is exactly the status quo.

    The pool is deliberately ambient-agnostic: ambient observability state
    ({!Budget}, {!Profiler}, {!Trace}, {!Remark}, {!Diag} captures) is
    domain-local, so schedulers that fan out must re-install what their
    tasks need (see [Passes.Pass] for the canonical propagation). *)

type t = {
  p_jobs : int;  (** total domains this pool uses, including the caller *)
  p_mu : Mutex.t;
  p_cond : Condition.t;  (** queue became non-empty, or shutdown *)
  p_queue : (unit -> unit) Queue.t;
  mutable p_stop : bool;
  mutable p_domains : unit Domain.t list;
}

(* global statistics (Ir.Stats) *)
let stat_fanouts =
  Stats.counter ~component:"pool" "fanouts"
    ~desc:"parallel fan-outs submitted to the pool"

let stat_tasks =
  Stats.counter ~component:"pool" "tasks" ~desc:"tasks run by a fan-out"

let worker pool () =
  let rec loop () =
    Mutex.lock pool.p_mu;
    while Queue.is_empty pool.p_queue && not pool.p_stop do
      Condition.wait pool.p_cond pool.p_mu
    done;
    if Queue.is_empty pool.p_queue then Mutex.unlock pool.p_mu
      (* stop requested and drained *)
    else begin
      let task = Queue.pop pool.p_queue in
      Mutex.unlock pool.p_mu;
      (* fan-out bodies contain their own exceptions; a raise here would
         kill the domain, so swallow defensively *)
      (try task () with _ -> ());
      loop ()
    end
  in
  loop ()

let create ~jobs =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let pool =
    {
      p_jobs = jobs;
      p_mu = Mutex.create ();
      p_cond = Condition.create ();
      p_queue = Queue.create ();
      p_stop = false;
      p_domains = [];
    }
  in
  pool.p_domains <- List.init (jobs - 1) (fun _ -> Domain.spawn (worker pool));
  pool

let size pool = pool.p_jobs

let shutdown pool =
  Mutex.lock pool.p_mu;
  pool.p_stop <- true;
  Condition.broadcast pool.p_cond;
  Mutex.unlock pool.p_mu;
  List.iter Domain.join pool.p_domains;
  pool.p_domains <- []

(** Run [f 0 .. f (n-1)] across the pool; the calling domain participates.
    Blocks until every task finished. The first exception raised by a task
    (in claim order) is re-raised in the caller after the fan-out drains —
    tasks are not cancelled. *)
let parallel_for pool n f =
  if n <= 0 then ()
  else if pool.p_jobs <= 1 || n = 1 then
    for i = 0 to n - 1 do
      f i
    done
  else begin
    Stats.incr stat_fanouts;
    Stats.add stat_tasks n;
    let next = Atomic.make 0 in
    let fin_mu = Mutex.create () in
    let fin_cond = Condition.create () in
    let remaining = ref n in
    let first_error = Atomic.make None in
    let work () =
      let rec claim () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (try f i
           with e ->
             let bt = Printexc.get_raw_backtrace () in
             ignore (Atomic.compare_and_set first_error None (Some (e, bt))));
          Mutex.lock fin_mu;
          decr remaining;
          if !remaining = 0 then Condition.broadcast fin_cond;
          Mutex.unlock fin_mu;
          claim ()
        end
      in
      claim ()
    in
    (* one helper entry per worker that could usefully participate *)
    let helpers = min (pool.p_jobs - 1) (n - 1) in
    Mutex.lock pool.p_mu;
    for _ = 1 to helpers do
      Queue.push work pool.p_queue
    done;
    Condition.broadcast pool.p_cond;
    Mutex.unlock pool.p_mu;
    work ();
    Mutex.lock fin_mu;
    while !remaining > 0 do
      Condition.wait fin_cond fin_mu
    done;
    Mutex.unlock fin_mu;
    match Atomic.get first_error with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ()
  end

(** Submit one detached task to the pool's worker set and return
    immediately. Unlike {!parallel_for} the caller does not participate
    and nothing is awaited — completion signalling is the task's own
    business (see [Server.Engine]'s promises). With a pool of size 1
    there are no workers, so the task runs synchronously in the caller:
    a sequential configuration keeps exactly the sequential semantics. *)
let async pool task =
  if pool.p_jobs <= 1 then task ()
  else begin
    Stats.incr stat_tasks;
    Mutex.lock pool.p_mu;
    Queue.push task pool.p_queue;
    Condition.signal pool.p_cond;
    Mutex.unlock pool.p_mu
  end

(* ------------------------------------------------------------------ *)
(* Process-global pool                                                 *)
(* ------------------------------------------------------------------ *)

let env_jobs () =
  match Sys.getenv_opt "OTD_JOBS" with
  | None -> None
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> Some n
    | _ -> None)

(** The degree an auto-sizing consumer should pick: [OTD_JOBS] when set,
    otherwise the runtime's recommended domain count. *)
let default_jobs () =
  match env_jobs () with
  | Some n -> n
  | None -> Domain.recommended_domain_count ()

(* library-embedded default: OTD_JOBS, else sequential. The binaries opt
   into default_jobs () via --jobs=0 (auto). *)
let configured = ref (match env_jobs () with Some n -> n | None -> 1)
let instance : t option ref = ref None
let instance_mu = Mutex.create ()

let jobs () = !configured

(** Set the process-global parallelism degree. [n = 1] disables the pool;
    an existing pool of a different size is shut down (and re-spawned
    lazily on the next fan-out). *)
let set_jobs n =
  if n < 1 then invalid_arg "Pool.set_jobs: jobs must be >= 1";
  Mutex.lock instance_mu;
  if n <> !configured then begin
    configured := n;
    match !instance with
    | Some pool ->
      instance := None;
      Mutex.unlock instance_mu;
      shutdown pool
    | None -> Mutex.unlock instance_mu
  end
  else Mutex.unlock instance_mu

let get () =
  Mutex.lock instance_mu;
  let pool =
    match !instance with
    | Some pool when pool.p_jobs = !configured -> pool
    | prior ->
      (match prior with
      | Some stale ->
        (* size changed since creation; replace *)
        instance := None;
        shutdown stale
      | None -> ());
      let pool = create ~jobs:!configured in
      instance := Some pool;
      pool
  in
  Mutex.unlock instance_mu;
  pool

(** Fan [f] over [0 .. n-1] on the global pool. With [jobs () <= 1] this
    is exactly [for i = 0 to n - 1 do f i done] — no pool is created and
    no domain is spawned. *)
let run n f =
  if n <= 0 then ()
  else if !configured <= 1 || n = 1 then
    for i = 0 to n - 1 do
      f i
    done
  else parallel_for (get ()) n f
