(** Execution tracing for the three engines: the transform interpreter, the
    pass manager and the greedy pattern driver all report what they did
    through a single event channel, consumable as text or JSON.

    A {!sink} accumulates events; {!with_sink} installs one as the ambient
    sink for a dynamic extent so that deeply nested components (a greedy
    rewrite inside a canonicalize pass inside a transform script) can report
    without the sink being threaded through every signature. *)

type event =
  | Transform of {
      tr_op : string;  (** transform op name, e.g. [transform.loop_tile] *)
      tr_loc : Loc.t;
      tr_in : int list;  (** payload sizes of operand handles *)
      tr_out : int list;  (** payload sizes of result handles *)
    }
  | Suppressed of {
      su_construct : string;  (** e.g. [transform.alternatives] *)
      su_diag : Diag.t;  (** the silenceable error that was suppressed *)
    }
  | Greedy of {
      gr_root : string;  (** op the driver ran on *)
      gr_rewrites : int;
      gr_folds : int;
      gr_dce : int;
      gr_iterations : int;
      gr_converged : bool;
      gr_match_attempts : int;  (** pattern/fold candidates tried *)
      gr_pushes : int;  (** worklist pushes (incl. the initial seeding) *)
    }
(* the deprecated [Pass] flat-timing event was removed: pass timing flows
   through {!Profiler} spans (pipeline → pass → greedy / transform op),
   which carry timestamps and nest *)

type sink = { mutable rev_events : event list }

let create () = { rev_events = [] }
let emit sink e = sink.rev_events <- e :: sink.rev_events
let events sink = List.rev sink.rev_events
let clear sink = sink.rev_events <- []

(* ------------------------------------------------------------------ *)
(* Ambient sink                                                        *)
(* ------------------------------------------------------------------ *)

(* domain-local: a sink is single-domain state, so parallel schedulers give
   each worker task its own sink and merge the events in source order *)
let current : sink option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

(** Install [sink] as this domain's ambient sink while [f] runs. *)
let with_sink sink f =
  let saved = Domain.DLS.get current in
  Domain.DLS.set current (Some sink);
  Fun.protect ~finally:(fun () -> Domain.DLS.set current saved) f

(** Emit to the ambient sink, if one is installed. Cheap no-op otherwise. *)
let record e =
  match Domain.DLS.get current with Some s -> emit s e | None -> ()

let tracing () = Domain.DLS.get current <> None

(** This domain's ambient sink, for schedulers that need to know whether
    the parent extent is tracing before fanning out. *)
let active () = Domain.DLS.get current

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

(* no break hints: an event must stay on one line even inside a vbox *)
let pp_sizes fmt sizes =
  Fmt.pf fmt "[%a]" (Fmt.list ~sep:(Fmt.any ",") Fmt.int) sizes

let pp_event fmt = function
  | Transform { tr_op; tr_loc; tr_in; tr_out } ->
    Fmt.pf fmt "transform %s in=%a out=%a" tr_op pp_sizes tr_in pp_sizes
      tr_out;
    (match tr_loc with
    | Loc.Unknown -> ()
    | l -> Fmt.pf fmt " at %a" Loc.pp l)
  | Suppressed { su_construct; su_diag } ->
    Fmt.pf fmt "suppressed by %s: %s" su_construct (Diag.message su_diag)
  | Greedy { gr_root; gr_rewrites; gr_folds; gr_dce; gr_iterations;
             gr_converged; gr_match_attempts; gr_pushes } ->
    Fmt.pf fmt
      "greedy on %s: %d rewrites, %d folds, %d dce, %d iterations, %d \
       attempts, %d pushes%s"
      gr_root gr_rewrites gr_folds gr_dce gr_iterations gr_match_attempts
      gr_pushes
      (if gr_converged then "" else " (no fixpoint)")

let pp fmt sink =
  List.iter (fun e -> Fmt.pf fmt "// trace: %a@," pp_event e) (events sink)

let pp fmt sink = Fmt.pf fmt "@[<v>%a@]" pp sink

let event_to_json = function
  | Transform { tr_op; tr_loc; tr_in; tr_out } ->
    Json.Obj
      ([ ("kind", Json.String "transform"); ("op", Json.String tr_op) ]
      @ (match tr_loc with
        | Loc.Unknown -> []
        | l -> [ ("loc", Json.String (Loc.to_string l)) ])
      @ [
          ("in_sizes", Json.List (List.map (fun n -> Json.Int n) tr_in));
          ("out_sizes", Json.List (List.map (fun n -> Json.Int n) tr_out));
        ])
  | Suppressed { su_construct; su_diag } ->
    Json.Obj
      [
        ("kind", Json.String "suppressed");
        ("construct", Json.String su_construct);
        ("diagnostic", Diag.to_json su_diag);
      ]
  | Greedy { gr_root; gr_rewrites; gr_folds; gr_dce; gr_iterations;
             gr_converged; gr_match_attempts; gr_pushes } ->
    Json.Obj
      [
        ("kind", Json.String "greedy");
        ("root", Json.String gr_root);
        ("rewrites", Json.Int gr_rewrites);
        ("folds", Json.Int gr_folds);
        ("dce", Json.Int gr_dce);
        ("iterations", Json.Int gr_iterations);
        ("converged", Json.Bool gr_converged);
        ("match_attempts", Json.Int gr_match_attempts);
        ("pushes", Json.Int gr_pushes);
      ]

let to_json sink = Json.List (List.map event_to_json (events sink))
