(** Cooperative execution budgets: bounded interpreter steps, bounded
    greedy rewrites, and an optional wall-clock deadline, threaded through
    the transform interpreter, the greedy driver and the pass pipeline so
    a runaway script or non-terminating rewrite set degrades into a clean,
    diagnosable failure instead of hanging the compiler.

    Like {!Profiler} and {!Remark}, the budget is ambient: {!with_budget}
    installs one for a dynamic extent and the check entry points are no-ops
    (a single domain-local read) when none is installed. The ambient slot
    is domain-local but one budget instance may be installed on many
    domains at once — the parallel pass manager shares the pipeline's
    budget across its workers — so the counters are atomics and limits
    bind globally across domains. Exhaustion is sticky and shared — once a
    limit trips on any domain (first writer wins via compare-and-set),
    every subsequent check on every domain reports the same reason, so
    parallel workers drain fast instead of re-burning the budget.

    The deadline is only sampled every {!deadline_stride} checks (plus at
    forced checkpoints such as pass boundaries), keeping the hot-path cost
    to a few atomic operations. *)

type t = {
  b_max_steps : int option;  (** interpreter steps (transform ops run) *)
  b_max_rewrites : int option;  (** greedy rewrites/folds/dce *)
  b_deadline : float option;  (** absolute [Unix.gettimeofday] time *)
  b_steps : int Atomic.t;
  b_rewrites : int Atomic.t;
  b_tick : int Atomic.t;  (** deadline-sampling stride counter *)
  b_exhausted : string option Atomic.t;  (** sticky exhaustion reason *)
}

(* global statistics (Ir.Stats) *)
let stat_steps = Stats.counter ~component:"budget" "steps"
let stat_rewrites = Stats.counter ~component:"budget" "rewrites"

let stat_exhausted =
  Stats.counter ~component:"budget" "exhausted"
    ~desc:"runs that hit a step/rewrite/deadline limit"

let create ?max_steps ?max_rewrites ?deadline_ms () =
  {
    b_max_steps = max_steps;
    b_max_rewrites = max_rewrites;
    b_deadline =
      Option.map
        (fun ms -> Unix.gettimeofday () +. (float_of_int ms /. 1000.))
        deadline_ms;
    b_steps = Atomic.make 0;
    b_rewrites = Atomic.make 0;
    b_tick = Atomic.make 0;
    b_exhausted = Atomic.make None;
  }

let current : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)
let active () = Domain.DLS.get current

(** Install [b] for the duration of [f] on this domain. Schedulers that
    fan work across domains install the {e same} instance per task so the
    limits stay global. *)
let with_budget b f =
  let saved = Domain.DLS.get current in
  Domain.DLS.set current (Some b);
  Fun.protect ~finally:(fun () -> Domain.DLS.set current saved) f

let steps b = Atomic.get b.b_steps
let rewrites b = Atomic.get b.b_rewrites
let exhausted b = Atomic.get b.b_exhausted

(* first writer wins; everyone reports the winning reason *)
let mark_exhausted b reason =
  if Atomic.compare_and_set b.b_exhausted None (Some reason) then
    Stats.incr stat_exhausted;
  Atomic.get b.b_exhausted

let deadline_stride = 64

(** Sample the wall clock (every [deadline_stride]th call unless [force]). *)
let check_deadline_of b ~force =
  match b.b_deadline with
  | None -> None
  | Some dl ->
    let tick = Atomic.fetch_and_add b.b_tick 1 + 1 in
    if force || tick land (deadline_stride - 1) = 0 then
      let now = Unix.gettimeofday () in
      if now > dl then
        mark_exhausted b
          (Fmt.str "wall-clock deadline exceeded (%.0f ms over)"
             ((now -. dl) *. 1000.))
      else None
    else None

(** Charge one interpreter step; [Some reason] once the budget is gone. *)
let step () =
  match Domain.DLS.get current with
  | None -> None
  | Some b -> (
    let n = Atomic.fetch_and_add b.b_steps 1 + 1 in
    Stats.incr stat_steps;
    match Atomic.get b.b_exhausted with
    | Some r -> Some r
    | None -> (
      match b.b_max_steps with
      | Some m when n > m ->
        mark_exhausted b
          (Fmt.str "interpreter step budget of %d steps exhausted" m)
      | _ -> check_deadline_of b ~force:false))

(** Charge one greedy rewrite (pattern rewrite, fold or DCE). *)
let rewrite () =
  match Domain.DLS.get current with
  | None -> None
  | Some b -> (
    let n = Atomic.fetch_and_add b.b_rewrites 1 + 1 in
    Stats.incr stat_rewrites;
    match Atomic.get b.b_exhausted with
    | Some r -> Some r
    | None -> (
      match b.b_max_rewrites with
      | Some m when n > m ->
        mark_exhausted b
          (Fmt.str "greedy rewrite budget of %d rewrites exhausted" m)
      | _ -> check_deadline_of b ~force:false))

(** Deadline-only poll for hot loops that charge nothing (amortized). *)
let poll () =
  match Domain.DLS.get current with
  | None -> None
  | Some b -> (
    match Atomic.get b.b_exhausted with
    | Some r -> Some r
    | None -> check_deadline_of b ~force:false)

(** Forced check at coarse boundaries (between passes): always samples the
    clock. *)
let checkpoint () =
  match Domain.DLS.get current with
  | None -> None
  | Some b -> (
    match Atomic.get b.b_exhausted with
    | Some r -> Some r
    | None -> check_deadline_of b ~force:true)
