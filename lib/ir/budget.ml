(** Cooperative execution budgets: bounded interpreter steps, bounded
    greedy rewrites, and an optional wall-clock deadline, threaded through
    the transform interpreter, the greedy driver and the pass pipeline so
    a runaway script or non-terminating rewrite set degrades into a clean,
    diagnosable failure instead of hanging the compiler.

    Like {!Profiler} and {!Remark}, the budget is ambient: {!with_budget}
    installs one for a dynamic extent and the check entry points are no-ops
    (a single ref read) when none is installed. Exhaustion is sticky — once
    a limit trips, every subsequent check reports the same reason, so
    nested constructs (e.g. [transform.alternatives] retrying a region
    after a timeout) fail fast instead of re-burning the budget.

    The deadline is only sampled every {!deadline_stride} checks (plus at
    forced checkpoints such as pass boundaries), keeping the hot-path cost
    to a couple of integer operations. *)

type t = {
  b_max_steps : int option;  (** interpreter steps (transform ops run) *)
  b_max_rewrites : int option;  (** greedy rewrites/folds/dce *)
  b_deadline : float option;  (** absolute [Unix.gettimeofday] time *)
  mutable b_steps : int;
  mutable b_rewrites : int;
  mutable b_tick : int;  (** deadline-sampling stride counter *)
  mutable b_exhausted : string option;  (** sticky exhaustion reason *)
}

(* global statistics (Ir.Stats) *)
let stat_steps = Stats.counter ~component:"budget" "steps"
let stat_rewrites = Stats.counter ~component:"budget" "rewrites"

let stat_exhausted =
  Stats.counter ~component:"budget" "exhausted"
    ~desc:"runs that hit a step/rewrite/deadline limit"

let create ?max_steps ?max_rewrites ?deadline_ms () =
  {
    b_max_steps = max_steps;
    b_max_rewrites = max_rewrites;
    b_deadline =
      Option.map
        (fun ms -> Unix.gettimeofday () +. (float_of_int ms /. 1000.))
        deadline_ms;
    b_steps = 0;
    b_rewrites = 0;
    b_tick = 0;
    b_exhausted = None;
  }

let current : t option ref = ref None
let active () = !current

(** Install [b] for the duration of [f]. *)
let with_budget b f =
  let saved = !current in
  current := Some b;
  Fun.protect ~finally:(fun () -> current := saved) f

let steps b = b.b_steps
let rewrites b = b.b_rewrites
let exhausted b = b.b_exhausted

let mark_exhausted b reason =
  (match b.b_exhausted with
  | None -> Stats.incr stat_exhausted
  | Some _ -> ());
  b.b_exhausted <- Some reason;
  Some reason

let deadline_stride = 64

(** Sample the wall clock (every [deadline_stride]th call unless [force]). *)
let check_deadline_of b ~force =
  match b.b_deadline with
  | None -> None
  | Some dl ->
    b.b_tick <- b.b_tick + 1;
    if force || b.b_tick land (deadline_stride - 1) = 0 then
      let now = Unix.gettimeofday () in
      if now > dl then
        mark_exhausted b
          (Fmt.str "wall-clock deadline exceeded (%.0f ms over)"
             ((now -. dl) *. 1000.))
      else None
    else None

(** Charge one interpreter step; [Some reason] once the budget is gone. *)
let step () =
  match !current with
  | None -> None
  | Some b -> (
    b.b_steps <- b.b_steps + 1;
    Stats.incr stat_steps;
    match b.b_exhausted with
    | Some r -> Some r
    | None -> (
      match b.b_max_steps with
      | Some m when b.b_steps > m ->
        mark_exhausted b
          (Fmt.str "interpreter step budget of %d steps exhausted" m)
      | _ -> check_deadline_of b ~force:false))

(** Charge one greedy rewrite (pattern rewrite, fold or DCE). *)
let rewrite () =
  match !current with
  | None -> None
  | Some b -> (
    b.b_rewrites <- b.b_rewrites + 1;
    Stats.incr stat_rewrites;
    match b.b_exhausted with
    | Some r -> Some r
    | None -> (
      match b.b_max_rewrites with
      | Some m when b.b_rewrites > m ->
        mark_exhausted b
          (Fmt.str "greedy rewrite budget of %d rewrites exhausted" m)
      | _ -> check_deadline_of b ~force:false))

(** Deadline-only poll for hot loops that charge nothing (amortized). *)
let poll () =
  match !current with
  | None -> None
  | Some b -> (
    match b.b_exhausted with
    | Some r -> Some r
    | None -> check_deadline_of b ~force:false)

(** Forced check at coarse boundaries (between passes): always samples the
    clock. *)
let checkpoint () =
  match !current with
  | None -> None
  | Some b -> (
    match b.b_exhausted with
    | Some r -> Some r
    | None -> check_deadline_of b ~force:true)
