(** Frozen, root-indexed pattern sets — MLIR's [FrozenRewritePatternSet].

    The greedy driver matches patterns against every op it visits; with a
    plain list each visit costs O(|patterns|) applicability checks (a string
    compare per op×pattern pair). Freezing partitions the set once at
    construction into a [(root op name -> benefit-sorted pattern list)]
    table plus a benefit-sorted any-root list, so per-op matching only
    touches the candidate patterns for that op's name. Duplicate pattern
    names are dropped (first occurrence wins), mirroring the dedup every
    caller previously did by hand. *)

type t = {
  by_root : (string, Pattern.t list) Hashtbl.t;
      (** benefit-sorted (descending), root-restricted patterns *)
  any_root : Pattern.t list;  (** benefit-sorted patterns with no root filter *)
  size : int;  (** total number of distinct patterns frozen *)
}

let by_benefit = List.stable_sort (fun a b -> compare b.Pattern.benefit a.Pattern.benefit)

(** Freeze [patterns] into an immutable, indexed set. *)
let freeze patterns =
  let seen = Hashtbl.create 16 in
  let patterns =
    List.filter
      (fun p ->
        if Hashtbl.mem seen p.Pattern.name then false
        else begin
          Hashtbl.replace seen p.Pattern.name ();
          true
        end)
      patterns
  in
  let by_root = Hashtbl.create 16 in
  let any_root = ref [] in
  List.iter
    (fun p ->
      match p.Pattern.root with
      | None -> any_root := p :: !any_root
      | Some r ->
        let existing = Option.value ~default:[] (Hashtbl.find_opt by_root r) in
        Hashtbl.replace by_root r (p :: existing))
    patterns;
  Hashtbl.filter_map_inplace (fun _ ps -> Some (by_benefit (List.rev ps))) by_root;
  { by_root; any_root = by_benefit (List.rev !any_root); size = List.length patterns }

let empty = freeze []
let size t = t.size
let is_empty t = t.size = 0

(** All patterns in the set (no meaningful order). *)
let to_list t =
  Hashtbl.fold (fun _ ps acc -> ps @ acc) t.by_root t.any_root

(** Candidate patterns for [op], most beneficial first: the patterns rooted
    at [op]'s name merged with the any-root patterns. Every returned pattern
    is applicable to [op] by construction — the driver needs no further
    root check. *)
let for_op t (op : Ircore.op) =
  let rooted =
    Option.value ~default:[] (Hashtbl.find_opt t.by_root op.Ircore.op_name)
  in
  match (rooted, t.any_root) with
  | ps, [] -> ps
  | [], ps -> ps
  | _ ->
    (* merge two benefit-sorted lists, rooted patterns first on ties *)
    let rec merge a b =
      match (a, b) with
      | [], rest | rest, [] -> rest
      | x :: xs, y :: ys ->
        if x.Pattern.benefit >= y.Pattern.benefit then x :: merge xs b
        else y :: merge a ys
    in
    merge rooted t.any_root
