(** Greedy pattern application driver: applies a set of rewrite patterns to
    a payload subtree until fixpoint, folding constants and eliminating dead
    pure ops along the way — MLIR's [applyPatternsAndFoldGreedily].

    The engine is worklist-driven: the payload subtree is seeded once in
    post-order, and after every change the {!Rewriter} listener events push
    back only the affected ops — the users of replaced results, the defining
    ops of erased ops' operands (newly-dead candidates), and newly created
    ops — instead of re-walking the module. Patterns come pre-indexed by
    root op name ({!Frozen_patterns}), so visiting an op only touches its
    candidate patterns, and folded constants are uniqued per block through
    an {!Op_folder}. The legacy fixpoint-of-full-sweeps driver is kept as
    {!apply_sweep} so benchmarks can track the win. *)

type config = {
  max_iterations : int;
      (** work budget: at most [max_iterations * (seeded op count)] op
          visits (the sweep driver's total work for the same setting) *)
  fold : bool;  (** use registered {!Context.folder} hooks *)
  remove_dead : bool;  (** erase pure ops with no uses *)
  materialize_constant :
    (Rewriter.t -> Attr.t -> Typ.t -> Ircore.value option) option;
      (** hook to build a constant op for folded results *)
}

let default_config =
  {
    max_iterations = 10;
    fold = true;
    remove_dead = true;
    materialize_constant = None;
  }

type stats = {
  mutable rewrites : int;
  mutable folds : int;
  mutable dce : int;
  mutable iterations : int;
  mutable match_attempts : int;
      (** pattern and fold candidates tried against visited ops *)
  mutable worklist_pushes : int;
      (** worklist insertions, including the initial seeding *)
}

let create_stats () =
  {
    rewrites = 0;
    folds = 0;
    dce = 0;
    iterations = 0;
    match_attempts = 0;
    worklist_pushes = 0;
  }

(** Int-keyed hash tables for op-id side state: identity hashing avoids the
    generic hash call on the driver's hottest lookups. *)
module Itbl = Hashtbl.Make (struct
  type t = int

  let equal (a : int) b = a = b
  let hash x = x land max_int
end)

(** Attribute of a constant-like op, if any. Convention: constant ops carry
    their value in the ["value"] attribute. *)
let constant_value ctx (op : Ircore.op) =
  if Context.op_has_trait ctx op Context.Constant_like then
    Ircore.attr op "value"
  else None

let operand_constants ctx (op : Ircore.op) =
  List.map
    (fun v ->
      match Ircore.defining_op v with
      | Some d -> constant_value ctx d
      | None -> None)
    (Ircore.operands op)

(** Try to constant-fold [op] in place; returns true on success. Folded
    results are materialized through [folder], which uniques constants per
    block and hoists them to the block start. Ops that already are constants
    are uniqued through the same table (MLIR's [insertKnownConstant]):
    a duplicate of an earlier constant is replaced by it. *)
let try_fold ctx rewriter config folder stats (op : Ircore.op) =
  match constant_value ctx op with
  | Some attr -> (
    stats.match_attempts <- stats.match_attempts + 1;
    match Op_folder.insert_known_constant folder op attr with
    | Some canonical ->
      Rewriter.replace_op rewriter op ~with_:[ canonical ];
      true
    | None -> false)
  | None -> (
  match (Context.interface ctx op.Ircore.op_name Context.folder_key,
         config.materialize_constant) with
  | Some { Context.fold }, Some materialize -> (
    stats.match_attempts <- stats.match_attempts + 1;
    match fold op (operand_constants ctx op) with
    | None -> false
    | Some result_attrs ->
      let result_types = List.map Ircore.value_typ (Ircore.results op) in
      let values =
        List.map2
          (fun attr t ->
            Op_folder.materialize folder rewriter materialize ~anchor:op attr t)
          result_attrs result_types
      in
      if List.for_all Option.is_some values then begin
        Rewriter.replace_op rewriter op ~with_:(List.map Option.get values);
        true
      end
      else false)
  | _ -> false)

let is_trivially_dead ctx (op : Ircore.op) =
  Context.is_pure ctx op
  && (not (Context.op_has_trait ctx op Context.Terminator))
  && List.for_all (fun r -> not (Ircore.has_uses r)) (Ircore.results op)

(** Collect the ops below [root] in post-order (defs before users within
    each block), returned reversed. *)
let rev_post_order root =
  let acc = ref [] in
  List.iter
    (fun r ->
      List.iter
        (fun b ->
          List.iter
            (fun op -> Ircore.walk_op op ~post:(fun o -> acc := o :: !acc))
            (Ircore.block_ops b))
        (Ircore.region_blocks r))
    root.Ircore.regions;
  !acc

(* global statistics (Ir.Stats): every driver invocation accumulates its
   per-run [stats] record here, so `otd_opt --stats` reports totals without
   the hot loop touching the registry *)
let stat_rewrites = Stats.counter ~component:"greedy" "rewrites"
let stat_folds = Stats.counter ~component:"greedy" "folds"
let stat_dce = Stats.counter ~component:"greedy" "dce"
let stat_match_attempts = Stats.counter ~component:"greedy" "match_attempts"
let stat_worklist_pushes = Stats.counter ~component:"greedy" "worklist_pushes"
let stat_invocations = Stats.counter ~component:"greedy" "invocations"
let stat_non_converged = Stats.counter ~component:"greedy" "non_converged"
let stat_iterations = Stats.histogram ~component:"greedy" "iterations"

let record_trace root stats converged =
  Stats.incr stat_invocations;
  Stats.add stat_rewrites stats.rewrites;
  Stats.add stat_folds stats.folds;
  Stats.add stat_dce stats.dce;
  Stats.add stat_match_attempts stats.match_attempts;
  Stats.add stat_worklist_pushes stats.worklist_pushes;
  Stats.observe stat_iterations (float_of_int stats.iterations);
  if not converged then Stats.incr stat_non_converged;
  (* report through the ambient trace channel (no-op when not tracing) *)
  Trace.record
    (Trace.Greedy
       {
         gr_root = root.Ircore.op_name;
         gr_rewrites = stats.rewrites;
         gr_folds = stats.folds;
         gr_dce = stats.dce;
         gr_iterations = stats.iterations;
         gr_converged = converged;
         gr_match_attempts = stats.match_attempts;
         gr_pushes = stats.worklist_pushes;
       })

let stat_exceptions_contained =
  Stats.counter ~component:"greedy" "exceptions_contained"
    ~desc:"OCaml exceptions raised by patterns/folders, contained as diags"

(** Exceptions that must never be swallowed by a containment barrier. *)
let fatal_exn = function
  | Sys.Break | Out_of_memory -> true
  | _ -> false

(** Run a pattern behind an exception barrier: a raising pattern is reported
    as an error diagnostic (with the backtrace as notes) and treated as a
    non-match, so one broken pattern cannot unwind the whole driver. *)
let rewrite_contained ctx rewriter (p : Pattern.t) (op : Ircore.op) =
  match
    (* route the application through the action framework; with no ambient
       context this is the direct call (hot path: no closure for Action) *)
    match Action.active () with
    | None -> p.Pattern.rewrite rewriter op
    | Some a ->
      Action.run_on a ~tag:"pattern" ~desc:p.Pattern.name
        ~loc:op.Ircore.op_loc ~root:op ~skipped:false (fun () ->
          p.Pattern.rewrite rewriter op)
  with
  | applied -> applied
  | exception e when not (fatal_exn e) ->
    let bt = Printexc.get_raw_backtrace () in
    Stats.incr stat_exceptions_contained;
    Context.emit_diag ctx
      (Diag.of_exn ~loc:op.Ircore.op_loc
         ~context:(Fmt.str "pattern '%s'" p.Pattern.name)
         e bt);
    false

(** Same barrier around the fold/constant-uniquing path. *)
let fold_contained ctx rewriter config folder stats (op : Ircore.op) =
  match
    match Action.active () with
    | None -> try_fold ctx rewriter config folder stats op
    | Some a ->
      Action.run_on a ~tag:"fold" ~desc:op.Ircore.op_name
        ~loc:op.Ircore.op_loc ~root:op ~skipped:false (fun () ->
          try_fold ctx rewriter config folder stats op)
  with
  | folded -> folded
  | exception e when not (fatal_exn e) ->
    let bt = Printexc.get_raw_backtrace () in
    Stats.incr stat_exceptions_contained;
    Context.emit_diag ctx
      (Diag.of_exn ~loc:op.Ircore.op_loc
         ~context:(Fmt.str "folder for '%s'" op.Ircore.op_name)
         e bt);
    false

let warn_no_fixpoint ctx config (root : Ircore.op) pending =
  Context.emit_diag ctx
    (Diag.warning ~loc:root.Ircore.op_loc
       "greedy rewrite on '%s' failed to converge within %d iterations (%d \
        ops still pending)"
       root.Ircore.op_name config.max_iterations pending)

(** Apply [patterns] greedily to the subtree rooted at [root] (the root op
    itself is not rewritten). Returns [true] if the IR converged — the
    worklist drained — within the [config.max_iterations] work budget; a
    [Diag] warning is emitted against [ctx] otherwise. *)
let apply ?(config = default_config) ?stats ?rewriter ctx ~patterns root =
  Profiler.span ~cat:"greedy"
    ~args:[ ("root", Profiler.Astr root.Ircore.op_name) ]
    "greedy.apply"
  @@ fun () ->
  let stats = match stats with Some s -> s | None -> create_stats () in
  let rewriter =
    match rewriter with Some rw -> rw | None -> Rewriter.create ()
  in
  let folder = Op_folder.create () in
  let erased = Itbl.create 64 in
  let on_list = Itbl.create 256 in
  let stack = ref [] in
  (* false until the first rewriter event; while clean, every popped op is
     still attached and in scope, so the pop-validity checks can be skipped *)
  let dirty = ref false in
  let push op =
    if
      (not (Itbl.mem erased op.Ircore.op_id))
      && not (Itbl.mem on_list op.Ircore.op_id)
    then begin
      Itbl.replace on_list op.Ircore.op_id ();
      stack := op :: !stack;
      stats.worklist_pushes <- stats.worklist_pushes + 1
    end
  in
  let push_users (op : Ircore.op) =
    Array.iter
      (fun r ->
        List.iter (fun u -> push u.Ircore.u_op) r.Ircore.v_uses)
      op.Ircore.results
  in
  let push_operand_defs (op : Ircore.op) =
    Array.iter
      (fun v ->
        match Ircore.defining_op v with Some d -> push d | None -> ())
      op.Ircore.operands
  in
  let listener =
    {
      Rewriter.on_inserted =
        (fun op ->
          dirty := true;
          push op);
      on_replaced =
        (fun op _ ->
          dirty := true;
          (* users now consume the replacement values; revisit them *)
          push_users op;
          (* operand defs may have just lost their last use *)
          push_operand_defs op;
          Itbl.replace erased op.Ircore.op_id ());
      on_erased =
        (fun op ->
          dirty := true;
          push_operand_defs op;
          Itbl.replace erased op.Ircore.op_id ());
      on_modified =
        (fun op ->
          dirty := true;
          push op;
          push_users op);
    }
  in
  Rewriter.add_listener rewriter listener;
  (* seed once, with the first post-order op at the head of the stack so
     defs pop before their users; the ops are distinct by construction, so
     the dedup checks of [push] are skipped *)
  let seed = List.rev (rev_post_order root) in
  let seed_size = List.length seed in
  List.iter
    (fun (op : Ircore.op) -> Itbl.replace on_list op.Ircore.op_id ())
    seed;
  stack := seed;
  stats.worklist_pushes <- stats.worklist_pushes + seed_size;
  let epoch = max 1 seed_size in
  let budget = config.max_iterations * epoch in
  let processed = ref 0 in
  let continue_ = ref true in
  (* ambient Ir.Budget: each rewrite/fold/dce is one unit of cooperative
     work; exhaustion stops the driver cleanly mid-worklist *)
  let budget_stop = ref None in
  let charge () =
    match Budget.rewrite () with
    | Some reason ->
      budget_stop := Some reason;
      continue_ := false
    | None -> ()
  in
  while !continue_ do
    match !stack with
    | [] -> continue_ := false
    | op :: rest ->
      stack := rest;
      Itbl.remove on_list op.Ircore.op_id;
      (* validity: the erasure listener keeps [erased] authoritative, so a
         live entry only needs to still be attached (detached-but-live ops
         are skipped; they are re-pushed on insertion) *)
      if
        (not !dirty)
        || ((not (Itbl.mem erased op.Ircore.op_id))
           && op.Ircore.op_parent <> None)
      then begin
        incr processed;
        (* one counter sample per epoch of processed ops: the worklist
           depth over time, visible as a counter track in Perfetto *)
        if Profiler.profiling () && !processed mod epoch = 0 then
          Profiler.counter "greedy.worklist"
            (float_of_int (List.length !stack));
        if config.remove_dead && is_trivially_dead ctx op then begin
          let erased_now =
            match Action.active () with
            | None ->
              Rewriter.erase_op rewriter op;
              true
            | Some a ->
              Action.run_on a ~tag:"dce" ~desc:op.Ircore.op_name
                ~loc:op.Ircore.op_loc ~root:op ~skipped:false (fun () ->
                  Rewriter.erase_op rewriter op;
                  true)
          in
          if erased_now then begin
            stats.dce <- stats.dce + 1;
            charge ()
          end
        end
        else if
          config.fold && fold_contained ctx rewriter config folder stats op
        then begin
          stats.folds <- stats.folds + 1;
          charge ()
        end
        else begin
          match Frozen_patterns.for_op patterns op with
          | [] -> ()
          | candidates ->
            (* snapshot operand defs: a pattern may swap an operand in
               place, leaving the old def without uses (newly dead) *)
            let defs_before =
              Array.to_list op.Ircore.operands
              |> List.filter_map Ircore.defining_op
            in
            let rec try_patterns = function
              | [] -> ()
              | p :: rest ->
                stats.match_attempts <- stats.match_attempts + 1;
                Rewriter.set_ip rewriter (Builder.Before op);
                if rewrite_contained ctx rewriter p op then begin
                  stats.rewrites <- stats.rewrites + 1;
                  charge ();
                  List.iter push defs_before;
                  (* patterns may mutate in place without notifying; be
                     conservative and revisit the root and its users *)
                  if not (Itbl.mem erased op.Ircore.op_id) then begin
                    push op;
                    push_users op
                  end
                end
                else try_patterns rest
            in
            try_patterns candidates
        end;
        if !processed >= budget then continue_ := false
        else if !continue_ then
          (* amortized wall-clock poll: catches deadline expiry even on
             match-only iterations that charge no rewrite *)
          match Budget.poll () with
          | Some reason ->
            budget_stop := Some reason;
            continue_ := false
          | None -> ()
      end
  done;
  Rewriter.remove_listener rewriter listener;
  let pending =
    List.filter
      (fun (op : Ircore.op) ->
        (not (Itbl.mem erased op.Ircore.op_id))
        && Ircore.op_parent op <> None)
      !stack
  in
  let converged = pending = [] && !budget_stop = None in
  stats.iterations <- (max 1 ((!processed + epoch - 1) / epoch));
  (match !budget_stop with
  | Some reason ->
    Context.emit_diag ctx
      (Diag.warning ~loc:root.Ircore.op_loc
         "greedy rewrite on '%s' stopped early: %s" root.Ircore.op_name
         reason)
  | None ->
    if not converged then
      warn_no_fixpoint ctx config root (List.length pending));
  record_trace root stats converged;
  converged

(* ------------------------------------------------------------------ *)
(* Legacy sweep driver                                                  *)
(* ------------------------------------------------------------------ *)

(** The previous engine: fixpoint of full post-order sweeps, trying every
    pattern of the (benefit-sorted) list against every op. Kept so the
    benchmark harness can measure the worklist engine against it; new code
    should use {!apply}. *)
let apply_sweep ?(config = default_config) ?stats ?rewriter ctx ~patterns root
    =
  Profiler.span ~cat:"greedy"
    ~args:[ ("root", Profiler.Astr root.Ircore.op_name) ]
    "greedy.apply_sweep"
  @@ fun () ->
  let patterns =
    List.stable_sort
      (fun a b -> compare b.Pattern.benefit a.Pattern.benefit)
      patterns
  in
  let stats = match stats with Some s -> s | None -> create_stats () in
  let rewriter =
    match rewriter with Some rw -> rw | None -> Rewriter.create ()
  in
  let folder = Op_folder.create () in
  let erased = Itbl.create 64 in
  (* track erasure so stale worklist entries are skipped *)
  let listener =
    {
      Rewriter.null_listener with
      Rewriter.on_erased =
        (fun op -> Itbl.replace erased op.Ircore.op_id ());
      on_replaced = (fun op _ -> Itbl.replace erased op.Ircore.op_id ());
    }
  in
  Rewriter.add_listener rewriter listener;
  let changed_overall = ref true in
  let iterations = ref 0 in
  while !changed_overall && !iterations < config.max_iterations do
    incr iterations;
    changed_overall := false;
    (* re-collect the current ops in post-order *)
    let worklist = List.rev (rev_post_order root) in
    List.iter
      (fun op ->
        if not (Itbl.mem erased op.Ircore.op_id) then begin
          if config.remove_dead && is_trivially_dead ctx op then begin
            Rewriter.erase_op rewriter op;
            stats.dce <- stats.dce + 1;
            changed_overall := true
          end
          else if
            config.fold && fold_contained ctx rewriter config folder stats op
          then begin
            stats.folds <- stats.folds + 1;
            changed_overall := true
          end
          else
            let rec try_patterns = function
              | [] -> ()
              | p :: rest ->
                stats.match_attempts <- stats.match_attempts + 1;
                if Pattern.applicable p op then begin
                  Rewriter.set_ip rewriter (Builder.Before op);
                  if rewrite_contained ctx rewriter p op then begin
                    stats.rewrites <- stats.rewrites + 1;
                    changed_overall := true
                  end
                  else try_patterns rest
                end
                else try_patterns rest
            in
            try_patterns patterns
        end)
      worklist
  done;
  Rewriter.remove_listener rewriter listener;
  stats.iterations <- !iterations;
  let converged = not !changed_overall in
  if not converged then warn_no_fixpoint ctx config root 0;
  record_trace root stats converged;
  converged
