(** Hand-written lexer for the generic MLIR textual format.

    The lexer is pull-based with a single memoized lookahead token, and
    additionally exposes *raw mode* access to the underlying characters.
    Raw mode is needed to lex dimension lists such as [4x?xf32] inside shaped
    types, where [x] acts as a separator — mirroring how MLIR's own parser
    switches lexing modes inside [tensor<...>]. *)

type token =
  | INT of int
  | FLOATLIT of float
  | STRING of string
  | IDENT of string  (** bare identifier, including keywords *)
  | PCT_IDENT of string  (** [%foo] (without the [%]) *)
  | CARET_IDENT of string  (** [^bb0] (without the [^]) *)
  | AT_IDENT of string  (** [@foo] (without the [@]) *)
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | LT
  | GT
  | COMMA
  | COLON
  | DCOLON  (** [::] *)
  | EQUAL
  | ARROW  (** [->] *)
  | QUESTION
  | STAR
  | PLUS
  | MINUS
  | HASH  (** [#] *)
  | BANG  (** [!] *)
  | EOF

let pp_token fmt = function
  | INT n -> Fmt.pf fmt "integer %d" n
  | FLOATLIT f -> Fmt.pf fmt "float %g" f
  | STRING s -> Fmt.pf fmt "string %S" s
  | IDENT s -> Fmt.pf fmt "identifier %s" s
  | PCT_IDENT s -> Fmt.pf fmt "%%%s" s
  | CARET_IDENT s -> Fmt.pf fmt "^%s" s
  | AT_IDENT s -> Fmt.pf fmt "@%s" s
  | LPAREN -> Fmt.string fmt "("
  | RPAREN -> Fmt.string fmt ")"
  | LBRACE -> Fmt.string fmt "{"
  | RBRACE -> Fmt.string fmt "}"
  | LBRACKET -> Fmt.string fmt "["
  | RBRACKET -> Fmt.string fmt "]"
  | LT -> Fmt.string fmt "<"
  | GT -> Fmt.string fmt ">"
  | COMMA -> Fmt.string fmt ","
  | COLON -> Fmt.string fmt ":"
  | DCOLON -> Fmt.string fmt "::"
  | EQUAL -> Fmt.string fmt "="
  | ARROW -> Fmt.string fmt "->"
  | QUESTION -> Fmt.string fmt "?"
  | STAR -> Fmt.string fmt "*"
  | PLUS -> Fmt.string fmt "+"
  | MINUS -> Fmt.string fmt "-"
  | HASH -> Fmt.string fmt "#"
  | BANG -> Fmt.string fmt "!"
  | EOF -> Fmt.string fmt "<eof>"

exception Error of string * int (* message, offset *)

type t = {
  src : string;
  mutable pos : int;
  mutable cached : (token * int * int) option;  (** token, start, end *)
}

let create src = { src; pos = 0; cached = None }

let is_id_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_id_char c = is_id_start c || (c >= '0' && c <= '9') || c = '.' || c = '-' || c = '$'

let is_digit c = c >= '0' && c <= '9'
let is_hex c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')

(** Line/column of an offset, for diagnostics. *)
let line_col t off =
  let line = ref 1 and col = ref 1 in
  for i = 0 to min (off - 1) (String.length t.src - 1) do
    if t.src.[i] = '\n' then begin
      incr line;
      col := 1
    end
    else incr col
  done;
  (!line, !col)

let rec skip_ws_from src pos =
  let n = String.length src in
  if pos >= n then pos
  else
    match src.[pos] with
    | ' ' | '\t' | '\n' | '\r' -> skip_ws_from src (pos + 1)
    | '/' when pos + 1 < n && src.[pos + 1] = '/' ->
      let rec eol p = if p >= n || src.[p] = '\n' then p else eol (p + 1) in
      skip_ws_from src (eol (pos + 2))
    | _ -> pos

let scan_suffix_id src pos =
  (* identifier allowed after % ^ @ #: letters, digits, ., _, -, $ *)
  let n = String.length src in
  let start = pos in
  let rec go p = if p < n && is_id_char src.[p] then go (p + 1) else p in
  let stop = go pos in
  if stop = start then raise (Error ("expected identifier", pos));
  (String.sub src start (stop - start), stop)

let scan_number src pos =
  let n = String.length src in
  (* [pos] may sit on a '-' sign: the sign must be part of the literal so
     that min_int (the memref dynamic-dim sentinel) round-trips — its
     magnitude alone does not fit in an OCaml int *)
  let dstart = if pos < n && src.[pos] = '-' then pos + 1 else pos in
  let int_tok stop =
    match int_of_string_opt (String.sub src pos (stop - pos)) with
    | Some v -> (INT v, stop)
    | None -> raise (Error ("integer literal out of range", pos))
  in
  let float_tok stop =
    match float_of_string_opt (String.sub src pos (stop - pos)) with
    | Some v -> (FLOATLIT v, stop)
    | None -> raise (Error ("invalid numeric literal", pos))
  in
  if
    dstart + 1 < n
    && src.[dstart] = '0'
    && (src.[dstart + 1] = 'x' || src.[dstart + 1] = 'X')
  then begin
    (* hex integer or hex float *)
    let rec hexrun p = if p < n && is_hex src.[p] then hexrun (p + 1) else p in
    let p1 = hexrun (dstart + 2) in
    let is_float =
      (p1 < n && src.[p1] = '.')
      || (p1 < n && (src.[p1] = 'p' || src.[p1] = 'P'))
    in
    if not is_float then int_tok p1
    else begin
      let p2 = if p1 < n && src.[p1] = '.' then hexrun (p1 + 1) else p1 in
      let p3 =
        if p2 < n && (src.[p2] = 'p' || src.[p2] = 'P') then begin
          let p = p2 + 1 in
          let p = if p < n && (src.[p] = '+' || src.[p] = '-') then p + 1 else p in
          let rec digs q = if q < n && is_digit src.[q] then digs (q + 1) else q in
          let stop = digs p in
          (* exponent marker without digits is not part of the literal *)
          if stop = p then p2 else stop
        end
        else p2
      in
      float_tok p3
    end
  end
  else begin
    let rec digits p = if p < n && is_digit src.[p] then digits (p + 1) else p in
    let p1 = digits dstart in
    let has_frac = p1 < n && src.[p1] = '.' && p1 + 1 < n && is_digit src.[p1 + 1] in
    let p2 = if has_frac then digits (p1 + 1) else p1 in
    let p3 =
      if p2 < n && (src.[p2] = 'e' || src.[p2] = 'E') then begin
        let p = p2 + 1 in
        let p = if p < n && (src.[p] = '+' || src.[p] = '-') then p + 1 else p in
        let stop = digits p in
        (* "9E" / "9e+" are the integer/fraction followed by an identifier *)
        if stop = p then p2 else stop
      end
      else p2
    in
    if p3 > p1 then float_tok p3 else int_tok p1
  end

let scan_string src pos =
  let n = String.length src in
  let buf = Buffer.create 16 in
  let rec go p =
    if p >= n then raise (Error ("unterminated string", pos))
    else
      match src.[p] with
      | '"' -> (Buffer.contents buf, p + 1)
      | '\\' when p + 1 < n ->
        let c = src.[p + 1] in
        let c' =
          match c with
          | 'n' -> '\n'
          | 't' -> '\t'
          | 'r' -> '\r'
          | '\\' -> '\\'
          | '"' -> '"'
          | '0' -> '\000'
          | c -> c
        in
        Buffer.add_char buf c';
        go (p + 2)
      | c ->
        Buffer.add_char buf c;
        go (p + 1)
  in
  go pos

let scan_token src pos =
  let n = String.length src in
  if pos >= n then (EOF, pos)
  else
    let c = src.[pos] in
    match c with
    | '(' -> (LPAREN, pos + 1)
    | ')' -> (RPAREN, pos + 1)
    | '{' -> (LBRACE, pos + 1)
    | '}' -> (RBRACE, pos + 1)
    | '[' -> (LBRACKET, pos + 1)
    | ']' -> (RBRACKET, pos + 1)
    | '<' -> (LT, pos + 1)
    | '>' -> (GT, pos + 1)
    | ',' -> (COMMA, pos + 1)
    | '=' -> (EQUAL, pos + 1)
    | '?' -> (QUESTION, pos + 1)
    | '*' -> (STAR, pos + 1)
    | '+' -> (PLUS, pos + 1)
    | '#' -> (HASH, pos + 1)
    | '!' -> (BANG, pos + 1)
    | ':' ->
      if pos + 1 < n && src.[pos + 1] = ':' then (DCOLON, pos + 2)
      else (COLON, pos + 1)
    | '-' ->
      if pos + 1 < n && src.[pos + 1] = '>' then (ARROW, pos + 2)
      else if
        pos + 1 < n
        && (is_digit src.[pos + 1]
           || (pos + 2 < n && src.[pos + 1] = '.' && is_digit src.[pos + 2]))
      then scan_number src pos
      else (MINUS, pos + 1)
    | '"' ->
      let s, p = scan_string src (pos + 1) in
      (STRING s, p)
    | '%' ->
      let s, p = scan_suffix_id src (pos + 1) in
      (PCT_IDENT s, p)
    | '^' ->
      let s, p = scan_suffix_id src (pos + 1) in
      (CARET_IDENT s, p)
    | '@' ->
      let s, p = scan_suffix_id src (pos + 1) in
      (AT_IDENT s, p)
    | c when is_digit c ->
      let tok, p = scan_number src pos in
      (tok, p)
    | c when is_id_start c ->
      let stop =
        let rec go p =
          if p < n && (is_id_start src.[p] || is_digit src.[p] || src.[p] = '.' || src.[p] = '_')
          then go (p + 1)
          else p
        in
        go pos
      in
      (IDENT (String.sub src pos (stop - pos)), stop)
    | c -> raise (Error (Fmt.str "unexpected character %C" c, pos))

let fill t =
  match t.cached with
  | Some _ -> ()
  | None ->
    let start = skip_ws_from t.src t.pos in
    let tok, stop = scan_token t.src start in
    t.cached <- Some (tok, start, stop)

let peek t =
  fill t;
  match t.cached with Some (tok, _, _) -> tok | None -> assert false

let token_start t =
  fill t;
  match t.cached with Some (_, s, _) -> s | None -> assert false

let advance t =
  fill t;
  match t.cached with
  | Some (_, _, stop) ->
    t.pos <- stop;
    t.cached <- None
  | None -> assert false

let next t =
  let tok = peek t in
  advance t;
  tok

(* ---------------------------------------------------------------- *)
(* Raw mode: character-level access for dimension lists              *)
(* ---------------------------------------------------------------- *)

(** Enter raw mode: un-memoize the lookahead (if any), positioning the cursor
    just before it, skipping leading whitespace. *)
let enter_raw t =
  (match t.cached with
  | Some (_, start, _) ->
    t.pos <- start;
    t.cached <- None
  | None -> ());
  t.pos <- skip_ws_from t.src t.pos

let raw_peek_char t =
  if t.pos < String.length t.src then Some t.src.[t.pos] else None

let raw_advance_char t = t.pos <- t.pos + 1

(** Lex the dimension-list prefix of a shaped type body: a (possibly empty)
    sequence of [<dim>x] items where dim is an integer, [?] or [*]. Returns
    the dims; the cursor is positioned at the element type. [*x] yields
    [`Unranked]. *)
let raw_dimension_list t =
  enter_raw t;
  let src = t.src in
  let n = String.length src in
  let dims = ref [] in
  let unranked = ref false in
  let continue_ = ref true in
  while !continue_ do
    let p = t.pos in
    if p < n && src.[p] = '?' && p + 1 < n && src.[p + 1] = 'x' then begin
      dims := Typ.Dynamic :: !dims;
      t.pos <- p + 2
    end
    else if p < n && src.[p] = '*' && p + 1 < n && src.[p + 1] = 'x' then begin
      unranked := true;
      t.pos <- p + 2
    end
    else if p < n && is_digit src.[p] then begin
      let rec digits q = if q < n && is_digit src.[q] then digits (q + 1) else q in
      let stop = digits p in
      if stop < n && src.[stop] = 'x' then begin
        dims := Typ.Static (int_of_string (String.sub src p (stop - p))) :: !dims;
        t.pos <- stop + 1
      end
      else continue_ := false
    end
    else continue_ := false
  done;
  if !unranked then `Unranked else `Ranked (List.rev !dims)
