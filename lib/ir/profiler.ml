(** Trace-event profiler: timestamped begin/end spans with nesting, plus
    counter samples, exported as Chrome trace-event JSON loadable in
    Perfetto ([ui.perfetto.dev]) or [chrome://tracing].

    Like {!Trace}, the profiler is ambient: {!with_profiler} installs one
    for a dynamic extent and deeply nested components (a greedy rewrite
    inside a canonicalize pass inside a transform script) report spans
    without threading the profiler through every signature. The ambient
    slot is domain-local, so the parallel pass manager installs the same
    profiler instance in every worker and each domain records into its own
    shard: one [(tid, event buffer, depth)] record per domain, created
    lazily under the profiler's mutex and cached in domain-local storage so
    the hot path stays lock-free. Exported events carry the shard's real
    domain id as [tid], which Perfetto renders as per-domain lanes. When no
    profiler is installed every entry point is a cheap no-op — a single
    domain-local read — so instrumentation can stay on in hot paths (the
    cost is measured by [bench … profiler] into [BENCH_profiler.json]).

    Spans nest strictly {e per domain}: {!span} emits a [B] (begin) event,
    runs its body and emits the matching [E] (end) event even on
    exceptions, so each shard's stream is always balanced and Perfetto
    renders each lane as a flame graph: pass pipeline → pass → greedy
    driver, and transform-interpreter op spans. {!counter} emits a [C]
    (counter sample) event. *)

type arg = Aint of int | Afloat of float | Astr of string

type event =
  | Begin of {
      b_name : string;
      b_cat : string;  (** trace-event category, e.g. [pass], [greedy] *)
      b_ts : float;  (** microseconds since profiler creation *)
      b_args : (string * arg) list;
    }
  | End of { e_ts : float }
  | Counter of { c_name : string; c_ts : float; c_value : float }

type shard = {
  sh_tid : int;  (** the recording domain's id *)
  mutable sh_rev_events : event list;
  mutable sh_depth : int;  (** currently open spans on this domain *)
  mutable sh_max_depth : int;
  mutable sh_spans : int;  (** completed spans on this domain *)
}

type t = {
  mutable shards : shard list;  (** guarded by [mu]; one per domain *)
  mu : Mutex.t;
  t0 : float;  (** creation time, the trace's timestamp origin *)
}

let now () = Unix.gettimeofday ()
let create () = { shards = []; mu = Mutex.create (); t0 = now () }

(* last (profiler, shard) this domain touched — avoids the mutex on every
   event when one profiler stays installed, the overwhelmingly common case *)
let shard_cache : (t * shard) option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let shard_for p =
  match Domain.DLS.get shard_cache with
  | Some (p', s) when p' == p -> s
  | _ ->
    let tid = (Domain.self () :> int) in
    Mutex.lock p.mu;
    let s =
      match List.find_opt (fun s -> s.sh_tid = tid) p.shards with
      | Some s -> s
      | None ->
        let s =
          { sh_tid = tid; sh_rev_events = []; sh_depth = 0; sh_max_depth = 0;
            sh_spans = 0 }
        in
        p.shards <- s :: p.shards;
        s
    in
    Mutex.unlock p.mu;
    Domain.DLS.set shard_cache (Some (p, s));
    s

(* shards sorted by domain id, so merged views are deterministic *)
let sorted_shards p =
  Mutex.lock p.mu;
  let shards = p.shards in
  Mutex.unlock p.mu;
  List.sort (fun a b -> compare a.sh_tid b.sh_tid) shards

(** All recorded events, grouped by recording domain (ascending domain id),
    in recording order within each domain. *)
let events p =
  List.concat_map (fun s -> List.rev s.sh_rev_events) (sorted_shards p)

let span_count p =
  List.fold_left (fun acc s -> acc + s.sh_spans) 0 (sorted_shards p)

let max_depth p =
  List.fold_left (fun acc s -> max acc s.sh_max_depth) 0 (sorted_shards p)

(** All begin spans closed on every domain — always true outside {!span}
    bodies. *)
let balanced p =
  List.for_all (fun s -> s.sh_depth = 0) (sorted_shards p)

let clear p =
  (* reset shards in place: domain-local caches may still point at them *)
  List.iter
    (fun s ->
      s.sh_rev_events <- [];
      s.sh_depth <- 0;
      s.sh_max_depth <- 0;
      s.sh_spans <- 0)
    (sorted_shards p)

(* ------------------------------------------------------------------ *)
(* Ambient profiler (domain-local)                                     *)
(* ------------------------------------------------------------------ *)

let current : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

(** Install [p] as this domain's ambient profiler while [f] runs. Worker
    domains start with no profiler; the pass manager re-installs the
    parent's instance around each parallel task. *)
let with_profiler p f =
  let saved = Domain.DLS.get current in
  Domain.DLS.set current (Some p);
  Fun.protect ~finally:(fun () -> Domain.DLS.set current saved) f

(** Run [f] with no ambient profiler (benchmarks use this to measure the
    disabled-path overhead under an outer [--profile]). *)
let with_disabled f =
  let saved = Domain.DLS.get current in
  Domain.DLS.set current None;
  Fun.protect ~finally:(fun () -> Domain.DLS.set current saved) f

(** This domain's ambient profiler, for schedulers that propagate it to
    worker domains. *)
let active () = Domain.DLS.get current

let profiling () = Domain.DLS.get current <> None

(** Microseconds since the ambient profiler's creation, or [None] with no
    profiler installed — lets other journals (e.g. {!Action}) stamp their
    records on the same timebase as the exported trace spans. *)
let timestamp () =
  match Domain.DLS.get current with
  | None -> None
  | Some p -> Some ((now () -. p.t0) *. 1e6)

(* ------------------------------------------------------------------ *)
(* Recording                                                           *)
(* ------------------------------------------------------------------ *)

let ts p = (now () -. p.t0) *. 1e6

let begin_on p ~cat ~args name =
  let s = shard_for p in
  s.sh_depth <- s.sh_depth + 1;
  if s.sh_depth > s.sh_max_depth then s.sh_max_depth <- s.sh_depth;
  s.sh_rev_events <-
    Begin { b_name = name; b_cat = cat; b_ts = ts p; b_args = args }
    :: s.sh_rev_events

let end_on p =
  let s = shard_for p in
  s.sh_depth <- s.sh_depth - 1;
  s.sh_spans <- s.sh_spans + 1;
  s.sh_rev_events <- End { e_ts = ts p } :: s.sh_rev_events

(** [span name f] runs [f] inside a profiler span named [name]. With no
    ambient profiler this is exactly [f ()] after one domain-local read.
    The end event is emitted even when [f] raises, so the stream stays
    balanced. *)
let span ?(cat = "") ?(args = []) name f =
  match Domain.DLS.get current with
  | None -> f ()
  | Some p ->
    begin_on p ~cat ~args name;
    Fun.protect ~finally:(fun () -> end_on p) f

(** Emit a counter sample, e.g. the greedy driver's worklist size. *)
let counter name value =
  match Domain.DLS.get current with
  | None -> ()
  | Some p ->
    let s = shard_for p in
    s.sh_rev_events <-
      Counter { c_name = name; c_ts = ts p; c_value = value }
      :: s.sh_rev_events

(* ------------------------------------------------------------------ *)
(* Chrome trace-event JSON                                             *)
(* ------------------------------------------------------------------ *)

let arg_to_json = function
  | Aint n -> Json.Int n
  | Afloat f -> Json.Float f
  | Astr s -> Json.String s

(* every event carries pid/tid: the viewers group events by both; tid is
   the recording domain's id, giving Perfetto one lane per domain *)
let event_to_json ~tid = function
  | Begin { b_name; b_cat; b_ts; b_args } ->
    Json.Obj
      ([
         ("name", Json.String b_name);
         ("cat", Json.String (if b_cat = "" then "otd" else b_cat));
         ("ph", Json.String "B");
         ("ts", Json.Float b_ts);
         ("pid", Json.Int 1);
         ("tid", Json.Int tid);
       ]
      @
      match b_args with
      | [] -> []
      | args ->
        [
          ( "args",
            Json.Obj (List.map (fun (k, v) -> (k, arg_to_json v)) args) );
        ])
  | End { e_ts } ->
    Json.Obj
      [
        ("ph", Json.String "E");
        ("ts", Json.Float e_ts);
        ("pid", Json.Int 1);
        ("tid", Json.Int tid);
      ]
  | Counter { c_name; c_ts; c_value } ->
    Json.Obj
      [
        ("name", Json.String c_name);
        ("ph", Json.String "C");
        ("ts", Json.Float c_ts);
        ("pid", Json.Int 1);
        ("tid", Json.Int tid);
        ("args", Json.Obj [ ("value", Json.Float c_value) ]);
      ]

(** The profile as a Chrome trace-event JSON object (the "JSON object
    format": a [traceEvents] array plus metadata), loadable in Perfetto
    and [chrome://tracing]. Events are grouped per recording domain with
    real [tid]s, so parallel pass runs show one lane per domain. *)
let to_json p =
  let shards = sorted_shards p in
  let trace_events =
    List.concat_map
      (fun s ->
        List.rev_map (event_to_json ~tid:s.sh_tid) s.sh_rev_events)
      shards
  in
  Json.Obj
    [
      ("traceEvents", Json.List trace_events);
      ("displayTimeUnit", Json.String "ms");
      ( "otherData",
        Json.Obj
          [
            ("producer", Json.String "otd-opt profiler");
            ("spans", Json.Int (span_count p));
            ("max_depth", Json.Int (max_depth p));
            ("domains", Json.Int (List.length shards));
          ] );
    ]

(** Write the profile to [path]. *)
let write p ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string (to_json p));
      output_string oc "\n")
