(** Trace-event profiler: timestamped begin/end spans with nesting, plus
    counter samples, exported as Chrome trace-event JSON loadable in
    Perfetto ([ui.perfetto.dev]) or [chrome://tracing].

    Like {!Trace}, the profiler is ambient: {!with_profiler} installs one
    for a dynamic extent and deeply nested components (a greedy rewrite
    inside a canonicalize pass inside a transform script) report spans
    without threading the profiler through every signature. When no
    profiler is installed every entry point is a cheap no-op — a single
    ref read — so instrumentation can stay on in hot paths
    (the cost is measured by [bench … profiler] into
    [BENCH_profiler.json]).

    Spans nest strictly: {!span} emits a [B] (begin) event, runs its body
    and emits the matching [E] (end) event even on exceptions, so the
    resulting stream is always balanced and Perfetto renders it as a flame
    graph: pass pipeline → pass → greedy driver, and transform-interpreter
    op spans. {!counter} emits a [C] (counter sample) event. *)

type arg = Aint of int | Afloat of float | Astr of string

type event =
  | Begin of {
      b_name : string;
      b_cat : string;  (** trace-event category, e.g. [pass], [greedy] *)
      b_ts : float;  (** microseconds since profiler creation *)
      b_args : (string * arg) list;
    }
  | End of { e_ts : float }
  | Counter of { c_name : string; c_ts : float; c_value : float }

type t = {
  mutable rev_events : event list;
  mutable depth : int;  (** currently open spans *)
  mutable max_depth : int;
  mutable spans : int;  (** completed spans *)
  t0 : float;  (** creation time, the trace's timestamp origin *)
}

let now () = Unix.gettimeofday ()

let create () =
  { rev_events = []; depth = 0; max_depth = 0; spans = 0; t0 = now () }

let events p = List.rev p.rev_events
let span_count p = p.spans
let max_depth p = p.max_depth

(** All begin spans closed — always true outside a {!span} body. *)
let balanced p = p.depth = 0

let clear p =
  p.rev_events <- [];
  p.depth <- 0;
  p.max_depth <- 0;
  p.spans <- 0

(* ------------------------------------------------------------------ *)
(* Ambient profiler                                                    *)
(* ------------------------------------------------------------------ *)

let current : t option ref = ref None

(** Install [p] as the ambient profiler while [f] runs. *)
let with_profiler p f =
  let saved = !current in
  current := Some p;
  Fun.protect ~finally:(fun () -> current := saved) f

let profiling () = !current <> None

(* ------------------------------------------------------------------ *)
(* Recording                                                           *)
(* ------------------------------------------------------------------ *)

let ts p = (now () -. p.t0) *. 1e6

let begin_on p ~cat ~args name =
  p.depth <- p.depth + 1;
  if p.depth > p.max_depth then p.max_depth <- p.depth;
  p.rev_events <-
    Begin { b_name = name; b_cat = cat; b_ts = ts p; b_args = args }
    :: p.rev_events

let end_on p =
  p.depth <- p.depth - 1;
  p.spans <- p.spans + 1;
  p.rev_events <- End { e_ts = ts p } :: p.rev_events

(** [span name f] runs [f] inside a profiler span named [name]. With no
    ambient profiler this is exactly [f ()] after one ref read. The end
    event is emitted even when [f] raises, so the stream stays balanced. *)
let span ?(cat = "") ?(args = []) name f =
  match !current with
  | None -> f ()
  | Some p ->
    begin_on p ~cat ~args name;
    Fun.protect ~finally:(fun () -> end_on p) f

(** Emit a counter sample, e.g. the greedy driver's worklist size. *)
let counter name value =
  match !current with
  | None -> ()
  | Some p ->
    p.rev_events <-
      Counter { c_name = name; c_ts = ts p; c_value = value } :: p.rev_events

(* ------------------------------------------------------------------ *)
(* Chrome trace-event JSON                                             *)
(* ------------------------------------------------------------------ *)

let arg_to_json = function
  | Aint n -> Json.Int n
  | Afloat f -> Json.Float f
  | Astr s -> Json.String s

(* every event carries pid/tid: the viewers group events by both *)
let pid_tid = [ ("pid", Json.Int 1); ("tid", Json.Int 1) ]

let event_to_json = function
  | Begin { b_name; b_cat; b_ts; b_args } ->
    Json.Obj
      ([
         ("name", Json.String b_name);
         ("cat", Json.String (if b_cat = "" then "otd" else b_cat));
         ("ph", Json.String "B");
         ("ts", Json.Float b_ts);
       ]
      @ pid_tid
      @
      match b_args with
      | [] -> []
      | args ->
        [
          ( "args",
            Json.Obj (List.map (fun (k, v) -> (k, arg_to_json v)) args) );
        ])
  | End { e_ts } ->
    Json.Obj ([ ("ph", Json.String "E"); ("ts", Json.Float e_ts) ] @ pid_tid)
  | Counter { c_name; c_ts; c_value } ->
    Json.Obj
      ([
         ("name", Json.String c_name);
         ("ph", Json.String "C");
         ("ts", Json.Float c_ts);
       ]
      @ pid_tid
      @ [ ("args", Json.Obj [ ("value", Json.Float c_value) ]) ])

(** The profile as a Chrome trace-event JSON object (the "JSON object
    format": a [traceEvents] array plus metadata), loadable in Perfetto
    and [chrome://tracing]. *)
let to_json p =
  Json.Obj
    [
      ("traceEvents", Json.List (List.map event_to_json (events p)));
      ("displayTimeUnit", Json.String "ms");
      ( "otherData",
        Json.Obj
          [
            ("producer", Json.String "otd-opt profiler");
            ("spans", Json.Int p.spans);
            ("max_depth", Json.Int p.max_depth);
          ] );
    ]

(** Write the profile to [path]. *)
let write p ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string (to_json p));
      output_string oc "\n")
