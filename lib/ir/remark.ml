(** Optimization remarks: structured reports of what a transformation did
    ([Passed]), declined to do and why ([Missed]), or learned about the
    payload ([Analysis]) — LLVM's [-Rpass]/[-Rpass-missed] family, with the
    payload {!Loc.t} attribution and structured key/value arguments of the
    serialized remark format.

    Like {!Trace} and {!Profiler}, emission is ambient: {!with_handler}
    installs a callback for a dynamic extent, and with no handler
    installed {!emit} is a no-op after one ref read. Emission sites guard
    message formatting behind {!enabled} so the disabled path allocates
    nothing. *)

type kind = Passed | Missed | Analysis

type arg = Int of int | Float of float | String of string

type t = {
  r_kind : kind;
  r_pass : string;  (** the transform/pass that reports, e.g. [loop-tile] *)
  r_loc : Loc.t;  (** location of the payload op the remark is about *)
  r_message : string;
  r_args : (string * arg) list;  (** structured key/value arguments *)
}

let kind_to_string = function
  | Passed -> "passed"
  | Missed -> "missed"
  | Analysis -> "analysis"

let kind_of_string = function
  | "passed" -> Some Passed
  | "missed" -> Some Missed
  | "analysis" -> Some Analysis
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let make ?(loc = Loc.Unknown) ?(args = []) kind ~pass fmt =
  Fmt.kstr
    (fun m ->
      { r_kind = kind; r_pass = pass; r_loc = loc; r_message = m; r_args = args })
    fmt

let passed ?loc ?args ~pass fmt = make ?loc ?args Passed ~pass fmt
let missed ?loc ?args ~pass fmt = make ?loc ?args Missed ~pass fmt
let analysis ?loc ?args ~pass fmt = make ?loc ?args Analysis ~pass fmt

(* ------------------------------------------------------------------ *)
(* Ambient handler                                                     *)
(* ------------------------------------------------------------------ *)

type handler = t -> unit

(* domain-local: parallel schedulers install a per-task collector on each
   worker and replay the collected remarks in source order *)
let current : handler option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

(** Install [h] as this domain's ambient remark handler while [f] runs. *)
let with_handler h f =
  let saved = Domain.DLS.get current in
  Domain.DLS.set current (Some h);
  Fun.protect ~finally:(fun () -> Domain.DLS.set current saved) f

(** True when a handler is installed. Emission sites should guard remark
    construction with this so the disabled path does not format messages. *)
let enabled () = Domain.DLS.get current <> None

let emit r =
  match Domain.DLS.get current with Some h -> h r | None -> ()

(* ------------------------------------------------------------------ *)
(* Filtering                                                           *)
(* ------------------------------------------------------------------ *)

(** Parse a comma-separated kind list ("passed,missed"; "all" or the empty
    string select every kind). Unknown segments are reported as [Error]. *)
let kinds_of_string s =
  let segs =
    String.split_on_char ',' s
    |> List.map String.trim
    |> List.filter (fun x -> x <> "")
  in
  if segs = [] || List.mem "all" segs then Ok [ Passed; Missed; Analysis ]
  else
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | seg :: rest -> (
        match kind_of_string seg with
        | Some k -> go (k :: acc) rest
        | None -> Error (Fmt.str "unknown remark kind %S" seg))
    in
    go [] segs

(** [matches ?kinds ?filter r]: [r] has one of [kinds] (all, when omitted)
    and [filter] (a {!Str} regexp) matches its pass name or message. *)
let matches ?kinds ?filter r =
  (match kinds with None -> true | Some ks -> List.mem r.r_kind ks)
  && (match filter with
     | None -> true
     | Some re -> (
       let found s =
         try
           ignore (Str.search_forward re s 0);
           true
         with Not_found -> false
       in
       found r.r_pass || found r.r_message))

let filter ?kinds ?filter:re remarks =
  List.filter (fun r -> matches ?kinds ?filter:re r) remarks

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let pp_arg fmt (k, v) =
  match v with
  | Int n -> Fmt.pf fmt "%s=%d" k n
  | Float f -> Fmt.pf fmt "%s=%g" k f
  | String s -> Fmt.pf fmt "%s=%s" k s

let pp fmt r =
  Fmt.pf fmt "remark[%s] %s: %s" (kind_to_string r.r_kind) r.r_pass r.r_message;
  (match r.r_args with
  | [] -> ()
  | args -> Fmt.pf fmt " {%a}" (Fmt.list ~sep:(Fmt.any ", ") pp_arg) args);
  match r.r_loc with
  | Loc.Unknown -> ()
  | l -> Fmt.pf fmt " at %a" Loc.pp l

let to_string r = Fmt.str "%a" pp r

let arg_to_json = function
  | Int n -> Json.Int n
  | Float f -> Json.Float f
  | String s -> Json.String s

let to_json r =
  Json.Obj
    ([
       ("kind", Json.String (kind_to_string r.r_kind));
       ("pass", Json.String r.r_pass);
     ]
    @ (match r.r_loc with
      | Loc.Unknown -> []
      | l -> [ ("loc", Json.String (Loc.to_string l)) ])
    @ [ ("message", Json.String r.r_message) ]
    @
    match r.r_args with
    | [] -> []
    | args ->
      [ ("args", Json.Obj (List.map (fun (k, v) -> (k, arg_to_json v)) args)) ])
