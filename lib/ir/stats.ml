(** Global statistics registry: named per-component counters and histograms,
    mirroring MLIR's pass statistics ([-pass-statistics]).

    Components intern their statistics once at module-initialization time
    ([let stat_rewrites = Stats.counter ~component:"greedy" "rewrites"]) and
    bump them with {!incr}/{!add}. The hot path is domain-safe without
    synchronization: each domain owns a private shard (an int array for
    counters, cells for histograms, both indexed by the statistic's interned
    id) reached through domain-local storage, so a bump is one unshared
    array update. Readers ({!value}, {!snapshot}, {!pp}, {!to_json}) merge
    every live shard under a mutex, which is exactly the
    shard-per-domain/merge-on-report scheme the multicore pass manager
    needs. {!reset} zeroes all shards (the registration set is kept), which
    the tests use for isolation. *)

type counter = {
  c_component : string;
  c_name : string;
  c_desc : string;
  c_id : int;  (** index into each shard's counter array *)
}

type histogram = {
  h_component : string;
  h_name : string;
  h_desc : string;
  h_id : int;  (** index into each shard's histogram array *)
}

type entry = Counter of counter | Histogram of histogram

let registry : (string * string, entry) Hashtbl.t = Hashtbl.create 32
let reg_mu = Mutex.create ()
let n_counters = ref 0
let n_histograms = ref 0

(* ------------------------------------------------------------------ *)
(* Domain-local shards                                                 *)
(* ------------------------------------------------------------------ *)

type hcell = {
  mutable hc_n : int;
  mutable hc_sum : float;
  mutable hc_min : float;
  mutable hc_max : float;
}

type shard = { mutable sc : int array; mutable sh : hcell array }

(* all shards ever created, so readers can merge; domains are long-lived
   pool workers, so the list stays small *)
let shards : shard list ref = ref []
let shards_mu = Mutex.create ()

let new_hcell () =
  { hc_n = 0; hc_sum = 0.0; hc_min = infinity; hc_max = neg_infinity }

let shard_key =
  Domain.DLS.new_key (fun () ->
      let s = { sc = [||]; sh = [||] } in
      Mutex.lock shards_mu;
      shards := s :: !shards;
      Mutex.unlock shards_mu;
      s)

let my_shard () = Domain.DLS.get shard_key

let ensure_counter s id =
  if id >= Array.length s.sc then begin
    let len = max 16 (max (id + 1) (2 * Array.length s.sc)) in
    let a = Array.make len 0 in
    Array.blit s.sc 0 a 0 (Array.length s.sc);
    s.sc <- a
  end

let ensure_hist s id =
  if id >= Array.length s.sh then begin
    let old = s.sh in
    let len = max 16 (max (id + 1) (2 * Array.length old)) in
    s.sh <-
      Array.init len (fun i ->
          if i < Array.length old then old.(i) else new_hcell ())
  end

(* ------------------------------------------------------------------ *)
(* Registration                                                        *)
(* ------------------------------------------------------------------ *)

(** Intern the counter [component/name]; returns the existing counter when
    already registered (so re-registration is idempotent). *)
let counter ?(desc = "") ~component name =
  Mutex.lock reg_mu;
  let r =
    match Hashtbl.find_opt registry (component, name) with
    | Some (Counter c) -> Ok c
    | Some (Histogram _) ->
      Error
        (Fmt.str "statistic %s/%s already registered as a histogram" component
           name)
    | None ->
      let c =
        { c_component = component; c_name = name; c_desc = desc;
          c_id = !n_counters }
      in
      incr n_counters;
      Hashtbl.replace registry (component, name) (Counter c);
      Ok c
  in
  Mutex.unlock reg_mu;
  match r with Ok c -> c | Error msg -> invalid_arg msg

let histogram ?(desc = "") ~component name =
  Mutex.lock reg_mu;
  let r =
    match Hashtbl.find_opt registry (component, name) with
    | Some (Histogram h) -> Ok h
    | Some (Counter _) ->
      Error
        (Fmt.str "statistic %s/%s already registered as a counter" component
           name)
    | None ->
      let h =
        { h_component = component; h_name = name; h_desc = desc;
          h_id = !n_histograms }
      in
      incr n_histograms;
      Hashtbl.replace registry (component, name) (Histogram h);
      Ok h
  in
  Mutex.unlock reg_mu;
  match r with Ok h -> h | Error msg -> invalid_arg msg

(* ------------------------------------------------------------------ *)
(* Recording (hot path: this domain's shard only, no locks)            *)
(* ------------------------------------------------------------------ *)

let add c n =
  let s = my_shard () in
  ensure_counter s c.c_id;
  s.sc.(c.c_id) <- s.sc.(c.c_id) + n

let incr c = add c 1

let observe h v =
  let s = my_shard () in
  ensure_hist s h.h_id;
  let hc = s.sh.(h.h_id) in
  hc.hc_n <- hc.hc_n + 1;
  hc.hc_sum <- hc.hc_sum +. v;
  if v < hc.hc_min then hc.hc_min <- v;
  if v > hc.hc_max then hc.hc_max <- v

(* ------------------------------------------------------------------ *)
(* Reading (merge across shards)                                       *)
(* ------------------------------------------------------------------ *)

let with_shards f =
  Mutex.lock shards_mu;
  let r = f !shards in
  Mutex.unlock shards_mu;
  r

let value c =
  with_shards
    (List.fold_left
       (fun acc s ->
         acc + if c.c_id < Array.length s.sc then s.sc.(c.c_id) else 0)
       0)

(** Merged view of a histogram: (count, sum, min, max). *)
let hist_totals h =
  with_shards
    (List.fold_left
       (fun (n, sum, mn, mx) s ->
         if h.h_id < Array.length s.sh then begin
           let hc = s.sh.(h.h_id) in
           ( n + hc.hc_n,
             sum +. hc.hc_sum,
             min mn hc.hc_min,
             max mx hc.hc_max )
         end
         else (n, sum, mn, mx))
       (0, 0.0, infinity, neg_infinity))

let count h =
  let n, _, _, _ = hist_totals h in
  n

let mean h =
  let n, sum, _, _ = hist_totals h in
  if n = 0 then 0.0 else sum /. float_of_int n

(** Zero every registered statistic in every domain's shard (registrations
    are kept). *)
let reset () =
  with_shards
    (List.iter (fun s ->
         Array.fill s.sc 0 (Array.length s.sc) 0;
         Array.iter
           (fun hc ->
             hc.hc_n <- 0;
             hc.hc_sum <- 0.0;
             hc.hc_min <- infinity;
             hc.hc_max <- neg_infinity)
           s.sh))

(** Look up a registered counter's value, for tests and light consumers. *)
let find_counter ~component name =
  Mutex.lock reg_mu;
  let r = Hashtbl.find_opt registry (component, name) in
  Mutex.unlock reg_mu;
  match r with Some (Counter c) -> Some c | _ -> None

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

(** All entries, sorted by (component, name). *)
let snapshot () =
  Mutex.lock reg_mu;
  let entries = Hashtbl.fold (fun _ e acc -> e :: acc) registry [] in
  Mutex.unlock reg_mu;
  List.sort
    (fun a b ->
      let key = function
        | Counter c -> (c.c_component, c.c_name)
        | Histogram h -> (h.h_component, h.h_name)
      in
      compare (key a) (key b))
    entries

let pp fmt () =
  let entries = snapshot () in
  let width f =
    List.fold_left (fun acc e -> max acc (String.length (f e))) 0 entries
  in
  let comp = function
    | Counter c -> c.c_component
    | Histogram h -> h.h_component
  in
  let name = function Counter c -> c.c_name | Histogram h -> h.h_name in
  let wc = max 9 (width comp) and wn = max 4 (width name) in
  Fmt.pf fmt "@[<v>%-*s  %-*s  %s@," wc "component" wn "name" "value";
  List.iter
    (fun e ->
      match e with
      | Counter c ->
        Fmt.pf fmt "%-*s  %-*s  %d@," wc c.c_component wn c.c_name (value c)
      | Histogram h ->
        let n, sum, mn, mx = hist_totals h in
        Fmt.pf fmt "%-*s  %-*s  n=%d sum=%g min=%g max=%g mean=%g@," wc
          h.h_component wn h.h_name n sum
          (if n = 0 then 0.0 else mn)
          (if n = 0 then 0.0 else mx)
          (if n = 0 then 0.0 else sum /. float_of_int n))
    entries;
  Fmt.pf fmt "@]"

let to_json () =
  Json.List
    (List.map
       (function
         | Counter c ->
           Json.Obj
             [
               ("component", Json.String c.c_component);
               ("name", Json.String c.c_name);
               ("kind", Json.String "counter");
               ("value", Json.Int (value c));
             ]
         | Histogram h ->
           let n, sum, mn, mx = hist_totals h in
           Json.Obj
             [
               ("component", Json.String h.h_component);
               ("name", Json.String h.h_name);
               ("kind", Json.String "histogram");
               ("count", Json.Int n);
               ("sum", Json.Float sum);
               ("min", Json.Float (if n = 0 then 0.0 else mn));
               ("max", Json.Float (if n = 0 then 0.0 else mx));
               ("mean",
                Json.Float (if n = 0 then 0.0 else sum /. float_of_int n));
             ])
       (snapshot ()))
