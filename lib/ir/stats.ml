(** Global statistics registry: named per-component counters and histograms,
    mirroring MLIR's pass statistics ([-pass-statistics]).

    Components intern their statistics once at module-initialization time
    ([let stat_rewrites = Stats.counter ~component:"greedy" "rewrites"]) and
    bump them with {!incr}/{!add} — a single mutable-field update, cheap
    enough for hot paths. The registry is process-global so `otd_opt
    --stats` can render everything any component recorded during a run as
    an aligned text table or as JSON; {!reset} zeroes all values (the
    registration set is kept), which the tests use for isolation. *)

type counter = {
  c_component : string;
  c_name : string;
  c_desc : string;
  mutable c_value : int;
}

type histogram = {
  h_component : string;
  h_name : string;
  h_desc : string;
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
}

type entry = Counter of counter | Histogram of histogram

let registry : (string * string, entry) Hashtbl.t = Hashtbl.create 32

(** Intern the counter [component/name]; returns the existing counter when
    already registered (so re-registration is idempotent). *)
let counter ?(desc = "") ~component name =
  match Hashtbl.find_opt registry (component, name) with
  | Some (Counter c) -> c
  | Some (Histogram _) ->
    invalid_arg
      (Fmt.str "statistic %s/%s already registered as a histogram" component
         name)
  | None ->
    let c = { c_component = component; c_name = name; c_desc = desc; c_value = 0 } in
    Hashtbl.replace registry (component, name) (Counter c);
    c

let histogram ?(desc = "") ~component name =
  match Hashtbl.find_opt registry (component, name) with
  | Some (Histogram h) -> h
  | Some (Counter _) ->
    invalid_arg
      (Fmt.str "statistic %s/%s already registered as a counter" component
         name)
  | None ->
    let h =
      {
        h_component = component;
        h_name = name;
        h_desc = desc;
        h_count = 0;
        h_sum = 0.0;
        h_min = infinity;
        h_max = neg_infinity;
      }
    in
    Hashtbl.replace registry (component, name) (Histogram h);
    h

let incr c = c.c_value <- c.c_value + 1
let add c n = c.c_value <- c.c_value + n
let value c = c.c_value

let observe h v =
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. v;
  if v < h.h_min then h.h_min <- v;
  if v > h.h_max then h.h_max <- v

let mean h = if h.h_count = 0 then 0.0 else h.h_sum /. float_of_int h.h_count

(** Zero every registered statistic (registrations are kept). *)
let reset () =
  Hashtbl.iter
    (fun _ -> function
      | Counter c -> c.c_value <- 0
      | Histogram h ->
        h.h_count <- 0;
        h.h_sum <- 0.0;
        h.h_min <- infinity;
        h.h_max <- neg_infinity)
    registry

(** Look up a registered counter's value, for tests and light consumers. *)
let find_counter ~component name =
  match Hashtbl.find_opt registry (component, name) with
  | Some (Counter c) -> Some c
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

(** All entries, sorted by (component, name). *)
let snapshot () =
  Hashtbl.fold (fun _ e acc -> e :: acc) registry []
  |> List.sort (fun a b ->
         let key = function
           | Counter c -> (c.c_component, c.c_name)
           | Histogram h -> (h.h_component, h.h_name)
         in
         compare (key a) (key b))

let pp fmt () =
  let entries = snapshot () in
  let width f =
    List.fold_left (fun acc e -> max acc (String.length (f e))) 0 entries
  in
  let comp = function
    | Counter c -> c.c_component
    | Histogram h -> h.h_component
  in
  let name = function Counter c -> c.c_name | Histogram h -> h.h_name in
  let wc = max 9 (width comp) and wn = max 4 (width name) in
  Fmt.pf fmt "@[<v>%-*s  %-*s  %s@," wc "component" wn "name" "value";
  List.iter
    (fun e ->
      match e with
      | Counter c -> Fmt.pf fmt "%-*s  %-*s  %d@," wc c.c_component wn c.c_name c.c_value
      | Histogram h ->
        Fmt.pf fmt "%-*s  %-*s  n=%d sum=%g min=%g max=%g mean=%g@," wc
          h.h_component wn h.h_name h.h_count h.h_sum
          (if h.h_count = 0 then 0.0 else h.h_min)
          (if h.h_count = 0 then 0.0 else h.h_max)
          (mean h))
    entries;
  Fmt.pf fmt "@]"

let to_json () =
  Json.List
    (List.map
       (function
         | Counter c ->
           Json.Obj
             [
               ("component", Json.String c.c_component);
               ("name", Json.String c.c_name);
               ("kind", Json.String "counter");
               ("value", Json.Int c.c_value);
             ]
         | Histogram h ->
           Json.Obj
             [
               ("component", Json.String h.h_component);
               ("name", Json.String h.h_name);
               ("kind", Json.String "histogram");
               ("count", Json.Int h.h_count);
               ("sum", Json.Float h.h_sum);
               ("min", Json.Float (if h.h_count = 0 then 0.0 else h.h_min));
               ("max", Json.Float (if h.h_count = 0 then 0.0 else h.h_max));
               ("mean", Json.Float (mean h));
             ])
       (snapshot ()))
