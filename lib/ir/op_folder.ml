(** Folder-level constant uniquing — MLIR's [OperationFolder].

    When greedy folding materializes the result of a fold as a constant op,
    a naive driver builds a fresh op next to every folded user, so repeated
    folding litters the block with duplicate constants that CSE later has to
    clean up. The folder instead uniques materialized constants per
    [(block, value attribute, result type)] and hoists them to the start of
    the block, so every fold of the same value in the same block reuses one
    op that dominates all its users.

    The same table also uniques the constants that already exist in the
    input (MLIR's [insertKnownConstant]): when the greedy driver visits a
    constant-like op whose (block, value, type) is already known, the op is
    deduplicated into the first occurrence. *)

type key = int * Attr.t * Typ.t  (** block id, value attribute, result type *)

type entry = {
  cv : Ircore.value;
  hoisted : bool;
      (** built by {!materialize} at the start of the block, so it dominates
          every op of the block. Known constants recorded in place do not —
          they only dominate ops that come after them. *)
}

type t = {
  constants : (key, entry) Hashtbl.t;
  mutable materialized : int;  (** constants actually built *)
  mutable reused : int;  (** cache hits that avoided a duplicate op *)
}

let create () = { constants = Hashtbl.create 32; materialized = 0; reused = 0 }

let materialized t = t.materialized
let reused t = t.reused

(** Is the cached [v] still a valid uniqued constant for block [b]? The
    defining op may have been erased (dropping its parent) or moved to a
    different block by a later rewrite; both invalidate the cache entry. *)
let still_valid b v =
  match Ircore.defining_op v with
  | None -> false
  | Some def -> (
    match Ircore.op_parent def with
    | Some parent -> parent.Ircore.b_id = b.Ircore.b_id
    | None -> false)

(** Materialize attribute [attr] of type [typ] as a constant usable at
    [anchor], through the driver's [materialize] hook. Reuses the uniqued
    constant of [anchor]'s block when one exists; otherwise builds one at
    the start of the block and records it. Detached anchors fall back to
    un-uniqued materialization just before the anchor's position. *)
let materialize t rw materialize_fn ~anchor attr typ =
  (* constant materialization is its own action: skipping it makes the
     enclosing fold give up cleanly (a [None] result aborts the fold) *)
  let materialize_fn rw attr typ =
    match Action.active () with
    | None -> materialize_fn rw attr typ
    | Some a ->
      Action.run_on a ~tag:"fold.materialize" ~desc:anchor.Ircore.op_name
        ~loc:anchor.Ircore.op_loc ~root:anchor ~skipped:None (fun () ->
          materialize_fn rw attr typ)
  in
  match Ircore.op_parent anchor with
  | None ->
    Rewriter.set_ip rw (Builder.Before anchor);
    materialize_fn rw attr typ
  | Some block -> (
    let key = (block.Ircore.b_id, attr, typ) in
    match Hashtbl.find_opt t.constants key with
    (* only hoisted entries are safe to reuse from an arbitrary anchor: an
       in-place known constant may sit after the anchor in the block *)
    | Some e when e.hoisted && still_valid block e.cv ->
      t.reused <- t.reused + 1;
      Some e.cv
    | _ ->
      let saved = Builder.ip (Rewriter.builder rw) in
      Rewriter.set_ip rw (Builder.At_start block);
      let v = materialize_fn rw attr typ in
      Rewriter.set_ip rw saved;
      (match v with
      | Some v ->
        t.materialized <- t.materialized + 1;
        Hashtbl.replace t.constants key { cv = v; hoisted = true }
      | None -> Hashtbl.remove t.constants key);
      v)

(** Record the existing constant-like [op] (with value [attr] and a single
    result) in the uniquing table. Returns [Some canonical] when an
    equivalent constant is already known for the same block — the caller
    should replace [op]'s uses with it — and [None] when [op] itself became
    (or already was) the canonical constant. Within a straight-line block
    the first-recorded occurrence precedes any later duplicate, and hence
    its users, so redirecting them preserves dominance. *)
let insert_known_constant t (op : Ircore.op) attr =
  match (Ircore.op_parent op, op.Ircore.results) with
  | Some block, [| r |] -> (
    let key = (block.Ircore.b_id, attr, Ircore.value_typ r) in
    match Hashtbl.find_opt t.constants key with
    | Some e when still_valid block e.cv ->
      if e.cv == r then None
      else begin
        t.reused <- t.reused + 1;
        Some e.cv
      end
    | _ ->
      Hashtbl.replace t.constants key { cv = r; hoisted = false };
      None)
  | _ -> None
