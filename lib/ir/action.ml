(** Action framework: interceptable transformation units.

    Every transformation unit in the system — a pass run, a greedy pattern
    application or fold, a DCE erasure, a constant materialization, a
    transform-op dispatch (interpreted or compiled), a schedule compilation
    — is routed through this module before executing. Like {!Profiler} and
    {!Trace} the framework is ambient and domain-local: {!with_context}
    installs a context for a dynamic extent, and with no context installed
    every action site is a single domain-local read followed by a direct
    call (the cost is measured by [bench … action] into
    [BENCH_action.json]).

    A context always records a structured journal of the actions that
    flowed through it (rendered as JSONL via {!Json}, correlated with
    {!Profiler} timestamps and surfaced as [action/*] counters in
    {!Stats}), and optionally:

    - consults a stack of {!handler}s. Handlers can veto execution
      ({!counters_handler} implements MLIR DebugCounter semantics:
      [TAG:skip,count] skips the first [skip] actions of [TAG], executes
      the next [count], and skips the rest — the bisection primitive
      behind [otd_opt --debug-counter] and the fuzz shrinker) and can
      bracket execution ({!snapshot_handler} fingerprints the enclosing
      module's functions before/after each action and emits a line diff of
      the changed ones, behind [--print-ir-after-change] /
      [--snapshot-after-change]).
    - records per-op {e provenance}: which action created, modified,
      replaced or erased each op, fed by the ambient {!Rewriter} listener
      events, dumpable as JSON ([otd_opt --provenance]) and queryable
      ([otd_check --provenance]).

    Handlers observe (and steer) the globally ordered action stream, so
    when any handler is installed the pass manager declines to fan out
    across domains ({!sequential_only}). Journal and provenance recording
    are order-independent per task: the parallel pass manager gives each
    task a {!capture} child context and {!replay}s them in source order
    after the barrier, so journals and provenance dumps are deterministic
    at any [--jobs=N] — the same discipline diagnostics use.

    Interaction with transactional execution: when the transform
    interpreter rolls a payload back ([transform.alternatives],
    [sequence failures(suppress)]), the actions whose effects were undone
    are not deleted from the journal — they are re-marked {!Reverted} (see
    {!cursor} / {!revert_since}), so the journal tells the truth about
    both what ran and what survived. *)

type outcome = Executed | Skipped | Failed | Reverted

type entry = {
  mutable e_index : int;  (** global sequence number within the context *)
  e_tag : string;
  mutable e_tag_index : int;  (** sequence number among actions of this tag *)
  e_desc : string;  (** unit description, e.g. pattern or pass name *)
  e_loc : Loc.t;  (** location of the unit's root op *)
  mutable e_depth : int;
      (** action nesting depth at entry; re-based on {!replay} *)
  mutable e_outcome : outcome;
  mutable e_us : float;  (** wall-clock duration, microseconds *)
  e_ts : float;  (** ambient {!Profiler} timestamp at entry; -1 when none *)
}

(** What a handler is shown about a unit before it runs. *)
type info = {
  i_tag : string;
  i_desc : string;
  i_loc : Loc.t;
  i_root : Ircore.op;  (** the op the unit is anchored at *)
  i_index : int;
  i_tag_index : int;
}

type handler = {
  h_name : string;
  h_decide : info -> bool;  (** [false] vetoes execution (unit is skipped) *)
  h_enter : info -> unit;  (** before the unit runs (outermost first) *)
  h_exit : info -> ok:bool -> unit;
      (** after the unit ran; called even when it raised ([ok = false]) *)
}

type pkind = Created | Modified | Erased | Replaced

type pevent = {
  pe_action : entry option;  (** innermost action active at the event *)
  pe_kind : pkind;
}

type precord = {
  pr_op : string;
  pr_loc : Loc.t;
  mutable pr_events : pevent list;  (** newest first *)
}

type t = {
  mutable a_entries : entry list;  (** journal, newest first *)
  mutable a_next : int;
  a_tag_counts : (string, int ref) Hashtbl.t;
  mutable a_stack : entry list;  (** currently open actions, innermost first *)
  mutable a_handlers : handler list;  (** top of stack first *)
  a_prov : (int, precord) Hashtbl.t option;  (** op id → provenance *)
}

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let stat_executed = Stats.counter ~component:"action" "executed"
let stat_skipped = Stats.counter ~component:"action" "skipped"

let stat_failed =
  Stats.counter ~component:"action" "failed"
    ~desc:"actions whose unit raised (contained by the caller's barrier)"

let stat_reverted =
  Stats.counter ~component:"action" "reverted"
    ~desc:"executed actions undone by a checkpoint rollback"

(* per-tag [action/<tag>] counters, interned lazily on first use *)
let tag_counters : (string, Stats.counter) Hashtbl.t = Hashtbl.create 16
let tag_mu = Mutex.create ()

let tag_counter tag =
  Mutex.lock tag_mu;
  let c =
    match Hashtbl.find_opt tag_counters tag with
    | Some c -> c
    | None ->
      let c =
        Stats.counter ~component:"action" tag
          ~desc:(Printf.sprintf "transformation units tagged '%s'" tag)
      in
      Hashtbl.add tag_counters tag c;
      c
  in
  Mutex.unlock tag_mu;
  c

(* ------------------------------------------------------------------ *)
(* Context construction                                                *)
(* ------------------------------------------------------------------ *)

(** Debug-counter specification for one tag: skip the first [cs_skip]
    actions, execute the next [cs_count], skip the rest. *)
type counter_spec = { cs_tag : string; cs_skip : int; cs_count : int }

(** Parse a [--debug-counter] argument: [TAG:SKIP] (execute everything
    after the first [SKIP]) or [TAG:SKIP,COUNT]. *)
let parse_counter s : (counter_spec, string) result =
  let invalid () =
    Error
      (Printf.sprintf
         "invalid --debug-counter %S (expected TAG:SKIP or TAG:SKIP,COUNT)" s)
  in
  match String.index_opt s ':' with
  | None -> invalid ()
  | Some i -> (
    let tag = String.sub s 0 i in
    let rest = String.sub s (i + 1) (String.length s - i - 1) in
    let skip, count =
      match String.index_opt rest ',' with
      | None -> (int_of_string_opt rest, Some max_int)
      | Some j ->
        ( int_of_string_opt (String.sub rest 0 j),
          int_of_string_opt
            (String.sub rest (j + 1) (String.length rest - j - 1)) )
    in
    match (skip, count) with
    | Some sk, Some ct when tag <> "" && sk >= 0 && ct >= 0 ->
      Ok { cs_tag = tag; cs_skip = sk; cs_count = ct }
    | _ -> invalid ())

(** The DebugCounter handler: for tags with a spec, only tag occurrences
    [skip .. skip+count-1] execute; every other occurrence is skipped.
    Tags without a spec always execute. *)
let counters_handler specs =
  let tbl = Hashtbl.create 8 in
  List.iter (fun cs -> Hashtbl.replace tbl cs.cs_tag cs) specs;
  {
    h_name = "debug-counter";
    h_decide =
      (fun info ->
        match Hashtbl.find_opt tbl info.i_tag with
        | None -> true
        | Some cs ->
          info.i_tag_index >= cs.cs_skip
          && info.i_tag_index - cs.cs_skip < cs.cs_count);
    h_enter = ignore;
    h_exit = (fun _ ~ok:_ -> ());
  }

type snapshot_mode =
  | Snap_print of Format.formatter  (** diff of changed functions *)
  | Snap_dir of string  (** one .mlir snapshot file per changing action *)

type snapshot_config = {
  sn_tags : string list;  (** action tags to snapshot around *)
  sn_mode : snapshot_mode;
}

let default_snapshot_tags = [ "pass"; "transform" ]

let rec top_op op =
  match Ircore.parent_op op with Some p -> top_op p | None -> op

let unit_key op =
  match Symbol.symbol_name op with
  | Some s -> "@" ^ s
  | None -> op.Ircore.op_name

(* the units we diff independently: the named top-level ops of the
   enclosing module (so only the changed function is shown), or the top op
   itself when it has none *)
let snapshot_units top =
  let named =
    match top.Ircore.regions with
    | r :: _ ->
      List.concat_map Ircore.block_ops (Ircore.region_blocks r)
      |> List.filter (fun o -> Symbol.symbol_name o <> None)
    | [] -> []
  in
  if named = [] then [ top ] else named

let sanitize s =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> c
      | _ -> '-')
    s

(** The IR-change snapshot handler: around each action whose tag is in
    [sn_tags], fingerprint every snapshot unit of the enclosing module;
    when an action actually changed one ({!Fingerprint} inequality), emit
    either a line diff of the changed units ([Snap_print]) or a snapshot
    file under the directory ([Snap_dir]). Actions that change nothing
    emit nothing. *)
let snapshot_handler cfg =
  let stack = ref [] in
  let matches info = List.mem info.i_tag cfg.sn_tags in
  let capture root =
    let top = top_op root in
    ( top,
      List.map
        (fun u -> (unit_key u, Fingerprint.op u, Printer.op_to_string u))
        (snapshot_units top) )
  in
  let emit info before after =
    let changed_or_new =
      List.filter
        (fun (k, fp, _) ->
          match List.find_opt (fun (k0, _, _) -> String.equal k0 k) before with
          | Some (_, fp0, _) -> not (Fingerprint.equal fp fp0)
          | None -> true)
        after
    in
    let removed =
      List.filter
        (fun (k, _, _) ->
          not (List.exists (fun (k0, _, _) -> String.equal k0 k) after))
        before
    in
    if changed_or_new <> [] || removed <> [] then begin
      let label =
        if info.i_desc = "" then info.i_tag
        else Printf.sprintf "%s '%s'" info.i_tag info.i_desc
      in
      match cfg.sn_mode with
      | Snap_print ppf ->
        List.iter
          (fun (k, _, text) ->
            Format.fprintf ppf
              "// -----// IR dump after action #%d %s (%s) //----- //@\n"
              info.i_index label k;
            let body =
              match
                List.find_opt (fun (k0, _, _) -> String.equal k0 k) before
              with
              | Some (_, _, text0) -> (
                match Diffp.diff text0 text with
                | Some d -> d
                (* fingerprints differed but the printed text did not
                   (e.g. a location-only change): show the full unit *)
                | None -> text ^ "\n")
              | None -> text ^ "\n"
            in
            Format.fprintf ppf "%s" body)
          changed_or_new;
        List.iter
          (fun (k, _, _) ->
            Format.fprintf ppf
              "// -----// IR dump after action #%d %s (%s erased) //----- //@\n"
              info.i_index label k)
          removed;
        Format.pp_print_flush ppf ()
      | Snap_dir dir ->
        (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
        let path =
          Filename.concat dir
            (Printf.sprintf "act-%06d-%s.mlir" info.i_index
               (sanitize
                  (if info.i_desc = "" then info.i_tag
                   else info.i_tag ^ "-" ^ info.i_desc)))
        in
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () ->
            Printf.fprintf oc "// IR snapshot after action #%d %s\n"
              info.i_index label;
            List.iter
              (fun (k, _, text) ->
                Printf.fprintf oc "// changed: %s\n%s\n" k text)
              changed_or_new;
            List.iter
              (fun (k, _, _) -> Printf.fprintf oc "// erased: %s\n" k)
              removed)
    end
  in
  {
    h_name = "snapshot";
    h_decide = (fun _ -> true);
    h_enter =
      (fun info -> if matches info then stack := capture info.i_root :: !stack);
    h_exit =
      (fun info ~ok ->
        if matches info then
          match !stack with
          | [] -> ()
          | (top, before) :: rest ->
            stack := rest;
            if ok then begin
              let after =
                List.map
                  (fun u ->
                    (unit_key u, Fingerprint.op u, Printer.op_to_string u))
                  (snapshot_units top)
              in
              emit info before after
            end);
  }

let create ?(counters = []) ?snapshot ?(provenance = false) () =
  let handlers =
    (match snapshot with Some cfg -> [ snapshot_handler cfg ] | None -> [])
    @ (if counters = [] then [] else [ counters_handler counters ])
  in
  {
    a_entries = [];
    a_next = 0;
    a_tag_counts = Hashtbl.create 8;
    a_stack = [];
    a_handlers = handlers;
    a_prov = (if provenance then Some (Hashtbl.create 64) else None);
  }

(** Push a custom handler on top of [t]'s stack (consulted first). *)
let push_handler t h = t.a_handlers <- h :: t.a_handlers

(** Pop the most recently pushed handler. *)
let pop_handler t =
  match t.a_handlers with [] -> () | _ :: rest -> t.a_handlers <- rest

(* ------------------------------------------------------------------ *)
(* Ambient context (domain-local)                                      *)
(* ------------------------------------------------------------------ *)

let current : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

(** This domain's ambient context, if any. *)
let active () = Domain.DLS.get current

let enabled () = Domain.DLS.get current <> None

(** Handlers steer a globally ordered action stream: when any is
    installed the pass manager must not fan out across domains. Journal
    and provenance recording parallelise through {!capture}/{!replay}. *)
let sequential_only () =
  match Domain.DLS.get current with
  | None -> false
  | Some t -> t.a_handlers <> []

(* provenance listener: attributes rewriter events to the innermost open
   action of [t] (or to no action, for mutations outside any unit) *)
let prov_listener t tbl =
  let record kind (op : Ircore.op) =
    let pr =
      match Hashtbl.find_opt tbl op.Ircore.op_id with
      | Some pr -> pr
      | None ->
        let pr =
          { pr_op = op.Ircore.op_name; pr_loc = op.Ircore.op_loc;
            pr_events = [] }
        in
        Hashtbl.add tbl op.Ircore.op_id pr;
        pr
    in
    pr.pr_events <-
      {
        pe_action = (match t.a_stack with e :: _ -> Some e | [] -> None);
        pe_kind = kind;
      }
      :: pr.pr_events
  in
  {
    Rewriter.on_inserted = record Created;
    on_replaced = (fun op _ -> record Replaced op);
    on_erased = record Erased;
    on_modified = record Modified;
  }

(** Install [t] as this domain's ambient action context while [f] runs.
    When [t] records provenance, an ambient rewriter listener is installed
    for the same extent. *)
let with_context t f =
  let saved = Domain.DLS.get current in
  Domain.DLS.set current (Some t);
  Fun.protect
    ~finally:(fun () -> Domain.DLS.set current saved)
    (fun () ->
      match t.a_prov with
      | None -> f ()
      | Some tbl -> Rewriter.with_listener (prov_listener t tbl) f)

(** Run [f] with no ambient context (benchmarks measure the disabled path
    under an outer context this way). *)
let with_disabled f =
  let saved = Domain.DLS.get current in
  Domain.DLS.set current None;
  Fun.protect ~finally:(fun () -> Domain.DLS.set current saved) f

(* ------------------------------------------------------------------ *)
(* Routing units                                                       *)
(* ------------------------------------------------------------------ *)

let next_tag_index t tag =
  match Hashtbl.find_opt t.a_tag_counts tag with
  | Some r ->
    let i = !r in
    r := i + 1;
    i
  | None ->
    Hashtbl.add t.a_tag_counts tag (ref 1);
    0

(** Route one unit through context [t]. Prefer {!run} at instrumentation
    sites; hot paths that want a zero-allocation disabled branch match on
    {!active} themselves and call this on the context. *)
let run_on t ~tag ~desc ~loc ~root ~skipped f =
  let index = t.a_next in
  t.a_next <- index + 1;
  let tag_index = next_tag_index t tag in
  let info =
    { i_tag = tag; i_desc = desc; i_loc = loc; i_root = root;
      i_index = index; i_tag_index = tag_index }
  in
  let execute = List.for_all (fun h -> h.h_decide info) t.a_handlers in
  let e =
    {
      e_index = index;
      e_tag = tag;
      e_tag_index = tag_index;
      e_desc = desc;
      e_loc = loc;
      e_depth = List.length t.a_stack;
      e_outcome = Skipped;
      e_us = 0.;
      e_ts = (match Profiler.timestamp () with Some ts -> ts | None -> -1.);
    }
  in
  t.a_entries <- e :: t.a_entries;
  Stats.incr (tag_counter tag);
  if not execute then begin
    Stats.incr stat_skipped;
    skipped
  end
  else begin
    Stats.incr stat_executed;
    List.iter (fun h -> h.h_enter info) (List.rev t.a_handlers);
    t.a_stack <- e :: t.a_stack;
    let t0 = Unix.gettimeofday () in
    let finish ok =
      (match t.a_stack with _ :: rest -> t.a_stack <- rest | [] -> ());
      e.e_us <- (Unix.gettimeofday () -. t0) *. 1e6;
      e.e_outcome <- (if ok then Executed else Failed);
      if not ok then Stats.incr stat_failed;
      List.iter (fun h -> h.h_exit info ~ok) t.a_handlers
    in
    match f () with
    | v ->
      finish true;
      v
    | exception exn ->
      let bt = Printexc.get_raw_backtrace () in
      finish false;
      Printexc.raise_with_backtrace exn bt
  end

(** [run ~tag ~desc ~loc ~root ~skipped f] routes the unit [f] through the
    ambient context: with none installed this is exactly [f ()] after one
    domain-local read; otherwise the context journals the unit, handlers
    may veto it (in which case [skipped] is returned without running [f]),
    and snapshot/provenance machinery brackets it. *)
let run ~tag ~desc ~loc ~root ~skipped f =
  match Domain.DLS.get current with
  | None -> f ()
  | Some t -> run_on t ~tag ~desc ~loc ~root ~skipped f

(* ------------------------------------------------------------------ *)
(* Checkpoint-rollback interaction                                     *)
(* ------------------------------------------------------------------ *)

(** Journal position for {!revert_since} — take one before establishing a
    payload checkpoint. *)
let cursor () =
  match Domain.DLS.get current with None -> 0 | Some t -> t.a_next

(** Mark every action journaled at or after [c] as {!Reverted}: its unit
    executed, but a checkpoint rollback undid its effects. *)
let revert_since c =
  match Domain.DLS.get current with
  | None -> ()
  | Some t ->
    let rec go = function
      | e :: rest when e.e_index >= c ->
        if e.e_outcome = Executed then begin
          e.e_outcome <- Reverted;
          Stats.incr stat_reverted
        end;
        go rest
      | _ -> ()
    in
    (* newest first: entries before the cursor terminate the scan *)
    go t.a_entries

(* ------------------------------------------------------------------ *)
(* Parallel capture / replay                                           *)
(* ------------------------------------------------------------------ *)

(** A per-task child context for the parallel pass manager: workers record
    into their own capture and the parent {!replay}s them in source order,
    so journals and provenance are deterministic at any job count. *)
type capture = t

let capture parent : capture =
  {
    a_entries = [];
    a_next = 0;
    a_tag_counts = Hashtbl.create 8;
    a_stack = [];
    (* captures only exist when no ordering-sensitive handler is
       installed (see sequential_only) *)
    a_handlers = [];
    a_prov =
      (match parent.a_prov with
      | Some _ -> Some (Hashtbl.create 32)
      | None -> None);
  }

(** Install capture [c] as the worker's ambient context while [f] runs. *)
let with_capture (c : capture) f = with_context c f

(** Merge [c]'s journal and provenance into [parent], re-assigning global
    and per-tag indices in arrival order. Call once per task, in source
    order, after the parallel barrier. *)
let replay parent (c : capture) =
  (* captured entries ran with an empty stack; re-base their depth under
     whatever the parent has open (the enclosing pass action), so replayed
     journals match what a sequential run would have recorded *)
  let base = List.length parent.a_stack in
  List.iter
    (fun e ->
      e.e_index <- parent.a_next;
      parent.a_next <- parent.a_next + 1;
      e.e_tag_index <- next_tag_index parent e.e_tag;
      e.e_depth <- e.e_depth + base;
      parent.a_entries <- e :: parent.a_entries)
    (List.rev c.a_entries);
  match (parent.a_prov, c.a_prov) with
  | Some ptbl, Some ctbl ->
    Hashtbl.iter
      (fun id pr ->
        match Hashtbl.find_opt ptbl id with
        | None -> Hashtbl.add ptbl id pr
        | Some existing ->
          (* both newest-first: task events happened after any the parent
             already holds for this op *)
          existing.pr_events <- pr.pr_events @ existing.pr_events)
      ctbl
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Journal access and rendering                                        *)
(* ------------------------------------------------------------------ *)

(** Journaled actions, oldest first. *)
let entries t = List.rev t.a_entries

(** Total occurrences of [tag] routed through [t] (executed or not). *)
let tag_total t tag =
  match Hashtbl.find_opt t.a_tag_counts tag with Some r -> !r | None -> 0

let outcome_to_string = function
  | Executed -> "executed"
  | Skipped -> "skipped"
  | Failed -> "failed"
  | Reverted -> "reverted"

(** One journal entry as JSON. [timing:false] drops wall-clock fields, for
    determinism-sensitive comparisons. *)
let entry_to_json ?(timing = true) e =
  Json.Obj
    ([
       ("index", Json.Int e.e_index);
       ("tag", Json.String e.e_tag);
       ("tag_index", Json.Int e.e_tag_index);
     ]
    @ (if e.e_desc = "" then [] else [ ("desc", Json.String e.e_desc) ])
    @ (match e.e_loc with
      | Loc.Unknown -> []
      | l -> [ ("loc", Json.String (Loc.to_string l)) ])
    @ [
        ("depth", Json.Int e.e_depth);
        ("outcome", Json.String (outcome_to_string e.e_outcome));
      ]
    @ (if timing && e.e_outcome <> Skipped then
         [ ("us", Json.Float e.e_us) ]
       else [])
    @
    if timing && e.e_ts >= 0. then [ ("ts", Json.Float e.e_ts) ] else [])

(** Write the journal as JSONL (one action per line, oldest first). *)
let write_journal t ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun e ->
          output_string oc (Json.to_line (entry_to_json e));
          output_char oc '\n')
        (entries t))

(* ------------------------------------------------------------------ *)
(* Provenance                                                          *)
(* ------------------------------------------------------------------ *)

let pkind_to_string = function
  | Created -> "created"
  | Modified -> "modified"
  | Erased -> "erased"
  | Replaced -> "replaced"

let pevent_to_json pe =
  Json.Obj
    (("kind", Json.String (pkind_to_string pe.pe_kind))
    ::
    (match pe.pe_action with
    | None -> []
    | Some e ->
      [
        ("action", Json.Int e.e_index);
        ("tag", Json.String e.e_tag);
        ("desc", Json.String e.e_desc);
        ("outcome", Json.String (outcome_to_string e.e_outcome));
      ]))

let has_provenance t = t.a_prov <> None

(** The provenance of every op reachable from [root], plus the record of
    ops that no longer exist there ([erased]). Every live op resolves: ops
    untouched since parsing report [origin = "input"] with an empty chain;
    ops a rewriter created report [origin = "rewrite"] and the action
    chain that produced them. *)
let provenance_to_json t ~root =
  let tbl =
    match t.a_prov with Some tbl -> tbl | None -> Hashtbl.create 1
  in
  let seen = Hashtbl.create 256 in
  let ops = ref [] in
  let rec collect enclosing (op : Ircore.op) =
    let enclosing =
      match Symbol.symbol_name op with
      | Some s -> Some ("@" ^ s)
      | None -> enclosing
    in
    let chain, created =
      match Hashtbl.find_opt tbl op.Ircore.op_id with
      | None -> ([], false)
      | Some pr ->
        let evs = List.rev pr.pr_events in
        ( List.map pevent_to_json evs,
          List.exists (fun pe -> pe.pe_kind = Created) evs )
    in
    Hashtbl.replace seen op.Ircore.op_id ();
    ops :=
      Json.Obj
        ([ ("op", Json.String op.Ircore.op_name) ]
        @ (match op.Ircore.op_loc with
          | Loc.Unknown -> []
          | l -> [ ("loc", Json.String (Loc.to_string l)) ])
        @ (match enclosing with
          | Some f -> [ ("func", Json.String f) ]
          | None -> [])
        @ [
            ("origin", Json.String (if created then "rewrite" else "input"));
            ("chain", Json.List chain);
          ])
      :: !ops;
    List.iter
      (fun r ->
        List.iter
          (fun b -> List.iter (collect enclosing) (Ircore.block_ops b))
          (Ircore.region_blocks r))
      op.Ircore.regions
  in
  collect None root;
  let erased = ref [] in
  Hashtbl.iter
    (fun id pr ->
      if not (Hashtbl.mem seen id) then
        erased :=
          Json.Obj
            ([ ("op", Json.String pr.pr_op) ]
            @ (match pr.pr_loc with
              | Loc.Unknown -> []
              | l -> [ ("loc", Json.String (Loc.to_string l)) ])
            @ [
                ( "chain",
                  Json.List (List.rev_map pevent_to_json pr.pr_events) );
              ])
          :: !erased)
    tbl;
  (* Hashtbl iteration order is unspecified: sort the erased section by its
     rendered text so dumps are deterministic at any job count *)
  let erased =
    List.sort
      (fun a b -> String.compare (Json.to_string a) (Json.to_string b))
      !erased
  in
  Json.Obj
    [
      ("ops", Json.List (List.rev !ops));
      ("erased", Json.List erased);
      ("actions", Json.Int t.a_next);
    ]

(** Write the provenance dump for the payload rooted at [root]. *)
let write_provenance t ~root ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string (provenance_to_json t ~root));
      output_char oc '\n')
