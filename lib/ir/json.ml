(** A minimal JSON representation used by the diagnostics/trace renderers.

    Deliberately dependency-free: the observability layer must be available
    in every build configuration, so this module provides just enough JSON —
    a value type, a serializer and a strict parser (used by the end-to-end
    tests to validate the machine-readable output of [otd-opt]). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec pp fmt = function
  | Null -> Fmt.string fmt "null"
  | Bool b -> Fmt.bool fmt b
  | Int n -> Fmt.int fmt n
  | Float f ->
    if Float.is_integer f && Float.abs f < 1e15 then Fmt.pf fmt "%.1f" f
    else Fmt.pf fmt "%.17g" f
  | String s -> Fmt.pf fmt "\"%s\"" (escape_string s)
  | List xs ->
    Fmt.pf fmt "[@[<hv>%a@]]" (Fmt.list ~sep:(Fmt.any ",@ ") pp) xs
  | Obj kvs ->
    let member fmt (k, v) =
      Fmt.pf fmt "\"%s\":@ %a" (escape_string k) pp v
    in
    Fmt.pf fmt "{@[<hv>%a@]}" (Fmt.list ~sep:(Fmt.any ",@ ") member) kvs

let to_string j = Fmt.str "%a" pp j

(** Compact single-line rendering — for JSONL outputs (one value per
    line), where the pretty-printer's line breaks would corrupt framing. *)
let to_line j =
  let buf = Buffer.create 128 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | Int n -> Buffer.add_string buf (string_of_int n)
    | Float f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string buf (Printf.sprintf "%.1f" f)
      else Buffer.add_string buf (Printf.sprintf "%.17g" f)
    | String s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape_string s);
      Buffer.add_char buf '"'
    | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          go x)
        xs;
      Buffer.add_char buf ']'
    | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape_string k);
          Buffer.add_string buf "\":";
          go v)
        kvs;
      Buffer.add_char buf '}'
  in
  go j;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string * int

let parse (src : string) : (t, string) result =
  let n = String.length src in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (msg, !pos)) in
  let peek () = if !pos < n then Some src.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    let m = String.length word in
    if !pos + m <= n && String.sub src !pos m = word then begin
      pos := !pos + m;
      value
    end
    else fail (Printf.sprintf "expected '%s'" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match src.[!pos] with
        | '"' -> advance ()
        | '\\' ->
          advance ();
          (if !pos >= n then fail "unterminated escape"
           else
             match src.[!pos] with
             | '"' -> Buffer.add_char buf '"'
             | '\\' -> Buffer.add_char buf '\\'
             | '/' -> Buffer.add_char buf '/'
             | 'b' -> Buffer.add_char buf '\b'
             | 'f' -> Buffer.add_char buf '\012'
             | 'n' -> Buffer.add_char buf '\n'
             | 'r' -> Buffer.add_char buf '\r'
             | 't' -> Buffer.add_char buf '\t'
             | 'u' ->
               if !pos + 4 >= n then fail "truncated \\u escape";
               let hex = String.sub src (!pos + 1) 4 in
               (match int_of_string_opt ("0x" ^ hex) with
               | None -> fail "invalid \\u escape"
               | Some cp ->
                 (* encode the code point as UTF-8 *)
                 if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
                 else if cp < 0x800 then begin
                   Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
                   Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
                 end
                 else begin
                   Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
                   Buffer.add_char buf
                     (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
                   Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
                 end);
               pos := !pos + 4
             | c -> fail (Printf.sprintf "invalid escape '\\%c'" c));
          advance ();
          go ()
        | c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    let text = String.sub src start (!pos - start) in
    match int_of_string_opt text with
    | Some v -> Int v
    | None -> (
      match float_of_string_opt text with
      | Some v -> Float v
      | None -> fail "invalid number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((k, v) :: acc)
          | Some '}' ->
            advance ();
            Obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        members []
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements (v :: acc)
          | Some ']' ->
            advance ();
            List (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        elements []
      end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing characters after JSON value";
    v
  with
  | v -> Ok v
  | exception Parse_error (msg, at) ->
    Error (Printf.sprintf "JSON parse error at offset %d: %s" at msg)

(* ------------------------------------------------------------------ *)
(* Accessors (for tests and light consumers)                           *)
(* ------------------------------------------------------------------ *)

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

let to_list = function List xs -> Some xs | _ -> None
let to_string_opt = function String s -> Some s | _ -> None
let to_int_opt = function Int n -> Some n | _ -> None
let to_bool_opt = function Bool b -> Some b | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int n -> Some (float_of_int n)
  | _ -> None

(** [member] chained through an optional value — for nested lookups like
    [obj |> get "error" |> get "class"]. *)
let get key = function None -> None | Some j -> member key j
