(** Structural line diffs for IR snapshots.

    The action framework's IR-change snapshots ({!Action}) show what a
    transformation unit did to the payload. Dumping whole modules after
    every action is unreadable; this module renders a compact line diff of
    the printed IR so only changed lines (plus a little context) appear.

    The algorithm is a classic longest-common-subsequence diff over lines,
    after trimming the common prefix and suffix. The LCS table is
    quadratic, so inputs whose trimmed middles would exceed a cell budget
    fall back to a plain delete-all/insert-all rendering — snapshots diff
    one function at a time, so the fallback is rare. *)

type edit = Keep of string | Del of string | Add of string

let split_lines s =
  (* a trailing newline does not introduce a phantom empty last line *)
  let s =
    let n = String.length s in
    if n > 0 && s.[n - 1] = '\n' then String.sub s 0 (n - 1) else s
  in
  Array.of_list (String.split_on_char '\n' s)

(* cap on LCS table cells: 4M cells ≈ 2000x2000 lines, far beyond any
   single printed function we snapshot *)
let max_cells = 4_000_000

(** LCS edit script between two line arrays, or [None] when the table
    would exceed the cell budget. *)
let lcs_edits (a : string array) (b : string array) : edit list option =
  let la = Array.length a and lb = Array.length b in
  if (la + 1) * (lb + 1) > max_cells then None
  else begin
    (* lcs.(i).(j) = LCS length of a[i..] and b[j..] *)
    let lcs = Array.make_matrix (la + 1) (lb + 1) 0 in
    for i = la - 1 downto 0 do
      for j = lb - 1 downto 0 do
        lcs.(i).(j) <-
          (if String.equal a.(i) b.(j) then 1 + lcs.(i + 1).(j + 1)
           else max lcs.(i + 1).(j) lcs.(i).(j + 1))
      done
    done;
    let rec walk i j acc =
      if i < la && j < lb && String.equal a.(i) b.(j) then
        walk (i + 1) (j + 1) (Keep a.(i) :: acc)
      else if j < lb && (i = la || lcs.(i).(j + 1) >= lcs.(i + 1).(j)) then
        walk i (j + 1) (Add b.(j) :: acc)
      else if i < la then walk (i + 1) j (Del a.(i) :: acc)
      else List.rev acc
    in
    Some (walk 0 0 [])
  end

(* collapse runs of unchanged lines: keep [context] lines on each side of
   a change, eliding the rest as a "..." marker *)
let render ~context edits =
  let buf = Buffer.create 256 in
  let arr = Array.of_list edits in
  let n = Array.length arr in
  (* a Keep line is visible when within [context] lines of a change *)
  let visible = Array.make n false in
  Array.iteri
    (fun i e ->
      match e with
      | Keep _ -> ()
      | Del _ | Add _ ->
        for j = max 0 (i - context) to min (n - 1) (i + context) do
          visible.(j) <- true
        done)
    arr;
  let eliding = ref false in
  Array.iteri
    (fun i e ->
      if visible.(i) then begin
        eliding := false;
        match e with
        | Keep l -> Buffer.add_string buf ("  " ^ l ^ "\n")
        | Del l -> Buffer.add_string buf ("- " ^ l ^ "\n")
        | Add l -> Buffer.add_string buf ("+ " ^ l ^ "\n")
      end
      else if not !eliding then begin
        eliding := true;
        Buffer.add_string buf "  ...\n"
      end)
    arr;
  Buffer.contents buf

(** [diff before after] renders a line diff between the two printed IR
    texts: [None] when they are line-identical, otherwise a unified-style
    rendering with ["- "]/["+ "] markers, [context] unchanged lines around
    each change and ["..."] elisions between distant changes. Oversized
    inputs degrade to a full delete/insert rendering rather than failing. *)
let diff ?(context = 2) before after : string option =
  if String.equal before after then None
  else begin
    let a = split_lines before and b = split_lines after in
    (* trim the common prefix and suffix: the quadratic LCS then only sees
       the changed middle *)
    let la = Array.length a and lb = Array.length b in
    let p = ref 0 in
    while !p < la && !p < lb && String.equal a.(!p) b.(!p) do
      incr p
    done;
    let s = ref 0 in
    while
      !s < la - !p
      && !s < lb - !p
      && String.equal a.(la - 1 - !s) b.(lb - 1 - !s)
    do
      incr s
    done;
    let mid_a = Array.sub a !p (la - !p - !s) in
    let mid_b = Array.sub b !p (lb - !p - !s) in
    let mid_edits =
      match lcs_edits mid_a mid_b with
      | Some es -> es
      | None ->
        (* over budget: plain replacement of the whole middle *)
        Array.to_list (Array.map (fun l -> Del l) mid_a)
        @ Array.to_list (Array.map (fun l -> Add l) mid_b)
    in
    let edits =
      Array.to_list (Array.map (fun l -> Keep l) (Array.sub a 0 !p))
      @ mid_edits
      @ Array.to_list
          (Array.map (fun l -> Keep l) (Array.sub a (la - !s) !s))
    in
    Some (render ~context edits)
  end
