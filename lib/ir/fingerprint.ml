(** Structural fingerprints of IR: a fast FNV-style hash over an op's name,
    attributes, types, region structure and internal SSA wiring.

    The fingerprint is {e structural}: two ops that print identically hash
    identically, independent of op/value identities, creation order or
    source locations. Values are numbered locally in traversal order
    (block arguments when their block is entered, results when their op is
    visited, free references on first encounter), so the hash is stable
    across parse → print → parse roundtrips — the property the
    content-addressed schedule cache in {!Transform.Schedule} relies on.
    It is equally usable for CSE-style structural equivalence classes or
    an [otd_server]-style result cache.

    This is a hash, not a proof of equality: distinct structures can in
    principle collide (63-bit space), so callers caching by fingerprint
    trade a vanishingly small collision probability for O(size) keying. *)

(* FNV-1a over the native int width; OCaml ints wrap silently, which is
   exactly what an avalanche-by-multiplication hash wants *)
let fnv_prime = 0x100000001b3
let fnv_offset = 0x3f29ce484222325

type t = int

let to_hex (fp : t) = Fmt.str "%016x" (fp land max_int)

(** Order-dependent combination of two fingerprints. *)
let combine (a : t) (b : t) : t = (a lxor (b + 0x9e3779b9 + (a lsl 6))) * fnv_prime

type ctx = {
  mutable h : int;
  values : (int, int) Hashtbl.t;  (** value id -> local number *)
  blocks : (int, int) Hashtbl.t;  (** block id -> local number *)
  mutable next_value : int;
  mutable next_block : int;
  typ_memo : (Typ.t, int) Hashtbl.t;
}

let mix c k = c.h <- (c.h lxor k) * fnv_prime

let mix_string c s =
  for i = 0 to String.length s - 1 do
    mix c (Char.code (String.unsafe_get s i))
  done;
  (* length separator: "ab"+"c" must differ from "a"+"bc" *)
  mix c (String.length s lxor 0x5f)

(* numbering is first-encounter order: defs are visited before uses in
   well-formed IR, and even forward/free references number deterministically
   because the traversal order itself is deterministic *)
let value_num c (v : Ircore.value) =
  match Hashtbl.find_opt c.values v.Ircore.v_id with
  | Some n -> n
  | None ->
    let n = c.next_value in
    c.next_value <- n + 1;
    Hashtbl.replace c.values v.Ircore.v_id n;
    n

let block_num c (b : Ircore.block) =
  match Hashtbl.find_opt c.blocks b.Ircore.b_id with
  | Some n -> n
  | None ->
    let n = c.next_block in
    c.next_block <- n + 1;
    Hashtbl.replace c.blocks b.Ircore.b_id n;
    n

(* types recur rarely and repeat often; hash each distinct type once via its
   canonical rendering and memoize by structure *)
let mix_typ c t =
  let k =
    match Hashtbl.find_opt c.typ_memo t with
    | Some k -> k
    | None ->
      let sub =
        { c with h = fnv_offset; typ_memo = Hashtbl.create 1 }
      in
      mix_string sub (Fmt.str "%a" Typ.pp t);
      Hashtbl.replace c.typ_memo t sub.h;
      sub.h
  in
  mix c k

let rec mix_attr c (a : Attr.t) =
  match a with
  | Attr.Unit -> mix c 1
  | Attr.Bool b -> mix c (if b then 2 else 3)
  | Attr.Int (v, t) ->
    mix c 4;
    mix c v;
    mix_typ c t
  | Attr.Float (v, t) ->
    mix c 5;
    mix c (Int64.to_int (Int64.bits_of_float v));
    mix_typ c t
  | Attr.String s ->
    mix c 6;
    mix_string c s
  | Attr.Type t ->
    mix c 7;
    mix_typ c t
  | Attr.Array xs ->
    mix c 8;
    List.iter (mix_attr c) xs;
    mix c (List.length xs)
  | Attr.Int_array xs ->
    mix c 9;
    List.iter (mix c) xs;
    mix c (List.length xs)
  | Attr.Dense_int (xs, t) ->
    mix c 10;
    List.iter (mix c) xs;
    mix c (List.length xs);
    mix_typ c t
  | Attr.Dense_float (xs, t) ->
    mix c 11;
    List.iter (fun f -> mix c (Int64.to_int (Int64.bits_of_float f))) xs;
    mix c (List.length xs);
    mix_typ c t
  | Attr.Dict kvs ->
    mix c 12;
    List.iter
      (fun (k, v) ->
        mix_string c k;
        mix_attr c v)
      kvs
  | Attr.Symbol_ref (root, nested) ->
    mix c 13;
    mix_string c root;
    List.iter (mix_string c) nested
  | Attr.Affine_map m ->
    mix c 14;
    mix_string c (Fmt.str "%a" Affine.pp_map m)

let rec mix_op c (op : Ircore.op) =
  mix c 0x0b;
  mix_string c op.Ircore.op_name;
  Array.iter (fun v -> mix c (value_num c v)) op.Ircore.operands;
  mix c (Array.length op.Ircore.operands);
  Array.iter
    (fun (v : Ircore.value) ->
      mix_typ c v.Ircore.v_typ;
      ignore (value_num c v))
    op.Ircore.results;
  mix c (Array.length op.Ircore.results);
  List.iter
    (fun (k, v) ->
      mix_string c k;
      mix_attr c v)
    op.Ircore.attrs;
  Array.iter (fun b -> mix c (block_num c b)) op.Ircore.successors;
  List.iter (mix_region c) op.Ircore.regions;
  mix c (List.length op.Ircore.regions)

and mix_region c r =
  mix c 0x17;
  List.iter (mix_block c) (Ircore.region_blocks r)

and mix_block c b =
  mix c 0x1d;
  ignore (block_num c b);
  List.iter
    (fun (v : Ircore.value) ->
      mix_typ c v.Ircore.v_typ;
      ignore (value_num c v))
    (Ircore.block_args b);
  List.iter (mix_op c) (Ircore.block_ops b)

(** Structural fingerprint of [op] and everything nested under it. *)
let op (root : Ircore.op) : t =
  let c =
    {
      h = fnv_offset;
      values = Hashtbl.create 64;
      blocks = Hashtbl.create 8;
      next_value = 0;
      next_block = 0;
      typ_memo = Hashtbl.create 16;
    }
  in
  mix_op c root;
  c.h

(** Fingerprint of an attribute alone (e.g. a configuration dictionary). *)
let attr (a : Attr.t) : t =
  let c =
    {
      h = fnv_offset;
      values = Hashtbl.create 1;
      blocks = Hashtbl.create 1;
      next_value = 0;
      next_block = 0;
      typ_memo = Hashtbl.create 4;
    }
  in
  mix_attr c a;
  c.h

(** Fingerprint of a bare string (e.g. a pass-pipeline spec or request
    text) in the same FNV-1a space, so it composes with {!combine}. *)
let string (s : string) : t =
  let h = ref fnv_offset in
  for i = 0 to String.length s - 1 do
    h := (!h lxor Char.code (String.unsafe_get s i)) * fnv_prime
  done;
  (!h lxor (String.length s lxor 0x5f)) * fnv_prime

let equal (a : t) (b : t) = a = b
