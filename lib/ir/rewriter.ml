(** The rewriter: IR mutation entry point used by patterns, passes and the
    transform interpreter. All structural changes are funneled through it so
    that registered listeners observe op insertion, replacement and erasure —
    the mechanism the Transform dialect uses to keep handles up to date
    (Section 3.1 of the paper). *)

type listener = {
  on_inserted : Ircore.op -> unit;  (** op freshly created and inserted *)
  on_replaced : Ircore.op -> Ircore.value list -> unit;
      (** op about to be erased, with its result replacements *)
  on_erased : Ircore.op -> unit;  (** op about to be erased, no replacement *)
  on_modified : Ircore.op -> unit;
      (** op mutated in place ({!modify_in_place}); op stays live *)
}

let null_listener =
  {
    on_inserted = ignore;
    on_replaced = (fun _ _ -> ());
    on_erased = ignore;
    on_modified = ignore;
  }

type t = { builder : Builder.t; mutable listeners : listener list }

let create ?(ip = Builder.Detached) () =
  { builder = Builder.create ~ip (); listeners = [] }

let add_listener t l = t.listeners <- l :: t.listeners

(** Detach a listener previously passed to {!add_listener} (compared by
    physical identity). *)
let remove_listener t l =
  t.listeners <- List.filter (fun x -> not (x == l)) t.listeners
let builder t = t.builder
let set_ip t ip = Builder.set_ip t.builder ip

(* Ambient (domain-local) listeners, observing every rewriter on this
   domain for a dynamic extent. Passes create their own rewriter instances
   internally, so observers that cannot thread a listener into them — the
   incremental verifier's dirty tracking — attach here instead. *)
let ambient : listener list Domain.DLS.key = Domain.DLS.new_key (fun () -> [])

(** Observe every rewriter notification on this domain while [f] runs. *)
let with_listener l f =
  let saved = Domain.DLS.get ambient in
  Domain.DLS.set ambient (l :: saved);
  Fun.protect ~finally:(fun () -> Domain.DLS.set ambient saved) f

let all_listeners t = t.listeners @ Domain.DLS.get ambient

let notify_inserted t op =
  List.iter (fun l -> l.on_inserted op) (all_listeners t)

let rec notify_erased_tree t op =
  (* nested ops disappear together with their parent *)
  List.iter
    (fun r ->
      List.iter
        (fun b -> List.iter (notify_erased_tree t) (Ircore.block_ops b))
        (Ircore.region_blocks r))
    op.Ircore.regions;
  List.iter (fun l -> l.on_erased op) (all_listeners t)

let insert t op =
  ignore (Builder.insert t.builder op);
  notify_inserted t op

(** Create an op at the current insertion point and notify listeners. *)
let build t ?operands ?result_types ?attrs ?regions ?successors ?loc name =
  let op =
    Ircore.create ?operands ?result_types ?attrs ?regions ?successors ?loc name
  in
  insert t op;
  op

let build1 t ?operands ?result_types ?attrs ?regions ?successors ?loc name =
  Ircore.result (build t ?operands ?result_types ?attrs ?regions ?successors ?loc name)

(** Replace [op]'s results by [with_] and erase it. *)
let replace_op t op ~with_ =
  List.iter (fun l -> l.on_replaced op with_) (all_listeners t);
  (* notify nested erasures *)
  List.iter
    (fun r ->
      List.iter
        (fun b -> List.iter (notify_erased_tree t) (Ircore.block_ops b))
        (Ircore.region_blocks r))
    op.Ircore.regions;
  Ircore.replace op ~with_

(** Replace [op] by a freshly built op inserted just before it. Result types
    and attributes default to those of [op]. *)
let replace_op_with t op ?operands ?result_types ?attrs ?regions ?successors
    name =
  let saved = Builder.ip t.builder in
  Builder.set_ip t.builder (Builder.Before op);
  let result_types =
    match result_types with
    | Some ts -> ts
    | None -> List.map Ircore.value_typ (Ircore.results op)
  in
  let attrs =
    match attrs with Some a -> a | None -> op.Ircore.attrs
  in
  let new_op = build t ?operands ~result_types ~attrs ?regions ?successors name in
  replace_op t op ~with_:(Ircore.results new_op);
  Builder.set_ip t.builder saved;
  new_op

let erase_op t op =
  notify_erased_tree t op;
  Ircore.erase op

(** Erase even if results have uses (callers guarantee deadness). *)
let erase_op_unchecked t op =
  notify_erased_tree t op;
  Ircore.erase_unchecked op

(** In-place modification bracket: notifies listeners through [on_modified]
    so dependent state (worklists, handle maps) can be refreshed without
    treating the op as erased. *)
let modify_in_place t op f =
  let r = f () in
  List.iter (fun l -> l.on_modified op) (all_listeners t);
  r

(** Inline all ops of [block] before [anchor], replacing uses of the block's
    arguments by [arg_values]. The block is left empty (and detached). *)
let inline_block_before t ~anchor ~arg_values block =
  let args = Ircore.block_args block in
  if List.length args <> List.length arg_values then
    invalid_arg "inline_block_before: argument arity mismatch";
  List.iter2
    (fun arg v -> Ircore.replace_all_uses_with arg ~with_:v)
    args arg_values;
  List.iter
    (fun op ->
      Ircore.detach op;
      Ircore.insert_before ~anchor op;
      notify_inserted t op)
    (Ircore.block_ops block);
  Ircore.detach_block block

(** Split [block] before [op]: ops from [op] (inclusive) move to a fresh
    block appended right after [block] in the same region. Returns the new
    block. *)
let split_block_before _t block op =
  let region =
    match Ircore.block_parent block with
    | Some r -> r
    | None -> invalid_arg "split_block_before: detached block"
  in
  let new_block = Ircore.create_block () in
  Ircore.insert_block_after region ~anchor:block new_block;
  let rec move = function
    | None -> ()
    | Some o ->
      let next = Ircore.op_next o in
      Ircore.detach o;
      Ircore.insert_at_end new_block o;
      move next
  in
  move (Some op);
  new_block
