(** Payload checkpoints: transactional snapshot/restore of an op subtree,
    the substrate of the interpreter's rollback semantics (the paper's
    Section 3 error discipline made real rather than conventional: a
    silenceable failure must leave the payload recoverable even when the
    failing region already mutated it — upstream MLIR's [alternatives]
    clones the payload for the same reason).

    A checkpoint is a detached deep clone of the subtree taken through
    {!Ircore.clone_op}, plus the op/value correspondence between the live
    subtree and the clone. {!restore} splices the cloned content back into
    the (still live) root op in place — the root's identity is preserved,
    every op and value below it is replaced by its snapshot copy — and the
    recorded correspondence then lets callers remap any side tables keyed
    by op/value identity ({!Transform.State} remaps its handle tables
    through {!remap_op}/{!remap_value}).

    Validity: the root op must still be attached (or be the payload root)
    when restoring, and values referenced by the subtree but defined
    outside it must still be live — both hold trivially for the module-
    level payload roots the transform interpreter checkpoints. A
    checkpoint is single-shot: restoring or discarding it spends it.

    Cost model: {!take} is a full structural clone of the subtree — O(ops)
    time and memory; {!restore} is O(ops of the mutated subtree) to drop
    references plus O(1) splicing. See DESIGN.md "Transactional transform
    execution". *)

type t = {
  cp_root : Ircore.op;  (** live root whose content was captured *)
  mutable cp_clone : Ircore.op option;  (** detached copy; [None] once spent *)
  cp_ops : (int, Ircore.op) Hashtbl.t;  (** original op id -> clone op *)
  cp_values : (int, Ircore.value) Hashtbl.t;
      (** original value id -> clone value *)
  cp_op_count : int;  (** ops captured, for stats/benchmarks *)
}

(* global statistics (Ir.Stats) *)
let stat_taken = Stats.counter ~component:"checkpoint" "taken"
let stat_restored = Stats.counter ~component:"checkpoint" "restored"

let stat_ops_captured =
  Stats.counter ~component:"checkpoint" "ops_captured"

(** Snapshot the subtree rooted at [root]. The root op itself is part of
    the checkpoint: its attributes and regions are captured (operands and
    result identities are untouched by {!restore}). *)
let take root =
  Profiler.span ~cat:"checkpoint" "checkpoint.take" @@ fun () ->
  let mapping = Ircore.Mapping.create () in
  let clone = Ircore.clone_op ~mapping root in
  let ops = Hashtbl.create 64 in
  (* walk original and clone in lockstep (structurally identical trees) to
     record the op correspondence; [Mapping] already has the values *)
  let rec zip_op o c =
    Hashtbl.replace ops o.Ircore.op_id c;
    List.iter2 zip_region o.Ircore.regions c.Ircore.regions
  and zip_region ro rc =
    List.iter2 zip_block (Ircore.region_blocks ro) (Ircore.region_blocks rc)
  and zip_block bo bc =
    List.iter2 zip_op (Ircore.block_ops bo) (Ircore.block_ops bc)
  in
  zip_op root clone;
  let count = Hashtbl.length ops in
  Stats.incr stat_taken;
  Stats.add stat_ops_captured count;
  {
    cp_root = root;
    cp_clone = Some clone;
    cp_ops = ops;
    cp_values = mapping.Ircore.Mapping.values;
    cp_op_count = count;
  }

let op_count cp = cp.cp_op_count
let spent cp = cp.cp_clone = None

let take_clone cp what =
  match cp.cp_clone with
  | Some c ->
    cp.cp_clone <- None;
    c
  | None -> invalid_arg (Fmt.str "Checkpoint.%s: checkpoint already spent" what)

(** Drop every use held by the ops currently inside [root]'s regions —
    required before discarding that content, since it may reference values
    defined outside the subtree. *)
let drop_region_references root =
  List.iter
    (fun r ->
      List.iter
        (fun b -> List.iter Ircore.drop_all_references (Ircore.block_ops b))
        (Ircore.region_blocks r))
    root.Ircore.regions

(** Roll the live subtree back to its checkpointed content. The current
    (mutated) regions of the root are discarded; the snapshot's regions and
    attributes are spliced in. The root op keeps its identity, position,
    operands and results. After restore, {!remap_op}/{!remap_value} map
    checkpoint-time ops/values to their restored (clone) copies. *)
let restore cp =
  Profiler.span ~cat:"checkpoint" "checkpoint.restore" @@ fun () ->
  let clone = take_clone cp "restore" in
  let root = cp.cp_root in
  drop_region_references root;
  root.Ircore.regions <- clone.Ircore.regions;
  List.iter
    (fun r -> r.Ircore.r_parent <- Some root)
    root.Ircore.regions;
  clone.Ircore.regions <- [];
  root.Ircore.attrs <- clone.Ircore.attrs;
  (* the clone shell's operands still hold uses on the root's operand
     values (clone_op maps out-of-subtree values to themselves) *)
  Ircore.drop_all_references clone;
  Stats.incr stat_restored

(** Release a checkpoint that will not be restored (the transaction
    committed): drops the clone's uses on out-of-subtree values so the
    snapshot is fully disconnected and collectable. *)
let discard cp =
  if not (spent cp) then begin
    let clone = take_clone cp "discard" in
    drop_region_references clone;
    Ircore.drop_all_references clone
  end

(** The restored copy of a checkpoint-time op, valid after {!restore}.
    The root maps to itself; ops created after the checkpoint was taken
    have no image and yield [None]. *)
let remap_op cp (op : Ircore.op) =
  if op == cp.cp_root then Some op
  else Hashtbl.find_opt cp.cp_ops op.Ircore.op_id

(** Same, by op id (for side tables keyed on ids). *)
let remap_op_id cp id =
  if id = cp.cp_root.Ircore.op_id then Some cp.cp_root
  else Hashtbl.find_opt cp.cp_ops id

(** The restored copy of a checkpoint-time value ([None] for values born
    after the checkpoint; out-of-subtree values map to themselves). *)
let remap_value cp (v : Ircore.value) =
  match Hashtbl.find_opt cp.cp_values v.Ircore.v_id with
  | Some v' -> Some v'
  | None ->
    (* values defined outside the checkpointed subtree survive unchanged *)
    if Ircore.value_defined_within ~ancestor:cp.cp_root v then None
    else Some v
