(** The mutable IR graph: values, operations, blocks and regions, with
    use-def chains and intrusive doubly-linked lists of operations within
    blocks and blocks within regions — mirroring MLIR's in-memory design so
    that insertion, erasure and replacement are O(1) during rewrites. *)

type value = {
  v_id : int;
  mutable v_typ : Typ.t;
  v_def : vdef;
  mutable v_uses : use list;  (** unordered list of (user op, operand idx) *)
}

and vdef =
  | Op_result of op * int
  | Block_arg of block * int

and use = { u_op : op; u_index : int }

and op = {
  op_id : int;
  op_name : string;
  mutable operands : value array;
  mutable results : value array;
  mutable attrs : Attr.dict;
  mutable regions : region list;
  mutable successors : block array;
  mutable op_parent : block option;
  mutable op_prev : op option;
  mutable op_next : op option;
  mutable op_loc : Loc.t;
}

and block = {
  b_id : int;
  mutable b_args : value array;
  mutable b_first : op option;
  mutable b_last : op option;
  mutable b_parent : region option;
  mutable b_prev : block option;
  mutable b_next : block option;
}

and region = {
  r_id : int;
  mutable r_first : block option;
  mutable r_last : block option;
  mutable r_parent : op option;
}

(* ------------------------------------------------------------------ *)
(* Values                                                              *)
(* ------------------------------------------------------------------ *)

let value_typ v = v.v_typ
let value_id v = v.v_id

let new_result op index typ =
  { v_id = Util.fresh_id (); v_typ = typ; v_def = Op_result (op, index); v_uses = [] }

let defining_op v =
  match v.v_def with Op_result (op, _) -> Some op | Block_arg _ -> None

let defining_block v =
  match v.v_def with Block_arg (b, _) -> Some b | Op_result _ -> None

let value_uses v = v.v_uses
let has_uses v = v.v_uses <> []

(** Exactly one use — O(1), unlike counting with {!num_uses}. *)
let has_one_use v = match v.v_uses with [ _ ] -> true | _ -> false

let num_uses v = List.length v.v_uses

let add_use v ~op ~index = v.v_uses <- { u_op = op; u_index = index } :: v.v_uses

let remove_use v ~op ~index =
  v.v_uses <-
    List.filter (fun u -> not (u.u_op == op && u.u_index = index)) v.v_uses

(* ------------------------------------------------------------------ *)
(* Op creation                                                         *)
(* ------------------------------------------------------------------ *)

let create ?(operands = []) ?(result_types = []) ?(attrs = []) ?(regions = [])
    ?(successors = []) ?(loc = Loc.unknown) op_name =
  let op =
    {
      op_id = Util.fresh_id ();
      op_name;
      operands = Array.of_list operands;
      results = [||];
      attrs;
      regions;
      successors = Array.of_list successors;
      op_parent = None;
      op_prev = None;
      op_next = None;
      op_loc = loc;
    }
  in
  op.results <- Array.of_list (List.mapi (fun i t -> new_result op i t) result_types);
  Array.iteri (fun index v -> add_use v ~op ~index) op.operands;
  List.iter (fun r -> r.r_parent <- Some op) op.regions;
  op

let result ?(index = 0) op =
  if index >= Array.length op.results then
    invalid_arg
      (Fmt.str "op %s has %d results, requested %d" op.op_name
         (Array.length op.results) index);
  op.results.(index)

let results op = Array.to_list op.results
let operands op = Array.to_list op.operands
let operand ?(index = 0) op = op.operands.(index)
let num_operands op = Array.length op.operands
let num_results op = Array.length op.results

let attr op name = Attr.find name op.attrs
let set_attr op name v = op.attrs <- Attr.set name v op.attrs
let remove_attr op name = op.attrs <- Attr.remove name op.attrs
let has_attr op name = Option.is_some (attr op name)

let set_operand op index v =
  let old = op.operands.(index) in
  if not (old == v) then begin
    remove_use old ~op ~index;
    op.operands.(index) <- v;
    add_use v ~op ~index
  end

let set_operands op vs =
  Array.iteri (fun index v -> remove_use v ~op ~index) op.operands;
  op.operands <- Array.of_list vs;
  Array.iteri (fun index v -> add_use v ~op ~index) op.operands

(* ------------------------------------------------------------------ *)
(* Linking ops into blocks                                             *)
(* ------------------------------------------------------------------ *)

let op_parent op = op.op_parent
let op_next op = op.op_next
let op_prev op = op.op_prev

let block_ops b =
  let rec go acc = function
    | None -> List.rev acc
    | Some op -> go (op :: acc) op.op_next
  in
  go [] b.b_first

let block_first_op b = b.b_first
let block_last_op b = b.b_last

(** Number of ops in [b]; O(n). *)
let block_num_ops b =
  let rec go n = function None -> n | Some op -> go (n + 1) op.op_next in
  go 0 b.b_first

let assert_detached op =
  if op.op_parent <> None then
    invalid_arg (Fmt.str "op %s is already attached to a block" op.op_name)

let insert_at_end b op =
  assert_detached op;
  op.op_parent <- Some b;
  op.op_prev <- b.b_last;
  op.op_next <- None;
  (match b.b_last with
  | None -> b.b_first <- Some op
  | Some last -> last.op_next <- Some op);
  b.b_last <- Some op

let insert_at_start b op =
  assert_detached op;
  op.op_parent <- Some b;
  op.op_next <- b.b_first;
  op.op_prev <- None;
  (match b.b_first with
  | None -> b.b_last <- Some op
  | Some first -> first.op_prev <- Some op);
  b.b_first <- Some op

let insert_before ~anchor op =
  assert_detached op;
  let b =
    match anchor.op_parent with
    | Some b -> b
    | None -> invalid_arg "insert_before: anchor is detached"
  in
  op.op_parent <- Some b;
  op.op_prev <- anchor.op_prev;
  op.op_next <- Some anchor;
  (match anchor.op_prev with
  | None -> b.b_first <- Some op
  | Some p -> p.op_next <- Some op);
  anchor.op_prev <- Some op

let insert_after ~anchor op =
  assert_detached op;
  let b =
    match anchor.op_parent with
    | Some b -> b
    | None -> invalid_arg "insert_after: anchor is detached"
  in
  op.op_parent <- Some b;
  op.op_next <- anchor.op_next;
  op.op_prev <- Some anchor;
  (match anchor.op_next with
  | None -> b.b_last <- Some op
  | Some n -> n.op_prev <- Some op);
  anchor.op_next <- Some op

(** Unlink [op] from its block without touching uses or nested regions. *)
let detach op =
  match op.op_parent with
  | None -> ()
  | Some b ->
    (match op.op_prev with
    | None -> b.b_first <- op.op_next
    | Some p -> p.op_next <- op.op_next);
    (match op.op_next with
    | None -> b.b_last <- op.op_prev
    | Some n -> n.op_prev <- op.op_prev);
    op.op_parent <- None;
    op.op_prev <- None;
    op.op_next <- None

let move_before ~anchor op =
  detach op;
  insert_before ~anchor op

let move_after ~anchor op =
  detach op;
  insert_after ~anchor op

let move_to_end b op =
  detach op;
  insert_at_end b op

(* ------------------------------------------------------------------ *)
(* Blocks and regions                                                  *)
(* ------------------------------------------------------------------ *)

let create_block ?(args = []) () =
  let b =
    {
      b_id = Util.fresh_id ();
      b_args = [||];
      b_first = None;
      b_last = None;
      b_parent = None;
      b_prev = None;
      b_next = None;
    }
  in
  b.b_args <-
    Array.of_list
      (List.mapi
         (fun i t ->
           { v_id = Util.fresh_id (); v_typ = t; v_def = Block_arg (b, i); v_uses = [] })
         args);
  b

let block_args b = Array.to_list b.b_args
let block_arg b i = b.b_args.(i)
let block_parent b = b.b_parent

let add_block_arg b t =
  let i = Array.length b.b_args in
  let v = { v_id = Util.fresh_id (); v_typ = t; v_def = Block_arg (b, i); v_uses = [] } in
  b.b_args <- Array.append b.b_args [| v |];
  v

let create_region () =
  { r_id = Util.fresh_id (); r_first = None; r_last = None; r_parent = None }

let region_blocks r =
  let rec go acc = function
    | None -> List.rev acc
    | Some b -> go (b :: acc) b.b_next
  in
  go [] r.r_first

let region_first_block r = r.r_first
let region_parent r = r.r_parent

let append_block r b =
  if b.b_parent <> None then invalid_arg "append_block: block already attached";
  b.b_parent <- Some r;
  b.b_prev <- r.r_last;
  b.b_next <- None;
  (match r.r_last with
  | None -> r.r_first <- Some b
  | Some last -> last.b_next <- Some b);
  r.r_last <- Some b

let insert_block_after r ~anchor b =
  if b.b_parent <> None then
    invalid_arg "insert_block_after: block already attached";
  b.b_parent <- Some r;
  b.b_prev <- Some anchor;
  b.b_next <- anchor.b_next;
  (match anchor.b_next with
  | None -> r.r_last <- Some b
  | Some n -> n.b_prev <- Some b);
  anchor.b_next <- Some b

let detach_block b =
  match b.b_parent with
  | None -> ()
  | Some r ->
    (match b.b_prev with
    | None -> r.r_first <- b.b_next
    | Some p -> p.b_next <- b.b_next);
    (match b.b_next with
    | None -> r.r_last <- b.b_prev
    | Some n -> n.b_prev <- b.b_prev);
    b.b_parent <- None;
    b.b_prev <- None;
    b.b_next <- None

(** Region with a single empty block, the common case for structured ops. *)
let single_block_region ?(args = []) () =
  let r = create_region () in
  append_block r (create_block ~args ());
  r

let region_with_block b =
  let r = create_region () in
  append_block r b;
  r

(* ------------------------------------------------------------------ *)
(* Traversal                                                           *)
(* ------------------------------------------------------------------ *)

let rec walk_op ?(pre = ignore) ?(post = ignore) op =
  pre op;
  List.iter (walk_region ~pre ~post) op.regions;
  post op

and walk_region ~pre ~post r =
  List.iter (walk_block ~pre ~post) (region_blocks r)

and walk_block ~pre ~post b =
  (* Snapshot the op list so that callbacks may erase/move the current op. *)
  List.iter (fun op -> walk_op ~pre ~post op) (block_ops b)

(** Parent op of [op], if attached. *)
let parent_op op =
  match op.op_parent with
  | None -> None
  | Some b -> ( match b.b_parent with None -> None | Some r -> r.r_parent)

let rec is_ancestor ~ancestor op =
  if ancestor == op then true
  else match parent_op op with None -> false | Some p -> is_ancestor ~ancestor p

(** Is [op] a proper ancestor of (or equal to) the op defining/owning [v]? *)
let value_defined_within ~ancestor v =
  match v.v_def with
  | Op_result (op, _) -> is_ancestor ~ancestor op
  | Block_arg (b, _) -> (
    match b.b_parent with
    | None -> false
    | Some r -> (
      match r.r_parent with
      | None -> false
      | Some owner -> is_ancestor ~ancestor owner))

(* ------------------------------------------------------------------ *)
(* Replacement and erasure                                             *)
(* ------------------------------------------------------------------ *)

let replace_all_uses_with v ~with_ =
  if not (v == with_) then begin
    let uses = v.v_uses in
    v.v_uses <- [];
    List.iter
      (fun { u_op; u_index } ->
        u_op.operands.(u_index) <- with_;
        with_.v_uses <- { u_op; u_index } :: with_.v_uses)
      uses
  end

(** Drop all operand uses held by [op] and, recursively, by its regions.
    Required before erasing a subtree that may contain forward references. *)
let rec drop_all_references op =
  Array.iteri (fun index v -> remove_use v ~op ~index) op.operands;
  op.operands <- [||];
  List.iter
    (fun r ->
      List.iter
        (fun b -> List.iter drop_all_references (block_ops b))
        (region_blocks r))
    op.regions

exception Has_live_uses of op

(** Erase [op]: unlink it, drop its operand uses (recursively through
    regions). Raises [Has_live_uses] if any result still has uses outside the
    erased subtree. *)
let erase op =
  Array.iter
    (fun res ->
      List.iter
        (fun u ->
          if not (is_ancestor ~ancestor:op u.u_op) then raise (Has_live_uses op))
        res.v_uses)
    op.results;
  (* Results of nested ops must not be used outside the subtree either. *)
  List.iter
    (fun r ->
      List.iter
        (fun b ->
          List.iter
            (fun nested ->
              walk_op nested ~pre:(fun n ->
                  Array.iter
                    (fun res ->
                      List.iter
                        (fun u ->
                          if not (is_ancestor ~ancestor:op u.u_op) then
                            raise (Has_live_uses n))
                        res.v_uses)
                    n.results))
            (block_ops b))
        (region_blocks r))
    op.regions;
  detach op;
  drop_all_references op

(** Erase without checking uses; callers must know the uses are dead. *)
let erase_unchecked op =
  detach op;
  drop_all_references op

(** Replace [op] by [values] (one per result) and erase it. *)
let replace op ~with_ =
  if List.length with_ <> Array.length op.results then
    invalid_arg "replace: result arity mismatch";
  List.iteri
    (fun i v -> replace_all_uses_with op.results.(i) ~with_:v)
    with_;
  erase op

(* ------------------------------------------------------------------ *)
(* Cloning                                                             *)
(* ------------------------------------------------------------------ *)

(** Value remapping used while cloning. *)
module Mapping = struct
  type t = {
    values : (int, value) Hashtbl.t;
    blocks : (int, block) Hashtbl.t;
  }

  let create () = { values = Hashtbl.create 16; blocks = Hashtbl.create 4 }
  let map_value m ~from ~to_ = Hashtbl.replace m.values from.v_id to_
  let lookup_value m v = Option.value ~default:v (Hashtbl.find_opt m.values v.v_id)
  let map_block m ~from ~to_ = Hashtbl.replace m.blocks from.b_id to_
  let lookup_block m b = Option.value ~default:b (Hashtbl.find_opt m.blocks b.b_id)
end

let rec clone_op ?(mapping = Mapping.create ()) op =
  let operands =
    Array.to_list (Array.map (Mapping.lookup_value mapping) op.operands)
  in
  let result_types = List.map (fun r -> r.v_typ) (results op) in
  let regions = List.map (clone_region ~mapping) op.regions in
  let successors =
    Array.to_list (Array.map (Mapping.lookup_block mapping) op.successors)
  in
  let cloned =
    create ~operands ~result_types ~attrs:op.attrs ~regions ~successors
      ~loc:op.op_loc op.op_name
  in
  Array.iteri
    (fun i r -> Mapping.map_value mapping ~from:r ~to_:cloned.results.(i))
    op.results;
  (* Remap forward references inside cloned regions now that results exist. *)
  List.iter
    (fun r ->
      List.iter
        (fun b ->
          List.iter
            (fun nested ->
              walk_op nested ~pre:(fun n ->
                  Array.iteri
                    (fun index v ->
                      let v' = Mapping.lookup_value mapping v in
                      if not (v == v') then set_operand n index v')
                    n.operands))
            (block_ops b))
        (region_blocks r))
    cloned.regions;
  cloned

and clone_region ~mapping r =
  let r' = create_region () in
  (* First create all blocks (with args) so successors can be remapped. *)
  let blocks = region_blocks r in
  let cloned_blocks =
    List.map
      (fun b ->
        let b' = create_block ~args:(List.map (fun a -> a.v_typ) (block_args b)) () in
        Mapping.map_block mapping ~from:b ~to_:b';
        Array.iteri
          (fun i a -> Mapping.map_value mapping ~from:a ~to_:b'.b_args.(i))
          b.b_args;
        append_block r' b';
        b')
      blocks
  in
  List.iter2
    (fun b b' ->
      List.iter
        (fun op -> insert_at_end b' (clone_op ~mapping op))
        (block_ops b))
    blocks cloned_blocks;
  r'

(* ------------------------------------------------------------------ *)
(* Misc                                                                *)
(* ------------------------------------------------------------------ *)

let op_dialect op = Util.dialect_of_op_name op.op_name

let is_before_in_block a b =
  (* both must be in the same block *)
  let rec go = function
    | None -> false
    | Some x -> x == b || go x.op_next
  in
  (match (a.op_parent, b.op_parent) with
  | Some ba, Some bb when ba == bb -> ()
  | _ -> invalid_arg "is_before_in_block: ops not in the same block");
  go a.op_next
