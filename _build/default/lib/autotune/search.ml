(** Search drivers: random search and BaCO-like Bayesian optimization
    (GP surrogate + expected improvement, constraint-aware candidate
    sampling). The objective is minimized (e.g. simulated runtime). *)

type evaluation = {
  e_iteration : int;
  e_point : Space.point;
  e_objective : float;
  e_best_so_far : float;
}

type result = {
  best_point : Space.point;
  best_objective : float;
  history : evaluation list;  (** in evaluation order *)
}

let record history it point obj =
  let best =
    match history with
    | [] -> obj
    | last :: _ -> Float.min obj last.e_best_so_far
  in
  { e_iteration = it; e_point = point; e_objective = obj; e_best_so_far = best }
  :: history

let finish history =
  match history with
  | [] -> invalid_arg "no evaluations"
  | _ ->
    let best =
      List.fold_left
        (fun acc e -> if e.e_objective < acc.e_objective then e else acc)
        (List.hd history) history
    in
    {
      best_point = best.e_point;
      best_objective = best.e_objective;
      history = List.rev history;
    }

(** Pure random search. *)
let random_search ?(seed = 1) ~budget space objective =
  let rng = Random.State.make [| seed |] in
  let history = ref [] in
  for it = 1 to budget do
    match Space.sample space rng with
    | Some point ->
      let obj = objective point in
      history := record !history it point obj
    | None -> ()
  done;
  finish !history

(** Bayesian optimization: [init] random evaluations, then EI-maximizing
    candidates from [candidates_per_iter] feasible samples per step. *)
let bayesian ?(seed = 1) ?(init = 8) ?(candidates_per_iter = 256) ~budget space
    objective =
  let rng = Random.State.make [| seed |] in
  let history = ref [] in
  let seen : (Space.point, unit) Hashtbl.t = Hashtbl.create 64 in
  let evaluate it point =
    Hashtbl.replace seen point ();
    let obj = objective point in
    history := record !history it point obj
  in
  (* initial design *)
  let it = ref 0 in
  while !it < min init budget do
    incr it;
    match Space.sample space rng with
    | Some point when not (Hashtbl.mem seen point) -> evaluate !it point
    | _ -> ()
  done;
  (* BO loop *)
  (try
  while List.length !history < budget do
    let observations = !history in
    let xs =
      Array.of_list
        (List.map (fun e -> Space.encode space e.e_point) observations)
    in
    let ys = Array.of_list (List.map (fun e -> e.e_objective) observations) in
    let best = Array.fold_left Float.min Float.infinity ys in
    let next =
      match Gp.fit xs ys with
      | None -> Space.sample space rng
      | Some gp ->
        (* sample candidates, pick the best EI among unseen ones *)
        let best_cand = ref None in
        for _ = 1 to candidates_per_iter do
          match Space.sample space rng with
          | Some c when not (Hashtbl.mem seen c) ->
            let ei = Gp.expected_improvement gp ~best (Space.encode space c) in
            (match !best_cand with
            | Some (_, best_ei) when best_ei >= ei -> ()
            | _ -> best_cand := Some (c, ei))
          | _ -> ()
        done;
        (match !best_cand with
        | Some (c, _) -> Some c
        | None -> Space.sample space rng)
    in
    match next with
    | Some point -> evaluate (List.length !history + 1) point
    | None -> raise Exit (* space exhausted *)
  done
  with Exit -> ());
  finish !history

(** Evolution of the best objective, for plotting Figure 11. *)
let best_curve result = List.map (fun e -> e.e_best_so_far) result.history
