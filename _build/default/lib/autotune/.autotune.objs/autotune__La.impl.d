lib/autotune/la.ml: Array
