lib/autotune/search.ml: Array Float Gp Hashtbl List Random Space
