lib/autotune/gp.ml: Array Float La
