lib/autotune/space.ml: Array Fmt Int List Random
