(** Dense linear algebra for the Gaussian-process surrogate: symmetric
    positive-definite solves via Cholesky factorization. *)

type mat = float array array

let make n m v : mat = Array.make_matrix n m v

(** Cholesky factorization A = L L^T (lower triangular). [A] must be SPD;
    a small jitter is added to the diagonal for numerical stability.
    Returns L, or [None] if the matrix is not positive definite. *)
let cholesky ?(jitter = 1e-9) (a : mat) : mat option =
  let n = Array.length a in
  let l = make n n 0.0 in
  let ok = ref true in
  (try
     for i = 0 to n - 1 do
       for j = 0 to i do
         let sum = ref a.(i).(j) in
         if i = j then sum := !sum +. jitter;
         for k = 0 to j - 1 do
           sum := !sum -. (l.(i).(k) *. l.(j).(k))
         done;
         if i = j then begin
           if !sum <= 0.0 then begin
             ok := false;
             raise Exit
           end;
           l.(i).(j) <- sqrt !sum
         end
         else l.(i).(j) <- !sum /. l.(j).(j)
       done
     done
   with Exit -> ());
  if !ok then Some l else None

(** Solve L y = b (forward substitution). *)
let solve_lower (l : mat) (b : float array) =
  let n = Array.length b in
  let y = Array.make n 0.0 in
  for i = 0 to n - 1 do
    let sum = ref b.(i) in
    for k = 0 to i - 1 do
      sum := !sum -. (l.(i).(k) *. y.(k))
    done;
    y.(i) <- !sum /. l.(i).(i)
  done;
  y

(** Solve L^T x = y (backward substitution). *)
let solve_upper_t (l : mat) (y : float array) =
  let n = Array.length y in
  let x = Array.make n 0.0 in
  for i = n - 1 downto 0 do
    let sum = ref y.(i) in
    for k = i + 1 to n - 1 do
      sum := !sum -. (l.(k).(i) *. x.(k))
    done;
    x.(i) <- !sum /. l.(i).(i)
  done;
  x

(** Solve A x = b given the Cholesky factor L of A. *)
let cholesky_solve l b = solve_upper_t l (solve_lower l b)

let dot a b =
  let s = ref 0.0 in
  Array.iteri (fun i x -> s := !s +. (x *. b.(i))) a;
  !s

let sq_dist a b =
  let s = ref 0.0 in
  Array.iteri
    (fun i x ->
      let d = x -. b.(i) in
      s := !s +. (d *. d))
    a;
  !s
