(** Search-space definition for autotuning (Case Study 5, Figure 10):
    named parameters over finite domains with arbitrary constraints (e.g.
    "tile sizes must divide their dimension", "vectorization is disabled
    unless the innermost trip count is divisible by the vector width"). *)

type param = {
  p_name : string;
  p_values : int list;  (** ordinal/categorical domain, encoded as ints *)
}

type point = (string * int) list  (** parameter name -> chosen value *)

type t = {
  params : param list;
  constraints : (string * (point -> bool)) list;  (** named predicates *)
}

let param name values = { p_name = name; p_values = values }

let make ?(constraints = []) params = { params; constraints }

let get point name =
  match List.assoc_opt name point with
  | Some v -> v
  | None -> invalid_arg (Fmt.str "unknown parameter %s" name)

let feasible t point =
  List.for_all (fun (_, pred) -> pred point) t.constraints

(** Number of raw (unconstrained) configurations. *)
let raw_size t =
  List.fold_left (fun acc p -> acc * List.length p.p_values) 1 t.params

(** Enumerate all feasible points (use only for small spaces). *)
let enumerate t =
  let rec go acc = function
    | [] -> List.map List.rev acc
    | p :: rest ->
      let acc' =
        List.concat_map
          (fun partial ->
            List.map (fun v -> (p.p_name, v) :: partial) p.p_values)
          acc
      in
      go acc' rest
  in
  go [ [] ] t.params |> List.filter (feasible t)

(** Sample a feasible point uniformly (rejection sampling). *)
let sample t rng =
  let raw () =
    List.map
      (fun p ->
        (p.p_name, List.nth p.p_values (Random.State.int rng (List.length p.p_values))))
      t.params
  in
  let rec go tries =
    if tries > 10_000 then None
    else
      let pt = raw () in
      if feasible t pt then Some pt else go (tries + 1)
  in
  go 0

(** Encode a point as a normalized feature vector for surrogate models:
    each parameter's value index scaled to [0, 1]. *)
let encode t point =
  Array.of_list
    (List.map
       (fun p ->
         let v = get point p.p_name in
         let idx =
           match List.find_index (Int.equal v) p.p_values with
           | Some i -> i
           | None -> 0
         in
         if List.length p.p_values <= 1 then 0.0
         else float_of_int idx /. float_of_int (List.length p.p_values - 1))
       t.params)

let pp_point fmt point =
  Fmt.pf fmt "{%a}"
    (Fmt.list ~sep:Fmt.comma (fun fmt (k, v) -> Fmt.pf fmt "%s=%d" k v))
    point

(** Divisors of [n], ascending. *)
let divisors n =
  List.filter (fun d -> n mod d = 0) (List.init n (fun i -> i + 1))
