(** Gaussian-process regression with an RBF kernel — the surrogate model of
    our BaCO-like Bayesian optimizer. Observations are normalized to zero
    mean / unit variance internally. *)

type t = {
  xs : float array array;
  l : La.mat;  (** Cholesky factor of K + sigma^2 I *)
  alpha : float array;  (** (K + sigma^2 I)^-1 y *)
  length_scale : float;
  signal_var : float;
  mean : float;
  std : float;
}

let kernel ~length_scale ~signal_var a b =
  signal_var *. exp (-.La.sq_dist a b /. (2.0 *. length_scale *. length_scale))

(** Fit a GP to observations [(x, y)]. Returns [None] when the kernel matrix
    is numerically singular. *)
let fit ?(length_scale = 0.3) ?(signal_var = 1.0) ?(noise = 1e-4) xs ys =
  let n = Array.length xs in
  if n = 0 then None
  else begin
    let mean = Array.fold_left ( +. ) 0.0 ys /. float_of_int n in
    let var =
      Array.fold_left (fun acc y -> acc +. ((y -. mean) ** 2.0)) 0.0 ys
      /. float_of_int n
    in
    let std = if var < 1e-12 then 1.0 else sqrt var in
    let ys_n = Array.map (fun y -> (y -. mean) /. std) ys in
    let k = La.make n n 0.0 in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        k.(i).(j) <-
          kernel ~length_scale ~signal_var xs.(i) xs.(j)
          +. (if i = j then noise else 0.0)
      done
    done;
    match La.cholesky k with
    | None -> None
    | Some l ->
      let alpha = La.cholesky_solve l ys_n in
      Some { xs; l; alpha; length_scale; signal_var; mean; std }
  end

(** Predictive mean and variance at [x]. *)
let predict t x =
  let n = Array.length t.xs in
  let kstar =
    Array.init n (fun i ->
        kernel ~length_scale:t.length_scale ~signal_var:t.signal_var t.xs.(i) x)
  in
  let mu_n = La.dot kstar t.alpha in
  let v = La.solve_lower t.l kstar in
  let var_n = t.signal_var -. La.dot v v in
  let var_n = Float.max var_n 1e-12 in
  (t.mean +. (mu_n *. t.std), var_n *. t.std *. t.std)

(* standard normal pdf/cdf *)
let pdf z = exp (-0.5 *. z *. z) /. sqrt (2.0 *. Float.pi)

let cdf z =
  (* Abramowitz–Stegun approximation *)
  let t = 1.0 /. (1.0 +. (0.2316419 *. Float.abs z)) in
  let poly =
    t
    *. (0.319381530
       +. (t
          *. (-0.356563782
             +. (t *. (1.781477937 +. (t *. (-1.821255978 +. (t *. 1.330274429))))))))
  in
  let approx = 1.0 -. (pdf z *. poly) in
  if z >= 0.0 then approx else 1.0 -. approx

(** Expected improvement (for minimization) over the incumbent [best]. *)
let expected_improvement t ~best x =
  let mu, var = predict t x in
  let sigma = sqrt var in
  if sigma < 1e-12 then Float.max 0.0 (best -. mu)
  else
    let z = (best -. mu) /. sigma in
    ((best -. mu) *. cdf z) +. (sigma *. pdf z)
