(** Registers every pass shipped with this library. Idempotent. *)

let registered = ref false

let register () =
  if not !registered then begin
    registered := true;
    Conversions.register ();
    Transforms.register ();
    Tosa_passes.register ();
    Linalg_to_loops.register ();
    Inline.register ()
  end
