(** Function inlining: the payload-level inliner referenced by Section 3.4
    ("macros … may be implemented by simply calling the inliner pass").

    Inlines [func.call]s to same-module functions whose body is a single
    block, bottom-up over the call graph; recursive cycles are left alone.
    Calls to unknown symbols (external/microkernel functions) are kept. *)

open Ir
open Dialects

let callee_name op =
  match Ircore.attr op "callee" with
  | Some (Attr.Symbol_ref (s, _)) -> Some s
  | _ -> None

(** Direct callees of [f] that resolve inside [module_]. *)
let resolved_callees ~module_ f =
  Symbol.collect_ops ~op_name:Func.call_op f
  |> List.filter_map callee_name
  |> List.filter_map (fun name -> Symbol.lookup_in ~table:module_ name)

(** Functions reachable from [f] through resolved calls, including [f]. *)
let reachable ~module_ f =
  let seen = Hashtbl.create 8 in
  let rec go g =
    if not (Hashtbl.mem seen g.Ircore.op_id) then begin
      Hashtbl.replace seen g.Ircore.op_id g;
      List.iter go (resolved_callees ~module_ g)
    end
  in
  go f;
  Hashtbl.fold (fun _ g acc -> g :: acc) seen []

let is_recursive ~module_ f =
  List.exists
    (fun callee ->
      callee == f || List.memq f (reachable ~module_ callee))
    (resolved_callees ~module_ f)

(** Inline one call site. The callee must have a single-block body ending in
    [func.return]. *)
let inline_call rw ~callee call =
  match Func.entry_block callee with
  | None -> Error "callee has no body"
  | Some body -> (
    match callee.Ircore.regions with
    | [ r ] when List.length (Ircore.region_blocks r) = 1 -> (
      match Ircore.block_last_op body with
      | Some ret when ret.Ircore.op_name = Func.return_op ->
        (* clone the body before the call, mapping args to call operands *)
        let mapping = Ircore.Mapping.create () in
        List.iter2
          (fun arg v -> Ircore.Mapping.map_value mapping ~from:arg ~to_:v)
          (Ircore.block_args body) (Ircore.operands call);
        Rewriter.set_ip rw (Builder.Before call);
        let returned = ref [] in
        List.iter
          (fun op ->
            if op == ret then
              returned :=
                List.map
                  (Ircore.Mapping.lookup_value mapping)
                  (Ircore.operands op)
            else Rewriter.insert rw (Ircore.clone_op ~mapping op))
          (Ircore.block_ops body);
        Rewriter.replace_op rw call ~with_:!returned;
        Ok ()
      | _ -> Error "callee body does not end in func.return")
    | _ -> Error "callee has a multi-block body")

(** Inline every resolvable, non-recursive, single-block call in [top]. *)
let run _ctx top =
  let rw = Rewriter.create () in
  let module_ = top in
  let changed = ref true in
  while !changed do
    changed := false;
    let calls = Symbol.collect_ops ~op_name:Func.call_op top in
    List.iter
      (fun call ->
        if Ircore.op_parent call <> None then
          match callee_name call with
          | None -> ()
          | Some name -> (
            match Symbol.lookup_in ~table:module_ name with
            | Some callee
              when callee.Ircore.op_name = Func.func_op
                   && not (is_recursive ~module_ callee) -> (
              match inline_call rw ~callee call with
              | Ok () -> changed := true
              | Error _ -> ())
            | _ -> ()))
      calls
  done;
  Ok ()

let register () =
  if Pass.lookup "inline" = None then
    Pass.register
      (Pass.make ~name:"inline"
         ~summary:"inline single-block non-recursive function calls"
         ~pre:[ Opset.exact Func.call_op ]
         ~post:[]
         run)
