(** Lowering of linalg named ops on memrefs to scf loop nests (the
    "convert-linalg-to-loops" pass), used to produce executable loop-level
    IR for the performance case studies. *)

open Ir
open Dialects

(** Static dims of a memref-typed value, or None. *)
let static_memref_dims v =
  match Ircore.value_typ v with
  | Typ.Memref (dims, _, _) ->
    let rec go acc = function
      | [] -> Some (List.rev acc)
      | Typ.Static n :: rest -> go (n :: acc) rest
      | Typ.Dynamic :: _ -> None
    in
    go [] dims
  | _ -> None

(** Lower [linalg.matmul ins(A, B) outs(C)] (memref semantics) to the
    canonical i/k/j triple loop with j innermost (unit stride). *)
let lower_matmul rw op =
  match (Linalg.inputs op, Linalg.outputs op) with
  | [ a; b ], [ c ] -> (
    match (static_memref_dims a, static_memref_dims b, static_memref_dims c) with
    | Some [ m; k ], Some [ k'; n ], Some [ m'; n' ]
      when k = k' && m = m' && n = n' ->
      Rewriter.set_ip rw (Builder.Before op);
      let zero = Dutil.const_int rw 0 in
      let one = Dutil.const_int rw 1 in
      let cm = Dutil.const_int rw m in
      let cn = Dutil.const_int rw n in
      let ck = Dutil.const_int rw k in
      ignore
        (Scf.build_for rw ~lb:zero ~ub:cm ~step:one (fun rwi i _ ->
             ignore
               (Scf.build_for rwi ~lb:zero ~ub:ck ~step:one (fun rwk kv _ ->
                    ignore
                      (Scf.build_for rwk ~lb:zero ~ub:cn ~step:one
                         (fun rwj j _ ->
                           let av = Memref.load rwj a [ i; kv ] in
                           let bv = Memref.load rwj b [ kv; j ] in
                           let cv = Memref.load rwj c [ i; j ] in
                           let prod = Arith.mulf rwj av bv in
                           let sum = Arith.addf rwj cv prod in
                           Memref.store rwj sum c [ i; j ];
                           []));
                    []));
             []));
      Rewriter.erase_op rw op;
      Ok ()
    | _ -> Error "linalg.matmul: expected static 2-D memref operands")
  | _ -> Error "linalg.matmul: expected two inputs and one output"

(** Lower [linalg.fill ins(v) outs(M)] to a loop nest of stores. *)
let lower_fill rw op =
  match (Linalg.inputs op, Linalg.outputs op) with
  | [ v ], [ m ] -> (
    match static_memref_dims m with
    | Some dims ->
      Rewriter.set_ip rw (Builder.Before op);
      let zero = Dutil.const_int rw 0 in
      let one = Dutil.const_int rw 1 in
      let rec build ivs rwc = function
        | [] ->
          Memref.store rwc v m (List.rev ivs);
          []
        | d :: rest ->
          let ub = Dutil.const_int rwc d in
          ignore
            (Scf.build_for rwc ~lb:zero ~ub ~step:one (fun rwc' iv _ ->
                 build (iv :: ivs) rwc' rest));
          []
      in
      ignore (build [] rw dims);
      Rewriter.erase_op rw op;
      Ok ()
    | None -> Error "linalg.fill: expected static memref output")
  | _ -> Error "linalg.fill: expected one input and one output"

(** Lower [linalg.copy ins(S) outs(D)]. *)
let lower_copy rw op =
  match (Linalg.inputs op, Linalg.outputs op) with
  | [ s ], [ d ] -> (
    match static_memref_dims d with
    | Some dims ->
      Rewriter.set_ip rw (Builder.Before op);
      let zero = Dutil.const_int rw 0 in
      let one = Dutil.const_int rw 1 in
      let rec build ivs rwc = function
        | [] ->
          let v = Memref.load rwc s (List.rev ivs) in
          Memref.store rwc v d (List.rev ivs);
          []
        | dd :: rest ->
          let ub = Dutil.const_int rwc dd in
          ignore
            (Scf.build_for rwc ~lb:zero ~ub ~step:one (fun rwc' iv _ ->
                 build (iv :: ivs) rwc' rest));
          []
      in
      ignore (build [] rw dims);
      Rewriter.erase_op rw op;
      Ok ()
    | None -> Error "linalg.copy: expected static memref output")
  | _ -> Error "linalg.copy: expected one input and one output"

let run _ctx top =
  let rw = Rewriter.create () in
  let first_error = ref None in
  let record r = match r with Ok () -> () | Error e ->
    if !first_error = None then first_error := Some e
  in
  Pass.for_each_op ~op_name:Linalg.matmul_op top (fun op ->
      record (lower_matmul rw op));
  Pass.for_each_op ~op_name:Linalg.fill_op top (fun op ->
      record (lower_fill rw op));
  Pass.for_each_op ~op_name:Linalg.copy_op top (fun op ->
      record (lower_copy rw op));
  match !first_error with None -> Ok () | Some e -> Diag.fail "%s" e

let register () =
  Pass.register
    (Pass.make ~name:"convert-linalg-to-loops"
       ~summary:"lower linalg named ops on memrefs to scf loops"
       ~pre:
         [
           Opset.exact Linalg.matmul_op; Opset.exact Linalg.fill_op;
           Opset.exact Linalg.copy_op;
         ]
       ~post:
         [
           Opset.exact "scf.for"; Opset.exact "scf.yield";
           Opset.exact "memref.load"; Opset.exact "memref.store";
           Opset.exact "arith.mulf"; Opset.exact "arith.addf";
           Opset.exact "arith.constant";
         ]
       run)
