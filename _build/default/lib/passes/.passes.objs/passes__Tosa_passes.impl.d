lib/passes/tosa_passes.ml: Arith Attr Builder Dialects Dutil Ir Ircore Linalg List Opset Option Pass Rewriter Tosa Typ Util
