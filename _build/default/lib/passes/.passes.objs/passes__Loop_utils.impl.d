lib/passes/loop_utils.ml: Arith Array Builder Context Dialects Dutil Fmt Func Hashtbl Ir Ircore List Memref Option Result Rewriter Scf Typ Vector
