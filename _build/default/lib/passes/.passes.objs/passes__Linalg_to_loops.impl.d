lib/passes/linalg_to_loops.ml: Arith Builder Diag Dialects Dutil Ir Ircore Linalg List Memref Opset Pass Rewriter Scf Typ
