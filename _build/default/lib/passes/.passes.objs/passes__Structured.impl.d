lib/passes/structured.ml: Builder Dialects Dutil Fmt Fun Func Ir Ircore Linalg Linalg_to_loops List Memref Option Result Rewriter Scf Typ
