lib/passes/transforms.ml: Arith Attr Context Dialects Dominance Dutil Func Greedy Hashtbl Ir Ircore List Loop_utils Opset Pass Pattern Rewriter Scf Symbol
