lib/passes/conversions.ml: Affine Affine_ops Arith Array Attr Builder Builtin Cf Diag Dialects Dutil Func Ir Ircore List Llvm Memref Opset Option Pass Result Rewriter Scf Symbol Typ
