lib/passes/conversions.ml: Affine Affine_ops Arith Array Attr Builder Builtin Cf Dialects Dutil Fmt Func Ir Ircore List Llvm Memref Opset Option Pass Result Rewriter Scf Symbol Typ
