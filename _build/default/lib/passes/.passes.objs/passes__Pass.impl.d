lib/passes/pass.ml: Context Fmt Hashtbl Ir Ircore List Opset String Symbol Unix Verifier
