lib/passes/pass.ml: Context Diag Fmt Fun Hashtbl Ir Ircore Json List Opset Option Printer Printf Stdlib String Symbol Trace Unix Verifier
