lib/passes/inline.ml: Attr Builder Dialects Func Hashtbl Ir Ircore List Opset Pass Rewriter Symbol
