lib/passes/register_all.ml: Conversions Inline Linalg_to_loops Tosa_passes Transforms
