(** Passes and the pass manager.

    A pass is a named IR transformation with declared pre-/post-conditions
    (the op kinds it consumes and introduces — Section 3.3 of the paper).
    The registry makes passes available both to classic pass-manager
    pipelines and to [transform.apply_registered_pass]. *)

open Ir

type t = {
  name : string;
  summary : string;
  pre : Opset.t;  (** op kinds consumed/removed by this pass *)
  post : Opset.t;  (** op kinds (potentially) introduced by this pass *)
  run : Context.t -> Ircore.op -> (unit, string) result;
      (** runs on any op (module or function); must be idempotent on IR that
          contains none of [pre] *)
}

let make ?(summary = "") ?(pre = []) ?(post = []) ~name run =
  { name; summary; pre; post; run }

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

let registry : (string, t) Hashtbl.t = Hashtbl.create 32

let register p =
  if Hashtbl.mem registry p.name then
    invalid_arg (Fmt.str "pass %s already registered" p.name);
  Hashtbl.replace registry p.name p

let lookup name = Hashtbl.find_opt registry name

let lookup_exn name =
  match lookup name with
  | Some p -> p
  | None -> invalid_arg (Fmt.str "unknown pass %s" name)

let all_registered () =
  Hashtbl.fold (fun _ p acc -> p :: acc) registry []
  |> List.sort (fun a b -> compare a.name b.name)

(* ------------------------------------------------------------------ *)
(* Pass manager                                                        *)
(* ------------------------------------------------------------------ *)

type timing = { t_pass : string; t_seconds : float }

type run_result = {
  timings : timing list;
  total_seconds : float;
}

exception Pass_error of string * string  (** pass name, message *)

(** Run a pipeline of passes over [op], timing each pass. Raises
    {!Pass_error} on the first failing pass. *)
let run_pipeline ?(verify_each = false) ctx passes op =
  let t_start = Unix.gettimeofday () in
  let timings =
    List.map
      (fun p ->
        let t0 = Unix.gettimeofday () in
        (match p.run ctx op with
        | Ok () -> ()
        | Error msg -> raise (Pass_error (p.name, msg)));
        if verify_each then begin
          match Verifier.verify ctx op with
          | Ok () -> ()
          | Error diags ->
            raise
              (Pass_error
                 ( p.name,
                   Fmt.str "verification failed after pass: %a"
                     (Fmt.list ~sep:Fmt.comma Verifier.pp_diagnostic)
                     diags ))
        end;
        { t_pass = p.name; t_seconds = Unix.gettimeofday () -. t0 })
      passes
  in
  { timings; total_seconds = Unix.gettimeofday () -. t_start }

(** Parse a comma-separated pipeline string, e.g.
    ["convert-scf-to-cf,convert-arith-to-llvm"]. *)
let parse_pipeline str =
  String.split_on_char ',' str
  |> List.map String.trim
  |> List.filter (fun s -> s <> "")
  |> List.map (fun name ->
         match lookup name with
         | Some p -> Ok p
         | None -> Error (Fmt.str "unknown pass '%s'" name))
  |> List.fold_left
       (fun acc r ->
         match (acc, r) with
         | Ok ps, Ok p -> Ok (ps @ [ p ])
         | Error e, _ -> Error e
         | _, Error e -> Error e)
       (Ok [])

(* ------------------------------------------------------------------ *)
(* Helpers for writing conversion passes                               *)
(* ------------------------------------------------------------------ *)

(** Apply [rewrite] to every op named [op_name] in the subtree (snapshot
    first, so rewrites may erase the ops). *)
let for_each_op ~op_name root f =
  List.iter f (Symbol.collect_ops ~op_name root)

(** Apply [f] to every op satisfying [p]. *)
let for_each ~p root f = List.iter f (Symbol.collect ~f:p root)

let ops_of_dialect root dialect =
  Symbol.collect root ~f:(fun op -> Ircore.op_dialect op = dialect)
