lib/workloads/llm.ml: Attr Builtin Dialects Dutil Func Ir Ircore Rewriter Shlo Symbol Typ
