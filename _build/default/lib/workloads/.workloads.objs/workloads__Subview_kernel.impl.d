lib/workloads/subview_kernel.ml: Attr Builtin Dialects Dutil Func Ir Ircore Memref Rewriter Scf Typ
