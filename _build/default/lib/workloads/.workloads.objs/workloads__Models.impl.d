lib/workloads/models.ml: Attr Builtin Dialects Dutil Func Ir Ircore Tosa Typ
