lib/workloads/matmul.ml: Arith Array Builtin Dialects Dutil Float Func Interp Ir Ircore Linalg Memref Scf Typ
