(** The StableHLO-like LLM block of Case Study 3: a transformer layer whose
    graph contains the motifs targeted by the Enzyme-style peephole pattern
    set — zero-padding followed by additions, transposes feeding matrix
    multiplications, and reshape/transpose chains feeding full reductions. *)

open Ir
open Dialects

let seq = 128
let dmodel = 256

let tv rows cols = Typ.tensor (Typ.static_dims [ rows; cols ]) Typ.f32
let tx = tv seq dmodel

let zero rw typ = Shlo.constant rw ~typ (Attr.Float (0.0, Typ.f32))
let weight rw typ = Shlo.constant rw ~typ (Attr.Dense_float ([ 0.25 ], typ))

(** One attention + FFN block with the pattern-relevant motifs. *)
let block rw x =
  (* motif 1: pad with zeros then add (target of add_of_zero_pad) *)
  let zpad = zero rw Typ.f32 in
  let padded =
    Shlo.pad rw x ~pad_value:zpad ~low:[ 0; 0 ] ~high:[ 0; 0 ] ~result_typ:tx
  in
  let x = Shlo.add rw padded x in
  (* motif 2: transposed weight into matmul (target of matmul_of_transpose) *)
  let wq = weight rw (tv dmodel dmodel) in
  let wq_t =
    Shlo.transpose rw wq ~permutation:[ 1; 0 ] ~result_typ:(tv dmodel dmodel)
  in
  let q = Shlo.dot_general rw x wq_t ~result_typ:tx in
  let wk = weight rw (tv dmodel dmodel) in
  let k = Shlo.dot_general rw x wk ~result_typ:tx in
  let kt = Shlo.transpose rw k ~permutation:[ 1; 0 ] ~result_typ:(tv dmodel seq) in
  let scores = Shlo.dot_general rw q kt ~result_typ:(tv seq seq) in
  (* motif 3: negate of transpose (target of negate_of_transpose) *)
  let neg_mask =
    Shlo.unary rw Shlo.negate_op
      (Shlo.transpose rw scores ~permutation:[ 1; 0 ] ~result_typ:(tv seq seq))
  in
  let masked = Shlo.add rw scores neg_mask in
  (* softmax-ish *)
  let ex = Shlo.unary rw Shlo.exp_op masked in
  let z = zero rw Typ.f32 in
  let denom =
    Shlo.reduce rw ex ~init:z ~dimensions:[ 1 ] ~kind:"add"
      ~result_typ:(tv seq 1)
  in
  let db =
    Rewriter.build1 rw ~operands:[ denom ] ~result_types:[ tv seq seq ]
      Shlo.broadcast_op
  in
  let probs = Shlo.binary rw Shlo.divide_op ex db in
  let wv = weight rw (tv dmodel dmodel) in
  let v = Shlo.dot_general rw x wv ~result_typ:tx in
  let ctx_v = Shlo.dot_general rw probs v ~result_typ:tx in
  (* FFN activation chain — the elementwise producer cluster *)
  let w1 = weight rw (tv dmodel dmodel) in
  let h = Shlo.dot_general rw ctx_v w1 ~result_typ:tx in
  let act = Shlo.unary rw Shlo.tanh_op h in
  let gated = Shlo.multiply rw act x in
  let summed = Shlo.add rw gated x in
  (* motif 4: reshape + transpose feeding a FULL reduction at the end of the
     elementwise chain — folding them away (work reduction!) lets the fusion
     heuristic absorb the reduction into the oversized elementwise cluster *)
  let resh = Shlo.reshape rw summed ~result_typ:(tv dmodel seq) in
  let trans = Shlo.transpose rw resh ~permutation:[ 1; 0 ] ~result_typ:tx in
  let z2 = zero rw Typ.f32 in
  let stat =
    Shlo.reduce rw trans ~init:z2 ~dimensions:[ 0; 1 ] ~kind:"add"
      ~result_typ:(tv 1 1)
  in
  let statb =
    Rewriter.build1 rw ~operands:[ stat ] ~result_types:[ tx ]
      Shlo.broadcast_op
  in
  let scaled = Shlo.multiply rw summed statb in
  Shlo.add rw scaled x

(** Build an LLM made of [layers] blocks. *)
let build ?(layers = 8) () =
  let md = Builtin.create_module () in
  let fop, entry =
    Func.create ~name:"llm" ~arg_types:[ tx ] ~result_types:[ tx ] ()
  in
  Ircore.insert_at_end (Builtin.body_block md) fop;
  let rw = Dutil.rw_at_end entry in
  let x = ref (Ircore.block_arg entry 0) in
  for _ = 1 to layers do
    x := block rw !x
  done;
  Func.return rw ~operands:[ !x ] ();
  md

let func_of md =
  match Symbol.lookup_in ~table:md "llm" with
  | Some f -> f
  | None -> invalid_arg "llm module without @llm"
