(** The Case-Study-2 payload: a function taking a 2-D memref, creating a 4x4
    rectangular view of part of it, and setting all elements of the view to
    42 — in the static-offset variant that the naive lowering pipeline
    handles, and in the dynamic-offset variant (offset as an extra function
    argument) that exposes the leftover [affine.apply] problem. *)

open Ir
open Dialects

type variant = Static_offset | Dynamic_offset

let build variant =
  let md = Builtin.create_module () in
  let mt =
    (* static shape in the original program; the dynamic-offset variant also
       passes the offset at runtime *)
    match variant with
    | Static_offset -> Typ.memref (Typ.static_dims [ 16; 16 ]) Typ.f32
    | Dynamic_offset -> Typ.memref [ Typ.Dynamic; Typ.Dynamic ] Typ.f32
  in
  let arg_types =
    match variant with
    | Static_offset -> [ mt ]
    | Dynamic_offset -> [ mt; Typ.index ]
  in
  let fop, entry =
    Func.create ~name:"set_view" ~arg_types ~result_types:[] ()
  in
  Ircore.insert_at_end (Builtin.body_block md) fop;
  let rw = Dutil.rw_at_end entry in
  let m = Ircore.block_arg entry 0 in
  let offsets =
    match variant with
    | Static_offset -> [ Memref.Static 2; Memref.Static 2 ]
    | Dynamic_offset ->
      let off = Ircore.block_arg entry 1 in
      [ Memref.Dynamic off; Memref.Dynamic off ]
  in
  let view =
    Memref.subview rw m ~offsets
      ~sizes:[ Memref.Static 4; Memref.Static 4 ]
      ~strides:[ Memref.Static 1; Memref.Static 1 ]
  in
  let c42 = Dutil.const_float rw 42.0 in
  (* scf.forall (%i, %j) in (4, 4) { view[i,j] = 42 } *)
  let body = Ircore.create_block ~args:[ Typ.index; Typ.index ] () in
  let brw = Dutil.rw_at_end body in
  Memref.store brw c42 view
    [ Ircore.block_arg body 0; Ircore.block_arg body 1 ];
  ignore
    (Rewriter.build rw
       ~regions:[ Ircore.region_with_block body ]
       ~attrs:[ ("static_upper_bound", Attr.Int_array [ 4; 4 ]) ]
       Scf.forall_op);
  Func.return rw ();
  md

(** The minimal lowering pipeline of Case Study 2 (passes ①–⑦). *)
let naive_pipeline =
  [
    "convert-scf-to-cf"; "convert-arith-to-llvm"; "convert-cf-to-llvm";
    "convert-func-to-llvm"; "expand-strided-metadata";
    "finalize-memref-to-llvm"; "reconcile-unrealized-casts";
  ]

(** The robust pipeline: [lower-affine] (and a second arith lowering) after
    expand-strided-metadata. *)
let robust_pipeline =
  [
    "convert-scf-to-cf"; "convert-arith-to-llvm"; "convert-cf-to-llvm";
    "convert-func-to-llvm"; "expand-strided-metadata"; "lower-affine";
    "convert-arith-to-llvm"; "finalize-memref-to-llvm";
    "reconcile-unrealized-casts";
  ]
