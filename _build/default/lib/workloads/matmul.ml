(** Matmul workloads: the ResNet-50-layer loop nest of Case Study 4 and the
    batch matmul of Case Study 5, plus helpers to allocate/initialize
    buffers and check results. *)

open Ir
open Dialects

(** Loop order of the generated nest. [Ikj] has the unit-stride dimension
    innermost (vectorizable); [Ijk] is the naive accumulation order used in
    the paper's Figure 7/8 discussion. *)
type order = Ijk | Ikj

(** Build [func @name(%A: memref<MxKxf32>, %B: memref<KxNxf32>,
    %C: memref<MxNxf32>)] computing [C += A*B] with the given loop order.
    Returns the func op. *)
let build_func ?(order = Ijk) ~name ~m ~n ~k () =
  let f32 = Typ.f32 in
  let mt a b = Typ.memref (Typ.static_dims [ a; b ]) f32 in
  let fop, entry =
    Func.create ~name
      ~arg_types:[ mt m k; mt k n; mt m n ]
      ~result_types:[] ()
  in
  let a = Ircore.block_arg entry 0 in
  let b = Ircore.block_arg entry 1 in
  let c = Ircore.block_arg entry 2 in
  let rw = Dutil.rw_at_end entry in
  let zero = Dutil.const_int rw 0 in
  let one = Dutil.const_int rw 1 in
  let cm = Dutil.const_int rw m in
  let cn = Dutil.const_int rw n in
  let ck = Dutil.const_int rw k in
  let body rwk i kv j =
    let av = Memref.load rwk a [ i; kv ] in
    let bv = Memref.load rwk b [ kv; j ] in
    let cv = Memref.load rwk c [ i; j ] in
    let prod = Arith.mulf rwk av bv in
    let sum = Arith.addf rwk cv prod in
    Memref.store rwk sum c [ i; j ]
  in
  (match order with
  | Ijk ->
    ignore
      (Scf.build_for rw ~lb:zero ~ub:cm ~step:one (fun rwi i _ ->
           ignore
             (Scf.build_for rwi ~lb:zero ~ub:cn ~step:one (fun rwj j _ ->
                  ignore
                    (Scf.build_for rwj ~lb:zero ~ub:ck ~step:one
                       (fun rwk kv _ ->
                         body rwk i kv j;
                         []));
                  []));
           []))
  | Ikj ->
    ignore
      (Scf.build_for rw ~lb:zero ~ub:cm ~step:one (fun rwi i _ ->
           ignore
             (Scf.build_for rwi ~lb:zero ~ub:ck ~step:one (fun rwk kv _ ->
                  ignore
                    (Scf.build_for rwk ~lb:zero ~ub:cn ~step:one
                       (fun rwj j _ ->
                         body rwj i kv j;
                         []));
                  []));
           [])));
  Func.return rw ();
  fop

(** Build a module containing the matmul function. *)
let build_module ?order ~m ~n ~k () =
  let md = Builtin.create_module () in
  let f = build_func ?order ~name:"matmul" ~m ~n ~k () in
  Ircore.insert_at_end (Builtin.body_block md) f;
  md

(** The structured-op variant: [func @matmul] containing a single
    [linalg.matmul] on memref arguments (the starting point for
    [transform.structured_*]). *)
let build_linalg_module ~m ~n ~k () =
  let md = Builtin.create_module () in
  let mt a b = Typ.memref (Typ.static_dims [ a; b ]) Typ.f32 in
  let fop, entry =
    Func.create ~name:"matmul"
      ~arg_types:[ mt m k; mt k n; mt m n ]
      ~result_types:[] ()
  in
  Ircore.insert_at_end (Builtin.body_block md) fop;
  let rw = Dutil.rw_at_end entry in
  ignore
    (Linalg.matmul rw
       ~a:(Ircore.block_arg entry 0)
       ~b:(Ircore.block_arg entry 1)
       ~c:(Ircore.block_arg entry 2));
  Func.return rw ();
  md

(* ------------------------------------------------------------------ *)
(* Runtime buffers                                                     *)
(* ------------------------------------------------------------------ *)

(** Deterministic pseudo-random matrix entries. *)
let fill_deterministic (data : float array) ~seed =
  let state = ref (seed land 0x3FFFFFFF) in
  for i = 0 to Array.length data - 1 do
    state := (!state * 1103515245 + 12345) land 0x3FFFFFFF;
    data.(i) <- float_of_int (!state mod 1000) /. 500.0 -. 1.0
  done

let make_matrix machine ~rows ~cols ~seed =
  let data = Array.make (rows * cols) 0.0 in
  fill_deterministic data ~seed;
  let base = Interp.Machine.alloc_address machine (rows * cols * 4) in
  {
    Interp.Rvalue.buf = { Interp.Rvalue.data; base; elt_bytes = 4 };
    offset = 0;
    sizes = [| rows; cols |];
    strides = [| cols; 1 |];
  }

(** Reference matmul on plain arrays: C += A*B. *)
let reference ~m ~n ~k (a : Interp.Rvalue.view) (b : Interp.Rvalue.view)
    (c_init : float array) =
  let out = Array.copy c_init in
  for i = 0 to m - 1 do
    for j = 0 to n - 1 do
      let acc = ref out.((i * n) + j) in
      for p = 0 to k - 1 do
        acc :=
          !acc
          +. Interp.Rvalue.load a [| i; p |] *. Interp.Rvalue.load b [| p; j |]
      done;
      out.((i * n) + j) <- !acc
    done
  done;
  out

let max_abs_diff (x : float array) (y : float array) =
  let d = ref 0.0 in
  Array.iteri (fun i v -> d := Float.max !d (Float.abs (v -. y.(i)))) x;
  !d

(** Execute the module's @matmul on fresh deterministic inputs; returns
    (result C data, machine report). *)
let run_matmul ?(machine = Interp.Machine.create ()) ~ir_ctx ~m ~n ~k module_ =
  let a = make_matrix machine ~rows:m ~cols:k ~seed:17 in
  let b = make_matrix machine ~rows:k ~cols:n ~seed:42 in
  let c = make_matrix machine ~rows:m ~cols:n ~seed:7 in
  let c_init = Array.copy c.Interp.Rvalue.buf.Interp.Rvalue.data in
  let externs = Interp.Extern.default_externs () in
  match
    Interp.Compile.run_function ~machine ~externs ~ir_ctx ~module_
      ~name:"matmul"
      [ Interp.Rvalue.Memref a; Interp.Rvalue.Memref b; Interp.Rvalue.Memref c ]
  with
  | Ok (_, report) ->
    Ok (a, b, c_init, c.Interp.Rvalue.buf.Interp.Rvalue.data, report)
  | Error e -> Error e
