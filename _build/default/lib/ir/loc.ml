(** Source locations attached to operations, mirroring MLIR's [Location]. *)

type t =
  | Unknown
  | File of { file : string; line : int; col : int }
  | Name of string * t  (** a named location wrapping a child location *)
  | Fused of t list

let unknown = Unknown
let file ?(line = 0) ?(col = 0) file = File { file; line; col }
let name ?(child = Unknown) n = Name (n, child)

let rec pp fmt = function
  | Unknown -> Fmt.string fmt "loc(unknown)"
  | File { file; line; col } -> Fmt.pf fmt "loc(%S:%d:%d)" file line col
  | Name (n, Unknown) -> Fmt.pf fmt "loc(%S)" n
  | Name (n, child) -> Fmt.pf fmt "loc(%S at %a)" n pp child
  | Fused locs -> Fmt.pf fmt "loc(fused[%a])" (Util.pp_list pp) locs

let to_string l = Fmt.str "%a" pp l
