(** Sets of operation kinds, the algebra behind pre-/post-conditions of
    transforms (paper Section 3.3, Table 2).

    Elements denote op kinds at three precisions: a whole dialect
    ([{scf.*}]), an exact op ([{scf.for}]), or a *constrained* op refined by
    a named IRDL constraint ([{memref.subview.constr}], Figure 3). Subsumption
    follows precision: [scf.*] covers [scf.for]; [memref.subview] covers
    [memref.subview.constr]; a constrained element covers only itself. *)

type elem =
  | Dialect of string  (** [d.*] *)
  | Exact of string  (** a fully-qualified op name [d.op] *)
  | Constrained of string * string  (** op name, IRDL constraint name *)
  | Interface of string
      (** [interface<name>]: every op implementing the interface — the
          paper's "not list specific operation names … but operation
          interfaces instead" *)

type t = elem list  (** union of elements; order-insensitive *)

let empty : t = []

let dialect d = Dialect d
let exact name = Exact name
let constrained name c = Constrained (name, c)

let interface name = Interface name

let pp_elem fmt = function
  | Dialect d -> Fmt.pf fmt "%s.*" d
  | Exact n -> Fmt.string fmt n
  | Constrained (n, c) -> Fmt.pf fmt "%s.%s" n c
  | Interface i -> Fmt.pf fmt "interface<%s>" i

let pp fmt (s : t) = Fmt.pf fmt "{%a}" (Util.pp_list pp_elem) s

let to_string s = Fmt.str "%a" pp s

(** Does [pattern] subsume [elem]? Symbolically: an [Interface] pattern only
    covers the same interface (resolving which concrete ops implement an
    interface needs a {!Context} and happens in [Irdl.opset_covers_op]). *)
let elem_covers ~pattern elem =
  match (pattern, elem) with
  | Dialect d, Dialect d' -> String.equal d d'
  | Dialect d, Exact n | Dialect d, Constrained (n, _) ->
    String.equal d (Util.dialect_of_op_name n)
  | Dialect _, Interface _ -> false
  | Exact n, Exact n' -> String.equal n n'
  | Exact n, Constrained (n', _) -> String.equal n n'
  | Exact _, (Dialect _ | Interface _) -> false
  | Constrained (n, c), Constrained (n', c') ->
    String.equal n n' && String.equal c c'
  | Constrained _, _ -> false
  | Interface i, Interface i' -> String.equal i i'
  | Interface _, _ -> false

(** Does the set [s] cover [elem]? *)
let covers s elem = List.exists (fun pattern -> elem_covers ~pattern elem) s

(** Does the set [s] cover every element of [s']? *)
let covers_set s s' = List.for_all (covers s) s'

(** Does [s] mention any element also (partially) matched by [s']? Used to
    detect whether a transform's pre-condition can find anything to work on:
    overlap is symmetric-ish subsumption in either direction. *)
let overlaps s s' =
  List.exists
    (fun a ->
      List.exists
        (fun b -> elem_covers ~pattern:a b || elem_covers ~pattern:b a)
        s')
    s

let union (a : t) (b : t) : t =
  List.fold_left (fun acc e -> if List.mem e acc then acc else e :: acc) a b

(** Remove from [s] every element covered by [removed]. Note: removing
    [memref.subview.constr] does *not* remove a plain [memref.subview] —
    only the constrained subset is consumed. *)
let remove ~removed (s : t) : t =
  List.filter (fun e -> not (covers removed e)) s

(** Elements of [s] not covered by [allowed]. *)
let leftover ~allowed (s : t) : t =
  List.filter (fun e -> not (covers allowed e)) s

(** Does op [op_name] match the set (ignoring constraints — constraint
    checking needs IRDL and happens dynamically)? *)
let matches_op_name s op_name =
  List.exists
    (fun e ->
      match e with
      | Dialect d -> String.equal d (Util.dialect_of_op_name op_name)
      | Exact n | Constrained (n, _) -> String.equal n op_name
      | Interface _ -> false (* needs a context; see Irdl.opset_covers_op *))
    s

(* ---------------------------------------------------------------- *)
(* Parsing: "{scf.*, cf.branch, memref.subview.constr}"              *)
(* ---------------------------------------------------------------- *)

let parse_elem str =
  let str = String.trim str in
  if
    String.length str > 11
    && String.sub str 0 10 = "interface<"
    && str.[String.length str - 1] = '>'
  then Interface (String.sub str 10 (String.length str - 11))
  else if String.length str > 2 && String.sub str (String.length str - 2) 2 = ".*"
  then Dialect (String.sub str 0 (String.length str - 2))
  else if
    String.length str > 7
    && String.sub str (String.length str - 7) 7 = ".constr"
  then Constrained (String.sub str 0 (String.length str - 7), "constr")
  else Exact str

let parse str : t =
  let str = String.trim str in
  let str =
    if String.length str >= 2 && str.[0] = '{' then
      String.sub str 1 (String.length str - 2)
    else str
  in
  if String.trim str = "" then []
  else String.split_on_char ',' str |> List.map parse_elem

(** The op-kind set actually present in a payload subtree. *)
let of_payload root =
  let seen = Hashtbl.create 32 in
  Ircore.walk_op root ~pre:(fun op ->
      Hashtbl.replace seen op.Ircore.op_name ());
  Hashtbl.fold (fun name () acc -> Exact name :: acc) seen []
  |> List.sort compare
