(** Greedy pattern application driver: applies a set of rewrite patterns to
    a payload subtree until fixpoint, folding constants and eliminating dead
    pure ops along the way — MLIR's [applyPatternsAndFoldGreedily]. *)

type config = {
  max_iterations : int;
  fold : bool;  (** use registered {!Context.folder} hooks *)
  remove_dead : bool;  (** erase pure ops with no uses *)
  materialize_constant :
    (Rewriter.t -> Attr.t -> Typ.t -> Ircore.value option) option;
      (** hook to build a constant op for folded results *)
}

let default_config =
  {
    max_iterations = 10;
    fold = true;
    remove_dead = true;
    materialize_constant = None;
  }

type stats = {
  mutable rewrites : int;
  mutable folds : int;
  mutable dce : int;
  mutable iterations : int;
}

(** Attribute of a constant-like op, if any. Convention: constant ops carry
    their value in the ["value"] attribute. *)
let constant_value ctx (op : Ircore.op) =
  if Context.op_has_trait ctx op Context.Constant_like then
    Ircore.attr op "value"
  else None

let operand_constants ctx (op : Ircore.op) =
  List.map
    (fun v ->
      match Ircore.defining_op v with
      | Some d -> constant_value ctx d
      | None -> None)
    (Ircore.operands op)

(** Try to constant-fold [op] in place; returns true on success. *)
let try_fold ctx rewriter config (op : Ircore.op) =
  match (Context.interface ctx op.Ircore.op_name Context.folder_key,
         config.materialize_constant) with
  | Some { Context.fold }, Some materialize -> (
    match fold op (operand_constants ctx op) with
    | None -> false
    | Some result_attrs ->
      let result_types = List.map Ircore.value_typ (Ircore.results op) in
      Rewriter.set_ip rewriter (Builder.Before op);
      let values =
        List.map2
          (fun attr t -> materialize rewriter attr t)
          result_attrs result_types
      in
      if List.for_all Option.is_some values then begin
        Rewriter.replace_op rewriter op ~with_:(List.map Option.get values);
        true
      end
      else false)
  | _ -> false

let is_trivially_dead ctx (op : Ircore.op) =
  Context.is_pure ctx op
  && (not (Context.op_has_trait ctx op Context.Terminator))
  && List.for_all (fun r -> not (Ircore.has_uses r)) (Ircore.results op)

(** Apply [patterns] greedily to the subtree rooted at [root] (the root op
    itself is not rewritten). Returns [true] if the IR converged within
    [config.max_iterations] sweeps. *)
let apply ?(config = default_config) ?stats ?rewriter ctx ~patterns root =
  let patterns =
    List.stable_sort (fun a b -> compare b.Pattern.benefit a.Pattern.benefit) patterns
  in
  let stats =
    match stats with
    | Some s -> s
    | None -> { rewrites = 0; folds = 0; dce = 0; iterations = 0 }
  in
  let rewriter =
    match rewriter with Some rw -> rw | None -> Rewriter.create ()
  in
  let erased : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  (* track erasure so stale worklist entries are skipped *)
  Rewriter.add_listener rewriter
    {
      Rewriter.null_listener with
      Rewriter.on_erased = (fun op -> Hashtbl.replace erased op.Ircore.op_id ());
      on_replaced = (fun op _ -> Hashtbl.replace erased op.Ircore.op_id ());
    };
  let changed_overall = ref true in
  let iterations = ref 0 in
  while !changed_overall && !iterations < config.max_iterations do
    incr iterations;
    changed_overall := false;
    (* collect the current ops in post-order *)
    let worklist = ref [] in
    List.iter
      (fun r ->
        List.iter
          (fun b ->
            List.iter
              (fun op ->
                Ircore.walk_op op ~post:(fun o -> worklist := o :: !worklist))
              (Ircore.block_ops b))
          (Ircore.region_blocks r))
      root.Ircore.regions;
    let worklist = List.rev !worklist in
    List.iter
      (fun op ->
        if not (Hashtbl.mem erased op.Ircore.op_id) then begin
          if config.remove_dead && is_trivially_dead ctx op then begin
            Rewriter.erase_op rewriter op;
            stats.dce <- stats.dce + 1;
            changed_overall := true
          end
          else if config.fold && try_fold ctx rewriter config op then begin
            stats.folds <- stats.folds + 1;
            changed_overall := true
          end
          else
            let rec try_patterns = function
              | [] -> ()
              | p :: rest ->
                if Pattern.applicable p op then begin
                  Rewriter.set_ip rewriter (Builder.Before op);
                  if p.Pattern.rewrite rewriter op then begin
                    stats.rewrites <- stats.rewrites + 1;
                    changed_overall := true
                  end
                  else try_patterns rest
                end
                else try_patterns rest
            in
            try_patterns patterns
        end)
      worklist
  done;
  stats.iterations <- !iterations;
  let converged = not !changed_overall in
  (* report through the ambient trace channel (no-op when not tracing) *)
  Trace.record
    (Trace.Greedy
       {
         gr_root = root.Ircore.op_name;
         gr_rewrites = stats.rewrites;
         gr_folds = stats.folds;
         gr_dce = stats.dce;
         gr_iterations = stats.iterations;
         gr_converged = converged;
       });
  converged
