(** Insertion-point based IR construction, mirroring MLIR's [OpBuilder]. *)

type ip =
  | Detached  (** builder creates ops without inserting them *)
  | At_end of Ircore.block
  | At_start of Ircore.block
  | Before of Ircore.op
  | After of Ircore.op

type t = { mutable ip : ip }

let create ?(ip = Detached) () = { ip }
let at_end b = { ip = At_end b }
let at_start b = { ip = At_start b }
let before op = { ip = Before op }
let after op = { ip = After op }

let set_ip t ip = t.ip <- ip
let ip t = t.ip

let insert t op =
  (match t.ip with
  | Detached -> ()
  | At_end b -> Ircore.insert_at_end b op
  | At_start b -> Ircore.insert_at_start b op
  | Before anchor -> Ircore.insert_before ~anchor op
  | After anchor ->
    Ircore.insert_after ~anchor op;
    (* keep building after the op we just created *)
    t.ip <- After op);
  op

(** Create an op and insert it at the current insertion point. *)
let build t ?operands ?result_types ?attrs ?regions ?successors ?loc name =
  insert t (Ircore.create ?operands ?result_types ?attrs ?regions ?successors ?loc name)

(** Like {!build} but returns the single result value. *)
let build1 t ?operands ?result_types ?attrs ?regions ?successors ?loc name =
  Ircore.result (build t ?operands ?result_types ?attrs ?regions ?successors ?loc name)

(** Run [f] with the insertion point temporarily set to [ip]. *)
let with_ip t ip f =
  let saved = t.ip in
  t.ip <- ip;
  Fun.protect ~finally:(fun () -> t.ip <- saved) f
