(** The type system: a closed representation of the MLIR builtin types used
    by our dialects, plus an opaque escape hatch for dialect-specific types
    (e.g. [!transform.any_op], [!llvm.ptr]). *)

type float_kind = F16 | BF16 | F32 | F64

(** Dimension of a shaped type: statically known or dynamic ([?]). *)
type dim = Static of int | Dynamic

(** Memref layouts. [Identity] is the default row-major contiguous layout.
    [Strided] mirrors MLIR's [strided<[s0, s1], offset: o>] with possibly
    dynamic entries. [Affine_layout] is the fully general case. *)
type layout =
  | Identity
  | Strided of { offset : dim; strides : dim list }
  | Affine_layout of Affine.map

type t =
  | Integer of int  (** [iN]; [i1] is the boolean type *)
  | Index
  | Float of float_kind
  | Vector of int list * t
  | Ranked_tensor of dim list * t
  | Unranked_tensor of t
  | Memref of dim list * t * layout
  | Unranked_memref of t
  | Func of t list * t list
  | Tuple of t list
  | Opaque of string * string  (** [!dialect.body] *)

let i1 = Integer 1
let i8 = Integer 8
let i16 = Integer 16
let i32 = Integer 32
let i64 = Integer 64
let index = Index
let f16 = Float F16
let bf16 = Float BF16
let f32 = Float F32
let f64 = Float F64

let memref ?(layout = Identity) dims elt = Memref (dims, elt, layout)
let tensor dims elt = Ranked_tensor (dims, elt)
let static_dims ns = List.map (fun n -> Static n) ns

(* Transform dialect types are represented as opaque types so that the core
   IR does not depend on the transform library. *)
let transform_any_op = Opaque ("transform", "any_op")
let transform_param = Opaque ("transform", "param")
let transform_any_value = Opaque ("transform", "any_value")
let transform_op name = Opaque ("transform", Fmt.str "op<%S>" name)
let llvm_ptr = Opaque ("llvm", "ptr")

let is_integer = function Integer _ -> true | _ -> false
let is_float = function Float _ -> true | _ -> false
let is_index = function Index -> true | _ -> false
let is_int_or_index t = is_integer t || is_index t

let is_signless_int_or_float t = is_integer t || is_float t

let is_shaped = function
  | Vector _ | Ranked_tensor _ | Unranked_tensor _ | Memref _
  | Unranked_memref _ ->
    true
  | _ -> false

let element_type = function
  | Vector (_, t)
  | Ranked_tensor (_, t)
  | Unranked_tensor t
  | Memref (_, t, _)
  | Unranked_memref t ->
    Some t
  | _ -> None

let shape = function
  | Ranked_tensor (dims, _) | Memref (dims, _, _) -> Some dims
  | Vector (ns, _) -> Some (List.map (fun n -> Static n) ns)
  | _ -> None

let rank t = Option.map List.length (shape t)

let static_shape t =
  match shape t with
  | None -> None
  | Some dims ->
    let rec go acc = function
      | [] -> Some (List.rev acc)
      | Static n :: rest -> go (n :: acc) rest
      | Dynamic :: _ -> None
    in
    go [] dims

let num_elements t =
  match static_shape t with
  | Some dims -> Some (List.fold_left ( * ) 1 dims)
  | None -> None

let bitwidth = function
  | Integer n -> Some n
  | Index -> Some 64
  | Float F16 | Float BF16 -> Some 16
  | Float F32 -> Some 32
  | Float F64 -> Some 64
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let pp_float_kind fmt = function
  | F16 -> Fmt.string fmt "f16"
  | BF16 -> Fmt.string fmt "bf16"
  | F32 -> Fmt.string fmt "f32"
  | F64 -> Fmt.string fmt "f64"

let pp_dim fmt = function
  | Static n -> Fmt.int fmt n
  | Dynamic -> Fmt.string fmt "?"

let pp_shape_prefix fmt dims =
  List.iter (fun d -> Fmt.pf fmt "%ax" pp_dim d) dims

let rec pp fmt = function
  | Integer n -> Fmt.pf fmt "i%d" n
  | Index -> Fmt.string fmt "index"
  | Float k -> pp_float_kind fmt k
  | Vector (ns, t) ->
    Fmt.pf fmt "vector<%a%a>"
      (fun fmt -> List.iter (Fmt.pf fmt "%dx"))
      ns pp t
  | Ranked_tensor (dims, t) ->
    Fmt.pf fmt "tensor<%a%a>" pp_shape_prefix dims pp t
  | Unranked_tensor t -> Fmt.pf fmt "tensor<*x%a>" pp t
  | Memref (dims, t, layout) -> (
    match layout with
    | Identity -> Fmt.pf fmt "memref<%a%a>" pp_shape_prefix dims pp t
    | Strided { offset; strides } ->
      Fmt.pf fmt "memref<%a%a, strided<[%a], offset: %a>>" pp_shape_prefix
        dims pp t (Util.pp_list pp_dim) strides pp_dim offset
    | Affine_layout m ->
      Fmt.pf fmt "memref<%a%a, affine_map<%a>>" pp_shape_prefix dims pp t
        Affine.pp_map m)
  | Unranked_memref t -> Fmt.pf fmt "memref<*x%a>" pp t
  | Func (ins, outs) ->
    Fmt.pf fmt "(%a) -> " (Util.pp_list pp) ins;
    (match outs with
    | [ (Func _ as o) ] -> Fmt.pf fmt "(%a)" pp o
    | [ o ] -> pp fmt o
    | outs -> Fmt.pf fmt "(%a)" (Util.pp_list pp) outs)
  | Tuple ts -> Fmt.pf fmt "tuple<%a>" (Util.pp_list pp) ts
  | Opaque (dialect, body) ->
    if body = "" then Fmt.pf fmt "!%s" dialect
    else Fmt.pf fmt "!%s.%s" dialect body

let to_string t = Fmt.str "%a" pp t

let equal (a : t) (b : t) = a = b
