(** Recursive-descent parser for the generic MLIR textual format produced by
    {!Printer}. Supports forward references to values (multi-block CFGs) via
    placeholder values that are patched once the definition is seen, and
    forward references to blocks via on-demand block creation. *)

open Lexer

exception Parse_error of string

let fail lx msg =
  let line, col = Lexer.line_col lx (Lexer.token_start lx) in
  raise (Parse_error (Fmt.str "%d:%d: %s" line col msg))

let expect lx tok =
  let got = peek lx in
  if got = tok then advance lx
  else fail lx (Fmt.str "expected %a, got %a" pp_token tok pp_token got)

let expect_ident lx =
  match peek lx with
  | IDENT s ->
    advance lx;
    s
  | t -> fail lx (Fmt.str "expected identifier, got %a" pp_token t)

let expect_int lx =
  match peek lx with
  | INT n ->
    advance lx;
    n
  | MINUS ->
    advance lx;
    (match peek lx with
    | INT n ->
      advance lx;
      -n
    | t -> fail lx (Fmt.str "expected integer, got %a" pp_token t))
  | t -> fail lx (Fmt.str "expected integer, got %a" pp_token t)

(* ---------------------------------------------------------------- *)
(* Scopes                                                            *)
(* ---------------------------------------------------------------- *)

let pending_typ = Typ.Opaque ("__pending__", "")

type scope = {
  defs : (string, Ircore.value array) Hashtbl.t;
  pendings : (string, Ircore.value) Hashtbl.t;
      (** key is "name" or "name#i"; value is the placeholder *)
  blocks : (string, Ircore.block) Hashtbl.t;
  parent : scope option;
}

let new_scope parent =
  {
    defs = Hashtbl.create 16;
    pendings = Hashtbl.create 4;
    blocks = Hashtbl.create 4;
    parent;
  }

let rec lookup_def scope name =
  match Hashtbl.find_opt scope.defs name with
  | Some vs -> Some vs
  | None -> ( match scope.parent with None -> None | Some p -> lookup_def p name)

let make_pending scope key =
  match Hashtbl.find_opt scope.pendings key with
  | Some v -> v
  | None ->
    let op = Ircore.create ~result_types:[ pending_typ ] "__pending__" in
    let v = Ircore.result op in
    Hashtbl.replace scope.pendings key v;
    v

(** Reference to [%name] or [%name#i]. *)
let lookup_value scope name index =
  match lookup_def scope name with
  | Some vs ->
    if index >= Array.length vs then
      raise
        (Parse_error
           (Fmt.str "value group %%%s has %d results, requested #%d" name
              (Array.length vs) index))
    else vs.(index)
  | None ->
    let key = if index = 0 then name else Fmt.str "%s#%d" name index in
    make_pending scope key

let resolve_pending scope key real =
  match Hashtbl.find_opt scope.pendings key with
  | None -> ()
  | Some placeholder ->
    placeholder.Ircore.v_typ <- Ircore.value_typ real;
    Ircore.replace_all_uses_with placeholder ~with_:real;
    (match Ircore.defining_op placeholder with
    | Some op -> Ircore.erase_unchecked op
    | None -> ());
    Hashtbl.remove scope.pendings key

let define_values scope name (vs : Ircore.value array) =
  if Hashtbl.mem scope.defs name then
    raise (Parse_error (Fmt.str "redefinition of value %%%s" name));
  Hashtbl.replace scope.defs name vs;
  Array.iteri
    (fun i v ->
      resolve_pending scope (if i = 0 then name else Fmt.str "%s#%d" name i) v;
      if i = 0 then resolve_pending scope (Fmt.str "%s#0" name) v)
    vs

let get_block scope name =
  match Hashtbl.find_opt scope.blocks name with
  | Some b -> b
  | None ->
    let b = Ircore.create_block () in
    Hashtbl.replace scope.blocks name b;
    b

(* ---------------------------------------------------------------- *)
(* Types                                                             *)
(* ---------------------------------------------------------------- *)

let rec parse_type lx : Typ.t =
  match peek lx with
  | LPAREN -> parse_function_type lx
  | IDENT "index" ->
    advance lx;
    Typ.Index
  | IDENT "f16" ->
    advance lx;
    Typ.f16
  | IDENT "bf16" ->
    advance lx;
    Typ.bf16
  | IDENT "f32" ->
    advance lx;
    Typ.f32
  | IDENT "f64" ->
    advance lx;
    Typ.f64
  | IDENT s
    when String.length s > 1
         && s.[0] = 'i'
         && String.for_all (fun c -> c >= '0' && c <= '9')
              (String.sub s 1 (String.length s - 1)) ->
    advance lx;
    Typ.Integer (int_of_string (String.sub s 1 (String.length s - 1)))
  | IDENT "vector" ->
    advance lx;
    expect lx LT;
    let dims =
      match raw_dimension_list lx with
      | `Ranked dims ->
        List.map
          (function
            | Typ.Static n -> n
            | Typ.Dynamic -> fail lx "vector dims must be static")
          dims
      | `Unranked -> fail lx "vector cannot be unranked"
    in
    let elt = parse_type lx in
    expect lx GT;
    Typ.Vector (dims, elt)
  | IDENT "tensor" ->
    advance lx;
    expect lx LT;
    let dims = raw_dimension_list lx in
    let elt = parse_type lx in
    expect lx GT;
    (match dims with
    | `Ranked dims -> Typ.Ranked_tensor (dims, elt)
    | `Unranked -> Typ.Unranked_tensor elt)
  | IDENT "memref" ->
    advance lx;
    expect lx LT;
    let dims = raw_dimension_list lx in
    let elt = parse_type lx in
    let layout =
      if peek lx = COMMA then begin
        advance lx;
        parse_layout lx
      end
      else Typ.Identity
    in
    expect lx GT;
    (match dims with
    | `Ranked dims -> Typ.Memref (dims, elt, layout)
    | `Unranked -> Typ.Unranked_memref elt)
  | IDENT "tuple" ->
    advance lx;
    expect lx LT;
    let rec go acc =
      let t = parse_type lx in
      if peek lx = COMMA then begin
        advance lx;
        go (t :: acc)
      end
      else List.rev (t :: acc)
    in
    let ts = if peek lx = GT then [] else go [] in
    expect lx GT;
    Typ.Tuple ts
  | BANG ->
    advance lx;
    let name = expect_ident lx in
    let dialect, body =
      match String.index_opt name '.' with
      | None -> (name, "")
      | Some i ->
        (String.sub name 0 i, String.sub name (i + 1) (String.length name - i - 1))
    in
    (* optional <...> raw body, balanced *)
    if peek lx = LT then begin
      let buf = Buffer.create 16 in
      Buffer.add_string buf body;
      advance lx;
      Buffer.add_char buf '<';
      Lexer.enter_raw lx;
      let depth = ref 1 in
      while !depth > 0 do
        match Lexer.raw_peek_char lx with
        | None -> fail lx "unterminated opaque type body"
        | Some '<' ->
          incr depth;
          Buffer.add_char buf '<';
          Lexer.raw_advance_char lx
        | Some '>' ->
          decr depth;
          if !depth > 0 then Buffer.add_char buf '>';
          Lexer.raw_advance_char lx
        | Some c ->
          Buffer.add_char buf c;
          Lexer.raw_advance_char lx
      done;
      Buffer.add_char buf '>';
      Typ.Opaque (dialect, Buffer.contents buf)
    end
    else Typ.Opaque (dialect, body)
  | t -> fail lx (Fmt.str "expected type, got %a" pp_token t)

and parse_function_type lx =
  expect lx LPAREN;
  let ins = parse_type_list_until_rparen lx in
  expect lx ARROW;
  let outs =
    if peek lx = LPAREN then begin
      advance lx;
      parse_type_list_until_rparen lx
    end
    else [ parse_type lx ]
  in
  Typ.Func (ins, outs)

and parse_type_list_until_rparen lx =
  if peek lx = RPAREN then begin
    advance lx;
    []
  end
  else begin
    let rec go acc =
      let t = parse_type lx in
      if peek lx = COMMA then begin
        advance lx;
        go (t :: acc)
      end
      else begin
        expect lx RPAREN;
        List.rev (t :: acc)
      end
    in
    go []
  end

and parse_layout lx =
  match peek lx with
  | IDENT "strided" ->
    advance lx;
    expect lx LT;
    expect lx LBRACKET;
    let parse_sdim () =
      match peek lx with
      | QUESTION ->
        advance lx;
        Typ.Dynamic
      | _ -> Typ.Static (expect_int lx)
    in
    let rec go acc =
      if peek lx = RBRACKET then begin
        advance lx;
        List.rev acc
      end
      else begin
        let d = parse_sdim () in
        if peek lx = COMMA then advance lx;
        go (d :: acc)
      end
    in
    let strides = go [] in
    let offset =
      if peek lx = COMMA then begin
        advance lx;
        (match peek lx with
        | IDENT "offset" ->
          advance lx;
          expect lx COLON
        | _ -> fail lx "expected offset");
        parse_sdim ()
      end
      else Typ.Static 0
    in
    expect lx GT;
    Typ.Strided { offset; strides }
  | IDENT "affine_map" ->
    advance lx;
    expect lx LT;
    let m = parse_affine_map lx in
    expect lx GT;
    Typ.Affine_layout m
  | t -> fail lx (Fmt.str "expected layout, got %a" pp_token t)

(* ---------------------------------------------------------------- *)
(* Affine maps                                                       *)
(* ---------------------------------------------------------------- *)

and parse_affine_map lx : Affine.map =
  expect lx LPAREN;
  let parse_name_list close =
    let rec go acc =
      if peek lx = close then begin
        advance lx;
        List.rev acc
      end
      else begin
        let n = expect_ident lx in
        if peek lx = COMMA then advance lx;
        go (n :: acc)
      end
    in
    go []
  in
  let dims = parse_name_list RPAREN in
  let syms =
    if peek lx = LBRACKET then begin
      advance lx;
      parse_name_list RBRACKET
    end
    else []
  in
  expect lx ARROW;
  expect lx LPAREN;
  let env name =
    match List.find_index (String.equal name) dims with
    | Some i -> Affine.Dim i
    | None -> (
      match List.find_index (String.equal name) syms with
      | Some i -> Affine.Sym i
      | None -> fail lx (Fmt.str "unknown affine identifier %s" name))
  in
  let rec go acc =
    if peek lx = RPAREN then begin
      advance lx;
      List.rev acc
    end
    else begin
      let e = parse_affine_expr lx env in
      if peek lx = COMMA then advance lx;
      go (e :: acc)
    end
  in
  let exprs = go [] in
  Affine.make_map ~num_dims:(List.length dims) ~num_syms:(List.length syms) exprs

and parse_affine_expr lx env : Affine.expr =
  let rec expr () =
    let lhs = term () in
    let rec go lhs =
      match peek lx with
      | PLUS ->
        advance lx;
        go (Affine.Add (lhs, term ()))
      | MINUS ->
        advance lx;
        go (Affine.Add (lhs, Affine.Mul (term (), Affine.Const (-1))))
      | _ -> lhs
    in
    go lhs
  and term () =
    let lhs = factor () in
    let rec go lhs =
      match peek lx with
      | STAR ->
        advance lx;
        go (Affine.Mul (lhs, factor ()))
      | IDENT "mod" ->
        advance lx;
        go (Affine.Mod (lhs, factor ()))
      | IDENT "floordiv" ->
        advance lx;
        go (Affine.Floordiv (lhs, factor ()))
      | IDENT "ceildiv" ->
        advance lx;
        go (Affine.Ceildiv (lhs, factor ()))
      | _ -> lhs
    in
    go lhs
  and factor () =
    match peek lx with
    | INT n ->
      advance lx;
      Affine.Const n
    | MINUS ->
      advance lx;
      Affine.Mul (factor (), Affine.Const (-1))
    | LPAREN ->
      advance lx;
      let e = expr () in
      expect lx RPAREN;
      e
    | IDENT name ->
      advance lx;
      env name
    | t -> fail lx (Fmt.str "expected affine expression, got %a" pp_token t)
  in
  Affine.simplify (expr ())

(* ---------------------------------------------------------------- *)
(* Attributes                                                        *)
(* ---------------------------------------------------------------- *)

let rec parse_attr lx : Attr.t =
  match peek lx with
  | INT n ->
    advance lx;
    parse_int_suffix lx n
  | FLOATLIT f ->
    advance lx;
    parse_float_suffix lx f
  | MINUS ->
    advance lx;
    (match peek lx with
    | INT n ->
      advance lx;
      parse_int_suffix lx (-n)
    | FLOATLIT f ->
      advance lx;
      parse_float_suffix lx (-.f)
    | t -> fail lx (Fmt.str "expected number after '-', got %a" pp_token t))
  | STRING s ->
    advance lx;
    Attr.String s
  | IDENT "true" ->
    advance lx;
    Attr.Bool true
  | IDENT "false" ->
    advance lx;
    Attr.Bool false
  | IDENT "unit" ->
    advance lx;
    Attr.Unit
  | IDENT "dense" ->
    advance lx;
    expect lx LT;
    let neg_int () =
      match peek lx with
      | MINUS ->
        advance lx;
        (match next lx with
        | INT n -> `I (-n)
        | FLOATLIT f -> `F (-.f)
        | t -> raise (Parse_error (Fmt.str "bad dense element %a" pp_token t)))
      | INT n ->
        advance lx;
        `I n
      | FLOATLIT f ->
        advance lx;
        `F f
      | t -> fail lx (Fmt.str "bad dense element %a" pp_token t)
    in
    let elems =
      if peek lx = LBRACKET then begin
        advance lx;
        let rec go acc =
          if peek lx = RBRACKET then begin
            advance lx;
            List.rev acc
          end
          else begin
            let e = neg_int () in
            if peek lx = COMMA then advance lx;
            go (e :: acc)
          end
        in
        go []
      end
      else [ neg_int () ]
    in
    expect lx GT;
    expect lx COLON;
    let t = parse_type lx in
    if List.exists (function `F _ -> true | `I _ -> false) elems then
      Attr.Dense_float
        (List.map (function `F f -> f | `I n -> float_of_int n) elems, t)
    else Attr.Dense_int (List.map (function `I n -> n | `F _ -> 0) elems, t)
  | IDENT "array" ->
    advance lx;
    expect lx LT;
    let _elt = expect_ident lx in
    let xs =
      if peek lx = COLON then begin
        advance lx;
        let rec go acc =
          if peek lx = GT then List.rev acc
          else begin
            let n = expect_int lx in
            if peek lx = COMMA then advance lx;
            go (n :: acc)
          end
        in
        go []
      end
      else []
    in
    expect lx GT;
    Attr.Int_array xs
  | IDENT "affine_map" ->
    advance lx;
    expect lx LT;
    let m = parse_affine_map lx in
    expect lx GT;
    Attr.Affine_map m
  | AT_IDENT root ->
    advance lx;
    let rec go acc =
      if peek lx = DCOLON then begin
        advance lx;
        match next lx with
        | AT_IDENT n -> go (n :: acc)
        | t -> fail lx (Fmt.str "expected @symbol after ::, got %a" pp_token t)
      end
      else List.rev acc
    in
    Attr.Symbol_ref (root, go [])
  | LBRACKET ->
    advance lx;
    let rec go acc =
      if peek lx = RBRACKET then begin
        advance lx;
        List.rev acc
      end
      else begin
        let a = parse_attr lx in
        if peek lx = COMMA then advance lx;
        go (a :: acc)
      end
    in
    Attr.Array (go [])
  | LBRACE -> Attr.Dict (parse_attr_dict lx)
  | _ -> Attr.Type (parse_type lx)

and parse_int_suffix lx n =
  if peek lx = COLON then begin
    advance lx;
    let t = parse_type lx in
    Attr.Int (n, t)
  end
  else Attr.Int (n, Typ.i64)

and parse_float_suffix lx f =
  if peek lx = COLON then begin
    advance lx;
    let t = parse_type lx in
    Attr.Float (f, t)
  end
  else Attr.Float (f, Typ.f64)

and parse_attr_dict lx : Attr.dict =
  expect lx LBRACE;
  let rec go acc =
    if peek lx = RBRACE then begin
      advance lx;
      List.rev acc
    end
    else begin
      let key =
        match next lx with
        | IDENT s -> s
        | STRING s -> s
        | t -> fail lx (Fmt.str "expected attribute name, got %a" pp_token t)
      in
      let v =
        if peek lx = EQUAL then begin
          advance lx;
          parse_attr lx
        end
        else Attr.Unit
      in
      if peek lx = COMMA then advance lx;
      go ((key, v) :: acc)
    end
  in
  go []

(* ---------------------------------------------------------------- *)
(* Operations, blocks, regions                                       *)
(* ---------------------------------------------------------------- *)

type result_spec = { rs_name : string; rs_count : int }

(** [loc(...)] suffix: files, names (optionally nested), fusions. *)
let rec parse_loc lx : Loc.t =
  (match next lx with
  | IDENT "loc" -> ()
  | t -> fail lx (Fmt.str "expected loc, got %a" pp_token t));
  expect lx LPAREN;
  let l = parse_loc_body lx in
  expect lx RPAREN;
  l

and parse_loc_body lx : Loc.t =
  match peek lx with
  | IDENT "unknown" ->
    advance lx;
    Loc.Unknown
  | IDENT "fused" ->
    advance lx;
    expect lx LBRACKET;
    let rec go acc =
      if peek lx = RBRACKET then begin
        advance lx;
        List.rev acc
      end
      else begin
        let l = parse_loc lx in
        if peek lx = COMMA then advance lx;
        go (l :: acc)
      end
    in
    Loc.Fused (go [])
  | STRING s -> (
    advance lx;
    match peek lx with
    | COLON ->
      advance lx;
      let line = expect_int lx in
      expect lx COLON;
      let col = expect_int lx in
      Loc.File { file = s; line; col }
    | IDENT "at" ->
      advance lx;
      Loc.Name (s, parse_loc lx)
    | _ -> Loc.Name (s, Loc.Unknown))
  | t -> fail lx (Fmt.str "expected location, got %a" pp_token t)

let parse_operand_ref lx scope =
  match next lx with
  | PCT_IDENT name ->
    (* the lexer folds "#": %x#1 lexes as PCT_IDENT "x" HASH? No: '#' is not
       an id char start... '#' is not in is_id_char, so %x#1 -> PCT_IDENT "x",
       HASH, INT 1. *)
    if peek lx = HASH then begin
      advance lx;
      let i = expect_int lx in
      lookup_value scope name i
    end
    else lookup_value scope name 0
  | t -> fail lx (Fmt.str "expected %%operand, got %a" pp_token t)

let rec parse_op lx scope : Ircore.op =
  (* optional results *)
  let result_specs =
    if (match peek lx with PCT_IDENT _ -> true | _ -> false) then begin
      let rec go acc =
        match next lx with
        | PCT_IDENT name ->
          let count =
            if peek lx = COLON then begin
              advance lx;
              expect_int lx
            end
            else 1
          in
          let acc = { rs_name = name; rs_count = count } :: acc in
          if peek lx = COMMA then go acc
          else begin
            expect lx EQUAL;
            List.rev acc
          end
        | t -> fail lx (Fmt.str "expected %%result, got %a" pp_token t)
      in
      go []
    end
    else []
  in
  let op_name =
    match next lx with
    | STRING s -> s
    | t -> fail lx (Fmt.str "expected op name string, got %a" pp_token t)
  in
  expect lx LPAREN;
  let operands =
    let rec go acc =
      if peek lx = RPAREN then begin
        advance lx;
        List.rev acc
      end
      else begin
        let v = parse_operand_ref lx scope in
        if peek lx = COMMA then advance lx;
        go (v :: acc)
      end
    in
    go []
  in
  (* successors *)
  let successors =
    if peek lx = LBRACKET then begin
      advance lx;
      let rec go acc =
        if peek lx = RBRACKET then begin
          advance lx;
          List.rev acc
        end
        else begin
          match next lx with
          | CARET_IDENT name ->
            let b = get_block scope name in
            if peek lx = COMMA then advance lx;
            go (b :: acc)
          | t -> fail lx (Fmt.str "expected ^block, got %a" pp_token t)
        end
      in
      go []
    end
    else []
  in
  (* regions *)
  let regions =
    if peek lx = LPAREN then begin
      advance lx;
      let rec go acc =
        let r = parse_region lx scope in
        if peek lx = COMMA then begin
          advance lx;
          go (r :: acc)
        end
        else begin
          expect lx RPAREN;
          List.rev (r :: acc)
        end
      in
      go []
    end
    else []
  in
  (* attributes *)
  let attrs = if peek lx = LBRACE then parse_attr_dict lx else [] in
  (* type signature *)
  expect lx COLON;
  let operand_types, result_types =
    match parse_function_type lx with
    | Typ.Func (ins, outs) -> (ins, outs)
    | _ -> fail lx "expected function type signature"
  in
  if List.length operand_types <> List.length operands then
    fail lx
      (Fmt.str "op %s: %d operands but %d operand types" op_name
         (List.length operands) (List.length operand_types));
  List.iteri
    (fun i v ->
      let t = List.nth operand_types i in
      if Ircore.value_typ v = pending_typ then v.Ircore.v_typ <- t
      else if not (Typ.equal (Ircore.value_typ v) t) then
        fail lx
          (Fmt.str "op %s: operand %d has type %a but signature says %a" op_name
             i Typ.pp (Ircore.value_typ v) Typ.pp t))
    operands;
  (* optional trailing location *)
  let loc =
    match peek lx with
    | IDENT "loc" -> parse_loc lx
    | _ -> Loc.unknown
  in
  let op =
    Ircore.create ~operands ~result_types ~attrs ~regions ~successors ~loc
      op_name
  in
  (* define results *)
  let results = op.Ircore.results in
  let total = List.fold_left (fun a s -> a + s.rs_count) 0 result_specs in
  if result_specs <> [] && total <> Array.length results then
    fail lx
      (Fmt.str "op %s: %d results declared but signature has %d" op_name total
         (Array.length results));
  let idx = ref 0 in
  List.iter
    (fun spec ->
      let vs = Array.sub results !idx spec.rs_count in
      idx := !idx + spec.rs_count;
      define_values scope spec.rs_name vs)
    result_specs;
  op

and parse_region lx outer_scope : Ircore.region =
  expect lx LBRACE;
  let scope = new_scope (Some outer_scope) in
  let region = Ircore.create_region () in
  (* anonymous entry block: ops before any ^label *)
  let parse_block_body block =
    let rec go () =
      match peek lx with
      | RBRACE | CARET_IDENT _ -> ()
      | _ ->
        let op = parse_op lx scope in
        Ircore.insert_at_end block op;
        go ()
    in
    go ()
  in
  (match peek lx with
  | RBRACE -> ()
  | CARET_IDENT _ -> ()
  | _ ->
    let entry = Ircore.create_block () in
    Ircore.append_block region entry;
    parse_block_body entry);
  (* labeled blocks *)
  let rec labeled () =
    match peek lx with
    | CARET_IDENT name ->
      advance lx;
      let block = get_block scope name in
      if Ircore.block_parent block <> None then
        fail lx (Fmt.str "redefinition of block ^%s" name);
      (* block arguments *)
      if peek lx = LPAREN then begin
        advance lx;
        let rec args () =
          if peek lx = RPAREN then advance lx
          else begin
            match next lx with
            | PCT_IDENT an ->
              expect lx COLON;
              let t = parse_type lx in
              let v = Ircore.add_block_arg block t in
              define_values scope an [| v |];
              if peek lx = COMMA then advance lx;
              args ()
            | t -> fail lx (Fmt.str "expected %%arg, got %a" pp_token t)
          end
        in
        args ()
      end;
      expect lx COLON;
      Ircore.append_block region block;
      parse_block_body block;
      labeled ()
    | RBRACE -> advance lx
    | t -> fail lx (Fmt.str "expected block or '}', got %a" pp_token t)
  in
  labeled ();
  (* all pendings of this scope must be resolved *)
  Hashtbl.iter
    (fun key _ ->
      raise (Parse_error (Fmt.str "use of undefined value %%%s" key)))
    scope.pendings;
  (* unplaced forward-referenced blocks are an error *)
  Hashtbl.iter
    (fun name b ->
      if Ircore.block_parent b = None then
        raise (Parse_error (Fmt.str "use of undefined block ^%s" name)))
    scope.blocks;
  region

(* ---------------------------------------------------------------- *)
(* Entry points                                                      *)
(* ---------------------------------------------------------------- *)

(** Parse a sequence of top-level ops. If the input is a single
    [builtin.module], return it; otherwise wrap the ops in a fresh module. *)
let parse_module src : (Ircore.op, string) result =
  let lx = Lexer.create src in
  try
    let scope = new_scope None in
    let rec go acc =
      if peek lx = EOF then List.rev acc else go (parse_op lx scope :: acc)
    in
    let ops = go [] in
    Hashtbl.iter
      (fun key _ ->
        raise (Parse_error (Fmt.str "use of undefined value %%%s" key)))
      scope.pendings;
    match ops with
    | [ op ] when op.Ircore.op_name = "builtin.module" -> Ok op
    | ops ->
      let block = Ircore.create_block () in
      List.iter (Ircore.insert_at_end block) ops;
      let region = Ircore.region_with_block block in
      Ok (Ircore.create ~regions:[ region ] "builtin.module")
  with
  | Parse_error msg -> Error msg
  | Lexer.Error (msg, off) ->
    let line, col = Lexer.line_col lx off in
    Error (Fmt.str "%d:%d: %s" line col msg)

(** Parse a single operation. *)
let parse_op_string src : (Ircore.op, string) result =
  let lx = Lexer.create src in
  try
    let scope = new_scope None in
    let op = parse_op lx scope in
    if peek lx <> EOF then Error "trailing input after operation"
    else Ok op
  with
  | Parse_error msg -> Error msg
  | Lexer.Error (msg, off) ->
    let line, col = Lexer.line_col lx off in
    Error (Fmt.str "%d:%d: %s" line col msg)

let parse_type_string src : (Typ.t, string) result =
  let lx = Lexer.create src in
  try Ok (parse_type lx) with
  | Parse_error msg -> Error msg
  | Lexer.Error (msg, off) ->
    let line, col = Lexer.line_col lx off in
    Error (Fmt.str "%d:%d: %s" line col msg)

let parse_attr_string src : (Attr.t, string) result =
  let lx = Lexer.create src in
  try Ok (parse_attr lx) with
  | Parse_error msg -> Error msg
  | Lexer.Error (msg, off) ->
    let line, col = Lexer.line_col lx off in
    Error (Fmt.str "%d:%d: %s" line col msg)
