(** Symbol table helpers: resolving [@symbol] references inside the nearest
    symbol-table op (typically [builtin.module]). *)

open Ircore

let symbol_name op =
  match attr op "sym_name" with Some (Attr.String s) -> Some s | _ -> None

(** Find the op named [name] among the immediate children of symbol-table op
    [table]. *)
let lookup_in ~table name =
  let found = ref None in
  List.iter
    (fun r ->
      List.iter
        (fun b ->
          List.iter
            (fun child ->
              if !found = None && symbol_name child = Some name then
                found := Some child)
            (block_ops b))
        (region_blocks r))
    table.regions;
  !found

(** Nearest enclosing op with the [Symbol_table] trait. *)
let rec nearest_symbol_table ctx op =
  match parent_op op with
  | None -> if Context.op_has_trait ctx op Context.Symbol_table then Some op else None
  | Some p ->
    if Context.op_has_trait ctx p Context.Symbol_table then Some p
    else nearest_symbol_table ctx p

(** Resolve a symbol reference starting from [from]'s enclosing table. *)
let resolve ctx ~from name =
  match nearest_symbol_table ctx from with
  | None -> None
  | Some table -> lookup_in ~table name

(** All ops in the subtree rooted at [root] named [op_name] (pre-order,
    excluding [root] itself). *)
let collect_ops ~op_name root =
  let out = ref [] in
  walk_op root ~pre:(fun op ->
      if (not (op == root)) && op.op_name = op_name then out := op :: !out);
  List.rev !out

(** All ops in the subtree for which [f] holds (excluding the root). *)
let collect ~f root =
  let out = ref [] in
  walk_op root ~pre:(fun op -> if (not (op == root)) && f op then out := op :: !out);
  List.rev !out
