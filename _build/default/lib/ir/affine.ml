(** Affine expressions and maps, the slice of MLIR's affine infrastructure
    needed by the [affine] dialect, memref strided layouts and the
    [expand-strided-metadata] lowering. *)

type expr =
  | Dim of int  (** [d<i>] *)
  | Sym of int  (** [s<i>] *)
  | Const of int
  | Add of expr * expr
  | Mul of expr * expr
  | Mod of expr * expr
  | Floordiv of expr * expr
  | Ceildiv of expr * expr

type map = { num_dims : int; num_syms : int; exprs : expr list }

let dim i = Dim i
let sym i = Sym i
let const c = Const c

(* ------------------------------------------------------------------ *)
(* Simplification                                                      *)
(* ------------------------------------------------------------------ *)

let rec simplify e =
  match e with
  | Dim _ | Sym _ | Const _ -> e
  | Add (a, b) -> (
    match (simplify a, simplify b) with
    | Const x, Const y -> Const (x + y)
    | Const 0, e | e, Const 0 -> e
    (* canonicalize constants to the right: (e + c1) + c2 -> e + (c1+c2) *)
    | Add (e, Const c1), Const c2 -> simplify (Add (e, Const (c1 + c2)))
    | Const c, e -> simplify (Add (e, Const c))
    | a, b -> Add (a, b))
  | Mul (a, b) -> (
    match (simplify a, simplify b) with
    | Const x, Const y -> Const (x * y)
    | Const 0, _ | _, Const 0 -> Const 0
    | Const 1, e | e, Const 1 -> e
    | Const c, e -> simplify (Mul (e, Const c))
    | a, b -> Mul (a, b))
  | Mod (a, b) -> (
    match (simplify a, simplify b) with
    | Const x, Const y when y > 0 ->
      let r = x mod y in
      Const (if r < 0 then r + y else r)
    | _, Const 1 -> Const 0
    | a, b -> Mod (a, b))
  | Floordiv (a, b) -> (
    match (simplify a, simplify b) with
    | Const x, Const y when y > 0 ->
      Const (if x >= 0 then x / y else -(((-x) + y - 1) / y))
    | e, Const 1 -> e
    | a, b -> Floordiv (a, b))
  | Ceildiv (a, b) -> (
    match (simplify a, simplify b) with
    | Const x, Const y when y > 0 ->
      Const (if x >= 0 then (x + y - 1) / y else -((-x) / y))
    | e, Const 1 -> e
    | a, b -> Ceildiv (a, b))

(* ------------------------------------------------------------------ *)
(* Evaluation                                                          *)
(* ------------------------------------------------------------------ *)

exception Eval_error of string

let rec eval ~dims ~syms e =
  let get a i what =
    if i >= 0 && i < Array.length a then a.(i)
    else raise (Eval_error (Fmt.str "%s index %d out of range" what i))
  in
  match e with
  | Dim i -> get dims i "dim"
  | Sym i -> get syms i "symbol"
  | Const c -> c
  | Add (a, b) -> eval ~dims ~syms a + eval ~dims ~syms b
  | Mul (a, b) -> eval ~dims ~syms a * eval ~dims ~syms b
  | Mod (a, b) ->
    let d = eval ~dims ~syms b in
    if d <= 0 then raise (Eval_error "mod by non-positive value");
    let r = eval ~dims ~syms a mod d in
    if r < 0 then r + d else r
  | Floordiv (a, b) ->
    let d = eval ~dims ~syms b in
    if d <= 0 then raise (Eval_error "floordiv by non-positive value");
    let n = eval ~dims ~syms a in
    if n >= 0 then n / d else -(((-n) + d - 1) / d)
  | Ceildiv (a, b) ->
    let d = eval ~dims ~syms b in
    if d <= 0 then raise (Eval_error "ceildiv by non-positive value");
    let n = eval ~dims ~syms a in
    if n >= 0 then (n + d - 1) / d else -((-n) / d)

(* ------------------------------------------------------------------ *)
(* Maps                                                                *)
(* ------------------------------------------------------------------ *)

let make_map ~num_dims ~num_syms exprs =
  { num_dims; num_syms; exprs = List.map simplify exprs }

let identity_map n =
  { num_dims = n; num_syms = 0; exprs = List.init n (fun i -> Dim i) }

let constant_map c = { num_dims = 0; num_syms = 0; exprs = [ Const c ] }

let eval_map m ~dims ~syms =
  if Array.length dims <> m.num_dims then
    raise (Eval_error "wrong number of dims");
  if Array.length syms <> m.num_syms then
    raise (Eval_error "wrong number of symbols");
  List.map (eval ~dims ~syms) m.exprs

let is_identity m =
  m.num_syms = 0
  && List.length m.exprs = m.num_dims
  && List.for_all2 (fun e i -> e = Dim i) m.exprs
       (List.init m.num_dims Fun.id)

(** Substitute dims/syms of [m] by expressions; used for composition. *)
let rec substitute ~dim_repl ~sym_repl e =
  match e with
  | Dim i -> dim_repl i
  | Sym i -> sym_repl i
  | Const _ -> e
  | Add (a, b) ->
    Add (substitute ~dim_repl ~sym_repl a, substitute ~dim_repl ~sym_repl b)
  | Mul (a, b) ->
    Mul (substitute ~dim_repl ~sym_repl a, substitute ~dim_repl ~sym_repl b)
  | Mod (a, b) ->
    Mod (substitute ~dim_repl ~sym_repl a, substitute ~dim_repl ~sym_repl b)
  | Floordiv (a, b) ->
    Floordiv
      (substitute ~dim_repl ~sym_repl a, substitute ~dim_repl ~sym_repl b)
  | Ceildiv (a, b) ->
    Ceildiv
      (substitute ~dim_repl ~sym_repl a, substitute ~dim_repl ~sym_repl b)

(** [compose f g] applies [g] first, then [f]: result(x) = f(g(x)).
    [g] must produce exactly [f.num_dims] results. Symbols of both maps are
    concatenated, [f]'s symbols first. *)
let compose f g =
  if List.length g.exprs <> f.num_dims then
    invalid_arg "Affine.compose: arity mismatch";
  let g_exprs = Array.of_list g.exprs in
  let shifted_g_sym i = Sym (i + f.num_syms) in
  let g_shifted =
    Array.map
      (substitute ~dim_repl:(fun i -> Dim i) ~sym_repl:shifted_g_sym)
      g_exprs
  in
  let exprs =
    List.map
      (fun e ->
        simplify
          (substitute ~dim_repl:(fun i -> g_shifted.(i))
             ~sym_repl:(fun i -> Sym i)
             e))
      f.exprs
  in
  { num_dims = g.num_dims; num_syms = f.num_syms + g.num_syms; exprs }

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let rec pp_expr fmt = function
  | Dim i -> Fmt.pf fmt "d%d" i
  | Sym i -> Fmt.pf fmt "s%d" i
  | Const c -> Fmt.int fmt c
  | Add (a, Const c) when c < 0 -> Fmt.pf fmt "%a - %d" pp_expr a (-c)
  | Add (a, b) -> Fmt.pf fmt "%a + %a" pp_expr a pp_expr b
  | Mul (a, b) -> Fmt.pf fmt "%a * %a" pp_atom a pp_atom b
  | Mod (a, b) -> Fmt.pf fmt "%a mod %a" pp_atom a pp_atom b
  | Floordiv (a, b) -> Fmt.pf fmt "%a floordiv %a" pp_atom a pp_atom b
  | Ceildiv (a, b) -> Fmt.pf fmt "%a ceildiv %a" pp_atom a pp_atom b

and pp_atom fmt e =
  match e with
  | Dim _ | Sym _ | Const _ -> pp_expr fmt e
  | _ -> Fmt.pf fmt "(%a)" pp_expr e

let pp_map fmt m =
  let dims = List.init m.num_dims (fun i -> Fmt.str "d%d" i) in
  let syms = List.init m.num_syms (fun i -> Fmt.str "s%d" i) in
  Fmt.pf fmt "(%a)" Fmt.(list ~sep:comma string) dims;
  if m.num_syms > 0 then Fmt.pf fmt "[%a]" Fmt.(list ~sep:comma string) syms;
  Fmt.pf fmt " -> (%a)" (Util.pp_list pp_expr) m.exprs

let map_to_string m = Fmt.str "%a" pp_map m
