(** Printing of IR in MLIR's *generic* textual form, e.g.:

    {v
    %0 = "arith.constant"() {value = 42 : i32} : () -> i32
    "scf.for"(%lb, %ub, %step) ({
    ^bb0(%iv: index):
      ...
      "scf.yield"() : () -> ()
    }) : (index, index, index) -> ()
    v}

    The printer assigns sequential names ([%0], [%1], ... and [^bb0], ...) in
    syntactic order; {!Parser} accepts arbitrary names, so print→parse
    round-trips preserve structure. *)

open Ircore

type naming = {
  values : (int, string) Hashtbl.t;
  blocks : (int, string) Hashtbl.t;
  mutable next_value : int;
  mutable next_block : int;
}

let fresh_naming () =
  { values = Hashtbl.create 64; blocks = Hashtbl.create 8; next_value = 0; next_block = 0 }

let value_name naming v =
  match Hashtbl.find_opt naming.values v.v_id with
  | Some n -> n
  | None ->
    let n = Fmt.str "%%%d" naming.next_value in
    naming.next_value <- naming.next_value + 1;
    Hashtbl.replace naming.values v.v_id n;
    n

(** For an op result, the printed reference: [%2] or [%2#1] for result i>0 of
    a multi-result op, matching MLIR's group naming. *)
let value_ref naming v =
  match v.v_def with
  | Op_result (op, i) when Array.length op.results > 1 ->
    let base = value_name naming op.results.(0) in
    if i = 0 then base else Fmt.str "%s#%d" base i
  | _ -> value_name naming v

let block_name naming b =
  match Hashtbl.find_opt naming.blocks b.b_id with
  | Some n -> n
  | None ->
    let n = Fmt.str "^bb%d" naming.next_block in
    naming.next_block <- naming.next_block + 1;
    Hashtbl.replace naming.blocks b.b_id n;
    n

let rec pp_op_with ?(locs = false) naming ~indent fmt op =
  let pad = String.make indent ' ' in
  Fmt.string fmt pad;
  (* results *)
  (match Array.length op.results with
  | 0 -> ()
  | 1 -> Fmt.pf fmt "%s = " (value_name naming op.results.(0))
  | n -> Fmt.pf fmt "%s:%d = " (value_name naming op.results.(0)) n);
  Fmt.pf fmt "%S(" op.op_name;
  Fmt.string fmt
    (String.concat ", "
       (List.map (value_ref naming) (Array.to_list op.operands)));
  Fmt.string fmt ")";
  (* successors *)
  if Array.length op.successors > 0 then begin
    Fmt.string fmt "[";
    Fmt.string fmt
      (String.concat ", "
         (List.map (block_name naming) (Array.to_list op.successors)));
    Fmt.string fmt "]"
  end;
  (* regions *)
  if op.regions <> [] then begin
    Fmt.string fmt " (";
    List.iteri
      (fun i r ->
        if i > 0 then Fmt.string fmt ", ";
        pp_region_with ~locs naming ~indent fmt r)
      op.regions;
    Fmt.string fmt ")"
  end;
  (* attributes *)
  if op.attrs <> [] then begin
    Fmt.string fmt " {";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Fmt.string fmt ", ";
        match v with
        | Attr.Unit -> Fmt.string fmt k
        | _ -> Fmt.pf fmt "%s = %a" k Attr.pp v)
      op.attrs;
    Fmt.string fmt "}"
  end;
  (* type signature *)
  let operand_types =
    List.map (fun v -> v.v_typ) (Array.to_list op.operands)
  in
  let result_types = List.map (fun v -> v.v_typ) (Array.to_list op.results) in
  Fmt.pf fmt " : (%a) -> " (Util.pp_list Typ.pp) operand_types;
  (match result_types with
  | [ (Typ.Func _ as t) ] -> Fmt.pf fmt "(%a)" Typ.pp t
  | [ t ] -> Typ.pp fmt t
  | ts -> Fmt.pf fmt "(%a)" (Util.pp_list Typ.pp) ts);
  if locs && op.op_loc <> Loc.Unknown then Fmt.pf fmt " %a" Loc.pp op.op_loc

and pp_region_with ?(locs = false) naming ~indent fmt r =
  Fmt.string fmt "{\n";
  let blocks = region_blocks r in
  (* Pre-assign block names in order so forward branch references resolve. *)
  List.iter (fun b -> ignore (block_name naming b)) blocks;
  let multi = List.length blocks > 1 in
  List.iter
    (fun b ->
      if multi || Array.length b.b_args > 0 then begin
        Fmt.pf fmt "%s%s" (String.make indent ' ') (block_name naming b);
        if Array.length b.b_args > 0 then begin
          Fmt.string fmt "(";
          Array.iteri
            (fun i a ->
              if i > 0 then Fmt.string fmt ", ";
              Fmt.pf fmt "%s: %a" (value_name naming a) Typ.pp a.v_typ)
            b.b_args;
          Fmt.string fmt ")"
        end;
        Fmt.string fmt ":\n"
      end;
      List.iter
        (fun op ->
          pp_op_with ~locs naming ~indent:(indent + 2) fmt op;
          Fmt.string fmt "\n")
        (block_ops b))
    blocks;
  Fmt.pf fmt "%s}" (String.make indent ' ')

let pp_op fmt op = pp_op_with (fresh_naming ()) ~indent:0 fmt op
let op_to_string op = Fmt.str "%a" pp_op op

(** Generic form including [loc(...)] suffixes where known. *)
let pp_op_locs fmt op = pp_op_with ~locs:true (fresh_naming ()) ~indent:0 fmt op
let op_to_string_locs op = Fmt.str "%a" pp_op_locs op

let pp_region fmt r = pp_region_with (fresh_naming ()) ~indent:0 fmt r

let pp_value fmt v = Fmt.pf fmt "<%a>" Typ.pp v.v_typ

let print_op ?(oc = stdout) op =
  let fmt = Format.formatter_of_out_channel oc in
  pp_op fmt op;
  Format.pp_print_newline fmt ()
