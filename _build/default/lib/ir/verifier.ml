(** IR verification: structural SSA invariants (dominance, terminators,
    successor wiring, use-def consistency) plus per-op verifiers registered
    in the {!Context}. *)

open Ircore

let diag op fmt =
  Fmt.kstr
    (fun m -> Diag.error ~loc:op.op_loc "'%s': %s" op.op_name m)
    fmt

let verify_op_structure ctx op errors =
  (* registration *)
  (match Context.lookup ctx op.op_name with
  | Some def -> (
    match def.Context.d_verify op with
    | Ok () -> ()
    | Error msg -> errors := diag op "%s" msg :: !errors)
  | None ->
    if not (Context.allows_unregistered ctx) then
      errors :=
        diag op "unregistered operation in a context that requires registration"
        :: !errors);
  (* trait checks *)
  if Context.op_has_trait ctx op Context.Same_operands_and_result_type then begin
    let tys =
      List.map value_typ (operands op) @ List.map value_typ (results op)
    in
    match tys with
    | [] -> ()
    | t :: rest ->
      if not (List.for_all (Typ.equal t) rest) then
        errors :=
          diag op "requires the same type for all operands and results"
          :: !errors
  end;
  if Context.op_has_trait ctx op Context.Terminator then begin
    match op.op_parent with
    | Some b when (match block_last_op b with Some l -> l == op | None -> false)
      ->
      ()
    | _ -> errors := diag op "terminator must be the last op in its block" :: !errors
  end;
  if Array.length op.successors > 0
     && not (Context.op_has_trait ctx op Context.Terminator)
     && Context.is_registered ctx op.op_name
  then errors := diag op "only terminators may have successors" :: !errors

let verify_block_terminator ctx ~parent b errors =
  let graph_region = Context.op_has_trait ctx parent Context.No_terminator in
  if not graph_region then
    match block_last_op b with
    | None -> errors := diag parent "block has no terminator" :: !errors
    | Some last ->
      if
        Context.is_registered ctx last.op_name
        && not (Context.op_has_trait ctx last Context.Terminator)
      then
        errors :=
          diag last "block must end with a terminator operation" :: !errors

(** Verify dominance of operand defs over their users in [region]. *)
let verify_region_dominance r errors =
  let doms = Dominance.compute r in
  List.iter
    (fun b ->
      List.iter
        (fun op ->
          walk_op op ~pre:(fun user ->
              Array.iteri
                (fun i v ->
                  (* only check values defined within this same region;
                     outer values are checked at the outer region *)
                  let in_region b =
                    match b.b_parent with Some rr -> rr == r | None -> false
                  in
                  let in_this_region =
                    match v.v_def with
                    | Block_arg (db, _) -> in_region db
                    | Op_result (dop, _) -> (
                      match dop.op_parent with
                      | Some db -> in_region db
                      | None -> false)
                  in
                  if in_this_region && not (Dominance.value_dominates_op doms v user)
                  then
                    errors :=
                      diag user "operand #%d does not dominate this use" i
                      :: !errors)
                user.operands))
        (block_ops b))
    (region_blocks r)

let verify_use_def_consistency op errors =
  walk_op op ~pre:(fun o ->
      Array.iteri
        (fun i v ->
          if
            not
              (List.exists
                 (fun u -> u.u_op == o && u.u_index = i)
                 (value_uses v))
          then
            errors :=
              diag o "operand #%d missing from the use list of its value" i
              :: !errors)
        o.operands)

(** Verify symbol uniqueness within symbol-table ops. *)
let verify_symbols ctx op errors =
  if Context.op_has_trait ctx op Context.Symbol_table then begin
    let seen = Hashtbl.create 8 in
    List.iter
      (fun r ->
        List.iter
          (fun b ->
            List.iter
              (fun nested ->
                match attr nested "sym_name" with
                | Some (Attr.String name) ->
                  if Hashtbl.mem seen name then
                    errors :=
                      diag nested "redefinition of symbol @%s" name :: !errors
                  else Hashtbl.replace seen name ()
                | _ -> ())
              (block_ops b))
          (region_blocks r))
      op.regions
  end

let verify ctx top : (unit, Diag.t list) result =
  let errors = ref [] in
  verify_use_def_consistency top errors;
  walk_op top ~pre:(fun op ->
      verify_op_structure ctx op errors;
      verify_symbols ctx op errors;
      List.iter
        (fun r ->
          List.iter
            (fun b -> verify_block_terminator ctx ~parent:op b errors)
            (region_blocks r);
          verify_region_dominance r errors)
        op.regions);
  match List.rev !errors with [] -> Ok () | errs -> Error errs

let verify_or_fail ctx top =
  match verify ctx top with
  | Ok () -> ()
  | Error errs ->
    let msg =
      Fmt.str "@[<v>verification failed:@,%a@]"
        (Fmt.list ~sep:Fmt.cut Diag.pp)
        errs
    in
    failwith msg

(** Verify and report failures through the context's diagnostic handler;
    returns [true] when the IR is valid. *)
let verify_and_emit ctx top =
  match verify ctx top with
  | Ok () -> true
  | Error errs ->
    List.iter (Context.emit_diag ctx) errs;
    false

(* ------------------------------------------------------------------ *)
(* Reusable per-op verification helpers for dialect definitions        *)
(* ------------------------------------------------------------------ *)

let expect_operands n op =
  if num_operands op = n then Ok ()
  else Error (Fmt.str "expected %d operands, got %d" n (num_operands op))

let expect_min_operands n op =
  if num_operands op >= n then Ok ()
  else Error (Fmt.str "expected at least %d operands, got %d" n (num_operands op))

let expect_results n op =
  if num_results op = n then Ok ()
  else Error (Fmt.str "expected %d results, got %d" n (num_results op))

let expect_regions n op =
  if List.length op.regions = n then Ok ()
  else
    Error (Fmt.str "expected %d regions, got %d" n (List.length op.regions))

let expect_attr name op =
  match attr op name with
  | Some _ -> Ok ()
  | None -> Error (Fmt.str "missing required attribute '%s'" name)

let ( let* ) = Result.bind

let all checks op =
  List.fold_left
    (fun acc check -> match acc with Error _ -> acc | Ok () -> check op)
    (Ok ()) checks
