(** Dominance information for multi-block regions (Cooper–Harvey–Kennedy
    iterative algorithm) and SSA dominance queries used by the verifier. *)

open Ircore

type t = {
  order : (int, int) Hashtbl.t;  (** block id -> reverse postorder index *)
  idom : (int, block) Hashtbl.t;  (** block id -> immediate dominator *)
  entry : block option;
}

let successors_of_block b =
  match block_last_op b with
  | None -> []
  | Some term -> Array.to_list term.successors

(** Reverse postorder of the CFG rooted at the region's entry block. *)
let reverse_postorder r =
  match region_first_block r with
  | None -> []
  | Some entry ->
    let visited = Hashtbl.create 8 in
    let out = ref [] in
    let rec dfs b =
      if not (Hashtbl.mem visited b.b_id) then begin
        Hashtbl.replace visited b.b_id ();
        List.iter dfs (successors_of_block b);
        out := b :: !out
      end
    in
    dfs entry;
    !out

let compute r =
  let rpo = reverse_postorder r in
  let order = Hashtbl.create 8 in
  List.iteri (fun i b -> Hashtbl.replace order b.b_id i) rpo;
  let idom : (int, block) Hashtbl.t = Hashtbl.create 8 in
  (match rpo with
  | [] -> ()
  | entry :: rest ->
    Hashtbl.replace idom entry.b_id entry;
    (* predecessors map *)
    let preds = Hashtbl.create 8 in
    List.iter
      (fun b ->
        List.iter
          (fun s ->
            let cur = Option.value ~default:[] (Hashtbl.find_opt preds s.b_id) in
            Hashtbl.replace preds s.b_id (b :: cur))
          (successors_of_block b))
      rpo;
    let intersect b1 b2 =
      let rec go f1 f2 =
        if f1 == f2 then f1
        else
          let o1 = Hashtbl.find order f1.b_id in
          let o2 = Hashtbl.find order f2.b_id in
          if o1 > o2 then go (Hashtbl.find idom f1.b_id) f2
          else go f1 (Hashtbl.find idom f2.b_id)
      in
      go b1 b2
    in
    let changed = ref true in
    while !changed do
      changed := false;
      List.iter
        (fun b ->
          let ps =
            Option.value ~default:[] (Hashtbl.find_opt preds b.b_id)
            |> List.filter (fun p -> Hashtbl.mem idom p.b_id)
          in
          match ps with
          | [] -> ()
          | first :: others ->
            let new_idom = List.fold_left intersect first others in
            (match Hashtbl.find_opt idom b.b_id with
            | Some cur when cur == new_idom -> ()
            | _ ->
              Hashtbl.replace idom b.b_id new_idom;
              changed := true))
        rest
    done);
  { order; idom; entry = region_first_block r }

(** Immediate dominator of [b], or [None] for the entry / unreachable
    blocks. *)
let idom_of t b =
  match Hashtbl.find_opt t.idom b.b_id with
  | Some d when not (d == b) -> Some d
  | _ -> None

(** Does block [a] dominate block [b] (within the analyzed region)? *)
let block_dominates t a b =
  let rec go x =
    if x == a then true
    else
      match Hashtbl.find_opt t.idom x.b_id with
      | None -> false
      | Some d -> if d == x then x == a else go d
  in
  (* unreachable blocks dominate nothing and are dominated by everything
     reachable is irrelevant; be conservative *)
  if not (Hashtbl.mem t.order b.b_id) then false else go b

(** Does the program point of [def] properly dominate op [user]?
    Both must live in blocks of the same region. *)
let value_dominates_op doms (v : value) (user : op) =
  (* hoist user up to the op in the same region as the def *)
  let placement =
    match v.v_def with
    | Block_arg (b, _) -> Some (b, None)
    | Op_result (op, _) -> (
      match op.op_parent with
      | None -> None (* detached defining op dominates nothing *)
      | Some b -> Some (b, Some op))
  in
  match placement with
  | None -> false
  | Some (def_block, def_op) ->
  let same_region b =
    match (b.b_parent, def_block.b_parent) with
    | Some r1, Some r2 -> r1 == r2
    | None, None -> b == def_block
    | _ -> false
  in
  (* walk user up through parents until its block is in the def's region *)
  let rec hoist (o : op) =
    match o.op_parent with
    | None -> None
    | Some b ->
      if same_region b then Some (o, b)
      else ( match parent_op o with None -> None | Some p -> hoist p)
  in
  match hoist user with
  | None -> false
  | Some (user', user_block) ->
    if user_block == def_block then (
      match def_op with
      | None -> true (* block argument dominates everything in its block *)
      | Some d -> if d == user' then false else is_before_in_block d user')
    else block_dominates doms def_block user_block
