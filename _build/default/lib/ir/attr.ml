(** Attributes: compile-time constant data attached to operations. *)

type t =
  | Unit
  | Bool of bool
  | Int of int * Typ.t  (** typed integer; [index] or [iN] *)
  | Float of float * Typ.t
  | String of string
  | Type of Typ.t
  | Array of t list
  | Int_array of int list  (** MLIR's [array<i64: ...>], dense int arrays *)
  | Dense_int of int list * Typ.t  (** [dense<[...]> : tensor<...>] *)
  | Dense_float of float list * Typ.t
  | Dict of (string * t) list
  | Symbol_ref of string * string list  (** [@root::@nested...] *)
  | Affine_map of Affine.map

let unit = Unit
let bool b = Bool b
let int ?(typ = Typ.i64) v = Int (v, typ)
let index v = Int (v, Typ.index)
let float ?(typ = Typ.f64) v = Float (v, typ)
let str s = String s
let typ t = Type t
let symbol s = Symbol_ref (s, [])

let get_int = function Int (v, _) -> Some v | _ -> None
let get_bool = function Bool b -> Some b | _ -> None
let get_float = function Float (v, _) -> Some v | _ -> None
let get_string = function String s -> Some s | _ -> None
let get_type = function Type t -> Some t | _ -> None
let get_int_array = function Int_array xs -> Some xs | _ -> None
let get_symbol = function Symbol_ref (s, _) -> Some s | _ -> None
let get_array = function Array xs -> Some xs | _ -> None

let rec pp fmt = function
  | Unit -> Fmt.string fmt "unit"
  | Bool b -> Fmt.bool fmt b
  | Int (v, Typ.Index) -> Fmt.pf fmt "%d : index" v
  | Int (v, t) -> Fmt.pf fmt "%d : %a" v Typ.pp t
  | Float (v, t) -> Fmt.pf fmt "%h : %a" v Typ.pp t
  | String s -> Fmt.pf fmt "%S" s
  | Type t -> Typ.pp fmt t
  | Array xs -> Fmt.pf fmt "[%a]" (Util.pp_list pp) xs
  | Int_array xs ->
    Fmt.pf fmt "array<i64: %a>" (Util.pp_list Fmt.int) xs
  | Dense_int (xs, t) ->
    Fmt.pf fmt "dense<[%a]> : %a" (Util.pp_list Fmt.int) xs Typ.pp t
  | Dense_float (xs, t) ->
    Fmt.pf fmt "dense<[%a]> : %a" (Util.pp_list Fmt.float) xs Typ.pp t
  | Dict kvs ->
    Fmt.pf fmt "{%a}"
      (Util.pp_list (fun fmt (k, v) -> Fmt.pf fmt "%s = %a" k pp v))
      kvs
  | Symbol_ref (root, nested) ->
    Fmt.pf fmt "@%s" root;
    List.iter (Fmt.pf fmt "::@%s") nested
  | Affine_map m -> Fmt.pf fmt "affine_map<%a>" Affine.pp_map m

let to_string a = Fmt.str "%a" pp a

let equal (a : t) (b : t) = a = b

(* Named attribute dictionaries are association lists with stable order. *)
type dict = (string * t) list

let find (name : string) (d : dict) = List.assoc_opt name d

let set (name : string) (v : t) (d : dict) : dict =
  if List.mem_assoc name d then
    List.map (fun (k, old) -> if k = name then (k, v) else (k, old)) d
  else d @ [ (name, v) ]

let remove (name : string) (d : dict) : dict = List.remove_assoc name d
