(** Pretty printing: MLIR-style *custom assembly* for the common dialects
    ([func.func @f(...) { ... }], [scf.for %i = %lb to %ub step %s],
    [%0 = arith.addi %a, %b : i32], [memref.load %m[%i] : memref<...>], ...),
    falling back to the generic form of {!Printer} for everything else.

    Output-only: the parser consumes the generic form; use {!Printer} when a
    round-trip is needed. *)

open Ircore

let sugar_binary_prefixes = [ "arith."; "index."; "llvm."; "shlo." ]

let is_sugared_elementwise op =
  Array.length op.results = 1
  && op.regions = []
  && Array.length op.successors = 0
  && List.exists
       (fun p ->
         String.length op.op_name > String.length p
         && String.sub op.op_name 0 (String.length p) = p)
       sugar_binary_prefixes

let rec pp_op naming ~indent fmt op =
  let pad = String.make indent ' ' in
  let name v = Printer.value_ref naming v in
  let ops_csv vs = String.concat ", " (List.map name vs) in
  let types_csv vs =
    String.concat ", " (List.map (fun v -> Typ.to_string (value_typ v)) vs)
  in
  match op.op_name with
  | "builtin.module" ->
    Fmt.pf fmt "%smodule {@." pad;
    List.iter
      (fun r ->
        List.iter
          (fun b ->
            List.iter
              (fun o ->
                pp_op naming ~indent:(indent + 2) fmt o;
                Fmt.pf fmt "@.")
              (block_ops b))
          (region_blocks r))
      op.regions;
    Fmt.pf fmt "%s}" pad
  | "func.func" | "llvm.func" -> (
    let fname =
      match attr op "sym_name" with Some (Attr.String s) -> s | _ -> "?"
    in
    let results =
      match attr op "function_type" with
      | Some (Attr.Type (Typ.Func (_, outs))) -> outs
      | _ -> []
    in
    match op.regions with
    | [ r ] -> (
      match region_first_block r with
      | Some entry ->
        let args = block_args entry in
        Fmt.pf fmt "%s%s @%s(%s)" pad
          (if op.op_name = "func.func" then "func.func" else "llvm.func")
          fname
          (String.concat ", "
             (List.map
                (fun a ->
                  Fmt.str "%s: %s" (Printer.value_name naming a)
                    (Typ.to_string (value_typ a)))
                args));
        if results <> [] then
          Fmt.pf fmt " -> %s"
            (String.concat ", " (List.map Typ.to_string results));
        Fmt.pf fmt " {@.";
        pp_region_blocks naming ~indent fmt r;
        Fmt.pf fmt "%s}" pad
      | None -> Printer.pp_op_with naming ~indent fmt op)
    | _ -> Printer.pp_op_with naming ~indent fmt op)
  | "func.return" ->
    if Array.length op.operands = 0 then Fmt.pf fmt "%sreturn" pad
    else
      Fmt.pf fmt "%sreturn %s : %s" pad
        (ops_csv (operands op))
        (types_csv (operands op))
  | "scf.for" -> (
    match op.regions with
    | [ r ] when Option.is_some (region_first_block r) ->
      let body = Option.get (region_first_block r) in
      let iv = block_arg body 0 in
      let iters = List.tl (block_args body) in
      let inits = List.filteri (fun i _ -> i >= 3) (operands op) in
      (match Array.length op.results with
      | 0 -> ()
      | _ -> Fmt.pf fmt "" );
      Fmt.pf fmt "%s" pad;
      if Array.length op.results > 0 then
        Fmt.pf fmt "%s = "
          (String.concat ", " (List.map name (results op)));
      Fmt.pf fmt "scf.for %s = %s to %s step %s"
        (Printer.value_name naming iv)
        (name (operand ~index:0 op))
        (name (operand ~index:1 op))
        (name (operand ~index:2 op));
      if iters <> [] then
        Fmt.pf fmt " iter_args(%s)"
          (String.concat ", "
             (List.map2
                (fun a v -> Fmt.str "%s = %s" (Printer.value_name naming a) (name v))
                iters inits));
      Fmt.pf fmt " {@.";
      pp_region_blocks naming ~indent fmt r;
      Fmt.pf fmt "%s}" pad
    | _ -> Printer.pp_op_with naming ~indent fmt op)
  | "scf.if" -> (
    match op.regions with
    | [ t; e ] ->
      Fmt.pf fmt "%s" pad;
      if Array.length op.results > 0 then
        Fmt.pf fmt "%s = " (String.concat ", " (List.map name (results op)));
      Fmt.pf fmt "scf.if %s {@." (name (operand ~index:0 op));
      pp_region_blocks naming ~indent fmt t;
      let else_empty =
        match region_first_block e with
        | Some b -> block_ops b = [] || block_num_ops b <= 1
        | None -> true
      in
      if else_empty && Array.length op.results = 0 then Fmt.pf fmt "%s}" pad
      else begin
        Fmt.pf fmt "%s} else {@." pad;
        pp_region_blocks naming ~indent fmt e;
        Fmt.pf fmt "%s}" pad
      end;
      if Array.length op.results > 0 then
        Fmt.pf fmt " : %s" (types_csv (results op))
    | _ -> Printer.pp_op_with naming ~indent fmt op)
  | "scf.yield" ->
    if Array.length op.operands = 0 then Fmt.pf fmt "%sscf.yield" pad
    else
      Fmt.pf fmt "%sscf.yield %s : %s" pad
        (ops_csv (operands op))
        (types_csv (operands op))
  | "arith.constant" | "index.constant" | "llvm.mlir.constant" ->
    Fmt.pf fmt "%s%s = %s %s" pad
      (name (result op))
      op.op_name
      (match attr op "value" with
      | Some a -> Attr.to_string a
      | None -> "<?>")
  | "arith.cmpi" ->
    Fmt.pf fmt "%s%s = arith.cmpi %s, %s, %s : %s" pad
      (name (result op))
      (match attr op "predicate" with Some (Attr.String s) -> s | _ -> "?")
      (name (operand ~index:0 op))
      (name (operand ~index:1 op))
      (Typ.to_string (value_typ (operand ~index:0 op)))
  | "memref.load" ->
    Fmt.pf fmt "%s%s = memref.load %s[%s] : %s" pad
      (name (result op))
      (name (operand ~index:0 op))
      (ops_csv (List.tl (operands op)))
      (Typ.to_string (value_typ (operand ~index:0 op)))
  | "memref.store" ->
    Fmt.pf fmt "%smemref.store %s, %s[%s] : %s" pad
      (name (operand ~index:0 op))
      (name (operand ~index:1 op))
      (ops_csv (List.filteri (fun i _ -> i >= 2) (operands op)))
      (Typ.to_string (value_typ (operand ~index:1 op)))
  | "memref.subview" -> (
    (* memref.subview %m[offsets] [sizes] [strides] : src -> dst *)
    let int_array a =
      match attr op a with Some (Attr.Int_array xs) -> Some xs | _ -> None
    in
    match
      (int_array "static_offsets", int_array "static_sizes",
       int_array "static_strides")
    with
    | Some offs, Some sizes, Some strides ->
      let dynamic = ref (List.tl (operands op)) in
      let mixed xs =
        String.concat ", "
          (List.map
             (fun x ->
               if x = min_int then (
                 match !dynamic with
                 | v :: rest ->
                   dynamic := rest;
                   name v
                 | [] -> "?")
               else string_of_int x)
             xs)
      in
      let offs_s = mixed offs in
      let sizes_s = mixed sizes in
      let strides_s = mixed strides in
      Fmt.pf fmt "%s%s = memref.subview %s[%s] [%s] [%s] : %s to %s" pad
        (name (result op))
        (name (operand ~index:0 op))
        offs_s sizes_s strides_s
        (Typ.to_string (value_typ (operand ~index:0 op)))
        (Typ.to_string (value_typ (result op)))
    | _ -> Printer.pp_op_with naming ~indent fmt op)
  | "func.call" ->
    Fmt.pf fmt "%s" pad;
    if Array.length op.results > 0 then
      Fmt.pf fmt "%s = " (String.concat ", " (List.map name (results op)));
    Fmt.pf fmt "call @%s(%s) : (%s) -> (%s)"
      (match attr op "callee" with
      | Some (Attr.Symbol_ref (s, _)) -> s
      | _ -> "?")
      (ops_csv (operands op))
      (types_csv (operands op))
      (types_csv (results op))
  | "cf.br" ->
    Fmt.pf fmt "%scf.br %s(%s)" pad
      (Printer.block_name naming op.successors.(0))
      (ops_csv (operands op))
  | _ when is_sugared_elementwise op ->
    Fmt.pf fmt "%s%s = %s %s : %s" pad
      (name (result op))
      op.op_name
      (ops_csv (operands op))
      (Typ.to_string (value_typ (result op)))
  | _ -> Printer.pp_op_with naming ~indent fmt op

and pp_region_blocks naming ~indent fmt r =
  let blocks = region_blocks r in
  List.iter (fun b -> ignore (Printer.block_name naming b)) blocks;
  let multi = List.length blocks > 1 in
  List.iter
    (fun b ->
      if multi then begin
        Fmt.pf fmt "%s%s" (String.make indent ' ') (Printer.block_name naming b);
        if Array.length b.b_args > 0 then begin
          Fmt.pf fmt "(%s)"
            (String.concat ", "
               (List.map
                  (fun a ->
                    Fmt.str "%s: %s" (Printer.value_name naming a)
                      (Typ.to_string (value_typ a)))
                  (block_args b)))
        end;
        Fmt.pf fmt ":@."
      end;
      List.iter
        (fun o ->
          (* elide empty scf.yield terminators, as MLIR's printer does *)
          if not (o.op_name = "scf.yield" && Array.length o.operands = 0) then begin
            pp_op naming ~indent:(indent + 2) fmt o;
            Fmt.pf fmt "@."
          end)
        (block_ops b))
    blocks

let pp fmt op = pp_op (Printer.fresh_naming ()) ~indent:0 fmt op
let to_string op = Fmt.str "%a" pp op
