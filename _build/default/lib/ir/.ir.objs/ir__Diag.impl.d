lib/ir/diag.ml: Fmt Fun Json List Loc Stdlib
