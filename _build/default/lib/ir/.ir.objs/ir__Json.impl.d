lib/ir/json.ml: Buffer Char Float Fmt List Printf String
