lib/ir/loc.ml: Fmt Util
