lib/ir/affine.ml: Array Fmt Fun List Util
