lib/ir/pattern.ml: Fmt Hashtbl Ircore List Rewriter String
