lib/ir/symbol.ml: Attr Context Ircore List
