lib/ir/rewriter.ml: Builder Ircore List
