lib/ir/greedy.ml: Attr Builder Context Hashtbl Ircore List Option Pattern Rewriter Trace Typ
