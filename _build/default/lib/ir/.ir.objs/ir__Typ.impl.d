lib/ir/typ.ml: Affine Fmt List Option Util
