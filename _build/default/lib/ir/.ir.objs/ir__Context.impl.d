lib/ir/context.ml: Attr Hashtbl Ircore List Util
