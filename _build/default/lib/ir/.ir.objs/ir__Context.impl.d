lib/ir/context.ml: Attr Diag Hashtbl Ircore List Util
