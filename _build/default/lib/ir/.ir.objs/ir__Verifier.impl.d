lib/ir/verifier.ml: Array Attr Context Diag Dominance Fmt Hashtbl Ircore List Result Typ
