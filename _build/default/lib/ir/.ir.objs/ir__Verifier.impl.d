lib/ir/verifier.ml: Array Attr Context Dominance Fmt Hashtbl Ircore List Loc Result Typ
