lib/ir/ircore.ml: Array Attr Fmt Hashtbl List Loc Option Typ Util
