lib/ir/builder.ml: Fun Ircore
