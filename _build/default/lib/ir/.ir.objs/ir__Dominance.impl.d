lib/ir/dominance.ml: Array Hashtbl Ircore List Option
