lib/ir/util.ml: Fmt List Option String
