lib/ir/parser.ml: Affine Array Attr Buffer Fmt Hashtbl Ircore Lexer List Loc String Typ
