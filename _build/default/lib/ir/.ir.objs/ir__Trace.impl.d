lib/ir/trace.ml: Diag Fmt Fun Json List Loc
