lib/ir/printer.ml: Array Attr Fmt Format Hashtbl Ircore List Loc String Typ Util
