lib/ir/lexer.ml: Buffer Fmt List String Typ
