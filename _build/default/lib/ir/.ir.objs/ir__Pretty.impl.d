lib/ir/pretty.ml: Array Attr Fmt Ircore List Option Printer String Typ
