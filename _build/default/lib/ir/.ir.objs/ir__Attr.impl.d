lib/ir/attr.ml: Affine Fmt List Typ Util
