lib/ir/opset.ml: Fmt Hashtbl Ircore List String Util
