(** The context: a registry of dialects and operation definitions.

    Mirrors MLIR's [MLIRContext] + ODS: each registered operation carries its
    structural invariants (verifier), traits, canonicalization patterns and a
    typed universal map of interface implementations, so that generic code
    (verifier, greedy rewriter, transform interpreter) can query behaviour
    without depending on concrete dialects. *)

type trait =
  | Terminator
  | Isolated_from_above
  | Commutative
  | Pure  (** no memory effects; speculatable *)
  | Constant_like
  | Symbol_table  (** op's region defines a symbol scope (e.g. module) *)
  | Symbol  (** op defines a symbol via its [sym_name] attribute *)
  | Same_operands_and_result_type
  | No_terminator  (** graph-like region; blocks need no terminator *)
  | Return_like

type effect_kind = Read | Write | Alloc | Free

type op_def = {
  d_name : string;
  d_dialect : string;
  d_summary : string;
  d_traits : trait list;
  d_verify : Ircore.op -> (unit, string) result;
  d_effects : Ircore.op -> effect_kind list;
  d_interfaces : Util.Univ.t;
  d_canonicalizers : string list;
      (** names of canonicalization patterns (resolved via {!Patterns}) *)
}

type dialect = { dl_name : string; mutable dl_op_names : string list }

type t = {
  ops : (string, op_def) Hashtbl.t;
  dialects : (string, dialect) Hashtbl.t;
  mutable allow_unregistered : bool;
  diags : Diag.engine;  (** per-context diagnostic handler stack *)
}

let create ?(allow_unregistered = false) () =
  {
    ops = Hashtbl.create 256;
    dialects = Hashtbl.create 16;
    allow_unregistered;
    diags = Diag.engine ();
  }

let allow_unregistered ctx b = ctx.allow_unregistered <- b
let allows_unregistered ctx = ctx.allow_unregistered

(* ------------------------------------------------------------------ *)
(* Diagnostics                                                         *)
(* ------------------------------------------------------------------ *)

let diag_engine ctx = ctx.diags

(** Emit a diagnostic to the context's innermost handler (stderr when no
    handler is installed). *)
let emit_diag ctx d = Diag.emit ctx.diags d

(** Run [f] with [h] installed as the context's innermost handler. *)
let with_diag_handler ctx h f = Diag.with_handler ctx.diags h f

(** Run [f] capturing every diagnostic emitted against this context. *)
let capture_diags ctx f = Diag.capture ctx.diags f

let get_or_create_dialect ctx name =
  match Hashtbl.find_opt ctx.dialects name with
  | Some d -> d
  | None ->
    let d = { dl_name = name; dl_op_names = [] } in
    Hashtbl.replace ctx.dialects name d;
    d

let default_verify (_ : Ircore.op) = Ok ()
let no_effects (_ : Ircore.op) = []

let register_op ctx ?(summary = "") ?(traits = []) ?(verify = default_verify)
    ?(effects = no_effects) ?(interfaces = Util.Univ.empty)
    ?(canonicalizers = []) name =
  let dialect = Util.dialect_of_op_name name in
  let def =
    {
      d_name = name;
      d_dialect = dialect;
      d_summary = summary;
      d_traits = traits;
      d_verify = verify;
      d_effects = effects;
      d_interfaces = interfaces;
      d_canonicalizers = canonicalizers;
    }
  in
  Hashtbl.replace ctx.ops name def;
  let d = get_or_create_dialect ctx dialect in
  if not (List.mem name d.dl_op_names) then
    d.dl_op_names <- name :: d.dl_op_names

let lookup ctx name = Hashtbl.find_opt ctx.ops name
let is_registered ctx name = Hashtbl.mem ctx.ops name

let dialect_ops ctx dialect =
  match Hashtbl.find_opt ctx.dialects dialect with
  | None -> []
  | Some d -> List.sort compare d.dl_op_names

let registered_dialects ctx =
  Hashtbl.fold (fun k _ acc -> k :: acc) ctx.dialects [] |> List.sort compare

let has_trait ctx op_name trait =
  match lookup ctx op_name with
  | None -> false
  | Some d -> List.mem trait d.d_traits

let op_has_trait ctx (op : Ircore.op) trait = has_trait ctx op.op_name trait

(** Conservatively: an op is pure (side-effect free and erasable when
    unused) when it carries the [Pure] trait, or has no declared effects,
    no regions, and is neither a symbol, a symbol table nor a terminator. *)
let is_pure ctx (op : Ircore.op) =
  match lookup ctx op.op_name with
  | None -> false
  | Some d ->
    List.mem Pure d.d_traits
    || (d.d_effects op = []
       && op.regions = []
       && (not (List.mem Symbol d.d_traits))
       && (not (List.mem Symbol_table d.d_traits))
       && not (List.mem Terminator d.d_traits))

let effects ctx (op : Ircore.op) =
  match lookup ctx op.op_name with None -> [ Read; Write ] | Some d -> d.d_effects op

let interface (type a) ctx op_name (key : a Util.Univ.key) : a option =
  match lookup ctx op_name with
  | None -> None
  | Some d -> Util.Univ.find key d.d_interfaces

(** Does [op_name] implement an interface registered under [iface_name]?
    Name-based lookup for condition sets ([interface<loop_like>]). *)
let implements ctx op_name iface_name =
  match lookup ctx op_name with
  | None -> false
  | Some d -> List.mem iface_name (Util.Univ.binding_names d.d_interfaces)

(* ------------------------------------------------------------------ *)
(* Common interfaces                                                   *)
(* ------------------------------------------------------------------ *)

(** Loop-like interface: uniform access to loop structure for transforms. *)
type loop_like = {
  ll_lower_bound : Ircore.op -> Ircore.value option;
  ll_upper_bound : Ircore.op -> Ircore.value option;
  ll_step : Ircore.op -> Ircore.value option;
  ll_induction_var : Ircore.op -> Ircore.value option;
  ll_body : Ircore.op -> Ircore.block option;
}

let loop_like_key : loop_like Util.Univ.key = Util.Univ.create_key "loop_like"

(** Branch interface: which operands are forwarded to which successor. *)
type branch_like = {
  br_successor_operands : Ircore.op -> int -> Ircore.value list;
}

let branch_like_key : branch_like Util.Univ.key = Util.Univ.create_key "branch_like"

(** Constant folding hook: given constant operand attrs, produce result attrs. *)
type folder = { fold : Ircore.op -> Attr.t option list -> Attr.t list option }

let folder_key : folder Util.Univ.key = Util.Univ.create_key "folder"
