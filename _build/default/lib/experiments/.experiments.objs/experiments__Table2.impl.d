lib/experiments/table2.ml: Fmt Ir List Opset Passes Transform Workloads
