lib/experiments/cs3.ml: Dialects Fmt Interp List Transform Unix Workloads
