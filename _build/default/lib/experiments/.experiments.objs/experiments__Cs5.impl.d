lib/experiments/cs5.ml: Autotune Float Fmt Interp List String Transform Workloads
