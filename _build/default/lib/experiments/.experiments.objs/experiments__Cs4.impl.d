lib/experiments/cs4.ml: Fmt Interp List Transform Workloads
