lib/experiments/cs5_structured.ml: Autotune Float Fmt Interp List Transform Workloads
