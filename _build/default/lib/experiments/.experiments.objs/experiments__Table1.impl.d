lib/experiments/table1.ml: Float Fmt Gc Ir List Passes String Transform Unix Workloads
