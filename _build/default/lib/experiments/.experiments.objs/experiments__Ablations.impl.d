lib/experiments/ablations.ml: Array Fmt Gc Ir List Passes Transform Unix Workloads
