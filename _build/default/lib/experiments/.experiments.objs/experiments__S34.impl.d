lib/experiments/s34.ml: Builtin Dialects Dutil Fmt Func Ir Ircore List Opset Passes Rewriter Shlo Transform Typ
