(** The builtin dialect: [builtin.module] and
    [builtin.unrealized_conversion_cast] (the temporary "cast" op inserted by
    partial conversions and cleaned up by [reconcile-unrealized-casts]). *)

open Ir

let module_op = "builtin.module"
let cast_op = "builtin.unrealized_conversion_cast"

let register ctx =
  Context.register_op ctx module_op
    ~summary:"top-level container with a symbol table"
    ~traits:
      [
        Context.Symbol_table; Context.Isolated_from_above; Context.No_terminator;
      ]
    ~verify:
      (Verifier.all [ Verifier.expect_operands 0; Verifier.expect_regions 1 ]);
  Context.register_op ctx cast_op
    ~summary:"temporary type cast bridging partially converted IR"
    ~traits:[ Context.Pure ]
    ~verify:(Verifier.expect_results 1)

(** Create an empty module. *)
let create_module () =
  Ircore.create ~regions:[ Ircore.single_block_region () ] module_op

let body_block m =
  match m.Ircore.regions with
  | [ r ] -> (
    match Ircore.region_first_block r with
    | Some b -> b
    | None -> invalid_arg "module region has no block")
  | _ -> invalid_arg "not a module"

let is_module op = op.Ircore.op_name = module_op

let cast rw v t =
  Rewriter.build1 rw ~operands:[ v ] ~result_types:[ t ] cast_op
