(** A StableHLO-like dialect used by the Enzyme-style peephole optimization
    workflow of Case Study 3: tensor arithmetic, shape manipulation and
    reductions at the ML-graph level of abstraction. *)

open Ir

let constant_op = "shlo.constant"
let add_op = "shlo.add"
let subtract_op = "shlo.subtract"
let multiply_op = "shlo.multiply"
let divide_op = "shlo.divide"
let negate_op = "shlo.negate"
let exp_op = "shlo.exponential"
let dot_general_op = "shlo.dot_general"
let transpose_op = "shlo.transpose"
let reshape_op = "shlo.reshape"
let reduce_op = "shlo.reduce"
let broadcast_op = "shlo.broadcast_in_dim"
let pad_op = "shlo.pad"
let concatenate_op = "shlo.concatenate"
let slice_op = "shlo.slice"
let convert_op = "shlo.convert"
let tanh_op = "shlo.tanh"
let rsqrt_op = "shlo.rsqrt"
let select_op = "shlo.select"

let binary_ops = [ add_op; subtract_op; multiply_op; divide_op; "shlo.maximum"; "shlo.minimum"; "shlo.power" ]
let unary_ops = [ negate_op; exp_op; tanh_op; rsqrt_op; convert_op; "shlo.logistic"; "shlo.sqrt" ]

let register ctx =
  Context.register_op ctx constant_op
    ~traits:[ Context.Pure; Context.Constant_like ]
    ~verify:
      (Verifier.all [ Verifier.expect_operands 0; Verifier.expect_results 1 ]);
  List.iter
    (fun name ->
      Context.register_op ctx name ~traits:[ Context.Pure ]
        ~verify:
          (Verifier.all [ Verifier.expect_operands 2; Verifier.expect_results 1 ]))
    binary_ops;
  List.iter
    (fun name ->
      Context.register_op ctx name ~traits:[ Context.Pure ]
        ~verify:
          (Verifier.all [ Verifier.expect_operands 1; Verifier.expect_results 1 ]))
    unary_ops;
  Context.register_op ctx dot_general_op ~summary:"generalized matmul"
    ~traits:[ Context.Pure ]
    ~verify:
      (Verifier.all [ Verifier.expect_operands 2; Verifier.expect_results 1 ]);
  Context.register_op ctx transpose_op ~traits:[ Context.Pure ]
    ~verify:
      (Verifier.all
         [
           Verifier.expect_operands 1;
           Verifier.expect_results 1;
           Verifier.expect_attr "permutation";
         ]);
  Context.register_op ctx reshape_op ~traits:[ Context.Pure ]
    ~verify:
      (Verifier.all [ Verifier.expect_operands 1; Verifier.expect_results 1 ]);
  Context.register_op ctx reduce_op ~summary:"reduction over dimensions"
    ~traits:[ Context.Pure ]
    ~verify:
      (Verifier.all
         [
           Verifier.expect_operands 2;
           (* operand, init *)
           Verifier.expect_results 1;
           Verifier.expect_attr "dimensions";
           Verifier.expect_attr "kind";
         ]);
  Context.register_op ctx broadcast_op ~traits:[ Context.Pure ]
    ~verify:
      (Verifier.all [ Verifier.expect_operands 1; Verifier.expect_results 1 ]);
  Context.register_op ctx pad_op ~traits:[ Context.Pure ]
    ~verify:
      (Verifier.all
         [
           Verifier.expect_operands 2;
           Verifier.expect_results 1;
           Verifier.expect_attr "edge_padding_low";
           Verifier.expect_attr "edge_padding_high";
         ]);
  Context.register_op ctx concatenate_op ~traits:[ Context.Pure ]
    ~verify:
      (Verifier.all [ Verifier.expect_min_operands 1; Verifier.expect_results 1 ]);
  Context.register_op ctx slice_op ~traits:[ Context.Pure ]
    ~verify:
      (Verifier.all [ Verifier.expect_operands 1; Verifier.expect_results 1 ]);
  Context.register_op ctx select_op ~traits:[ Context.Pure ]
    ~verify:
      (Verifier.all [ Verifier.expect_operands 3; Verifier.expect_results 1 ])

(* ------------------------------------------------------------------ *)
(* Builders                                                            *)
(* ------------------------------------------------------------------ *)

let binary rw name a b =
  Rewriter.build1 rw ~operands:[ a; b ]
    ~result_types:[ Ircore.value_typ a ]
    name

let add rw a b = binary rw add_op a b
let multiply rw a b = binary rw multiply_op a b

let unary rw name a =
  Rewriter.build1 rw ~operands:[ a ] ~result_types:[ Ircore.value_typ a ] name

let constant rw ~typ value =
  Rewriter.build1 rw ~result_types:[ typ ] ~attrs:[ ("value", value) ]
    constant_op

(** [dot_general a b]: contract the last dim of [a] with the first (or
    second-to-last for batched) dim of [b]; shapes tracked statically. *)
let dot_general rw a b ~result_typ =
  Rewriter.build1 rw ~operands:[ a; b ] ~result_types:[ result_typ ]
    dot_general_op

let transpose rw a ~permutation ~result_typ =
  Rewriter.build1 rw ~operands:[ a ] ~result_types:[ result_typ ]
    ~attrs:[ ("permutation", Attr.Int_array permutation) ]
    transpose_op

let reshape rw a ~result_typ =
  Rewriter.build1 rw ~operands:[ a ] ~result_types:[ result_typ ] reshape_op

let reduce rw a ~init ~dimensions ~kind ~result_typ =
  Rewriter.build1 rw ~operands:[ a; init ] ~result_types:[ result_typ ]
    ~attrs:
      [ ("dimensions", Attr.Int_array dimensions); ("kind", Attr.String kind) ]
    reduce_op

let pad rw a ~pad_value ~low ~high ~result_typ =
  Rewriter.build1 rw ~operands:[ a; pad_value ] ~result_types:[ result_typ ]
    ~attrs:
      [
        ("edge_padding_low", Attr.Int_array low);
        ("edge_padding_high", Attr.Int_array high);
      ]
    pad_op

let permutation_of op =
  match Ircore.attr op "permutation" with
  | Some (Attr.Int_array xs) -> Some xs
  | _ -> None

let is_zero_constant op =
  op.Ircore.op_name = constant_op
  &&
  match Ircore.attr op "value" with
  | Some (Attr.Float (0.0, _)) | Some (Attr.Int (0, _)) -> true
  | Some (Attr.Dense_float (xs, _)) -> List.for_all (fun x -> x = 0.0) xs
  | Some (Attr.Dense_int (xs, _)) -> List.for_all (fun x -> x = 0) xs
  | _ -> false
