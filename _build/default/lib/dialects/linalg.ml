(** The linalg dialect: structured operations on tensors and memrefs. The
    target of the TOSA lowering pipeline and the source for loop lowering. *)

open Ir

let matmul_op = "linalg.matmul"
let batch_matmul_op = "linalg.batch_matmul"
let fill_op = "linalg.fill"
let generic_op = "linalg.generic"
let conv_2d_op = "linalg.conv_2d_nhwc_hwcf"
let pooling_op = "linalg.pooling_nhwc_max"
let transpose_op = "linalg.transpose"
let reduce_op = "linalg.reduce"
let copy_op = "linalg.copy"

(* Structured ops have "ins" and "outs" operands, split by the
   operand_segment_sizes attribute: [num_inputs; num_outputs]. *)
let segments op =
  match Ircore.attr op "operand_segment_sizes" with
  | Some (Attr.Int_array [ i; o ]) -> (i, o)
  | _ -> (Ircore.num_operands op - 1, 1)

let inputs op =
  let i, _ = segments op in
  List.filteri (fun idx _ -> idx < i) (Ircore.operands op)

let outputs op =
  let i, _ = segments op in
  List.filteri (fun idx _ -> idx >= i) (Ircore.operands op)

let structured_effects (op : Ircore.op) =
  (* on tensors the ops are pure; on memrefs they read inputs, write outputs *)
  let on_memref =
    List.exists
      (fun v ->
        match Ircore.value_typ v with Typ.Memref _ -> true | _ -> false)
      (Ircore.operands op)
  in
  if on_memref then [ Context.Read; Context.Write ] else []

let register ctx =
  let reg ?(verify = Verifier.expect_min_operands 1) name =
    Context.register_op ctx name ~effects:structured_effects ~verify
  in
  reg matmul_op;
  reg batch_matmul_op;
  reg fill_op;
  reg conv_2d_op;
  reg pooling_op;
  reg transpose_op;
  reg copy_op;
  Context.register_op ctx generic_op ~effects:structured_effects
    ~verify:
      (Verifier.all [ Verifier.expect_min_operands 1; Verifier.expect_regions 1 ]);
  Context.register_op ctx reduce_op ~effects:structured_effects
    ~verify:(Verifier.expect_regions 1);
  Context.register_op ctx "linalg.yield"
    ~traits:[ Context.Terminator; Context.Return_like ];
  Context.register_op ctx "linalg.index" ~traits:[ Context.Pure ]
    ~verify:(Verifier.expect_results 1)

let structured rw name ~ins ~outs ~result_types =
  Rewriter.build rw
    ~operands:(ins @ outs)
    ~result_types
    ~attrs:
      [
        ( "operand_segment_sizes",
          Attr.Int_array [ List.length ins; List.length outs ] );
      ]
    name

(** [linalg.matmul ins(%a, %b) outs(%c)] on memrefs (no results) or tensors
    (one result). *)
let matmul rw ~a ~b ~c =
  let result_types =
    match Ircore.value_typ c with Typ.Ranked_tensor _ -> [ Ircore.value_typ c ] | _ -> []
  in
  structured rw matmul_op ~ins:[ a; b ] ~outs:[ c ] ~result_types

let fill rw ~value ~dest =
  let result_types =
    match Ircore.value_typ dest with
    | Typ.Ranked_tensor _ -> [ Ircore.value_typ dest ]
    | _ -> []
  in
  structured rw fill_op ~ins:[ value ] ~outs:[ dest ] ~result_types

(** Build a [linalg.generic]: [body rw block_args -> yielded]. The region's
    block has one argument per input and output element. *)
let generic rw ~ins ~outs ~result_types ?(attrs = []) body =
  let elt v = Dutil.scalar_of (Ircore.value_typ v) in
  let block =
    Ircore.create_block ~args:(List.map elt ins @ List.map elt outs) ()
  in
  let region = Ircore.region_with_block block in
  let op =
    Rewriter.build rw
      ~operands:(ins @ outs)
      ~result_types ~regions:[ region ]
      ~attrs:
        (attrs
        @ [
            ( "operand_segment_sizes",
              Attr.Int_array [ List.length ins; List.length outs ] );
          ])
      generic_op
  in
  let brw = Dutil.rw_at_end block in
  let yielded = body brw (Ircore.block_args block) in
  ignore (Rewriter.build brw ~operands:yielded "linalg.yield");
  op
