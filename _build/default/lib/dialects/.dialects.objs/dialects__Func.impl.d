lib/dialects/func.ml: Attr Context Ir Ircore Option Rewriter Symbol Typ Verifier
