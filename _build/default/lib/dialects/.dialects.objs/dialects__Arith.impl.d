lib/dialects/arith.ml: Attr Builder Context Dutil Float Int Ir Ircore List Option Pattern Rewriter Typ Util Verifier
