lib/dialects/scf.ml: Arith Attr Builder Context Dutil Fmt Ir Ircore List Option Pattern Result Rewriter Typ Util Verifier
