lib/dialects/memref.ml: Attr Context Fmt Ir Ircore List Rewriter Typ Verifier
