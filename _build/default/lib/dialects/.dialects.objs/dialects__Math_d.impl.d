lib/dialects/math_d.ml: Context Ir List Verifier
