lib/dialects/affine_ops.ml: Affine Array Attr Context Fmt Ir Ircore List Option Rewriter Typ Util Verifier
