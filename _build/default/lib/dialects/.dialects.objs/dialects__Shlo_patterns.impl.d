lib/dialects/shlo_patterns.ml: Attr Builder Fun Ir Ircore List Pattern Rewriter Shlo Typ
