lib/dialects/registry.ml: Affine_ops Arith Builtin Cf Func Index_d Ir Linalg Llvm Math_d Memref Scf Shlo Shlo_patterns Tensor_d Tosa Vector
