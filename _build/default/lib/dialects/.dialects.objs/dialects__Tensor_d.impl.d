lib/dialects/tensor_d.ml: Context Ir List Verifier
