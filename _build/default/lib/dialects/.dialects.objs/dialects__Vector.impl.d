lib/dialects/vector.ml: Attr Context Ir Ircore Rewriter Typ Verifier
