lib/dialects/index_d.ml: Attr Context Dutil Ir Rewriter Typ Verifier
