lib/dialects/cf.ml: Array Attr Context Ir Ircore List Rewriter Util Verifier
