lib/dialects/linalg.ml: Attr Context Dutil Ir Ircore List Rewriter Typ Verifier
