lib/dialects/tosa.ml: Context Ir List Rewriter Verifier
