lib/dialects/shlo.ml: Attr Context Ir Ircore List Rewriter Verifier
