lib/dialects/builtin.ml: Context Ir Ircore Rewriter Verifier
