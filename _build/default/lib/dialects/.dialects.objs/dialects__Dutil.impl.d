lib/dialects/dutil.ml: Attr Builder Context Greedy Ir Ircore List Option Result Rewriter Typ Util Verifier
