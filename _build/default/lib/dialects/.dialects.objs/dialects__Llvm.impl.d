lib/dialects/llvm.ml: Cf Context Ir List Util Verifier
