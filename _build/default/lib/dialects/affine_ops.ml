(** The affine dialect (the slice used by lowering passes):
    [affine.apply], [affine.min], [affine.max]. *)

open Ir

let apply_op = "affine.apply"
let min_op = "affine.min"
let max_op = "affine.max"

let map_of op =
  match Ircore.attr op "map" with
  | Some (Attr.Affine_map m) -> Some m
  | _ -> None

let verify_map_arity op =
  match map_of op with
  | None -> Error "missing 'map' attribute"
  | Some m ->
    let expected = m.Affine.num_dims + m.Affine.num_syms in
    if Ircore.num_operands op <> expected then
      Error
        (Fmt.str "map expects %d operands (dims+syms), got %d" expected
           (Ircore.num_operands op))
    else Ok ()

let register ctx =
  let fold_with combine (op : Ircore.op) attrs =
    match map_of op with
    | None -> None
    | Some m ->
      let const_args =
        List.map (function Some (Attr.Int (n, _)) -> Some n | _ -> None) attrs
      in
      if List.for_all Option.is_some const_args then begin
        let args = Array.of_list (List.map Option.get const_args) in
        let dims = Array.sub args 0 m.Affine.num_dims in
        let syms = Array.sub args m.Affine.num_dims m.Affine.num_syms in
        match Affine.eval_map m ~dims ~syms with
        | [] -> None
        | results -> Some [ Attr.Int (combine results, Typ.index) ]
        | exception Affine.Eval_error _ -> None
      end
      else None
  in
  let reg name combine =
    Context.register_op ctx name ~traits:[ Context.Pure ]
      ~verify:(Verifier.all [ verify_map_arity; Verifier.expect_results 1 ])
      ~interfaces:
        (Util.Univ.add Context.folder_key
           { Context.fold = fold_with combine }
           Util.Univ.empty)
  in
  reg apply_op (function [ x ] -> x | xs -> List.hd xs);
  reg min_op (fun xs -> List.fold_left min max_int xs);
  reg max_op (fun xs -> List.fold_left max min_int xs)

let apply rw map operands =
  Rewriter.build1 rw ~operands ~result_types:[ Typ.index ]
    ~attrs:[ ("map", Attr.Affine_map map) ]
    apply_op

let min_ rw map operands =
  Rewriter.build1 rw ~operands ~result_types:[ Typ.index ]
    ~attrs:[ ("map", Attr.Affine_map map) ]
    min_op
