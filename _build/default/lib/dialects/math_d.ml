(** The math dialect: transcendental scalar functions used inside
    linalg.generic payloads. *)

open Ir

let unary =
  [
    "math.exp"; "math.log"; "math.tanh"; "math.sqrt"; "math.rsqrt";
    "math.absf"; "math.erf"; "math.floor"; "math.ceil"; "math.sigmoid";
  ]

let binary = [ "math.pow"; "math.atan2" ]

let register ctx =
  List.iter
    (fun name ->
      Context.register_op ctx name ~traits:[ Context.Pure ]
        ~verify:
          (Verifier.all [ Verifier.expect_operands 1; Verifier.expect_results 1 ]))
    unary;
  List.iter
    (fun name ->
      Context.register_op ctx name ~traits:[ Context.Pure ]
        ~verify:
          (Verifier.all [ Verifier.expect_operands 2; Verifier.expect_results 1 ]))
    binary;
  (* arith.negf is referenced by the tosa lowering *)
  Context.register_op ctx "arith.negf" ~traits:[ Context.Pure ]
    ~verify:
      (Verifier.all [ Verifier.expect_operands 1; Verifier.expect_results 1 ])
