(** The cf dialect: classical unstructured control flow. *)

open Ir

let br_op = "cf.br"
let cond_br_op = "cf.cond_br"
let switch_op = "cf.switch"
let assert_op = "cf.assert"

let cond_segments op =
  match Ircore.attr op "operand_segment_sizes" with
  | Some (Attr.Int_array [ c; t; f ]) -> (c, t, f)
  | _ -> (1, Ircore.num_operands op - 1, 0)

let branch_like : Context.branch_like =
  {
    Context.br_successor_operands =
      (fun op succ_index ->
        match op.Ircore.op_name with
        | "cf.br" -> Ircore.operands op
        | "cf.cond_br" ->
          let _, t, f = cond_segments op in
          let ops = Array.of_list (Ircore.operands op) in
          if succ_index = 0 then Array.to_list (Array.sub ops 1 t)
          else Array.to_list (Array.sub ops (1 + t) f)
        | _ -> []);
  }

let register ctx =
  let ifaces =
    Util.Univ.add Context.branch_like_key branch_like Util.Univ.empty
  in
  Context.register_op ctx br_op ~summary:"unconditional branch"
    ~traits:[ Context.Terminator ] ~interfaces:ifaces;
  Context.register_op ctx cond_br_op ~summary:"conditional branch"
    ~traits:[ Context.Terminator ] ~interfaces:ifaces
    ~verify:(Verifier.expect_min_operands 1);
  Context.register_op ctx switch_op ~summary:"multiway branch"
    ~traits:[ Context.Terminator ];
  Context.register_op ctx assert_op ~summary:"runtime assertion"
    ~verify:(Verifier.expect_operands 1)

let br rw ~dest ?(args = []) () =
  ignore (Rewriter.build rw ~operands:args ~successors:[ dest ] br_op)

let cond_br rw ~cond ~true_dest ?(true_args = []) ~false_dest
    ?(false_args = []) () =
  ignore
    (Rewriter.build rw
       ~operands:((cond :: true_args) @ false_args)
       ~successors:[ true_dest; false_dest ]
       ~attrs:
         [
           ( "operand_segment_sizes",
             Attr.Int_array [ 1; List.length true_args; List.length false_args ]
           );
         ]
       cond_br_op)
