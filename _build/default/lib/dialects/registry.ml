(** One-stop registration of every dialect shipped with this library. *)

let register_all ctx =
  (* force linkage of the pattern modules so their registrations run *)
  ignore (Shlo_patterns.names ());
  Builtin.register ctx;
  Func.register ctx;
  Arith.register ctx;
  Index_d.register ctx;
  Scf.register ctx;
  Cf.register ctx;
  Memref.register ctx;
  Affine_ops.register ctx;
  Llvm.register ctx;
  Vector.register ctx;
  Tosa.register ctx;
  Linalg.register ctx;
  Shlo.register ctx;
  Tensor_d.register ctx;
  Math_d.register ctx

(** Fresh context with all dialects registered. *)
let context ?allow_unregistered () =
  let ctx = Ir.Context.create ?allow_unregistered () in
  register_all ctx;
  ctx
