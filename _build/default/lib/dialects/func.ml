(** The func dialect: functions, calls and returns. *)

open Ir

let func_op = "func.func"
let return_op = "func.return"
let call_op = "func.call"

let register ctx =
  Context.register_op ctx func_op ~summary:"function definition"
    ~traits:[ Context.Isolated_from_above; Context.Symbol ]
    ~verify:
      (Verifier.all
         [
           Verifier.expect_operands 0;
           Verifier.expect_regions 1;
           Verifier.expect_attr "sym_name";
           Verifier.expect_attr "function_type";
         ]);
  Context.register_op ctx return_op ~summary:"function return"
    ~traits:[ Context.Terminator; Context.Return_like ];
  Context.register_op ctx call_op ~summary:"direct call"
    ~verify:(Verifier.expect_attr "callee")
    ~effects:(fun _ -> [ Context.Read; Context.Write ])

(** Create a function with entry-block arguments matching [arg_types].
    Returns the op and its entry block. *)
let create ~name ~arg_types ~result_types () =
  let entry = Ircore.create_block ~args:arg_types () in
  let region = Ircore.region_with_block entry in
  let op =
    Ircore.create ~regions:[ region ]
      ~attrs:
        [
          ("sym_name", Attr.String name);
          ("function_type", Attr.Type (Typ.Func (arg_types, result_types)));
        ]
      func_op
  in
  (op, entry)

let name op = Option.value ~default:"" (Symbol.symbol_name op)

let function_type op =
  match Ircore.attr op "function_type" with
  | Some (Attr.Type (Typ.Func (ins, outs))) -> Some (ins, outs)
  | _ -> None

let entry_block op =
  match op.Ircore.regions with
  | [ r ] -> Ircore.region_first_block r
  | _ -> None

let return rw ?(operands = []) () =
  Rewriter.build rw ~operands return_op |> ignore

let call rw ~callee ~operands ~result_types =
  Rewriter.build rw ~operands ~result_types
    ~attrs:[ ("callee", Attr.Symbol_ref (callee, [])) ]
    call_op
