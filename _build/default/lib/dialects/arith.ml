(** The arith dialect: integer/float arithmetic, comparisons and casts, with
    constant folders and canonicalization patterns. *)

open Ir

let constant_op = "arith.constant"

(* comparison predicates, stored as a string attribute *)
type ipred = Eq | Ne | Slt | Sle | Sgt | Sge | Ult | Ule | Ugt | Uge

let ipred_to_string = function
  | Eq -> "eq"
  | Ne -> "ne"
  | Slt -> "slt"
  | Sle -> "sle"
  | Sgt -> "sgt"
  | Sge -> "sge"
  | Ult -> "ult"
  | Ule -> "ule"
  | Ugt -> "ugt"
  | Uge -> "uge"

let ipred_of_string = function
  | "eq" -> Some Eq
  | "ne" -> Some Ne
  | "slt" -> Some Slt
  | "sle" -> Some Sle
  | "sgt" -> Some Sgt
  | "sge" -> Some Sge
  | "ult" -> Some Ult
  | "ule" -> Some Ule
  | "ugt" -> Some Ugt
  | "uge" -> Some Uge
  | _ -> None

(* Unsigned comparison reinterprets OCaml's native int: negative values are
   "huge". If the signs agree, signed order coincides with unsigned order;
   otherwise the negative operand is the larger one. *)
let ult a b = if a < 0 = (b < 0) then a < b else b < 0

let eval_ipred p a b =
  match p with
  | Eq -> a = b
  | Ne -> a <> b
  | Slt -> a < b
  | Sle -> a <= b
  | Sgt -> a > b
  | Sge -> a >= b
  | Ult -> ult a b
  | Ule -> not (ult b a)
  | Ugt -> ult b a
  | Uge -> not (ult a b)

let register ctx =
  Context.register_op ctx constant_op ~summary:"integer or float constant"
    ~traits:[ Context.Pure; Context.Constant_like ]
    ~verify:
      (Verifier.all
         [
           Verifier.expect_operands 0;
           Verifier.expect_results 1;
           Verifier.expect_attr "value";
         ]);
  let div_guard f a b = if b = 0 then raise Division_by_zero else f a b in
  Dutil.register_binary ctx "arith.addi" ~fold_int:( + )
    ~traits:[ Context.Commutative ];
  Dutil.register_binary ctx "arith.subi" ~fold_int:( - );
  Dutil.register_binary ctx "arith.muli" ~fold_int:( * )
    ~traits:[ Context.Commutative ];
  Dutil.register_binary ctx "arith.divsi" ~fold_int:(div_guard ( / ));
  Dutil.register_binary ctx "arith.divui" ~fold_int:(div_guard ( / ));
  Dutil.register_binary ctx "arith.remsi" ~fold_int:(div_guard Int.rem);
  Dutil.register_binary ctx "arith.remui" ~fold_int:(div_guard Int.rem);
  Dutil.register_binary ctx "arith.andi" ~fold_int:( land )
    ~traits:[ Context.Commutative ];
  Dutil.register_binary ctx "arith.ori" ~fold_int:( lor )
    ~traits:[ Context.Commutative ];
  Dutil.register_binary ctx "arith.xori" ~fold_int:( lxor )
    ~traits:[ Context.Commutative ];
  Dutil.register_binary ctx "arith.maxsi" ~fold_int:max
    ~traits:[ Context.Commutative ];
  Dutil.register_binary ctx "arith.minsi" ~fold_int:min
    ~traits:[ Context.Commutative ];
  Dutil.register_binary ctx "arith.shli" ~fold_int:(fun a b -> a lsl b);
  Dutil.register_binary ctx "arith.shrsi" ~fold_int:(fun a b -> a asr b);
  Dutil.register_binary ctx "arith.addf" ~fold_float:( +. )
    ~traits:[ Context.Commutative ];
  Dutil.register_binary ctx "arith.subf" ~fold_float:( -. );
  Dutil.register_binary ctx "arith.mulf" ~fold_float:( *. )
    ~traits:[ Context.Commutative ];
  Dutil.register_binary ctx "arith.divf" ~fold_float:( /. );
  Dutil.register_binary ctx "arith.maximumf" ~fold_float:Float.max
    ~traits:[ Context.Commutative ];
  Dutil.register_binary ctx "arith.minimumf" ~fold_float:Float.min
    ~traits:[ Context.Commutative ];
  (* comparisons *)
  let cmpi_fold (op : Ircore.op) attrs =
    match (Dutil.str_attr_of op "predicate", attrs) with
    | Some p, [ Some (Attr.Int (a, _)); Some (Attr.Int (b, _)) ] ->
      Option.map
        (fun pred -> [ Attr.Bool (eval_ipred pred a b) ])
        (ipred_of_string p)
    | _ -> None
  in
  Context.register_op ctx "arith.cmpi" ~summary:"integer comparison"
    ~traits:[ Context.Pure ]
    ~verify:
      (Verifier.all
         [
           Verifier.expect_operands 2;
           Verifier.expect_results 1;
           Verifier.expect_attr "predicate";
         ])
    ~interfaces:
      (Util.Univ.add Context.folder_key { Context.fold = cmpi_fold }
         Util.Univ.empty);
  Context.register_op ctx "arith.cmpf" ~summary:"float comparison"
    ~traits:[ Context.Pure ]
    ~verify:
      (Verifier.all
         [
           Verifier.expect_operands 2;
           Verifier.expect_results 1;
           Verifier.expect_attr "predicate";
         ]);
  (* casts *)
  let cast_verify =
    Verifier.all [ Verifier.expect_operands 1; Verifier.expect_results 1 ]
  in
  List.iter
    (fun name ->
      Context.register_op ctx name ~traits:[ Context.Pure ] ~verify:cast_verify)
    [
      "arith.index_cast";
      "arith.extf";
      "arith.truncf";
      "arith.extsi";
      "arith.extui";
      "arith.trunci";
      "arith.sitofp";
      "arith.fptosi";
      "arith.bitcast";
    ];
  Context.register_op ctx "arith.select" ~summary:"ternary select"
    ~traits:[ Context.Pure ]
    ~verify:
      (Verifier.all [ Verifier.expect_operands 3; Verifier.expect_results 1 ])

(* ------------------------------------------------------------------ *)
(* Builders and accessors                                              *)
(* ------------------------------------------------------------------ *)

let constant rw (v : Attr.t) (t : Typ.t) =
  Rewriter.build1 rw ~result_types:[ t ] ~attrs:[ ("value", v) ] constant_op

let const_index rw v = Dutil.const_int rw ~typ:Typ.index v

let binop rw name a b =
  Rewriter.build1 rw ~operands:[ a; b ]
    ~result_types:[ Ircore.value_typ a ]
    ("arith." ^ name)

let addi rw a b = binop rw "addi" a b
let subi rw a b = binop rw "subi" a b
let muli rw a b = binop rw "muli" a b
let divsi rw a b = binop rw "divsi" a b
let remsi rw a b = binop rw "remsi" a b
let addf rw a b = binop rw "addf" a b
let mulf rw a b = binop rw "mulf" a b

let cmpi rw pred a b =
  Rewriter.build1 rw ~operands:[ a; b ] ~result_types:[ Typ.i1 ]
    ~attrs:[ ("predicate", Attr.String (ipred_to_string pred)) ]
    "arith.cmpi"

let select rw c a b =
  Rewriter.build1 rw ~operands:[ c; a; b ]
    ~result_types:[ Ircore.value_typ a ]
    "arith.select"

let index_cast rw v t =
  Rewriter.build1 rw ~operands:[ v ] ~result_types:[ t ] "arith.index_cast"

let constant_value op =
  if op.Ircore.op_name = constant_op then Ircore.attr op "value" else None

(** If [v] is defined by an [arith.constant] with an integer value. *)
let constant_int_of_value v =
  match Ircore.defining_op v with
  | Some op -> ( match constant_value op with
    | Some (Attr.Int (n, _)) -> Some n
    | _ -> None)
  | None -> None

(* ------------------------------------------------------------------ *)
(* Canonicalization patterns                                           *)
(* ------------------------------------------------------------------ *)

let is_const_int v n = constant_int_of_value v = Some n

let () =
  (* x + 0 -> x ; 0 + x -> x *)
  Pattern.register_make ~name:"arith.addi_zero" ~root:"arith.addi"
    (fun rw op ->
      let a = Ircore.operand ~index:0 op and b = Ircore.operand ~index:1 op in
      if is_const_int b 0 then (
        Rewriter.replace_op rw op ~with_:[ a ];
        true)
      else if is_const_int a 0 then (
        Rewriter.replace_op rw op ~with_:[ b ];
        true)
      else false);
  (* x * 1 -> x ; x * 0 -> 0 *)
  Pattern.register_make ~name:"arith.muli_identity" ~root:"arith.muli"
    (fun rw op ->
      let a = Ircore.operand ~index:0 op and b = Ircore.operand ~index:1 op in
      if is_const_int b 1 then (
        Rewriter.replace_op rw op ~with_:[ a ];
        true)
      else if is_const_int a 1 then (
        Rewriter.replace_op rw op ~with_:[ b ];
        true)
      else if is_const_int a 0 then (
        Rewriter.replace_op rw op ~with_:[ a ];
        true)
      else if is_const_int b 0 then (
        Rewriter.replace_op rw op ~with_:[ b ];
        true)
      else false);
  (* x - 0 -> x; x - x -> 0 *)
  Pattern.register_make ~name:"arith.subi_zero" ~root:"arith.subi"
    (fun rw op ->
      let a = Ircore.operand ~index:0 op and b = Ircore.operand ~index:1 op in
      if is_const_int b 0 then (
        Rewriter.replace_op rw op ~with_:[ a ];
        true)
      else if a == b then begin
        Rewriter.set_ip rw (Builder.Before op);
        let zero = constant rw (Attr.Int (0, Ircore.value_typ a)) (Ircore.value_typ a) in
        Rewriter.replace_op rw op ~with_:[ zero ];
        true
      end
      else false);
  (* x +. 0.0 -> x (exact for the workloads we model) *)
  let is_const_float v f =
    match Ircore.defining_op v with
    | Some op -> (
      match constant_value op with
      | Some (Attr.Float (x, _)) -> x = f
      | _ -> false)
    | None -> false
  in
  Pattern.register_make ~name:"arith.addf_zero" ~root:"arith.addf"
    (fun rw op ->
      let a = Ircore.operand ~index:0 op and b = Ircore.operand ~index:1 op in
      if is_const_float b 0.0 then (
        Rewriter.replace_op rw op ~with_:[ a ];
        true)
      else if is_const_float a 0.0 then (
        Rewriter.replace_op rw op ~with_:[ b ];
        true)
      else false);
  Pattern.register_make ~name:"arith.mulf_one" ~root:"arith.mulf"
    (fun rw op ->
      let a = Ircore.operand ~index:0 op and b = Ircore.operand ~index:1 op in
      if is_const_float b 1.0 then (
        Rewriter.replace_op rw op ~with_:[ a ];
        true)
      else if is_const_float a 1.0 then (
        Rewriter.replace_op rw op ~with_:[ b ];
        true)
      else false);
  (* select true a b -> a etc. *)
  Pattern.register_make ~name:"arith.select_const" ~root:"arith.select"
    (fun rw op ->
      let c = Ircore.operand ~index:0 op in
      match Ircore.defining_op c with
      | Some d when d.Ircore.op_name = constant_op -> (
        match Ircore.attr d "value" with
        | Some (Attr.Bool true) | Some (Attr.Int (1, _)) ->
          Rewriter.replace_op rw op ~with_:[ Ircore.operand ~index:1 op ];
          true
        | Some (Attr.Bool false) | Some (Attr.Int (0, _)) ->
          Rewriter.replace_op rw op ~with_:[ Ircore.operand ~index:2 op ];
          true
        | _ -> false)
      | _ -> false)

(** The canonicalization pattern set of this dialect. *)
let canonicalization_patterns () =
  [
    Pattern.lookup_exn "arith.addi_zero";
    Pattern.lookup_exn "arith.muli_identity";
    Pattern.lookup_exn "arith.subi_zero";
    Pattern.lookup_exn "arith.addf_zero";
    Pattern.lookup_exn "arith.mulf_one";
    Pattern.lookup_exn "arith.select_const";
  ]
