(** The TOSA dialect (Tensor Operator Set Architecture): the operation set
    that imported TensorFlow/TFLite models use in Case Study 1. *)

open Ir

let elementwise_binary =
  [
    "tosa.add"; "tosa.sub"; "tosa.mul"; "tosa.maximum"; "tosa.minimum";
    "tosa.pow"; "tosa.logical_and"; "tosa.logical_or";
  ]

let elementwise_unary =
  [
    "tosa.abs"; "tosa.ceil"; "tosa.clamp"; "tosa.exp"; "tosa.floor";
    "tosa.log"; "tosa.negate"; "tosa.reciprocal"; "tosa.rsqrt";
    "tosa.sigmoid"; "tosa.tanh"; "tosa.cast"; "tosa.rescale"; "tosa.erf";
  ]

let reductions =
  [ "tosa.reduce_sum"; "tosa.reduce_max"; "tosa.reduce_min"; "tosa.reduce_prod" ]

let structured =
  [
    "tosa.conv2d"; "tosa.depthwise_conv2d"; "tosa.fully_connected";
    "tosa.matmul"; "tosa.avg_pool2d"; "tosa.max_pool2d";
  ]

let shape_ops =
  [
    "tosa.reshape"; "tosa.transpose"; "tosa.concat"; "tosa.pad"; "tosa.slice";
    "tosa.tile"; "tosa.gather";
  ]

let const_op = "tosa.const"

let all_ops =
  (const_op :: elementwise_binary) @ elementwise_unary @ reductions
  @ structured @ shape_ops

let register ctx =
  Context.register_op ctx const_op ~traits:[ Context.Pure; Context.Constant_like ]
    ~verify:
      (Verifier.all [ Verifier.expect_operands 0; Verifier.expect_results 1 ]);
  List.iter
    (fun name ->
      Context.register_op ctx name ~traits:[ Context.Pure ]
        ~verify:
          (Verifier.all [ Verifier.expect_operands 2; Verifier.expect_results 1 ]))
    elementwise_binary;
  List.iter
    (fun name ->
      Context.register_op ctx name ~traits:[ Context.Pure ]
        ~verify:
          (Verifier.all [ Verifier.expect_operands 1; Verifier.expect_results 1 ]))
    (elementwise_unary @ reductions);
  List.iter
    (fun name ->
      Context.register_op ctx name ~traits:[ Context.Pure ]
        ~verify:
          (Verifier.all [ Verifier.expect_min_operands 1; Verifier.expect_results 1 ]))
    (structured @ shape_ops)

let binary rw name a b ~result_typ =
  Rewriter.build1 rw ~operands:[ a; b ] ~result_types:[ result_typ ] name

let unary rw name a ~result_typ =
  Rewriter.build1 rw ~operands:[ a ] ~result_types:[ result_typ ] name

let const rw ~typ value =
  Rewriter.build1 rw ~result_types:[ typ ] ~attrs:[ ("value", value) ] const_op
