(** The tensor dialect: value-semantics tensor creation and shape ops
    (targets of the TOSA shape-op lowering). *)

open Ir

let ops =
  [
    "tensor.empty"; "tensor.reshape"; "tensor.concat"; "tensor.pad";
    "tensor.slice"; "tensor.gather"; "tensor.tile"; "tensor.extract";
    "tensor.insert"; "tensor.cast"; "tensor.dim"; "tensor.extract_slice";
    "tensor.insert_slice";
  ]

let register ctx =
  List.iter
    (fun name ->
      Context.register_op ctx name ~traits:[ Context.Pure ]
        ~verify:(fun op ->
          if name = "tensor.empty" then Verifier.expect_results 1 op
          else Ok ()))
    ops
