(** The memref dialect: memory allocation, loads/stores and views. *)

open Ir

(* Sentinel mirroring MLIR's ShapedType::kDynamic in static_* attributes. *)
let dynamic_sentinel = min_int

let alloc_op = "memref.alloc"
let alloca_op = "memref.alloca"
let dealloc_op = "memref.dealloc"
let load_op = "memref.load"
let store_op = "memref.store"
let subview_op = "memref.subview"
let dim_op = "memref.dim"
let cast_op = "memref.cast"
let copy_op = "memref.copy"
let extract_strided_metadata_op = "memref.extract_strided_metadata"
let reinterpret_cast_op = "memref.reinterpret_cast"
let extract_aligned_pointer_op = "memref.extract_aligned_pointer_as_index"

let verify_memref_result op =
  match Ircore.results op with
  | [ r ] -> (
    match Ircore.value_typ r with
    | Typ.Memref _ | Typ.Unranked_memref _ -> Ok ()
    | t -> Error (Fmt.str "expected memref result, got %a" Typ.pp t))
  | _ -> Error "expected a single memref result"

let register ctx =
  Context.register_op ctx alloc_op ~summary:"heap allocation"
    ~effects:(fun _ -> [ Context.Alloc ])
    ~verify:verify_memref_result;
  Context.register_op ctx alloca_op ~summary:"stack allocation"
    ~effects:(fun _ -> [ Context.Alloc ])
    ~verify:verify_memref_result;
  Context.register_op ctx dealloc_op ~summary:"deallocation"
    ~effects:(fun _ -> [ Context.Free ])
    ~verify:(Verifier.expect_operands 1);
  Context.register_op ctx load_op ~summary:"indexed load"
    ~effects:(fun _ -> [ Context.Read ])
    ~verify:
      (Verifier.all [ Verifier.expect_min_operands 1; Verifier.expect_results 1 ]);
  Context.register_op ctx store_op ~summary:"indexed store"
    ~effects:(fun _ -> [ Context.Write ])
    ~verify:(Verifier.expect_min_operands 2);
  Context.register_op ctx subview_op ~summary:"strided view of a memref"
    ~traits:[ Context.Pure ]
    ~verify:
      (Verifier.all
         [
           Verifier.expect_min_operands 1;
           Verifier.expect_results 1;
           Verifier.expect_attr "static_offsets";
           Verifier.expect_attr "static_sizes";
           Verifier.expect_attr "static_strides";
         ]);
  Context.register_op ctx dim_op ~summary:"dimension query"
    ~traits:[ Context.Pure ]
    ~verify:
      (Verifier.all [ Verifier.expect_operands 2; Verifier.expect_results 1 ]);
  Context.register_op ctx cast_op ~summary:"memref type cast"
    ~traits:[ Context.Pure ]
    ~verify:
      (Verifier.all [ Verifier.expect_operands 1; Verifier.expect_results 1 ]);
  Context.register_op ctx copy_op ~summary:"memref copy"
    ~effects:(fun _ -> [ Context.Read; Context.Write ])
    ~verify:(Verifier.expect_operands 2);
  Context.register_op ctx extract_strided_metadata_op
    ~summary:"decompose a memref into base, offset, sizes, strides"
    ~traits:[ Context.Pure ]
    ~verify:(Verifier.expect_operands 1);
  Context.register_op ctx reinterpret_cast_op
    ~summary:"reassemble a memref from base, offset, sizes, strides"
    ~traits:[ Context.Pure ]
    ~verify:
      (Verifier.all
         [
           Verifier.expect_min_operands 1;
           Verifier.expect_results 1;
           Verifier.expect_attr "static_offsets";
           Verifier.expect_attr "static_sizes";
           Verifier.expect_attr "static_strides";
         ]);
  Context.register_op ctx extract_aligned_pointer_op
    ~summary:"base pointer of a memref as an index" ~traits:[ Context.Pure ]
    ~verify:
      (Verifier.all [ Verifier.expect_operands 1; Verifier.expect_results 1 ])

(* ------------------------------------------------------------------ *)
(* Builders                                                            *)
(* ------------------------------------------------------------------ *)

let alloc rw ?(dynamic_sizes = []) typ =
  Rewriter.build1 rw ~operands:dynamic_sizes ~result_types:[ typ ] alloc_op

let dealloc rw m = ignore (Rewriter.build rw ~operands:[ m ] dealloc_op)

let load rw m indices =
  let elt =
    match Typ.element_type (Ircore.value_typ m) with
    | Some t -> t
    | None -> invalid_arg "memref.load on non-memref"
  in
  Rewriter.build1 rw ~operands:(m :: indices) ~result_types:[ elt ] load_op

let store rw v m indices =
  ignore (Rewriter.build rw ~operands:(v :: m :: indices) store_op)

let dim rw m i =
  Rewriter.build1 rw ~operands:[ m; i ] ~result_types:[ Typ.index ] dim_op

(** Mixed static/dynamic operand lists, as in MLIR: statics go into an
    attribute with a sentinel where a dynamic value is provided. *)
type fold_result = Static of int | Dynamic of Ircore.value

let split_fold_results frs =
  let statics =
    List.map (function Static n -> n | Dynamic _ -> dynamic_sentinel) frs
  in
  let dynamics =
    List.filter_map (function Dynamic v -> Some v | Static _ -> None) frs
  in
  (statics, dynamics)

(** Build [memref.subview] with mixed offsets/sizes/strides and an inferred
    strided result type. *)
let subview rw m ~offsets ~sizes ~strides =
  let so, d_offs = split_fold_results offsets in
  let ss, ds = split_fold_results sizes in
  let st, dt = split_fold_results strides in
  let src_typ = Ircore.value_typ m in
  let elt =
    match Typ.element_type src_typ with
    | Some t -> t
    | None -> invalid_arg "memref.subview on non-memref"
  in
  let result_dims =
    List.map
      (fun s -> if s = dynamic_sentinel then Typ.Dynamic else Typ.Static s)
      ss
  in
  (* result layout: strided with dynamic offset/strides unless fully static *)
  let src_strides, src_offset =
    match src_typ with
    | Typ.Memref (dims, _, Typ.Identity) ->
      (* row-major strides *)
      let ds = List.map (function Typ.Static n -> n | Typ.Dynamic -> -1) dims in
      let rec suffix_products = function
        | [] -> []
        | [ _ ] -> [ 1 ]
        | _ :: rest ->
          let sp = suffix_products rest in
          (match (sp, rest) with
          | s :: _, Typ.Static n :: _ when s >= 0 && n >= 0 -> (s * n) :: sp
          | _ -> -1 :: sp)
      in
      (suffix_products (List.map (fun n -> Typ.Static n) ds), 0)
    | Typ.Memref (_, _, Typ.Strided { offset; strides }) ->
      ( List.map (function Typ.Static n -> n | Typ.Dynamic -> -1) strides,
        match offset with Typ.Static n -> n | Typ.Dynamic -> -1 )
    | _ -> ([], -1)
  in
  let all_static xs = List.for_all (fun x -> x <> dynamic_sentinel) xs in
  let layout =
    if
      all_static so && all_static st && src_offset >= 0
      && List.for_all (fun s -> s >= 0) src_strides
      && List.length src_strides = List.length st
    then
      let offset =
        List.fold_left2 (fun acc o s -> acc + (o * s)) src_offset so src_strides
      in
      let strides = List.map2 (fun rel src -> rel * src) st src_strides in
      Typ.Strided
        { offset = Typ.Static offset;
          strides = List.map (fun s -> Typ.Static s) strides }
    else
      Typ.Strided
        {
          offset = Typ.Dynamic;
          strides = List.map (fun _ -> Typ.Dynamic) st;
        }
  in
  let result_typ = Typ.Memref (result_dims, elt, layout) in
  Rewriter.build1 rw
    ~operands:((m :: d_offs) @ ds @ dt)
    ~result_types:[ result_typ ]
    ~attrs:
      [
        ("static_offsets", Attr.Int_array so);
        ("static_sizes", Attr.Int_array ss);
        ("static_strides", Attr.Int_array st);
        ( "operand_segment_sizes",
          Attr.Int_array
            [ 1; List.length d_offs; List.length ds; List.length dt ] );
      ]
    subview_op

let static_offsets op =
  match Ircore.attr op "static_offsets" with
  | Some (Attr.Int_array xs) -> xs
  | _ -> []

let static_sizes op =
  match Ircore.attr op "static_sizes" with
  | Some (Attr.Int_array xs) -> xs
  | _ -> []

let static_strides op =
  match Ircore.attr op "static_strides" with
  | Some (Attr.Int_array xs) -> xs
  | _ -> []

(** A subview is "trivial" when all offsets/sizes/strides are empty — the
    constrained pseudo-op [memref.subview.constr] of the paper's Figure 3. *)
let subview_is_trivial op =
  static_offsets op = [] && static_sizes op = [] && static_strides op = []
