(** The vector dialect: contiguous vector loads/stores plus splat/reduction,
    enough to express loop vectorization on memrefs. Elementwise arithmetic
    on vectors reuses arith ops at vector types. *)

open Ir

let load_op = "vector.load"
let store_op = "vector.store"
let splat_op = "vector.splat"
let reduction_op = "vector.reduction"
let broadcast_op = "vector.broadcast"
let fma_op = "vector.fma"

let register ctx =
  Context.register_op ctx load_op ~summary:"contiguous vector load"
    ~effects:(fun _ -> [ Context.Read ])
    ~verify:
      (Verifier.all [ Verifier.expect_min_operands 1; Verifier.expect_results 1 ]);
  Context.register_op ctx store_op ~summary:"contiguous vector store"
    ~effects:(fun _ -> [ Context.Write ])
    ~verify:(Verifier.expect_min_operands 2);
  Context.register_op ctx splat_op ~traits:[ Context.Pure ]
    ~verify:
      (Verifier.all [ Verifier.expect_operands 1; Verifier.expect_results 1 ]);
  Context.register_op ctx broadcast_op ~traits:[ Context.Pure ]
    ~verify:
      (Verifier.all [ Verifier.expect_operands 1; Verifier.expect_results 1 ]);
  Context.register_op ctx reduction_op ~summary:"horizontal reduction"
    ~traits:[ Context.Pure ]
    ~verify:
      (Verifier.all
         [
           Verifier.expect_operands 1;
           Verifier.expect_results 1;
           Verifier.expect_attr "kind";
         ]);
  Context.register_op ctx fma_op ~traits:[ Context.Pure ]
    ~verify:
      (Verifier.all [ Verifier.expect_operands 3; Verifier.expect_results 1 ])

let load rw ~vector_typ m indices =
  Rewriter.build1 rw ~operands:(m :: indices) ~result_types:[ vector_typ ]
    load_op

let store rw v m indices =
  ignore (Rewriter.build rw ~operands:(v :: m :: indices) store_op)

let splat rw v ~vector_typ =
  Rewriter.build1 rw ~operands:[ v ] ~result_types:[ vector_typ ] splat_op

let reduction rw ~kind v =
  let elt =
    match Ircore.value_typ v with
    | Typ.Vector (_, t) -> t
    | t -> t
  in
  Rewriter.build1 rw ~operands:[ v ] ~result_types:[ elt ]
    ~attrs:[ ("kind", Attr.String kind) ]
    reduction_op
