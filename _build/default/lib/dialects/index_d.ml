(** The index dialect: index-typed arithmetic (thin sibling of arith,
    present because realistic MLIR inputs mix both). *)

open Ir

let register ctx =
  Context.register_op ctx "index.constant"
    ~traits:[ Context.Pure; Context.Constant_like ]
    ~verify:
      (Verifier.all
         [
           Verifier.expect_operands 0;
           Verifier.expect_results 1;
           Verifier.expect_attr "value";
         ]);
  Dutil.register_binary ctx "index.add" ~fold_int:( + )
    ~traits:[ Context.Commutative ];
  Dutil.register_binary ctx "index.sub" ~fold_int:( - );
  Dutil.register_binary ctx "index.mul" ~fold_int:( * )
    ~traits:[ Context.Commutative ];
  Context.register_op ctx "index.cmp" ~traits:[ Context.Pure ]
    ~verify:
      (Verifier.all
         [
           Verifier.expect_operands 2;
           Verifier.expect_results 1;
           Verifier.expect_attr "predicate";
         ]);
  Context.register_op ctx "index.casts" ~traits:[ Context.Pure ]
    ~verify:
      (Verifier.all [ Verifier.expect_operands 1; Verifier.expect_results 1 ])

let constant rw v =
  Rewriter.build1 rw ~result_types:[ Typ.index ]
    ~attrs:[ ("value", Attr.Int (v, Typ.index)) ]
    "index.constant"
