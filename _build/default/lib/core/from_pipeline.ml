(** Automatic conversion of a classic pass pipeline into a Transform script
    of [transform.apply_registered_pass] ops — the mechanism used in Case
    Study 1 to compare the MLIR pass manager against the transform
    interpreter on identical compilation flows. *)

open Ir

(** [script_of_pipeline passes] builds a transform module equivalent to
    running [passes] in order on the payload root. *)
let script_of_pipeline (passes : Passes.Pass.t list) =
  Build.script (fun rw root ->
      ignore
        (List.fold_left
           (fun target pass ->
             Build.apply_registered_pass rw
               ~pass_name:pass.Passes.Pass.name target)
           root passes))

(** [script_of_pipeline_str "a,b,c"] parses the pipeline then converts. *)
let script_of_pipeline_str str =
  Result.map script_of_pipeline (Passes.Pass.parse_pipeline str)

(** Extract the pass list back out of a generated script (used by the static
    checker and for round-trip tests). *)
let passes_of_script script =
  let out = ref [] in
  Ircore.walk_op script ~pre:(fun op ->
      if op.Ircore.op_name = Ops.apply_registered_pass_op then
        match Ircore.attr op "pass_name" with
        | Some (Attr.String name) -> (
          match Passes.Pass.lookup name with
          | Some p -> out := p :: !out
          | None -> ())
        | _ -> ());
  List.rev !out
