(** Transform-interpreter errors, mirroring the paper's two severities:

    - a {e silenceable} error signals a failed pre-condition; the payload has
      not been modified irreversibly and an enclosing construct (e.g.
      [transform.alternatives]) may suppress it;
    - a {e definite} error aborts interpretation immediately. *)

type t =
  | Silenceable of string
  | Definite of string

let silenceable fmt = Fmt.kstr (fun m -> Error (Silenceable m)) fmt
let definite fmt = Fmt.kstr (fun m -> Error (Definite m)) fmt

let message = function Silenceable m | Definite m -> m
let is_silenceable = function Silenceable _ -> true | Definite _ -> false

let pp fmt = function
  | Silenceable m -> Fmt.pf fmt "silenceable error: %s" m
  | Definite m -> Fmt.pf fmt "definite error: %s" m

let to_string e = Fmt.str "%a" pp e
