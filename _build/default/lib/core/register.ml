(** One-stop initialization of the Transform dialect: context registration,
    transform implementations, and the demonstration extensions. Also
    ensures the pass and dialect registries the transforms depend on are
    populated. *)

let impls_registered = ref false

let register ctx =
  Passes.Register_all.register ();
  Ops.register ctx;
  if not !impls_registered then begin
    impls_registered := true;
    Introspect.register_enzyme_ad ()
  end

(** Fresh context with all dialects, passes and transform ops registered. *)
let full_context ?allow_unregistered () =
  let ctx = Dialects.Registry.context ?allow_unregistered () in
  register ctx;
  ctx
