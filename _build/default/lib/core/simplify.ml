(** Transform-IR-level processing (Section 3.4): since Transform scripts are
    ordinary IR, they can themselves be inlined, folded and cleaned up
    before interpretation — saving interpreter work for no-op transforms.

    - {!inline_includes}: macro expansion of [transform.include] (the
      inliner of Section 3.4; recursion is rejected by cycle detection);
    - {!fold_noops}: drops transforms that provably do nothing (unroll by
      1, tile by 0/1 in every dimension) and forwards their handles;
    - {!dce}: removes transforms without effects whose results are unused
      (e.g. a [match_op] nobody reads). *)

open Ir

let ( let* ) = Result.bind

(* ------------------------------------------------------------------ *)
(* Inlining                                                            *)
(* ------------------------------------------------------------------ *)

let callee_of op =
  match Ircore.attr op "target" with
  | Some (Attr.Symbol_ref (s, _)) -> Some s
  | _ -> None

(** Detect recursion in the include call graph (macros must be acyclic). *)
let check_acyclic script =
  let sequences =
    Symbol.collect script ~f:(fun o -> o.Ircore.op_name = Ops.named_sequence_op)
  in
  let name_of o = Option.value ~default:"" (Symbol.symbol_name o) in
  let edges =
    List.map
      (fun s ->
        ( name_of s,
          Symbol.collect s ~f:(fun o -> o.Ircore.op_name = Ops.include_op)
          |> List.filter_map callee_of ))
      sequences
  in
  let rec visit path name =
    if List.mem name path then
      Error (Fmt.str "recursive include cycle through @%s" name)
    else
      match List.assoc_opt name edges with
      | None -> Ok ()
      | Some callees ->
        List.fold_left
          (fun acc c -> Result.bind acc (fun () -> visit (name :: path) c))
          (Ok ()) callees
  in
  List.fold_left
    (fun acc (n, _) -> Result.bind acc (fun () -> visit [] n))
    (Ok ()) edges

(** Expand every [transform.include] in place. *)
let inline_includes script =
  let* () = check_acyclic script in
  let rw = Rewriter.create () in
  let rec expand_all () =
    let includes =
      Symbol.collect script ~f:(fun o -> o.Ircore.op_name = Ops.include_op)
    in
    match includes with
    | [] -> Ok ()
    | _ ->
      let* () =
        List.fold_left
          (fun acc inc ->
            let* () = acc in
            match callee_of inc with
            | None -> Error "include without target"
            | Some callee -> (
              match
                Symbol.collect script ~f:(fun o ->
                    o.Ircore.op_name = Ops.named_sequence_op
                    && Symbol.symbol_name o = Some callee)
              with
              | [] -> Error (Fmt.str "include of unknown sequence @%s" callee)
              | target :: _ ->
                let body =
                  Option.get
                    (Ircore.region_first_block (List.hd target.Ircore.regions))
                in
                (* clone the body, substitute args, splice before include *)
                let mapping = Ircore.Mapping.create () in
                List.iteri
                  (fun i arg ->
                    Ircore.Mapping.map_value mapping ~from:arg
                      ~to_:(Ircore.operand ~index:i inc))
                  (Ircore.block_args body);
                let yielded = ref [] in
                List.iter
                  (fun op ->
                    if op.Ircore.op_name = Ops.yield_op then
                      yielded :=
                        List.map
                          (Ircore.Mapping.lookup_value mapping)
                          (Ircore.operands op)
                    else begin
                      let cloned = Ircore.clone_op ~mapping op in
                      Ircore.insert_before ~anchor:inc cloned
                    end)
                  (Ircore.block_ops body);
                let replacements =
                  if List.length !yielded >= Ircore.num_results inc then
                    List.filteri
                      (fun i _ -> i < Ircore.num_results inc)
                      !yielded
                  else []
                in
                if List.length replacements = Ircore.num_results inc then begin
                  Rewriter.replace_op rw inc ~with_:replacements;
                  Ok ()
                end
                else Error (Fmt.str "include @%s: yield arity mismatch" callee)))
          (Ok ()) includes
      in
      expand_all ()
  in
  let* () = expand_all () in
  Ok ()

(* ------------------------------------------------------------------ *)
(* No-op folding                                                       *)
(* ------------------------------------------------------------------ *)

(** Is this transform provably a no-op? If so, return the handle forwarding
    for its results. *)
let noop_forwarding op =
  match op.Ircore.op_name with
  | "transform.loop_unroll" -> (
    match Ircore.attr op "factor" with
    | Some (Attr.Int (1, _)) -> Some []
    | _ -> None)
  | "transform.loop_tile" -> (
    match Ircore.attr op "tile_sizes" with
    | Some (Attr.Int_array sizes)
      when sizes <> [] && List.for_all (fun s -> s = 0) sizes ->
      (* tiling by 0 everywhere: no tiling; both results = original loop *)
      Some [ Ircore.operand ~index:0 op; Ircore.operand ~index:0 op ]
    | _ -> None)
  | "transform.loop_split" -> (
    match Ircore.attr op "div_by" with
    | Some (Attr.Int (1, _)) ->
      (* dividing by 1: main = whole loop, rest = empty; not a pure no-op
         because the rest handle exists — keep it *)
      None
    | _ -> None)
  | _ -> None

let fold_noops script =
  let rw = Rewriter.create () in
  let removed = ref 0 in
  List.iter
    (fun op ->
      match noop_forwarding op with
      | Some fwd when List.length fwd = Ircore.num_results op ->
        Rewriter.replace_op rw op ~with_:fwd;
        incr removed
      | _ -> ())
    (Symbol.collect script ~f:(fun o -> Option.is_some (noop_forwarding o)));
  !removed

(* ------------------------------------------------------------------ *)
(* DCE on transform IR                                                 *)
(* ------------------------------------------------------------------ *)

let side_effect_free op =
  match op.Ircore.op_name with
  | "transform.match_op" | "transform.param_constant" | "transform.get_parent"
  | "transform.merge_handles" ->
    true
  | _ -> false

let dce script =
  let rw = Rewriter.create () in
  let removed = ref 0 in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun op ->
        if
          Ircore.op_parent op <> None
          && List.for_all
               (fun r -> not (Ircore.has_uses r))
               (Ircore.results op)
        then begin
          Rewriter.erase_op rw op;
          incr removed;
          changed := true
        end)
      (Symbol.collect script ~f:side_effect_free)
  done;
  !removed

(** Full simplification: inline, fold, clean. Returns (folded, dced). *)
let run script =
  let* () = inline_includes script in
  let folded = fold_noops script in
  let dced = dce script in
  Ok (folded, dced)
