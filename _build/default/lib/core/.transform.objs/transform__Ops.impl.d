lib/core/ops.ml: Attr Context Diag Dialects Dutil Fmt Greedy Ir Ircore List Opset Option Passes Pattern Printer Result State String Symbol Terror Treg Typ Verifier
