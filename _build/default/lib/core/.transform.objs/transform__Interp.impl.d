lib/core/interp.ml: Attr Diag Fmt Hashtbl Ir Ircore Irdl List Ops Opset Result State Symbol Terror Trace Treg Verifier
