lib/core/interp.ml: Attr Fmt Hashtbl Ir Ircore Irdl List Loc Ops Opset Result State Symbol Terror Treg Verifier
