lib/core/register.ml: Dialects Introspect Ops Passes
