lib/core/from_pipeline.ml: Attr Build Ir Ircore List Ops Passes Result
