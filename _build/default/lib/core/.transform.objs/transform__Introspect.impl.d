lib/core/introspect.ml: Attr Builder Hashtbl Ir Ircore List Ops Opset Option Rewriter State Symbol Treg Util
