lib/core/conditions.ml: Fmt Ir Ircore List Opset Passes Treg
