lib/core/invalidation.ml: Fmt Hashtbl Ir Ircore List Option Symbol Treg
