lib/core/build.ml: Attr Builder Dialects Ir Ircore List Ops Rewriter Typ
