lib/core/terror.ml: Fmt
