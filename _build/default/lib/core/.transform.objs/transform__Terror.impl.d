lib/core/terror.ml: Diag Fmt Ir Stdlib
