lib/core/treg.ml: Fmt Hashtbl Ir Ircore List Opset State Terror
