lib/core/state.ml: Attr Context Hashtbl Ir Ircore List Option Rewriter String Terror Typ
