lib/core/simplify.ml: Attr Fmt Ir Ircore List Ops Option Result Rewriter Symbol
