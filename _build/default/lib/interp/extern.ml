(** External function models: the libxsmm-style microkernel library of Case
    Study 4. The microkernel computes a small matrix multiplication
    semantically (so correctness tests still pass) while charging the
    machine a near-peak cost instead of per-scalar interpretation cost. *)

module R = Rvalue

(** Sizes supported by the modeled microkernel library. Mirrors a JIT-backed
    library: small-to-medium blocks, register-tileable dimensions. *)
let libxsmm_supported ~m ~n ~k =
  let ok d = d > 0 && d <= 64 in
  ok m && ok n && ok k && n mod 4 = 0

(** [libxsmm_gemm] takes three memref views (A: m*k, B: k*n, C: m*n) and
    performs C += A*B. *)
let libxsmm_gemm : Compile.extern_fn =
 fun machine args ->
  match args with
  | [ a; b; c ] ->
    let va = R.as_view a and vb = R.as_view b and vc = R.as_view c in
    let m = va.R.sizes.(0) and k = va.R.sizes.(1) in
    let n = vb.R.sizes.(1) in
    if not (libxsmm_supported ~m ~n ~k) then
      failwith
        (Fmt.str "libxsmm: unsupported GEMM size %dx%dx%d" m n k);
    (* semantics: C += A * B (plain triple loop, cost accounting disabled) *)
    let was_enabled = machine.Machine.cost_enabled in
    machine.Machine.cost_enabled <- false;
    for i = 0 to m - 1 do
      for j = 0 to n - 1 do
        let acc = ref (R.load vc [| i; j |]) in
        for p = 0 to k - 1 do
          acc := !acc +. (R.load va [| i; p |] *. R.load vb [| p; j |])
        done;
        R.store vc [| i; j |] !acc
      done
    done;
    machine.Machine.cost_enabled <- was_enabled;
    (* cost: near-peak FLOPs plus streaming the three operand blocks *)
    let flops = 2 * m * n * k in
    Machine.add_cycles machine
      (float_of_int flops
      /. machine.Machine.config.Machine.microkernel_flops_per_cycle);
    machine.Machine.flops <- machine.Machine.flops + flops;
    let stream_view v rows cols =
      (* touch each row's span once *)
      for i = 0 to rows - 1 do
        let li = R.linear_index v [| i; 0 |] in
        Machine.stream machine ~is_store:false (R.byte_address v li)
          (cols * v.R.buf.elt_bytes)
      done
    in
    stream_view va m k;
    stream_view vb k n;
    stream_view vc m n;
    []
  | _ -> failwith "libxsmm: expected three memref arguments"

(** Registry preloaded with the microkernel library. *)
let default_externs () =
  let t : (string, Compile.extern_fn) Hashtbl.t = Hashtbl.create 8 in
  Hashtbl.replace t "libxsmm_gemm" libxsmm_gemm;
  t
