(** The abstract machine: cost accounting on top of a two-level cache
    hierarchy. This is the repository's substitute for the paper's hardware
    testbed — simulated runtimes are produced by charging per-operation
    cycle costs and cache-dependent memory latencies, so transformations
    (tiling, unrolling, vectorization, microkernel calls) change performance
    through the same mechanisms as on real hardware. *)

type config = {
  freq_ghz : float;
  l1_size : int;
  l1_ways : int;
  l1_latency : int;
  l2_size : int;
  l2_ways : int;
  l2_latency : int;
  mem_latency : int;
  line_bytes : int;
  int_op_cycles : float;
  float_op_cycles : float;
  vector_width : int;  (** f32 lanes of the modeled SIMD unit *)
  loop_overhead_cycles : float;  (** per-iteration increment+compare+branch *)
  call_overhead_cycles : float;
  microkernel_flops_per_cycle : float;
      (** near-peak FLOP rate achieved by the libxsmm-style microkernel *)
  num_threads : int;
      (** cores available to parallel constructs ([scf.forall]); modeled as
          ideal linear scaling of the cycles spent inside the construct *)
  parallel_fork_cycles : float;  (** fixed fork/join overhead per forall *)
}

let default_config =
  {
    freq_ghz = 2.0;
    l1_size = 32 * 1024;
    l1_ways = 8;
    l1_latency = 4;
    l2_size = 1024 * 1024;
    l2_ways = 16;
    l2_latency = 14;
    mem_latency = 110;
    line_bytes = 64;
    int_op_cycles = 1.0;
    float_op_cycles = 1.0;
    vector_width = 8;
    loop_overhead_cycles = 2.0;
    call_overhead_cycles = 30.0;
    microkernel_flops_per_cycle = 32.0;
    num_threads = 1;
    parallel_fork_cycles = 2000.0;
  }

type t = {
  config : config;
  l1 : Cache.t;
  l2 : Cache.t;
  mutable cycles : float;
  mutable flops : int;
  mutable loads : int;
  mutable stores : int;
  mutable next_base : int;  (** bump allocator for virtual addresses *)
  mutable cost_enabled : bool;
}

let create ?(config = default_config) () =
  {
    config;
    l1 =
      Cache.create ~name:"L1" ~size_bytes:config.l1_size
        ~line_bytes:config.line_bytes ~ways:config.l1_ways
        ~hit_latency:config.l1_latency;
    l2 =
      Cache.create ~name:"L2" ~size_bytes:config.l2_size
        ~line_bytes:config.line_bytes ~ways:config.l2_ways
        ~hit_latency:config.l2_latency;
    cycles = 0.0;
    flops = 0;
    loads = 0;
    stores = 0;
    next_base = 0x10000;
    cost_enabled = true;
  }

let reset t =
  Cache.reset t.l1;
  Cache.reset t.l2;
  t.cycles <- 0.0;
  t.flops <- 0;
  t.loads <- 0;
  t.stores <- 0

(** Allocate a virtual address range (64-byte aligned). *)
let alloc_address t bytes =
  let base = t.next_base in
  t.next_base <- t.next_base + ((bytes + 63) / 64 * 64) + 64;
  base

let add_cycles t c = if t.cost_enabled then t.cycles <- t.cycles +. c

let int_op t = add_cycles t t.config.int_op_cycles

let float_op t =
  if t.cost_enabled then begin
    t.cycles <- t.cycles +. t.config.float_op_cycles;
    t.flops <- t.flops + 1
  end

let vector_op t =
  if t.cost_enabled then begin
    t.cycles <- t.cycles +. t.config.float_op_cycles;
    t.flops <- t.flops + t.config.vector_width
  end

let loop_iter t = add_cycles t t.config.loop_overhead_cycles
let call t = add_cycles t t.config.call_overhead_cycles

(** Charge a memory access of [bytes] bytes at virtual address [addr]
    through the cache hierarchy (one lookup per touched line). *)
let memory_access t ~is_store addr bytes =
  if t.cost_enabled then begin
    if is_store then t.stores <- t.stores + 1 else t.loads <- t.loads + 1;
    let first_line = addr / t.config.line_bytes in
    let last_line = (addr + bytes - 1) / t.config.line_bytes in
    for line = first_line to last_line do
      let a = line * t.config.line_bytes in
      if Cache.access t.l1 a then add_cycles t (float_of_int t.config.l1_latency)
      else if Cache.access t.l2 a then
        add_cycles t (float_of_int t.config.l2_latency)
      else add_cycles t (float_of_int t.config.mem_latency)
    done
  end

(** Charge a bulk streaming access over [bytes] contiguous bytes: touches
    every line once (used by library-call models). *)
let stream t ~is_store addr bytes =
  if t.cost_enabled then begin
    let lines = max 1 ((bytes + t.config.line_bytes - 1) / t.config.line_bytes) in
    for i = 0 to lines - 1 do
      memory_access t ~is_store (addr + (i * t.config.line_bytes)) 1
    done
  end

let seconds t = t.cycles /. (t.config.freq_ghz *. 1e9)

type report = {
  r_cycles : float;
  r_seconds : float;
  r_flops : int;
  r_loads : int;
  r_stores : int;
  r_l1_hit_rate : float;
  r_l2_hit_rate : float;
}

let report t =
  {
    r_cycles = t.cycles;
    r_seconds = seconds t;
    r_flops = t.flops;
    r_loads = t.loads;
    r_stores = t.stores;
    r_l1_hit_rate = Cache.hit_rate t.l1;
    r_l2_hit_rate = Cache.hit_rate t.l2;
  }

let pp_report fmt r =
  Fmt.pf fmt
    "cycles=%.0f time=%.6fs flops=%d loads=%d stores=%d L1=%.1f%% L2=%.1f%%"
    r.r_cycles r.r_seconds r.r_flops r.r_loads r.r_stores
    (100. *. r.r_l1_hit_rate) (100. *. r.r_l2_hit_rate)
