lib/interp/rvalue.ml: Array Fmt
