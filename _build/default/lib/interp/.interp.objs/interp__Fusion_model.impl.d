lib/interp/fusion_model.ml: Dialects Float Func Hashtbl Ir Ircore List Option Shlo String Typ
