lib/interp/machine.ml: Cache Fmt
