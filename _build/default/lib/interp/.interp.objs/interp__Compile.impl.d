lib/interp/compile.ml: Affine Affine_ops Arith Array Attr Cf Context Dialects Dutil Float Fmt Func Hashtbl Int Ir Ircore Lazy List Machine Memref Option Rvalue Scf Symbol Typ
