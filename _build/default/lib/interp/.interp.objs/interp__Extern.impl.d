lib/interp/extern.ml: Array Compile Fmt Hashtbl Machine Rvalue
