lib/interp/cache.ml: Array
