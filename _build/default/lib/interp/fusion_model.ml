(** A model of the XLA-style fusion back-end used in Case Study 3.

    The paper's story: among >100 peephole "work-reducing" StableHLO
    patterns, folding reshape/transpose into a full reduction strictly
    reduces work, yet degrades end-to-end performance because the back-end
    fusion heuristic then builds larger, less cache-efficient fusion
    clusters. This module reproduces that mechanism:

    - ops are greedily clustered with their producers (elementwise and shape
      ops fuse freely; a reduction absorbs its producer chain);
    - cluster execution time is a roofline: max(flops / peak, bytes /
      bandwidth), where only cluster-external tensors count as bytes;
    - a cluster's effective bandwidth degrades once its working set exceeds
      the cache budget — large reduction clusters read their inputs with
      poor locality. *)

open Ir
open Dialects

type cluster = {
  mutable ops : Ircore.op list;  (** in program order, reversed *)
  mutable is_reduction : bool;
  mutable has_dot : bool;  (** contraction clusters stay on the GEMM path *)
  id : int;
}

type params = {
  peak_flops : float;  (** flops / second *)
  bandwidth : float;  (** bytes / second for cache-friendly clusters *)
  cache_budget : int;  (** bytes of working set before locality degrades *)
  degraded_factor : float;  (** bandwidth divisor for oversized clusters *)
  kernel_launch : float;  (** seconds of fixed overhead per cluster *)
}

let default_params =
  {
    peak_flops = 1.0e12;
    bandwidth = 2.0e11;
    cache_budget = 256 * 1024;
    degraded_factor = 10.0;
    kernel_launch = 3.0e-6;
  }

let tensor_bytes t =
  match Typ.num_elements t with
  | Some n ->
    let eb =
      match Typ.element_type t with
      | Some (Typ.Float Typ.F64) -> 8
      | Some (Typ.Integer b) -> max 1 (b / 8)
      | _ -> 4
    in
    n * eb
  | None -> 0

let op_flops (op : Ircore.op) =
  let out_elems =
    match Ircore.results op with
    | r :: _ -> Option.value ~default:0 (Typ.num_elements (Ircore.value_typ r))
    | [] -> 0
  in
  match op.Ircore.op_name with
  | "shlo.dot_general" -> (
    (* 2*M*N*K: result elems * 2 * contracted dim *)
    match Ircore.operands op with
    | a :: _ -> (
      match Typ.static_shape (Ircore.value_typ a) with
      | Some dims when dims <> [] ->
        2 * out_elems * List.nth dims (List.length dims - 1)
      | _ -> 2 * out_elems)
    | [] -> 0)
  | "shlo.reduce" -> (
    match Ircore.operands op with
    | a :: _ ->
      Option.value ~default:out_elems
        (Typ.num_elements (Ircore.value_typ a))
    | [] -> out_elems)
  | "shlo.transpose" | "shlo.reshape" | "shlo.broadcast_in_dim"
  | "shlo.constant" | "shlo.slice" | "shlo.concatenate" ->
    0
  | _ -> out_elems

let is_fusible_elementwise name =
  List.mem name Shlo.binary_ops
  || List.mem name Shlo.unary_ops
  || List.mem name
       [ Shlo.reshape_op; Shlo.broadcast_op; Shlo.select_op; Shlo.slice_op ]

(* transposes fuse, but they poison the locality of a reduction cluster *)
let is_transpose name = String.equal name Shlo.transpose_op

(** Greedy clustering over the ops of [func]'s body, in program order. *)
let cluster_func (func : Ircore.op) =
  let clusters : (int, cluster) Hashtbl.t = Hashtbl.create 32 in
  let op_cluster : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let next_id = ref 0 in
  let new_cluster op =
    let c =
      {
        ops = [ op ];
        is_reduction = false;
        has_dot = op.Ircore.op_name = Shlo.dot_general_op;
        id = !next_id;
      }
    in
    incr next_id;
    Hashtbl.replace clusters c.id c;
    Hashtbl.replace op_cluster op.Ircore.op_id c.id;
    c
  in
  let producer_cluster op =
    (* cluster of the first operand's defining op, if any *)
    match Ircore.operands op with
    | v :: _ -> (
      match Ircore.defining_op v with
      | Some d -> (
        match Hashtbl.find_opt op_cluster d.Ircore.op_id with
        | Some cid -> Hashtbl.find_opt clusters cid
        | None -> None)
      | None -> None)
    | [] -> None
  in
  (match Func.entry_block func with
  | None -> ()
  | Some block ->
    List.iter
      (fun op ->
        let name = op.Ircore.op_name in
        if String.length name >= 5 && String.sub name 0 5 = "shlo." then begin
          let joined =
            if is_fusible_elementwise name || is_transpose name then
              match producer_cluster op with
              | Some c when (not c.is_reduction) && not c.has_dot ->
                c.ops <- op :: c.ops;
                Hashtbl.replace op_cluster op.Ircore.op_id c.id;
                true
              | _ -> false
            else if name <> Shlo.reduce_op then false
            else
              (* a reduction absorbs its whole producer cluster — but only
                 when the chain is transpose-free: a transpose in the chain
                 breaks the coalesced-access pattern the fused reduction
                 kernel needs, so the heuristic keeps them separate. This is
                 exactly why eliminating the transpose (work reduction!)
                 lets the heuristic build the oversized cluster of Case
                 Study 3. *)
              match producer_cluster op with
              | Some c
                when (not c.has_dot)
                     && not
                          (List.exists
                             (fun o -> is_transpose o.Ircore.op_name)
                             c.ops) ->
                c.ops <- op :: c.ops;
                c.is_reduction <- true;
                Hashtbl.replace op_cluster op.Ircore.op_id c.id;
                true
              | _ -> false
          in
          if not joined then ignore (new_cluster op)
        end)
      (Ircore.block_ops block));
  Hashtbl.fold (fun _ c acc -> c :: acc) clusters []
  |> List.sort (fun a b -> compare a.id b.id)

(** External bytes of a cluster: operands produced outside it plus results
    used outside it. *)
let cluster_external_bytes (c : cluster) =
  let inside op =
    List.exists (fun o -> o == op) c.ops
  in
  let in_bytes =
    List.fold_left
      (fun acc op ->
        List.fold_left
          (fun acc v ->
            match Ircore.defining_op v with
            | Some d when inside d -> acc
            | _ -> acc + tensor_bytes (Ircore.value_typ v))
          acc (Ircore.operands op))
      0 c.ops
  in
  let out_bytes =
    List.fold_left
      (fun acc op ->
        List.fold_left
          (fun acc r ->
            let escapes =
              List.exists
                (fun u -> not (inside u.Ircore.u_op))
                (Ircore.value_uses r)
            in
            if escapes then acc + tensor_bytes (Ircore.value_typ r) else acc)
          acc (Ircore.results op))
      0 c.ops
  in
  in_bytes + out_bytes

(** Working set: all tensors touched by the cluster (internal included). *)
let cluster_working_set (c : cluster) =
  List.fold_left
    (fun acc op ->
      List.fold_left
        (fun acc r -> acc + tensor_bytes (Ircore.value_typ r))
        acc (Ircore.results op))
    0 c.ops

let cluster_flops (c : cluster) =
  List.fold_left (fun acc op -> acc + op_flops op) 0 c.ops

let cluster_time params c =
  let flops = float_of_int (cluster_flops c) in
  let bytes = float_of_int (cluster_external_bytes c) in
  let ws = cluster_working_set c in
  (* reduction clusters stream their whole producer chain; once the working
     set exceeds the cache budget, effective bandwidth collapses *)
  let bw =
    if c.is_reduction && ws > params.cache_budget then
      params.bandwidth /. params.degraded_factor
    else params.bandwidth
  in
  params.kernel_launch
  +. Float.max (flops /. params.peak_flops) (bytes /. bw)

type report = {
  num_clusters : int;
  total_flops : int;
  total_seconds : float;
}

(** Estimated execution time of [func] under the fusion model. *)
let estimate ?(params = default_params) func =
  let clusters = cluster_func func in
  let total =
    List.fold_left (fun acc c -> acc +. cluster_time params c) 0.0 clusters
  in
  {
    num_clusters = List.length clusters;
    total_flops = List.fold_left (fun a c -> a + cluster_flops c) 0 clusters;
    total_seconds = total;
  }
