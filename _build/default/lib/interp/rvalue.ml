(** Runtime values for payload-IR execution.

    Buffers hold [float array]s regardless of element type; integer memref
    elements are stored as floats (exact below 2^53), which covers every
    workload in this repository. Each buffer carries a virtual base address
    so the cache simulator sees a realistic address space. *)

type buffer = {
  data : float array;
  base : int;  (** virtual byte address, 64-byte aligned *)
  elt_bytes : int;
}

type view = {
  buf : buffer;
  offset : int;  (** in elements *)
  sizes : int array;
  strides : int array;  (** in elements *)
}

type t =
  | Int of int
  | Float of float
  | Bool of bool
  | Vec of float array
  | Memref of view
  | Unit

let pp fmt = function
  | Int n -> Fmt.pf fmt "%d" n
  | Float f -> Fmt.pf fmt "%g" f
  | Bool b -> Fmt.bool fmt b
  | Vec xs ->
    Fmt.pf fmt "vec[%a]" Fmt.(array ~sep:comma float) xs
  | Memref v ->
    Fmt.pf fmt "memref<%a>(offset=%d)"
      Fmt.(array ~sep:(any "x") int)
      v.sizes v.offset
  | Unit -> Fmt.string fmt "()"

exception Type_error of string

let as_int = function
  | Int n -> n
  | Bool b -> if b then 1 else 0
  | v -> raise (Type_error (Fmt.str "expected int, got %a" pp v))

let as_float = function
  | Float f -> f
  | Int n -> float_of_int n
  | v -> raise (Type_error (Fmt.str "expected float, got %a" pp v))

let as_bool = function
  | Bool b -> b
  | Int n -> n <> 0
  | v -> raise (Type_error (Fmt.str "expected bool, got %a" pp v))

let as_view = function
  | Memref v -> v
  | v -> raise (Type_error (Fmt.str "expected memref, got %a" pp v))

let as_vec = function
  | Vec v -> v
  | v -> raise (Type_error (Fmt.str "expected vector, got %a" pp v))

(* ------------------------------------------------------------------ *)
(* Views                                                               *)
(* ------------------------------------------------------------------ *)

let row_major_strides sizes =
  let n = Array.length sizes in
  let strides = Array.make n 1 in
  for i = n - 2 downto 0 do
    strides.(i) <- strides.(i + 1) * sizes.(i + 1)
  done;
  strides

let num_elements view = Array.fold_left ( * ) 1 view.sizes

(** Linear element index of [indices] within [view]'s buffer. *)
let linear_index view indices =
  let acc = ref view.offset in
  Array.iteri (fun i idx -> acc := !acc + (idx * view.strides.(i))) indices;
  !acc

(** Byte address of the element at linear buffer index [li]. *)
let byte_address view li = view.buf.base + (li * view.buf.elt_bytes)

let load view indices = view.buf.data.(linear_index view indices)
let store view indices v = view.buf.data.(linear_index view indices) <- v

(** Subview: compose offsets/strides. *)
let subview view ~offsets ~sizes ~strides =
  let offset = ref view.offset in
  Array.iteri (fun i o -> offset := !offset + (o * view.strides.(i))) offsets;
  let new_strides =
    Array.mapi (fun i s -> s * view.strides.(i)) strides
  in
  { buf = view.buf; offset = !offset; sizes; strides = new_strides }
