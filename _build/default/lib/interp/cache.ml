(** Set-associative LRU cache simulator. One instance per level; levels are
    chained by the {!Machine} module. *)

type t = {
  name : string;
  line_bytes : int;
  num_sets : int;
  ways : int;
  hit_latency : int;  (** cycles *)
  tags : int array;  (** num_sets * ways, -1 = invalid *)
  stamps : int array;  (** LRU timestamps, parallel to [tags] *)
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
}

let create ~name ~size_bytes ~line_bytes ~ways ~hit_latency =
  let num_lines = size_bytes / line_bytes in
  let num_sets = max 1 (num_lines / ways) in
  {
    name;
    line_bytes;
    num_sets;
    ways;
    hit_latency;
    tags = Array.make (num_sets * ways) (-1);
    stamps = Array.make (num_sets * ways) 0;
    clock = 0;
    hits = 0;
    misses = 0;
  }

let reset t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.stamps 0 (Array.length t.stamps) 0;
  t.clock <- 0;
  t.hits <- 0;
  t.misses <- 0

(** Access the line containing [addr]. Returns [true] on hit; on miss the
    line is installed (evicting the LRU way). *)
let access t addr =
  t.clock <- t.clock + 1;
  let line = addr / t.line_bytes in
  let set = line mod t.num_sets in
  let tag = line in
  let base = set * t.ways in
  let hit = ref false in
  let lru_idx = ref base in
  let lru_stamp = ref max_int in
  (try
     for i = base to base + t.ways - 1 do
       if t.tags.(i) = tag then begin
         t.stamps.(i) <- t.clock;
         hit := true;
         raise Exit
       end;
       if t.stamps.(i) < !lru_stamp then begin
         lru_stamp := t.stamps.(i);
         lru_idx := i
       end
     done
   with Exit -> ());
  if !hit then begin
    t.hits <- t.hits + 1;
    true
  end
  else begin
    t.misses <- t.misses + 1;
    t.tags.(!lru_idx) <- tag;
    t.stamps.(!lru_idx) <- t.clock;
    false
  end

let hit_rate t =
  let total = t.hits + t.misses in
  if total = 0 then 1.0 else float_of_int t.hits /. float_of_int total

let stats t = (t.hits, t.misses)
